// Distributed execution trace: runs the message-level Luby MIS protocol
// on the real synchronous runtime and prints a round-by-round trace,
// demonstrating the model of computation the paper assumes (Section 1:
// synchronous message passing; communication only between processors
// sharing a resource).
//
//   $ ./distributed_trace
#include <cstdio>

#include "dist/conflict_graph.hpp"
#include "dist/luby_mis.hpp"
#include "dist/protocol_scheduler.hpp"
#include "model/solution.hpp"
#include "workload/scenario.hpp"

using namespace treesched;

int main() {
  TreeScenarioSpec spec;
  spec.num_vertices = 48;
  spec.num_networks = 2;
  spec.demands.num_demands = 40;
  spec.seed = 5;
  const Problem problem = make_tree_problem(spec);

  std::vector<InstanceId> all(
      static_cast<std::size_t>(problem.num_instances()));
  for (InstanceId i = 0; i < problem.num_instances(); ++i)
    all[static_cast<std::size_t>(i)] = i;
  // Message-level protocol on the synchronous runtime: neighborhoods are
  // *discovered* by the 2-round edge-owner rendezvous; no processor ever
  // holds the global conflict graph.
  const ProtocolResult protocol =
      run_luby_protocol(problem, {all.data(), all.size()}, /*seed=*/42);
  std::printf("conflict discovery: 2 rendezvous rounds, %lld messages "
              "(%lld bytes)\n",
              static_cast<long long>(protocol.discovery_messages),
              static_cast<long long>(protocol.discovery_bytes));
  std::printf("message-level Luby: MIS size %zu, %lld rounds, %lld messages"
              " (%lld bytes, discovery included)\n",
              protocol.selected.size(),
              static_cast<long long>(protocol.rounds),
              static_cast<long long>(protocol.messages),
              static_cast<long long>(protocol.bytes));
  // The explicit graph appears only here, as the validity oracle.
  const ConflictGraph graph(problem, {all.data(), all.size()});
  std::printf("valid maximal independent set: %s\n",
              graph.is_maximal_independent_set(protocol.selected) ? "yes"
                                                                  : "no");

  // The production oracle (implicit cliques) on the same candidates.
  LubyMis oracle(problem, 42);
  const MisResult fast = oracle.run(all);
  std::printf("implicit-clique Luby: MIS size %zu, %d rounds\n",
              fast.selected.size(), fast.rounds);

  // The paper's accounting: each Luby iteration costs 2 rounds — value
  // exchange and winner notification; both implementations agree on that
  // model even though their random draws differ.
  std::printf("both count 2 communication rounds per Luby iteration.\n");

  // Finally, the *entire* two-phase algorithm as a message-level protocol
  // with every schedule length fixed up front (Section 5, "Distributed
  // Implementation") — no processor ever tests a global condition.
  const LayeredPlan plan = build_tree_layered_plan(problem,
                                                   DecompKind::kIdeal);
  ProtocolOptions poptions;
  poptions.epsilon = 0.2;
  const ProtocolRunResult run =
      run_distributed_protocol(problem, plan, poptions);
  const auto report = check_feasibility(problem, run.solution);
  std::printf("\nfull protocol run: %d epochs x %d stages x %d steps, "
              "Luby budget %d\n", run.epochs, run.stages_per_epoch,
              run.steps_per_stage, run.luby_budget);
  std::printf("  rounds %lld (%lld discovery), messages %lld (%lld bytes); "
              "duals sharded per processor\n",
              static_cast<long long>(run.rounds),
              static_cast<long long>(run.discovery_rounds),
              static_cast<long long>(run.messages),
              static_cast<long long>(run.bytes));
  std::printf("  profit %.1f, feasible %s, lambda %.3f, budgets %s\n",
              run.solution.profit(problem),
              report.feasible ? "yes" : "no", run.lambda_observed,
              (run.mis_ok && run.schedule_ok) ? "sufficed" : "EXCEEDED");
  return report.feasible ? 0 : 1;
}
