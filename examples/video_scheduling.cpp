// Video-on-demand scheduling: the line-networks-with-windows setting of
// Section 7.  Transcoding jobs have release times, deadlines, processing
// times and bandwidth shares, and can run on any of several encoder
// pools (resources).  We compare the multi-stage (4+eps)/(23+eps)
// algorithms against the Panconesi-Sozio single-stage baseline on the
// same workload.
//
//   $ ./video_scheduling
#include <cstdio>
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "dist/scheduler.hpp"
#include "model/solution.hpp"
#include "workload/scenario.hpp"

using namespace treesched;

int main() {
  LineScenarioSpec spec;
  spec.line.num_slots = 288;       // a day in 5-minute slots
  spec.line.num_resources = 4;     // encoder pools
  spec.line.num_demands = 250;     // jobs
  spec.line.min_proc_time = 2;
  spec.line.max_proc_time = 24;
  spec.line.window_slack = 3.0;    // deadlines three times the runtime
  spec.line.heights = HeightLaw::kUniformRange;
  spec.line.height_min = 0.2;
  spec.line.profit_max = 500.0;
  spec.seed = 7;
  const Problem problem = make_line_problem(spec);

  std::printf("workload: %s\n", describe(spec).c_str());
  std::printf("placements (demand instances): %d\n",
              problem.num_instances());

  Table table("video scheduling: multi-stage vs PS single-stage");
  table.set_header({"algorithm", "profit", "jobs", "bound", "cert-gap",
                    "rounds"});

  for (const bool ps : {false, true}) {
    DistOptions options;
    options.epsilon = 0.1;
    options.stage_mode = ps ? StageMode::kSingleStagePS
                            : StageMode::kMultiStage;
    const DistResult r = solve_line_arbitrary_distributed(problem, options);
    const auto report = check_feasibility(problem, r.solution);
    if (!report.feasible) {
      std::fprintf(stderr, "infeasible: %s\n", report.violation.c_str());
      return 1;
    }
    table.add_row({ps ? "PS single-stage (baseline)" : "multi-stage (ours)",
                   fmt(r.profit, 1), std::to_string(r.solution.size()),
                   fmt(r.ratio_bound, 1),
                   fmt(r.stats.dual_upper_bound / r.profit, 2),
                   std::to_string(r.stats.comm_rounds)});
  }
  table.print(std::cout);
  std::printf(
      "\nThe multi-stage schedule pays more rounds for a slackness of\n"
      "lambda = 1-eps instead of 1/(5+eps), which is the paper's\n"
      "improvement from 55+eps to 23+eps on this problem class.\n");
  return 0;
}
