// Paper walkthrough: reconstructs the paper's illustrative figures as
// executable checks —
//   Figure 1: three jobs (heights 0.5 / 0.7 / 0.4) on a timeline where
//             {A,C} and {B,C} fit but {A,B} does not;
//   Figure 2: a tree network with demands <1,10>, <2,3>, <12,13> all
//             sharing edge <4,5>: at unit height only one schedules, with
//             heights 0.4/0.7/0.3 the first and third coexist;
//   Figures 3/6: a tree decomposition of the Figure-6 tree — capture
//             nodes, pivot sets and bending points printed for the
//             demand <4,13>.
//
//   $ ./paper_walkthrough
#include <cstdio>

#include "decomp/tree_decomposition.hpp"
#include "exact/branch_and_bound.hpp"
#include "model/line_problem.hpp"
#include "model/solution.hpp"

using namespace treesched;

namespace {

void figure1() {
  std::printf("--- Figure 1: line network, heights 0.5 / 0.7 / 0.4 ---\n");
  // Fixed placements (window == processing time): A overlaps both B and
  // C; C is disjoint from B.  {A,C} fits (0.5+0.4 <= 1 where they
  // overlap), {B,C} fits (disjoint), {A,B} exceeds the bandwidth.
  LineProblem line(10, 1);
  line.add_demand(0, 5, 6, 1.0, 0.5);  // A: slots 0-5
  line.add_demand(4, 9, 6, 1.0, 0.7);  // B: slots 4-9 (overlaps A on 4-5)
  line.add_demand(0, 3, 4, 1.0, 0.4);  // C: slots 0-3 (under A only)
  const Problem p = line.lower();

  const auto try_set = [&](std::vector<InstanceId> ids, const char* name) {
    Solution s{std::move(ids)};
    std::printf("  %-6s feasible: %s\n", name,
                check_feasibility(p, s).feasible ? "yes" : "no");
  };
  try_set({0, 2}, "{A,C}");
  try_set({1, 2}, "{B,C}");
  try_set({0, 1}, "{A,B}");  // 0.5 + 0.7 > 1 on shared slots
}

// A 14-vertex tree where three demands all route through the central
// edge (3,4) — the situation of the paper's Figure 2.
TreeNetwork figure2_tree() {
  return TreeNetwork(
      14, {{3, 4}, {0, 2}, {2, 3}, {4, 8}, {8, 9}, {1, 3}, {4, 5},
           {3, 11}, {4, 12}, {5, 6}, {6, 7}, {9, 10}, {12, 13}});
}

void figure2() {
  std::printf("--- Figure 2: tree network, three demands sharing one edge "
              "---\n");
  {
    std::vector<TreeNetwork> networks{figure2_tree()};
    Problem unit(14, std::move(networks));
    unit.add_demand(0, 9, 1.0);    // long demand through (3,4)
    unit.add_demand(1, 5, 1.0);    // also through (3,4)
    unit.add_demand(11, 12, 1.0);  // also through (3,4)
    unit.finalize();
    const ExactResult exact = solve_exact(unit);
    std::printf("  unit height: exact schedules %zu demand(s) "
                "(paper: only one)\n", exact.solution.selected.size());
  }
  {
    // Heights 0.4 / 0.7 / 0.3 (paper): the first and third fit together.
    std::vector<TreeNetwork> networks{figure2_tree()};
    Problem heights(14, std::move(networks));
    heights.add_demand(0, 9, 1.0, 0.4);
    heights.add_demand(1, 5, 1.0, 0.7);
    heights.add_demand(11, 12, 1.0, 0.3);
    heights.finalize();
    const ExactResult exact = solve_exact(heights);
    std::printf("  heights 0.4/0.7/0.3: exact schedules %zu demand(s) "
                "(paper: the first and third)\n",
                exact.solution.selected.size());
  }
}

void figure36() {
  std::printf("--- Figures 3/6: decompositions of the Figure-6 tree ---\n");
  // Paper Figure 6 tree, 0-based.
  const TreeNetwork t(
      14, {{0, 1}, {1, 3}, {1, 2}, {3, 4}, {4, 8}, {8, 7}, {7, 6},
           {4, 5}, {5, 9}, {9, 10}, {4, 11}, {11, 12}, {12, 13}});
  const TreeDecomposition rf = build_root_fixing(t, 0);
  const TreeDecomposition ideal = build_ideal(t);
  std::printf("  root-fixing: depth %d, theta %d\n", rf.max_depth(),
              rf.pivot_size());
  std::printf("  ideal:       depth %d, theta %d  (Lemma 4.1: <= %d / 2)\n",
              ideal.max_depth(), ideal.pivot_size(), 2 * 4 + 1);

  // The demand <4,13> of the paper is <3,12> here; show its capture node,
  // the pivot set of that node's component, and the bending points.
  const VertexId u = 3, v = 12;
  const VertexId mu = ideal.capture(u, v);
  std::printf("  demand <%d,%d>: captured at %d (H-depth %d)\n", u, v, mu,
              ideal.depth(mu));
  for (VertexId pivot : ideal.pivots(mu)) {
    const VertexId bend = t.median(pivot, u, v);
    std::printf("    pivot %d -> bending point %d on the path\n", pivot,
                bend);
  }
}

}  // namespace

int main() {
  std::printf("paper walkthrough: the figures of arXiv:1205.1924 as "
              "executable checks\n\n");
  figure1();
  figure2();
  figure36();
  std::printf("\nall three figures behave exactly as the paper describes.\n");
  return 0;
}
