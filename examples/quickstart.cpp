// Quickstart: build a tiny two-network scheduling problem by hand, run
// the distributed (7+eps)-approximation of Theorem 5.3, and inspect the
// result — the 60-second tour of the public API.
//
//   $ ./quickstart
#include <cstdio>

#include "dist/scheduler.hpp"
#include "exact/branch_and_bound.hpp"
#include "model/problem.hpp"
#include "model/solution.hpp"

using namespace treesched;

int main() {
  // A shared vertex set of 8 sites and two tree-shaped networks over it:
  // network 0 is a chain, network 1 is a hub-and-spoke.
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(8));
  networks.emplace_back(8, std::vector<std::pair<VertexId, VertexId>>{
                               {3, 0}, {3, 1}, {3, 2}, {3, 4},
                               {3, 5}, {3, 6}, {3, 7}});
  Problem problem(8, std::move(networks));

  // Four unit-height demands; demand 3 can only use the chain.
  problem.add_demand(0, 7, 10.0);  // long haul
  problem.add_demand(1, 4, 6.0);
  problem.add_demand(2, 5, 4.0);
  const DemandId restricted = problem.add_demand(5, 6, 3.0);
  problem.set_access(restricted, {0});
  problem.finalize();

  std::printf("problem: %d vertices, %d networks, %d demands, %d instances\n",
              problem.num_vertices(), problem.num_networks(),
              problem.num_demands(), problem.num_instances());

  // Run the distributed scheduler (ideal tree decomposition, Luby MIS).
  DistOptions options;
  options.epsilon = 0.1;
  options.count_messages = true;
  const DistResult result = solve_tree_unit_distributed(problem, options);

  const auto report = check_feasibility(problem, result.solution);
  std::printf("feasible: %s\n", report.feasible ? "yes" : "no");
  std::printf("profit:   %.1f (guarantee: within %.2fx of OPT)\n",
              result.profit, result.ratio_bound);
  std::printf("certified upper bound on OPT: %.1f\n",
              result.stats.dual_upper_bound);
  std::printf("rounds:   %lld (MIS) + %d steps; %lld messages\n",
              static_cast<long long>(result.stats.mis_rounds),
              result.stats.steps,
              static_cast<long long>(result.stats.messages));

  for (InstanceId i : result.solution.selected) {
    const DemandInstance& inst = problem.instance(i);
    std::printf("  demand %d -> network %d (path %d~%d, profit %.1f)\n",
                inst.demand, inst.network, inst.u, inst.v, inst.profit);
  }

  // Cross-check against the exact optimum (small instance).
  const ExactResult exact = solve_exact(problem);
  std::printf("exact OPT: %.1f (achieved %.0f%%)\n", exact.profit,
              100.0 * result.profit / exact.profit);
  return 0;
}
