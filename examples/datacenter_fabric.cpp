// Datacenter fabric scenario: the workload the paper's introduction
// motivates — agents compete for exclusive routes between machine pairs
// over several parallel tree fabrics with *fractional* bandwidth
// requirements (the arbitrary-height case, Theorem 6.3).
//
// Topology: r parallel aggregation trees over the same hosts (a
// multi-rooted fat-tree abstraction).  Flows request bandwidth between
// random host pairs; profits follow a Zipf law (few large tenants).
//
//   $ ./datacenter_fabric
#include <cstdio>
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "dist/scheduler.hpp"
#include "model/solution.hpp"
#include "workload/scenario.hpp"

using namespace treesched;

int main() {
  TreeScenarioSpec spec;
  spec.shape = TreeShape::kBinary;  // aggregation tree
  spec.num_vertices = 255;          // hosts + switches
  spec.num_networks = 3;            // three parallel fabrics
  spec.demands.num_demands = 400;   // tenant flows
  spec.demands.heights = HeightLaw::kBimodal;  // mice and elephants
  spec.demands.height_min = 0.05;
  spec.demands.profits = ProfitLaw::kZipf;
  spec.demands.profit_max = 1000.0;
  spec.seed = 2024;
  const Problem problem = make_tree_problem(spec);

  std::printf("fabric: %s\n", describe(spec).c_str());
  std::printf("instances: %d\n", problem.num_instances());

  DistOptions options;
  options.epsilon = 0.1;
  options.count_messages = true;
  const DistResult result = solve_tree_arbitrary_distributed(problem,
                                                             options);
  const auto report = check_feasibility(problem, result.solution);

  Table table("datacenter fabric allocation (Theorem 6.3 algorithm)");
  table.set_header({"metric", "value"});
  table.add_row({"feasible", report.feasible ? "yes" : "no"});
  table.add_row({"flows admitted", std::to_string(result.solution.size())});
  table.add_row({"profit", fmt(result.profit, 1)});
  table.add_row({"certified OPT bound", fmt(result.stats.dual_upper_bound,
                                            1)});
  table.add_row({"certified gap",
                 fmt(result.stats.dual_upper_bound / result.profit, 2)});
  table.add_row({"proven worst-case bound", fmt(result.ratio_bound, 1)});
  table.add_row({"communication rounds",
                 std::to_string(result.stats.comm_rounds)});
  table.add_row({"messages", std::to_string(result.stats.messages)});
  table.print(std::cout);

  // Which fabric carries the most profit?
  std::vector<double> per_fabric(3, 0.0);
  for (InstanceId i : result.solution.selected)
    per_fabric[static_cast<std::size_t>(problem.instance(i).network)] +=
        problem.instance(i).profit;
  for (int q = 0; q < 3; ++q)
    std::printf("fabric %d carries profit %.1f\n", q, per_fabric[q]);
  return report.feasible ? 0 : 1;
}
