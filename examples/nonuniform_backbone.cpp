// Non-uniform bandwidths (the IPDPS 2013 extension): a wide-area backbone
// where core links carry several channels while edge links carry one.
// Unit-height circuits compete for channels; the capacity-aware raising
// rule (DESIGN.md Section 6) schedules them with a certified optimality
// gap.  The example also shows the naive-raise ablation: applying the
// paper's uniform-capacity increments verbatim weakens the certificate.
//
//   $ ./nonuniform_backbone
#include <cstdio>
#include <iostream>

#include "capacity/nonuniform.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "model/solution.hpp"
#include "workload/scenario.hpp"

using namespace treesched;

int main() {
  TreeScenarioSpec spec;
  spec.shape = TreeShape::kCaterpillar;  // backbone spine + access legs
  spec.num_vertices = 120;
  spec.num_networks = 2;
  spec.demands.num_demands = 300;
  spec.demands.heights = HeightLaw::kUnit;  // one channel per circuit
  spec.demands.profits = ProfitLaw::kProportionalLength;
  spec.capacities = CapacityLaw::kHotspot;  // few thin links, fat core
  spec.capacity_base = 1.0;
  spec.capacity_spread = 8.0;  // core links carry 8 channels
  spec.seed = 99;
  const Problem problem = make_tree_problem(spec);

  std::printf("backbone: %s\n", describe(spec).c_str());
  std::printf("capacity range: [%.0f, %.0f] channels, path spread rho=%.1f\n",
              problem.min_capacity(), problem.max_capacity(),
              max_path_capacity_spread(problem));

  Table table("non-uniform backbone: capacity-aware vs naive raises");
  table.set_header({"variant", "profit", "circuits", "cert-bound",
                    "cert-gap"});
  for (const bool aware : {true, false}) {
    NonuniformOptions options;
    options.capacity_aware = aware;
    options.dist.epsilon = 0.1;
    const NonuniformResult r = solve_nonuniform_unit(problem, options);
    const auto report = check_feasibility(problem, r.solution);
    if (!report.feasible) {
      std::fprintf(stderr, "infeasible: %s\n", report.violation.c_str());
      return 1;
    }
    table.add_row({aware ? "capacity-aware (ours)" : "naive (paper verbatim)",
                   fmt(r.profit, 1), std::to_string(r.solution.size()),
                   fmt(r.stats.dual_upper_bound, 1),
                   fmt(r.stats.dual_upper_bound / r.profit, 2)});
  }
  table.print(std::cout);

  // Per-class view: how much profit each bottleneck class contributes.
  NonuniformOptions by_class;
  by_class.by_class = true;
  const NonuniformResult r = solve_nonuniform_unit(problem, by_class);
  std::printf("\nby-class solve: %d bottleneck classes, profit %.1f\n",
              r.classes, r.profit);
  return 0;
}
