// T4 — Theorem 6.3: tree networks with arbitrary heights.  The combined
// algorithm (wide via unit rule 7+eps, narrow via the modified rule
// 73+eps, per-network better-of) guarantees (80+eps).  The table breaks
// the run into its wide/narrow parts and compares against the exact
// optimum on small workloads.
#include "bench_util.hpp"
#include "decomp/layered.hpp"
#include "dist/luby_mis.hpp"
#include "dist/scheduler.hpp"
#include "seq/sequential.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

namespace {

Problem make(std::uint64_t seed, bool large, double hmin) {
  TreeScenarioSpec spec;
  spec.num_vertices = large ? 1600 : 20;
  spec.num_networks = 2;
  spec.demands.num_demands = large ? 1000 : 9;
  spec.demands.heights = HeightLaw::kBimodal;
  spec.demands.height_min = hmin;
  spec.demands.profit_max = 100.0;
  spec.seed = seed;
  return make_tree_problem(spec);
}

}  // namespace

int main() {
  print_claim("T4  tree networks, arbitrary heights",
              "Thm 6.3: (80+eps)-approx = wide (7+eps) + narrow (73+eps), "
              "combined by per-network better-of; rounds gain a 1/h_min "
              "factor");

  const double eps = 0.1;
  Aggregate ours, seq;
  RunningStats wide_share;
  std::vector<JsonRecord> runs;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Problem p = make(seed, /*large=*/false, 0.15);
    const ExactResult exact = solve_exact(p);
    DistOptions options;
    options.epsilon = eps;
    options.seed = seed;
    const DistResult a = solve_tree_arbitrary_distributed(p, options);
    const Profit profit = checked_profit(p, a.solution);
    ours.ratio_vs_opt.add(ratio(exact.profit, profit));
    ours.ratio_vs_cert.add(ratio(a.stats.dual_upper_bound, profit));
    ours.rounds.add(static_cast<double>(a.stats.comm_rounds));
    double wide_profit = 0.0;
    for (InstanceId i : a.solution.selected)
      if (p.instance(i).height > 0.5) wide_profit += p.instance(i).profit;
    wide_share.add(profit > 0 ? wide_profit / profit : 0.0);

    const SeqResult c = solve_tree_arbitrary_sequential(p);
    seq.ratio_vs_opt.add(ratio(exact.profit, checked_profit(p, c.solution)));
    seq.ratio_vs_cert.add(ratio(c.stats.dual_upper_bound, c.profit));
    seq.rounds.add(static_cast<double>(c.stats.steps));

    runs.push_back({{"workload", 0.0},
                    {"seed", static_cast<double>(seed)},
                    {"ratio", ratio(exact.profit, profit)},
                    {"cert_gap", ratio(a.stats.dual_upper_bound, profit)},
                    {"rounds", static_cast<double>(a.stats.comm_rounds)},
                    {"wide_share", profit > 0 ? wide_profit / profit : 0.0},
                    {"seq_ratio", ratio(exact.profit, c.profit)}});
  }

  Table small("T4a  small workloads (exact OPT, 20 seeds)");
  small.set_header(Aggregate::header());
  ours.row(small, "distributed wide+narrow (ours)", 80.0 / (1.0 - eps));
  seq.row(small, "sequential wide+narrow split", 12.0);
  small.print(std::cout);
  std::printf("wide instances carry %.0f%% of the scheduled profit on "
              "average.\n\n", 100.0 * wide_share.mean());

  // h_min sensitivity on larger workloads: rounds scale ~ 1/h_min.
  Table hmin_table("T4b  h_min sensitivity (n=1600, m=1000, certified)");
  hmin_table.set_header({"h_min", "stages/epoch", "steps", "comm-rounds",
                         "cert-gap"});
  for (double hmin : {0.4, 0.2, 0.1, 0.05}) {
    const Problem p = make(77, /*large=*/true, hmin);
    DistOptions options;
    options.epsilon = eps;
    const DistResult a = solve_tree_arbitrary_distributed(p, options);
    const Profit profit = checked_profit(p, a.solution);
    hmin_table.add_row({fmt(hmin, 2),
                        std::to_string(a.stats.stages_per_epoch),
                        std::to_string(a.stats.steps),
                        std::to_string(a.stats.comm_rounds),
                        fmt(ratio(a.stats.dual_upper_bound, profit), 3)});
    runs.push_back(
        {{"workload", 1.0},
         {"h_min", hmin},
         {"stages_per_epoch", static_cast<double>(a.stats.stages_per_epoch)},
         {"rounds", static_cast<double>(a.stats.comm_rounds)},
         {"cert_gap", ratio(a.stats.dual_upper_bound, profit)}});
  }
  hmin_table.print(std::cout);

  // Message-level arm: the Theorem 6.3 two-pass schedule on the wire.
  // h_min = 0.4 and eps = 0.3 keep the narrow pass's fixed stage count
  // tractable (stages ~ log(1/eps)/log(1/xi) with xi = C/(C+h_min)).
  Table wire("T4c  message-level two-pass protocol (h_min=0.4, eps=0.3, "
             "4 seeds)");
  wire.set_header({"seed", "ratio", "modeled-rounds", "wire-rounds",
                   "wide-pass-rounds", "narrow-pass-rounds", "sched_ok"});
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = make(seed, /*large=*/false, 0.4);
    const ExactResult exact = solve_exact(p);
    DistOptions moptions;
    moptions.epsilon = 0.3;
    moptions.seed = seed;
    const DistResult m = solve_tree_arbitrary_distributed(p, moptions);
    ProtocolOptions options;
    options.epsilon = 0.3;
    options.seed = seed;
    const ProtocolDistResult w = run_tree_arbitrary_protocol(p, options);
    const double w_ratio =
        ratio(exact.profit, checked_profit(p, w.run.solution));
    std::int64_t unit_rounds = 0, narrow_rounds = 0;
    for (const ProtocolPass& pass : w.run.passes) {
      if (pass.rule == RaiseRuleKind::kUnit)
        unit_rounds = pass.rounds;
      else
        narrow_rounds = pass.rounds;
    }
    wire.add_row({std::to_string(seed), fmt(w_ratio, 3),
                  std::to_string(m.stats.comm_rounds),
                  std::to_string(w.run.rounds), std::to_string(unit_rounds),
                  std::to_string(narrow_rounds),
                  w.run.schedule_ok ? "1" : "0"});
    JsonRecord row{{"workload", 2.0},
                   {"seed", static_cast<double>(seed)},
                   {"protocol_ratio", w_ratio},
                   {"modeled_rounds",
                    static_cast<double>(m.stats.comm_rounds)},
                   {"wide_pass_rounds", static_cast<double>(unit_rounds)},
                   {"narrow_pass_rounds",
                    static_cast<double>(narrow_rounds)}};
    append_protocol_fields(row, w.run);
    runs.push_back(std::move(row));
  }
  wire.print(std::cout);
  emit_json("t4_tree_arbitrary", runs);

  std::printf("\nexpected shape: measured ratios ~1.2-3 (bound 88.9); "
              "stages per epoch grow ~1/h_min as in Thm 6.3's round "
              "formula.\n");
  return 0;
}
