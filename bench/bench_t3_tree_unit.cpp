// T3 — Theorem 5.3 (the main result): distributed scheduling on tree
// networks, unit heights, (7+eps)-approximation in polylog rounds, vs
// the Appendix-A sequential 3-approximation (2 when r = 1) and the
// PS-style single-stage schedule.
#include "bench_util.hpp"
#include "dist/scheduler.hpp"
#include "seq/sequential.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

namespace {

Problem make(std::uint64_t seed, TreeShape shape, bool large) {
  TreeScenarioSpec spec;
  spec.shape = shape;
  spec.num_vertices = large ? 2048 : 20;
  spec.num_networks = 2;
  spec.demands.num_demands = large ? 1400 : 9;
  spec.demands.profit_max = 100.0;
  spec.seed = seed;
  return make_tree_problem(spec);
}

}  // namespace

int main() {
  print_claim("T3  tree networks, unit heights (main result)",
              "Thm 5.3: (7+eps)-approx, O(T_MIS log n log(1/eps) log(p)) "
              "rounds; Appendix A sequential: 3 (2 if r=1)");

  const double eps = 0.1;
  std::vector<JsonRecord> runs;
  std::vector<double> ra_opt(13, 0.0);  // random-attachment exact optima

  // Small workloads with exact optimum, per tree shape.
  Table small("T3a  small workloads (n=20, m=9, exact OPT, 12 seeds/shape)");
  small.set_header({"shape", "algorithm", "ratio(mean)", "ratio(worst)",
                    "cert-gap(mean)", "proven-bound", "rounds(mean)"});
  int shape_index = 0;
  for (TreeShape shape : {TreeShape::kRandomAttachment, TreeShape::kBinary,
                          TreeShape::kCaterpillar, TreeShape::kStar}) {
    Aggregate ours, seq, ps;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const Problem p = make(seed, shape, /*large=*/false);
      const ExactResult exact = solve_exact(p);
      if (shape == TreeShape::kRandomAttachment)
        ra_opt[static_cast<std::size_t>(seed)] = exact.profit;
      DistOptions options;
      options.epsilon = eps;
      options.seed = seed;

      const DistResult a = solve_tree_unit_distributed(p, options);
      const double a_ratio =
          ratio(exact.profit, checked_profit(p, a.solution));
      ours.ratio_vs_opt.add(a_ratio);
      ours.ratio_vs_cert.add(ratio(a.stats.dual_upper_bound, a.profit));
      ours.rounds.add(static_cast<double>(a.stats.comm_rounds));

      DistOptions ps_options = options;
      ps_options.stage_mode = StageMode::kSingleStagePS;
      const DistResult b = solve_tree_unit_distributed(p, ps_options);
      const double b_ratio =
          ratio(exact.profit, checked_profit(p, b.solution));
      ps.ratio_vs_opt.add(b_ratio);
      ps.ratio_vs_cert.add(ratio(b.stats.dual_upper_bound, b.profit));
      ps.rounds.add(static_cast<double>(b.stats.comm_rounds));

      const SeqResult c = solve_tree_unit_sequential(p);
      const double c_ratio =
          ratio(exact.profit, checked_profit(p, c.solution));
      seq.ratio_vs_opt.add(c_ratio);
      seq.ratio_vs_cert.add(ratio(c.stats.dual_upper_bound, c.profit));
      seq.rounds.add(static_cast<double>(c.stats.steps));

      runs.push_back(
          {{"workload", 0.0},
           {"shape", static_cast<double>(shape_index)},
           {"seed", static_cast<double>(seed)},
           {"ours_ratio", a_ratio},
           {"ours_rounds", static_cast<double>(a.stats.comm_rounds)},
           {"ps_ratio", b_ratio},
           {"seq_ratio", c_ratio}});
    }
    ++shape_index;
    auto emit = [&](const char* name, const Aggregate& agg, double bound) {
      small.add_row({to_string(shape), name, fmt(agg.ratio_vs_opt.mean(), 3),
                     fmt(agg.ratio_vs_opt.max(), 3),
                     fmt(agg.ratio_vs_cert.mean(), 3), fmt(bound, 2),
                     fmt(agg.rounds.mean(), 0)});
    };
    emit("distributed 7+eps (ours)", ours, 7.0 / (1.0 - eps));
    emit("PS-style single-stage", ps, 7.0 * (5.0 + eps));
    emit("sequential App-A (3)", seq, 3.0);
  }
  small.print(std::cout);

  // Large workloads: certified bound + polylog round budget check.
  Table large("T3b  large workloads (n=2048, m=1400, certified, 4 seeds)");
  large.set_header({"seed", "profit", "cert-gap", "epochs", "steps",
                    "comm-rounds", "epoch-budget 2logn+1"});
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = make(seed + 300, TreeShape::kRandomAttachment,
                           /*large=*/true);
    DistOptions options;
    options.epsilon = eps;
    options.seed = seed;
    const DistResult a = solve_tree_unit_distributed(p, options);
    const Profit profit = checked_profit(p, a.solution);
    large.add_row({std::to_string(seed), fmt(profit, 0),
                   fmt(ratio(a.stats.dual_upper_bound, profit), 3),
                   std::to_string(a.stats.epochs),
                   std::to_string(a.stats.steps),
                   std::to_string(a.stats.comm_rounds), "19"});
    runs.push_back({{"workload", 1.0},
                    {"seed", static_cast<double>(seed)},
                    {"profit", profit},
                    {"cert_gap", ratio(a.stats.dual_upper_bound, profit)},
                    {"epochs", static_cast<double>(a.stats.epochs)},
                    {"rounds", static_cast<double>(a.stats.comm_rounds)}});
  }
  large.print(std::cout);

  // Message-level arm: Theorem 5.3 on the wire (random-attachment trees,
  // ideal decomposition), against the modeled rounds of the same runs.
  Table wire("T3c  message-level protocol (n=20, m=9, 6 seeds)");
  wire.set_header({"seed", "ratio", "modeled-rounds", "wire-rounds",
                   "wire-messages", "mis_ok", "sched_ok"});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = make(seed, TreeShape::kRandomAttachment,
                           /*large=*/false);
    DistOptions moptions;
    moptions.epsilon = eps;
    moptions.seed = seed;
    const DistResult m = solve_tree_unit_distributed(p, moptions);
    ProtocolOptions options;
    options.epsilon = eps;
    options.seed = seed;
    const ProtocolDistResult w = run_tree_unit_protocol(p, options);
    const double w_ratio = ratio(ra_opt[static_cast<std::size_t>(seed)],
                                 checked_profit(p, w.run.solution));
    wire.add_row({std::to_string(seed), fmt(w_ratio, 3),
                  std::to_string(m.stats.comm_rounds),
                  std::to_string(w.run.rounds),
                  std::to_string(w.run.messages),
                  w.run.mis_ok ? "1" : "0", w.run.schedule_ok ? "1" : "0"});
    JsonRecord row{{"workload", 2.0},
                   {"seed", static_cast<double>(seed)},
                   {"protocol_ratio", w_ratio},
                   {"modeled_rounds",
                    static_cast<double>(m.stats.comm_rounds)}};
    append_protocol_fields(row, w.run);
    runs.push_back(std::move(row));
  }
  wire.print(std::cout);
  emit_json("t3_tree_unit", runs);

  std::printf("\nexpected shape: distributed mean ratio ~1.1-1.6 (bound "
              "7.8); sequential slightly better ratio but Theta(n)-ish "
              "step counts on deep trees; epochs <= 2 log n + 1.\n");
  return 0;
}
