// F13 — epoch-setup ablation: the legacy per-epoch component recompute
// (split_components: a fresh union-find over every per-edge/per-demand
// clique chain, O(sum path) per epoch) against the persistent
// ComponentForest (built once per run from the CSR edge->instances
// index, sliced + frontier-filtered per epoch), isolated on the largest
// tree (t3/t4-style) and line shapes.
//
// Reported per arm:
//   epoch_setup_ns   the per-epoch derivation cost the epoch loop pays —
//                    the forest's span slicing (oracles clone lazily on
//                    the workers, satisfied components never clone) vs
//                    the legacy union-find + eager clones.  This is the
//                    gated >= 2x claim: the O(sum path) *per-epoch*
//                    setup is gone;
//   forest_build_ns  the forest's one-time build (zero on legacy arms) —
//                    the same clique connectivity, paid once per run on
//                    a contiguous CSR walk instead of once per epoch,
//                    and amortized across every epoch (and across runs
//                    when an engine is reused).  Reported, and folded
//                    into the informational total-speedup column, so the
//                    one-time cost is never hidden;
//   merge_ns         the deterministic merge (same code both arms).
//
// Both arms are bit-identical in every output (tests/
// test_component_forest.cpp), so the rows differ only in time.
#include <chrono>
#include <limits>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "decomp/layered.hpp"
#include "framework/two_phase.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

namespace {

Problem tree_unit(int n) {  // t3's largest shapes
  TreeScenarioSpec spec;
  spec.num_vertices = n;
  spec.num_networks = 2;
  spec.demands.num_demands = 3 * n / 4;
  spec.demands.profit_max = 1e4;
  spec.seed = 42;
  return make_tree_problem(spec);
}

Problem tree_arbitrary(int n) {  // t4's largest shapes
  TreeScenarioSpec spec;
  spec.num_vertices = n;
  spec.num_networks = 2;
  spec.demands.num_demands = 3 * n / 4;
  spec.demands.heights = HeightLaw::kBimodal;
  spec.demands.height_min = 0.4;
  spec.demands.profit_max = 1e4;
  spec.seed = 42;
  return make_tree_problem(spec);
}

Problem line_shape(int slots) {
  LineScenarioSpec spec;
  spec.line.num_slots = slots;
  spec.line.num_resources = 2;
  spec.line.num_demands = slots / 2;
  spec.line.min_proc_time = 8;
  spec.line.max_proc_time = slots / 8;
  spec.line.window_slack = 2.0;
  spec.line.profit_max = 1e4;
  spec.seed = 42;
  return make_line_problem(spec);
}

struct Shape {
  const char* name;
  double arm_id;
  Problem problem;
  bool line;
};

struct Measurement {
  double wall_ms = 0.0;
  int steps = 0;
  double epoch_setup_ns = 0.0;
  double forest_build_ns = 0.0;
  double merge_ns = 0.0;
};

Measurement run_arm(const Problem& p, const LayeredPlan& plan, bool forest) {
  SolverConfig config;
  config.epsilon = 0.1;
  config.lockstep = true;  // the Section 5 schedule, as in f12's headline
  config.threads = 4;
  config.use_component_forest = forest;
  Measurement best;
  // Best-of-3: setup is a small slice of the run, so take the minimum
  // to shed scheduler noise.
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const SolveResult run = p.unit_height()
                                ? solve_with_plan(p, plan, config)
                                : solve_height_split(p, plan, config);
    const auto stop = std::chrono::steady_clock::now();
    Measurement m;
    m.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    m.steps = run.stats.steps;
    m.epoch_setup_ns = static_cast<double>(run.stats.epoch_setup_ns);
    m.forest_build_ns = static_cast<double>(run.stats.forest_build_ns);
    m.merge_ns = static_cast<double>(run.stats.merge_ns);
    checked_profit(p, run.solution);
    if (rep == 0 ||
        m.epoch_setup_ns + m.forest_build_ns <
            best.epoch_setup_ns + best.forest_build_ns)
      best = m;
  }
  return best;
}

}  // namespace

int main() {
  print_claim("F13  epoch setup: split_components vs component forest",
              "the persistent forest replaces the legacy O(sum path) "
              "per-epoch union-find with span slicing + lazy worker-side "
              "clones; >= 2x lower per-epoch setup on every largest "
              "t3/t4/line shape (one-time build reported and folded into "
              "the informational total)");

  std::vector<Shape> shapes;
  shapes.push_back({"tree-unit-2048", 0.0, tree_unit(2048), false});
  shapes.push_back({"tree-unit-4096", 1.0, tree_unit(4096), false});
  shapes.push_back({"tree-arb-2048", 2.0, tree_arbitrary(2048), false});
  shapes.push_back({"line-1024", 3.0, line_shape(1024), true});
  shapes.push_back({"line-2048", 4.0, line_shape(2048), true});

  Table table("F13  per-run component setup (threads=4, lockstep)");
  table.set_header({"shape", "instances", "arm", "setup(ms)", "build(ms)",
                    "merge(ms)", "wall(ms)", "setup speedup",
                    "total speedup"});
  std::vector<JsonRecord> runs;
  double min_speedup = 0.0;
  bool first_speedup = true;

  for (const Shape& shape : shapes) {
    const LayeredPlan plan =
        shape.line ? build_line_layered_plan(shape.problem)
                   : build_tree_layered_plan(shape.problem,
                                             DecompKind::kIdeal);
    const Measurement legacy = run_arm(shape.problem, plan, false);
    const Measurement forest = run_arm(shape.problem, plan, true);
    // Gated: the per-epoch setup alone (what the epoch loop pays every
    // epoch).  Informational: the same ratio with the forest's one-time
    // build charged to this single run.  A zero forest measurement means
    // the derive was below the clock's granularity — the best possible
    // outcome, scored as infinite speedup (emit_json writes null), never
    // as a 0.0 that would fail the gate.
    const double speedup =
        forest.epoch_setup_ns > 0.0
            ? legacy.epoch_setup_ns / forest.epoch_setup_ns
            : std::numeric_limits<double>::infinity();
    const double forest_total =
        forest.epoch_setup_ns + forest.forest_build_ns;
    const double total_speedup =
        forest_total > 0.0 ? legacy.epoch_setup_ns / forest_total
                           : std::numeric_limits<double>::infinity();
    if (first_speedup || speedup < min_speedup) min_speedup = speedup;
    first_speedup = false;

    for (const bool is_forest : {false, true}) {
      const Measurement& m = is_forest ? forest : legacy;
      table.add_row(
          {shape.name, std::to_string(shape.problem.num_instances()),
           is_forest ? "forest" : "legacy", fmt(m.epoch_setup_ns * 1e-6, 2),
           fmt(m.forest_build_ns * 1e-6, 2), fmt(m.merge_ns * 1e-6, 2),
           fmt(m.wall_ms, 1), is_forest ? fmt(speedup, 2) : "1.00",
           is_forest ? fmt(total_speedup, 2) : "1.00"});
      runs.push_back(
          {{"arm", shape.arm_id},
           {"forest", is_forest ? 1.0 : 0.0},
           {"instances",
            static_cast<double>(shape.problem.num_instances())},
           {"steps", static_cast<double>(m.steps)},
           {"epoch_setup_ns", m.epoch_setup_ns},
           {"forest_build_ns", m.forest_build_ns},
           {"merge_ns", m.merge_ns},
           {"wall_ms", m.wall_ms},
           {"setup_speedup", is_forest ? speedup : 1.0},
           {"total_setup_speedup", is_forest ? total_speedup : 1.0}});
    }
  }
  table.print(std::cout);
  emit_json("f13_epoch_setup", runs);

  std::printf("\nminimum per-epoch setup speedup over the largest shapes "
              "(legacy split_components / forest derive): %.2fx %s\n",
              min_speedup,
              min_speedup >= 2.0 ? "(>= 2x: PASS)" : "(< 2x: REGRESSION)");
  std::printf("expected shape: the legacy arm re-runs the union-find over "
              "every clique chain each epoch and clones every component's "
              "oracle eagerly; the forest pays one CSR-walk build per run "
              "(build(ms), amortized across epochs and runs), after which "
              "each epoch only slices spans — clones happen lazily on the "
              "workers, and only for components with frontier work.  The "
              "gap widens with sum-path density (line >> tree).\n");
  // Enforced like f12's 5x gate: a same-machine ratio, so host speed
  // cancels out.
  return min_speedup >= 2.0 ? 0 : 1;
}
