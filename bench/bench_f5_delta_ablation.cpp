// F5 — why the ideal decomposition matters: driving the same two-phase
// engine with the three decompositions trades the critical-set size Delta
// (approximation bound (Delta+1)/lambda) against the decomposition depth
// (epochs, hence rounds).  Only the ideal decomposition keeps both small:
// Delta = 6 and depth 2 log n — the paper's central design point.
#include "bench_util.hpp"
#include "decomp/tree_decomposition.hpp"
#include "dist/scheduler.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

int main() {
  print_claim("F5  decomposition ablation (Sections 4-5)",
              "root-fixing: Delta<=4 but depth ~n (epochs explode on deep "
              "trees); balancing: log depth but Delta ~2 log n (bound "
              "explodes); ideal: Delta=6 AND depth 2 log n");

  const double eps = 0.1;
  for (TreeShape shape : {TreeShape::kPath, TreeShape::kCaterpillar,
                          TreeShape::kRandomAttachment}) {
    Table table(std::string("F5  engine driven by each decomposition — ") +
                to_string(shape) + " (n=256, m=160, 3 seeds)");
    table.set_header({"decomposition", "Delta(obs)", "Delta(worst) 2(th+1)",
                      "epochs(mean)", "comm-rounds(mean)",
                      "worst-case bound", "cert-gap(mean)"});
    for (DecompKind kind : {DecompKind::kRootFixing, DecompKind::kBalancing,
                            DecompKind::kIdeal}) {
      RunningStats epochs, rounds, cert;
      int delta = 0;
      int worst_delta = 0;  // 2 (theta + 1) over the built decompositions
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        TreeScenarioSpec spec;
        spec.shape = shape;
        spec.num_vertices = 256;
        spec.num_networks = 2;
        spec.demands.num_demands = 160;
        spec.demands.profit_max = 32.0;
        spec.seed = seed * 17 + 3;
        const Problem p = make_tree_problem(spec);
        for (NetworkId q = 0; q < p.num_networks(); ++q) {
          const TreeDecomposition d = build_decomposition(p.network(q), kind);
          worst_delta = std::max(worst_delta, 2 * (d.pivot_size() + 1));
        }
        DistOptions options;
        options.epsilon = eps;
        options.decomp = kind;
        options.seed = seed;
        const DistResult r = solve_tree_unit_distributed(p, options);
        const Profit profit = checked_profit(p, r.solution);
        epochs.add(r.stats.epochs);
        rounds.add(static_cast<double>(r.stats.comm_rounds));
        cert.add(ratio(r.stats.dual_upper_bound, profit));
        delta = std::max(delta, r.stats.delta);
      }
      table.add_row({to_string(kind), std::to_string(delta),
                     std::to_string(worst_delta), fmt(epochs.mean(), 0),
                     fmt(rounds.mean(), 0),
                     fmt((worst_delta + 1.0) / (1.0 - eps), 1),
                     fmt(cert.mean(), 3)});
    }
    table.print(std::cout);
  }

  std::printf("\nexpected shape: on paths/caterpillars root-fixing runs "
              "~n/2 epochs (an order of magnitude more rounds); on random "
              "trees the balancing decomposition's worst-case Delta = "
              "2(theta+1) exceeds the ideal's 6 (its guarantee degrades "
              "with log n) while ideal keeps worst-case Delta <= 6 AND "
              "log-depth — the Lemma 4.1 tradeoff made visible end to "
              "end.\n");
  return 0;
}
