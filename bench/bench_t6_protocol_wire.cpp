// T6 — the message-level protocol stack vs the modeled engine: what the
// real wire costs.  The modeled schedulers charge 2 rounds per Luby
// iteration *actually run* plus 1 propagation round per step; the fixed
// protocol schedule spends its full (epochs x stages x steps) budget of
// tuples at 2*luby_budget + 1 rounds each, plus the phase-2 replay and
// the 2 discovery rounds — the price of no processor ever testing a
// global condition.  This bench regenerates that gap for the Section 6
// two-pass wide/narrow schedule (trees and lines) and the non-uniform
// run, and records the per-pass budgets, the discovery byte breakdown
// and the budget-sufficiency flags; the committed baseline puts all of
// it under the perf-trajectory gate.
#include "bench_util.hpp"
#include "capacity/nonuniform.hpp"
#include "dist/scheduler.hpp"
#include "obs/trace.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

namespace {

Problem make_tree(std::uint64_t seed, HeightLaw heights, CapacityLaw caps,
                  double spread) {
  TreeScenarioSpec spec;
  spec.num_vertices = 24;
  spec.num_networks = 2;
  spec.demands.num_demands = 11;
  spec.demands.heights = heights;
  spec.demands.height_min = 0.4;
  spec.demands.profit_max = 100.0;
  spec.capacities = caps;
  spec.capacity_spread = spread;
  spec.seed = seed;
  return make_tree_problem(spec);
}

Problem make_line(std::uint64_t seed) {
  LineScenarioSpec spec;
  spec.line.num_slots = 24;
  spec.line.num_resources = 2;
  spec.line.num_demands = 8;
  spec.line.max_proc_time = 8;
  spec.line.window_slack = 1.8;
  spec.line.heights = HeightLaw::kBimodal;
  spec.line.height_min = 0.4;
  spec.line.profit_max = 100.0;
  spec.seed = seed;
  return make_line_problem(spec);
}

}  // namespace

int main(int argc, char** argv) {
  // --trace=PATH: one extra traced protocol run (tree wide/narrow,
  // seed 1) after the measured sweep, dumped as a Chrome trace; the
  // emitted BENCH series is unaffected.
  // --transport=KIND: the backend of the serialized comparison arm
  // (default "serialized"; "threaded" measures the mutexed wire).  The
  // arm reruns the tree sweep on that backend, hard-fails unless it
  // reproduces the in-proc run bit for bit, and records the codec
  // traffic under the perf gate.
  // --faults=SPEC: the fault plan of the fault-injection arm (default
  // the CI plan below; see parse_fault_plan in dist/transport.hpp).  The
  // arm reruns the tree sweep under the plan, hard-fails if a masked
  // (non-degraded) run diverges from the fault-free one, and records the
  // recovery overhead (retransmit/dedup/CRC-reject counters) under the
  // perf gate.
  std::string trace_path;
  std::string transport_name = "serialized";
  std::string faults_spec = "drop=0.05,dup=0.02,corrupt=0.01,seed=1";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--trace=", 0) == 0) trace_path = arg.substr(8);
    if (arg.rfind("--transport=", 0) == 0) transport_name = arg.substr(12);
    if (arg.rfind("--faults=", 0) == 0) faults_spec = arg.substr(9);
  }
  const TransportKind wire_kind = parse_transport_kind(transport_name);
  const FaultPlan fault_plan = parse_fault_plan(faults_spec);

  print_claim("T6  message-level protocol vs modeled engine",
              "the fixed wire schedule spends discovery + sum_pass "
              "tuples*(2L+1) + tuples rounds; the modeled run only counts "
              "iterations actually used — the gap is the price of "
              "fixed-up-front schedules (Section 5/6)");

  const double eps = 0.3;
  std::vector<JsonRecord> runs;

  Table table("T6  wire vs model (eps=0.3, h_min=0.4; 4 seeds per arm)");
  table.set_header({"arm", "seed", "passes", "modeled-rounds", "wire-rounds",
                    "wire/model", "wire-bytes", "reply-bytes", "ratio",
                    "sched_ok"});

  const auto record = [&](const char* arm, double arm_id, std::uint64_t seed,
                          const Problem& p, const DistResult& modeled,
                          const ProtocolDistResult& wire) {
    const ExactResult exact = solve_exact(p);
    const double w_ratio =
        ratio(exact.profit, checked_profit(p, wire.run.solution));
    checked_profit(p, modeled.solution);
    const double blowup =
        modeled.stats.comm_rounds > 0
            ? static_cast<double>(wire.run.rounds) /
                  static_cast<double>(modeled.stats.comm_rounds)
            : 0.0;
    table.add_row({arm, std::to_string(seed),
                   std::to_string(wire.run.passes.size()),
                   std::to_string(modeled.stats.comm_rounds),
                   std::to_string(wire.run.rounds), fmt(blowup, 1),
                   std::to_string(wire.run.bytes),
                   std::to_string(wire.run.discovery_reply_bytes),
                   fmt(w_ratio, 3), wire.run.schedule_ok ? "1" : "0"});
    JsonRecord row{{"arm", arm_id},
                   {"seed", static_cast<double>(seed)},
                   {"protocol_ratio", w_ratio},
                   {"modeled_rounds",
                    static_cast<double>(modeled.stats.comm_rounds)}};
    append_protocol_fields(row, wire.run);
    runs.push_back(std::move(row));
  };

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = make_tree(seed + 10, HeightLaw::kBimodal,
                                CapacityLaw::kUniform, 1.0);
    DistOptions moptions;
    moptions.epsilon = eps;
    moptions.seed = seed;
    ProtocolOptions options;
    options.epsilon = eps;
    options.seed = seed;
    record("tree wide/narrow", 0.0, seed, p,
           solve_tree_arbitrary_distributed(p, moptions),
           run_tree_arbitrary_protocol(p, options));
  }
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = make_line(seed + 20);
    DistOptions moptions;
    moptions.epsilon = eps;
    moptions.seed = seed;
    ProtocolOptions options;
    options.epsilon = eps;
    options.seed = seed;
    record("line wide/narrow", 1.0, seed, p,
           solve_line_arbitrary_distributed(p, moptions),
           run_line_arbitrary_protocol(p, options));
  }
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = make_tree(seed + 30, HeightLaw::kUnit,
                                CapacityLaw::kTwoClass, 4.0);
    NonuniformOptions moptions;
    moptions.dist.epsilon = eps;
    moptions.dist.seed = seed;
    const NonuniformResult m = solve_nonuniform_unit(p, moptions);
    DistResult modeled;
    modeled.solution = m.solution;
    modeled.stats = m.stats;
    ProtocolOptions options;
    options.epsilon = eps;
    options.seed = seed;
    record("nonuniform unit", 2.0, seed, p, modeled,
           run_nonuniform_protocol(p, options));
  }
  table.print(std::cout);

  // The transport arm: the tree wide/narrow sweep again, once per seed
  // on the serialized backend.  The counters must be *identical* to the
  // in-proc run (same rounds, messages, bytes, selection — the modeled
  // byte charge is exactly the serialized size), so the arm's value
  // under the gate is the codec traffic: every charged message really
  // encoded at post and decoded at drain.
  Table wire_table(std::string("T6  transport arm (") +
                   to_string(wire_kind) + " vs inproc, 4 seeds)");
  wire_table.set_header({"seed", "wire-rounds", "wire-bytes",
                         "codec-msgs", "identical"});
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = make_tree(seed + 10, HeightLaw::kBimodal,
                                CapacityLaw::kUniform, 1.0);
    ProtocolOptions options;
    options.epsilon = eps;
    options.seed = seed;
    options.transport = TransportKind::kInProc;
    const ProtocolDistResult ref = run_tree_arbitrary_protocol(p, options);
    options.transport = wire_kind;
    const ProtocolDistResult wire = run_tree_arbitrary_protocol(p, options);
    const bool identical =
        wire.run.solution.selected == ref.run.solution.selected &&
        wire.run.rounds == ref.run.rounds &&
        wire.run.messages == ref.run.messages &&
        wire.run.bytes == ref.run.bytes &&
        wire.run.codec_encoded == wire.run.messages &&
        wire.run.codec_decoded == wire.run.messages;
    wire_table.add_row({std::to_string(seed),
                        std::to_string(wire.run.rounds),
                        std::to_string(wire.run.bytes),
                        std::to_string(wire.run.codec_encoded),
                        identical ? "1" : "0"});
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: %s transport diverged from inproc on seed %llu\n",
                   to_string(wire_kind),
                   static_cast<unsigned long long>(seed));
      return 1;
    }
    JsonRecord row{{"arm", 3.0},
                   {"seed", static_cast<double>(seed)},
                   {"codec_messages",
                    static_cast<double>(wire.run.codec_encoded)}};
    append_protocol_fields(row, wire.run);
    runs.push_back(std::move(row));
  }
  wire_table.print(std::cout);

  // The fault-injection arm: the tree wide/narrow sweep once more, under
  // the kFaulty recovery layer.  Any plan the retransmit budget masks
  // must reproduce the fault-free run bit for bit (hard-fail otherwise —
  // a silent wrong answer under faults is the one unacceptable outcome);
  // a degraded run is reported as such and only its certificate is
  // required to validate.  The recovery counters go under the perf gate
  // as the arm's informational overhead.
  Table fault_table(std::string("T6  fault arm (") + faults_spec +
                    ", 4 seeds)");
  fault_table.set_header({"seed", "retransmits", "deduped", "crc-rejected",
                          "lost", "degraded", "identical"});
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = make_tree(seed + 10, HeightLaw::kBimodal,
                                CapacityLaw::kUniform, 1.0);
    ProtocolOptions options;
    options.epsilon = eps;
    options.seed = seed;
    options.transport = TransportKind::kInProc;
    const ProtocolDistResult ref = run_tree_arbitrary_protocol(p, options);
    options.transport = TransportKind::kSerialized;
    options.faults = fault_plan;
    const ProtocolDistResult got = run_tree_arbitrary_protocol(p, options);
    const FaultStats& f = got.run.fault;
    const bool identical =
        got.run.solution.selected == ref.run.solution.selected &&
        got.run.rounds == ref.run.rounds &&
        got.run.messages == ref.run.messages &&
        got.run.bytes == ref.run.bytes &&
        got.run.lambda_observed == ref.run.lambda_observed;
    fault_table.add_row({std::to_string(seed), std::to_string(f.retransmits),
                         std::to_string(f.dup_dropped),
                         std::to_string(f.corrupt_dropped),
                         std::to_string(f.frames_lost),
                         got.run.degraded ? "1" : "0",
                         identical ? "1" : "0"});
    if (!got.run.degraded && !identical) {
      std::fprintf(stderr,
                   "FATAL: masked fault plan diverged from the fault-free "
                   "run on seed %llu\n",
                   static_cast<unsigned long long>(seed));
      return 1;
    }
    if (got.run.degraded && !got.run.certificate_ok) {
      std::fprintf(stderr,
                   "FATAL: degraded run's certificate failed central "
                   "validation on seed %llu\n",
                   static_cast<unsigned long long>(seed));
      return 1;
    }
    // degraded/certificate_ok are join keys (like mis_ok): a flip under
    // the committed plan re-keys the row and fails the gate.  The
    // recovery counters gate as metrics via their _messages suffix.
    JsonRecord row{{"arm", 4.0},
                   {"seed", static_cast<double>(seed)},
                   {"degraded", got.run.degraded ? 1.0 : 0.0},
                   {"certificate_ok", got.run.certificate_ok ? 1.0 : 0.0},
                   {"fault_retransmit_messages",
                    static_cast<double>(f.retransmits)},
                   {"fault_dedup_messages",
                    static_cast<double>(f.dup_dropped)},
                   {"fault_crc_reject_messages",
                    static_cast<double>(f.corrupt_dropped)}};
    append_protocol_fields(row, got.run);
    runs.push_back(std::move(row));
  }
  fault_table.print(std::cout);
  emit_json("t6_protocol_wire", runs);

  if (!trace_path.empty()) {
    const Problem p = make_tree(11, HeightLaw::kBimodal,
                                CapacityLaw::kUniform, 1.0);
    ProtocolOptions options;
    options.epsilon = eps;
    options.seed = 1;
    obs::enable_tracing();
    run_tree_arbitrary_protocol(p, options);
    obs::disable_tracing();
    if (obs::write_chrome_trace(trace_path))
      std::printf("trace written to %s (tree wide/narrow protocol, seed 1; "
                  "summarize with tools/trace_report.py)\n",
                  trace_path.c_str());
    else
      std::fprintf(stderr, "could not write trace to %s (tracing compiled "
                           "out, or path not writable)\n",
                   trace_path.c_str());
  }

  std::printf("\nexpected shape: wire rounds 10^2-10^4x the modeled count — "
              "the modeled run is adaptive (it stops when a stage is "
              "satisfied) while the wire spends its full fixed budget, so "
              "idle tuples at 2L+1 rounds each dominate; the narrow pass's "
              "stage count is the driver on the split arms; every "
              "sched_ok = 1 — the Lemma 5.1 budgets suffice on every "
              "seed.\n");
  return 0;
}
