// T6 — the message-level protocol stack vs the modeled engine: what the
// real wire costs.  The modeled schedulers charge 2 rounds per Luby
// iteration *actually run* plus 1 propagation round per step; the fixed
// protocol schedule spends its full (epochs x stages x steps) budget of
// tuples at 2*luby_budget + 1 rounds each, plus the phase-2 replay and
// the 2 discovery rounds — the price of no processor ever testing a
// global condition.  This bench regenerates that gap for the Section 6
// two-pass wide/narrow schedule (trees and lines) and the non-uniform
// run, and records the per-pass budgets, the discovery byte breakdown
// and the budget-sufficiency flags; the committed baseline puts all of
// it under the perf-trajectory gate.
#include "bench_util.hpp"
#include "capacity/nonuniform.hpp"
#include "dist/scheduler.hpp"
#include "obs/trace.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

namespace {

Problem make_tree(std::uint64_t seed, HeightLaw heights, CapacityLaw caps,
                  double spread) {
  TreeScenarioSpec spec;
  spec.num_vertices = 24;
  spec.num_networks = 2;
  spec.demands.num_demands = 11;
  spec.demands.heights = heights;
  spec.demands.height_min = 0.4;
  spec.demands.profit_max = 100.0;
  spec.capacities = caps;
  spec.capacity_spread = spread;
  spec.seed = seed;
  return make_tree_problem(spec);
}

Problem make_line(std::uint64_t seed) {
  LineScenarioSpec spec;
  spec.line.num_slots = 24;
  spec.line.num_resources = 2;
  spec.line.num_demands = 8;
  spec.line.max_proc_time = 8;
  spec.line.window_slack = 1.8;
  spec.line.heights = HeightLaw::kBimodal;
  spec.line.height_min = 0.4;
  spec.line.profit_max = 100.0;
  spec.seed = seed;
  return make_line_problem(spec);
}

}  // namespace

int main(int argc, char** argv) {
  // --trace=PATH: one extra traced protocol run (tree wide/narrow,
  // seed 1) after the measured sweep, dumped as a Chrome trace; the
  // emitted BENCH series is unaffected.
  std::string trace_path;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--trace=", 0) == 0) trace_path = arg.substr(8);
  }

  print_claim("T6  message-level protocol vs modeled engine",
              "the fixed wire schedule spends discovery + sum_pass "
              "tuples*(2L+1) + tuples rounds; the modeled run only counts "
              "iterations actually used — the gap is the price of "
              "fixed-up-front schedules (Section 5/6)");

  const double eps = 0.3;
  std::vector<JsonRecord> runs;

  Table table("T6  wire vs model (eps=0.3, h_min=0.4; 4 seeds per arm)");
  table.set_header({"arm", "seed", "passes", "modeled-rounds", "wire-rounds",
                    "wire/model", "wire-bytes", "reply-bytes", "ratio",
                    "sched_ok"});

  const auto record = [&](const char* arm, double arm_id, std::uint64_t seed,
                          const Problem& p, const DistResult& modeled,
                          const ProtocolDistResult& wire) {
    const ExactResult exact = solve_exact(p);
    const double w_ratio =
        ratio(exact.profit, checked_profit(p, wire.run.solution));
    checked_profit(p, modeled.solution);
    const double blowup =
        modeled.stats.comm_rounds > 0
            ? static_cast<double>(wire.run.rounds) /
                  static_cast<double>(modeled.stats.comm_rounds)
            : 0.0;
    table.add_row({arm, std::to_string(seed),
                   std::to_string(wire.run.passes.size()),
                   std::to_string(modeled.stats.comm_rounds),
                   std::to_string(wire.run.rounds), fmt(blowup, 1),
                   std::to_string(wire.run.bytes),
                   std::to_string(wire.run.discovery_reply_bytes),
                   fmt(w_ratio, 3), wire.run.schedule_ok ? "1" : "0"});
    JsonRecord row{{"arm", arm_id},
                   {"seed", static_cast<double>(seed)},
                   {"protocol_ratio", w_ratio},
                   {"modeled_rounds",
                    static_cast<double>(modeled.stats.comm_rounds)}};
    append_protocol_fields(row, wire.run);
    runs.push_back(std::move(row));
  };

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = make_tree(seed + 10, HeightLaw::kBimodal,
                                CapacityLaw::kUniform, 1.0);
    DistOptions moptions;
    moptions.epsilon = eps;
    moptions.seed = seed;
    ProtocolOptions options;
    options.epsilon = eps;
    options.seed = seed;
    record("tree wide/narrow", 0.0, seed, p,
           solve_tree_arbitrary_distributed(p, moptions),
           run_tree_arbitrary_protocol(p, options));
  }
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = make_line(seed + 20);
    DistOptions moptions;
    moptions.epsilon = eps;
    moptions.seed = seed;
    ProtocolOptions options;
    options.epsilon = eps;
    options.seed = seed;
    record("line wide/narrow", 1.0, seed, p,
           solve_line_arbitrary_distributed(p, moptions),
           run_line_arbitrary_protocol(p, options));
  }
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = make_tree(seed + 30, HeightLaw::kUnit,
                                CapacityLaw::kTwoClass, 4.0);
    NonuniformOptions moptions;
    moptions.dist.epsilon = eps;
    moptions.dist.seed = seed;
    const NonuniformResult m = solve_nonuniform_unit(p, moptions);
    DistResult modeled;
    modeled.solution = m.solution;
    modeled.stats = m.stats;
    ProtocolOptions options;
    options.epsilon = eps;
    options.seed = seed;
    record("nonuniform unit", 2.0, seed, p, modeled,
           run_nonuniform_protocol(p, options));
  }
  table.print(std::cout);
  emit_json("t6_protocol_wire", runs);

  if (!trace_path.empty()) {
    const Problem p = make_tree(11, HeightLaw::kBimodal,
                                CapacityLaw::kUniform, 1.0);
    ProtocolOptions options;
    options.epsilon = eps;
    options.seed = 1;
    obs::enable_tracing();
    run_tree_arbitrary_protocol(p, options);
    obs::disable_tracing();
    if (obs::write_chrome_trace(trace_path))
      std::printf("trace written to %s (tree wide/narrow protocol, seed 1; "
                  "summarize with tools/trace_report.py)\n",
                  trace_path.c_str());
    else
      std::fprintf(stderr, "could not write trace to %s (tracing compiled "
                           "out, or path not writable)\n",
                   trace_path.c_str());
  }

  std::printf("\nexpected shape: wire rounds 10^2-10^4x the modeled count — "
              "the modeled run is adaptive (it stops when a stage is "
              "satisfied) while the wire spends its full fixed budget, so "
              "idle tuples at 2L+1 rounds each dominate; the narrow pass's "
              "stage count is the driver on the split arms; every "
              "sched_ok = 1 — the Lemma 5.1 budgets suffice on every "
              "seed.\n");
  return 0;
}
