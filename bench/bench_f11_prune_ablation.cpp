// F11 — phase-2 ablation: what the reverse-stack order buys.  Lemma 3.1
// hinges on popping the raise stack in *reverse*: every raised instance
// then either survives or is blocked by a successor, which is what turns
// the dual assignment into a profit bound.  Replaying the same stack
// forward, or greedily by profit, has no such guarantee — this bench
// measures how much quality that costs on identical stacks.
#include "bench_util.hpp"
#include "decomp/layered.hpp"
#include "dist/luby_mis.hpp"
#include "framework/two_phase.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

int main() {
  print_claim("F11  phase-2 prune-order ablation (Lemma 3.1)",
              "reverse-stack pruning carries the (Delta+1)/lambda "
              "guarantee; forward-stack and profit-greedy pruning of the "
              "same raised set do not — and measurably lose profit");

  Table table("F11  same stacks, three pruners (n=64, m=80, 15 seeds)");
  table.set_header({"heights", "pruner", "profit(mean)",
                    "vs reverse(mean)", "worst case vs reverse"});

  for (const HeightLaw heights : {HeightLaw::kUnit, HeightLaw::kBimodal}) {
    RunningStats rev, fwd, greedy, fwd_ratio, greedy_ratio;
    double fwd_worst = 1.0, greedy_worst = 1.0;
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      TreeScenarioSpec spec;
      spec.num_vertices = 64;
      spec.num_networks = 2;
      spec.demands.num_demands = 80;
      spec.demands.heights = heights;
      spec.demands.profit_max = 64.0;
      spec.seed = seed * 11 + 7;
      const Problem p = make_tree_problem(spec);
      const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
      SolverConfig config;
      config.epsilon = 0.1;
      config.rule = p.unit_height() ? RaiseRuleKind::kUnit
                                    : RaiseRuleKind::kNarrow;
      config.keep_stack = true;
      LubyMis oracle(p, seed);
      const SolveResult run = solve_with_plan(p, plan, config, &oracle);

      const double reverse_profit = checked_profit(p, run.solution);
      const Solution forward = prune_stack_forward(p, run.raise_stack);
      const double forward_profit = checked_profit(p, forward);
      std::vector<InstanceId> raised;
      for (const auto& level : run.raise_stack)
        raised.insert(raised.end(), level.begin(), level.end());
      const Solution by_profit = prune_by_profit(p, std::move(raised));
      const double greedy_profit = checked_profit(p, by_profit);

      rev.add(reverse_profit);
      fwd.add(forward_profit);
      greedy.add(greedy_profit);
      fwd_ratio.add(forward_profit / reverse_profit);
      greedy_ratio.add(greedy_profit / reverse_profit);
      fwd_worst = std::min(fwd_worst, forward_profit / reverse_profit);
      greedy_worst = std::min(greedy_worst, greedy_profit / reverse_profit);
    }
    const char* hname = heights == HeightLaw::kUnit ? "unit" : "bimodal";
    table.add_row({hname, "reverse stack (Lemma 3.1)", fmt(rev.mean(), 1),
                   "1.000", "1.000"});
    table.add_row({hname, "forward stack", fmt(fwd.mean(), 1),
                   fmt(fwd_ratio.mean(), 3), fmt(fwd_worst, 3)});
    table.add_row({hname, "profit-greedy", fmt(greedy.mean(), 1),
                   fmt(greedy_ratio.mean(), 3), fmt(greedy_worst, 3)});
  }
  table.print(std::cout);

  std::printf("\nexpected shape: forward pruning is uniformly worse (it "
              "keeps early low-profit raises that block later high-profit "
              "ones — the failure Lemma 3.1's ordering prevents; worst "
              "case ~0.72x).  Profit-greedy is a strong heuristic on "
              "average but drops below reverse-stack on some seeds and "
              "carries no worst-case guarantee; reverse-stack is the only "
              "pruner with the proven (Delta+1)/lambda bound.\n");
  return 0;
}
