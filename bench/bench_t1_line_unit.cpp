// T1 — Theorem 7.1: distributed scheduling on line networks with windows,
// unit heights.  Our multi-stage algorithm guarantees (4+eps); the
// Panconesi-Sozio single-stage baseline guarantees (20+eps); the
// sequential end-time algorithm guarantees 2.  The table reports measured
// ratios against the exact optimum (small workloads) and against the
// certified dual bound (large workloads), plus round counts.
#include "bench_util.hpp"
#include "dist/scheduler.hpp"
#include "seq/sequential.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

namespace {

Problem make(std::uint64_t seed, bool large) {
  LineScenarioSpec spec;
  spec.line.num_slots = large ? 512 : 24;
  spec.line.num_resources = large ? 3 : 2;
  spec.line.num_demands = large ? 450 : 8;
  spec.line.max_proc_time = large ? 40 : 8;
  spec.line.window_slack = 2.0;
  spec.line.heights = HeightLaw::kUnit;
  spec.line.profit_max = 100.0;
  spec.seed = seed;
  return make_line_problem(spec);
}

}  // namespace

int main() {
  print_claim("T1  line networks + windows, unit heights",
              "Thm 7.1: (4+eps)-approx in O(T_MIS log(1/eps) log(L) log(p)) "
              "rounds; PS baseline: (20+eps); sequential end-time: 2");

  const double eps = 0.1;
  Aggregate ours, ps, seq;
  std::vector<JsonRecord> runs;
  std::vector<double> small_opt(21, 0.0);  // per-seed exact optima cache

  // Small workloads: exact optimum available.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Problem p = make(seed, /*large=*/false);
    const ExactResult exact = solve_exact(p);
    small_opt[static_cast<std::size_t>(seed)] = exact.profit;
    DistOptions options;
    options.epsilon = eps;
    options.seed = seed;

    const DistResult a = solve_line_unit_distributed(p, options);
    const double a_ratio = ratio(exact.profit, checked_profit(p, a.solution));
    ours.ratio_vs_opt.add(a_ratio);
    ours.ratio_vs_cert.add(ratio(a.stats.dual_upper_bound, a.profit));
    ours.rounds.add(static_cast<double>(a.stats.comm_rounds));

    DistOptions ps_options = options;
    ps_options.stage_mode = StageMode::kSingleStagePS;
    const DistResult b = solve_line_unit_distributed(p, ps_options);
    const double b_ratio = ratio(exact.profit, checked_profit(p, b.solution));
    ps.ratio_vs_opt.add(b_ratio);
    ps.ratio_vs_cert.add(ratio(b.stats.dual_upper_bound, b.profit));
    ps.rounds.add(static_cast<double>(b.stats.comm_rounds));

    const SeqResult c = solve_line_unit_sequential(p);
    const double c_ratio = ratio(exact.profit, checked_profit(p, c.solution));
    seq.ratio_vs_opt.add(c_ratio);
    seq.ratio_vs_cert.add(ratio(c.stats.dual_upper_bound, c.profit));
    seq.rounds.add(static_cast<double>(c.stats.steps));

    runs.push_back({{"workload", 0.0},
                    {"seed", static_cast<double>(seed)},
                    {"ours_ratio", a_ratio},
                    {"ours_rounds", static_cast<double>(a.stats.comm_rounds)},
                    {"ps_ratio", b_ratio},
                    {"ps_rounds", static_cast<double>(b.stats.comm_rounds)},
                    {"seq_ratio", c_ratio}});
  }

  Table small("T1a  small workloads (24 slots, 8 jobs, exact OPT, 20 seeds)");
  small.set_header(Aggregate::header());
  ours.row(small, "multi-stage distributed (ours)", 4.0 / (1.0 - eps));
  ps.row(small, "PS single-stage (baseline)", 4.0 * (5.0 + eps));
  seq.row(small, "sequential end-time", 2.0);
  small.print(std::cout);

  // Large workloads: certified dual bound only.
  Aggregate lours, lps;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Problem p = make(seed + 100, /*large=*/true);
    DistOptions options;
    options.epsilon = eps;
    options.seed = seed;
    const DistResult a = solve_line_unit_distributed(p, options);
    const double a_gap =
        ratio(a.stats.dual_upper_bound, checked_profit(p, a.solution));
    lours.ratio_vs_cert.add(a_gap);
    lours.rounds.add(static_cast<double>(a.stats.comm_rounds));
    DistOptions ps_options = options;
    ps_options.stage_mode = StageMode::kSingleStagePS;
    const DistResult b = solve_line_unit_distributed(p, ps_options);
    const double b_gap =
        ratio(b.stats.dual_upper_bound, checked_profit(p, b.solution));
    lps.ratio_vs_cert.add(b_gap);
    lps.rounds.add(static_cast<double>(b.stats.comm_rounds));
    runs.push_back({{"workload", 1.0},
                    {"seed", static_cast<double>(seed)},
                    {"ours_cert_gap", a_gap},
                    {"ours_rounds", static_cast<double>(a.stats.comm_rounds)},
                    {"ps_cert_gap", b_gap},
                    {"ps_rounds", static_cast<double>(b.stats.comm_rounds)}});
  }
  Table large(
      "T1b  large workloads (512 slots, 450 jobs, certified bound, 5 seeds)");
  large.set_header(Aggregate::header());
  lours.row(large, "multi-stage distributed (ours)", 4.0 / (1.0 - eps));
  lps.row(large, "PS single-stage (baseline)", 4.0 * (5.0 + eps));
  large.print(std::cout);

  // Message-level arm: Theorem 7.1 as real bits on the wire, against the
  // modeled rounds of the same workloads.
  Table wire("T1c  message-level protocol (small workloads, 6 seeds)");
  wire.set_header({"seed", "ratio", "modeled-rounds", "wire-rounds",
                   "wire-bytes", "mis_ok", "sched_ok"});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = make(seed, /*large=*/false);
    DistOptions moptions;
    moptions.epsilon = eps;
    moptions.seed = seed;
    const DistResult m = solve_line_unit_distributed(p, moptions);
    ProtocolOptions options;
    options.epsilon = eps;
    options.seed = seed;
    const ProtocolDistResult w = run_line_unit_protocol(p, options);
    const double w_ratio = ratio(small_opt[static_cast<std::size_t>(seed)],
                                 checked_profit(p, w.run.solution));
    wire.add_row({std::to_string(seed), fmt(w_ratio, 3),
                  std::to_string(m.stats.comm_rounds),
                  std::to_string(w.run.rounds), std::to_string(w.run.bytes),
                  w.run.mis_ok ? "1" : "0", w.run.schedule_ok ? "1" : "0"});
    JsonRecord row{{"workload", 2.0},
                   {"seed", static_cast<double>(seed)},
                   {"protocol_ratio", w_ratio},
                   {"modeled_rounds",
                    static_cast<double>(m.stats.comm_rounds)}};
    append_protocol_fields(row, w.run);
    runs.push_back(std::move(row));
  }
  wire.print(std::cout);
  emit_json("t1_line_unit", runs);

  std::printf("\nexpected shape: every measured ratio under its proven "
              "bound; ours well below PS; PS uses fewer rounds.\n");
  return 0;
}
