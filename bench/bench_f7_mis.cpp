// F7 — distributed MIS: Luby's iteration count grows with log N
// (Section 5's T_MIS factor), plus microbenchmarks of the
// performance-critical kernels (Luby MIS, greedy MIS, ideal
// decomposition construction, path extraction, end-to-end solve).
// With google-benchmark available (TREESCHED_HAVE_GBENCH) the kernels
// run under it; otherwise a vendored fallback timer
// (benchutil::time_kernel_ns) reports mean ns/op, so no environment
// silently skips the timings.
#ifdef TREESCHED_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "decomp/tree_decomposition.hpp"
#include "dist/luby_mis.hpp"
#include "dist/scheduler.hpp"
#include "framework/two_phase.hpp"
#include "workload/scenario.hpp"

using namespace treesched;

namespace {

Problem scaled_problem(int m, std::uint64_t seed) {
  TreeScenarioSpec spec;
  spec.num_vertices = std::max(32, m / 2);
  spec.num_networks = 2;
  spec.demands.num_demands = m;
  spec.demands.profit_max = 16.0;
  spec.seed = seed;
  return make_tree_problem(spec);
}

std::vector<InstanceId> all_instances(const Problem& p) {
  std::vector<InstanceId> all(static_cast<std::size_t>(p.num_instances()));
  for (InstanceId i = 0; i < p.num_instances(); ++i)
    all[static_cast<std::size_t>(i)] = i;
  return all;
}

// The log N series printed before the timing benchmarks.
void print_luby_series() {
  std::printf("========================================================\n");
  std::printf("F7  Luby MIS iterations vs candidate count (expected: "
              "~log N growth)\n");
  std::printf("========================================================\n");
  Table table("F7a  Luby iterations (5 seeds per N)");
  table.set_header({"N(candidates)", "iterations(mean)", "iterations(max)",
                    "iters/log2(N)"});
  std::vector<double> xs, ys;
  for (int m : {50, 100, 200, 400, 800, 1600}) {
    RunningStats iters;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const Problem p = scaled_problem(m, seed * 19 + 1);
      LubyMis mis(p, seed);
      const auto candidates = all_instances(p);
      const MisResult r = mis.run(candidates);
      iters.add(static_cast<double>(r.rounds) / 2.0);
    }
    const double n_candidates = 2.0 * m;  // two networks
    xs.push_back(std::log2(n_candidates));
    ys.push_back(iters.mean());
    table.add_row({fmt(n_candidates, 0), fmt(iters.mean(), 1),
                   fmt(iters.max(), 0),
                   fmt(iters.mean() / std::log2(n_candidates), 2)});
  }
  table.print(std::cout);
  std::printf("linear fit of iterations vs log2(N): slope %.2f, "
              "correlation %.3f\n\n", regression_slope(xs, ys),
              correlation(xs, ys));
}

#ifdef TREESCHED_HAVE_GBENCH

void BM_LubyMis(benchmark::State& state) {
  const Problem p = scaled_problem(static_cast<int>(state.range(0)), 3);
  const auto candidates = all_instances(p);
  LubyMis mis(p, 7);
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const MisResult r = mis.run(candidates);
    rounds += r.rounds;
    benchmark::DoNotOptimize(r.selected.data());
  }
  state.counters["luby_rounds/iter"] =
      static_cast<double>(rounds) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_LubyMis)->Arg(100)->Arg(400)->Arg(1600);

void BM_GreedyMis(benchmark::State& state) {
  const Problem p = scaled_problem(static_cast<int>(state.range(0)), 3);
  const auto candidates = all_instances(p);
  GreedyMis mis(p);
  for (auto _ : state) {
    const MisResult r = mis.run(candidates);
    benchmark::DoNotOptimize(r.selected.data());
  }
}
BENCHMARK(BM_GreedyMis)->Arg(100)->Arg(400)->Arg(1600);

void BM_IdealDecomposition(benchmark::State& state) {
  Rng rng(5);
  const TreeNetwork t = make_tree(TreeShape::kRandomAttachment,
                                  static_cast<VertexId>(state.range(0)),
                                  rng);
  for (auto _ : state) {
    const TreeDecomposition h = build_ideal(t);
    benchmark::DoNotOptimize(h.max_depth());
  }
}
BENCHMARK(BM_IdealDecomposition)->Arg(256)->Arg(1024)->Arg(4096);

void BM_PathExtraction(benchmark::State& state) {
  Rng rng(9);
  const TreeNetwork t = make_tree(TreeShape::kRandomAttachment, 4096, rng);
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto u = static_cast<VertexId>((x >> 20) % 4096);
    const auto v = static_cast<VertexId>((x >> 40) % 4096);
    benchmark::DoNotOptimize(t.path_edges(u, v).size());
  }
}
BENCHMARK(BM_PathExtraction);

void BM_EndToEndSolve(benchmark::State& state) {
  const Problem p = scaled_problem(static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    DistOptions options;
    options.epsilon = 0.2;
    const DistResult r = solve_tree_unit_distributed(p, options);
    benchmark::DoNotOptimize(r.profit);
  }
}
BENCHMARK(BM_EndToEndSolve)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

#else  // !TREESCHED_HAVE_GBENCH

// Fallback kernel timings: the same kernels as the google-benchmark
// path, timed with the vendored benchutil::time_kernel_ns loop.
void run_fallback_kernels() {
  Table table("F7b  kernel timings (vendored fallback timer, mean ns/op)");
  table.set_header({"kernel", "arg", "ns/op"});
  const auto add = [&table](const char* kernel, int arg, double ns) {
    table.add_row({kernel, std::to_string(arg), fmt(ns, 0)});
  };

  for (int m : {100, 400, 1600}) {
    const Problem p = scaled_problem(m, 3);
    const auto candidates = all_instances(p);
    LubyMis luby(p, 7);
    add("LubyMis", m, benchutil::time_kernel_ns([&] {
          const MisResult r = luby.run(candidates);
          if (r.selected.empty()) std::abort();
        }));
    GreedyMis greedy(p);
    add("GreedyMis", m, benchutil::time_kernel_ns([&] {
          const MisResult r = greedy.run(candidates);
          if (r.selected.empty()) std::abort();
        }));
  }

  for (int n : {256, 1024, 4096}) {
    Rng rng(5);
    const TreeNetwork t = make_tree(TreeShape::kRandomAttachment,
                                    static_cast<VertexId>(n), rng);
    add("IdealDecomposition", n, benchutil::time_kernel_ns([&] {
          const TreeDecomposition h = build_ideal(t);
          if (h.max_depth() < 0) std::abort();
        }));
  }

  {
    Rng rng(9);
    const TreeNetwork t = make_tree(TreeShape::kRandomAttachment, 4096, rng);
    std::uint64_t x = 1;
    std::size_t sink = 0;
    add("PathExtraction", 4096, benchutil::time_kernel_ns([&] {
          x = x * 6364136223846793005ULL + 1442695040888963407ULL;
          const auto u = static_cast<VertexId>((x >> 20) % 4096);
          const auto v = static_cast<VertexId>((x >> 40) % 4096);
          sink += t.path_edges(u, v).size();
        }, /*min_iters=*/1000));
    if (sink == static_cast<std::size_t>(-1)) std::abort();
  }

  for (int m : {100, 400}) {
    const Problem p = scaled_problem(m, 11);
    add("EndToEndSolve", m, benchutil::time_kernel_ns([&] {
          DistOptions options;
          options.epsilon = 0.2;
          const DistResult r = solve_tree_unit_distributed(p, options);
          if (r.profit < 0.0) std::abort();
        }));
  }

  table.print(std::cout);
  std::printf("(google-benchmark not available at build time; timings "
              "from the fallback loop — indicative, not statistically "
              "hardened.)\n");
}

#endif  // TREESCHED_HAVE_GBENCH

}  // namespace

#ifdef TREESCHED_HAVE_GBENCH
int main(int argc, char** argv) {
  print_luby_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
#else
int main() {
  print_luby_series();
  run_fallback_kernels();
  return 0;
}
#endif
