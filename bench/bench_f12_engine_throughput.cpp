// F12 — phase-1 engine throughput: the incremental frontier/shard engine
// against the central-DualState reference engine (the pre-incremental
// implementation, preserved as EngineImpl::kCentralReference), at growing
// instance counts on line and tree workloads.
//
// The reference engine pays O(|members| * path_len) per step — every step
// rescans the whole group and recomputes each dual LHS from scratch.  The
// incremental engine pays O(1) per satisfaction test (cached LHS over
// per-instance DualShards) plus work proportional to the instances whose
// paths intersect the raised edges.  The regimes differ:
//
//  - lockstep (the paper's Section 5 distributed schedule): every stage
//    runs the fixed Lemma 5.1 budget of steps, most of which touch few or
//    no unsatisfied instances — exactly the steps whose member rescans
//    the frontier eliminates.  This is the headline series; the speedup
//    target (>= 5x at the largest size) applies here.
//  - adaptive (the idealized schedule with global emptiness tests):
//    stages end the moment U is empty, so most stages run ~1 step and
//    every instance is touched anyway; the two engines are near parity,
//    with the incremental engine paying its propagation constant.
//
// The parallel arms sweep threads in {1, 2, 4, 8} on the persistent
// component forest, plus a threads=4 arm on the legacy per-epoch
// recompute (use_component_forest = false) so the series records both
// sides of the epoch-setup ablation; every arm emits its
// epoch_setup_ns / forest_build_ns / merge_ns breakdown (bench_f13
// isolates the setup cost and enforces the >= 2x gate).
//
// All engines produce bit-identical output (tests/test_engine_parity,
// tests/test_component_forest), so every row below differs only in wall
// time, never in results.
#include <chrono>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "decomp/layered.hpp"
#include "framework/two_phase.hpp"
#include "obs/trace.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

namespace {

struct Arm {
  const char* name;
  EngineImpl engine;
  int threads;
  bool forest;
};

constexpr Arm kArms[] = {
    {"central", EngineImpl::kCentralReference, 1, true},
    {"incr-t1", EngineImpl::kIncremental, 1, true},
    {"incr-t2", EngineImpl::kIncremental, 2, true},
    {"incr-t4", EngineImpl::kIncremental, 4, true},
    {"incr-t8", EngineImpl::kIncremental, 8, true},
    {"incr-t4-legacy", EngineImpl::kIncremental, 4, false},
};

struct Measurement {
  double wall_ms = 0.0;
  int steps = 0;
  double steps_per_sec = 0.0;
  double profit = 0.0;
  double epoch_setup_ns = 0.0;
  double forest_build_ns = 0.0;
  double merge_ns = 0.0;
};

Measurement run_engine(const Problem& p, const LayeredPlan& plan,
                       const Arm& arm, bool lockstep) {
  SolverConfig config;
  config.epsilon = 0.1;
  config.lockstep = lockstep;
  config.engine = arm.engine;
  config.threads = arm.threads;
  config.use_component_forest = arm.forest;
  const auto start = std::chrono::steady_clock::now();
  const SolveResult run = solve_with_plan(p, plan, config);
  const auto stop = std::chrono::steady_clock::now();
  if (!run.stats.mis_ok)
    std::fprintf(stderr,
                 "WARNING: %s: MIS budget exhausted in %lld step(s) "
                 "(mis_ok=0) — the run degraded\n",
                 arm.name,
                 static_cast<long long>(run.stats.mis_failed_steps));
  Measurement m;
  m.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  m.steps = run.stats.steps;
  m.steps_per_sec =
      m.wall_ms > 0.0 ? run.stats.steps * 1000.0 / m.wall_ms : 0.0;
  m.profit = checked_profit(p, run.solution);
  m.epoch_setup_ns = static_cast<double>(run.stats.epoch_setup_ns);
  m.forest_build_ns = static_cast<double>(run.stats.forest_build_ns);
  m.merge_ns = static_cast<double>(run.stats.merge_ns);
  return m;
}

Problem line_workload(int slots) {
  LineScenarioSpec spec;
  spec.line.num_slots = slots;
  spec.line.num_resources = 2;
  spec.line.num_demands = slots / 2;
  spec.line.min_proc_time = 8;
  spec.line.max_proc_time = slots / 8;
  spec.line.window_slack = 2.0;
  spec.line.profit_max = 1e4;  // wide range: deep lockstep budgets
  spec.seed = 42;
  return make_line_problem(spec);
}

Problem tree_workload(int n) {
  TreeScenarioSpec spec;
  spec.num_vertices = n;
  spec.num_networks = 2;
  spec.demands.num_demands = 3 * n / 4;
  spec.demands.profit_max = 1e4;
  spec.seed = 42;
  return make_tree_problem(spec);
}

}  // namespace

int main(int argc, char** argv) {
  // --trace=PATH: after the measured sweep, one extra traced run of the
  // largest lockstep line workload on the incr-t4 arm, dumped as a
  // Chrome trace.  The trace run is *outside* every measurement, so the
  // emitted BENCH series and the speedup gate are unaffected.
  std::string trace_path;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--trace=", 0) == 0) trace_path = arg.substr(8);
  }

  print_claim("F12  phase-1 engine throughput (incremental vs central)",
              "the frontier/shard engine eliminates the per-step "
              "O(|members| * path_len) rescan; >= 5x wall-clock at the "
              "largest size under the lockstep schedule, near parity "
              "under the adaptive schedule; the threads sweep records "
              "the component-forest setup/merge breakdown per arm");

  std::vector<JsonRecord> runs;
  double largest_speedup = 0.0;
  double largest_derive_forest = 0.0, largest_build_forest = 0.0;
  double largest_setup_legacy = 0.0;

  for (const bool lockstep : {true, false}) {
    Table table(std::string("F12  ") +
                (lockstep ? "lockstep schedule (Section 5, fixed budgets)"
                          : "adaptive schedule (idealized emptiness tests)"));
    table.set_header({"workload", "instances", "engine", "wall(ms)", "steps",
                      "steps/sec", "speedup", "setup(ms)", "merge(ms)"});
    for (const int workload : {0, 1}) {  // 0 = line, 1 = tree
      const std::vector<int> sizes =
          workload == 0 ? std::vector<int>{256, 512, 1024, 2048}
                        : std::vector<int>{1024, 2048, 4096};
      for (const int n : sizes) {
        const Problem p = workload == 0 ? line_workload(n) : tree_workload(n);
        const LayeredPlan plan =
            workload == 0 ? build_line_layered_plan(p)
                          : build_tree_layered_plan(p, DecompKind::kIdeal);
        double central_ms = 0.0;
        for (const Arm& arm : kArms) {
          const Measurement m = run_engine(p, plan, arm, lockstep);
          if (arm.engine == EngineImpl::kCentralReference)
            central_ms = m.wall_ms;
          const double speedup =
              m.wall_ms > 0.0 ? central_ms / m.wall_ms : 0.0;
          const double setup_total_ns = m.epoch_setup_ns + m.forest_build_ns;
          table.add_row({workload == 0 ? "line" : "tree",
                         std::to_string(p.num_instances()), arm.name,
                         fmt(m.wall_ms, 1), std::to_string(m.steps),
                         fmt(m.steps_per_sec, 0), fmt(speedup, 2),
                         fmt(setup_total_ns * 1e-6, 2),
                         fmt(m.merge_ns * 1e-6, 2)});
          runs.push_back(
              {{"workload", static_cast<double>(workload)},
               {"n", static_cast<double>(n)},
               {"instances", static_cast<double>(p.num_instances())},
               {"lockstep", lockstep ? 1.0 : 0.0},
               {"engine",
                arm.engine == EngineImpl::kCentralReference ? 0.0 : 1.0},
               {"threads", static_cast<double>(arm.threads)},
               {"forest", arm.forest ? 1.0 : 0.0},
               {"steps", static_cast<double>(m.steps)},
               {"wall_ms", m.wall_ms},
               {"steps_per_sec", m.steps_per_sec},
               {"profit", m.profit},
               {"speedup", speedup},
               {"epoch_setup_ns", m.epoch_setup_ns},
               {"forest_build_ns", m.forest_build_ns},
               {"merge_ns", m.merge_ns}});
          // The acceptance gate: incremental (threads=1) at the largest
          // line size under the distributed schedule.
          if (lockstep && workload == 0 && n == sizes.back() &&
              arm.engine == EngineImpl::kIncremental && arm.threads == 1)
            largest_speedup = speedup;
          // Epoch-setup ablation readout at the largest size per
          // workload: forest derive (+ one-time build, reported
          // separately) vs legacy per-epoch union-find, threads=4 arms.
          if (lockstep && n == sizes.back() && arm.threads == 4) {
            if (arm.forest) {
              largest_derive_forest += m.epoch_setup_ns;
              largest_build_forest += m.forest_build_ns;
            } else {
              largest_setup_legacy += m.epoch_setup_ns;
            }
          }
        }
      }
    }
    table.print(std::cout);
  }
  emit_json("f12_engine_throughput", runs);

  std::printf("\nlargest-size lockstep speedup (line, incr-t1 vs central): "
              "%.2fx %s\n",
              largest_speedup, largest_speedup >= 5.0 ? "(>= 5x: PASS)"
                                                      : "(< 5x: REGRESSION)");
  if (largest_derive_forest > 0.0)
    std::printf("largest-size per-epoch setup (line+tree, t4): legacy "
                "union-find %.2fms vs forest derive %.2fms (%.0fx lower; "
                "one-time forest build %.2fms, so build+derive is %.1fx "
                "lower even unamortized)\n",
                largest_setup_legacy * 1e-6, largest_derive_forest * 1e-6,
                largest_setup_legacy / largest_derive_forest,
                largest_build_forest * 1e-6,
                largest_setup_legacy /
                    (largest_derive_forest + largest_build_forest));
  std::printf("expected shape: lockstep speedup grows with instance count "
              "(the eliminated rescan is steps * |members| * path_len); "
              "adaptive stays near 1x because nearly every stage touches "
              "every member once anyway.  The threads sweep is "
              "determinism-preserving parallelism: on few-core hosts the "
              "extra threads oversubscribe, but the forest cuts the "
              "per-epoch setup and the deferred merge parallelizes the "
              "out-of-group propagation, so the t4 arm's overhead vs t1 "
              "shrinks relative to the PR 4 merge.\n");
  if (!trace_path.empty()) {
    const Problem p = line_workload(2048);
    const LayeredPlan plan = build_line_layered_plan(p);
    const Arm* traced_arm = nullptr;
    for (const Arm& arm : kArms)
      if (std::string(arm.name) == "incr-t4") traced_arm = &arm;
    obs::enable_tracing();
    run_engine(p, plan, *traced_arm, /*lockstep=*/true);
    obs::disable_tracing();
    if (obs::write_chrome_trace(trace_path))
      std::printf("trace written to %s (largest lockstep line workload, "
                  "incr-t4; summarize with tools/trace_report.py)\n",
                  trace_path.c_str());
    else
      std::fprintf(stderr, "could not write trace to %s (tracing compiled "
                           "out, or path not writable)\n",
                   trace_path.c_str());
  }

  // The speedup gate is enforced, not just printed: a nonzero exit fails
  // the CI perf step.  It is a ratio of two runs on the same machine, so
  // host speed cancels out, and the measured ~12-15x leaves 2-3x headroom
  // over the 5x bar before shared-runner variance could trip it.
  return largest_speedup >= 5.0 ? 0 : 1;
}
