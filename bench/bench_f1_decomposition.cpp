// F1 — Lemma 4.1 and Section 4.2: decomposition quality.  For each tree
// shape and size, builds the root-fixing, balancing and ideal
// decompositions and reports depth and pivot size against their proven
// budgets (root-fixing: theta=1, depth<=n; balancing: depth<=ceil(log
// n)+1, theta<=depth; ideal: depth<=2ceil(log n)+1, theta<=2).
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "decomp/tree_decomposition.hpp"
#include "workload/tree_gen.hpp"

using namespace treesched;
using namespace treesched::benchutil;

namespace {

int ceil_log2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

}  // namespace

int main() {
  print_claim("F1  tree decompositions (Lemma 4.1)",
              "ideal decomposition: depth <= 2 ceil(log n)+1 AND pivot "
              "size theta <= 2 simultaneously; the two simple "
              "decompositions each fail one axis");

  Table table("F1  depth / pivot size by shape, n and construction");
  table.set_header({"shape", "n", "root-fix depth/theta",
                    "balancing depth/theta", "ideal depth/theta",
                    "ideal budget", "build-ms(ideal)"});
  for (TreeShape shape : kAllTreeShapes) {
    for (int n : {64, 256, 1024, 4096}) {
      Rng rng(static_cast<std::uint64_t>(n) * 131 + 7);
      const TreeNetwork t = make_tree(shape, n, rng);
      const TreeDecomposition rf = build_root_fixing(t);
      const TreeDecomposition bal = build_balancing(t);
      Stopwatch sw;
      const TreeDecomposition ideal = build_ideal(t);
      const double ms = sw.elapsed_s() * 1e3;
      const int budget = 2 * ceil_log2(n) + 1;
      if (ideal.max_depth() > budget || ideal.pivot_size() > 2) {
        std::fprintf(stderr, "BENCH ERROR: Lemma 4.1 violated\n");
        return 1;
      }
      table.add_row({to_string(shape), std::to_string(n),
                     std::to_string(rf.max_depth()) + "/" +
                         std::to_string(rf.pivot_size()),
                     std::to_string(bal.max_depth()) + "/" +
                         std::to_string(bal.pivot_size()),
                     std::to_string(ideal.max_depth()) + "/" +
                         std::to_string(ideal.pivot_size()),
                     std::to_string(budget), fmt(ms, 2)});
    }
  }
  table.print(std::cout);

  std::printf("\nexpected shape: root-fixing depth ~n on paths; balancing "
              "theta ~log n on paths; ideal bounded on both axes for every "
              "shape — exactly Lemma 4.1.\n");
  return 0;
}
