// T8 — durability cost and crash-recovery latency of the online
// service: what the write-ahead journal and periodic snapshots add to
// the steady-churn replay, and what recovery costs with and without a
// snapshot to start from.
//
// Each scenario replays a seeded trace three ways: bare OnlineScheduler
// (the T7 warm arm), DurableOnlineService with journal + snapshots, and
// then recovery from the on-disk state — once loading the newest
// snapshot (replays only the journal suffix) and once journal-only
// (snapshots withheld, replays everything).  Before any timing is
// trusted, both recovered schedulers are held to exact equality with
// the uninterrupted run (selected sets, raise stacks, per-instance LHS,
// lambda); a mismatch aborts the bench.
//
// Gate: journal_bytes is deterministic (seeded trace, fixed codec) and
// committed under the perf-trajectory gate — growth means the record
// encoding got fatter.  The *_ms timings and the snapshot_* / recovery_*
// fields are informational for the trajectory tool; the binary itself
// exits nonzero if recovery-from-snapshot ever replays more than
// snapshot_every batches (the snapshot cursor stopped advancing).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "online/durable_service.hpp"
#include "online/event_stream.hpp"
#include "online/online_scheduler.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

namespace {

struct RecoveryScenario {
  int id = 0;
  const char* name = "";
  VertexId num_vertices = 512;
  int num_networks = 2;
  int residents = 220;
  ArrivalLaw arrivals = ArrivalLaw::kPoisson;
  double rate = 6.0;
  int num_batches = 10;
  int snapshot_every = 4;
  double mean_lifetime = 2.0;
  std::uint64_t seed = 1;
};

DemandGenConfig demand_config() {
  DemandGenConfig cfg;
  cfg.endpoints = EndpointLaw::kLocalPair;
  cfg.locality = 2;
  cfg.heights = HeightLaw::kBimodal;
  cfg.profit_max = 64.0;
  return cfg;
}

Problem make_base(const RecoveryScenario& s) {
  TreeScenarioSpec spec;
  spec.num_vertices = s.num_vertices;
  spec.num_networks = s.num_networks;
  spec.identical_networks = true;
  spec.demands = demand_config();
  spec.demands.num_demands = s.residents;
  spec.seed = s.seed;
  return make_tree_problem(spec);
}

std::vector<EventBatch> make_trace(const Problem& base,
                                   const RecoveryScenario& s) {
  OnlineTrafficSpec traffic;
  traffic.arrivals = s.arrivals;
  traffic.rate = s.rate;
  traffic.num_batches = s.num_batches;
  traffic.seed = s.seed + 100;
  TenantClass tenant;
  tenant.mean_lifetime = s.mean_lifetime;
  traffic.tenants.push_back(tenant);
  return make_event_trace(base, demand_config(), traffic);
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Exact-equality check of two schedulers' assembled artifacts; aborts
// on divergence so no timing of a wrong recovery is ever reported.
void require_equal(const OnlineScheduler& got, const OnlineScheduler& want,
                   const char* what) {
  const OnlineSolveArtifacts a = got.assemble();
  const OnlineSolveArtifacts b = want.assemble();
  if (got.batches_applied() != want.batches_applied() ||
      got.live_mask() != want.live_mask() ||
      a.solution.selected != b.solution.selected ||
      a.wide.raise_stack != b.wide.raise_stack ||
      a.narrow.raise_stack != b.narrow.raise_stack ||
      a.wide.final_lhs != b.wide.final_lhs ||
      a.narrow.final_lhs != b.narrow.final_lhs || a.lambda != b.lambda) {
    std::fprintf(stderr,
                 "BENCH ERROR: %s diverged from the uninterrupted run\n",
                 what);
    std::abort();
  }
}

}  // namespace

int main() {
  print_claim(
      "t8_recovery",
      "journal + snapshot durability recovers the online service to the "
      "exact uninterrupted state, replaying at most snapshot_every "
      "batches when a snapshot is available");

  std::vector<RecoveryScenario> scenarios(2);
  scenarios[0].id = 0;
  scenarios[0].name = "poisson-sparse";
  scenarios[0].seed = 3;
  scenarios[1].id = 1;
  scenarios[1].name = "bursty-sparse";
  scenarios[1].arrivals = ArrivalLaw::kBursty;
  scenarios[1].rate = 3.0;
  scenarios[1].seed = 5;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "treesched_bench_t8";
  std::filesystem::create_directories(dir);

  std::vector<JsonRecord> rows;
  std::printf("%-16s %9s %9s %9s %11s %11s %9s\n", "scenario", "plain ms",
              "durable ms", "journalKB", "recov(snap)", "recov(wal)",
              "replayed");
  bool cursor_ok = true;
  for (const RecoveryScenario& s : scenarios) {
    const Problem base = make_base(s);
    const std::vector<EventBatch> trace = make_trace(base, s);
    const OnlineConfig config;

    // Arm 1: the bare scheduler — the durability-free reference (also
    // the state every recovery is compared against).
    auto start = std::chrono::steady_clock::now();
    OnlineScheduler plain(base, config);
    for (const EventBatch& batch : trace) plain.step(batch);
    const double plain_ms = ms_since(start);

    // Arm 2: the durable service — journal append + flush per batch,
    // snapshot every snapshot_every batches.
    DurabilityConfig dur;
    dur.journal_path = (dir / (std::string(s.name) + ".wal")).string();
    dur.snapshot_every = s.snapshot_every;
    start = std::chrono::steady_clock::now();
    std::int64_t journal_bytes = 0;
    {
      DurableOnlineService service(base, config, dur);
      for (const EventBatch& batch : trace) service.step(batch);
      journal_bytes = service.journal_bytes_written();
      require_equal(service.scheduler(), plain, "durable replay");
    }
    const double durable_ms = ms_since(start);

    // Snapshot size and write cost, measured directly.
    const SchedulerSnapshot snap = plain.capture();
    const double snapshot_bytes =
        static_cast<double>(encode_snapshot(snap).size());
    SnapshotStore probe((dir / (std::string(s.name) + ".probe")).string());
    start = std::chrono::steady_clock::now();
    probe.write(snap);
    const double snapshot_write_ms = ms_since(start);

    // Arm 3a: recovery from newest snapshot + journal suffix.
    RecoveryReport with_snap;
    start = std::chrono::steady_clock::now();
    {
      DurableOnlineService recovered =
          DurableOnlineService::recover(base, config, dur, &with_snap);
      require_equal(recovered.scheduler(), plain, "snapshot recovery");
    }
    const double recover_snap_ms = ms_since(start);
    if (!with_snap.snapshot_loaded ||
        with_snap.replayed > static_cast<std::uint32_t>(s.snapshot_every)) {
      std::fprintf(stderr,
                   "GATE: %s replayed %u batches with snapshot_every=%d\n",
                   s.name, with_snap.replayed, s.snapshot_every);
      cursor_ok = false;
    }

    // Arm 3b: journal-only recovery — snapshots withheld by pointing
    // the store at slots that were never written.
    DurabilityConfig wal_only = dur;
    wal_only.snapshot_base = (dir / "absent").string();
    RecoveryReport wal_report;
    start = std::chrono::steady_clock::now();
    {
      DurableOnlineService recovered = DurableOnlineService::recover(
          base, config, wal_only, &wal_report);
      require_equal(recovered.scheduler(), plain, "journal-only recovery");
    }
    const double recover_wal_ms = ms_since(start);

    std::printf("%-16s %9.1f %10.1f %9.1f %10.1fms %10.1fms %6u/%u\n",
                s.name, plain_ms, durable_ms,
                static_cast<double>(journal_bytes) / 1024.0, recover_snap_ms,
                recover_wal_ms, with_snap.replayed, wal_report.replayed);

    JsonRecord row;
    row.emplace_back("scenario", s.id);
    row.emplace_back("seed", static_cast<double>(s.seed));
    row.emplace_back("batches", s.num_batches);
    row.emplace_back("residents", s.residents);
    row.emplace_back("journal_bytes",
                     static_cast<double>(journal_bytes));  // gated
    row.emplace_back("snapshot_bytes", snapshot_bytes);
    row.emplace_back("snapshot_write_ms", snapshot_write_ms);
    row.emplace_back("snapshot_batches",
                     static_cast<double>(with_snap.snapshot_batches));
    row.emplace_back("recovery_replayed_with_snapshot",
                     static_cast<double>(with_snap.replayed));
    row.emplace_back("recovery_replayed_journal_only",
                     static_cast<double>(wal_report.replayed));
    row.emplace_back("recovery_with_snapshot_ms", recover_snap_ms);
    row.emplace_back("recovery_journal_only_ms", recover_wal_ms);
    row.emplace_back("plain_replay_ms", plain_ms);
    row.emplace_back("durable_replay_ms", durable_ms);
    rows.push_back(std::move(row));
  }
  emit_json("t8_recovery", rows);

  std::printf("snapshot cursor gate: %s\n", cursor_ok ? "ok" : "VIOLATED");
  return cursor_ok ? 0 : 1;
}
