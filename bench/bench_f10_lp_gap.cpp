// F10 — LP view of the problem: exact integrality gaps (LP optimum /
// integral optimum) and the tightness of the framework's dual
// certificates against the true LP optimum.  The verification triangle
// OPT <= LP <= certified-dual-bound must hold on every instance; the
// interesting measurements are how big each step of the sandwich is.
#include "bench_util.hpp"
#include "dist/scheduler.hpp"
#include "lp/relaxation.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

namespace {

Problem make(std::uint64_t seed, HeightLaw heights, int r) {
  TreeScenarioSpec spec;
  spec.num_vertices = 20;
  spec.num_networks = r;
  spec.demands.num_demands = 9;
  spec.demands.heights = heights;
  spec.demands.height_min = 0.2;
  spec.demands.profit_max = 50.0;
  spec.seed = seed;
  return make_tree_problem(spec);
}

}  // namespace

int main() {
  print_claim("F10  LP relaxation: integrality gaps and dual tightness",
              "weak-duality sandwich OPT <= LP <= certified dual bound; "
              "integrality gap small for unit heights, larger with "
              "fractional heights (the LP packs fractionally)");

  Table table("F10  15 seeds per row (n=20, m=9, exact OPT + simplex LP)");
  table.set_header({"family", "LP/OPT mean", "LP/OPT worst",
                    "dual/LP mean", "dual/OPT mean", "LP frac vars(mean)"});

  struct Row {
    const char* name;
    HeightLaw heights;
    int networks;
  };
  for (const Row& row : {Row{"tree unit r=1", HeightLaw::kUnit, 1},
                         Row{"tree unit r=2", HeightLaw::kUnit, 2},
                         Row{"tree narrow r=2", HeightLaw::kNarrowOnly, 2},
                         Row{"tree bimodal r=2", HeightLaw::kBimodal, 2}}) {
    RunningStats lp_gap, dual_lp, dual_opt, frac;
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      const Problem p = make(seed * 37 + 5, row.heights, row.networks);
      const ExactResult exact = solve_exact(p);
      const LpRelaxationResult lp = lp_optimum(p);
      if (lp.value < exact.profit - 1e-6) {
        std::fprintf(stderr, "BENCH ERROR: LP below OPT\n");
        return 1;
      }
      lp_gap.add(lp.value / exact.profit);
      int fractional = 0;
      for (double v : lp.x)
        if (v > 1e-6 && v < 1.0 - 1e-6) ++fractional;
      frac.add(fractional);

      DistOptions options;
      options.seed = seed;
      const DistResult run =
          p.unit_height() ? solve_tree_unit_distributed(p, options)
                          : solve_tree_arbitrary_distributed(p, options);
      checked_profit(p, run.solution);
      if (run.stats.dual_upper_bound < lp.value - 1e-6) {
        std::fprintf(stderr, "BENCH ERROR: dual certificate below LP\n");
        return 1;
      }
      dual_lp.add(run.stats.dual_upper_bound / lp.value);
      dual_opt.add(run.stats.dual_upper_bound / exact.profit);
    }
    table.add_row({row.name, fmt(lp_gap.mean(), 3), fmt(lp_gap.max(), 3),
                   fmt(dual_lp.mean(), 3), fmt(dual_opt.mean(), 3),
                   fmt(frac.mean(), 1)});
  }
  table.print(std::cout);

  std::printf("\nexpected shape: LP/OPT close to 1 for unit heights and "
              "noticeably larger with narrow heights (fractional packing); "
              "dual/LP bounded by the framework's price factor; the "
              "sandwich never inverts (the bench aborts if it does).\n");
  return 0;
}
