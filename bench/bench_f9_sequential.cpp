// F9 — the sequential baselines reproduced through the same framework:
// Appendix A (trees: 3-approx, 2 when r=1), Bar-Noy/Berman-Dasgupta
// (lines: 2-approx unit, 5-approx arbitrary heights), all measured
// against exact optima, with their Theta(n)-ish step counts made visible
// (the cost the distributed algorithm removes).
#include "bench_util.hpp"
#include "seq/sequential.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

int main() {
  print_claim("F9  sequential algorithms (Appendix A; classical line "
              "ratios)",
              "trees: 3-approx (2 if r=1, Delta=2, lambda=1); lines: "
              "2-approx unit / 5-approx arbitrary via end-time ordering "
              "(Delta=1)");

  Table table("F9a  measured vs exact (20 seeds each)");
  table.set_header({"setting", "bound", "ratio(mean)", "ratio(worst)",
                    "steps(mean)"});

  auto sweep = [&](const std::string& name, auto make_problem, auto solve,
                   double bound) {
    Aggregate agg;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const Problem p = make_problem(seed);
      const ExactResult exact = solve_exact(p);
      const SeqResult r = solve(p);
      agg.ratio_vs_opt.add(ratio(exact.profit, checked_profit(p,
                                                              r.solution)));
      agg.steps.add(r.stats.steps);
    }
    table.add_row({name, fmt(bound, 0), fmt(agg.ratio_vs_opt.mean(), 3),
                   fmt(agg.ratio_vs_opt.max(), 3), fmt(agg.steps.mean(), 1)});
  };

  sweep("tree r=2 unit (App A)",
        [](std::uint64_t seed) {
          TreeScenarioSpec spec;
          spec.num_vertices = 20;
          spec.num_networks = 2;
          spec.demands.num_demands = 9;
          spec.seed = seed;
          return make_tree_problem(spec);
        },
        [](const Problem& p) { return solve_tree_unit_sequential(p); }, 3);
  sweep("tree r=1 unit (App A)",
        [](std::uint64_t seed) {
          TreeScenarioSpec spec;
          spec.num_vertices = 20;
          spec.num_networks = 1;
          spec.demands.num_demands = 9;
          spec.seed = seed + 40;
          return make_tree_problem(spec);
        },
        [](const Problem& p) { return solve_tree_unit_sequential(p); }, 2);
  sweep("tree r=2 arbitrary",
        [](std::uint64_t seed) {
          TreeScenarioSpec spec;
          spec.num_vertices = 20;
          spec.num_networks = 2;
          spec.demands.num_demands = 9;
          spec.demands.heights = HeightLaw::kBimodal;
          spec.seed = seed + 80;
          return make_tree_problem(spec);
        },
        [](const Problem& p) { return solve_tree_arbitrary_sequential(p); },
        12);
  sweep("line unit (end-time, 2)",
        [](std::uint64_t seed) {
          LineScenarioSpec spec;
          spec.line.num_slots = 24;
          spec.line.num_resources = 2;
          spec.line.num_demands = 8;
          spec.line.max_proc_time = 8;
          spec.line.window_slack = 1.7;
          spec.seed = seed;
          return make_line_problem(spec);
        },
        [](const Problem& p) { return solve_line_unit_sequential(p); }, 2);
  sweep("line arbitrary (Bar-Noy, 5)",
        [](std::uint64_t seed) {
          LineScenarioSpec spec;
          spec.line.num_slots = 24;
          spec.line.num_resources = 2;
          spec.line.num_demands = 8;
          spec.line.max_proc_time = 8;
          spec.line.window_slack = 1.7;
          spec.line.heights = HeightLaw::kBimodal;
          spec.seed = seed + 120;
          return make_line_problem(spec);
        },
        [](const Problem& p) { return solve_line_arbitrary_sequential(p); },
        5);
  table.print(std::cout);

  // The sequential cost: steps grow linearly on deep trees (paper remark:
  // "the round complexity can be as high as n").
  Table cost("F9b  sequential step growth on paths (m = n/2 demands)");
  cost.set_header({"n", "steps", "steps/n"});
  for (int n : {64, 256, 1024}) {
    TreeScenarioSpec spec;
    spec.shape = TreeShape::kPath;
    spec.num_vertices = n;
    spec.num_networks = 1;
    spec.demands.num_demands = n / 2;
    spec.demands.profit_max = 16.0;
    spec.seed = 3;
    const Problem p = make_tree_problem(spec);
    const SeqResult r = solve_tree_unit_sequential(p);
    checked_profit(p, r.solution);
    cost.add_row({std::to_string(n), std::to_string(r.stats.steps),
                  fmt(static_cast<double>(r.stats.steps) / n, 2)});
  }
  cost.print(std::cout);

  std::printf("\nexpected shape: every measured ratio within its classical "
              "bound; sequential steps on paths keep growing with n "
              "(Theta(n) in the worst case — the paper's remark) while the "
              "distributed algorithm's rounds stay polylog (see F2).\n");
  return 0;
}
