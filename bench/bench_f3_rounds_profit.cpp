// F3 — Lemma 5.1 / Claim 5.2: within a stage, every kill chain doubles
// profits, so a stage runs at most ~1 + log2(pmax/pmin) steps.  The
// series sweeps the profit range and reports the worst stage observed
// against that budget.
#include <cmath>

#include "bench_util.hpp"
#include "dist/scheduler.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

int main() {
  print_claim("F3  steps per stage vs profit range (Lemma 5.1)",
              "kill chains double profits (Claim 5.2), so steps per stage "
              "<= 1 + log2(pmax/pmin); total steps scale with log(p)");

  Table table("F3  profit-range sweep (n=128, m=96, eps=0.2, 4 seeds)");
  table.set_header({"pmax/pmin", "log2", "worst stage steps(max)",
                    "budget 1+log2(p)", "total steps(mean)",
                    "comm-rounds(mean)"});
  std::vector<double> xs, ys;
  for (double pmax : {1.5, 4.0, 16.0, 256.0, 4096.0}) {
    RunningStats worst_stage, steps, rounds;
    double observed_range = 0.0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      TreeScenarioSpec spec;
      spec.num_vertices = 128;
      spec.num_networks = 2;
      spec.demands.num_demands = 96;
      spec.demands.profit_max = pmax;
      spec.seed = seed * 31 + static_cast<std::uint64_t>(pmax);
      const Problem p = make_tree_problem(spec);
      observed_range =
          std::max(observed_range, p.max_profit() / p.min_profit());
      DistOptions options;
      options.epsilon = 0.2;
      options.seed = seed;
      const DistResult r = solve_tree_unit_distributed(p, options);
      checked_profit(p, r.solution);
      worst_stage.add(r.stats.max_steps_in_stage);
      steps.add(r.stats.steps);
      rounds.add(static_cast<double>(r.stats.comm_rounds));
    }
    const double log2p = std::log2(observed_range);
    xs.push_back(log2p);
    ys.push_back(steps.mean());
    table.add_row({fmt(observed_range, 1), fmt(log2p, 1),
                   fmt(worst_stage.max(), 0), fmt(1.0 + log2p, 1),
                   fmt(steps.mean(), 1), fmt(rounds.mean(), 1)});
  }
  table.print(std::cout);

  std::printf("\nlinear fit of total steps against log2(pmax/pmin): slope "
              "%.2f, correlation %.3f\n", regression_slope(xs, ys),
              correlation(xs, ys));
  std::printf("expected shape: worst stage steps stays within its budget "
              "at every profit range; total steps grow ~linearly in "
              "log2(p).\n");
  return 0;
}
