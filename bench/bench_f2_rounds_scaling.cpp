// F2 — Theorem 5.3 round complexity: communication rounds grow with
// log n (epochs = decomposition depth) for fixed eps and profit range.
// The series reports rounds vs n and the regression of rounds against
// log2 n; a strongly super-logarithmic trend would break the claim.
#include <cmath>

#include "bench_util.hpp"
#include "decomp/layered.hpp"
#include "dist/luby_mis.hpp"
#include "dist/scheduler.hpp"
#include "framework/two_phase.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

int main() {
  print_claim("F2  rounds vs n (Thm 5.3)",
              "rounds = O(T_MIS * log n * log(1/eps) * log(pmax/pmin)): "
              "for fixed eps and profit range, rounds scale with log n");

  Table table("F2  rounds vs n (m = 3n/4 demands, eps = 0.2, 3 seeds)");
  table.set_header({"n", "epochs(mean)", "steps(mean)", "mis-rounds(mean)",
                    "comm-rounds(mean)", "rounds/log2(n)"});
  std::vector<double> xs, ys;
  std::vector<JsonRecord> runs;
  for (int n : {64, 128, 256, 512, 1024, 2048, 4096}) {
    RunningStats epochs, steps, mis, rounds;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      TreeScenarioSpec spec;
      spec.num_vertices = n;
      spec.num_networks = 2;
      spec.demands.num_demands = 3 * n / 4;
      spec.demands.profit_max = 16.0;
      spec.seed = seed * 100 + static_cast<std::uint64_t>(n);
      const Problem p = make_tree_problem(spec);
      DistOptions options;
      options.epsilon = 0.2;
      options.seed = seed;
      const DistResult r = solve_tree_unit_distributed(p, options);
      const Profit profit = checked_profit(p, r.solution);
      epochs.add(r.stats.epochs);
      steps.add(r.stats.steps);
      mis.add(static_cast<double>(r.stats.mis_rounds));
      rounds.add(static_cast<double>(r.stats.comm_rounds));
      runs.push_back({{"n", static_cast<double>(n)},
                      {"seed", static_cast<double>(seed)},
                      {"rounds", static_cast<double>(r.stats.comm_rounds)},
                      {"ratio", ratio(r.stats.dual_upper_bound, profit)},
                      {"profit", profit}});
    }
    const double log2n = std::log2(static_cast<double>(n));
    xs.push_back(log2n);
    ys.push_back(rounds.mean());
    table.add_row({std::to_string(n), fmt(epochs.mean(), 1),
                   fmt(steps.mean(), 1), fmt(mis.mean(), 1),
                   fmt(rounds.mean(), 1), fmt(rounds.mean() / log2n, 1)});
  }
  table.print(std::cout);
  emit_json("f2_rounds_scaling", runs);

  std::printf("\nlinear fit of comm-rounds against log2(n): slope %.1f, "
              "correlation %.3f\n", regression_slope(xs, ys),
              correlation(xs, ys));

  // F2b: the price of zero global knowledge.  The adaptive schedule ends
  // a stage the moment U is empty (an idealization); the lockstep
  // schedule runs the fixed Lemma 5.1 budget everywhere — what a real
  // deployment without global tests pays.  Both remain polylog.
  Table lock("F2b  adaptive vs lockstep schedule (eps = 0.2, 3 seeds)");
  lock.set_header({"n", "adaptive rounds", "lockstep rounds", "overhead",
                   "lockstep lambda ok"});
  for (int n : {128, 1024, 4096}) {
    RunningStats adaptive, lockstep;
    bool ok = true;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      TreeScenarioSpec spec;
      spec.num_vertices = n;
      spec.num_networks = 2;
      spec.demands.num_demands = 3 * n / 4;
      spec.demands.profit_max = 16.0;
      spec.seed = seed * 100 + static_cast<std::uint64_t>(n);
      const Problem p = make_tree_problem(spec);
      const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
      for (const bool locked : {false, true}) {
        SolverConfig config;
        config.epsilon = 0.2;
        config.lockstep = locked;
        LubyMis oracle(p, seed);
        const SolveResult r = solve_with_plan(p, plan, config, &oracle);
        checked_profit(p, r.solution);
        (locked ? lockstep : adaptive)
            .add(static_cast<double>(r.stats.comm_rounds));
        if (locked)
          ok = ok && r.stats.lockstep_ok &&
               r.stats.lambda_observed >= 0.8 - 1e-6;
      }
    }
    lock.add_row({std::to_string(n), fmt(adaptive.mean(), 0),
                  fmt(lockstep.mean(), 0),
                  fmt(lockstep.mean() / adaptive.mean(), 1),
                  ok ? "yes" : "NO"});
  }
  lock.print(std::cout);
  std::printf("expected shape: rounds grow polylogarithmically — near-"
              "linear in log2(n) (correlation ~1), with mild extra growth "
              "from the T_MIS = O(log N) factor (N = m*r grows with n "
              "here); a 32x larger instance should cost only ~4x the "
              "rounds.\n");
  return 0;
}
