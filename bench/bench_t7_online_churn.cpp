// T7 — the online scheduling service under steady churn: incremental
// warm-start re-solve vs cold re-solve per batch.
//
// The service replays a seeded arrival/departure trace through the
// OnlineScheduler twice — once in kWarm mode (only the conflict
// components a batch touches are re-solved; untouched components are
// served from the per-component caches) and once in kCold mode (every
// batch re-solves every live component) — over identical traces, and
// reports the sustained events/sec of each arm plus the warm arm's
// touched-component ratio.  Before any timing is trusted, the warm
// arm's assembled artifacts are held to exact equality against the
// from-scratch reference (solve_cold) at the end of the replay; a
// mismatch aborts the bench.
//
// Gate: the touched ratio is deterministic (seeded trace, deterministic
// component structure) and committed under the perf-trajectory gate — a
// rising ratio means the warm path is re-solving components it used to
// skip.  The wall-clock speedup is informational for the trajectory
// tool, but the binary itself exits nonzero unless the warm arm
// sustains >= 2x the cold arm's throughput on every scenario, which is
// what CI enforces.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "online/event_stream.hpp"
#include "online/online_scheduler.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

namespace {

struct ChurnScenario {
  int id = 0;
  const char* name = "";
  VertexId num_vertices = 1024;
  int num_networks = 2;
  int residents = 420;  // demands in the base problem (never depart)
  ArrivalLaw arrivals = ArrivalLaw::kPoisson;
  double rate = 6.0;
  int num_batches = 12;
  double mean_lifetime = 2.0;
  HeightLaw heights = HeightLaw::kBimodal;
  std::uint64_t seed = 1;
};

struct ArmResult {
  double ms = 0.0;
  std::int64_t events = 0;
  std::int64_t touched_components = 0;
  std::int64_t total_components = 0;
  int live_final = 0;
};

// Local-pair demands keep the conflict graph sparse: many small
// components, so a batch's events touch a small fraction of them.
DemandGenConfig demand_config(const ChurnScenario& s) {
  DemandGenConfig cfg;
  cfg.endpoints = EndpointLaw::kLocalPair;
  cfg.locality = 2;
  cfg.heights = s.heights;
  cfg.profit_max = 64.0;
  return cfg;
}

Problem make_base(const ChurnScenario& s) {
  TreeScenarioSpec spec;
  spec.num_vertices = s.num_vertices;
  spec.num_networks = s.num_networks;
  // Identical copies of the tree: local-pair endpoints then stay local
  // on EVERY network.  With independent random trees the second
  // network's paths are long, the conflict graph percolates into one
  // giant component, and the warm arm has nothing to skip.
  spec.identical_networks = true;
  spec.demands = demand_config(s);
  spec.demands.num_demands = s.residents;
  spec.seed = s.seed;
  return make_tree_problem(spec);
}

OnlineTrafficSpec traffic_of(const ChurnScenario& s) {
  OnlineTrafficSpec traffic;
  traffic.arrivals = s.arrivals;
  traffic.rate = s.rate;
  traffic.num_batches = s.num_batches;
  traffic.seed = s.seed + 100;
  TenantClass tenant;
  tenant.mean_lifetime = s.mean_lifetime;
  traffic.tenants.push_back(tenant);
  return traffic;
}

ArmResult replay_once(const Problem& base,
                      const std::vector<EventBatch>& trace,
                      OnlineSolveMode mode) {
  OnlineConfig config;
  config.mode = mode;
  OnlineScheduler scheduler(base, config);
  ArmResult arm;
  for (const EventBatch& batch : trace) {
    const OnlineBatchReport report = scheduler.step(batch);
    arm.events += report.arrivals + report.departures;
    arm.ms += static_cast<double>(report.solve_ns) / 1e6;
    arm.touched_components += report.touched_components;
    arm.total_components += report.total_components;
  }
  arm.live_final = scheduler.live_demands();

  // The warm arm's spliced artifacts must equal the from-scratch
  // reference exactly before its timing means anything.
  const OnlineSolveArtifacts assembled = scheduler.assemble();
  const OnlineSolveArtifacts reference =
      solve_cold(scheduler.problem(), scheduler.plan(), config.solver,
                 scheduler.live_mask());
  if (assembled.solution.selected != reference.solution.selected ||
      assembled.wide.raise_stack != reference.wide.raise_stack ||
      assembled.narrow.raise_stack != reference.narrow.raise_stack ||
      assembled.wide.final_lhs != reference.wide.final_lhs ||
      assembled.narrow.final_lhs != reference.narrow.final_lhs ||
      assembled.lambda != reference.lambda) {
    std::fprintf(stderr,
                 "BENCH ERROR: warm-start artifacts diverged from the "
                 "cold reference\n");
    std::abort();
  }
  checked_profit(scheduler.problem(), assembled.solution);
  return arm;
}

// Best-of-3: the replay is deterministic in everything but wall clock
// (counts come out identical across repeats), so the minimum total time
// is the least-noisy estimate of either arm's cost.
ArmResult replay(const Problem& base, const std::vector<EventBatch>& trace,
                 OnlineSolveMode mode) {
  ArmResult best = replay_once(base, trace, mode);
  for (int rep = 1; rep < 3; ++rep) {
    const ArmResult next = replay_once(base, trace, mode);
    if (next.ms < best.ms) best = next;
  }
  return best;
}

}  // namespace

int main() {
  print_claim(
      "t7_online_churn",
      "incremental warm-start re-solve sustains >= 2x the cold arm's "
      "steady-churn throughput by re-solving only touched components");

  std::vector<ChurnScenario> scenarios(3);
  scenarios[0].id = 0;
  scenarios[0].name = "poisson-sparse";
  scenarios[0].seed = 3;
  scenarios[1].id = 1;
  scenarios[1].name = "bursty-sparse";
  scenarios[1].arrivals = ArrivalLaw::kBursty;
  scenarios[1].rate = 3.0;
  scenarios[1].seed = 5;
  scenarios[2].id = 2;
  scenarios[2].name = "diurnal-narrowheavy";
  scenarios[2].arrivals = ArrivalLaw::kDiurnal;
  scenarios[2].heights = HeightLaw::kNarrowOnly;
  scenarios[2].rate = 2.0;
  scenarios[2].seed = 7;

  std::vector<JsonRecord> rows;
  std::printf("%-22s %10s %10s %9s %9s %8s\n", "scenario", "warm ev/s",
              "cold ev/s", "speedup", "touched%", "events");
  double min_speedup = 1e30;
  for (const ChurnScenario& s : scenarios) {
    const Problem base = make_base(s);
    const std::vector<EventBatch> trace =
        make_event_trace(base, demand_config(s), traffic_of(s));

    const ArmResult warm = replay(base, trace, OnlineSolveMode::kWarm);
    const ArmResult cold = replay(base, trace, OnlineSolveMode::kCold);

    const double warm_per_sec =
        static_cast<double>(warm.events) / (warm.ms / 1e3);
    const double cold_per_sec =
        static_cast<double>(cold.events) / (cold.ms / 1e3);
    const double speedup = cold.ms / warm.ms;
    const double touched_ratio =
        static_cast<double>(warm.touched_components) /
        static_cast<double>(warm.total_components);
    if (speedup < min_speedup) min_speedup = speedup;

    std::printf("%-22s %10.0f %10.0f %8.2fx %8.1f%% %8lld\n", s.name,
                warm_per_sec, cold_per_sec, speedup, 100.0 * touched_ratio,
                static_cast<long long>(warm.events));

    JsonRecord row;
    row.emplace_back("scenario", s.id);
    row.emplace_back("seed", static_cast<double>(s.seed));
    row.emplace_back("batches", s.num_batches);
    row.emplace_back("residents", s.residents);
    row.emplace_back("events", static_cast<double>(warm.events));
    row.emplace_back("live_final", warm.live_final);
    row.emplace_back("touched_components",
                     static_cast<double>(warm.touched_components));
    row.emplace_back("total_components",
                     static_cast<double>(warm.total_components));
    row.emplace_back("touched_ratio", touched_ratio);  // gated
    row.emplace_back("warm_ms", warm.ms);
    row.emplace_back("cold_ms", cold.ms);
    row.emplace_back("warm_events_per_sec", warm_per_sec);
    row.emplace_back("cold_events_per_sec", cold_per_sec);
    row.emplace_back("warm_vs_cold_speedup", speedup);
    rows.push_back(std::move(row));
  }
  emit_json("t7_online_churn", rows);

  std::printf("min warm-vs-cold speedup: %.2fx (gate: >= 2.0x)\n",
              min_speedup);
  return min_speedup >= 2.0 ? 0 : 1;
}
