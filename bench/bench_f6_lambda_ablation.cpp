// F6 — the slackness ablation (Remark after Theorem 5.3): the multi-stage
// schedule drives lambda to 1-eps where the PS single-stage schedule
// stops at 1/(5+eps).  Same engine, same decomposition, same MIS — only
// the stage thresholds differ.  The price is more stages (rounds); the
// payoff is a 5x better guarantee and a visibly tighter certificate.
#include "bench_util.hpp"
#include "dist/scheduler.hpp"
#include "exact/branch_and_bound.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

int main() {
  print_claim("F6  slackness ablation: multi-stage vs PS single-stage",
              "multi-stage: lambda = 1-eps -> (Delta+1)/(1-eps); PS: "
              "lambda = 1/(5+eps) -> (Delta+1)(5+eps); measured lambda and "
              "certificates should match those targets");

  const double eps = 0.1;
  Table table("F6a  measured slackness and quality (n=20 exact, 15 seeds)");
  table.set_header({"schedule", "lambda_obs(min)", "ratio(mean)",
                    "ratio(worst)", "cert-gap(mean)", "rounds(mean)"});
  for (const bool ps : {false, true}) {
    RunningStats lambda, ratio_opt, cert, rounds;
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      TreeScenarioSpec spec;
      spec.num_vertices = 20;
      spec.num_networks = 2;
      spec.demands.num_demands = 9;
      spec.demands.profit_max = 64.0;
      spec.seed = seed * 7 + 1;
      const Problem p = make_tree_problem(spec);
      const ExactResult exact = solve_exact(p);
      DistOptions options;
      options.epsilon = eps;
      options.seed = seed;
      options.stage_mode = ps ? StageMode::kSingleStagePS
                              : StageMode::kMultiStage;
      const DistResult r = solve_tree_unit_distributed(p, options);
      const Profit profit = checked_profit(p, r.solution);
      lambda.add(r.stats.lambda_observed);
      ratio_opt.add(ratio(exact.profit, profit));
      cert.add(ratio(r.stats.dual_upper_bound, profit));
      rounds.add(static_cast<double>(r.stats.comm_rounds));
    }
    table.add_row({ps ? "PS single-stage" : "multi-stage (ours)",
                   fmt(lambda.min(), 3), fmt(ratio_opt.mean(), 3),
                   fmt(ratio_opt.max(), 3), fmt(cert.mean(), 3),
                   fmt(rounds.mean(), 0)});
  }
  table.print(std::cout);

  // The xi knob: sweeping xi shows the stage/quality tradeoff directly.
  Table knob("F6b  xi override sweep (multi-stage, n=128 m=96, certified)");
  knob.set_header({"xi", "stages/epoch", "comm-rounds", "lambda_obs",
                   "cert-gap"});
  for (double xi : {0.75, 0.875, 14.0 / 15.0, 0.97}) {
    TreeScenarioSpec spec;
    spec.num_vertices = 128;
    spec.num_networks = 2;
    spec.demands.num_demands = 96;
    spec.demands.profit_max = 32.0;
    spec.seed = 11;
    const Problem p = make_tree_problem(spec);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    SolverConfig config;
    config.epsilon = eps;
    config.xi_override = xi;
    const SolveResult r = solve_with_plan(p, plan, config);
    const Profit profit = checked_profit(p, r.solution);
    knob.add_row({fmt(xi, 3), std::to_string(r.stats.stages_per_epoch),
                  std::to_string(r.stats.comm_rounds),
                  fmt(r.stats.lambda_observed, 3),
                  fmt(ratio(r.stats.dual_upper_bound, profit), 3)});
  }
  knob.print(std::cout);

  std::printf("\nexpected shape: multi-stage lambda_obs >= 0.9 vs PS ~0.2; "
              "PS cheaper in rounds; larger xi buys more stages for a "
              "tighter lambda (the paper's second technical "
              "contribution).\n");
  return 0;
}
