// T2 — Theorem 7.2: line networks with windows, arbitrary heights.
// Ours: (23+eps) via wide (4+eps) + narrow (19+eps) combination; the
// PS-style single-stage run of the same split gives the baseline; the
// sequential end-time split gives the classical Bar-Noy 5-approx.
#include "bench_util.hpp"
#include "dist/scheduler.hpp"
#include "seq/sequential.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

namespace {

Problem make(std::uint64_t seed, bool large) {
  LineScenarioSpec spec;
  spec.line.num_slots = large ? 512 : 24;
  spec.line.num_resources = large ? 3 : 2;
  spec.line.num_demands = large ? 450 : 8;
  spec.line.max_proc_time = large ? 36 : 8;
  spec.line.window_slack = 1.8;
  spec.line.heights = HeightLaw::kBimodal;
  spec.line.height_min = 0.15;
  spec.line.profit_max = 100.0;
  spec.seed = seed;
  return make_line_problem(spec);
}

}  // namespace

int main() {
  print_claim("T2  line networks + windows, arbitrary heights",
              "Thm 7.2: (23+eps)-approx (wide 4+eps, narrow 19+eps); "
              "sequential split: 5 (Bar-Noy); PS-style single stage as "
              "baseline");

  const double eps = 0.1;
  Aggregate ours, ps, seq;
  std::vector<JsonRecord> runs;
  std::vector<double> small_opt(21, 0.0);  // per-seed exact optima cache
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Problem p = make(seed, /*large=*/false);
    const ExactResult exact = solve_exact(p);
    small_opt[static_cast<std::size_t>(seed)] = exact.profit;
    DistOptions options;
    options.epsilon = eps;
    options.seed = seed;

    const DistResult a = solve_line_arbitrary_distributed(p, options);
    const double a_ratio = ratio(exact.profit, checked_profit(p, a.solution));
    ours.ratio_vs_opt.add(a_ratio);
    ours.ratio_vs_cert.add(ratio(a.stats.dual_upper_bound, a.profit));
    ours.rounds.add(static_cast<double>(a.stats.comm_rounds));

    DistOptions ps_options = options;
    ps_options.stage_mode = StageMode::kSingleStagePS;
    const DistResult b = solve_line_arbitrary_distributed(p, ps_options);
    const double b_ratio = ratio(exact.profit, checked_profit(p, b.solution));
    ps.ratio_vs_opt.add(b_ratio);
    ps.ratio_vs_cert.add(ratio(b.stats.dual_upper_bound, b.profit));
    ps.rounds.add(static_cast<double>(b.stats.comm_rounds));

    const SeqResult c = solve_line_arbitrary_sequential(p);
    const double c_ratio = ratio(exact.profit, checked_profit(p, c.solution));
    seq.ratio_vs_opt.add(c_ratio);
    seq.ratio_vs_cert.add(ratio(c.stats.dual_upper_bound, c.profit));
    seq.rounds.add(static_cast<double>(c.stats.steps));

    runs.push_back({{"workload", 0.0},
                    {"seed", static_cast<double>(seed)},
                    {"ours_ratio", a_ratio},
                    {"ours_rounds", static_cast<double>(a.stats.comm_rounds)},
                    {"ps_ratio", b_ratio},
                    {"ps_rounds", static_cast<double>(b.stats.comm_rounds)},
                    {"seq_ratio", c_ratio}});
  }

  Table small("T2a  small workloads (exact OPT, 20 seeds)");
  small.set_header(Aggregate::header());
  ours.row(small, "multi-stage split (ours)", 23.0 / (1.0 - eps));
  ps.row(small, "PS-style single-stage split", (4.0 + 19.0) * (5.0 + eps));
  seq.row(small, "sequential split (Bar-Noy)", 5.0);
  small.print(std::cout);

  Aggregate lours;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Problem p = make(seed + 50, /*large=*/true);
    DistOptions options;
    options.epsilon = eps;
    options.seed = seed;
    const DistResult a = solve_line_arbitrary_distributed(p, options);
    const double a_gap =
        ratio(a.stats.dual_upper_bound, checked_profit(p, a.solution));
    lours.ratio_vs_cert.add(a_gap);
    lours.rounds.add(static_cast<double>(a.stats.comm_rounds));
    runs.push_back({{"workload", 1.0},
                    {"seed", static_cast<double>(seed)},
                    {"ours_cert_gap", a_gap},
                    {"ours_rounds", static_cast<double>(a.stats.comm_rounds)}});
  }
  Table large("T2b  large workloads (certified bound, 5 seeds)");
  large.set_header(Aggregate::header());
  lours.row(large, "multi-stage split (ours)", 23.0 / (1.0 - eps));
  large.print(std::cout);

  // Message-level arm: the Theorem 7.2 two-pass wide/narrow schedule on
  // the wire, per-pass round budgets broken out against the modeled run.
  // A larger eps keeps the narrow pass's stage count (~1/log(1/xi))
  // tractable for the fixed wire schedule.
  Table wire("T2c  message-level two-pass protocol (small, eps=0.3, 5 seeds)");
  wire.set_header({"seed", "ratio", "modeled-rounds", "wire-rounds",
                   "wide-pass-rounds", "narrow-pass-rounds", "sched_ok"});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Problem p = make(seed, /*large=*/false);
    DistOptions moptions;
    moptions.epsilon = 0.3;
    moptions.seed = seed;
    const DistResult m = solve_line_arbitrary_distributed(p, moptions);
    ProtocolOptions options;
    options.epsilon = 0.3;
    options.seed = seed;
    const ProtocolDistResult w = run_line_arbitrary_protocol(p, options);
    const double w_ratio = ratio(small_opt[static_cast<std::size_t>(seed)],
                                 checked_profit(p, w.run.solution));
    std::int64_t unit_rounds = 0, narrow_rounds = 0;
    for (const ProtocolPass& pass : w.run.passes) {
      if (pass.rule == RaiseRuleKind::kUnit)
        unit_rounds = pass.rounds;
      else
        narrow_rounds = pass.rounds;
    }
    wire.add_row({std::to_string(seed), fmt(w_ratio, 3),
                  std::to_string(m.stats.comm_rounds),
                  std::to_string(w.run.rounds), std::to_string(unit_rounds),
                  std::to_string(narrow_rounds),
                  w.run.schedule_ok ? "1" : "0"});
    JsonRecord row{{"workload", 2.0},
                   {"seed", static_cast<double>(seed)},
                   {"protocol_ratio", w_ratio},
                   {"modeled_rounds",
                    static_cast<double>(m.stats.comm_rounds)},
                   {"wide_pass_rounds", static_cast<double>(unit_rounds)},
                   {"narrow_pass_rounds",
                    static_cast<double>(narrow_rounds)}};
    append_protocol_fields(row, w.run);
    runs.push_back(std::move(row));
  }
  wire.print(std::cout);
  emit_json("t2_line_arbitrary", runs);

  std::printf("\nexpected shape: measured ratios ~1.1-2.5, far below the "
              "worst-case 23+eps; certificate gap modest.\n");
  return 0;
}
