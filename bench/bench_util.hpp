// Shared helpers for the experiment binaries.  Every bench prints the
// paper claim it regenerates, one or more ASCII tables, and (for the
// figures) a series suitable for plotting; EXPERIMENTS.md records the
// output.  All workloads are seeded, so reruns reproduce the tables.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "dist/protocol_scheduler.hpp"
#include "exact/branch_and_bound.hpp"
#include "model/problem.hpp"
#include "model/solution.hpp"

namespace treesched::benchutil {

// One measurement record of a bench run: metric name -> value (e.g.
// {"seed", 3}, {"rounds", 120}, {"ratio", 1.4}, {"profit", 659.0}).
using JsonRecord = std::vector<std::pair<std::string, double>>;

// Writes `runs` to BENCH_<bench_id>.json as a JSON array of flat objects
// — the machine-readable twin of the ASCII tables, consumed by the perf
// trajectory tooling.  Values are emitted with enough precision to
// round-trip doubles.
inline void emit_json(const std::string& bench_id,
                      const std::vector<JsonRecord>& runs) {
  const std::string path = "BENCH_" + bench_id + ".json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "emit_json: cannot write %s\n", path.c_str());
    return;
  }
  os << "[\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    os << "  {";
    for (std::size_t f = 0; f < runs[r].size(); ++f) {
      char value[64];
      // inf/nan are not valid JSON; emit null so one degenerate metric
      // cannot invalidate the whole file.
      if (std::isfinite(runs[r][f].second))
        std::snprintf(value, sizeof(value), "%.17g", runs[r][f].second);
      else
        std::snprintf(value, sizeof(value), "null");
      os << (f ? ", " : "") << '"' << runs[r][f].first << "\": " << value;
    }
    os << (r + 1 < runs.size() ? "},\n" : "}\n");
  }
  os << "]\n";
  std::printf("wrote %s (%zu runs)\n", path.c_str(), runs.size());
}

inline void print_claim(const std::string& id, const std::string& claim) {
  std::printf("%s\n%s\n", std::string(72, '=').c_str(), id.c_str());
  std::printf("claim: %s\n%s\n", claim.c_str(), std::string(72, '=').c_str());
}

// Measured approximation ratio against a reference optimum (or certified
// upper bound): >= 1, lower is better.
inline double ratio(Profit reference, Profit achieved) {
  if (achieved <= 0.0) return reference > 0.0 ? 1e9 : 1.0;
  return reference / achieved;
}

// Asserts feasibility; aborts the bench loudly otherwise (a bench that
// silently reports an infeasible schedule would be worse than useless).
inline Profit checked_profit(const Problem& problem,
                             const Solution& solution) {
  const auto report = check_feasibility(problem, solution);
  if (!report.feasible) {
    std::fprintf(stderr, "BENCH ERROR: infeasible solution: %s\n",
                 report.violation.c_str());
    std::abort();
  }
  return solution.profit(problem);
}

// Vendored fallback timer for environments without google-benchmark:
// runs `fn` until at least `min_iters` iterations and `min_seconds` of
// wall clock have elapsed, and returns the mean nanoseconds per
// iteration.  Deliberately simple — no statistical outlier handling —
// but enough for every environment to report kernel timings instead of
// silently skipping them.
template <typename Fn>
inline double time_kernel_ns(Fn&& fn, int min_iters = 3,
                             double min_seconds = 0.2) {
  using clock = std::chrono::steady_clock;
  // The clock is read once per batch of min_iters calls, not once per
  // call — a per-iteration now() would inflate ns/op for fast kernels.
  const int batch = min_iters > 0 ? min_iters : 1;
  const auto start = clock::now();
  long long iters = 0;
  double seconds = 0.0;
  do {
    for (int b = 0; b < batch; ++b) fn();
    iters += batch;
    seconds = std::chrono::duration<double>(clock::now() - start).count();
  } while (seconds < min_seconds);
  return seconds * 1e9 / static_cast<double>(iters);
}

// Appends the standard message-level protocol fields to a JSON record:
// the wire counters with the discovery byte breakdown, plus the budget
// sufficiency flags.  mis_ok/schedule_ok are emitted as 0/1 and join the
// row *key* in tools/perf_trajectory.py, so a run whose fixed budgets
// silently stopped sufficing re-keys its rows and fails the perf gate.
inline void append_protocol_fields(JsonRecord& row,
                                   const ProtocolRunResult& run) {
  if (!run.mis_ok)
    std::fprintf(stderr,
                 "WARNING: Luby budget exhausted with undecided nodes "
                 "(mis_ok=0) — the protocol run degraded; the re-keyed "
                 "row will fail the perf-trajectory gate\n");
  row.emplace_back("protocol_rounds", static_cast<double>(run.rounds));
  row.emplace_back("protocol_messages", static_cast<double>(run.messages));
  row.emplace_back("protocol_bytes", static_cast<double>(run.bytes));
  row.emplace_back("discovery_bytes",
                   static_cast<double>(run.discovery_bytes));
  row.emplace_back("discovery_reply_bytes",
                   static_cast<double>(run.discovery_reply_bytes));
  row.emplace_back("mis_ok", run.mis_ok ? 1.0 : 0.0);
  row.emplace_back("schedule_ok", run.schedule_ok ? 1.0 : 0.0);
}

// Aggregates per-seed ratio/round measurements into one table row.
struct Aggregate {
  RunningStats ratio_vs_opt;   // only when exact opt available
  RunningStats ratio_vs_cert;  // profit vs certified dual bound
  RunningStats rounds;
  RunningStats steps;
  RunningStats profit;

  void row(Table& table, const std::string& name, double bound) const {
    table.add_row({name,
                   ratio_vs_opt.count() ? fmt(ratio_vs_opt.mean(), 3) : "-",
                   ratio_vs_opt.count() ? fmt(ratio_vs_opt.max(), 3) : "-",
                   fmt(ratio_vs_cert.mean(), 3), fmt(bound, 2),
                   fmt(rounds.mean(), 0)});
  }

  static std::vector<std::string> header() {
    return {"algorithm", "ratio(mean)", "ratio(worst)", "cert-gap(mean)",
            "proven-bound", "rounds(mean)"};
  }
};

}  // namespace treesched::benchutil
