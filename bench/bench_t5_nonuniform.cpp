// T5 — non-uniform bandwidths (the IPDPS 2013 title extension,
// reconstructed in DESIGN.md Section 6).  Sweeps the capacity spread and
// compares three arms: capacity-aware raises (ours), the paper's uniform
// raises applied verbatim ("naive"), and per-bottleneck-class solving.
// Also includes the all-narrow regime under the strong NBA.
#include <map>

#include "bench_util.hpp"
#include "capacity/nonuniform.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

namespace {

Problem make(std::uint64_t seed, double spread, HeightLaw heights, bool large,
             CapacityLaw law) {
  TreeScenarioSpec spec;
  spec.num_vertices = large ? 1200 : 20;
  spec.num_networks = 2;
  spec.demands.num_demands = large ? 900 : 9;
  spec.demands.heights = heights;
  spec.demands.height_min = 0.15;
  spec.demands.profit_max = 100.0;
  spec.capacities = spread > 1.0 ? law : CapacityLaw::kUniform;
  spec.capacity_base = 1.0;
  spec.capacity_spread = spread;
  spec.seed = seed;
  return make_tree_problem(spec);
}

}  // namespace

int main() {
  print_claim("T5  non-uniform bandwidths (2013 extension, reconstruction)",
              "derived bound: (Delta+1)*rho/(1-eps) for unit heights, "
              "(1+2Delta^2)*rho/(1-eps) all-narrow; rho = path capacity "
              "spread; capacity-aware raises keep the certificate tight");

  const double eps = 0.1;
  std::vector<JsonRecord> runs;
  // Exact optima keyed by the generator seed (T5d reuses T5a problems).
  std::map<std::uint64_t, double> opt_cache;

  // T5a: unit heights, small workloads with exact optimum, spread sweep.
  Table t5a("T5a  unit heights, exact OPT, 10 seeds per spread");
  t5a.set_header({"spread", "arm", "ratio(mean)", "ratio(worst)",
                  "cert-gap(mean)", "derived-bound(mean)"});
  for (double spread : {1.0, 2.0, 4.0, 8.0}) {
    Aggregate aware, naive, byclass;
    RunningStats bound_aware;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const Problem p = make(seed * 7 + static_cast<std::uint64_t>(spread),
                             spread, HeightLaw::kUnit, /*large=*/false,
                             CapacityLaw::kPowerClasses);
      const ExactResult exact = solve_exact(p);
      opt_cache[seed * 7 + static_cast<std::uint64_t>(spread)] = exact.profit;

      NonuniformOptions options;
      options.dist.epsilon = eps;
      options.dist.seed = seed;
      const NonuniformResult a = solve_nonuniform_unit(p, options);
      const double aware_ratio =
          ratio(exact.profit, checked_profit(p, a.solution));
      aware.ratio_vs_opt.add(aware_ratio);
      aware.ratio_vs_cert.add(ratio(a.stats.dual_upper_bound, a.profit));
      bound_aware.add(a.ratio_bound);

      NonuniformOptions naive_options = options;
      naive_options.capacity_aware = false;
      const NonuniformResult b = solve_nonuniform_unit(p, naive_options);
      const double naive_ratio =
          ratio(exact.profit, checked_profit(p, b.solution));
      naive.ratio_vs_opt.add(naive_ratio);
      naive.ratio_vs_cert.add(ratio(b.stats.dual_upper_bound, b.profit));

      NonuniformOptions class_options = options;
      class_options.by_class = true;
      const NonuniformResult c = solve_nonuniform_unit(p, class_options);
      const double byclass_ratio =
          ratio(exact.profit, checked_profit(p, c.solution));
      byclass.ratio_vs_opt.add(byclass_ratio);
      byclass.ratio_vs_cert.add(ratio(c.stats.dual_upper_bound, c.profit));

      runs.push_back({{"workload", 0.0},
                      {"spread", spread},
                      {"seed", static_cast<double>(seed)},
                      {"aware_ratio", aware_ratio},
                      {"naive_ratio", naive_ratio},
                      {"byclass_ratio", byclass_ratio},
                      {"derived_bound", a.ratio_bound}});
    }
    auto emit = [&](const char* arm, const Aggregate& agg,
                    const std::string& bound) {
      t5a.add_row({fmt(spread, 0), arm, fmt(agg.ratio_vs_opt.mean(), 3),
                   fmt(agg.ratio_vs_opt.max(), 3),
                   fmt(agg.ratio_vs_cert.mean(), 3), bound});
    };
    emit("capacity-aware (ours)", aware, fmt(bound_aware.mean(), 1));
    emit("naive (paper verbatim)", naive, "-");
    emit("by-bottleneck-class", byclass, "-");
  }
  t5a.print(std::cout);

  // T5b: large unit-height workloads — certificate quality vs spread.
  Table t5b("T5b  unit heights, n=1200 m=900, certificate gap vs spread");
  t5b.set_header({"spread", "rho(path)", "aware cert-gap", "naive cert-gap",
                  "aware profit", "naive profit"});
  for (double spread : {1.0, 4.0, 16.0}) {
    const Problem p = make(991, spread, HeightLaw::kUnit, /*large=*/true,
                           CapacityLaw::kTwoClass);
    NonuniformOptions options;
    options.dist.epsilon = eps;
    const NonuniformResult a = solve_nonuniform_unit(p, options);
    NonuniformOptions naive_options = options;
    naive_options.capacity_aware = false;
    const NonuniformResult b = solve_nonuniform_unit(p, naive_options);
    t5b.add_row({fmt(spread, 0), fmt(a.path_spread, 1),
                 fmt(ratio(a.stats.dual_upper_bound,
                           checked_profit(p, a.solution)), 3),
                 fmt(ratio(b.stats.dual_upper_bound,
                           checked_profit(p, b.solution)), 3),
                 fmt(a.profit, 0), fmt(b.profit, 0)});
    runs.push_back({{"workload", 1.0},
                    {"spread", spread},
                    {"rho_path", a.path_spread},
                    {"aware_cert_gap",
                     ratio(a.stats.dual_upper_bound, a.profit)},
                    {"naive_cert_gap",
                     ratio(b.stats.dual_upper_bound, b.profit)}});
  }
  t5b.print(std::cout);

  // T5c: all-narrow heights under the strong NBA.
  Table t5c("T5c  all-narrow heights (h <= c/2 everywhere), exact OPT");
  t5c.set_header({"spread", "ratio(mean)", "ratio(worst)", "cert-gap(mean)",
                  "derived-bound(mean)"});
  for (double spread : {2.0, 4.0}) {
    Aggregate agg;
    RunningStats bound;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const Problem p = make(seed * 13 + 3, spread, HeightLaw::kNarrowOnly,
                             /*large=*/false, CapacityLaw::kTwoClass);
      if (!all_instances_narrow(p)) continue;
      const ExactResult exact = solve_exact(p);
      NonuniformOptions options;
      options.dist.epsilon = eps;
      options.dist.seed = seed;
      const NonuniformResult a = solve_nonuniform_narrow(p, options);
      agg.ratio_vs_opt.add(
          ratio(exact.profit, checked_profit(p, a.solution)));
      agg.ratio_vs_cert.add(ratio(a.stats.dual_upper_bound, a.profit));
      bound.add(a.ratio_bound);
    }
    t5c.add_row({fmt(spread, 0), fmt(agg.ratio_vs_opt.mean(), 3),
                 fmt(agg.ratio_vs_opt.max(), 3),
                 fmt(agg.ratio_vs_cert.mean(), 3), fmt(bound.mean(), 1)});
    runs.push_back({{"workload", 2.0},
                    {"spread", spread},
                    {"narrow_mean_ratio", agg.ratio_vs_opt.mean()},
                    {"narrow_worst_ratio", agg.ratio_vs_opt.max()},
                    {"derived_bound", bound.mean()}});
  }
  t5c.print(std::cout);

  // T5d: the non-uniform run as a message-level protocol — the kTagRaise
  // payloads carry the capacity-normalized increments, so the wire run
  // certifies the same spread-scaled bound the modeled one does.
  Table t5d("T5d  message-level protocol (unit heights, power classes, "
            "6 seeds)");
  t5d.set_header({"spread", "seed", "ratio", "derived-bound", "wire-rounds",
                  "wire-bytes", "sched_ok"});
  for (double spread : {2.0, 4.0}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Problem p = make(seed * 7 + static_cast<std::uint64_t>(spread),
                             spread, HeightLaw::kUnit, /*large=*/false,
                             CapacityLaw::kPowerClasses);
      ProtocolOptions options;
      options.epsilon = eps;
      options.seed = seed;
      const ProtocolDistResult w = run_nonuniform_protocol(p, options);
      const double w_ratio =
          ratio(opt_cache.at(seed * 7 + static_cast<std::uint64_t>(spread)),
                checked_profit(p, w.run.solution));
      t5d.add_row({fmt(spread, 0), std::to_string(seed), fmt(w_ratio, 3),
                   fmt(w.ratio_bound, 1), std::to_string(w.run.rounds),
                   std::to_string(w.run.bytes),
                   w.run.schedule_ok ? "1" : "0"});
      JsonRecord row{{"workload", 3.0},
                     {"spread", spread},
                     {"seed", static_cast<double>(seed)},
                     {"protocol_ratio", w_ratio},
                     {"derived_bound", w.ratio_bound}};
      append_protocol_fields(row, w.run);
      runs.push_back(std::move(row));
    }
  }
  t5d.print(std::cout);
  emit_json("t5_nonuniform", runs);

  std::printf("\nexpected shape: measured ratios stay low and under the "
              "derived bound at every spread; the naive arm's certificate "
              "degrades as spread grows while the capacity-aware one stays "
              "flat; spread 1 reproduces the uniform paper setting.\n");
  return 0;
}
