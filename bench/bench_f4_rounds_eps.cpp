// F4 — the remaining round-formula factors: stages per epoch is
// ceil(log_xi eps) = O(log(1/eps)) for unit heights (Thm 5.3) and
// O((1/h_min) log(1/eps)) for the narrow rule (Thm 6.3 / Lemma 6.2).
#include <cmath>

#include "bench_util.hpp"
#include "dist/scheduler.hpp"
#include "workload/scenario.hpp"

using namespace treesched;
using namespace treesched::benchutil;

int main() {
  print_claim("F4  stages vs eps and h_min (Thm 5.3 / 6.3)",
              "stages/epoch = ceil(log_xi eps); xi = 14/15 (unit, Delta=6) "
              "-> ~log(1/eps)/log(15/14); narrow xi = C/(C+h_min) -> "
              "~ (C/h_min) ln(1/eps)");

  Table eps_table("F4a  unit heights: eps sweep (n=128, m=96)");
  eps_table.set_header({"eps", "Delta(obs)", "xi(run)", "stages/epoch",
                        "budget@Delta=6", "steps", "comm-rounds",
                        "lambda_obs"});
  for (double eps : {0.4, 0.2, 0.1, 0.05, 0.025}) {
    TreeScenarioSpec spec;
    spec.num_vertices = 128;
    spec.num_networks = 2;
    spec.demands.num_demands = 96;
    spec.demands.profit_max = 16.0;
    spec.seed = 5;
    const Problem p = make_tree_problem(spec);
    DistOptions options;
    options.epsilon = eps;
    const DistResult r = solve_tree_unit_distributed(p, options);
    checked_profit(p, r.solution);
    // Worst-case stage budget at the theorem's Delta = 6 (xi = 14/15);
    // the run derives xi from the *observed* Delta, which can be smaller,
    // so the run may use fewer stages — never more.
    const int budget = static_cast<int>(
        std::ceil(std::log(eps) / std::log(14.0 / 15.0)));
    if (r.stats.stages_per_epoch > budget ||
        r.stats.lambda_observed < 1.0 - eps - 1e-6) {
      std::fprintf(stderr, "BENCH ERROR: stage schedule claim violated\n");
      return 1;
    }
    eps_table.add_row({fmt(eps, 3), std::to_string(r.stats.delta),
                       fmt(r.stats.xi, 3),
                       std::to_string(r.stats.stages_per_epoch),
                       std::to_string(budget), std::to_string(r.stats.steps),
                       std::to_string(r.stats.comm_rounds),
                       fmt(r.stats.lambda_observed, 3)});
  }
  eps_table.print(std::cout);

  Table hmin_table("F4b  narrow heights: h_min sweep (eps = 0.1)");
  hmin_table.set_header({"h_min", "stages/epoch", "steps", "comm-rounds",
                         "stages*h_min"});
  for (double hmin : {0.5, 0.25, 0.125, 0.0625}) {
    TreeScenarioSpec spec;
    spec.num_vertices = 96;
    spec.num_networks = 2;
    spec.demands.num_demands = 72;
    spec.demands.heights = HeightLaw::kNarrowOnly;
    spec.demands.height_min = hmin * 0.999;  // ensure some demand near hmin
    spec.demands.profit_max = 16.0;
    spec.seed = 9;
    const Problem p = make_tree_problem(spec);
    DistOptions options;
    options.epsilon = 0.1;
    const DistResult r = solve_tree_arbitrary_distributed(p, options);
    checked_profit(p, r.solution);
    hmin_table.add_row(
        {fmt(hmin, 4), std::to_string(r.stats.stages_per_epoch),
         std::to_string(r.stats.steps), std::to_string(r.stats.comm_rounds),
         fmt(r.stats.stages_per_epoch * hmin, 1)});
  }
  hmin_table.print(std::cout);

  std::printf("\nexpected shape: F4a stages grow with log(1/eps), stay "
              "under the Delta=6 budget, and lambda_obs >= 1-eps; F4b "
              "stages*h_min roughly constant (the 1/h_min factor of Thm "
              "6.3).\n");
  return 0;
}
