#include "framework/certify.hpp"

#include <gtest/gtest.h>

namespace treesched {
namespace {

Problem tiny_problem() {
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(4));
  Problem p(4, std::move(networks));
  p.add_demand(0, 2, 10.0);  // instance 0: edges {0,1}
  p.add_demand(1, 3, 4.0);   // instance 1: edges {1,2}
  p.finalize();
  return p;
}

TEST(Certify, ObservedLambdaIsTheMinimumSatisfaction) {
  const Problem p = tiny_problem();
  DualState dual(p);
  const RaiseRule rule(RaiseRuleKind::kUnit, p);
  std::vector<char> active(2, 1);

  EXPECT_DOUBLE_EQ(observed_lambda(p, dual, rule, active), 0.0);
  dual.raise_alpha(0, 5.0);   // instance 0: LHS 5/10 = 0.5
  dual.raise_beta(2, 1.0);    // instance 1: LHS 1/4  = 0.25
  EXPECT_DOUBLE_EQ(observed_lambda(p, dual, rule, active), 0.25);
  dual.raise_beta(1, 3.0);    // both instances use edge 1
  // instance 0: (5+3)/10 = 0.8; instance 1: (1+3)/4 = 1.0.
  EXPECT_DOUBLE_EQ(observed_lambda(p, dual, rule, active), 0.8);
}

TEST(Certify, MaskRestrictsTheMinimum) {
  const Problem p = tiny_problem();
  DualState dual(p);
  const RaiseRule rule(RaiseRuleKind::kUnit, p);
  dual.raise_alpha(1, 4.0);  // instance 1 fully satisfied, instance 0 at 0
  std::vector<char> only_second{0, 1};
  EXPECT_DOUBLE_EQ(observed_lambda(p, dual, rule, only_second), 1.0);
  std::vector<char> none{0, 0};
  EXPECT_DOUBLE_EQ(observed_lambda(p, dual, rule, none), 1.0);  // vacuous
}

TEST(Certify, AllSatisfiedThreshold) {
  const Problem p = tiny_problem();
  DualState dual(p);
  const RaiseRule rule(RaiseRuleKind::kUnit, p);
  std::vector<char> active(2, 1);
  dual.raise_alpha(0, 9.0);
  dual.raise_alpha(1, 3.9);
  EXPECT_TRUE(all_satisfied(p, dual, rule, active, 0.9));
  EXPECT_FALSE(all_satisfied(p, dual, rule, active, 0.99));
}

TEST(Certify, NarrowRuleUsesHeightCoefficient) {
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(3));
  Problem p(3, std::move(networks));
  p.add_demand(0, 2, 8.0, 0.25);
  p.finalize();
  DualState dual(p);
  const RaiseRule rule(RaiseRuleKind::kNarrow, p);
  std::vector<char> active(1, 1);
  dual.raise_beta(0, 8.0);
  dual.raise_beta(1, 8.0);
  // LHS = h * beta_sum = 0.25 * 16 = 4 -> lambda = 0.5.
  EXPECT_DOUBLE_EQ(observed_lambda(p, dual, rule, active), 0.5);
}

}  // namespace
}  // namespace treesched
