#include "lp/relaxation.hpp"

#include <gtest/gtest.h>

#include "dist/scheduler.hpp"
#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::exact_opt;
using testutil::small_line_problem;
using testutil::small_tree_problem;

TEST(Simplex, TextbookInstance) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  36 at (2, 6).
  const LpResult lp = solve_lp_max(
      {{1, 0}, {0, 2}, {3, 2}}, {4, 12, 18}, {3, 5});
  ASSERT_EQ(lp.status, LpResult::Status::kOptimal);
  EXPECT_NEAR(lp.value, 36.0, 1e-9);
  EXPECT_NEAR(lp.x[0], 2.0, 1e-9);
  EXPECT_NEAR(lp.x[1], 6.0, 1e-9);
}

TEST(Simplex, DetectsUnbounded) {
  // max x + y  s.t. x - y <= 1: y can grow without bound.
  const LpResult lp = solve_lp_max({{1, -1}}, {1}, {1, 1});
  EXPECT_EQ(lp.status, LpResult::Status::kUnbounded);
}

TEST(Simplex, DegenerateInstanceTerminates) {
  // Classic degenerate LP (multiple constraints tight at the origin);
  // Bland's rule must still terminate at the optimum.
  const LpResult lp = solve_lp_max(
      {{0.5, -5.5, -2.5, 9}, {0.5, -1.5, -0.5, 1}, {1, 0, 0, 0}},
      {0, 0, 1}, {10, -57, -9, -24});
  ASSERT_EQ(lp.status, LpResult::Status::kOptimal);
  EXPECT_NEAR(lp.value, 1.0, 1e-9);
}

TEST(Simplex, ZeroObjective) {
  const LpResult lp = solve_lp_max({{1.0}}, {5.0}, {0.0});
  ASSERT_EQ(lp.status, LpResult::Status::kOptimal);
  EXPECT_NEAR(lp.value, 0.0, 1e-12);
}

TEST(Relaxation, FractionalOptimumOnSharedEdge) {
  // Three unit demands over one shared edge with capacity 1: the LP packs
  // x = (1,1,1)/... no — paths share one edge, so sum x <= 1 and the LP
  // picks the most profitable demand fully: LP == ILP == 5 here.
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(3));
  Problem p(3, std::move(networks));
  p.add_demand(0, 2, 5.0);
  p.add_demand(0, 2, 4.0);
  p.add_demand(0, 2, 3.0);
  p.finalize();
  const LpRelaxationResult lp = lp_optimum(p);
  EXPECT_NEAR(lp.value, 5.0, 1e-9);
}

TEST(Relaxation, HeightsPackFractionally) {
  // Two demands of height 0.6 on one edge: integrally only one fits, but
  // the LP serves 1 + 2/3 of them: value 5 + (2/3)*5 = 25/3.
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(2));
  Problem p(2, std::move(networks));
  p.add_demand(0, 1, 5.0, 0.6);
  p.add_demand(0, 1, 5.0, 0.6);
  p.finalize();
  const LpRelaxationResult lp = lp_optimum(p);
  EXPECT_NEAR(lp.value, 5.0 + 5.0 * (2.0 / 3.0), 1e-9);
}

TEST(Relaxation, SandwichedBetweenOptAndDualBound) {
  // The verification triangle: OPT <= LP <= certified dual bound.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = small_tree_problem(seed + 800, 18, 2, 8);
    const Profit opt = exact_opt(p);
    const LpRelaxationResult lp = lp_optimum(p);
    EXPECT_GE(lp.value, opt - 1e-6) << "seed " << seed;

    DistOptions options;
    options.seed = seed;
    const DistResult run = solve_tree_unit_distributed(p, options);
    EXPECT_GE(run.stats.dual_upper_bound, lp.value - 1e-6)
        << "scaled dual must be feasible for the same LP, seed " << seed;
  }
}

TEST(Relaxation, SandwichOnLinesWithHeights) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Problem p = small_line_problem(seed + 20, 20, 2, 7,
                                         HeightLaw::kBimodal, 1.6);
    const Profit opt = exact_opt(p);
    const LpRelaxationResult lp = lp_optimum(p);
    EXPECT_GE(lp.value, opt - 1e-6) << "seed " << seed;
    EXPECT_LE(lp.value, p.total_profit() + 1e-6);
  }
}

TEST(Relaxation, CapacitatedEdgesRelaxCorrectly) {
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(4));
  Problem p(4, std::move(networks));
  p.set_uniform_capacity(2.0);
  p.add_demand(0, 3, 4.0);
  p.add_demand(0, 3, 3.0);
  p.add_demand(0, 3, 2.0);
  p.finalize();
  // Capacity 2 admits the two best demands fully.
  const LpRelaxationResult lp = lp_optimum(p);
  EXPECT_NEAR(lp.value, 7.0, 1e-9);
}

TEST(Relaxation, SolutionWithinBoxBounds) {
  const Problem p = small_tree_problem(33, 18, 2, 8);
  const LpRelaxationResult lp = lp_optimum(p);
  ASSERT_EQ(lp.x.size(), static_cast<std::size_t>(p.num_instances()));
  for (double v : lp.x) {
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace treesched
