#include "framework/two_phase.hpp"

#include <gtest/gtest.h>

#include "decomp/layered.hpp"
#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::require_feasible;
using testutil::small_tree_problem;

TEST(GreedyMis, ProducesMaximalIndependentSets) {
  const Problem p = small_tree_problem(3, 30, 2, 15);
  GreedyMis mis(p);
  std::vector<InstanceId> all(static_cast<std::size_t>(p.num_instances()));
  for (InstanceId i = 0; i < p.num_instances(); ++i)
    all[static_cast<std::size_t>(i)] = i;
  const MisResult result = mis.run(all);
  ASSERT_FALSE(result.selected.empty());
  // Independence.
  for (std::size_t a = 0; a < result.selected.size(); ++a)
    for (std::size_t b = a + 1; b < result.selected.size(); ++b)
      EXPECT_FALSE(p.conflicting(result.selected[a], result.selected[b]));
  // Maximality.
  for (InstanceId i : all) {
    bool in = false, blocked = false;
    for (InstanceId s : result.selected) {
      in |= (s == i);
      blocked |= p.conflicting(i, s);
    }
    EXPECT_TRUE(in || blocked) << "instance " << i << " not dominated";
  }
}

TEST(TwoPhase, ForcedChoiceTinyInstance) {
  // Two unit demands over one shared edge: only the more profitable one
  // can win; a third disjoint demand must always be schedulable.
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(7));
  Problem p(7, std::move(networks));
  p.add_demand(0, 3, 1.0);   // slots 0-2
  p.add_demand(1, 4, 10.0);  // slots 1-3 (conflicts with the first)
  p.add_demand(4, 6, 2.0);   // slots 4-5 (free)
  p.finalize();
  const LayeredPlan plan = build_line_layered_plan(p);
  SolverConfig config;
  config.epsilon = 0.05;
  const SolveResult run = solve_with_plan(p, plan, config);
  EXPECT_NEAR(run.stats.profit, 12.0, 1e-9);  // must take demands 1 and 2
  require_feasible(p, run.solution);
}

TEST(TwoPhase, OutputAlwaysFeasible) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = small_tree_problem(seed, 32, 2, 20,
                                         HeightLaw::kUniformRange);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    SolverConfig config;
    config.rule = RaiseRuleKind::kNarrow;
    const SolveResult run = solve_with_plan(p, plan, config);
    require_feasible(p, run.solution);
  }
}

TEST(TwoPhase, MultiStageReachesOneMinusEps) {
  const Problem p = small_tree_problem(4, 40, 2, 25);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  SolverConfig config;
  config.epsilon = 0.2;
  const SolveResult run = solve_with_plan(p, plan, config);
  // Section 5: at the end of phase 1 every instance is (1-eps)-satisfied.
  EXPECT_GE(run.stats.lambda_observed, 1.0 - 0.2 - 1e-6);
  // xi is derived from the *observed* Delta (<= 6 for the ideal plan;
  // small instances often realize a smaller critical-set size).
  EXPECT_LE(run.stats.delta, 6);
  EXPECT_DOUBLE_EQ(run.stats.xi, RaiseRule::default_xi(RaiseRuleKind::kUnit,
                                                       run.stats.delta, 1.0));
  EXPECT_TRUE(run.stats.interference_ok);
}

TEST(TwoPhase, SingleStagePsReachesOneFifth) {
  const Problem p = small_tree_problem(5, 40, 2, 25);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  SolverConfig config;
  config.epsilon = 0.1;
  config.stage_mode = StageMode::kSingleStagePS;
  const SolveResult run = solve_with_plan(p, plan, config);
  EXPECT_GE(run.stats.lambda_observed, 1.0 / 5.1 - 1e-6);
  EXPECT_EQ(run.stats.stages_per_epoch, 1);
}

TEST(TwoPhase, ExactModeSatisfiesEverythingTightly) {
  const Problem p = small_tree_problem(6, 30, 2, 18);
  const LayeredPlan plan = build_tree_layered_plan(
      p, DecompKind::kRootFixing, /*mu_wings_only=*/true);
  SolverConfig config;
  config.stage_mode = StageMode::kExact;
  const SolveResult run = solve_with_plan(p, plan, config);
  EXPECT_GE(run.stats.lambda_observed, 1.0 - 1e-6);
  // Exact mode: dual upper bound equals the raw dual objective.
  EXPECT_NEAR(run.stats.dual_upper_bound, run.stats.dual_objective,
              1e-6 * run.stats.dual_objective);
}

TEST(TwoPhase, InterferenceCheckerRunsClean) {
  const Problem p = small_tree_problem(7, 24, 2, 14);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  SolverConfig config;
  config.check_interference = true;
  const SolveResult run = solve_with_plan(p, plan, config);
  EXPECT_TRUE(run.stats.interference_ok);
}

TEST(TwoPhase, RestrictToSubset) {
  const Problem p = small_tree_problem(8, 24, 2, 14);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  std::vector<InstanceId> evens;
  for (InstanceId i = 0; i < p.num_instances(); i += 2) evens.push_back(i);
  TwoPhaseEngine engine(p, plan, SolverConfig{});
  engine.restrict_to(evens);
  const SolveResult run = engine.run();
  require_feasible(p, run.solution);
  for (InstanceId i : run.solution.selected) EXPECT_EQ(i % 2, 0);
}

TEST(TwoPhase, EmptyRestrictionYieldsEmptySolution) {
  const Problem p = small_tree_problem(9, 20, 2, 10);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  TwoPhaseEngine engine(p, plan, SolverConfig{});
  engine.restrict_to({});
  const SolveResult run = engine.run();
  EXPECT_TRUE(run.solution.selected.empty());
  EXPECT_EQ(run.stats.lambda_observed, 1.0);
}

TEST(TwoPhase, HeightSplitCombinationIsFeasibleAndNoWorse) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Problem p = small_tree_problem(seed + 100, 32, 2, 20,
                                         HeightLaw::kBimodal);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    SolverConfig config;
    config.rule = RaiseRuleKind::kNarrow;
    const SolveResult combined = solve_height_split(p, plan, config);
    require_feasible(p, combined.solution);
    // The per-network better-of cannot fall below either sub-run's profit
    // restricted to... at minimum it's at least max of the parts' total
    // profits divided across networks; we check the cheap invariant:
    // profit > 0 whenever some demand fits alone.
    EXPECT_GT(combined.stats.profit, 0.0);
  }
}

TEST(TwoPhase, DualBoundDominatesOwnProfit) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = small_tree_problem(seed + 40, 28, 2, 16);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    const SolveResult run = solve_with_plan(p, plan, SolverConfig{});
    EXPECT_GE(run.stats.dual_upper_bound, run.stats.profit - 1e-6);
  }
}

TEST(TwoPhase, StatsMergeIgnoresUnsetLambda) {
  // Regression: an unset (0.0) lambda on *either* side must not clobber
  // a real value through std::min — a merged lambda of 0.0 poisons every
  // dual_upper_bound derived from it.
  SolveStats real, unset;
  real.lambda_observed = 0.9;
  real.merge(unset);
  EXPECT_DOUBLE_EQ(real.lambda_observed, 0.9);

  SolveStats fresh;
  fresh.merge(real);
  EXPECT_DOUBLE_EQ(fresh.lambda_observed, 0.9);

  SolveStats both_unset;
  both_unset.merge(SolveStats{});
  EXPECT_DOUBLE_EQ(both_unset.lambda_observed, 0.0);
}

TEST(TwoPhase, LockstepBudgetSurvivesDegenerateProfits) {
  // Equal profits: the log term vanishes, budget = 1 + slack.
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(6));
  Problem equal(6, std::move(networks));
  equal.add_demand(0, 2, 5.0);
  equal.add_demand(3, 5, 5.0);
  equal.finalize();
  EXPECT_EQ(lockstep_step_budget(equal, 2), 3);
  // Negative slack must clamp to a usable budget, not zero or less.
  EXPECT_EQ(lockstep_step_budget(equal, -10), 1);

  // An astronomically spread (overflowing) profit ratio must yield a
  // finite budget — casting inf/NaN to int is UB.
  std::vector<TreeNetwork> networks2;
  networks2.push_back(TreeNetwork::line(6));
  Problem spread(6, std::move(networks2));
  spread.add_demand(0, 2, 1e-300);
  spread.add_demand(3, 5, 1e300);
  spread.finalize();
  const int budget = lockstep_step_budget(spread, 2);
  EXPECT_GE(budget, 1);
  EXPECT_LE(budget, 1 + 2 + 62);
}

// An oracle that always comes back empty-handed, as a budget-limited
// randomized MIS legitimately can (with vanishing probability).
class FailingMis : public MisOracle {
 public:
  MisResult run(std::span<const InstanceId>) override {
    MisResult result;
    result.rounds = 2;
    return result;
  }
};

TEST(TwoPhase, EmptyMisResultDoesNotAbort) {
  const Problem p = small_tree_problem(21, 20, 2, 10);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  FailingMis oracle;
  for (const bool lockstep : {false, true}) {
    SolverConfig config;
    config.lockstep = lockstep;
    const SolveResult run = solve_with_plan(p, plan, config, &oracle);
    EXPECT_TRUE(run.solution.selected.empty());
    EXPECT_FALSE(run.stats.mis_ok);
    EXPECT_FALSE(run.stats.lockstep_ok);
    EXPECT_EQ(run.stats.raises, 0);
    EXPECT_GT(run.stats.steps, 0);  // idle steps are still counted
    // The degrade must be *counted*, not just flagged: every idle step
    // contributes, so the CLI/bench warnings can say how bad it was.
    EXPECT_GT(run.stats.mis_failed_steps, 0);
    EXPECT_LE(run.stats.mis_failed_steps,
              static_cast<std::int64_t>(run.stats.steps));
  }
}

TEST(TwoPhase, StatsMergeTakesWorstLambdaAndSums) {
  SolveStats a, b;
  a.steps = 3;
  a.lambda_observed = 0.9;
  a.dual_upper_bound = 10.0;
  a.delta = 6;
  b.steps = 4;
  b.lambda_observed = 0.8;
  b.dual_upper_bound = 5.0;
  b.delta = 3;
  a.merge(b);
  EXPECT_EQ(a.steps, 7);
  EXPECT_DOUBLE_EQ(a.lambda_observed, 0.8);
  EXPECT_DOUBLE_EQ(a.dual_upper_bound, 15.0);
  EXPECT_EQ(a.delta, 6);
}

TEST(TwoPhase, StatsMergeCoversEveryField) {
  // Guard against the PR-2 bug class: a field added to SolveStats but
  // forgotten in merge() silently drops half of a combined run's stats.
  // The static_assert trips whenever the struct grows or shrinks; when
  // it fires, extend merge(), then teach THIS test the new field's merge
  // semantics, then update the expected size.
  static_assert(sizeof(SolveStats) == 160,
                "SolveStats changed size: update SolveStats::merge and "
                "TwoPhase.StatsMergeCoversEveryField");

  SolveStats a, b;
  a.epochs = 1;
  b.epochs = 2;
  a.stages = 3;
  b.stages = 4;
  a.steps = 5;
  b.steps = 6;
  a.max_steps_in_stage = 7;
  b.max_steps_in_stage = 8;
  a.raises = 9;
  b.raises = 10;
  a.mis_rounds = 11;
  b.mis_rounds = 12;
  a.comm_rounds = 13;
  b.comm_rounds = 14;
  a.messages = 15;
  b.messages = 16;
  a.message_bytes = 17;
  b.message_bytes = 18;
  a.dual_objective = 19.0;
  b.dual_objective = 20.0;
  a.lambda_observed = 0.9;
  b.lambda_observed = 0.8;
  a.dual_upper_bound = 21.0;
  b.dual_upper_bound = 22.0;
  a.delta = 23;
  b.delta = 24;
  a.xi = 25.0;
  b.xi = 26.0;
  a.stages_per_epoch = 27;
  b.stages_per_epoch = 28;
  a.profit = 29.0;
  b.profit = 30.0;
  a.interference_ok = true;
  b.interference_ok = false;
  a.lockstep_ok = false;
  b.lockstep_ok = true;
  a.mis_ok = true;
  b.mis_ok = false;
  a.mis_failed_steps = 31;
  b.mis_failed_steps = 32;
  a.mis_retries = 39;
  b.mis_retries = 40;
  a.epoch_setup_ns = 33;
  b.epoch_setup_ns = 34;
  a.forest_build_ns = 35;
  b.forest_build_ns = 36;
  a.merge_ns = 37;
  b.merge_ns = 38;

  a.merge(b);
  EXPECT_EQ(a.epochs, 3);
  EXPECT_EQ(a.stages, 7);
  EXPECT_EQ(a.steps, 11);
  EXPECT_EQ(a.max_steps_in_stage, 8);
  EXPECT_EQ(a.raises, 19);
  EXPECT_EQ(a.mis_rounds, 23);
  EXPECT_EQ(a.comm_rounds, 27);
  EXPECT_EQ(a.messages, 31);
  EXPECT_EQ(a.message_bytes, 35);
  EXPECT_DOUBLE_EQ(a.dual_objective, 39.0);
  EXPECT_DOUBLE_EQ(a.lambda_observed, 0.8);  // worst (min of set values)
  EXPECT_DOUBLE_EQ(a.dual_upper_bound, 43.0);
  EXPECT_EQ(a.delta, 24);
  EXPECT_DOUBLE_EQ(a.xi, 26.0);
  EXPECT_EQ(a.stages_per_epoch, 28);
  // profit is deliberately NOT merged: it is recomputed from the
  // combined solution, never summed (the runs share instances).
  EXPECT_DOUBLE_EQ(a.profit, 29.0);
  EXPECT_FALSE(a.interference_ok);  // AND
  EXPECT_FALSE(a.lockstep_ok);      // AND
  EXPECT_FALSE(a.mis_ok);           // AND
  EXPECT_EQ(a.mis_failed_steps, 63);
  EXPECT_EQ(a.mis_retries, 79);
  EXPECT_EQ(a.epoch_setup_ns, 67);
  EXPECT_EQ(a.forest_build_ns, 71);
  EXPECT_EQ(a.merge_ns, 75);
}

}  // namespace
}  // namespace treesched
