// Lockstep schedule (paper, Section 5 "Distributed Implementation"):
// processors execute a *fixed* number of steps per stage derived from
// log2(pmax/pmin), because global emptiness of U is not observable.
// Lemma 5.1 predicts the budget suffices; these tests verify that the
// lockstep run still reaches lambda = 1-eps, stays feasible and within
// bound, and that its round accounting includes the idle steps.
#include <gtest/gtest.h>

#include <cmath>

#include "decomp/layered.hpp"
#include "dist/luby_mis.hpp"
#include "framework/two_phase.hpp"
#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::exact_opt;
using testutil::require_feasible;
using testutil::small_tree_problem;

TEST(Lockstep, FixedBudgetStillReachesTargetSlackness) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = small_tree_problem(seed + 500, 28, 2, 14);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    SolverConfig config;
    config.epsilon = 0.1;
    config.lockstep = true;
    LubyMis oracle(p, seed);
    const SolveResult run = solve_with_plan(p, plan, config, &oracle);
    EXPECT_TRUE(run.stats.lockstep_ok)
        << "Lemma 5.1 budget insufficient at seed " << seed;
    EXPECT_GE(run.stats.lambda_observed, 0.9 - 1e-6);
    require_feasible(p, run.solution);
  }
}

TEST(Lockstep, WithinBoundAgainstExact) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Problem p = small_tree_problem(seed + 600, 20, 2, 9);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    SolverConfig config;
    config.epsilon = 0.1;
    config.lockstep = true;
    const SolveResult run = solve_with_plan(p, plan, config);
    const Profit profit = require_feasible(p, run.solution);
    const Profit opt = exact_opt(p);
    const double bound = (run.stats.delta + 1.0) / 0.9;
    EXPECT_GE(profit * bound, opt - 1e-6) << "seed " << seed;
  }
}

TEST(Lockstep, EveryStageRunsTheFullBudget) {
  const Problem p = small_tree_problem(42, 28, 2, 14);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  SolverConfig config;
  config.epsilon = 0.2;
  config.lockstep = true;
  config.lockstep_slack = 1;
  const SolveResult run = solve_with_plan(p, plan, config);
  const int budget =
      2 + static_cast<int>(std::ceil(
              std::log2(p.max_profit() / p.min_profit())));
  // Non-empty epochs run stages of exactly `budget` steps each.
  EXPECT_EQ(run.stats.steps,
            run.stats.epochs * run.stats.stages_per_epoch * budget);
  EXPECT_EQ(run.stats.max_steps_in_stage, budget);
}

TEST(Lockstep, CostsMoreRoundsThanAdaptive) {
  const Problem p = small_tree_problem(43, 28, 2, 14);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  SolverConfig adaptive, lockstep;
  adaptive.epsilon = lockstep.epsilon = 0.1;
  lockstep.lockstep = true;
  const SolveResult a = solve_with_plan(p, plan, adaptive);
  const SolveResult b = solve_with_plan(p, plan, lockstep);
  EXPECT_GE(b.stats.comm_rounds, a.stats.comm_rounds);
  // Same final slackness either way.
  EXPECT_GE(b.stats.lambda_observed, 0.9 - 1e-6);
}

}  // namespace
}  // namespace treesched
