#include "seq/sequential.hpp"

#include <gtest/gtest.h>

#include "exact/line_dp.hpp"
#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::exact_opt;
using testutil::require_feasible;
using testutil::small_line_problem;
using testutil::small_tree_problem;

TEST(SequentialTree, UnitHeightWithinBound) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Problem p = small_tree_problem(seed, 20, 2, 9);
    const SeqResult run = solve_tree_unit_sequential(p);
    const Profit profit = require_feasible(p, run.solution);
    const Profit opt = exact_opt(p);
    EXPECT_DOUBLE_EQ(run.ratio_bound, 3.0);  // Appendix A, multi-network
    EXPECT_GE(profit * run.ratio_bound, opt - 1e-6)
        << "seed " << seed << ": " << profit << " vs OPT " << opt;
    EXPECT_GE(run.stats.lambda_observed, 1.0 - 1e-6);
  }
}

TEST(SequentialTree, SingleNetworkGetsTwoApprox) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Problem p = small_tree_problem(seed + 50, 20, 1, 9);
    const SeqResult run = solve_tree_unit_sequential(p);
    EXPECT_DOUBLE_EQ(run.ratio_bound, 2.0);  // alpha raise skipped
    const Profit profit = require_feasible(p, run.solution);
    const Profit opt = exact_opt(p);
    EXPECT_GE(profit * 2.0, opt - 1e-6) << "seed " << seed;
  }
}

TEST(SequentialTree, ArbitraryHeightsFeasibleAndBounded) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = small_tree_problem(seed + 70, 20, 2, 9,
                                         HeightLaw::kBimodal);
    const SeqResult run = solve_tree_arbitrary_sequential(p);
    const Profit profit = require_feasible(p, run.solution);
    const Profit opt = exact_opt(p);
    EXPECT_GE(profit * run.ratio_bound, opt - 1e-6) << "seed " << seed;
  }
}

TEST(SequentialLine, UnitHeightIsTwoApprox) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Problem p = small_line_problem(seed, 24, 2, 9, HeightLaw::kUnit,
                                         1.7);
    const SeqResult run = solve_line_unit_sequential(p);
    EXPECT_DOUBLE_EQ(run.ratio_bound, 2.0);
    const Profit profit = require_feasible(p, run.solution);
    const Profit opt = exact_opt(p);
    EXPECT_GE(profit * 2.0, opt - 1e-6) << "seed " << seed;
  }
}

TEST(SequentialLine, UnitAgainstDpReference) {
  // Single resource, fixed placements: compare directly to the DP optimum.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = small_line_problem(seed + 30, 30, 1, 12,
                                         HeightLaw::kUnit, 1.0);
    ASSERT_TRUE(line_dp_applicable(p));
    const Profit opt = solve_line_dp(p).profit;
    const SeqResult run = solve_line_unit_sequential(p);
    const Profit profit = require_feasible(p, run.solution);
    EXPECT_GE(profit * 2.0, opt - 1e-6) << "seed " << seed;
    EXPECT_LE(profit, opt + 1e-6);
  }
}

TEST(SequentialLine, ArbitraryHeightsIsFiveApprox) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = small_line_problem(seed + 60, 24, 2, 9,
                                         HeightLaw::kBimodal, 1.5);
    const SeqResult run = solve_line_arbitrary_sequential(p);
    EXPECT_DOUBLE_EQ(run.ratio_bound, 5.0);  // Bar-Noy's classical ratio
    const Profit profit = require_feasible(p, run.solution);
    const Profit opt = exact_opt(p);
    EXPECT_GE(profit * 5.0, opt - 1e-6) << "seed " << seed;
  }
}

TEST(SequentialTree, HandlesSingleDemand) {
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(4));
  Problem p(4, std::move(networks));
  p.add_demand(0, 3, 7.0);
  p.finalize();
  const SeqResult run = solve_tree_unit_sequential(p);
  EXPECT_NEAR(run.profit, 7.0, 1e-9);
}

}  // namespace
}  // namespace treesched
