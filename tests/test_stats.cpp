#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace treesched {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i * i - 3.0 * i;
    all.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Sample, Quantiles) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Regression, ExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 7.0);
  }
  EXPECT_NEAR(regression_slope(x, y), 3.0, 1e-9);
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-9);
}

TEST(Regression, DegenerateInputs) {
  EXPECT_EQ(regression_slope({1.0}, {2.0}), 0.0);
  EXPECT_EQ(correlation({1.0, 1.0}, {2.0, 3.0}), 0.0);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Table, PrintsAlignedRows) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch sw;
  double sink = 0;
  for (int i = 0; i < 10000; ++i) sink += i;
  EXPECT_GE(sw.elapsed_s(), 0.0);
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace treesched
