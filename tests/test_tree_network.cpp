#include "graph/tree_network.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "workload/tree_gen.hpp"

namespace treesched {
namespace {

// A fixed 14-vertex tree in the spirit of the paper's Figure 6, used for
// deterministic bending-point checks.
TreeNetwork figure6_tree() {
  return TreeNetwork(
      14, {{0, 1}, {1, 3}, {1, 4}, {0, 2}, {2, 5}, {5, 6}, {4, 7},
           {7, 12}, {4, 8}, {8, 11}, {8, 9}, {9, 10}, {9, 13}});
}

TEST(TreeNetwork, LineFactory) {
  const TreeNetwork line = TreeNetwork::line(5);
  EXPECT_EQ(line.num_vertices(), 5);
  EXPECT_EQ(line.num_edges(), 4);
  for (EdgeId e = 0; e < 4; ++e) {
    EXPECT_EQ(line.edge_u(e), e);
    EXPECT_EQ(line.edge_v(e), e + 1);
  }
  EXPECT_EQ(line.dist(0, 4), 4);
  EXPECT_EQ(line.lca(0, 4), 0);
}

TEST(TreeNetwork, RejectsWrongEdgeCount) {
  EXPECT_THROW(TreeNetwork(3, {{0, 1}}), std::invalid_argument);
  EXPECT_THROW(TreeNetwork(2, {{0, 1}, {0, 1}}), std::invalid_argument);
}

TEST(TreeNetwork, RejectsDisconnected) {
  // 4 vertices, 3 edges, but with a cycle and an isolated vertex.
  EXPECT_THROW(TreeNetwork(4, {{0, 1}, {1, 2}, {2, 0}}),
               std::invalid_argument);
}

TEST(TreeNetwork, RejectsSelfLoopAndOutOfRange) {
  EXPECT_THROW(TreeNetwork(2, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(TreeNetwork(2, {{0, 5}}), std::invalid_argument);
}

TEST(TreeNetwork, LcaAndDistOnKnownTree) {
  // Tree: 0 has children 1 and 2; 1 has children 3 and 4; 2 has child 5.
  const TreeNetwork t(6, {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}});
  EXPECT_EQ(t.lca(3, 4), 1);
  EXPECT_EQ(t.lca(3, 5), 0);
  EXPECT_EQ(t.lca(1, 3), 1);
  EXPECT_EQ(t.dist(3, 4), 2);
  EXPECT_EQ(t.dist(3, 5), 4);
  EXPECT_EQ(t.dist(0, 0), 0);
  EXPECT_TRUE(t.on_path(1, 3, 4));
  EXPECT_TRUE(t.on_path(0, 3, 5));
  EXPECT_FALSE(t.on_path(2, 3, 4));
}

TEST(TreeNetwork, PathEdgesMatchesDistAndEndpoints) {
  const TreeNetwork t(6, {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}});
  const auto edges = t.path_edges(3, 5);
  EXPECT_EQ(static_cast<int>(edges.size()), t.dist(3, 5));
  const auto verts = t.path_vertices(3, 5);
  ASSERT_EQ(verts.size(), edges.size() + 1);
  EXPECT_EQ(verts.front(), 3);
  EXPECT_EQ(verts.back(), 5);
  // Consecutive path vertices must be joined by the listed edges.
  for (std::size_t k = 0; k + 1 < verts.size(); ++k) {
    EXPECT_EQ(t.edge_between(verts[k], verts[k + 1]), edges[k]);
  }
}

TEST(TreeNetwork, EdgeBetween) {
  const TreeNetwork t(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(t.edge_between(0, 1), 0);
  EXPECT_EQ(t.edge_between(1, 0), 0);
  EXPECT_EQ(t.edge_between(0, 2), kNoEdge);
}

TEST(TreeNetwork, MedianDefinition) {
  const TreeNetwork t(6, {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}});
  // Median must lie on all three pairwise paths.
  for (VertexId a = 0; a < 6; ++a) {
    for (VertexId b = 0; b < 6; ++b) {
      for (VertexId c = 0; c < 6; ++c) {
        const VertexId m = t.median(a, b, c);
        EXPECT_TRUE(t.on_path(m, a, b));
        EXPECT_TRUE(t.on_path(m, b, c));
        EXPECT_TRUE(t.on_path(m, a, c));
      }
    }
  }
}

TEST(TreeNetwork, Figure6PaperQueries) {
  // Paper Figure 6 (0-based): the demand <4,13> has bending point 2 w.r.t.
  // node 3 — we spot-check our own fixed tree's invariants instead of the
  // exact drawing: the projection of any vertex onto a path is unique.
  const TreeNetwork t = figure6_tree();
  for (VertexId u = 0; u < t.num_vertices(); ++u) {
    const VertexId bend = t.median(u, 3, 13);
    EXPECT_TRUE(t.on_path(bend, 3, 13));
    // Bending-point property: the u~bend path meets the demand path only
    // at bend.
    for (VertexId x : t.path_vertices(u, bend)) {
      if (x != bend) {
        EXPECT_FALSE(t.on_path(x, 3, 13));
      }
    }
  }
}

// Property sweep: path arithmetic on random trees of all shapes.
class TreeNetworkProperty
    : public ::testing::TestWithParam<std::tuple<TreeShape, int>> {};

TEST_P(TreeNetworkProperty, PathInvariants) {
  const auto [shape, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const TreeNetwork t = make_tree(shape, 60, rng);
  for (int it = 0; it < 50; ++it) {
    const auto u = static_cast<VertexId>(rng.next_below(60));
    const auto v = static_cast<VertexId>(rng.next_below(60));
    const auto verts = t.path_vertices(u, v);
    EXPECT_EQ(verts.front(), u);
    EXPECT_EQ(verts.back(), v);
    EXPECT_EQ(static_cast<int>(verts.size()) - 1, t.dist(u, v));
    // Every path vertex is on the path; depth identity for LCA.
    const VertexId w = t.lca(u, v);
    EXPECT_TRUE(t.on_path(w, u, v));
    EXPECT_EQ(t.dist(u, v), t.dist(u, w) + t.dist(w, v));
    // Median of (u, v, any) lies on the u~v path.
    const auto z = static_cast<VertexId>(rng.next_below(60));
    EXPECT_TRUE(t.on_path(t.median(z, u, v), u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeNetworkProperty,
    ::testing::Combine(::testing::ValuesIn(kAllTreeShapes),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace treesched
