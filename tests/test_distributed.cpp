// End-to-end tests of the distributed schedulers against the theorems'
// guarantees: Theorem 5.3 (trees, unit, 7+eps), Theorem 6.3 (trees,
// arbitrary, 80+eps), Theorem 7.1 (lines, unit, 4+eps), Theorem 7.2
// (lines, arbitrary, 23+eps), plus the PS single-stage baseline.
#include "dist/scheduler.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::exact_opt;
using testutil::require_feasible;
using testutil::small_line_problem;
using testutil::small_tree_problem;

TEST(DistributedTreeUnit, WithinTheoremBound) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Problem p = small_tree_problem(seed, 20, 2, 9);
    DistOptions options;
    options.epsilon = 0.1;
    options.seed = seed;
    const DistResult run = solve_tree_unit_distributed(p, options);
    const Profit profit = require_feasible(p, run.solution);
    const Profit opt = exact_opt(p);
    // The per-run bound is (Delta+1)/(1-eps) with Delta <= 6 (the ideal
    // plan); small instances can realize a smaller Delta, i.e. a bound
    // *better* than the theorem's 7+eps — never worse.
    EXPECT_LE(run.ratio_bound, 7.0 / 0.9 + 1e-9);
    EXPECT_GE(run.ratio_bound, 1.0);
    EXPECT_GE(profit * run.ratio_bound, opt - 1e-6) << "seed " << seed;
    EXPECT_GE(run.stats.lambda_observed, 0.9 - 1e-6);
    EXPECT_GT(run.stats.comm_rounds, 0);
  }
}

TEST(DistributedTreeUnit, DualBoundCertifiesOpt) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Problem p = small_tree_problem(seed + 200, 20, 2, 9);
    DistOptions options;
    options.seed = seed;
    const DistResult run = solve_tree_unit_distributed(p, options);
    const Profit opt = exact_opt(p);
    // Weak duality after 1/lambda scaling: the certified bound must
    // dominate the true optimum.
    EXPECT_GE(run.stats.dual_upper_bound, opt - 1e-6) << "seed " << seed;
  }
}

TEST(DistributedTreeArbitrary, WithinTheoremBound) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = small_tree_problem(seed + 300, 20, 2, 9,
                                         HeightLaw::kBimodal);
    DistOptions options;
    options.epsilon = 0.1;
    options.seed = seed;
    const DistResult run = solve_tree_arbitrary_distributed(p, options);
    const Profit profit = require_feasible(p, run.solution);
    const Profit opt = exact_opt(p);
    // (Delta+1) + (1+2 Delta^2) over (1-eps), Delta <= 6: at most 80+eps.
    EXPECT_LE(run.ratio_bound, 80.0 / 0.9 + 1e-9);
    EXPECT_GE(profit * run.ratio_bound, opt - 1e-6) << "seed " << seed;
  }
}

TEST(DistributedLineUnit, WithinTheoremBound) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Problem p = small_line_problem(seed, 24, 2, 9, HeightLaw::kUnit,
                                         2.0);
    DistOptions options;
    options.epsilon = 0.1;
    options.seed = seed;
    const DistResult run = solve_line_unit_distributed(p, options);
    const Profit profit = require_feasible(p, run.solution);
    const Profit opt = exact_opt(p);
    EXPECT_LE(run.ratio_bound, 4.0 / 0.9 + 1e-9);  // Theorem 7.1
    EXPECT_GE(profit * run.ratio_bound, opt - 1e-6) << "seed " << seed;
  }
}

TEST(DistributedLineArbitrary, WithinTheoremBound) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = small_line_problem(seed + 40, 24, 2, 9,
                                         HeightLaw::kBimodal, 1.6);
    DistOptions options;
    options.epsilon = 0.1;
    options.seed = seed;
    const DistResult run = solve_line_arbitrary_distributed(p, options);
    const Profit profit = require_feasible(p, run.solution);
    const Profit opt = exact_opt(p);
    EXPECT_LE(run.ratio_bound, 23.0 / 0.9 + 1e-9);  // Theorem 7.2
    EXPECT_GE(profit * run.ratio_bound, opt - 1e-6) << "seed " << seed;
  }
}

TEST(PsBaseline, SingleStageHasWeakerGuaranteeButRuns) {
  const Problem p = small_line_problem(7, 24, 2, 10, HeightLaw::kUnit, 2.0);
  DistOptions ps;
  ps.stage_mode = StageMode::kSingleStagePS;
  ps.epsilon = 0.1;
  const DistResult run = solve_line_unit_distributed(p, ps);
  require_feasible(p, run.solution);
  EXPECT_LE(run.ratio_bound, 4.0 * 5.1 + 1e-9);  // 20 + eps (PS)
  EXPECT_GT(run.ratio_bound, 5.0);               // clearly the PS regime
  const Profit opt = exact_opt(p);
  EXPECT_GE(run.profit * run.ratio_bound, opt - 1e-6);
}

TEST(Distributed, MessageCountingProducesTraffic) {
  const Problem p = small_tree_problem(5, 24, 2, 12);
  DistOptions options;
  options.count_messages = true;
  const DistResult run = solve_tree_unit_distributed(p, options);
  EXPECT_GT(run.stats.messages, 0);
  EXPECT_GE(run.stats.message_bytes, run.stats.messages * 48);
}

TEST(Distributed, InterferencePropertyHoldsAtRuntime) {
  const Problem p = small_tree_problem(6, 24, 2, 12);
  DistOptions options;
  options.check_interference = true;
  const DistResult run = solve_tree_unit_distributed(p, options);
  EXPECT_TRUE(run.stats.interference_ok);
}

TEST(Distributed, DecompositionChoiceAffectsEpochs) {
  const Problem p = small_tree_problem(8, 100, 2, 30);
  DistOptions ideal, rootfix;
  ideal.decomp = DecompKind::kIdeal;
  rootfix.decomp = DecompKind::kRootFixing;
  const DistResult a = solve_tree_unit_distributed(p, ideal);
  const DistResult b = solve_tree_unit_distributed(p, rootfix);
  require_feasible(p, a.solution);
  require_feasible(p, b.solution);
  // Ideal: epochs bounded by 2 log n + 1; root-fixing can only match or
  // exceed (typically far more on deep trees).
  EXPECT_LE(a.stats.epochs, 2 * 7 + 1);
}

TEST(Distributed, SeedChangesLubyButStaysFeasible) {
  const Problem p = small_tree_problem(10, 24, 2, 12);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    DistOptions options;
    options.seed = seed;
    const DistResult run = solve_tree_unit_distributed(p, options);
    require_feasible(p, run.solution);
    EXPECT_GT(run.profit, 0.0);
  }
}

}  // namespace
}  // namespace treesched
