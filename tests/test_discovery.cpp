// Conflict discovery (dist/discovery.hpp) and sharded-dual parity
// (framework/dual_shard.hpp): the rendezvous-discovered neighborhoods
// must equal the explicit ConflictGraph adjacency exactly, the discovery
// traffic must match its closed-form accounting, and the sharded-dual
// protocol run must be indistinguishable from a central DualState replay
// of the same raise stack — selected set, per-instance LHS, lambda and
// the round identity.
#include "dist/discovery.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/conflict_graph.hpp"
#include "dist/protocol_scheduler.hpp"
#include "framework/dual_shard.hpp"
#include "framework/dual_state.hpp"
#include "framework/raise_rule.hpp"
#include "framework/two_phase.hpp"
#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::small_line_problem;
using testutil::small_tree_problem;

std::vector<InstanceId> all_instances(const Problem& p) {
  std::vector<InstanceId> all(static_cast<std::size_t>(p.num_instances()));
  for (InstanceId i = 0; i < p.num_instances(); ++i)
    all[static_cast<std::size_t>(i)] = i;
  return all;
}

void expect_neighborhood_parity(const Problem& p,
                                const std::vector<InstanceId>& members) {
  const RendezvousLayout layout =
      RendezvousLayout::for_problem(p, static_cast<int>(members.size()));
  Runtime rt(layout.total);
  const DiscoveredNeighborhoods hood =
      discover_conflicts(p, {members.data(), members.size()}, rt);
  const ConflictGraph graph(p, {members.data(), members.size()});
  EXPECT_EQ(hood.neighbors, graph.adjacency());
  EXPECT_EQ(hood.num_edges(), graph.num_edges());
  EXPECT_EQ(hood.max_degree(), graph.max_degree());
}

TEST(Discovery, NeighborhoodsMatchConflictGraphOnTrees) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = small_tree_problem(seed, 24, 2, 14);
    expect_neighborhood_parity(p, all_instances(p));
  }
}

TEST(Discovery, NeighborhoodsMatchConflictGraphOnLines) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = small_line_problem(seed, 24, 2, 8);
    expect_neighborhood_parity(p, all_instances(p));
  }
}

TEST(Discovery, WorksOnMemberSubsets) {
  const Problem p = small_tree_problem(9, 32, 2, 20);
  std::vector<InstanceId> subset;
  for (InstanceId i = 0; i < p.num_instances(); i += 3) subset.push_back(i);
  expect_neighborhood_parity(p, subset);
}

TEST(Discovery, AccountingMatchesClosedForm) {
  const Problem p = small_tree_problem(5, 24, 2, 12);
  const auto members = all_instances(p);
  const RendezvousLayout layout =
      RendezvousLayout::for_problem(p, static_cast<int>(members.size()));
  Runtime rt(layout.total);
  const DiscoveredNeighborhoods hood =
      discover_conflicts(p, {members.data(), members.size()}, rt);

  // Registrations: one per (member, path edge) plus one per member for
  // the demand owner, 16 header bytes each (empty payload).  Replies:
  // per owner bucket B with |B| >= 2, one interval digest of the whole
  // bucket to each registrant — |B| messages of 2*runs(B) doubles, i.e.
  // |B| * (16 + 16*runs(B)) bytes.
  std::int64_t registrations = 0;
  std::vector<std::vector<int>> edge_bucket(
      static_cast<std::size_t>(p.num_global_edges()));
  std::vector<std::vector<int>> demand_bucket(
      static_cast<std::size_t>(p.num_demands()));
  for (InstanceId i : members) {
    const DemandInstance& inst = p.instance(i);
    registrations += 1 + static_cast<std::int64_t>(inst.edges.size());
    demand_bucket[static_cast<std::size_t>(inst.demand)].push_back(i);
    for (EdgeId e : inst.edges)
      edge_bucket[static_cast<std::size_t>(e)].push_back(i);
  }
  std::int64_t replies = 0;
  std::int64_t reply_bytes = 0;
  const auto account = [&](const std::vector<int>& bucket) {
    if (bucket.size() < 2) return;
    const std::int64_t b = static_cast<std::int64_t>(bucket.size());
    const std::int64_t runs = static_cast<std::int64_t>(
        interval_digest({bucket.data(), bucket.size()}).size() / 2);
    replies += b;
    reply_bytes += b * (16 + 16 * runs);
  };
  for (const auto& bucket : edge_bucket) account(bucket);
  for (const auto& bucket : demand_bucket) account(bucket);

  EXPECT_EQ(hood.rounds, 2);
  EXPECT_EQ(hood.messages, registrations + replies);
  EXPECT_EQ(hood.bytes, registrations * 16 + reply_bytes);
  // The per-leg breakdown carries the same closed forms and sums back to
  // the totals exactly.
  EXPECT_EQ(hood.registration_messages, registrations);
  EXPECT_EQ(hood.registration_bytes, registrations * 16);
  EXPECT_EQ(hood.reply_messages, replies);
  EXPECT_EQ(hood.reply_bytes, reply_bytes);
  EXPECT_EQ(hood.messages, hood.registration_messages + hood.reply_messages);
  EXPECT_EQ(hood.bytes, hood.registration_bytes + hood.reply_bytes);
  // The runtime's counters carry exactly what discovery reported.
  EXPECT_EQ(rt.messages_sent(), hood.messages);
  EXPECT_EQ(rt.bytes_sent(), hood.bytes);
  EXPECT_EQ(rt.round(), hood.rounds);
}

TEST(Discovery, IntervalDigestRoundTripsAndCompresses) {
  // Digest form: maximal consecutive runs as flat {lo, hi} pairs.
  const std::vector<int> scattered{1, 3, 5, 9};
  EXPECT_EQ(interval_digest({scattered.data(), scattered.size()}),
            (std::vector<double>{1, 1, 3, 3, 5, 5, 9, 9}));
  const std::vector<int> runs{0, 1, 2, 3, 7, 8, 12};
  EXPECT_EQ(interval_digest({runs.data(), runs.size()}),
            (std::vector<double>{0, 3, 7, 8, 12, 12}));
  EXPECT_TRUE(interval_digest({runs.data(), 0}).empty());
}

TEST(Discovery, DigestRepliesCutBytesOnLineWindows) {
  // Line-with-windows problems place each demand's instances on
  // consecutive ids, so hot-edge buckets compress to a handful of runs;
  // the reply traffic must come in well below the raw quadratic
  // sum |B| * (|B| - 1) form the pre-digest protocol paid.
  const Problem p = small_line_problem(3, 48, 2, 10, HeightLaw::kUnit,
                                       /*window_slack=*/5.0);
  const auto members = all_instances(p);
  const RendezvousLayout layout =
      RendezvousLayout::for_problem(p, static_cast<int>(members.size()));
  Runtime rt(layout.total);
  const DiscoveredNeighborhoods hood =
      discover_conflicts(p, {members.data(), members.size()}, rt);

  std::int64_t registrations = 0;
  std::vector<std::int64_t> edge_bucket(
      static_cast<std::size_t>(p.num_global_edges()), 0);
  std::vector<std::int64_t> demand_bucket(
      static_cast<std::size_t>(p.num_demands()), 0);
  for (InstanceId i : members) {
    const DemandInstance& inst = p.instance(i);
    registrations += 1 + static_cast<std::int64_t>(inst.edges.size());
    ++demand_bucket[static_cast<std::size_t>(inst.demand)];
    for (EdgeId e : inst.edges) ++edge_bucket[static_cast<std::size_t>(e)];
  }
  std::int64_t raw_reply_bytes = 0;
  for (std::int64_t b : edge_bucket)
    if (b >= 2) raw_reply_bytes += b * (16 + 8 * (b - 1));
  for (std::int64_t b : demand_bucket)
    if (b >= 2) raw_reply_bytes += b * (16 + 8 * (b - 1));
  const std::int64_t digest_reply_bytes = hood.bytes - registrations * 16;

  EXPECT_LT(digest_reply_bytes, raw_reply_bytes / 4)
      << "digest replies should collapse the quadratic bucket lists";
}

// Central replay of a protocol raise stack: applies the same raises, in
// the same order, to a central DualState — what the pre-sharding
// implementation computed.  Winners within one step are an independent
// set, so their raises commute and the stored order is authoritative.
std::vector<double> replay_central_lhs(
    const Problem& p, const LayeredPlan& plan,
    const std::vector<std::vector<InstanceId>>& stack) {
  DualState dual(p);
  const RaiseRule rule(RaiseRuleKind::kUnit, p);
  for (const auto& step : stack) {
    for (InstanceId i : step) {
      const DemandInstance& inst = p.instance(i);
      const auto& critical = plan.critical[static_cast<std::size_t>(i)];
      const double slack =
          inst.profit - dual.lhs(inst, rule.beta_coeff(inst));
      const double amount = rule.delta(inst, critical, slack);
      dual.raise_alpha(inst.demand, amount);
      for (EdgeId e : critical)
        dual.raise_beta(e, rule.beta_increment(inst, critical, amount, e));
    }
  }
  std::vector<double> lhs(static_cast<std::size_t>(p.num_instances()), 0.0);
  for (InstanceId i = 0; i < p.num_instances(); ++i)
    lhs[static_cast<std::size_t>(i)] =
        dual.lhs(p.instance(i), rule.beta_coeff(p.instance(i)));
  return lhs;
}

TEST(ShardedDual, ProtocolMatchesCentralReplay) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = small_tree_problem(seed + 500, 20, 2, 9);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    ProtocolOptions options;
    options.epsilon = 0.2;
    options.seed = seed;
    options.keep_stack = true;
    const ProtocolRunResult run = run_distributed_protocol(p, plan, options);

    // The sharded run's per-instance LHS equals the central replay's.
    const std::vector<double> central =
        replay_central_lhs(p, plan, run.raise_stack);
    ASSERT_EQ(run.final_lhs.size(), central.size());
    double lambda = 1.0;
    for (InstanceId i = 0; i < p.num_instances(); ++i) {
      const double scale =
          std::max(1.0, std::abs(central[static_cast<std::size_t>(i)]));
      EXPECT_NEAR(run.final_lhs[static_cast<std::size_t>(i)],
                  central[static_cast<std::size_t>(i)], 1e-9 * scale)
          << "instance " << i << " seed " << seed;
      lambda = std::min(lambda, central[static_cast<std::size_t>(i)] /
                                    p.instance(i).profit);
    }
    EXPECT_NEAR(run.lambda_observed, lambda, 1e-12);

    // The selected set is the phase-2 prune of that same stack.
    const Solution pruned = prune_stack(p, run.raise_stack);
    EXPECT_EQ(run.solution.selected, pruned.selected);

    // schedule_ok means every stage target was met, which the final
    // satisfaction level must reflect.
    if (run.schedule_ok) {
      EXPECT_GE(run.lambda_observed, 1.0 - options.epsilon - 1e-6);
    }
  }
}

TEST(ShardedDual, RoundIdentityIncludesDiscovery) {
  const Problem p = small_line_problem(17, 20, 2, 7);
  const LayeredPlan plan = build_line_layered_plan(p);
  ProtocolOptions options;
  options.epsilon = 0.2;
  const ProtocolRunResult run = run_distributed_protocol(p, plan, options);
  const std::int64_t tuples = static_cast<std::int64_t>(run.epochs) *
                              run.stages_per_epoch * run.steps_per_stage;
  EXPECT_EQ(run.discovery_rounds, 2);
  EXPECT_EQ(run.rounds,
            run.discovery_rounds + tuples * (2 * run.luby_budget + 1) + tuples);
}

TEST(DualShardUnit, LocalRaisesAndRemoteApplication) {
  const std::vector<EdgeId> path{2, 5, 9};
  DualShard shard(/*demand=*/3, {path.data(), path.size()});
  EXPECT_DOUBLE_EQ(shard.lhs(1.0), 0.0);

  shard.raise_alpha(0.5);
  EXPECT_TRUE(shard.raise_beta(5, 0.25));
  EXPECT_FALSE(shard.raise_beta(7, 9.0));  // off-path: ignored
  EXPECT_DOUBLE_EQ(shard.alpha(), 0.5);
  EXPECT_DOUBLE_EQ(shard.beta(5), 0.25);
  EXPECT_DOUBLE_EQ(shard.beta(7), 0.0);
  EXPECT_DOUBLE_EQ(shard.lhs(1.0), 0.75);
  EXPECT_DOUBLE_EQ(shard.lhs(0.5), 0.5 + 0.5 * 0.25);

  // A neighbor's raise: same demand -> alpha applies; edges intersected
  // with the local path.
  const std::vector<EdgeId> critical{5, 7};
  const std::vector<double> incs{0.1, 0.2};
  const std::vector<double> payload = encode_raise(
      3, 0.05, {critical.data(), critical.size()}, {incs.data(), incs.size()});
  shard.apply_raise({payload.data(), payload.size()});
  EXPECT_DOUBLE_EQ(shard.alpha(), 0.55);
  EXPECT_DOUBLE_EQ(shard.beta(5), 0.35);
  EXPECT_DOUBLE_EQ(shard.beta_sum(), 0.35);

  // A different demand's raise: alpha untouched.
  const std::vector<double> other = encode_raise(
      4, 1.0, {critical.data(), critical.size()}, {incs.data(), incs.size()});
  shard.apply_raise({other.data(), other.size()});
  EXPECT_DOUBLE_EQ(shard.alpha(), 0.55);
  EXPECT_DOUBLE_EQ(shard.beta(5), 0.45);
}

}  // namespace
}  // namespace treesched
