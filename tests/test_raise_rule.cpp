#include "framework/raise_rule.hpp"

#include <gtest/gtest.h>

#include "framework/dual_state.hpp"

namespace treesched {
namespace {

Problem capacitated_problem() {
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(6));
  Problem p(6, std::move(networks));
  p.set_uniform_capacity(1.0);
  p.set_capacity(0, 2, 4.0);
  p.add_demand(0, 5, 12.0, 0.4);  // instance 0: edges 0..4
  p.finalize();
  return p;
}

// Raising by the rule's delta must satisfy the constraint tightly (paper,
// Section 3.2 / 6.1) — for every rule variant.
void check_tightness(const Problem& p, RaiseRuleKind kind, bool raise_alpha,
                     bool capacity_aware) {
  const RaiseRule rule(kind, p, raise_alpha, capacity_aware);
  const DemandInstance& inst = p.instance(0);
  const std::vector<EdgeId> critical{0, 2};
  DualState dual(p);
  const double slack = inst.profit - dual.lhs(inst, rule.beta_coeff(inst));
  const double delta = rule.delta(inst, critical, slack);
  EXPECT_GT(delta, 0.0);
  if (raise_alpha) dual.raise_alpha(inst.demand, delta);
  for (EdgeId e : critical)
    dual.raise_beta(e, rule.beta_increment(inst, critical, delta, e));
  EXPECT_NEAR(dual.lhs(inst, rule.beta_coeff(inst)), inst.profit, 1e-9);
}

TEST(RaiseRule, TightnessAllVariants) {
  const Problem p = capacitated_problem();
  for (RaiseRuleKind kind : {RaiseRuleKind::kUnit, RaiseRuleKind::kNarrow}) {
    for (bool alpha : {true, false}) {
      for (bool aware : {true, false}) {
        SCOPED_TRACE(std::string(to_string(kind)) + " alpha=" +
                     std::to_string(alpha) + " aware=" +
                     std::to_string(aware));
        check_tightness(p, kind, alpha, aware);
      }
    }
  }
}

TEST(RaiseRule, UniformUnitMatchesPaperFormula) {
  // With c == 1, delta = slack / (|pi| + 1) and beta += delta.
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(6));
  Problem p(6, std::move(networks));
  p.add_demand(0, 5, 14.0);
  p.finalize();
  const RaiseRule rule(RaiseRuleKind::kUnit, p);
  const std::vector<EdgeId> critical{0, 2, 4};
  const double delta = rule.delta(p.instance(0), critical, 14.0);
  EXPECT_DOUBLE_EQ(delta, 14.0 / 4.0);
  EXPECT_DOUBLE_EQ(rule.beta_increment(p.instance(0), critical, delta, 0),
                   delta);
}

TEST(RaiseRule, UniformNarrowMatchesPaperFormula) {
  // With c == 1, delta = slack / (1 + 2 h |pi|^2), beta += 2 |pi| delta.
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(6));
  Problem p(6, std::move(networks));
  p.add_demand(0, 5, 10.0, 0.25);
  p.finalize();
  const RaiseRule rule(RaiseRuleKind::kNarrow, p);
  const std::vector<EdgeId> critical{0, 4};
  const double delta = rule.delta(p.instance(0), critical, 10.0);
  EXPECT_DOUBLE_EQ(delta, 10.0 / (1.0 + 2.0 * 0.25 * 2.0 * 2.0));
  EXPECT_DOUBLE_EQ(rule.beta_increment(p.instance(0), critical, delta, 0),
                   2.0 * 2.0 * delta);
}

TEST(RaiseRule, PriceFactors) {
  const Problem p = capacitated_problem();
  const RaiseRule unit(RaiseRuleKind::kUnit, p);
  const RaiseRule narrow(RaiseRuleKind::kNarrow, p);
  // The constants behind 7+eps, 4+eps, 73+eps, 19+eps.
  EXPECT_DOUBLE_EQ(unit.price_factor(6), 7.0);
  EXPECT_DOUBLE_EQ(unit.price_factor(3), 4.0);
  EXPECT_DOUBLE_EQ(narrow.price_factor(6), 73.0);
  EXPECT_DOUBLE_EQ(narrow.price_factor(3), 19.0);
  EXPECT_DOUBLE_EQ(narrow.price_factor(1), 3.0);  // sequential line narrow
  // Without the alpha raise (single-network Appendix A): one less.
  const RaiseRule no_alpha(RaiseRuleKind::kUnit, p, /*raise_alpha=*/false);
  EXPECT_DOUBLE_EQ(no_alpha.price_factor(2), 2.0);
}

TEST(RaiseRule, RatioBounds) {
  const Problem p = capacitated_problem();
  const RaiseRule unit(RaiseRuleKind::kUnit, p);
  EXPECT_NEAR(unit.ratio_bound(6, 1.0 - 0.1), 7.0 / 0.9, 1e-12);
  EXPECT_NEAR(unit.ratio_bound(3, 1.0 / 5.1), 4.0 * 5.1, 1e-12);  // PS 20+eps
}

TEST(RaiseRule, DefaultXiMatchesPaper) {
  // Section 5: xi = 14/15 for Delta = 6; Section 7: 8/9 for Delta = 3.
  EXPECT_DOUBLE_EQ(RaiseRule::default_xi(RaiseRuleKind::kUnit, 6, 1.0),
                   14.0 / 15.0);
  EXPECT_DOUBLE_EQ(RaiseRule::default_xi(RaiseRuleKind::kUnit, 3, 1.0),
                   8.0 / 9.0);
  // Section 6: xi = C/(C + h_min) with C = 1 + 2 Delta^2.
  const double xi = RaiseRule::default_xi(RaiseRuleKind::kNarrow, 6, 0.25);
  EXPECT_DOUBLE_EQ(xi, 73.0 / 73.25);
  // Monotone: smaller h_min pushes xi towards 1 (more stages).
  EXPECT_GT(RaiseRule::default_xi(RaiseRuleKind::kNarrow, 6, 0.1), xi);
}

TEST(RaiseRule, CapacityAwareDeltaUsesInverseCapacities) {
  const Problem p = capacitated_problem();  // edge 2 has capacity 4
  const RaiseRule rule(RaiseRuleKind::kUnit, p);
  const std::vector<EdgeId> critical{0, 2};
  // delta = slack / (1 + 1/1 + 1/4).
  EXPECT_NEAR(rule.delta(p.instance(0), critical, 9.0), 9.0 / 2.25, 1e-12);
  EXPECT_NEAR(rule.beta_increment(p.instance(0), critical, 1.0, 2), 0.25,
              1e-12);
}

}  // namespace
}  // namespace treesched
