#include "model/line_problem.hpp"

#include <gtest/gtest.h>

#include "model/solution.hpp"

namespace treesched {
namespace {

TEST(LineProblem, NumStartsCountsPlacements) {
  LineProblem line(10, 1);
  const DemandId d0 = line.add_demand(2, 7, 3, 1.0);  // starts 2,3,4,5
  const DemandId d1 = line.add_demand(0, 0, 1, 1.0);  // start 0 only
  EXPECT_EQ(line.num_starts(d0), 4);
  EXPECT_EQ(line.num_starts(d1), 1);
}

TEST(LineProblem, LoweringExpandsAllPlacements) {
  LineProblem line(10, 2);
  line.add_demand(2, 7, 3, 5.0);   // 4 starts x 2 resources
  line.add_demand(0, 9, 10, 2.0);  // 1 start x 2 resources
  const DemandId d2 = line.add_demand(1, 4, 2, 3.0);  // 3 starts
  line.set_access(d2, {1});                           // x 1 resource
  const Problem p = line.lower();
  EXPECT_EQ(p.num_vertices(), 11);
  EXPECT_EQ(p.num_networks(), 2);
  EXPECT_EQ(p.num_instances(), 4 * 2 + 1 * 2 + 3 * 1);
}

TEST(LineProblem, PlacementsCoverWindowSlots) {
  LineProblem line(10, 1);
  line.add_demand(2, 7, 3, 5.0);
  const Problem p = line.lower();
  for (const DemandInstance& inst : p.instances()) {
    // Contiguous slots, length = proc_time, inside [release, deadline].
    EXPECT_EQ(inst.edges.size(), 3u);
    EXPECT_EQ(inst.edges.back() - inst.edges.front(), 2);
    EXPECT_GE(inst.edges.front(), 2);
    EXPECT_LE(inst.edges.back(), 7);
  }
}

TEST(LineProblem, OverlappingPlacementsOfOneDemandConflict) {
  LineProblem line(6, 1);
  line.add_demand(0, 5, 4, 1.0);  // starts 0,1,2: placements overlap
  const Problem p = line.lower();
  ASSERT_EQ(p.num_instances(), 3);
  EXPECT_TRUE(p.overlap(0, 1));
  EXPECT_TRUE(p.conflicting(0, 1));
  EXPECT_TRUE(p.overlap(0, 2));  // slots 0-3 and 2-5 share slots 2,3
  // Only one placement of a demand may be selected.
  Solution s{{0, 1}};
  EXPECT_FALSE(check_feasibility(p, s).feasible);
}

TEST(LineProblem, WindowValidation) {
  LineProblem line(10, 1);
  EXPECT_THROW(line.add_demand(-1, 5, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(line.add_demand(0, 10, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(line.add_demand(5, 3, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(line.add_demand(0, 5, 7, 1.0), std::invalid_argument);
  EXPECT_THROW(line.add_demand(0, 5, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(line.add_demand(0, 5, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(line.add_demand(0, 5, 2, 1.0, 2.0), std::invalid_argument);
}

TEST(LineProblem, AccessValidation) {
  LineProblem line(10, 2);
  const DemandId d = line.add_demand(0, 5, 2, 1.0);
  EXPECT_THROW(line.set_access(d, {}), std::invalid_argument);
  EXPECT_THROW(line.set_access(d, {5}), std::invalid_argument);
  line.set_access(d, {1, 1, 0});  // dedup + sort
  EXPECT_EQ(line.access(d), (std::vector<NetworkId>{0, 1}));
}

TEST(LineProblem, FixedPlacementHasOneInstancePerResource) {
  LineProblem line(8, 3);
  line.add_demand(2, 4, 3, 1.0);  // window == proc_time: one start
  const Problem p = line.lower();
  EXPECT_EQ(p.num_instances(), 3);
  for (const DemandInstance& inst : p.instances()) {
    EXPECT_EQ(inst.edges.front() - p.global_edge(inst.network, 0), 2);
  }
}

}  // namespace
}  // namespace treesched
