#include "dist/runtime.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>

#include "dist/conflict_graph.hpp"
#include "dist/luby_mis.hpp"
#include "dist/transport.hpp"
#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::small_tree_problem;

// Every backend the transport-axis tests hold to identical behavior.
constexpr TransportKind kAllTransports[] = {
    TransportKind::kInProc, TransportKind::kSerialized,
    TransportKind::kThreadedSerialized};

bool uses_codec(TransportKind kind) {
  return kind == TransportKind::kSerialized ||
         kind == TransportKind::kThreadedSerialized;
}

TEST(Runtime, MessagesDeliveredAtRoundBoundary) {
  Runtime rt(3);
  rt.connect(0, 1);
  rt.connect(1, 2);
  rt.post(Message{0, 1, 7, {1.5}});
  // Not visible before step().
  EXPECT_TRUE(rt.drain(1).empty());
  rt.step();
  const auto inbox = rt.drain(1);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].from, 0);
  EXPECT_EQ(inbox[0].tag, 7);
  EXPECT_DOUBLE_EQ(inbox[0].data[0], 1.5);
  // Drain empties the box.
  EXPECT_TRUE(rt.drain(1).empty());
}

TEST(Runtime, CountsRoundsMessagesBytes) {
  Runtime rt(2);
  rt.connect(0, 1);
  rt.post(Message{0, 1, 0, {1.0, 2.0}});
  rt.post(Message{1, 0, 0, {}});
  rt.step();
  rt.step();
  EXPECT_EQ(rt.round(), 2);
  EXPECT_EQ(rt.messages_sent(), 2);
  EXPECT_EQ(rt.bytes_sent(), (16 + 16) + 16);
}

TEST(Runtime, ChannelsAreSymmetricAndIdempotent) {
  Runtime rt(4);
  rt.connect(2, 3);
  rt.connect(3, 2);
  EXPECT_TRUE(rt.connected(2, 3));
  EXPECT_TRUE(rt.connected(3, 2));
  EXPECT_FALSE(rt.connected(0, 3));
  EXPECT_EQ(rt.channels(2).size(), 1u);
  EXPECT_EQ(rt.channels(3).size(), 1u);
}

// --- The transport axis ----------------------------------------------------
//
// Each backend moves messages differently (vector shuffles, serialized
// byte buffers, mutex-guarded byte buffers), but the tests below hold
// all of them to the exact same observable behavior: delivery at the
// round boundary, per-destination posting order, and bit-identical
// round/message/byte counters.

TEST(Transport, RoundBoundaryDeliveryOnEveryBackend) {
  for (TransportKind kind : kAllTransports) {
    SCOPED_TRACE(to_string(kind));
    Runtime rt(3, kind);
    EXPECT_EQ(rt.transport_kind(), kind);
    rt.connect(0, 1);
    rt.connect(1, 2);
    rt.post(Message{0, 1, 7, {1.5}});
    rt.post(Message{2, 1, 9, {-2.0, 3.0}});
    // Nothing is visible before the boundary, on any backend.
    EXPECT_TRUE(rt.drain(1).empty());
    rt.step();
    const auto inbox = rt.drain(1);
    ASSERT_EQ(inbox.size(), 2u);
    EXPECT_EQ(inbox[0].from, 0);
    EXPECT_EQ(inbox[0].tag, 7);
    ASSERT_EQ(inbox[0].data.size(), 1u);
    EXPECT_EQ(inbox[0].data[0], 1.5);
    EXPECT_EQ(inbox[1].from, 2);
    EXPECT_EQ(inbox[1].tag, 9);
    ASSERT_EQ(inbox[1].data.size(), 2u);
    EXPECT_EQ(inbox[1].data[0], -2.0);
    EXPECT_EQ(inbox[1].data[1], 3.0);
    EXPECT_TRUE(rt.drain(1).empty());
  }
}

TEST(Transport, CountersIdenticalAcrossBackends) {
  // One scripted exchange, replayed on every backend: rounds, messages,
  // bytes, and the drained payloads must agree with == (the serialized
  // backends really encode and decode, so equality here means the codec
  // is lossless and the modeled byte charge equals the serialized size).
  struct Observed {
    int rounds = 0;
    std::int64_t messages = 0, bytes = 0;
    std::vector<Message> inbox0, inbox2;
  };
  auto run = [](TransportKind kind) {
    Runtime rt(3, kind);
    rt.connect(0, 1);
    rt.connect(1, 2);
    rt.connect(0, 2);
    rt.post(Message{0, 2, 1, {0.5, -0.0, 1e300}});
    rt.post(Message{1, 2, 2, {}});
    rt.step();
    rt.post(Message{2, 0, 3, {42.0}});
    rt.step();
    rt.step();  // idle round
    Observed got;
    got.rounds = rt.round();
    got.messages = rt.messages_sent();
    got.bytes = rt.bytes_sent();
    got.inbox0 = rt.drain(0);
    got.inbox2 = rt.drain(2);
    return got;
  };
  const Observed ref = run(TransportKind::kInProc);
  EXPECT_EQ(ref.rounds, 3);
  EXPECT_EQ(ref.messages, 3);
  EXPECT_EQ(ref.bytes, (16 + 24) + 16 + (16 + 8));
  for (TransportKind kind : kAllTransports) {
    SCOPED_TRACE(to_string(kind));
    const Observed got = run(kind);
    EXPECT_EQ(got.rounds, ref.rounds);
    EXPECT_EQ(got.messages, ref.messages);
    EXPECT_EQ(got.bytes, ref.bytes);
    ASSERT_EQ(got.inbox0.size(), ref.inbox0.size());
    ASSERT_EQ(got.inbox2.size(), ref.inbox2.size());
    auto expect_same = [](const Message& a, const Message& b) {
      EXPECT_EQ(a.from, b.from);
      EXPECT_EQ(a.to, b.to);
      EXPECT_EQ(a.tag, b.tag);
      ASSERT_EQ(a.data.size(), b.data.size());
      // memcmp, not ==: -0.0 and NaN payloads must survive bit for bit.
      if (!a.data.empty())
        EXPECT_EQ(std::memcmp(a.data.data(), b.data.data(),
                              a.data.size() * sizeof(double)),
                  0);
    };
    for (std::size_t i = 0; i < ref.inbox0.size(); ++i)
      expect_same(got.inbox0[i], ref.inbox0[i]);
    for (std::size_t i = 0; i < ref.inbox2.size(); ++i)
      expect_same(got.inbox2[i], ref.inbox2[i]);
  }
}

TEST(Transport, CodecHitsCountEveryMessageOnSerializedBackends) {
  for (TransportKind kind : kAllTransports) {
    SCOPED_TRACE(to_string(kind));
    Runtime rt(4, kind);
    for (int v = 1; v < 4; ++v) rt.connect(0, v);
    const int kMessages = 10;
    for (int i = 0; i < kMessages; ++i)
      rt.post(Message{0, 1 + i % 3, i, {static_cast<double>(i)}});
    rt.step();
    EXPECT_EQ(rt.messages_sent(), kMessages);
    if (uses_codec(kind)) {
      // Encoded at post time, decoded only as inboxes drain.
      EXPECT_EQ(rt.codec_encoded(), kMessages);
      EXPECT_EQ(rt.codec_decoded(), 0);
      for (int v = 0; v < 4; ++v) rt.recycle(rt.drain(v));
      EXPECT_EQ(rt.codec_decoded(), kMessages);
    } else {
      for (int v = 0; v < 4; ++v) rt.recycle(rt.drain(v));
      EXPECT_EQ(rt.codec_encoded(), 0);
      EXPECT_EQ(rt.codec_decoded(), 0);
    }
  }
}

TEST(Transport, UndrainedRoundsAccumulateInPostingOrder) {
  // Messages from several boundaries pile up in one inbox, oldest first,
  // on every backend (the serialized wires append newly flushed bytes
  // behind the undrained ones).
  for (TransportKind kind : kAllTransports) {
    SCOPED_TRACE(to_string(kind));
    Runtime rt(2, kind);
    rt.connect(0, 1);
    for (int round = 0; round < 3; ++round) {
      rt.post(Message{0, 1, round, {static_cast<double>(round)}});
      rt.post(Message{1, 0, round, {}});
      rt.step();
    }
    const auto inbox = rt.drain(1);
    ASSERT_EQ(inbox.size(), 3u);
    for (int round = 0; round < 3; ++round) {
      EXPECT_EQ(inbox[static_cast<std::size_t>(round)].tag, round);
      EXPECT_EQ(inbox[static_cast<std::size_t>(round)].data[0],
                static_cast<double>(round));
    }
    EXPECT_EQ(rt.drain(0).size(), 3u);
  }
}

TEST(Transport, ThreadedBackendAcceptsConcurrentPosts) {
  // The one behavior kThreadedSerialized adds: post() is safe from
  // concurrent threads between boundaries.  Counters and delivery must
  // come out exact — no message lost, no byte miscounted.
  Runtime rt(5, TransportKind::kThreadedSerialized);
  for (int v = 1; v < 5; ++v) rt.connect(0, v);
  const int kThreads = 4;
  const int kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rt, t] {
      for (int i = 0; i < kPerThread; ++i)
        rt.post(Message{0, 1 + (t + i) % 4, t, {static_cast<double>(i)}});
    });
  }
  for (auto& w : workers) w.join();
  rt.step();
  const std::int64_t total = kThreads * kPerThread;
  EXPECT_EQ(rt.messages_sent(), total);
  EXPECT_EQ(rt.bytes_sent(), total * (16 + 8));
  EXPECT_EQ(rt.codec_encoded(), total);
  std::int64_t delivered = 0;
  for (int v = 1; v < 5; ++v)
    delivered += static_cast<std::int64_t>(rt.drain(v).size());
  EXPECT_EQ(delivered, total);
  EXPECT_EQ(rt.codec_decoded(), total);
}

TEST(Transport, RecycledInboxesAreReusedWithoutReallocation) {
  // The free-list contract: a drain/recycle loop settles into reusing
  // the same vector — and, on the serialized wire, the same payload
  // storage, overwritten in place by the decoder.
  for (TransportKind kind : kAllTransports) {
    SCOPED_TRACE(to_string(kind));
    Runtime rt(2, kind);
    rt.connect(0, 1);
    // Warm up two cycles, remembering the buffers in play.  The in-proc
    // backend swaps the recycled vector's storage with its inbox vector
    // (two buffers ping-pong); the serialized backends decode into the
    // recycled vector in place (one buffer, stable payload storage too).
    const Message* slots[2] = {nullptr, nullptr};
    const double* payload = nullptr;
    for (int cycle = 0; cycle < 2; ++cycle) {
      rt.post(Message{0, 1, cycle, {1.0, 2.0, 3.0}});
      rt.step();
      std::vector<Message> inbox = rt.drain(1);
      ASSERT_EQ(inbox.size(), 1u);
      slots[cycle] = inbox.data();
      payload = inbox[0].data.data();
      rt.recycle(std::move(inbox));
    }
    // Steady state: the next drain hands back a warm buffer — no fresh
    // allocation of the message vector.
    rt.post(Message{0, 1, 9, {9.0, 8.0, 7.0}});
    rt.step();
    std::vector<Message> inbox = rt.drain(1);
    ASSERT_EQ(inbox.size(), 1u);
    EXPECT_TRUE(inbox.data() == slots[0] || inbox.data() == slots[1]);
    if (uses_codec(kind)) {
      // In-place decode: same Message slot, same payload buffer.
      EXPECT_EQ(inbox.data(), slots[1]);
      EXPECT_EQ(inbox[0].data.data(), payload);
    }
    EXPECT_EQ(inbox[0].tag, 9);
    EXPECT_EQ(inbox[0].data[0], 9.0);
  }
}

TEST(Transport, KindNamesParseAndResolve) {
  EXPECT_EQ(parse_transport_kind("inproc"), TransportKind::kInProc);
  EXPECT_EQ(parse_transport_kind("serialized"), TransportKind::kSerialized);
  EXPECT_EQ(parse_transport_kind("threaded"),
            TransportKind::kThreadedSerialized);
  EXPECT_EQ(parse_transport_kind("threaded-serialized"),
            TransportKind::kThreadedSerialized);
  EXPECT_EQ(parse_transport_kind("faulty"), TransportKind::kFaulty);
  EXPECT_THROW(parse_transport_kind("carrier-pigeon"), std::invalid_argument);
  // Non-default kinds pass through the resolver untouched.
  for (TransportKind kind : kAllTransports)
    EXPECT_EQ(resolve_transport_kind(kind), kind);
  EXPECT_EQ(std::string(to_string(TransportKind::kSerialized)), "serialized");
  EXPECT_EQ(std::string(to_string(TransportKind::kFaulty)), "faulty");
}

// --- The message codec -----------------------------------------------------

TEST(Codec, RoundTripPreservesEveryBitPattern) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const Message messages[] = {
      {0, 1, 0, {}},
      {3, 7, 42, {1.5}},
      {100, 200, -5, {0.0, -0.0, nan, inf, -inf, 5e-324, 1e308}},
  };
  std::vector<std::uint8_t> wire;
  for (const Message& m : messages)
    EXPECT_EQ(encode_message(m, wire),
              static_cast<std::size_t>(message_wire_bytes(m)));
  std::size_t offset = 0;
  for (const Message& m : messages) {
    Message got;
    std::string error;
    ASSERT_TRUE(decode_message({wire.data(), wire.size()}, offset, got, &error))
        << error;
    EXPECT_EQ(got.from, m.from);
    EXPECT_EQ(got.to, m.to);
    EXPECT_EQ(got.tag, m.tag);
    ASSERT_EQ(got.data.size(), m.data.size());
    if (!m.data.empty())
      EXPECT_EQ(std::memcmp(got.data.data(), m.data.data(),
                            m.data.size() * sizeof(double)),
                0);
  }
  EXPECT_EQ(offset, wire.size());  // stream fully consumed
}

TEST(Codec, TruncatedBuffersAreRejectedWithDiagnostics) {
  std::vector<std::uint8_t> wire;
  encode_message(Message{1, 2, 3, {4.0, 5.0}}, wire);
  // Every proper prefix fails cleanly: false, offset untouched, an error
  // message that names the problem.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    std::size_t offset = 0;
    Message out;
    std::string error;
    EXPECT_FALSE(decode_message({wire.data(), len}, offset, out, &error))
        << "prefix " << len;
    EXPECT_EQ(offset, 0u);
    EXPECT_FALSE(error.empty());
  }
  // The full buffer still decodes.
  std::size_t offset = 0;
  Message out;
  EXPECT_TRUE(decode_message({wire.data(), wire.size()}, offset, out));
}

TEST(Codec, CorruptHeadersAreRejected) {
  auto corrupt_field = [](int field_index, std::int32_t value) {
    std::vector<std::uint8_t> wire;
    encode_message(Message{1, 2, 3, {4.0}}, wire);
    std::memcpy(wire.data() + 4 * field_index, &value, 4);
    std::size_t offset = 0;
    Message out;
    std::string error;
    const bool ok =
        decode_message({wire.data(), wire.size()}, offset, out, &error);
    if (!ok) EXPECT_EQ(offset, 0u);
    return ok;
  };
  EXPECT_FALSE(corrupt_field(0, -7));  // negative from
  EXPECT_FALSE(corrupt_field(1, -1));  // negative to
  EXPECT_FALSE(corrupt_field(3, -1));  // negative payload length
  // A count pointing far past the buffer is truncation, not a crash.
  EXPECT_FALSE(corrupt_field(3, 1 << 20));
  // A negative tag is legal — tags are opaque.
  EXPECT_TRUE(corrupt_field(2, -3));
}

// --- The fault-injection backend -------------------------------------------

TEST(Faulty, ParseFaultPlanAcceptsSpecsAndRejectsGarbage) {
  const FaultPlan plan = parse_fault_plan(
      "drop=0.05,dup=0.02,corrupt=0.01,reorder=0.1,delay=0.05,maxdelay=3,"
      "budget=4,seed=7,inner=threaded");
  EXPECT_DOUBLE_EQ(plan.drop, 0.05);
  EXPECT_DOUBLE_EQ(plan.duplicate, 0.02);
  EXPECT_DOUBLE_EQ(plan.corrupt, 0.01);
  EXPECT_DOUBLE_EQ(plan.reorder, 0.1);
  EXPECT_DOUBLE_EQ(plan.delay, 0.05);
  EXPECT_EQ(plan.max_delay_rounds, 3);
  EXPECT_EQ(plan.retransmit_budget, 4);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_EQ(plan.inner, TransportKind::kThreadedSerialized);
  EXPECT_TRUE(plan.any());
  EXPECT_FALSE(parse_fault_plan("").any());
  // "duplicate" and "retransmit" are accepted aliases.
  EXPECT_DOUBLE_EQ(parse_fault_plan("duplicate=0.5").duplicate, 0.5);
  EXPECT_EQ(parse_fault_plan("retransmit=3").retransmit_budget, 3);
  EXPECT_THROW(parse_fault_plan("drop=2.0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("drop=pigeons"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("gremlins=0.5"), std::invalid_argument);
  // Outcome rates are mutually exclusive slices of one draw: must sum <= 1.
  EXPECT_THROW(parse_fault_plan("drop=0.6,dup=0.6"), std::invalid_argument);
}

TEST(Faulty, FrameCodecRoundTripsAndDetectsEverySingleBitFlip) {
  const Message m{3, 7, 42, {1.5, -0.0, 1e300}};
  std::vector<std::uint8_t> wire;
  const std::size_t len = encode_frame(m, 9, wire);
  EXPECT_EQ(len, wire.size());
  EXPECT_EQ(len, 8u + static_cast<std::size_t>(message_wire_bytes(m)));
  std::size_t offset = 0;
  std::uint32_t seq = 0;
  Message out;
  std::string error;
  ASSERT_TRUE(decode_frame({wire.data(), wire.size()}, offset, seq, out,
                           &error))
      << error;
  EXPECT_EQ(offset, wire.size());
  EXPECT_EQ(seq, 9u);
  EXPECT_EQ(out.from, 3);
  EXPECT_EQ(out.to, 7);
  EXPECT_EQ(out.tag, 42);
  ASSERT_EQ(out.data.size(), m.data.size());
  EXPECT_EQ(std::memcmp(out.data.data(), m.data.data(),
                        m.data.size() * sizeof(double)),
            0);
  // Every single-bit flip anywhere in the frame — checksum, sequence
  // number, header, payload — is rejected, with the offset untouched.
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    std::vector<std::uint8_t> bad = wire;
    bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    offset = 0;
    EXPECT_FALSE(decode_frame({bad.data(), bad.size()}, offset, seq, out))
        << "bit " << bit;
    EXPECT_EQ(offset, 0u) << "bit " << bit;
  }
  // Every proper prefix is truncation, rejected cleanly.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    offset = 0;
    EXPECT_FALSE(decode_frame({wire.data(), cut}, offset, seq, out))
        << "prefix " << cut;
    EXPECT_EQ(offset, 0u);
  }
}

// A deterministic scripted exchange on a faulty runtime: every node
// posts to every other for `rounds` rounds, draining at each boundary.
struct FaultyRun {
  FaultStats stats;
  bool degraded = false;
  std::vector<Message> delivered;  // all inboxes, in drain order
};
FaultyRun scripted_faulty_run(const FaultPlan& plan, int rounds) {
  const int n = 4;
  Runtime rt(n, TransportKind::kFaulty, &plan);
  EXPECT_EQ(rt.transport_kind(), TransportKind::kFaulty);
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b) rt.connect(a, b);
  FaultyRun run;
  int tag = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int a = 0; a < n; ++a)
      for (int b = 0; b < n; ++b)
        if (a != b)
          rt.post(Message{a, b, tag++, {static_cast<double>(r), 1.0 * a}});
    rt.step();
    for (int v = 0; v < n; ++v) {
      std::vector<Message> inbox = rt.drain(v);
      run.delivered.insert(run.delivered.end(), inbox.begin(), inbox.end());
      rt.recycle(std::move(inbox));
    }
  }
  const FaultStats* stats = rt.fault_stats();
  EXPECT_NE(stats, nullptr);
  if (stats != nullptr) run.stats = *stats;
  run.degraded = rt.degraded();
  return run;
}

bool same_messages(const std::vector<Message>& a,
                   const std::vector<Message>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].from != b[i].from || a[i].to != b[i].to ||
        a[i].tag != b[i].tag || a[i].data != b[i].data)
      return false;
  }
  return true;
}

TEST(Faulty, SeededPlansReplayDeterministically) {
  FaultPlan plan;
  plan.drop = 0.2;
  plan.duplicate = 0.1;
  plan.corrupt = 0.1;
  plan.reorder = 0.2;
  plan.delay = 0.1;
  plan.seed = 42;
  const FaultyRun first = scripted_faulty_run(plan, 8);
  const FaultyRun second = scripted_faulty_run(plan, 8);
  // Same seed, same script: identical fault decisions, counters, and
  // delivered streams — the whole point of hash-addressed fault dice.
  EXPECT_EQ(first.stats.frames_posted, second.stats.frames_posted);
  EXPECT_EQ(first.stats.frames_dropped, second.stats.frames_dropped);
  EXPECT_EQ(first.stats.frames_duplicated, second.stats.frames_duplicated);
  EXPECT_EQ(first.stats.frames_corrupted, second.stats.frames_corrupted);
  EXPECT_EQ(first.stats.frames_delayed, second.stats.frames_delayed);
  EXPECT_EQ(first.stats.frames_reordered, second.stats.frames_reordered);
  EXPECT_EQ(first.stats.retransmits, second.stats.retransmits);
  EXPECT_EQ(first.stats.dup_dropped, second.stats.dup_dropped);
  EXPECT_EQ(first.stats.corrupt_dropped, second.stats.corrupt_dropped);
  EXPECT_EQ(first.stats.frames_lost, second.stats.frames_lost);
  EXPECT_TRUE(same_messages(first.delivered, second.delivered));
  // The plan actually fired, was fully masked, and nothing mis-decoded.
  EXPECT_GT(first.stats.retransmits, 0);
  EXPECT_EQ(first.stats.frames_lost, 0);
  EXPECT_EQ(first.stats.corrupt_undetected, 0);
  EXPECT_EQ(first.stats.frames_delivered, first.stats.frames_posted);
  EXPECT_FALSE(first.degraded);
  // And masked means: delivered exactly the fault-free stream.
  const FaultyRun clean = scripted_faulty_run(FaultPlan{}, 8);
  EXPECT_TRUE(same_messages(first.delivered, clean.delivered));
}

TEST(Faulty, CounterClosedForms) {
  // Duplication-only: the extra copy always arrives and is always
  // deduped by sequence number — dup_dropped == frames_duplicated, no
  // retransmit ever needed, everything delivered exactly once.
  FaultPlan dup_only;
  dup_only.duplicate = 1.0;
  const FaultyRun dup = scripted_faulty_run(dup_only, 5);
  EXPECT_EQ(dup.stats.frames_duplicated, dup.stats.frames_posted);
  EXPECT_EQ(dup.stats.dup_dropped, dup.stats.frames_duplicated);
  EXPECT_EQ(dup.stats.retransmits, 0);
  EXPECT_EQ(dup.stats.frames_delivered, dup.stats.frames_posted);
  EXPECT_EQ(dup.stats.frames_lost, 0);
  EXPECT_FALSE(dup.degraded);
  EXPECT_TRUE(same_messages(dup.delivered,
                            scripted_faulty_run(FaultPlan{}, 5).delivered));

  // Total blackout against budget b: every frame costs exactly b
  // retransmit attempts, then is declared lost; nothing is delivered and
  // the runtime is degraded.
  FaultPlan blackout;
  blackout.drop = 1.0;
  blackout.retransmit_budget = 3;
  const FaultyRun lost = scripted_faulty_run(blackout, 4);
  EXPECT_EQ(lost.stats.retransmits, lost.stats.frames_posted * 3);
  EXPECT_EQ(lost.stats.frames_lost, lost.stats.frames_posted);
  EXPECT_EQ(lost.stats.frames_delivered, 0);
  EXPECT_TRUE(lost.delivered.empty());
  EXPECT_TRUE(lost.degraded);

  // Conservation holds on every plan: delivered + lost == posted.
  for (const FaultyRun* run : {&dup, &lost})
    EXPECT_EQ(run->stats.frames_delivered + run->stats.frames_lost,
              run->stats.frames_posted);

  // Concrete fault-free backends expose no fault surface at all.
  for (TransportKind kind : kAllTransports) {
    Runtime rt(2, kind);
    EXPECT_EQ(rt.fault_stats(), nullptr);
    EXPECT_FALSE(rt.degraded());
  }
}

TEST(Faulty, RecoveryPathReusesRecycledBuffers) {
  // The free-list contract survives the recovery layer: a steady
  // drain/recycle loop under constant drop-and-retransmit hands back the
  // warm buffers — the retransmit machinery allocates nothing per round
  // once the manifests are warm.
  FaultPlan plan;
  plan.drop = 0.4;
  plan.seed = 9;
  Runtime rt(2, TransportKind::kFaulty, &plan);
  rt.connect(0, 1);
  const Message* slots[2] = {nullptr, nullptr};
  for (int cycle = 0; cycle < 2; ++cycle) {
    rt.post(Message{0, 1, cycle, {1.0, 2.0, 3.0}});
    rt.step();
    std::vector<Message> inbox = rt.drain(1);
    ASSERT_EQ(inbox.size(), 1u);
    slots[cycle] = inbox.data();
    rt.recycle(std::move(inbox));
  }
  for (int cycle = 2; cycle < 8; ++cycle) {
    rt.post(Message{0, 1, cycle, {9.0, 8.0, 7.0}});
    rt.step();
    std::vector<Message> inbox = rt.drain(1);
    ASSERT_EQ(inbox.size(), 1u);
    EXPECT_TRUE(inbox.data() == slots[0] || inbox.data() == slots[1])
        << "cycle " << cycle;
    EXPECT_EQ(inbox[0].tag, cycle);
    rt.recycle(std::move(inbox));
  }
  ASSERT_NE(rt.fault_stats(), nullptr);
  EXPECT_GT(rt.fault_stats()->retransmits, 0);  // recovery really ran
  EXPECT_EQ(rt.fault_stats()->frames_lost, 0);
}

TEST(ConflictGraphs, AdjacencyMatchesConflictPredicate) {
  const Problem p = small_tree_problem(5, 24, 2, 12);
  std::vector<InstanceId> all(static_cast<std::size_t>(p.num_instances()));
  for (InstanceId i = 0; i < p.num_instances(); ++i)
    all[static_cast<std::size_t>(i)] = i;
  const ConflictGraph graph(p, {all.data(), all.size()});
  ASSERT_EQ(graph.size(), p.num_instances());
  for (int a = 0; a < graph.size(); ++a) {
    for (int b = 0; b < graph.size(); ++b) {
      if (a == b) continue;
      const bool adjacent =
          std::find(graph.neighbors(a).begin(), graph.neighbors(a).end(), b) !=
          graph.neighbors(a).end();
      EXPECT_EQ(adjacent, p.conflicting(graph.instance(a), graph.instance(b)))
          << a << " vs " << b;
    }
  }
}

TEST(LubyProtocol, MessageLevelRunProducesValidMis) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = small_tree_problem(seed + 20, 24, 2, 14);
    std::vector<InstanceId> all(static_cast<std::size_t>(p.num_instances()));
    for (InstanceId i = 0; i < p.num_instances(); ++i)
      all[static_cast<std::size_t>(i)] = i;
    const ProtocolResult result =
        run_luby_protocol(p, {all.data(), all.size()}, seed);
    // The explicit graph is only the validity oracle; the protocol ran
    // on rendezvous-discovered neighborhoods.
    const ConflictGraph graph(p, {all.data(), all.size()});
    EXPECT_TRUE(graph.is_maximal_independent_set(result.selected));
    // 2 discovery rounds + 2 synchronous rounds per Luby iteration.
    EXPECT_EQ(result.discovery_rounds, 2);
    EXPECT_GE(result.rounds, result.discovery_rounds + 2);
    EXPECT_EQ((result.rounds - result.discovery_rounds) % 2, 0);
    EXPECT_GT(result.discovery_messages, 0);
    EXPECT_GT(result.messages, result.discovery_messages);
    EXPECT_GT(result.bytes, 0);
  }
}

TEST(LubyProtocol, IsolatedVerticesSelectImmediately) {
  // A problem where no instances conflict: everyone joins the MIS in one
  // iteration.  The only traffic is the discovery registrations (learning
  // that the neighborhood is empty is itself a protocol act); the Luby
  // rounds stay silent.
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(7));
  Problem p(7, std::move(networks));
  p.add_demand(0, 2, 1.0);
  p.add_demand(2, 4, 1.0);
  p.add_demand(4, 6, 1.0);
  p.finalize();
  std::vector<InstanceId> all{0, 1, 2};
  const ConflictGraph graph(p, {all.data(), all.size()});
  EXPECT_EQ(graph.num_edges(), 0);
  const ProtocolResult result =
      run_luby_protocol(p, {all.data(), all.size()}, 1);
  EXPECT_EQ(result.selected.size(), 3u);
  EXPECT_EQ(result.rounds, 4);  // 2 discovery + 2 Luby
  EXPECT_EQ(result.discovery_rounds, 2);
  // Each demand registers with its 2 path-edge owners and its demand
  // owner; singleton buckets draw no replies and Luby sends nothing.
  EXPECT_EQ(result.messages, result.discovery_messages);
  EXPECT_EQ(result.discovery_messages, 9);
}

TEST(LubyProtocol, BitIdenticalOnEveryTransport) {
  // The whole message-level Luby run — discovery plus the iteration loop
  // — must come out identical on every backend: same selection, same
  // counters, and on the serialized wires every charged message really
  // crossed the codec.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Problem p = small_tree_problem(seed + 40, 24, 2, 14);
    std::vector<InstanceId> all(static_cast<std::size_t>(p.num_instances()));
    for (InstanceId i = 0; i < p.num_instances(); ++i)
      all[static_cast<std::size_t>(i)] = i;
    const ProtocolResult ref =
        run_luby_protocol(p, {all.data(), all.size()}, seed,
                          TransportKind::kInProc);
    EXPECT_EQ(ref.codec_encoded, 0);
    EXPECT_EQ(ref.codec_decoded, 0);
    for (TransportKind kind : {TransportKind::kSerialized,
                               TransportKind::kThreadedSerialized}) {
      SCOPED_TRACE(to_string(kind));
      const ProtocolResult got =
          run_luby_protocol(p, {all.data(), all.size()}, seed, kind);
      EXPECT_EQ(got.transport, kind);
      ASSERT_EQ(got.selected, ref.selected);
      EXPECT_EQ(got.rounds, ref.rounds);
      EXPECT_EQ(got.messages, ref.messages);
      EXPECT_EQ(got.bytes, ref.bytes);
      EXPECT_EQ(got.discovery_rounds, ref.discovery_rounds);
      EXPECT_EQ(got.discovery_messages, ref.discovery_messages);
      EXPECT_EQ(got.discovery_bytes, ref.discovery_bytes);
      // Every message encoded at post, every message decoded at drain.
      EXPECT_EQ(got.codec_encoded, got.messages);
      EXPECT_EQ(got.codec_decoded, got.messages);
    }
  }
}

}  // namespace
}  // namespace treesched
