#include "dist/runtime.hpp"

#include <gtest/gtest.h>

#include "dist/conflict_graph.hpp"
#include "dist/luby_mis.hpp"
#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::small_tree_problem;

TEST(Runtime, MessagesDeliveredAtRoundBoundary) {
  Runtime rt(3);
  rt.connect(0, 1);
  rt.connect(1, 2);
  rt.post(Message{0, 1, 7, {1.5}});
  // Not visible before step().
  EXPECT_TRUE(rt.drain(1).empty());
  rt.step();
  const auto inbox = rt.drain(1);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].from, 0);
  EXPECT_EQ(inbox[0].tag, 7);
  EXPECT_DOUBLE_EQ(inbox[0].data[0], 1.5);
  // Drain empties the box.
  EXPECT_TRUE(rt.drain(1).empty());
}

TEST(Runtime, CountsRoundsMessagesBytes) {
  Runtime rt(2);
  rt.connect(0, 1);
  rt.post(Message{0, 1, 0, {1.0, 2.0}});
  rt.post(Message{1, 0, 0, {}});
  rt.step();
  rt.step();
  EXPECT_EQ(rt.round(), 2);
  EXPECT_EQ(rt.messages_sent(), 2);
  EXPECT_EQ(rt.bytes_sent(), (16 + 16) + 16);
}

TEST(Runtime, ChannelsAreSymmetricAndIdempotent) {
  Runtime rt(4);
  rt.connect(2, 3);
  rt.connect(3, 2);
  EXPECT_TRUE(rt.connected(2, 3));
  EXPECT_TRUE(rt.connected(3, 2));
  EXPECT_FALSE(rt.connected(0, 3));
  EXPECT_EQ(rt.channels(2).size(), 1u);
  EXPECT_EQ(rt.channels(3).size(), 1u);
}

TEST(ConflictGraphs, AdjacencyMatchesConflictPredicate) {
  const Problem p = small_tree_problem(5, 24, 2, 12);
  std::vector<InstanceId> all(static_cast<std::size_t>(p.num_instances()));
  for (InstanceId i = 0; i < p.num_instances(); ++i)
    all[static_cast<std::size_t>(i)] = i;
  const ConflictGraph graph(p, {all.data(), all.size()});
  ASSERT_EQ(graph.size(), p.num_instances());
  for (int a = 0; a < graph.size(); ++a) {
    for (int b = 0; b < graph.size(); ++b) {
      if (a == b) continue;
      const bool adjacent =
          std::find(graph.neighbors(a).begin(), graph.neighbors(a).end(), b) !=
          graph.neighbors(a).end();
      EXPECT_EQ(adjacent, p.conflicting(graph.instance(a), graph.instance(b)))
          << a << " vs " << b;
    }
  }
}

TEST(LubyProtocol, MessageLevelRunProducesValidMis) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = small_tree_problem(seed + 20, 24, 2, 14);
    std::vector<InstanceId> all(static_cast<std::size_t>(p.num_instances()));
    for (InstanceId i = 0; i < p.num_instances(); ++i)
      all[static_cast<std::size_t>(i)] = i;
    const ProtocolResult result =
        run_luby_protocol(p, {all.data(), all.size()}, seed);
    // The explicit graph is only the validity oracle; the protocol ran
    // on rendezvous-discovered neighborhoods.
    const ConflictGraph graph(p, {all.data(), all.size()});
    EXPECT_TRUE(graph.is_maximal_independent_set(result.selected));
    // 2 discovery rounds + 2 synchronous rounds per Luby iteration.
    EXPECT_EQ(result.discovery_rounds, 2);
    EXPECT_GE(result.rounds, result.discovery_rounds + 2);
    EXPECT_EQ((result.rounds - result.discovery_rounds) % 2, 0);
    EXPECT_GT(result.discovery_messages, 0);
    EXPECT_GT(result.messages, result.discovery_messages);
    EXPECT_GT(result.bytes, 0);
  }
}

TEST(LubyProtocol, IsolatedVerticesSelectImmediately) {
  // A problem where no instances conflict: everyone joins the MIS in one
  // iteration.  The only traffic is the discovery registrations (learning
  // that the neighborhood is empty is itself a protocol act); the Luby
  // rounds stay silent.
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(7));
  Problem p(7, std::move(networks));
  p.add_demand(0, 2, 1.0);
  p.add_demand(2, 4, 1.0);
  p.add_demand(4, 6, 1.0);
  p.finalize();
  std::vector<InstanceId> all{0, 1, 2};
  const ConflictGraph graph(p, {all.data(), all.size()});
  EXPECT_EQ(graph.num_edges(), 0);
  const ProtocolResult result =
      run_luby_protocol(p, {all.data(), all.size()}, 1);
  EXPECT_EQ(result.selected.size(), 3u);
  EXPECT_EQ(result.rounds, 4);  // 2 discovery + 2 Luby
  EXPECT_EQ(result.discovery_rounds, 2);
  // Each demand registers with its 2 path-edge owners and its demand
  // owner; singleton buckets draw no replies and Luby sends nothing.
  EXPECT_EQ(result.messages, result.discovery_messages);
  EXPECT_EQ(result.discovery_messages, 9);
}

}  // namespace
}  // namespace treesched
