// Fuzz-style cross-checks: randomized structures validated against
// independent brute-force implementations, plus adversarial inputs that
// stress the framework's worst-case machinery (exponential profit
// ladders maximize kill-chain lengths; single-edge hotspots maximize
// conflict density).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include <queue>

#include "common/rng.hpp"
#include "decomp/layered.hpp"
#include "dist/luby_mis.hpp"
#include "dist/protocol_scheduler.hpp"
#include "dist/transport.hpp"
#include "dist/scheduler.hpp"
#include "exact/branch_and_bound.hpp"
#include "framework/two_phase.hpp"
#include "online/event_stream.hpp"
#include "online/journal.hpp"
#include "online/online_scheduler.hpp"
#include "online/snapshot.hpp"
#include "test_util.hpp"
#include "workload/scenario.hpp"
#include "workload/tree_gen.hpp"

namespace treesched {
namespace {

using testutil::require_feasible;

// Independent BFS distance for cross-checking LCA-based dist().
int bfs_dist(const TreeNetwork& t, VertexId from, VertexId to) {
  std::vector<int> dist(static_cast<std::size_t>(t.num_vertices()), -1);
  std::queue<VertexId> queue;
  queue.push(from);
  dist[static_cast<std::size_t>(from)] = 0;
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop();
    if (v == to) return dist[static_cast<std::size_t>(v)];
    for (const auto& adj : t.neighbors(v)) {
      if (dist[static_cast<std::size_t>(adj.to)] < 0) {
        dist[static_cast<std::size_t>(adj.to)] =
            dist[static_cast<std::size_t>(v)] + 1;
        queue.push(adj.to);
      }
    }
  }
  return -1;
}

TEST(Fuzz, DistMatchesBfsOnRandomTrees) {
  Rng rng(404);
  for (int round = 0; round < 10; ++round) {
    const TreeShape shape =
        kAllTreeShapes[rng.next_below(std::size(kAllTreeShapes))];
    const auto n = static_cast<VertexId>(rng.uniform_int(2, 80));
    const TreeNetwork t = make_tree(shape, n, rng);
    for (int q = 0; q < 20; ++q) {
      const auto u = static_cast<VertexId>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      const auto v = static_cast<VertexId>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      ASSERT_EQ(t.dist(u, v), bfs_dist(t, u, v))
          << to_string(shape) << " n=" << n << " " << u << "~" << v;
    }
  }
}

TEST(Fuzz, PathVerticesAreExactlyTheOnPathSet) {
  Rng rng(405);
  const TreeNetwork t = make_tree(TreeShape::kRandomAttachment, 50, rng);
  for (int q = 0; q < 30; ++q) {
    const auto u = static_cast<VertexId>(rng.next_below(50));
    const auto v = static_cast<VertexId>(rng.next_below(50));
    const auto path = t.path_vertices(u, v);
    std::vector<char> on(50, 0);
    for (VertexId x : path) on[static_cast<std::size_t>(x)] = 1;
    for (VertexId x = 0; x < 50; ++x)
      ASSERT_EQ(static_cast<bool>(on[static_cast<std::size_t>(x)]),
                t.on_path(x, u, v))
          << x << " on " << u << "~" << v;
  }
}

TEST(Fuzz, ExponentialProfitLadderMaximizesKillChains) {
  // Demands over one shared path with profits 1, 2, 4, ..., 2^k: the
  // adversarial input for Claim 5.2 — every kill chain is as long as the
  // bound permits.  The engine must stay within the step budget and the
  // solution must still meet the theorem bound (trivially: the largest
  // profit alone dominates half the total).
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(8));
  Problem p(8, std::move(networks));
  const int k = 12;
  for (int i = 0; i <= k; ++i)
    p.add_demand(0, 7, std::pow(2.0, i));
  p.finalize();
  const LayeredPlan plan = build_line_layered_plan(p);
  SolverConfig config;
  config.epsilon = 0.1;
  const SolveResult run = solve_with_plan(p, plan, config);
  require_feasible(p, run.solution);
  // All demands conflict, so exactly one is schedulable; the engine must
  // keep the most profitable one (everything else is killed upward).
  ASSERT_EQ(run.solution.selected.size(), 1u);
  EXPECT_DOUBLE_EQ(run.stats.profit, std::pow(2.0, k));
  // Kill chains of length <= 1 + log2(pmax/pmin) = 1 + k.
  EXPECT_LE(run.stats.max_steps_in_stage, k + 3);
}

TEST(Fuzz, HotspotStarConflictsStayFeasible) {
  // A star where every demand crosses the hub: maximum conflict density.
  Rng rng(406);
  std::vector<TreeNetwork> networks;
  networks.push_back(make_tree(TreeShape::kStar, 30, rng));
  Problem p(30, std::move(networks));
  for (int i = 0; i < 25; ++i) {
    const auto u = static_cast<VertexId>(rng.uniform_int(1, 29));
    VertexId v;
    do {
      v = static_cast<VertexId>(rng.uniform_int(1, 29));
    } while (v == u);
    p.add_demand(u, v, rng.uniform(1.0, 50.0));
  }
  p.finalize();
  DistOptions options;
  const DistResult run = solve_tree_unit_distributed(p, options);
  require_feasible(p, run.solution);
  // Every path uses two hub edges; selected paths must be edge-disjoint.
  EXPECT_GE(run.solution.selected.size(), 1u);
  EXPECT_LE(run.solution.selected.size(), 14u);  // 29 edges / 2 per path
}

TEST(Fuzz, RandomProblemsSolveUnderEveryPlan) {
  // Cross product of random problems and every plan builder: the engine
  // must produce feasible solutions and monotone satisfaction regardless.
  Rng rng(407);
  for (int round = 0; round < 6; ++round) {
    const Problem p = testutil::small_tree_problem(
        900 + static_cast<std::uint64_t>(round), 24, 2, 12,
        round % 2 ? HeightLaw::kBimodal : HeightLaw::kUnit);
    for (DecompKind kind : {DecompKind::kRootFixing, DecompKind::kBalancing,
                            DecompKind::kIdeal}) {
      const LayeredPlan plan = build_tree_layered_plan(p, kind);
      SolverConfig config;
      config.rule = p.unit_height() ? RaiseRuleKind::kUnit
                                    : RaiseRuleKind::kNarrow;
      const SolveResult run = p.unit_height()
                                  ? solve_with_plan(p, plan, config)
                                  : solve_height_split(p, plan, config);
      require_feasible(p, run.solution);
      EXPECT_GE(run.stats.lambda_observed, 1.0 - config.epsilon - 1e-6)
          << to_string(kind) << " round " << round;
    }
  }
}

// The exact two-pass round accounting identity of the message-level
// protocol: rounds = discovery + sum_pass [tuples*(2L+1) + tuples]
// + combine_rounds, where combine_rounds is the better-of converge-cast
// of a genuinely two-pass run and zero otherwise.
void require_protocol_identity(const Problem& p,
                               const ProtocolRunResult& run) {
  std::int64_t pass_rounds = 0;
  for (const ProtocolPass& pass : run.passes) {
    ASSERT_EQ(pass.tuples, static_cast<std::int64_t>(pass.epochs) *
                               pass.stages_per_epoch * pass.steps_per_stage);
    ASSERT_EQ(pass.rounds, pass.tuples * (2 * run.luby_budget + 1) +
                               pass.tuples + pass.mis_retry_rounds);
    pass_rounds += pass.rounds;
  }
  ASSERT_EQ(run.combine_rounds,
            run.passes.size() == 2 ? better_of_convergecast_rounds(p) : 0);
  ASSERT_EQ(run.rounds,
            run.discovery_rounds + pass_rounds + run.combine_rounds);
  ASSERT_EQ(run.discovery_bytes,
            run.discovery_registration_bytes + run.discovery_reply_bytes);
}

TEST(Fuzz, ProtocolOnRandomHeightsTreesAndLines) {
  // Random small instances through the message-level wide/narrow
  // protocol: feasibility, the two-pass accounting identity, and the
  // reported ratio bound certifying the exact B&B optimum.  Uniform
  // capacities here — the wide/narrow price factors assume them; the
  // non-uniform regimes are the next test's.
  Rng rng(408);
  const HeightLaw laws[] = {HeightLaw::kUnit, HeightLaw::kBimodal,
                            HeightLaw::kUniformRange,
                            HeightLaw::kNarrowOnly};
  for (int round = 0; round < 6; ++round) {
    const HeightLaw heights = laws[rng.next_below(std::size(laws))];
    ProtocolOptions options;
    options.epsilon = 0.35;  // keeps the narrow stage count tractable
    options.seed = 900 + static_cast<std::uint64_t>(round);
    const bool tree = round % 2 == 0;
    const Problem p = [&]() -> Problem {
      if (tree) {
        TreeScenarioSpec spec;
        spec.num_vertices = static_cast<VertexId>(rng.uniform_int(16, 32));
        spec.num_networks = 2;
        spec.demands.num_demands = static_cast<int>(rng.uniform_int(8, 12));
        spec.demands.heights = heights;
        spec.demands.height_min = 0.4;
        spec.demands.profit_max = rng.uniform(10.0, 80.0);
        spec.seed = options.seed;
        return make_tree_problem(spec);
      }
      LineScenarioSpec spec;
      spec.line.num_slots = static_cast<int>(rng.uniform_int(16, 32));
      spec.line.num_resources = 2;
      spec.line.num_demands = static_cast<int>(rng.uniform_int(6, 8));
      spec.line.max_proc_time = spec.line.num_slots / 3;
      spec.line.heights = heights;
      spec.line.height_min = 0.4;
      spec.line.profit_max = rng.uniform(10.0, 80.0);
      spec.seed = options.seed;
      return make_line_problem(spec);
    }();
    const ProtocolDistResult run = tree
                                       ? run_tree_arbitrary_protocol(p, options)
                                       : run_line_arbitrary_protocol(p, options);
    const Profit profit = require_feasible(p, run.run.solution);
    require_protocol_identity(p, run.run);
    EXPECT_TRUE(run.run.mis_ok) << "round " << round;
    EXPECT_TRUE(run.run.schedule_ok) << "round " << round;
    const Profit opt = testutil::exact_opt(p);
    EXPECT_GE(profit * run.ratio_bound, opt - 1e-6)
        << "round " << round << " heights=" << to_string(heights);
  }
}

TEST(Fuzz, ProtocolOnRandomNonuniformCapacities) {
  // Random capacity profiles through the non-uniform protocol wrapper:
  // the spread-scaled bound must still certify the exact optimum, for
  // both the unit-height and the all-narrow regime.
  Rng rng(409);
  const CapacityLaw laws[] = {CapacityLaw::kTwoClass,
                              CapacityLaw::kPowerClasses,
                              CapacityLaw::kHotspot};
  for (int round = 0; round < 6; ++round) {
    TreeScenarioSpec spec;
    spec.num_vertices = static_cast<VertexId>(rng.uniform_int(16, 30));
    spec.num_networks = 2;
    spec.demands.num_demands = static_cast<int>(rng.uniform_int(7, 10));
    const bool narrow = round % 2 == 1;
    spec.demands.heights = narrow ? HeightLaw::kNarrowOnly : HeightLaw::kUnit;
    spec.demands.height_min = 0.4;
    spec.demands.profit_max = rng.uniform(10.0, 60.0);
    spec.capacities = laws[rng.next_below(std::size(laws))];
    spec.capacity_base = 1.0;
    spec.capacity_spread = rng.chance(0.5) ? 2.0 : 4.0;
    spec.seed = 950 + static_cast<std::uint64_t>(round);
    const Problem p = make_tree_problem(spec);
    if (narrow && !all_instances_narrow(p)) continue;
    ProtocolOptions options;
    options.epsilon = 0.35;
    options.seed = spec.seed;
    const ProtocolDistResult run = run_nonuniform_protocol(p, options);
    const Profit profit = require_feasible(p, run.run.solution);
    require_protocol_identity(p, run.run);
    const Profit opt = testutil::exact_opt(p);
    EXPECT_GE(profit * run.ratio_bound, opt - 1e-6)
        << "round " << round << " law=" << to_string(spec.capacities)
        << " spread=" << spec.capacity_spread;
  }
}

TEST(Fuzz, AdversarialFrontierShrinkAgreesAcrossAllEnginePaths) {
  // ProtocolLubyMis with a Luby budget of 1 is a deliberately *weak* MIS
  // oracle: each step decides only the per-clique (draw, id) minima and
  // leaves everyone else undecided, so the unsatisfied frontier shrinks
  // by a trickle across many steps *mid-stage* — the adversarial regime
  // for the frontier compaction, the flat component logs and the
  // forest's satisfied-component filter (components drain at wildly
  // different rates, so late steps see mostly-finished epochs).  The
  // oracle's randomness is addressed per instance, so every engine path
  // — central, incremental serial, parallel with the forest, parallel
  // with the legacy recompute — must still agree bit for bit.  The weak
  // budget also starves steps constantly, so the adaptive budget retry
  // fires throughout — mis_retries must agree across the paths too (the
  // parallel merge takes the per-component max per step).
  std::int64_t total_retries = 0;
  for (int round = 0; round < 4; ++round) {
    const auto seed = 1100 + static_cast<std::uint64_t>(round);
    const Problem p = testutil::small_tree_problem(
        seed, 26, 2, 14,
        round % 2 ? HeightLaw::kBimodal : HeightLaw::kUnit);
    const LayeredPlan plan = build_tree_layered_plan(
        p, round % 2 ? DecompKind::kRootFixing : DecompKind::kIdeal);
    SolverConfig config;
    config.keep_stack = true;
    config.lockstep = round >= 2;  // budget-short stages on these rounds
    config.rule = p.unit_height() ? RaiseRuleKind::kUnit
                                  : RaiseRuleKind::kNarrow;
    config.engine = EngineImpl::kCentralReference;
    ProtocolLubyMis central_oracle(p, seed, /*luby_budget=*/1);
    const SolveResult ref = solve_with_plan(p, plan, config, &central_oracle);
    require_feasible(p, ref.solution);
    total_retries += ref.stats.mis_retries;
    for (const int threads : {1, 4}) {
      for (const bool forest : {true, false}) {
        SolverConfig incremental = config;
        incremental.engine = EngineImpl::kIncremental;
        incremental.threads = threads;
        incremental.use_component_forest = forest;
        ProtocolLubyMis oracle(p, seed, /*luby_budget=*/1);
        const SolveResult got = solve_with_plan(p, plan, incremental,
                                                &oracle);
        const std::string what = "round " + std::to_string(round) +
                                 " threads=" + std::to_string(threads) +
                                 " forest=" + std::to_string(forest);
        ASSERT_EQ(ref.solution.selected, got.solution.selected) << what;
        ASSERT_EQ(ref.raise_stack, got.raise_stack) << what;
        ASSERT_EQ(ref.stats.steps, got.stats.steps) << what;
        ASSERT_EQ(ref.stats.raises, got.stats.raises) << what;
        // Doubles with ==: bit-identical, not merely close.
        ASSERT_EQ(ref.stats.dual_objective, got.stats.dual_objective)
            << what;
        ASSERT_EQ(ref.stats.lambda_observed, got.stats.lambda_observed)
            << what;
        ASSERT_EQ(ref.stats.lockstep_ok, got.stats.lockstep_ok) << what;
        ASSERT_EQ(ref.stats.mis_ok, got.stats.mis_ok) << what;
        ASSERT_EQ(ref.stats.mis_retries, got.stats.mis_retries) << what;
      }
    }
  }
  // The budget-1 oracle must actually have exercised the retry path.
  EXPECT_GT(total_retries, 0);
}

TEST(Fuzz, MessageCodecRoundTripsRandomStreams) {
  // Random message streams through the wire codec of the serialized
  // transports: arbitrary tags, endpoints and payload lengths, payload
  // doubles drawn as raw 64-bit patterns (so NaNs, infinities, denormals
  // and -0.0 all occur).  Every decode must reproduce the source message
  // bit for bit, consume exactly message_wire_bytes of the stream, and a
  // re-encode of the decoded message must reproduce the consumed bytes.
  Rng rng(410);
  for (int round = 0; round < 20; ++round) {
    std::vector<Message> batch;
    std::vector<std::uint8_t> wire;
    const int count = static_cast<int>(rng.uniform_int(1, 40));
    for (int i = 0; i < count; ++i) {
      Message m;
      m.from = static_cast<int>(rng.next_below(1u << 20));
      m.to = static_cast<int>(rng.next_below(1u << 20));
      m.tag = static_cast<int>(rng.uniform_int(-100, 100));
      const int len = static_cast<int>(rng.uniform_int(0, 12));
      for (int d = 0; d < len; ++d) {
        const std::uint64_t bits = rng.next();
        double value;
        std::memcpy(&value, &bits, sizeof value);
        m.data.push_back(value);
      }
      EXPECT_EQ(encode_message(m, wire),
                static_cast<std::size_t>(message_wire_bytes(m)));
      batch.push_back(std::move(m));
    }
    std::size_t offset = 0;
    Message out;  // reused across decodes, like the transports do
    for (const Message& m : batch) {
      const std::size_t before = offset;
      std::string error;
      ASSERT_TRUE(
          decode_message({wire.data(), wire.size()}, offset, out, &error))
          << "round " << round << ": " << error;
      ASSERT_EQ(offset - before,
                static_cast<std::size_t>(message_wire_bytes(m)));
      ASSERT_EQ(out.from, m.from);
      ASSERT_EQ(out.to, m.to);
      ASSERT_EQ(out.tag, m.tag);
      ASSERT_EQ(out.data.size(), m.data.size());
      if (!m.data.empty())
        ASSERT_EQ(std::memcmp(out.data.data(), m.data.data(),
                              m.data.size() * sizeof(double)),
                  0);
      // decode(encode(m)) == m implies encode(decode(bytes)) == bytes.
      std::vector<std::uint8_t> again;
      encode_message(out, again);
      ASSERT_EQ(std::memcmp(again.data(), wire.data() + before,
                            again.size()),
                0);
    }
    ASSERT_EQ(offset, wire.size());
  }
}

TEST(Fuzz, MessageCodecSurvivesTruncationAndGarbage) {
  // Adversarial buffers: random truncations of valid streams and outright
  // random bytes.  decode_message must never crash, never read out of
  // bounds (the CI sanitizer job runs this under ASan/UBSan), and on
  // failure must leave the offset untouched and explain itself.
  Rng rng(411);
  for (int round = 0; round < 30; ++round) {
    std::vector<std::uint8_t> wire;
    const int count = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < count; ++i) {
      Message m{static_cast<int>(rng.next_below(100)),
                static_cast<int>(rng.next_below(100)),
                static_cast<int>(rng.next_below(16)), {}};
      const int len = static_cast<int>(rng.uniform_int(0, 6));
      for (int d = 0; d < len; ++d) m.data.push_back(rng.uniform());
      encode_message(m, wire);
    }
    // Truncate at a random point strictly inside the last message.
    const std::size_t cut =
        wire.size() - 1 - rng.next_below(std::min<std::uint64_t>(
                              wire.size(), 24));
    std::size_t offset = 0;
    Message out;
    std::string error;
    while (decode_message({wire.data(), cut}, offset, out, &error)) {
    }
    EXPECT_FALSE(error.empty()) << "round " << round;
    EXPECT_LE(offset, cut);
    const std::size_t failed_at = offset;
    // A failed decode must not move the cursor.
    EXPECT_FALSE(decode_message({wire.data(), cut}, offset, out));
    EXPECT_EQ(offset, failed_at);

    // Pure garbage: random bytes, random length.  Decoding loops to the
    // end or stops at a rejection — either way cleanly.
    std::vector<std::uint8_t> garbage(rng.next_below(64));
    for (auto& b : garbage)
      b = static_cast<std::uint8_t>(rng.next_below(256));
    offset = 0;
    while (offset < garbage.size() &&
           decode_message({garbage.data(), garbage.size()}, offset, out)) {
      ASSERT_LE(offset, garbage.size());
    }
  }
}

TEST(Fuzz, ProtocolTransportInvarianceOnRandomInstances) {
  // Random problems through the full wide/narrow protocol on each
  // backend: the serialized wires must reproduce the in-proc run's
  // selection and counters exactly while pushing every message through
  // the codec.
  Rng rng(412);
  for (int round = 0; round < 3; ++round) {
    TreeScenarioSpec spec;
    spec.num_vertices = static_cast<VertexId>(rng.uniform_int(16, 28));
    spec.num_networks = 2;
    spec.demands.num_demands = static_cast<int>(rng.uniform_int(8, 12));
    spec.demands.heights = round == 0 ? HeightLaw::kUnit : HeightLaw::kBimodal;
    spec.demands.height_min = 0.4;
    spec.demands.profit_max = rng.uniform(10.0, 60.0);
    spec.seed = 1200 + static_cast<std::uint64_t>(round);
    const Problem p = make_tree_problem(spec);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    ProtocolOptions options;
    options.epsilon = 0.35;
    options.seed = spec.seed;
    options.keep_stack = true;
    options.transport = TransportKind::kInProc;
    const ProtocolRunResult ref = run_height_split_protocol(p, plan, options);
    for (const TransportKind kind : {TransportKind::kSerialized,
                                     TransportKind::kThreadedSerialized}) {
      options.transport = kind;
      const ProtocolRunResult got =
          run_height_split_protocol(p, plan, options);
      const std::string what = "round " + std::to_string(round) +
                               " transport=" + to_string(kind);
      ASSERT_EQ(got.solution.selected, ref.solution.selected) << what;
      ASSERT_EQ(got.raise_stack, ref.raise_stack) << what;
      ASSERT_EQ(got.lambda_observed, ref.lambda_observed) << what;
      ASSERT_EQ(got.rounds, ref.rounds) << what;
      ASSERT_EQ(got.messages, ref.messages) << what;
      ASSERT_EQ(got.bytes, ref.bytes) << what;
      ASSERT_EQ(got.codec_encoded, got.messages) << what;
      ASSERT_EQ(got.codec_decoded, got.messages) << what;
    }
  }
}

// Field-by-field == comparison of two protocol runs (the masked-fault
// bit-identity contract: results AND logical counters).
void require_same_protocol_run(const ProtocolRunResult& ref,
                               const ProtocolRunResult& got,
                               const std::string& what) {
  ASSERT_EQ(got.solution.selected, ref.solution.selected) << what;
  ASSERT_EQ(got.raise_stack, ref.raise_stack) << what;
  ASSERT_EQ(got.lambda_observed, ref.lambda_observed) << what;
  ASSERT_EQ(got.rounds, ref.rounds) << what;
  ASSERT_EQ(got.messages, ref.messages) << what;
  ASSERT_EQ(got.bytes, ref.bytes) << what;
  ASSERT_EQ(got.mis_retries, ref.mis_retries) << what;
  ASSERT_EQ(got.passes.size(), ref.passes.size()) << what;
  for (std::size_t i = 0; i < ref.passes.size(); ++i) {
    ASSERT_EQ(got.passes[i].final_lhs, ref.passes[i].final_lhs) << what;
    ASSERT_EQ(got.passes[i].lambda_observed, ref.passes[i].lambda_observed)
        << what;
  }
}

// Shared scenario of the fault-injection arms below.
Problem fault_fuzz_problem(std::uint64_t seed, Rng& rng) {
  TreeScenarioSpec spec;
  spec.num_vertices = static_cast<VertexId>(rng.uniform_int(16, 28));
  spec.num_networks = 2;
  spec.demands.num_demands = static_cast<int>(rng.uniform_int(8, 12));
  spec.demands.heights = seed % 2 ? HeightLaw::kBimodal : HeightLaw::kUnit;
  spec.demands.height_min = 0.4;
  spec.demands.profit_max = rng.uniform(10.0, 60.0);
  spec.seed = seed;
  return make_tree_problem(spec);
}

TEST(Fuzz, MaskedFaultPlansAreBitIdenticalToFaultFreeRuns) {
  // Random fault plans at rates the retransmit budget masks w.h.p.
  // (loss needs budget+1 consecutive bad dice per frame): the kFaulty
  // recovery layer — CRC-checked, sequence-numbered frames, dedup,
  // manifest-ordered reassembly, in-barrier retransmit — must reproduce
  // the fault-free run bit for bit: selection, stacks, per-instance
  // final LHS, lambda, and every logical counter (rounds/messages/bytes
  // are charged at post(), before the fault dice roll).
  Rng rng(413);
  std::int64_t total_recoveries = 0;
  for (int round = 0; round < 4; ++round) {
    const auto seed = 1300 + static_cast<std::uint64_t>(round);
    const Problem p = fault_fuzz_problem(seed, rng);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    ProtocolOptions options;
    options.epsilon = 0.35;
    options.seed = seed;
    options.keep_stack = true;
    options.transport = TransportKind::kSerialized;
    const ProtocolRunResult ref = run_height_split_protocol(p, plan, options);

    options.faults.drop = rng.uniform(0.0, 0.15);
    options.faults.duplicate = rng.uniform(0.0, 0.10);
    options.faults.corrupt = rng.uniform(0.0, 0.05);
    options.faults.reorder = rng.uniform(0.0, 0.30);
    options.faults.delay = rng.uniform(0.0, 0.10);
    options.faults.retransmit_budget = 16;
    options.faults.seed = seed;
    const ProtocolRunResult got = run_height_split_protocol(p, plan, options);
    const std::string what = "round " + std::to_string(round);
    ASSERT_FALSE(got.degraded) << what;
    ASSERT_TRUE(got.certificate_ok) << what;
    require_same_protocol_run(ref, got, what);
    ASSERT_EQ(got.fault.frames_lost, 0) << what;
    ASSERT_EQ(got.fault.corrupt_undetected, 0) << what;
    ASSERT_EQ(got.fault.frames_delivered, got.fault.frames_posted) << what;
    total_recoveries += got.fault.retransmits + got.fault.dup_dropped +
                        got.fault.frames_reordered;
  }
  // The plans must actually have exercised the recovery machinery.
  EXPECT_GT(total_recoveries, 0);
}

TEST(Fuzz, CorruptionIsAlwaysDetectedNeverMisdecoded) {
  // Corruption-heavy plans: every corrupted frame (1-3 flipped bits,
  // within CRC-32's Hamming-distance guarantee at our frame sizes) must
  // be rejected by the checksum and repaired by retransmit — never
  // silently mis-decoded into a wrong message.
  Rng rng(414);
  for (int round = 0; round < 3; ++round) {
    const auto seed = 1400 + static_cast<std::uint64_t>(round);
    const Problem p = fault_fuzz_problem(seed, rng);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    ProtocolOptions options;
    options.epsilon = 0.35;
    options.seed = seed;
    options.keep_stack = true;
    options.transport = TransportKind::kSerialized;
    const ProtocolRunResult ref = run_height_split_protocol(p, plan, options);

    options.faults.corrupt = 0.2;
    options.faults.retransmit_budget = 16;
    options.faults.seed = seed;
    const ProtocolRunResult got = run_height_split_protocol(p, plan, options);
    const std::string what = "round " + std::to_string(round);
    ASSERT_GT(got.fault.frames_corrupted, 0) << what;
    ASSERT_GT(got.fault.corrupt_dropped, 0) << what;
    ASSERT_EQ(got.fault.corrupt_undetected, 0) << what;
    ASSERT_EQ(got.fault.frames_delivered + got.fault.frames_lost,
              got.fault.frames_posted)
        << what;
    ASSERT_FALSE(got.degraded) << what;  // 0.2^17 per frame: never lost
    require_same_protocol_run(ref, got, what);
  }
}

TEST(Fuzz, RetransmitExhaustionDegradesGracefullyWithValidCertificate) {
  // Unmaskable plans — total blackout and coin-flip loss against a
  // budget of 1: the run must never crash, hang, or report a silently
  // wrong answer.  Either the plan happened to be masked (bit-identical
  // to fault-free) or the run is flagged degraded, its solution is still
  // primal-feasible (phase-2 prune) and its shard-reported certificate
  // validates against the central replay of the applied raises.
  Rng rng(415);
  bool saw_degraded = false;
  for (int round = 0; round < 4; ++round) {
    const auto seed = 1500 + static_cast<std::uint64_t>(round);
    const Problem p = fault_fuzz_problem(seed, rng);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    ProtocolOptions options;
    options.epsilon = 0.35;
    options.seed = seed;
    options.transport = TransportKind::kSerialized;
    const ProtocolRunResult ref = run_height_split_protocol(p, plan, options);

    if (round == 0) {
      options.faults.drop = 1.0;  // total blackout
      options.faults.retransmit_budget = 2;
    } else {
      options.faults.drop = 0.5;
      options.faults.retransmit_budget = 1;
      options.faults.seed = seed;
    }
    const ProtocolRunResult got = run_height_split_protocol(p, plan, options);
    const std::string what = "round " + std::to_string(round);
    require_feasible(p, got.solution);
    ASSERT_EQ(got.fault.frames_delivered + got.fault.frames_lost,
              got.fault.frames_posted)
        << what;
    if (got.degraded) {
      saw_degraded = true;
      ASSERT_GT(got.fault.frames_lost, 0) << what;
      ASSERT_TRUE(got.certificate_ok) << what;
      // The reported lambda stays a *conservative* slackness claim.
      for (const ProtocolPass& pass : got.passes)
        ASSERT_TRUE(pass.certificate_ok) << what;
    } else {
      ASSERT_EQ(got.solution.selected, ref.solution.selected) << what;
      ASSERT_EQ(got.lambda_observed, ref.lambda_observed) << what;
    }
    if (round == 0) {
      ASSERT_TRUE(got.degraded) << what;
      ASSERT_EQ(got.fault.frames_delivered, 0) << what;
      ASSERT_EQ(got.fault.frames_lost, got.fault.frames_posted) << what;
    }
  }
  EXPECT_TRUE(saw_degraded);
}

// Shared fixture of the durability codec arms: a real event trace and
// its encoded journal image with per-record boundaries.
struct JournalImage {
  std::vector<EventBatch> trace;
  std::vector<std::uint8_t> bytes;
  std::vector<std::size_t> boundaries;  // boundaries[k] = end of record k-1
};

JournalImage make_journal_image(std::uint64_t seed) {
  JournalImage image;
  image.boundaries.push_back(0);
  const Problem base =
      testutil::small_tree_problem(seed, 24, 2, 8, HeightLaw::kBimodal);
  DemandGenConfig demand_cfg;
  demand_cfg.heights = HeightLaw::kBimodal;
  OnlineTrafficSpec traffic;
  traffic.rate = 5.0;
  traffic.num_batches = 6;
  traffic.seed = seed;
  image.trace = make_event_trace(base, demand_cfg, traffic);
  for (std::uint32_t b = 0; b < image.trace.size(); ++b) {
    encode_journal_record(image.trace[b], b, image.bytes);
    image.boundaries.push_back(image.bytes.size());
  }
  return image;
}

// Replayed batches must be byte-for-byte re-encodable to the original
// image prefix — the strongest cheap equality (decode is a function of
// the bytes, so equal bytes means equal batches).
void require_replay_is_exact_prefix(const JournalImage& image,
                                    const JournalReplay& replay,
                                    const std::string& what) {
  ASSERT_LE(replay.batches.size(), image.trace.size()) << what;
  std::vector<std::uint8_t> again;
  for (std::uint32_t b = 0; b < replay.batches.size(); ++b)
    encode_journal_record(replay.batches[b], b, again);
  ASSERT_EQ(again.size(), image.boundaries[replay.batches.size()]) << what;
  ASSERT_EQ(std::memcmp(again.data(), image.bytes.data(), again.size()), 0)
      << what;
}

TEST(Fuzz, JournalReplaySurvivesEveryTruncationPrefix) {
  // Post-hoc truncation at every byte: the replay must return exactly
  // the longest whole-record prefix, flag the torn tail with a
  // diagnostic, and never crash or mis-decode (ASan/UBSan in CI).
  const JournalImage image = make_journal_image(416);
  for (std::size_t len = 0; len <= image.bytes.size(); ++len) {
    const JournalReplay replay =
        replay_journal_bytes({image.bytes.data(), len});
    const std::string what = "len " + std::to_string(len);
    require_replay_is_exact_prefix(image, replay, what);
    ASSERT_EQ(replay.valid_bytes, image.boundaries[replay.batches.size()])
        << what;
    const bool at_boundary = replay.valid_bytes == len;
    ASSERT_EQ(replay.torn, !at_boundary) << what;
    if (!at_boundary) {
      ASSERT_FALSE(replay.diagnostic.empty()) << what;
    }
  }
}

TEST(Fuzz, JournalReplayRejectsEveryBitFlip) {
  // A single flipped bit anywhere in the image: the record containing it
  // must be rejected by the frame CRC (or the structural parse), ending
  // the replay exactly there — the accepted prefix is always intact.
  const JournalImage image = make_journal_image(417);
  Rng rng(417);
  for (int round = 0; round < 400; ++round) {
    const std::size_t bit = rng.next_below(image.bytes.size() * 8);
    std::vector<std::uint8_t> flipped = image.bytes;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const JournalReplay replay =
        replay_journal_bytes({flipped.data(), flipped.size()});
    const std::string what = "bit " + std::to_string(bit);
    // The flip lands in record k: replay accepts exactly records 0..k-1.
    std::size_t k = 0;
    while (image.boundaries[k + 1] <= bit / 8) ++k;
    ASSERT_EQ(replay.batches.size(), k) << what;
    ASSERT_TRUE(replay.torn) << what;
    ASSERT_FALSE(replay.diagnostic.empty()) << what;
    require_replay_is_exact_prefix(image, replay, what);
  }
}

TEST(Fuzz, SnapshotCodecRejectsTruncationAndBitFlips) {
  // The snapshot decoder against a real captured image: every
  // truncation prefix and every sampled bit flip must be rejected with
  // a diagnostic — a versioned snapshot is accepted whole or not at all.
  const Problem base =
      testutil::small_tree_problem(418, 24, 2, 8, HeightLaw::kBimodal);
  DemandGenConfig demand_cfg;
  demand_cfg.heights = HeightLaw::kBimodal;
  OnlineTrafficSpec traffic;
  traffic.rate = 6.0;
  traffic.num_batches = 4;
  traffic.seed = 418;
  const std::vector<EventBatch> trace =
      make_event_trace(base, demand_cfg, traffic);
  OnlineConfig config;
  OnlineScheduler scheduler(base, config);
  for (const EventBatch& batch : trace) scheduler.step(batch);
  const std::vector<std::uint8_t> image =
      encode_snapshot(scheduler.capture());

  SchedulerSnapshot out;
  std::string error;
  ASSERT_TRUE(decode_snapshot(image, out, &error)) << error;

  for (std::size_t len = 0; len < image.size(); ++len) {
    error.clear();
    ASSERT_FALSE(decode_snapshot({image.data(), len}, out, &error))
        << "len " << len;
    ASSERT_FALSE(error.empty()) << "len " << len;
  }
  Rng rng(418);
  for (int round = 0; round < 400; ++round) {
    const std::size_t bit = rng.next_below(image.size() * 8);
    std::vector<std::uint8_t> flipped = image;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    error.clear();
    ASSERT_FALSE(decode_snapshot(flipped, out, &error)) << "bit " << bit;
    ASSERT_FALSE(error.empty()) << "bit " << bit;
  }
  // Every byte of the header individually flipped, too: magic, version,
  // seq, total length and the header checksum itself.
  for (std::size_t byte = 0; byte < 28 && byte < image.size(); ++byte) {
    std::vector<std::uint8_t> flipped = image;
    flipped[byte] ^= 0xFF;
    error.clear();
    ASSERT_FALSE(decode_snapshot(flipped, out, &error)) << "byte " << byte;
    ASSERT_FALSE(error.empty()) << "byte " << byte;
  }
}

TEST(Fuzz, ExactSolverOnDenseConflicts) {
  // Dense all-pairs conflicts: B&B must still complete quickly because
  // the per-demand branching collapses.
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(4));
  Problem p(4, std::move(networks));
  for (int i = 0; i < 20; ++i)
    p.add_demand(0, 3, 1.0 + i);
  p.finalize();
  const ExactResult exact = solve_exact(p);
  ASSERT_TRUE(exact.completed);
  EXPECT_DOUBLE_EQ(exact.profit, 20.0);  // only the best fits
  EXPECT_LT(exact.nodes, 1000);
}

}  // namespace
}  // namespace treesched
