// Lemma 4.1: the ideal decomposition has depth O(log n) — concretely at
// most 2*ceil(log2 n)+1 for our construction — and pivot size theta <= 2.
// These property tests sweep shapes, sizes and seeds; together with
// TreeDecomposition::validate() they check every claim of Section 4.3.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "decomp/tree_decomposition.hpp"
#include "workload/tree_gen.hpp"

namespace treesched {
namespace {

int ceil_log2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

class IdealDecomposition
    : public ::testing::TestWithParam<std::tuple<TreeShape, int, int>> {};

TEST_P(IdealDecomposition, Lemma41DepthAndPivot) {
  const auto [shape, n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 7);
  const TreeNetwork t = make_tree(shape, n, rng);
  const TreeDecomposition h = build_ideal(t);

  const auto validation = h.validate();
  ASSERT_TRUE(validation.ok) << validation.why;
  EXPECT_LE(h.pivot_size(), 2) << "theta must be at most 2 (Lemma 4.1)";
  EXPECT_LE(h.max_depth(), 2 * ceil_log2(n) + 1)
      << "depth must be at most 2 ceil(log n) + 1 (Lemma 4.1)";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IdealDecomposition,
    ::testing::Combine(::testing::ValuesIn(kAllTreeShapes),
                       ::testing::Values(2, 3, 5, 17, 64, 200),
                       ::testing::Values(1, 2, 3, 4)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(IdealDecomposition, DeterministicConstruction) {
  Rng rng1(5), rng2(5);
  const TreeNetwork t1 = make_tree(TreeShape::kRandomAttachment, 80, rng1);
  const TreeNetwork t2 = make_tree(TreeShape::kRandomAttachment, 80, rng2);
  const TreeDecomposition h1 = build_ideal(t1);
  const TreeDecomposition h2 = build_ideal(t2);
  EXPECT_EQ(h1.root(), h2.root());
  for (VertexId v = 0; v < 80; ++v) EXPECT_EQ(h1.parent(v), h2.parent(v));
}

TEST(IdealDecomposition, PathOfEight) {
  // A path exercises Case 2(b) (junction creation) repeatedly.
  Rng rng(1);
  const TreeNetwork t = make_tree(TreeShape::kPath, 8, rng);
  const TreeDecomposition h = build_ideal(t);
  ASSERT_TRUE(h.validate().ok);
  EXPECT_LE(h.pivot_size(), 2);
  EXPECT_LE(h.max_depth(), 2 * 3 + 1);
}

TEST(IdealDecomposition, LargeRandomTree) {
  Rng rng(99);
  const TreeNetwork t = make_tree(TreeShape::kRandomAttachment, 4096, rng);
  const TreeDecomposition h = build_ideal(t);
  EXPECT_LE(h.pivot_size(), 2);
  EXPECT_LE(h.max_depth(), 2 * 12 + 1);
  // Spot-check validity cheaply: T-edge comparability.
  for (EdgeId e = 0; e < t.num_edges(); ++e) {
    const VertexId u = t.edge_u(e), v = t.edge_v(e);
    EXPECT_TRUE(h.is_ancestor(u, v) || h.is_ancestor(v, u));
  }
}

TEST(IdealDecomposition, BetterThanSimpleDecompositions) {
  // The point of Lemma 4.1: root-fixing has depth n (on a path), the
  // balancing decomposition's pivot size exceeds 2 (on random trees,
  // growing towards log n in the worst case), while the ideal
  // decomposition is good on both axes at once.
  Rng rng(3);
  const TreeNetwork path = make_tree(TreeShape::kPath, 256, rng);
  EXPECT_EQ(build_root_fixing(path).max_depth(), 256);
  EXPECT_LE(build_ideal(path).max_depth(), 17);

  const TreeNetwork rnd = make_tree(TreeShape::kRandomAttachment, 256, rng);
  const TreeDecomposition bal = build_balancing(rnd);
  const TreeDecomposition ideal = build_ideal(rnd);
  EXPECT_GE(bal.pivot_size(), 3);
  EXPECT_LE(ideal.pivot_size(), 2);
  EXPECT_LE(ideal.max_depth(), 17);
}

}  // namespace
}  // namespace treesched
