// ComponentForest correctness and forest-vs-recompute engine parity.
//
// The persistent forest must (a) partition every group's active members
// into exactly the connected components of the conflict graph restricted
// to the group — checked against an independent BFS over
// Problem::conflicting — with the engine's deterministic ordering
// (components by first member rank, members rank-ascending), and
// (b) drive the parallel epoch path to outputs bit-identical to the
// legacy per-epoch recompute (SolverConfig::use_component_forest =
// false): component partitions, raise stacks, selected sets and lambda
// are compared with ==, across threads in {1, 4} and both tree
// decompositions, for the deterministic greedy oracle AND the
// randomized LubyMis (whose per-component streams key on
// component_stream_key — identical under either decomposition path).
#include "framework/component_forest.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "decomp/layered.hpp"
#include "dist/luby_mis.hpp"
#include "framework/two_phase.hpp"
#include "test_util.hpp"
#include "workload/scenario.hpp"

namespace treesched {
namespace {

using testutil::require_feasible;
using testutil::small_line_problem;
using testutil::small_tree_problem;

// Independent reference partition of one group: BFS over the conflict
// relation restricted to the group's active members, components emitted
// in first-member-rank order, members in rank order.
std::vector<std::vector<InstanceId>> bfs_components(
    const Problem& p, const LayeredPlan& plan,
    const std::vector<char>& active, int group) {
  std::vector<InstanceId> members;
  for (InstanceId i : plan.members[static_cast<std::size_t>(group)])
    if (active[static_cast<std::size_t>(i)]) members.push_back(i);
  const int m = static_cast<int>(members.size());
  std::vector<char> visited(static_cast<std::size_t>(m), 0);
  std::vector<std::vector<InstanceId>> comps;
  for (int r = 0; r < m; ++r) {
    if (visited[static_cast<std::size_t>(r)]) continue;
    std::vector<int> frontier{r};
    visited[static_cast<std::size_t>(r)] = 1;
    std::vector<char> in_comp(static_cast<std::size_t>(m), 0);
    in_comp[static_cast<std::size_t>(r)] = 1;
    while (!frontier.empty()) {
      const int a = frontier.back();
      frontier.pop_back();
      for (int b = 0; b < m; ++b) {
        if (visited[static_cast<std::size_t>(b)]) continue;
        if (!p.conflicting(members[static_cast<std::size_t>(a)],
                           members[static_cast<std::size_t>(b)]))
          continue;
        visited[static_cast<std::size_t>(b)] = 1;
        in_comp[static_cast<std::size_t>(b)] = 1;
        frontier.push_back(b);
      }
    }
    std::vector<InstanceId> comp;
    for (int b = 0; b < m; ++b)
      if (in_comp[static_cast<std::size_t>(b)])
        comp.push_back(members[static_cast<std::size_t>(b)]);
    comps.push_back(std::move(comp));
  }
  return comps;
}

void expect_forest_matches_reference(const Problem& p,
                                     const LayeredPlan& plan,
                                     const std::vector<char>& active,
                                     const std::string& what) {
  ComponentForest forest;
  forest.build(p, plan, active);
  ASSERT_TRUE(forest.built()) << what;
  ASSERT_EQ(forest.num_groups(), plan.num_groups) << what;
  for (int g = 0; g < plan.num_groups; ++g) {
    const auto ref = bfs_components(p, plan, active, g);
    ASSERT_EQ(static_cast<std::size_t>(forest.components_in_group(g)),
              ref.size())
        << what << " group " << g;
    int rank_base_check = 0;
    for (std::size_t c = 0; c < ref.size(); ++c) {
      const auto ids = forest.component_ids(g, static_cast<int>(c));
      const std::vector<InstanceId> got(ids.begin(), ids.end());
      EXPECT_EQ(got, ref[c]) << what << " group " << g << " comp " << c;
      // Ranks must be the members' positions among the group's active
      // members, ascending within the component.
      const auto ranks = forest.component_ranks(g, static_cast<int>(c));
      ASSERT_EQ(ranks.size(), ids.size()) << what;
      for (std::size_t k = 1; k < ranks.size(); ++k)
        EXPECT_LT(ranks[k - 1], ranks[k]) << what;
      rank_base_check += static_cast<int>(ranks.size());
    }
    // Every active member appears exactly once across the components.
    int active_members = 0;
    for (InstanceId i : plan.members[static_cast<std::size_t>(g)])
      if (active[static_cast<std::size_t>(i)]) ++active_members;
    EXPECT_EQ(rank_base_check, active_members) << what << " group " << g;
  }
}

TEST(ComponentForest, MatchesBfsReferenceOnTreesAndLines) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem tree = small_tree_problem(seed + 500, 32, 2, 18);
    for (const DecompKind kind :
         {DecompKind::kIdeal, DecompKind::kRootFixing}) {
      const LayeredPlan plan = build_tree_layered_plan(tree, kind);
      std::vector<char> all(static_cast<std::size_t>(tree.num_instances()),
                            1);
      expect_forest_matches_reference(
          tree, plan, all,
          "tree seed=" + std::to_string(seed) + " " + to_string(kind));
      // Restricted mask: every other instance (the wide/narrow regime's
      // shape — the forest must partition the *active* subset only).
      std::vector<char> evens(all.size(), 0);
      for (std::size_t i = 0; i < evens.size(); i += 2) evens[i] = 1;
      expect_forest_matches_reference(
          tree, plan, evens,
          "tree-evens seed=" + std::to_string(seed) + " " +
              to_string(kind));
    }
    const Problem line = small_line_problem(seed + 70, 28, 2, 9);
    const LayeredPlan plan = build_line_layered_plan(line);
    std::vector<char> all(static_cast<std::size_t>(line.num_instances()), 1);
    expect_forest_matches_reference(line, plan, all,
                                    "line seed=" + std::to_string(seed));
  }
}

// Field-by-field exact comparison of two engine runs.
void expect_same_run(const SolveResult& a, const SolveResult& b,
                     const std::string& what) {
  EXPECT_EQ(a.solution.selected, b.solution.selected) << what;
  EXPECT_EQ(a.raise_stack, b.raise_stack) << what;
  EXPECT_EQ(a.stats.epochs, b.stats.epochs) << what;
  EXPECT_EQ(a.stats.stages, b.stats.stages) << what;
  EXPECT_EQ(a.stats.steps, b.stats.steps) << what;
  EXPECT_EQ(a.stats.raises, b.stats.raises) << what;
  EXPECT_EQ(a.stats.mis_rounds, b.stats.mis_rounds) << what;
  EXPECT_EQ(a.stats.comm_rounds, b.stats.comm_rounds) << what;
  // Doubles with ==: bit-identical, not merely close.
  EXPECT_EQ(a.stats.dual_objective, b.stats.dual_objective) << what;
  EXPECT_EQ(a.stats.lambda_observed, b.stats.lambda_observed) << what;
  EXPECT_EQ(a.stats.profit, b.stats.profit) << what;
  EXPECT_EQ(a.stats.lockstep_ok, b.stats.lockstep_ok) << what;
  EXPECT_EQ(a.stats.mis_ok, b.stats.mis_ok) << what;
}

TEST(ComponentForest, ForestVsRecomputeBitIdenticalGreedy) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Problem p = small_tree_problem(seed + 600, 36, 2, 20,
                                         seed % 2 ? HeightLaw::kBimodal
                                                  : HeightLaw::kUnit);
    for (const DecompKind kind :
         {DecompKind::kIdeal, DecompKind::kRootFixing}) {
      const LayeredPlan plan = build_tree_layered_plan(p, kind);
      for (const bool lockstep : {false, true}) {
        for (const int threads : {1, 4}) {
          SolverConfig forest_config;
          forest_config.keep_stack = true;
          forest_config.lockstep = lockstep;
          forest_config.threads = threads;
          forest_config.rule = p.unit_height() ? RaiseRuleKind::kUnit
                                               : RaiseRuleKind::kNarrow;
          forest_config.use_component_forest = true;
          SolverConfig legacy_config = forest_config;
          legacy_config.use_component_forest = false;
          const SolveResult with_forest =
              solve_with_plan(p, plan, forest_config);
          const SolveResult with_recompute =
              solve_with_plan(p, plan, legacy_config);
          expect_same_run(with_forest, with_recompute,
                          "greedy seed=" + std::to_string(seed) + " " +
                              to_string(kind) +
                              " lockstep=" + std::to_string(lockstep) +
                              " threads=" + std::to_string(threads));
          require_feasible(p, with_forest.solution);
        }
      }
    }
  }
}

TEST(ComponentForest, ForestVsRecomputeBitIdenticalLuby) {
  // LubyMis keys its per-component streams by component_stream_key; the
  // forest and the recompute produce the same components in the same
  // order, so even the randomized parallel runs must coincide exactly.
  const Problem p = small_tree_problem(777, 40, 2, 24);
  for (const DecompKind kind :
       {DecompKind::kIdeal, DecompKind::kRootFixing}) {
    const LayeredPlan plan = build_tree_layered_plan(p, kind);
    for (const int threads : {1, 4}) {
      SolverConfig config;
      config.keep_stack = true;
      config.threads = threads;
      config.use_component_forest = true;
      LubyMis forest_oracle(p, 9);
      const SolveResult with_forest =
          solve_with_plan(p, plan, config, &forest_oracle);
      config.use_component_forest = false;
      LubyMis legacy_oracle(p, 9);
      const SolveResult with_recompute =
          solve_with_plan(p, plan, config, &legacy_oracle);
      expect_same_run(with_forest, with_recompute,
                      std::string("luby ") + to_string(kind) +
                          " threads=" + std::to_string(threads));
    }
  }
}

TEST(ComponentForest, RestrictToInvalidatesAndRebuilds) {
  // One engine object, two different restrictions: the forest must be
  // rebuilt after restrict_to (a stale partition over the old active set
  // would run wrong components).  Each restricted run must match a fresh
  // recompute-path engine bit for bit.
  const Problem p = small_tree_problem(888, 32, 2, 18,
                                       HeightLaw::kBimodal);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  const HeightClasses classes = classify_wide_narrow(p);
  ASSERT_TRUE(classes.has_wide());
  ASSERT_TRUE(classes.has_narrow());

  SolverConfig config;
  config.keep_stack = true;
  config.threads = 4;
  TwoPhaseEngine reused(p, plan, config);
  for (const bool wide : {true, false}) {
    const auto& ids = wide ? classes.wide_ids : classes.narrow_ids;
    reused.restrict_to(ids);
    const SolveResult got = reused.run();

    SolverConfig legacy = config;
    legacy.use_component_forest = false;
    TwoPhaseEngine fresh(p, plan, legacy);
    fresh.restrict_to(ids);
    const SolveResult want = fresh.run();
    expect_same_run(want, got,
                    std::string("restricted wide=") + std::to_string(wide));
  }
}

}  // namespace
}  // namespace treesched
