// The shared framing layer (io/framing.hpp): CRC-32 pinned to published
// reference vectors, the scalar put/get helpers' bounds discipline, and
// the [crc | seq | payload] frame triple — including the proof that the
// wire transport's frame codec and the shared helpers produce and accept
// the same bytes, so the journal and the wire cannot silently diverge.
#include "io/framing.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "dist/transport.hpp"

namespace treesched {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// The standard check value for CRC-32/ISO-HDLC plus a few companions —
// any change to the polynomial, reflection, or init/xor-out breaks one
// of these.
TEST(Crc32, ReferenceVectors) {
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(bytes_of("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(bytes_of("abc")), 0x352441C2u);
  EXPECT_EQ(crc32(bytes_of("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, SensitiveToEverySingleBitFlip) {
  const std::vector<std::uint8_t> base = bytes_of("durable journal frame");
  const std::uint32_t want = crc32(base);
  for (std::size_t bit = 0; bit < base.size() * 8; ++bit) {
    std::vector<std::uint8_t> flipped = base;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(crc32(flipped), want) << "bit " << bit;
  }
}

TEST(Scalars, RoundTripAndBoundsChecks) {
  std::vector<std::uint8_t> buf;
  put_u8(buf, 0xAB);
  put_u32(buf, 0xDEADBEEFu);
  put_i32(buf, -123456);
  put_u64(buf, 0x0123456789ABCDEFull);
  put_i64(buf, -987654321012345ll);
  put_f64(buf, 3.5e-7);
  ASSERT_EQ(buf.size(), 1u + 4 + 4 + 8 + 8 + 8);

  std::size_t offset = 0;
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::int32_t i32 = 0;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  double f64 = 0.0;
  ASSERT_TRUE(get_u8(buf, offset, u8));
  ASSERT_TRUE(get_u32(buf, offset, u32));
  ASSERT_TRUE(get_i32(buf, offset, i32));
  ASSERT_TRUE(get_u64(buf, offset, u64));
  ASSERT_TRUE(get_i64(buf, offset, i64));
  ASSERT_TRUE(get_f64(buf, offset, f64));
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(i32, -123456);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -987654321012345ll);
  EXPECT_EQ(f64, 3.5e-7);

  // At the end: every reader refuses and leaves the offset alone.
  const std::size_t at_end = offset;
  EXPECT_FALSE(get_u8(buf, offset, u8));
  EXPECT_FALSE(get_u32(buf, offset, u32));
  EXPECT_FALSE(get_f64(buf, offset, f64));
  EXPECT_EQ(offset, at_end);
  // One byte short of a u32: still refused.
  offset = buf.size() - 3;
  EXPECT_FALSE(get_u32(buf, offset, u32));
  EXPECT_EQ(offset, buf.size() - 3);
  // Offset beyond the buffer: refused, not UB.
  offset = buf.size() + 10;
  EXPECT_FALSE(get_u8(buf, offset, u8));
}

TEST(CrcFrame, BeginEndVerifyRoundTrip) {
  std::vector<std::uint8_t> out = bytes_of("prefix");  // frames can append
  const std::size_t frame_start = begin_crc_frame(out);
  EXPECT_EQ(frame_start, 6u);
  put_f64(out, 2.25);
  put_u32(out, 7);
  const std::size_t frame_len = end_crc_frame(out, frame_start, 42);
  EXPECT_EQ(frame_len, kCrcFrameHeaderBytes + 12);

  std::uint32_t seq = 0;
  std::string error;
  ASSERT_TRUE(verify_crc_frame(out, frame_start, frame_len, seq, &error))
      << error;
  EXPECT_EQ(seq, 42u);
}

TEST(CrcFrame, RejectsEveryFlipTruncationAndBadLength) {
  std::vector<std::uint8_t> out;
  const std::size_t start = begin_crc_frame(out);
  put_u64(out, 0x1122334455667788ull);
  const std::size_t frame_len = end_crc_frame(out, start, 3);

  std::uint32_t seq = 0;
  // Every single-bit flip anywhere in the frame — header included.
  for (std::size_t bit = 0; bit < out.size() * 8; ++bit) {
    std::vector<std::uint8_t> flipped = out;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    std::string error;
    EXPECT_FALSE(verify_crc_frame(flipped, 0, frame_len, seq, &error))
        << "bit " << bit;
    EXPECT_FALSE(error.empty()) << "bit " << bit;
  }
  // A frame that runs past the buffer, a sub-header length, and an
  // offset beyond the end are all structural rejects.
  EXPECT_FALSE(verify_crc_frame(out, 0, frame_len + 1, seq));
  EXPECT_FALSE(verify_crc_frame(out, 1, frame_len, seq));
  EXPECT_FALSE(verify_crc_frame(out, 0, kCrcFrameHeaderBytes - 1, seq));
  EXPECT_FALSE(verify_crc_frame(out, out.size() + 1, frame_len, seq));
  // A shorter length over the same bytes fails the checksum (the CRC
  // covers the payload it framed, not whatever prefix is offered).
  EXPECT_FALSE(verify_crc_frame(out, 0, frame_len - 1, seq));
}

// The wire transport's encode_frame must produce bytes the shared
// helpers accept (and agree on seq), and the shared helpers' frames must
// decode through the wire's decode_frame: one layout, two call sites.
TEST(CrcFrame, WireFrameCodecSharesTheLayout) {
  Message m;
  m.from = 3;
  m.to = 9;
  m.tag = 77;
  m.data = {1.5, -2.25, 1e300};

  std::vector<std::uint8_t> wire;
  const std::size_t frame_len = encode_frame(m, 123, wire);
  std::uint32_t seq = 0;
  std::string error;
  ASSERT_TRUE(verify_crc_frame(wire, 0, frame_len, seq, &error)) << error;
  EXPECT_EQ(seq, 123u);

  // Rebuild the same frame with the shared helpers: byte-identical.
  std::vector<std::uint8_t> shared;
  const std::size_t start = begin_crc_frame(shared);
  encode_message(m, shared);
  end_crc_frame(shared, start, 123);
  EXPECT_EQ(shared, wire);

  // And the wire decoder accepts the shared-helper frame.
  std::size_t offset = 0;
  Message back;
  ASSERT_TRUE(decode_frame(shared, offset, seq, back, &error)) << error;
  EXPECT_EQ(offset, frame_len);
  EXPECT_EQ(seq, 123u);
  EXPECT_EQ(back.from, m.from);
  EXPECT_EQ(back.to, m.to);
  EXPECT_EQ(back.tag, m.tag);
  EXPECT_EQ(back.data, m.data);
}

}  // namespace
}  // namespace treesched
