#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace treesched {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInRange) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(2.0, 4.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 4.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 3.0, 0.05);
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, ZipfStaysInRangeAndFavorsSmall) {
  Rng rng(13);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto k = rng.zipf(10, 1.1);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, 10);
    ++counts[static_cast<std::size_t>(k)];
  }
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[1], counts[10]);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), w.begin()));
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == child.next());
  EXPECT_LT(same, 4);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const auto first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

}  // namespace
}  // namespace treesched
