// Protocol-vs-engine parity (the message-level twin of
// test_engine_parity.cpp): the wire protocol — rendezvous discovery,
// sharded duals, budgeted per-node Luby, fixed schedules — must
// reproduce the modeled two-phase engine EXACTLY when the engine runs in
// lockstep mode driven by the ProtocolLubyMis mirror oracle.  Selected
// set, raise stack, lambda and the per-instance final LHS (also against
// a central DualState replay of the stack) are compared with ==, no
// tolerances: the protocol reads its shards through the ordered beta
// walk, so even the doubles are bit-identical.  The engine side runs the
// central reference AND the incremental engine with threads in {1, 4} —
// per-node randomness makes even the parallel epoch execution
// bit-identical — and the two-pass wide/narrow schedule and the
// non-uniform capacity profiles are held to the same standard.  Each
// pass's fixed-schedule round identity
//   rounds = tuples * (2*luby_budget + 1) + tuples
// and the whole run's identity (discovery + sum over passes) are
// asserted exactly.
#include "dist/protocol_scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "decomp/layered.hpp"
#include "dist/luby_mis.hpp"
#include "dist/scheduler.hpp"
#include "framework/dual_state.hpp"
#include "framework/two_phase.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"
#include "workload/scenario.hpp"

namespace treesched {
namespace {

// TREESCHED_TRACE=1 reruns this whole suite with the flight recorder on:
// the CI sanitizer job uses it to prove tracing cannot perturb any field
// compared with == below (the ISSUE's "tracing is invisible" guarantee).
[[maybe_unused]] const bool trace_env_hook = [] {
  if (std::getenv("TREESCHED_TRACE") != nullptr) obs::enable_tracing();
  return true;
}();

using testutil::require_feasible;
using testutil::small_line_problem;
using testutil::small_tree_problem;

bool uses_codec(TransportKind kind) {
  // kFaulty frames every message through the checksummed codec; on a
  // masked run (the only kind the environment hook produces here — the
  // suites below hold it to bit-identity) its frame-codec counters
  // equal the message counters exactly like the plain serialized wires.
  return kind == TransportKind::kSerialized ||
         kind == TransportKind::kThreadedSerialized ||
         kind == TransportKind::kFaulty;
}

// The transport axis of the parity suite: reruns a protocol on each
// serialized backend and holds every reported field — selection, stacks,
// final LHS, lambda, and all round/message/byte counters, per pass and
// total — to exact (==) equality with the reference run.  The codec
// counters must additionally account for every charged message (each one
// really encoded at post and decoded at drain).
template <typename RunFn>
void expect_transport_axis(const RunFn& rerun, const ProtocolRunResult& ref,
                           const std::string& what) {
  // The reference ran on whatever the environment resolved (in-proc
  // unless TREESCHED_TRANSPORT overrides); its codec counters must
  // already be consistent with that resolution.
  EXPECT_EQ(ref.codec_encoded, uses_codec(ref.transport) ? ref.messages : 0)
      << what;
  EXPECT_EQ(ref.codec_decoded, ref.codec_encoded) << what;
  for (const TransportKind kind :
       {TransportKind::kSerialized, TransportKind::kThreadedSerialized}) {
    const ProtocolRunResult got = rerun(kind);
    const std::string tag = what + " transport=" + to_string(kind);
    EXPECT_EQ(got.transport, kind) << tag;
    EXPECT_EQ(got.solution.selected, ref.solution.selected) << tag;
    EXPECT_EQ(got.raise_stack, ref.raise_stack) << tag;
    // Doubles with ==: bit-identical across backends.
    EXPECT_EQ(got.final_lhs, ref.final_lhs) << tag;
    EXPECT_EQ(got.lambda_observed, ref.lambda_observed) << tag;
    EXPECT_EQ(got.rounds, ref.rounds) << tag;
    EXPECT_EQ(got.messages, ref.messages) << tag;
    EXPECT_EQ(got.bytes, ref.bytes) << tag;
    EXPECT_EQ(got.discovery_rounds, ref.discovery_rounds) << tag;
    EXPECT_EQ(got.discovery_messages, ref.discovery_messages) << tag;
    EXPECT_EQ(got.discovery_bytes, ref.discovery_bytes) << tag;
    EXPECT_EQ(got.combine_rounds, ref.combine_rounds) << tag;
    EXPECT_EQ(got.mis_ok, ref.mis_ok) << tag;
    EXPECT_EQ(got.schedule_ok, ref.schedule_ok) << tag;
    ASSERT_EQ(got.passes.size(), ref.passes.size()) << tag;
    for (std::size_t i = 0; i < ref.passes.size(); ++i) {
      const ProtocolPass& a = got.passes[i];
      const ProtocolPass& b = ref.passes[i];
      const std::string ptag = tag + " pass=" + std::to_string(i);
      EXPECT_EQ(a.solution.selected, b.solution.selected) << ptag;
      EXPECT_EQ(a.raise_stack, b.raise_stack) << ptag;
      EXPECT_EQ(a.final_lhs, b.final_lhs) << ptag;
      EXPECT_EQ(a.lambda_observed, b.lambda_observed) << ptag;
      EXPECT_EQ(a.rounds, b.rounds) << ptag;
      EXPECT_EQ(a.messages, b.messages) << ptag;
      EXPECT_EQ(a.bytes, b.bytes) << ptag;
    }
    // The serialized wire demonstrably carried the run: every charged
    // message crossed the codec, in and out.
    EXPECT_EQ(got.codec_encoded, got.messages) << tag;
    EXPECT_EQ(got.codec_decoded, got.messages) << tag;
  }
}

// Central DualState replay of a protocol raise stack under the pass's
// rule: the same tight_raise arithmetic, applied in the same order, to
// the pre-sharding central state.  Exact (==) oracle for final_lhs.
std::vector<double> replay_central_lhs(
    const Problem& p, const LayeredPlan& plan, RaiseRuleKind kind,
    bool capacity_aware, const std::vector<std::vector<InstanceId>>& stack) {
  DualState dual(p);
  const RaiseRule rule(kind, p, /*raise_alpha=*/true, capacity_aware);
  std::vector<double> increments;
  for (const auto& step : stack) {
    for (InstanceId i : step) {
      const DemandInstance& inst = p.instance(i);
      const auto& critical = plan.critical[static_cast<std::size_t>(i)];
      const double slack =
          inst.profit - dual.lhs(inst, rule.beta_coeff(inst));
      const double amount = rule.tight_raise(inst, critical, slack,
                                             increments);
      dual.raise_alpha(inst.demand, amount);
      for (std::size_t c = 0; c < critical.size(); ++c)
        dual.raise_beta(critical[c], increments[c]);
    }
  }
  std::vector<double> lhs(static_cast<std::size_t>(p.num_instances()), 0.0);
  for (InstanceId i = 0; i < p.num_instances(); ++i)
    lhs[static_cast<std::size_t>(i)] =
        dual.lhs(p.instance(i), rule.beta_coeff(p.instance(i)));
  return lhs;
}

// The engine-side configuration that mirrors a protocol run: lockstep
// schedule, same slack, same rule/capacity semantics.
SolverConfig mirror_config(const ProtocolOptions& options,
                           RaiseRuleKind rule) {
  SolverConfig config;
  config.epsilon = options.epsilon;
  config.rule = rule;
  config.capacity_aware_raises = options.capacity_aware_raises;
  config.lockstep = true;
  config.lockstep_slack = options.lockstep_slack;
  config.keep_stack = true;
  return config;
}

// Asserts the exact per-pass and whole-run round accounting identities,
// including the converge-cast the better-of combination of a two-pass
// run is charged (zero for single-pass runs).
void expect_round_identity(const Problem& p, const ProtocolRunResult& run,
                           const std::string& what) {
  std::int64_t pass_rounds = 0;
  for (const ProtocolPass& pass : run.passes) {
    EXPECT_EQ(pass.tuples, static_cast<std::int64_t>(pass.epochs) *
                               pass.stages_per_epoch * pass.steps_per_stage)
        << what;
    EXPECT_EQ(pass.rounds, pass.tuples * (2 * run.luby_budget + 1) +
                               pass.tuples + pass.mis_retry_rounds)
        << what;
    pass_rounds += pass.rounds;
  }
  EXPECT_EQ(run.combine_rounds,
            run.passes.size() == 2 ? better_of_convergecast_rounds(p) : 0)
      << what;
  EXPECT_EQ(run.rounds,
            run.discovery_rounds + pass_rounds + run.combine_rounds)
      << what;
  EXPECT_EQ(run.discovery_rounds, 2) << what;
  EXPECT_EQ(run.discovery_bytes,
            run.discovery_registration_bytes + run.discovery_reply_bytes)
      << what;
}

// Compares one protocol pass against one modeled engine run with ==.
void expect_pass_matches(const ProtocolPass& pass, const SolveResult& got,
                         const std::string& what) {
  EXPECT_EQ(pass.solution.selected, got.solution.selected) << what;
  EXPECT_EQ(pass.raise_stack, got.raise_stack) << what;
  // Doubles with ==: bit-identical, not merely close.
  EXPECT_EQ(pass.lambda_observed, got.stats.lambda_observed) << what;
  EXPECT_EQ(pass.schedule_ok, got.stats.lockstep_ok) << what;
  EXPECT_EQ(pass.delta, got.stats.delta) << what;
  EXPECT_EQ(pass.xi, got.stats.xi) << what;
  EXPECT_EQ(pass.stages_per_epoch, got.stats.stages_per_epoch) << what;
  EXPECT_EQ(pass.mis_retries, got.stats.mis_retries) << what;
}

// Single-pass parity: run_distributed_protocol under options.rule vs the
// lockstep engine (central reference + incremental threads {1, 4}) with
// the mirror oracle, plus the central-replay final_lhs oracle and the
// round identity.
void expect_single_pass_parity(const Problem& p, const LayeredPlan& plan,
                               ProtocolOptions options,
                               const std::string& what) {
  options.keep_stack = true;
  const ProtocolRunResult run = run_distributed_protocol(p, plan, options);
  ASSERT_EQ(run.passes.size(), 1u) << what;
  require_feasible(p, run.solution);
  expect_round_identity(p, run, what);
  EXPECT_EQ(run.luby_budget, options.luby_budget > 0
                                 ? options.luby_budget
                                 : default_luby_budget(p.num_instances()))
      << what;

  const SolverConfig base = mirror_config(options, options.rule);
  for (const EngineImpl engine :
       {EngineImpl::kCentralReference, EngineImpl::kIncremental}) {
    for (const int threads : {1, 4}) {
      if (engine == EngineImpl::kCentralReference && threads > 1) continue;
      SolverConfig config = base;
      config.engine = engine;
      config.threads = threads;
      ProtocolLubyMis oracle(p, options.seed, run.luby_budget);
      const SolveResult got = solve_with_plan(p, plan, config, &oracle);
      expect_pass_matches(
          run.passes.front(), got,
          what + " engine=" + std::to_string(static_cast<int>(engine)) +
              " threads=" + std::to_string(threads));
      EXPECT_EQ(run.solution.selected, got.solution.selected) << what;
      EXPECT_EQ(run.lambda_observed, got.stats.lambda_observed) << what;
    }
  }

  // The sharded final LHS must equal a central replay of the same stack,
  // bit for bit (the whole vector, bystander instances included).
  EXPECT_EQ(run.final_lhs,
            replay_central_lhs(p, plan, options.rule,
                               options.capacity_aware_raises,
                               run.raise_stack))
      << what;

  // And the whole run must be transport-invariant.
  expect_transport_axis(
      [&](TransportKind kind) {
        ProtocolOptions axis = options;
        axis.transport = kind;
        return run_distributed_protocol(p, plan, axis);
      },
      run, what);
}

// Two-pass parity: run_height_split_protocol vs (a) solve_height_split
// with the mirror oracle for the combined solution and merged lambda,
// (b) manual restricted engine runs for each pass's stack/lhs/lambda.
void expect_split_parity(const Problem& p, const LayeredPlan& plan,
                         ProtocolOptions options, const std::string& what) {
  options.keep_stack = true;
  const ProtocolRunResult run = run_height_split_protocol(p, plan, options);
  require_feasible(p, run.solution);
  expect_round_identity(p, run, what);

  const HeightClasses classes = classify_wide_narrow(p);
  const std::size_t expected_passes =
      (classes.has_wide() ? 1u : 0u) + (classes.has_narrow() ? 1u : 0u);
  ASSERT_EQ(run.passes.size(), expected_passes) << what;

  const SolverConfig base = mirror_config(options, RaiseRuleKind::kUnit);

  // (a) Combined: the engine-side height split with a fresh mirror
  // oracle must produce the same better-of selection and merged lambda.
  for (const EngineImpl engine :
       {EngineImpl::kCentralReference, EngineImpl::kIncremental}) {
    for (const int threads : {1, 4}) {
      if (engine == EngineImpl::kCentralReference && threads > 1) continue;
      SolverConfig config = base;
      config.engine = engine;
      config.threads = threads;
      ProtocolLubyMis oracle(p, options.seed, run.luby_budget);
      const SolveResult combined = solve_height_split(p, plan, config,
                                                      &oracle);
      const std::string tag =
          what + " engine=" + std::to_string(static_cast<int>(engine)) +
          " threads=" + std::to_string(threads);
      EXPECT_EQ(run.solution.selected, combined.solution.selected) << tag;
      EXPECT_EQ(run.lambda_observed, combined.stats.lambda_observed) << tag;
      EXPECT_EQ(run.solution.profit(p), combined.stats.profit) << tag;
    }
  }

  // (b) Per pass: restricted engine runs sharing one mirror oracle (the
  // stream consumption is per instance, so the classes cannot interact).
  ProtocolLubyMis oracle(p, options.seed, run.luby_budget);
  for (const ProtocolPass& pass : run.passes) {
    SolverConfig config = base;
    config.rule = pass.rule;
    TwoPhaseEngine engine(p, plan, config, &oracle);
    engine.restrict_to(pass.rule == RaiseRuleKind::kUnit
                           ? classes.wide_ids
                           : classes.narrow_ids);
    const SolveResult part = engine.run();
    const std::string tag = what + " pass=" + to_string(pass.rule);
    expect_pass_matches(pass, part, tag);
    EXPECT_EQ(pass.final_lhs,
              replay_central_lhs(p, plan, pass.rule,
                                 options.capacity_aware_raises,
                                 pass.raise_stack))
        << tag;
  }

  // The two-pass run, including the better-of combination, must be
  // transport-invariant.
  expect_transport_axis(
      [&](TransportKind kind) {
        ProtocolOptions axis = options;
        axis.transport = kind;
        return run_height_split_protocol(p, plan, axis);
      },
      run, what);
}

TEST(ProtocolParity, TreeUnitBothDecompositions) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Problem p = small_tree_problem(seed, 32, 2, 16);
    for (const DecompKind kind :
         {DecompKind::kIdeal, DecompKind::kRootFixing}) {
      const LayeredPlan plan = build_tree_layered_plan(p, kind);
      ProtocolOptions options;
      options.epsilon = 0.2;
      options.seed = seed;
      expect_single_pass_parity(p, plan, options,
                                "tree-unit seed=" + std::to_string(seed) +
                                    " decomp=" + to_string(kind));
    }
  }
}

TEST(ProtocolParity, LineUnit) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Problem p = small_line_problem(seed, 24, 2, 8);
    const LayeredPlan plan = build_line_layered_plan(p);
    ProtocolOptions options;
    options.epsilon = 0.2;
    options.seed = seed + 7;
    expect_single_pass_parity(p, plan, options,
                              "line-unit seed=" + std::to_string(seed));
  }
}

TEST(ProtocolParity, NarrowRuleSinglePass) {
  // The kNarrow rule as a single mechanical pass over every instance
  // (quality-wise only sound all-narrow, but both implementations must
  // agree on any input).  height_min is kept high so the narrow xi stays
  // away from 1 and the stage count tractable.
  TreeScenarioSpec spec;
  spec.num_vertices = 28;
  spec.num_networks = 2;
  spec.demands.num_demands = 14;
  spec.demands.heights = HeightLaw::kNarrowOnly;
  spec.demands.height_min = 0.4;
  spec.demands.profit_max = 50.0;
  spec.seed = 11;
  const Problem p = make_tree_problem(spec);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  ProtocolOptions options;
  options.epsilon = 0.35;
  options.rule = RaiseRuleKind::kNarrow;
  expect_single_pass_parity(p, plan, options, "narrow-single-pass");
}

TEST(ProtocolParity, WideNarrowSplitOnTrees) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    TreeScenarioSpec spec;
    spec.num_vertices = 28;
    spec.num_networks = 2;
    spec.demands.num_demands = 14;
    spec.demands.heights = HeightLaw::kBimodal;
    spec.demands.height_min = 0.4;
    spec.demands.profit_max = 50.0;
    spec.seed = seed + 40;
    const Problem p = make_tree_problem(spec);
    for (const DecompKind kind :
         {DecompKind::kIdeal, DecompKind::kRootFixing}) {
      const LayeredPlan plan = build_tree_layered_plan(p, kind);
      ProtocolOptions options;
      options.epsilon = 0.35;
      options.seed = seed;
      expect_split_parity(p, plan, options,
                          "tree-split seed=" + std::to_string(seed) +
                              " decomp=" + to_string(kind));
    }
  }
}

TEST(ProtocolParity, WideNarrowSplitOnLines) {
  const Problem p = small_line_problem(5, 24, 2, 8, HeightLaw::kBimodal);
  const LayeredPlan plan = build_line_layered_plan(p);
  ProtocolOptions options;
  options.epsilon = 0.35;
  options.seed = 3;
  expect_split_parity(p, plan, options, "line-split");
}

TEST(ProtocolParity, AllWideDegeneratesToOnePass) {
  // Unit heights are all wide: the split wrapper must execute exactly
  // one kUnit pass and agree with the single-pass protocol verbatim.
  const Problem p = small_tree_problem(9, 28, 2, 12);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  ProtocolOptions options;
  options.epsilon = 0.2;
  options.keep_stack = true;
  const ProtocolRunResult split = run_height_split_protocol(p, plan, options);
  const ProtocolRunResult single = run_distributed_protocol(p, plan, options);
  ASSERT_EQ(split.passes.size(), 1u);
  EXPECT_EQ(split.passes.front().rule, RaiseRuleKind::kUnit);
  EXPECT_EQ(split.solution.selected, single.solution.selected);
  EXPECT_EQ(split.raise_stack, single.raise_stack);
  EXPECT_EQ(split.final_lhs, single.final_lhs);
  EXPECT_EQ(split.lambda_observed, single.lambda_observed);
  EXPECT_EQ(split.rounds, single.rounds);
  EXPECT_EQ(split.messages, single.messages);
  EXPECT_EQ(split.bytes, single.bytes);
}

TEST(ProtocolParity, NonUniformCapacityProfiles) {
  // src/capacity profiles end-to-end on the wire: the kTagRaise payloads
  // carry capacity-normalized increments, and both the capacity-aware
  // and the naive arm must match the engine exactly.
  for (const CapacityLaw law :
       {CapacityLaw::kTwoClass, CapacityLaw::kPowerClasses}) {
    TreeScenarioSpec spec;
    spec.num_vertices = 28;
    spec.num_networks = 2;
    spec.demands.num_demands = 14;
    spec.demands.profit_max = 50.0;
    spec.seed = 321;
    spec.capacities = law;
    spec.capacity_spread = 4.0;
    const Problem p = make_tree_problem(spec);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    for (const bool aware : {true, false}) {
      ProtocolOptions options;
      options.epsilon = 0.2;
      options.seed = 5;
      options.capacity_aware_raises = aware;
      expect_single_pass_parity(
          p, plan, options,
          std::string("nonuniform law=") + to_string(law) +
              " aware=" + std::to_string(aware));
    }
  }
}

TEST(ProtocolParity, NonUniformSplitWithCapacities) {
  // Arbitrary heights AND non-uniform capacities: the two-pass schedule
  // with capacity-normalized increments, against both engines.
  TreeScenarioSpec spec;
  spec.num_vertices = 26;
  spec.num_networks = 2;
  spec.demands.num_demands = 12;
  spec.demands.heights = HeightLaw::kBimodal;
  spec.demands.height_min = 0.4;
  spec.demands.profit_max = 50.0;
  spec.seed = 77;
  spec.capacities = CapacityLaw::kTwoClass;
  spec.capacity_spread = 4.0;
  const Problem p = make_tree_problem(spec);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  ProtocolOptions options;
  options.epsilon = 0.35;
  options.seed = 2;
  expect_split_parity(p, plan, options, "nonuniform-split");
}

TEST(ProtocolParity, WrapperBoundsAreFiniteAndOrdered) {
  // The message-level theorem wrappers report the same bound structure
  // as their modeled twins: unit < split on the same tree instance, and
  // the non-uniform bound carries the path-spread factor.
  const Problem p = small_tree_problem(3, 28, 2, 12);
  ProtocolOptions options;
  options.epsilon = 0.2;
  const ProtocolDistResult unit = run_tree_unit_protocol(p, options);
  const ProtocolDistResult arb = run_tree_arbitrary_protocol(p, options);
  require_feasible(p, unit.run.solution);
  require_feasible(p, arb.run.solution);
  EXPECT_GE(unit.ratio_bound, 1.0);
  // All-wide: the split runs one kUnit pass, so the bounds coincide.
  EXPECT_EQ(unit.ratio_bound, arb.ratio_bound);
  EXPECT_EQ(unit.run.solution.selected, arb.run.solution.selected);

  TreeScenarioSpec spec;
  spec.num_vertices = 24;
  spec.num_networks = 2;
  spec.demands.num_demands = 10;
  spec.demands.profit_max = 40.0;
  spec.seed = 9;
  spec.capacities = CapacityLaw::kTwoClass;
  spec.capacity_spread = 4.0;
  const Problem nonuni = make_tree_problem(spec);
  const ProtocolDistResult nu = run_nonuniform_protocol(nonuni, options);
  require_feasible(nonuni, nu.run.solution);
  const double spread = max_path_capacity_spread(nonuni);
  EXPECT_GE(spread, 1.0);
  ASSERT_EQ(nu.run.passes.size(), 1u);
  EXPECT_GE(nu.ratio_bound,
            proven_ratio_bound(RaiseRuleKind::kUnit,
                               nu.run.passes.front().delta,
                               1.0 - options.epsilon));
}

}  // namespace
}  // namespace treesched
