// Message-level protocol scheduler (paper, Section 5 "Distributed
// Implementation"): the full two-phase algorithm as real messages on the
// synchronous runtime, with every schedule length fixed up front.  These
// tests validate feasibility, the Lemma 5.1 budget sufficiency, the exact
// round-accounting identity, determinism, and quality against the exact
// optimum and against the modeled engine.
#include "dist/protocol_scheduler.hpp"

#include <gtest/gtest.h>

#include "dist/scheduler.hpp"
#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::exact_opt;
using testutil::require_feasible;
using testutil::small_line_problem;
using testutil::small_tree_problem;

TEST(Protocol, FeasibleAndBudgetsSuffice) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = small_tree_problem(seed + 700, 20, 2, 9);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    ProtocolOptions options;
    options.epsilon = 0.2;
    options.seed = seed;
    const ProtocolRunResult run = run_distributed_protocol(p, plan, options);
    require_feasible(p, run.solution);
    EXPECT_TRUE(run.mis_ok) << "Luby budget too small at seed " << seed;
    EXPECT_TRUE(run.schedule_ok) << "step budget too small at seed " << seed;
    EXPECT_GE(run.lambda_observed, 1.0 - 0.2 - 1e-6);
  }
}

TEST(Protocol, WithinTheoremBoundAgainstExact) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = small_tree_problem(seed + 720, 18, 2, 8);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    ProtocolOptions options;
    options.epsilon = 0.1;
    options.seed = seed;
    const ProtocolRunResult run = run_distributed_protocol(p, plan, options);
    const Profit profit = require_feasible(p, run.solution);
    const Profit opt = exact_opt(p);
    const double bound = (plan.delta + 1.0) / (1.0 - options.epsilon);
    EXPECT_GE(profit * bound, opt - 1e-6) << "seed " << seed;
  }
}

TEST(Protocol, RoundAccountingIdentity) {
  const Problem p = small_tree_problem(9, 20, 2, 9);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  ProtocolOptions options;
  options.epsilon = 0.2;
  const ProtocolRunResult run = run_distributed_protocol(p, plan, options);
  // Discovery: 2 rendezvous rounds.  Phase 1: every (epoch, stage, step)
  // tuple spends 2 rounds per Luby iteration plus 1 raise round; phase 2
  // replays each tuple in 1 round.
  const std::int64_t tuples = static_cast<std::int64_t>(run.epochs) *
                              run.stages_per_epoch * run.steps_per_stage;
  EXPECT_EQ(run.discovery_rounds, 2);
  EXPECT_EQ(run.rounds,
            run.discovery_rounds + tuples * (2 * run.luby_budget + 1) + tuples);
  EXPECT_GT(run.discovery_messages, 0);
  EXPECT_GT(run.messages, run.discovery_messages);
  EXPECT_GT(run.bytes, 0);
}

TEST(Protocol, DeterministicBySeed) {
  const Problem p = small_tree_problem(11, 20, 2, 9);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  ProtocolOptions options;
  options.seed = 5;
  const ProtocolRunResult a = run_distributed_protocol(p, plan, options);
  const ProtocolRunResult b = run_distributed_protocol(p, plan, options);
  EXPECT_EQ(a.solution.selected, b.solution.selected);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(Protocol, WorksOnLinePlans) {
  const Problem p = small_line_problem(13, 20, 2, 7, HeightLaw::kUnit, 1.6);
  const LayeredPlan plan = build_line_layered_plan(p);
  ProtocolOptions options;
  options.epsilon = 0.2;
  const ProtocolRunResult run = run_distributed_protocol(p, plan, options);
  require_feasible(p, run.solution);
  EXPECT_TRUE(run.schedule_ok);
  EXPECT_GE(run.lambda_observed, 0.8 - 1e-6);
}

TEST(Protocol, MatchesEngineQuality) {
  // The protocol and the modeled engine run different Luby randomness but
  // must land in the same quality regime: both feasible, both certified
  // against the same LP.
  const Problem p = small_tree_problem(15, 20, 2, 9);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  ProtocolOptions poptions;
  poptions.epsilon = 0.1;
  const ProtocolRunResult protocol =
      run_distributed_protocol(p, plan, poptions);
  DistOptions eoptions;
  eoptions.epsilon = 0.1;
  const DistResult engine = solve_tree_unit_distributed(p, eoptions);
  const Profit pp = require_feasible(p, protocol.solution);
  const Profit ep = require_feasible(p, engine.solution);
  const Profit opt = exact_opt(p);
  const double bound = (plan.delta + 1.0) / 0.9;
  EXPECT_GE(pp * bound, opt - 1e-6);
  EXPECT_GE(ep * bound, opt - 1e-6);
}

TEST(Protocol, SinglePassMirrorsPassBreakdown) {
  // The top-level schedule/oracle fields of a single-pass run are the
  // pass's own, verbatim.
  const Problem p = small_tree_problem(21, 20, 2, 9);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  ProtocolOptions options;
  options.epsilon = 0.2;
  options.keep_stack = true;
  const ProtocolRunResult run = run_distributed_protocol(p, plan, options);
  ASSERT_EQ(run.passes.size(), 1u);
  const ProtocolPass& pass = run.passes.front();
  EXPECT_EQ(pass.rule, RaiseRuleKind::kUnit);
  EXPECT_EQ(run.epochs, pass.epochs);
  EXPECT_EQ(run.stages_per_epoch, pass.stages_per_epoch);
  EXPECT_EQ(run.steps_per_stage, pass.steps_per_stage);
  EXPECT_EQ(run.solution.selected, pass.solution.selected);
  EXPECT_EQ(run.final_lhs, pass.final_lhs);
  EXPECT_EQ(run.raise_stack, pass.raise_stack);
  EXPECT_EQ(run.mis_ok, pass.mis_ok);
  EXPECT_EQ(run.schedule_ok, pass.schedule_ok);
  EXPECT_EQ(run.lambda_observed, pass.lambda_observed);
  EXPECT_EQ(run.rounds, run.discovery_rounds + pass.rounds);
}

TEST(Protocol, TwoPassAccountingIdentity) {
  // The Section 6 schedule: rounds = discovery + sum over passes of
  // tuples*(2L+1) + tuples, with per-pass budgets derived from each
  // pass's own (rule, Delta, h_min).
  TreeScenarioSpec spec;
  spec.num_vertices = 24;
  spec.num_networks = 2;
  spec.demands.num_demands = 12;
  spec.demands.heights = HeightLaw::kBimodal;
  spec.demands.height_min = 0.4;
  spec.demands.profit_max = 50.0;
  spec.seed = 31;
  const Problem p = make_tree_problem(spec);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  ProtocolOptions options;
  options.epsilon = 0.35;
  const ProtocolRunResult run = run_height_split_protocol(p, plan, options);
  require_feasible(p, run.solution);
  ASSERT_EQ(run.passes.size(), 2u);
  EXPECT_EQ(run.passes[0].rule, RaiseRuleKind::kUnit);
  EXPECT_EQ(run.passes[1].rule, RaiseRuleKind::kNarrow);
  // The narrow pass's schedule is its own: different xi, more stages.
  EXPECT_GT(run.passes[1].stages_per_epoch,
            run.passes[0].stages_per_epoch);
  std::int64_t pass_rounds = 0;
  for (const ProtocolPass& pass : run.passes) {
    EXPECT_EQ(pass.tuples, static_cast<std::int64_t>(pass.epochs) *
                               pass.stages_per_epoch * pass.steps_per_stage);
    EXPECT_EQ(pass.rounds,
              pass.tuples * (2 * run.luby_budget + 1) + pass.tuples);
    pass_rounds += pass.rounds;
  }
  // Two passes actually combined: the better-of converge-cast is charged
  // on top of the tuple schedule.
  EXPECT_EQ(run.combine_rounds, better_of_convergecast_rounds(p));
  EXPECT_GT(run.combine_rounds, 0);
  EXPECT_EQ(run.rounds,
            run.discovery_rounds + pass_rounds + run.combine_rounds);
  EXPECT_TRUE(run.schedule_ok);
  EXPECT_GE(run.lambda_observed, 1.0 - options.epsilon - 1e-6);
}

TEST(Protocol, ArbitraryHeightsWithinTheoremBound) {
  // Theorem 6.3 message-level: the two-pass run's profit certifies the
  // exact optimum through the combined wide+narrow bound.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    TreeScenarioSpec spec;
    spec.num_vertices = 20;
    spec.num_networks = 2;
    spec.demands.num_demands = 9;
    spec.demands.heights = HeightLaw::kBimodal;
    spec.demands.height_min = 0.4;
    spec.demands.profit_max = 50.0;
    spec.seed = seed + 60;
    const Problem p = make_tree_problem(spec);
    ProtocolOptions options;
    options.epsilon = 0.35;
    options.seed = seed;
    const ProtocolDistResult run = run_tree_arbitrary_protocol(p, options);
    const Profit profit = require_feasible(p, run.run.solution);
    const Profit opt = exact_opt(p);
    EXPECT_GE(profit * run.ratio_bound, opt - 1e-6) << "seed " << seed;
  }
}

TEST(Protocol, NonUniformCapacitiesOnTheWire) {
  // kTagRaise increments are capacity-normalized: the non-uniform
  // profiles run end-to-end message-level, the certificate holds, and
  // the naive arm (paper increments verbatim) still runs feasibly.
  TreeScenarioSpec spec;
  spec.num_vertices = 20;
  spec.num_networks = 2;
  spec.demands.num_demands = 9;
  spec.demands.profit_max = 50.0;
  spec.seed = 17;
  spec.capacities = CapacityLaw::kTwoClass;
  spec.capacity_spread = 4.0;
  const Problem p = make_tree_problem(spec);
  ProtocolOptions options;
  options.epsilon = 0.2;
  const ProtocolDistResult aware = run_nonuniform_protocol(p, options);
  const Profit profit = require_feasible(p, aware.run.solution);
  EXPECT_TRUE(aware.run.schedule_ok);
  EXPECT_GE(aware.run.lambda_observed, 1.0 - options.epsilon - 1e-6);
  const Profit opt = exact_opt(p);
  EXPECT_GE(profit * aware.ratio_bound, opt - 1e-6);

  ProtocolOptions naive_options = options;
  naive_options.capacity_aware_raises = false;
  const ProtocolDistResult naive = run_nonuniform_protocol(p, naive_options);
  require_feasible(p, naive.run.solution);
}

TEST(Protocol, IsolatedDemandsAllScheduled) {
  // No conflicts at all: every demand must be scheduled despite the full
  // fixed-schedule machinery running.  The only traffic is the discovery
  // registrations — with empty neighborhoods, phases 1 and 2 run in
  // silence.
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(10));
  Problem p(10, std::move(networks));
  p.add_demand(0, 2, 3.0);
  p.add_demand(3, 5, 2.0);
  p.add_demand(6, 9, 1.0);
  p.finalize();
  const LayeredPlan plan = build_line_layered_plan(p);
  const ProtocolRunResult run = run_distributed_protocol(p, plan, {});
  EXPECT_EQ(run.solution.selected.size(), 3u);
  EXPECT_GT(run.discovery_messages, 0);
  EXPECT_EQ(run.messages, run.discovery_messages);
}

}  // namespace
}  // namespace treesched
