// Online warm-start parity: after every event batch, the incremental
// scheduler's assembled artifacts must equal — with exact ==, no
// tolerance — a cold solve of the same post-event problem.
//
// The invariant under test is the decomposition argument the scheduler
// rests on: conflict components evolve independently under the pinned
// class stage schedule, so splicing cached (untouched) components with
// freshly re-solved (touched) ones reproduces the cold run field for
// field: raise stack rows, their (group, stage, step) tags, the
// selected sets, lambda and the per-instance final LHS.  Exercised
// across arrival laws, height laws, thread counts {1, 4}, forced
// compaction, cold mode, and a fuzz arm replaying random event traces.
#include "online/online_scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "online/event_stream.hpp"
#include "test_util.hpp"
#include "workload/scenario.hpp"

namespace treesched {
namespace {

using testutil::small_tree_problem;

void expect_class_equal(const ClassArtifacts& warm,
                        const ClassArtifacts& cold,
                        const std::string& where) {
  SCOPED_TRACE(where);
  ASSERT_EQ(warm.any, cold.any);
  EXPECT_EQ(warm.raise_stack, cold.raise_stack);
  ASSERT_EQ(warm.stack_tags.size(), cold.stack_tags.size());
  for (std::size_t r = 0; r < warm.stack_tags.size(); ++r) {
    EXPECT_EQ(warm.stack_tags[r].group, cold.stack_tags[r].group);
    EXPECT_EQ(warm.stack_tags[r].stage, cold.stack_tags[r].stage);
    EXPECT_EQ(warm.stack_tags[r].step, cold.stack_tags[r].step);
  }
  EXPECT_EQ(warm.solution.selected, cold.solution.selected);
  EXPECT_EQ(warm.lambda, cold.lambda);  // exact, no tolerance
  EXPECT_EQ(warm.final_lhs, cold.final_lhs);
}

void expect_parity(const OnlineScheduler& scheduler,
                   const SolverConfig& solver, const std::string& where) {
  const OnlineSolveArtifacts warm = scheduler.assemble();
  const OnlineSolveArtifacts cold = solve_cold(
      scheduler.problem(), scheduler.plan(), solver, scheduler.live_mask());
  expect_class_equal(warm.wide, cold.wide, where + " wide");
  expect_class_equal(warm.narrow, cold.narrow, where + " narrow");
  SCOPED_TRACE(where);
  EXPECT_EQ(warm.solution.selected, cold.solution.selected);
  EXPECT_EQ(warm.profit, cold.profit);
  EXPECT_EQ(warm.lambda, cold.lambda);
  const auto feas = check_feasibility(scheduler.problem(), warm.solution);
  EXPECT_TRUE(feas.feasible) << feas.violation;
}

// Replays a trace through the scheduler, holding warm == cold after
// every batch.
void run_parity(const Problem& base, const DemandGenConfig& demand_cfg,
                const OnlineTrafficSpec& traffic, OnlineConfig config,
                const std::string& label) {
  const std::vector<EventBatch> trace =
      make_event_trace(base, demand_cfg, traffic);
  OnlineScheduler scheduler(base, config);
  expect_parity(scheduler, config.solver, label + " initial");
  for (std::size_t b = 0; b < trace.size(); ++b) {
    const OnlineBatchReport report = scheduler.step(trace[b]);
    EXPECT_EQ(report.batch, static_cast<int>(b));
    expect_parity(scheduler, config.solver,
                  label + " batch " + std::to_string(b));
  }
}

OnlineConfig config_with_threads(int threads) {
  OnlineConfig config;
  config.solver.threads = threads;
  return config;
}

TEST(OnlineScheduler, WarmEqualsColdPoisson) {
  const Problem base = small_tree_problem(7, 32, 2, 12);
  DemandGenConfig demand_cfg;
  demand_cfg.heights = HeightLaw::kBimodal;
  OnlineTrafficSpec traffic;
  traffic.rate = 6.0;
  traffic.num_batches = 8;
  traffic.seed = 11;
  for (const int threads : {1, 4}) {
    run_parity(base, demand_cfg, traffic, config_with_threads(threads),
               "poisson t" + std::to_string(threads));
  }
}

TEST(OnlineScheduler, WarmEqualsColdBursty) {
  const Problem base = small_tree_problem(19, 40, 2, 10,
                                          HeightLaw::kUniformRange);
  DemandGenConfig demand_cfg;
  demand_cfg.heights = HeightLaw::kUniformRange;
  demand_cfg.endpoints = EndpointLaw::kLocalPair;
  demand_cfg.locality = 3;
  OnlineTrafficSpec traffic;
  traffic.arrivals = ArrivalLaw::kBursty;
  traffic.rate = 5.0;
  traffic.num_batches = 8;
  traffic.initial_population = 6;
  traffic.seed = 5;
  for (const int threads : {1, 4}) {
    run_parity(base, demand_cfg, traffic, config_with_threads(threads),
               "bursty t" + std::to_string(threads));
  }
}

TEST(OnlineScheduler, WarmEqualsColdDiurnalWithTenants) {
  const Problem base = small_tree_problem(23, 28, 3, 8);
  DemandGenConfig demand_cfg;
  demand_cfg.heights = HeightLaw::kBimodal;
  demand_cfg.access_size = 2;  // partial access sets
  OnlineTrafficSpec traffic;
  traffic.arrivals = ArrivalLaw::kDiurnal;
  traffic.rate = 4.0;
  traffic.num_batches = 10;
  traffic.seed = 3;
  TenantClass gold, bulk;
  gold.name = "gold";
  gold.rate_share = 1.0;
  gold.profit_scale = 3.0;
  gold.mean_lifetime = 12.0;
  bulk.name = "bulk";
  bulk.rate_share = 3.0;
  bulk.profit_scale = 0.5;
  bulk.mean_lifetime = 3.0;
  traffic.tenants = {gold, bulk};
  run_parity(base, demand_cfg, traffic, config_with_threads(1), "diurnal");
}

// Forced compaction: a tiny floor and slack make the tombstone purge
// trigger mid-trace; parity must survive the renumbering.
TEST(OnlineScheduler, WarmEqualsColdAcrossCompaction) {
  const Problem base = small_tree_problem(29, 24, 2, 6);
  DemandGenConfig demand_cfg;
  demand_cfg.heights = HeightLaw::kBimodal;
  OnlineTrafficSpec traffic;
  traffic.rate = 8.0;
  traffic.num_batches = 10;
  traffic.seed = 17;
  TenantClass churn;
  churn.mean_lifetime = 1.0;  // fast departures: tombstones accumulate
  traffic.tenants = {churn};
  OnlineConfig config;
  config.compaction_floor = 4;
  config.compaction_slack = 0.25;
  const std::vector<EventBatch> trace =
      make_event_trace(base, demand_cfg, traffic);
  OnlineScheduler scheduler(base, config);
  bool compacted = false;
  for (std::size_t b = 0; b < trace.size(); ++b) {
    compacted |= scheduler.step(trace[b]).compacted;
    expect_parity(scheduler, config.solver,
                  "compaction batch " + std::to_string(b));
  }
  EXPECT_TRUE(compacted) << "trace never triggered a compaction; the "
                            "arm is not exercising the purge path";
}

// Cold mode re-solves everything every batch; it must agree with the
// reference too (it shares the assemble path, not the engine entry).
TEST(OnlineScheduler, ColdModeMatchesReference) {
  const Problem base = small_tree_problem(31, 24, 2, 8);
  DemandGenConfig demand_cfg;
  OnlineTrafficSpec traffic;
  traffic.rate = 4.0;
  traffic.num_batches = 4;
  traffic.seed = 9;
  OnlineConfig config;
  config.mode = OnlineSolveMode::kCold;
  run_parity(base, demand_cfg, traffic, config, "cold-mode");
}

// Warm skip must actually happen: on a steady trace the touched set
// should be a strict subset of the components at least once.
TEST(OnlineScheduler, WarmRunsSkipUntouchedComponents) {
  const Problem base = small_tree_problem(41, 64, 2, 30);
  DemandGenConfig demand_cfg;
  demand_cfg.endpoints = EndpointLaw::kLocalPair;
  demand_cfg.locality = 2;
  OnlineTrafficSpec traffic;
  traffic.rate = 2.0;
  traffic.num_batches = 8;
  traffic.seed = 13;
  const std::vector<EventBatch> trace =
      make_event_trace(base, demand_cfg, traffic);
  OnlineConfig config;
  OnlineScheduler scheduler(base, config);
  bool skipped_some = false;
  for (const EventBatch& batch : trace) {
    const OnlineBatchReport report = scheduler.step(batch);
    if (!report.params_changed && !report.compacted &&
        report.touched_components < report.total_components)
      skipped_some = true;
  }
  EXPECT_TRUE(skipped_some)
      << "every batch re-solved every component; warm start is inert";
}

// Fuzz arm: random event traces built directly (not via the arrival
// laws) — bursts of arrivals, random departures of random live keys,
// empty batches, departure-only batches — across seeds and thread
// counts, parity after every batch.
TEST(OnlineScheduler, FuzzRandomEventTraces) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Problem base =
        small_tree_problem(100 + seed, 28, 2, 8, HeightLaw::kBimodal);
    DemandGenConfig demand_cfg;
    demand_cfg.heights = HeightLaw::kBimodal;
    const DemandSampler sampler(base, demand_cfg);
    Rng rng(seed * 977 + 5);
    OnlineConfig config;
    config.solver.threads = seed % 2 == 0 ? 4 : 1;
    config.compaction_floor = 8;
    OnlineScheduler scheduler(base, config);
    std::vector<DemandKey> live;
    DemandKey next_key = 0;
    for (int b = 0; b < 12; ++b) {
      EventBatch batch;
      batch.time = static_cast<double>(b);
      const int arrivals =
          b % 4 == 3 ? 0 : static_cast<int>(rng.uniform_int(0, 6));
      for (int k = 0; k < arrivals; ++k) {
        OnlineArrival arrival;
        arrival.key = next_key++;
        arrival.draw = sampler.next(rng);
        live.push_back(arrival.key);
        batch.arrivals.push_back(std::move(arrival));
      }
      const int departures = static_cast<int>(rng.uniform_int(
          0, static_cast<std::int64_t>(live.size() / 2 + 1)));
      for (int k = 0; k < departures && !live.empty(); ++k) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(live.size())));
        batch.departures.push_back(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
      scheduler.step(batch);
      expect_parity(scheduler, config.solver,
                    "fuzz seed " + std::to_string(seed) + " batch " +
                        std::to_string(b));
    }
  }
}

// ComponentForest::update must produce the identical forest a fresh
// build over the revised mask would, through a chain of random deltas.
TEST(ComponentForestUpdate, MatchesFreshBuildThroughRandomDeltas) {
  const Problem problem = small_tree_problem(55, 32, 2, 20,
                                             HeightLaw::kBimodal);
  const LayeredPlan plan =
      build_tree_layered_plan(problem, DecompKind::kRootFixing);
  const int n = problem.num_instances();
  Rng rng(123);
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (InstanceId i = 0; i < n; ++i)
    mask[static_cast<std::size_t>(i)] = rng.chance(0.7) ? 1 : 0;

  ComponentForest incremental, reference;
  incremental.build(problem, plan, mask);
  for (int round = 0; round < 20; ++round) {
    std::vector<InstanceId> added, removed;
    for (InstanceId i = 0; i < n; ++i) {
      if (!rng.chance(0.15)) continue;
      auto& m = mask[static_cast<std::size_t>(i)];
      if (m) {
        m = 0;
        removed.push_back(i);
      } else {
        m = 1;
        added.push_back(i);
      }
    }
    incremental.update(problem, plan, mask, added, removed);
    reference.build(problem, plan, mask);
    ASSERT_EQ(incremental.num_groups(), reference.num_groups());
    ASSERT_EQ(incremental.total_components(), reference.total_components());
    for (int g = 0; g < reference.num_groups(); ++g) {
      ASSERT_EQ(incremental.components_in_group(g),
                reference.components_in_group(g))
          << "round " << round << " group " << g;
      for (int c = 0; c < reference.components_in_group(g); ++c) {
        const auto got = incremental.component_ids(g, c);
        const auto want = reference.component_ids(g, c);
        ASSERT_EQ(std::vector<InstanceId>(got.begin(), got.end()),
                  std::vector<InstanceId>(want.begin(), want.end()))
            << "round " << round << " group " << g << " comp " << c;
      }
    }
    for (InstanceId i = 0; i < n; ++i)
      EXPECT_EQ(incremental.component_of(i) >= 0,
                mask[static_cast<std::size_t>(i)] != 0);
  }
}

}  // namespace
}  // namespace treesched
