#include "decomp/tree_decomposition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "workload/tree_gen.hpp"

namespace treesched {
namespace {

int ceil_log2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

TEST(RootFixing, MatchesBfsTreeAndValidates) {
  Rng rng(1);
  const TreeNetwork t = make_tree(TreeShape::kRandomAttachment, 40, rng);
  const TreeDecomposition h = build_root_fixing(t, 0);
  EXPECT_EQ(h.root(), 0);
  const auto validation = h.validate();
  EXPECT_TRUE(validation.ok) << validation.why;
  // Root-fixing H *is* T rooted: every T-edge joins parent and child.
  for (EdgeId e = 0; e < t.num_edges(); ++e) {
    const VertexId u = t.edge_u(e), v = t.edge_v(e);
    EXPECT_TRUE(h.parent(u) == v || h.parent(v) == u);
  }
  // Pivot size exactly 1 (paper, Section 4.2): chi(z) = {parent(z)}.
  EXPECT_EQ(h.pivot_size(), 1);
  for (VertexId z = 0; z < 40; ++z) {
    if (z == h.root()) {
      EXPECT_TRUE(h.pivots(z).empty());
    } else {
      ASSERT_EQ(h.pivots(z).size(), 1u);
      EXPECT_EQ(h.pivots(z)[0], h.parent(z));
    }
  }
}

TEST(RootFixing, PathDepthIsN) {
  Rng rng(2);
  const TreeNetwork t = make_tree(TreeShape::kPath, 32, rng);
  const TreeDecomposition h = build_root_fixing(t, 0);
  EXPECT_EQ(h.max_depth(), 32);  // the degenerate case the paper warns about
}

TEST(Balancing, DepthLogarithmicPivotBounded) {
  for (const TreeShape shape : kAllTreeShapes) {
    Rng rng(3);
    const int n = 128;
    const TreeNetwork t = make_tree(shape, n, rng);
    const TreeDecomposition h = build_balancing(t);
    const auto validation = h.validate();
    ASSERT_TRUE(validation.ok) << to_string(shape) << ": " << validation.why;
    EXPECT_LE(h.max_depth(), ceil_log2(n) + 1) << to_string(shape);
    // Pivots are H-ancestors, so theta <= depth (paper, Section 4.2).
    EXPECT_LE(h.pivot_size(), h.max_depth()) << to_string(shape);
  }
}

TEST(Balancing, StarHasDepthTwo) {
  Rng rng(4);
  const TreeNetwork t = make_tree(TreeShape::kStar, 50, rng);
  const TreeDecomposition h = build_balancing(t);
  EXPECT_EQ(h.root(), 0);  // the hub is the only balancer
  EXPECT_EQ(h.max_depth(), 2);
}

TEST(Capture, IsMinDepthVertexOnPath) {
  Rng rng(5);
  const TreeNetwork t = make_tree(TreeShape::kRandomAttachment, 64, rng);
  const TreeDecomposition h = build_balancing(t);
  for (int it = 0; it < 100; ++it) {
    const auto u = static_cast<VertexId>(rng.next_below(64));
    const auto v = static_cast<VertexId>(rng.next_below(64));
    const VertexId mu = h.capture(u, v);
    int best = h.depth(mu);
    for (VertexId x : t.path_vertices(u, v)) {
      EXPECT_GE(h.depth(x), best);
      EXPECT_TRUE(x != mu || h.depth(x) == best);
    }
    // The capture node is the H-LCA of the endpoints (Section 4.4).
    EXPECT_EQ(mu, h.lca(u, v));
  }
}

TEST(Pivots, AreNeighborsOfComponents) {
  Rng rng(6);
  const TreeNetwork t = make_tree(TreeShape::kCaterpillar, 48, rng);
  const TreeDecomposition h = build_balancing(t);
  // Brute-force Gamma[C(z)] and compare with pivots(z).
  for (VertexId z = 0; z < 48; ++z) {
    std::vector<char> in_comp(48, 0);
    std::vector<VertexId> comp{z};
    in_comp[static_cast<std::size_t>(z)] = 1;
    for (std::size_t head = 0; head < comp.size(); ++head) {
      for (VertexId c : h.children(comp[head])) {
        in_comp[static_cast<std::size_t>(c)] = 1;
        comp.push_back(c);
      }
    }
    std::vector<VertexId> expected;
    for (VertexId x = 0; x < 48; ++x) {
      if (in_comp[static_cast<std::size_t>(x)]) continue;
      for (const auto& adj : t.neighbors(x)) {
        if (in_comp[static_cast<std::size_t>(adj.to)]) {
          expected.push_back(x);
          break;
        }
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(h.pivots(z), expected) << "z=" << z;
  }
}

TEST(FindBalancer, PiecesAtMostHalf) {
  for (const TreeShape shape : kAllTreeShapes) {
    Rng rng(7);
    const int n = 63;
    const TreeNetwork t = make_tree(shape, n, rng);
    std::vector<VertexId> all(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
    std::vector<int> mark(static_cast<std::size_t>(n), 1);
    const VertexId z = find_balancer(t, all, mark, 1);
    // Verify by splitting: every piece has size <= floor(n/2).
    auto pieces = detail::split_component(t, z, mark, 1);
    for (const auto& piece : pieces)
      EXPECT_LE(piece.size(), static_cast<std::size_t>(n / 2))
          << to_string(shape);
  }
}

TEST(Validate, DetectsBrokenDecomposition) {
  // H = path 0-1-2-3 rooted at 0 over T = star at 0: T-edge (0,3) joins
  // comparable vertices, but C(2) = {2,3} is not T-connected.
  const TreeNetwork star(4, {{0, 1}, {0, 2}, {0, 3}});
  std::vector<VertexId> parent{kNoVertex, 0, 1, 2};
  const TreeDecomposition bad(star, 0, std::move(parent));
  const auto validation = bad.validate();
  EXPECT_FALSE(validation.ok);
  EXPECT_NE(validation.why.find("not T-connected"), std::string::npos);
}

TEST(Decomposition, SingleAndTwoVertexTrees) {
  const TreeNetwork two(2, {{0, 1}});
  for (DecompKind kind :
       {DecompKind::kRootFixing, DecompKind::kBalancing, DecompKind::kIdeal}) {
    const TreeDecomposition h = build_decomposition(two, kind);
    EXPECT_TRUE(h.validate().ok) << to_string(kind);
    EXPECT_EQ(h.max_depth(), 2);
  }
}

}  // namespace
}  // namespace treesched
