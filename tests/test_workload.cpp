#include "workload/scenario.hpp"

#include <gtest/gtest.h>

#include "workload/line_gen.hpp"
#include "workload/tree_gen.hpp"

namespace treesched {
namespace {

TEST(TreeGen, AllShapesProduceValidTrees) {
  // TreeNetwork's constructor validates connectivity/acyclicity, so
  // construction succeeding is the core check; we add shape signatures.
  Rng rng(1);
  for (TreeShape shape : kAllTreeShapes) {
    const TreeNetwork t = make_tree(shape, 40, rng);
    EXPECT_EQ(t.num_vertices(), 40);
    EXPECT_EQ(t.num_edges(), 39);
  }
}

TEST(TreeGen, ShapeSignatures) {
  Rng rng(2);
  const TreeNetwork star = make_tree(TreeShape::kStar, 20, rng);
  EXPECT_EQ(star.degree(0), 19);
  const TreeNetwork path = make_tree(TreeShape::kPath, 20, rng);
  EXPECT_EQ(path.degree(0), 1);
  EXPECT_EQ(path.degree(10), 2);
  const TreeNetwork binary = make_tree(TreeShape::kBinary, 15, rng);
  EXPECT_LE(binary.depth(14), 4);
}

TEST(TreeGen, IdenticalNetworksShareTopology) {
  Rng rng(3);
  const auto nets = make_networks(TreeShape::kRandomAttachment, 30, 3, rng,
                                  /*identical=*/true);
  ASSERT_EQ(nets.size(), 3u);
  for (EdgeId e = 0; e < nets[0].num_edges(); ++e) {
    EXPECT_EQ(nets[0].edge_u(e), nets[1].edge_u(e));
    EXPECT_EQ(nets[0].edge_v(e), nets[2].edge_v(e));
  }
}

TEST(DemandGen, HeightLawsRespected) {
  for (HeightLaw law : {HeightLaw::kUnit, HeightLaw::kUniformRange,
                        HeightLaw::kBimodal, HeightLaw::kNarrowOnly}) {
    TreeScenarioSpec spec;
    spec.num_vertices = 30;
    spec.demands.num_demands = 40;
    spec.demands.heights = law;
    spec.demands.height_min = 0.2;
    spec.seed = 7;
    const Problem p = make_tree_problem(spec);
    for (DemandId d = 0; d < p.num_demands(); ++d) {
      const Height h = p.demand(d).height;
      EXPECT_GT(h, 0.0);
      EXPECT_LE(h, 1.0 + kEps);
      if (law == HeightLaw::kUnit) {
        EXPECT_DOUBLE_EQ(h, 1.0);
      }
      if (law == HeightLaw::kNarrowOnly) {
        EXPECT_LE(h, 0.5 + kEps);
      }
      if (law != HeightLaw::kUnit) {
        EXPECT_GE(h, 0.2 - kEps);
      }
    }
    if (law == HeightLaw::kBimodal) {
      int wide = 0;
      for (DemandId d = 0; d < p.num_demands(); ++d)
        wide += (p.demand(d).height > 0.5);
      EXPECT_GT(wide, 5);
      EXPECT_LT(wide, 35);
    }
  }
}

TEST(DemandGen, AccessSizeRestrictsNetworks) {
  TreeScenarioSpec spec;
  spec.num_vertices = 20;
  spec.num_networks = 4;
  spec.demands.num_demands = 20;
  spec.demands.access_size = 2;
  spec.seed = 9;
  const Problem p = make_tree_problem(spec);
  for (DemandId d = 0; d < p.num_demands(); ++d)
    EXPECT_EQ(p.access(d).size(), 2u);
  EXPECT_EQ(p.num_instances(), 40);
}

TEST(DemandGen, LocalPairsStayLocal) {
  TreeScenarioSpec spec;
  spec.num_vertices = 60;
  spec.demands.num_demands = 30;
  spec.demands.endpoints = EndpointLaw::kLocalPair;
  spec.demands.locality = 3;
  spec.seed = 11;
  const Problem p = make_tree_problem(spec);
  int local = 0;
  for (DemandId d = 0; d < p.num_demands(); ++d) {
    const Demand& dem = p.demand(d);
    if (p.network(0).dist(dem.u, dem.v) <= 3) ++local;
  }
  EXPECT_GE(local, 25);  // fallback to uniform is rare
}

TEST(DemandGen, LeafToLeafUsesLeaves) {
  TreeScenarioSpec spec;
  spec.shape = TreeShape::kBinary;
  spec.num_vertices = 31;
  spec.num_networks = 1;
  spec.demands.num_demands = 20;
  spec.demands.endpoints = EndpointLaw::kLeafToLeaf;
  spec.seed = 13;
  const Problem p = make_tree_problem(spec);
  for (DemandId d = 0; d < p.num_demands(); ++d) {
    EXPECT_EQ(p.network(0).degree(p.demand(d).u), 1);
    EXPECT_EQ(p.network(0).degree(p.demand(d).v), 1);
  }
}

TEST(LineGen, WindowsRespectConfig) {
  LineGenConfig cfg;
  cfg.num_slots = 50;
  cfg.num_demands = 40;
  cfg.min_proc_time = 2;
  cfg.max_proc_time = 8;
  cfg.window_slack = 2.0;
  Rng rng(15);
  const LineProblem line = make_random_line_problem(cfg, rng);
  for (DemandId d = 0; d < line.num_demands(); ++d) {
    const LineDemand& ld = line.demand(d);
    EXPECT_GE(ld.proc_time, 2);
    EXPECT_LE(ld.proc_time, 8);
    EXPECT_GE(ld.release, 0);
    EXPECT_LT(ld.deadline, 50);
    EXPECT_LE(ld.proc_time, ld.deadline - ld.release + 1);
    // Window about twice the processing time.
    EXPECT_LE(ld.deadline - ld.release + 1, 2 * ld.proc_time + 1);
  }
}

TEST(LineGen, SlackOneMeansFixedPlacements) {
  LineGenConfig cfg;
  cfg.num_slots = 30;
  cfg.num_demands = 15;
  cfg.window_slack = 1.0;
  Rng rng(17);
  const LineProblem line = make_random_line_problem(cfg, rng);
  for (DemandId d = 0; d < line.num_demands(); ++d)
    EXPECT_EQ(line.num_starts(d), 1);
}

TEST(Scenario, BuildersProduceFinalizedProblems) {
  TreeScenarioSpec ts;
  ts.seed = 21;
  const Problem tp = make_tree_problem(ts);
  EXPECT_TRUE(tp.finalized());
  EXPECT_FALSE(describe(ts).empty());

  LineScenarioSpec ls;
  ls.seed = 22;
  const Problem lp = make_line_problem(ls);
  EXPECT_TRUE(lp.finalized());
  EXPECT_FALSE(describe(ls).empty());
}

TEST(Scenario, DeterministicBySeed) {
  TreeScenarioSpec spec;
  spec.seed = 33;
  const Problem a = make_tree_problem(spec);
  const Problem b = make_tree_problem(spec);
  ASSERT_EQ(a.num_instances(), b.num_instances());
  for (InstanceId i = 0; i < a.num_instances(); ++i) {
    EXPECT_EQ(a.instance(i).edges, b.instance(i).edges);
    EXPECT_DOUBLE_EQ(a.instance(i).profit, b.instance(i).profit);
  }
}

}  // namespace
}  // namespace treesched
