// Shared helpers for the treesched test suite.
#pragma once

#include <gtest/gtest.h>

#include "capacity/capacity_profile.hpp"
#include "exact/branch_and_bound.hpp"
#include "model/problem.hpp"
#include "model/solution.hpp"
#include "workload/scenario.hpp"

namespace treesched::testutil {

// A small random tree problem sized for exact solving.
inline Problem small_tree_problem(std::uint64_t seed, VertexId n = 24,
                                  int r = 2, int m = 10,
                                  HeightLaw heights = HeightLaw::kUnit,
                                  TreeShape shape =
                                      TreeShape::kRandomAttachment) {
  TreeScenarioSpec spec;
  spec.shape = shape;
  spec.num_vertices = n;
  spec.num_networks = r;
  spec.demands.num_demands = m;
  spec.demands.heights = heights;
  spec.demands.profit_max = 50.0;
  spec.seed = seed;
  return make_tree_problem(spec);
}

// A small random line-with-windows problem sized for exact solving.
inline Problem small_line_problem(std::uint64_t seed, int slots = 24,
                                  int resources = 2, int m = 8,
                                  HeightLaw heights = HeightLaw::kUnit,
                                  double window_slack = 1.5) {
  LineScenarioSpec spec;
  spec.line.num_slots = slots;
  spec.line.num_resources = resources;
  spec.line.num_demands = m;
  spec.line.max_proc_time = slots / 3;
  spec.line.window_slack = window_slack;
  spec.line.heights = heights;
  spec.line.profit_max = 50.0;
  spec.seed = seed;
  return make_line_problem(spec);
}

// Exact optimum; fails the test if the search did not complete.
inline Profit exact_opt(const Problem& problem) {
  const ExactResult exact = solve_exact(problem);
  EXPECT_TRUE(exact.completed) << "exact search hit node limit";
  const auto report = check_feasibility(problem, exact.solution);
  EXPECT_TRUE(report.feasible) << report.violation;
  return exact.profit;
}

// Asserts the solution is feasible and returns its profit.
inline Profit require_feasible(const Problem& problem,
                               const Solution& solution) {
  const auto report = check_feasibility(problem, solution);
  EXPECT_TRUE(report.feasible) << report.violation;
  return solution.profit(problem);
}

}  // namespace treesched::testutil
