#include "model/solution.hpp"

#include <gtest/gtest.h>

namespace treesched {
namespace {

Problem line_problem_with_heights() {
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(6));
  Problem p(6, std::move(networks));
  p.add_demand(0, 3, 1.0, 0.5);  // instance 0: slots 0..2
  p.add_demand(1, 5, 2.0, 0.7);  // instance 1: slots 1..4
  p.add_demand(3, 5, 3.0, 0.4);  // instance 2: slots 3..4
  p.finalize();
  return p;
}

TEST(Solution, ProfitSumsSelected) {
  const Problem p = line_problem_with_heights();
  Solution s;
  s.selected = {0, 2};
  EXPECT_DOUBLE_EQ(s.profit(p), 4.0);
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.size(), 2u);
}

TEST(Feasibility, AcceptsValidSolution) {
  const Problem p = line_problem_with_heights();
  Solution s;
  s.selected = {0, 2};  // 0.5 on slots 0-2, 0.4 on 3-4: fine
  EXPECT_TRUE(check_feasibility(p, s).feasible);
}

TEST(Feasibility, PaperFigure1Semantics) {
  // Figure 1 of the paper: {A, C} and {B, C} feasible, {A, B} not.
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(8));
  Problem p(8, std::move(networks));
  p.add_demand(0, 4, 1.0, 0.5);  // A
  p.add_demand(2, 7, 1.0, 0.7);  // B (overlaps A on slots 2,3)
  p.add_demand(0, 2, 1.0, 0.4);  // C? — make C overlap both lightly
  p.finalize();
  Solution ab{{0, 1}};
  EXPECT_FALSE(check_feasibility(p, ab).feasible);
  Solution bc{{1, 2}};
  EXPECT_TRUE(check_feasibility(p, bc).feasible);
}

TEST(Feasibility, RejectsOverloadedEdge) {
  const Problem p = line_problem_with_heights();
  Solution s;
  s.selected = {0, 1};  // share slots 1-2: 0.5 + 0.7 > 1
  const auto report = check_feasibility(p, s);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.violation.find("overloaded"), std::string::npos);
}

TEST(Feasibility, RejectsDuplicateInstanceAndDemand) {
  const Problem p = line_problem_with_heights();
  Solution dup{{0, 0}};
  EXPECT_FALSE(check_feasibility(p, dup).feasible);
  Solution bad{{-1}};
  EXPECT_FALSE(check_feasibility(p, bad).feasible);
}

TEST(Feasibility, RejectsTwoInstancesOfOneDemand) {
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(6));
  networks.push_back(TreeNetwork::line(6));
  Problem p(6, std::move(networks));
  p.add_demand(0, 2, 1.0);
  p.finalize();
  ASSERT_EQ(p.num_instances(), 2);
  Solution s{{0, 1}};
  const auto report = check_feasibility(p, s);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.violation.find("demand"), std::string::npos);
}

TEST(LoadTracker, FitsAddRemove) {
  const Problem p = line_problem_with_heights();
  LoadTracker tracker(p);
  EXPECT_TRUE(tracker.fits(0));
  tracker.add(0);
  EXPECT_FALSE(tracker.fits(1));  // 0.5+0.7 over slots 1-2
  EXPECT_TRUE(tracker.fits(2));
  tracker.add(2);
  EXPECT_TRUE(tracker.demand_used(0));
  EXPECT_TRUE(tracker.demand_used(2));
  tracker.remove(0);
  EXPECT_FALSE(tracker.fits(1));  // still blocked by 2 on slots 3-4
  tracker.remove(2);
  EXPECT_TRUE(tracker.fits(1));
  tracker.add(1);
  tracker.clear();
  EXPECT_FALSE(tracker.demand_used(1));
  EXPECT_DOUBLE_EQ(tracker.load(3), 0.0);
}

TEST(LoadTracker, RespectsCapacities) {
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(4));
  Problem p(4, std::move(networks));
  p.set_uniform_capacity(2.0);
  p.add_demand(0, 3, 1.0);
  p.add_demand(0, 3, 1.0);
  p.add_demand(0, 3, 1.0);
  p.finalize();
  LoadTracker tracker(p);
  tracker.add(0);
  EXPECT_TRUE(tracker.fits(1));  // capacity 2 admits two unit paths
  tracker.add(1);
  EXPECT_FALSE(tracker.fits(2));
}

}  // namespace
}  // namespace treesched
