// Central-vs-incremental engine parity (the oracle that keeps the
// incremental rewrite honest): the shard-backed frontier engine — serial
// and with parallel epoch execution — must reproduce the central-
// DualState reference engine EXACTLY.  Selected set, raise stack,
// lambda_observed, dual_objective and every count are compared with ==,
// no tolerances: the incremental path replays the reference path's
// floating-point operation order (ordered beta walks, chronological
// objective accumulation), so even the doubles are bit-identical.
#include "framework/two_phase.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "decomp/layered.hpp"
#include "dist/luby_mis.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"
#include "workload/scenario.hpp"

namespace treesched {
namespace {

// TREESCHED_TRACE=1 reruns this whole suite with the flight recorder on:
// the CI sanitizer job uses it to prove tracing cannot perturb any field
// compared with == below (the ISSUE's "tracing is invisible" guarantee).
[[maybe_unused]] const bool trace_env_hook = [] {
  if (std::getenv("TREESCHED_TRACE") != nullptr) obs::enable_tracing();
  return true;
}();

using testutil::require_feasible;
using testutil::small_line_problem;
using testutil::small_tree_problem;

// Compares two runs field by field with exact equality.
void expect_identical(const SolveResult& ref, const SolveResult& got,
                      const std::string& what) {
  EXPECT_EQ(ref.solution.selected, got.solution.selected) << what;
  EXPECT_EQ(ref.raise_stack, got.raise_stack) << what;
  EXPECT_EQ(ref.stats.epochs, got.stats.epochs) << what;
  EXPECT_EQ(ref.stats.stages, got.stats.stages) << what;
  EXPECT_EQ(ref.stats.steps, got.stats.steps) << what;
  EXPECT_EQ(ref.stats.max_steps_in_stage, got.stats.max_steps_in_stage)
      << what;
  EXPECT_EQ(ref.stats.raises, got.stats.raises) << what;
  EXPECT_EQ(ref.stats.mis_rounds, got.stats.mis_rounds) << what;
  EXPECT_EQ(ref.stats.comm_rounds, got.stats.comm_rounds) << what;
  EXPECT_EQ(ref.stats.messages, got.stats.messages) << what;
  EXPECT_EQ(ref.stats.message_bytes, got.stats.message_bytes) << what;
  // Doubles with ==: bit-identical, not merely close.
  EXPECT_EQ(ref.stats.dual_objective, got.stats.dual_objective) << what;
  EXPECT_EQ(ref.stats.lambda_observed, got.stats.lambda_observed) << what;
  EXPECT_EQ(ref.stats.dual_upper_bound, got.stats.dual_upper_bound) << what;
  EXPECT_EQ(ref.stats.profit, got.stats.profit) << what;
  EXPECT_EQ(ref.stats.delta, got.stats.delta) << what;
  EXPECT_EQ(ref.stats.xi, got.stats.xi) << what;
  EXPECT_EQ(ref.stats.stages_per_epoch, got.stats.stages_per_epoch) << what;
  EXPECT_EQ(ref.stats.lockstep_ok, got.stats.lockstep_ok) << what;
  EXPECT_EQ(ref.stats.mis_ok, got.stats.mis_ok) << what;
  EXPECT_EQ(ref.stats.interference_ok, got.stats.interference_ok) << what;
  EXPECT_EQ(ref.stats.mis_failed_steps, got.stats.mis_failed_steps) << what;
  EXPECT_EQ(ref.stats.mis_retries, got.stats.mis_retries) << what;
}

// Runs the reference engine and the incremental engine (threads = 1 and
// threads = 4) on the same problem/plan/config and demands bitwise
// equality.  The default GreedyMis oracle is deterministic and
// component-decomposable, so all three runs must coincide exactly.
void expect_parity(const Problem& p, const LayeredPlan& plan,
                   SolverConfig config, const std::string& what) {
  config.keep_stack = true;
  config.count_messages = true;

  SolverConfig central = config;
  central.engine = EngineImpl::kCentralReference;
  const SolveResult ref = solve_with_plan(p, plan, central);

  for (const int threads : {1, 4}) {
    SolverConfig incremental = config;
    incremental.engine = EngineImpl::kIncremental;
    incremental.threads = threads;
    const SolveResult got = solve_with_plan(p, plan, incremental);
    expect_identical(ref, got,
                     what + " threads=" + std::to_string(threads));
    require_feasible(p, got.solution);
  }
  // The legacy per-epoch component recompute must coincide too — the
  // persistent forest (the threads=4 default above) and the recompute
  // are two implementations of one partition.
  SolverConfig legacy = config;
  legacy.engine = EngineImpl::kIncremental;
  legacy.threads = 4;
  legacy.use_component_forest = false;
  expect_identical(ref, solve_with_plan(p, plan, legacy),
                   what + " legacy-split threads=4");
}

TEST(EngineParity, TreeUnitAcrossLockstepAndThreads) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = small_tree_problem(seed, 40, 2, 24);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    for (const bool lockstep : {false, true}) {
      SolverConfig config;
      config.epsilon = 0.15;
      config.lockstep = lockstep;
      expect_parity(p, plan, config,
                    "tree-unit seed=" + std::to_string(seed) +
                        " lockstep=" + std::to_string(lockstep));
    }
  }
}

TEST(EngineParity, TreeArbitraryHeightsNarrowRule) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = small_tree_problem(seed + 30, 36, 2, 20,
                                         HeightLaw::kUniformRange);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    SolverConfig config;
    config.rule = RaiseRuleKind::kNarrow;
    expect_parity(p, plan, config,
                  "tree-narrow seed=" + std::to_string(seed));
  }
}

TEST(EngineParity, LineUnitAndArbitrary) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem unit = small_line_problem(seed, 30, 2, 10);
    const LayeredPlan unit_plan = build_line_layered_plan(unit);
    SolverConfig config;
    config.epsilon = 0.2;
    expect_parity(unit, unit_plan,
                  config, "line-unit seed=" + std::to_string(seed));

    const Problem arb = small_line_problem(seed + 60, 30, 2, 10,
                                           HeightLaw::kUniformRange);
    const LayeredPlan arb_plan = build_line_layered_plan(arb);
    SolverConfig narrow = config;
    narrow.rule = RaiseRuleKind::kNarrow;
    expect_parity(arb, arb_plan, narrow,
                  "line-narrow seed=" + std::to_string(seed));
  }
}

TEST(EngineParity, StageModesAndRefinements) {
  const Problem p = small_tree_problem(77, 36, 2, 20);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  for (const StageMode mode :
       {StageMode::kMultiStage, StageMode::kSingleStagePS,
        StageMode::kExact}) {
    SolverConfig config;
    config.stage_mode = mode;
    expect_parity(p, plan, config,
                  "mode=" + std::to_string(static_cast<int>(mode)));
  }
  // Appendix-A refinement: no alpha raise.  (Approximation-wise this is
  // only sound for single-instance demands, but both engines must agree
  // mechanically on any input.)
  const LayeredPlan mu_plan = build_tree_layered_plan(
      p, DecompKind::kRootFixing, /*mu_wings_only=*/true);
  SolverConfig no_alpha;
  no_alpha.raise_alpha = false;
  expect_parity(p, mu_plan, no_alpha, "no-alpha root-fixing");
  SolverConfig interference;
  interference.check_interference = true;
  expect_parity(p, plan, interference, "check-interference");
}

TEST(EngineParity, HeightSplitAndRestriction) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Problem p = small_tree_problem(seed + 200, 32, 2, 20,
                                         HeightLaw::kBimodal);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    for (const int threads : {1, 4}) {
      SolverConfig central;
      central.engine = EngineImpl::kCentralReference;
      SolverConfig incremental;
      incremental.engine = EngineImpl::kIncremental;
      incremental.threads = threads;
      const SolveResult ref = solve_height_split(p, plan, central);
      const SolveResult got = solve_height_split(p, plan, incremental);
      EXPECT_EQ(ref.solution.selected, got.solution.selected);
      EXPECT_EQ(ref.stats.steps, got.stats.steps);
      EXPECT_EQ(ref.stats.dual_objective, got.stats.dual_objective);
      EXPECT_EQ(ref.stats.lambda_observed, got.stats.lambda_observed);
      EXPECT_EQ(ref.stats.profit, got.stats.profit);
    }
    // restrict_to: the subset runs must also coincide.
    std::vector<InstanceId> evens;
    for (InstanceId i = 0; i < p.num_instances(); i += 2) evens.push_back(i);
    SolverConfig central;
    central.engine = EngineImpl::kCentralReference;
    central.keep_stack = true;
    TwoPhaseEngine ref_engine(p, plan, central);
    ref_engine.restrict_to(evens);
    const SolveResult ref = ref_engine.run();
    for (const int threads : {1, 4}) {
      SolverConfig incremental;
      incremental.keep_stack = true;
      incremental.threads = threads;
      TwoPhaseEngine engine(p, plan, incremental);
      engine.restrict_to(evens);
      const SolveResult got = engine.run();
      expect_identical(ref, got, "restricted threads=" +
                                     std::to_string(threads));
    }
  }
}

TEST(EngineParity, LubyOracleSerialIsBitIdenticalToCentral) {
  // A stateful randomized oracle consumes one global stream: with
  // threads == 1 the incremental engine presents it the exact same
  // candidate sequences as the reference engine, so the whole run —
  // draws included — is reproduced bit for bit.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Problem p = small_tree_problem(seed + 400, 40, 2, 24);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    SolverConfig config;
    config.keep_stack = true;
    config.engine = EngineImpl::kCentralReference;
    LubyMis ref_oracle(p, seed);
    const SolveResult ref = solve_with_plan(p, plan, config, &ref_oracle);
    config.engine = EngineImpl::kIncremental;
    LubyMis inc_oracle(p, seed);
    const SolveResult got = solve_with_plan(p, plan, config, &inc_oracle);
    expect_identical(ref, got, "luby seed=" + std::to_string(seed));
  }
}

TEST(EngineParity, LubyParallelIsDeterministicAndCertified) {
  // With threads >= 2, LubyMis runs per-component streams — deliberately
  // a different randomness schedule than the serial run, but fully
  // deterministic: any two parallel runs (any thread counts >= 2) agree
  // exactly, and the run still meets the stage targets.
  const Problem p = small_tree_problem(500, 48, 2, 28);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  SolverConfig config;
  config.keep_stack = true;
  config.epsilon = 0.2;
  SolveResult first;
  for (int repeat = 0; repeat < 2; ++repeat) {
    for (const int threads : {2, 4}) {
      SolverConfig run_config = config;
      run_config.threads = threads;
      LubyMis oracle(p, 9);
      const SolveResult got = solve_with_plan(p, plan, run_config, &oracle);
      require_feasible(p, got.solution);
      EXPECT_GE(got.stats.lambda_observed, 1.0 - 0.2 - 1e-6);
      if (repeat == 0 && threads == 2) {
        first = got;
        continue;
      }
      expect_identical(first, got,
                       "luby-parallel threads=" + std::to_string(threads));
    }
  }
}

TEST(EngineParity, NonUniformCapacitiesAndXiOverride) {
  TreeScenarioSpec spec;
  spec.num_vertices = 36;
  spec.num_networks = 2;
  spec.demands.num_demands = 22;
  spec.demands.profit_max = 40.0;
  spec.seed = 321;
  spec.capacities = CapacityLaw::kTwoClass;
  spec.capacity_spread = 4.0;
  const Problem p = make_tree_problem(spec);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  for (const bool aware : {true, false}) {
    SolverConfig config;
    config.capacity_aware_raises = aware;
    expect_parity(p, plan, config,
                  "nonuniform aware=" + std::to_string(aware));
  }
  SolverConfig override_config;
  override_config.xi_override = 0.9;
  expect_parity(p, plan, override_config, "xi-override");
}

}  // namespace
}  // namespace treesched
