// Round-complexity claims: Lemma 5.1 (steps per stage = O(log pmax/pmin)
// via the kill chain of Claim 5.2), the epoch bound from Lemma 4.1, the
// stage count ceil(log_xi eps), and the accounting identities of the
// stats.
#include <gtest/gtest.h>

#include <cmath>

#include "decomp/layered.hpp"
#include "dist/luby_mis.hpp"
#include "dist/scheduler.hpp"
#include "test_util.hpp"
#include "workload/scenario.hpp"

namespace treesched {
namespace {

using testutil::require_feasible;

Problem profit_range_problem(std::uint64_t seed, double pmax, int m = 40,
                             VertexId n = 64) {
  TreeScenarioSpec spec;
  spec.num_vertices = n;
  spec.num_networks = 2;
  spec.demands.num_demands = m;
  spec.demands.profit_max = pmax;
  spec.seed = seed;
  return make_tree_problem(spec);
}

TEST(Rounds, StepsPerStageBoundedByProfitRange) {
  // Claim 5.2: along a kill chain profits double, so a stage runs at most
  // ~1 + log2(pmax/pmin) steps.  Allow +2 slack for threshold rounding.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Problem p = profit_range_problem(seed, 64.0);
    DistOptions options;
    options.seed = seed;
    const DistResult run = solve_tree_unit_distributed(p, options);
    const double budget =
        3.0 + std::log2(p.max_profit() / p.min_profit());
    EXPECT_LE(run.stats.max_steps_in_stage, budget) << "seed " << seed;
  }
}

TEST(Rounds, EpochsBoundedByIdealDepth) {
  for (VertexId n : {32, 128, 512}) {
    const Problem p = profit_range_problem(3, 16.0, 30, n);
    DistOptions options;
    const DistResult run = solve_tree_unit_distributed(p, options);
    int log2n = 0;
    while ((1 << log2n) < n) ++log2n;
    EXPECT_LE(run.stats.epochs, 2 * log2n + 1) << "n=" << n;
  }
}

TEST(Rounds, StageCountMatchesXiSchedule) {
  const Problem p = profit_range_problem(5, 16.0);
  for (double eps : {0.3, 0.1, 0.05}) {
    DistOptions options;
    options.epsilon = eps;
    const DistResult run = solve_tree_unit_distributed(p, options);
    // xi derives from the observed Delta (<= 6): ceil(log_xi eps) stages.
    EXPECT_NEAR(run.stats.xi,
                2.0 * (run.stats.delta + 1.0) /
                    (2.0 * (run.stats.delta + 1.0) + 1.0),
                1e-12);
    const int expected = static_cast<int>(
        std::ceil(std::log(eps) / std::log(run.stats.xi)));
    EXPECT_EQ(run.stats.stages_per_epoch, expected) << "eps=" << eps;
  }
}

TEST(Rounds, AccountingIdentities) {
  const Problem p = profit_range_problem(7, 32.0);
  DistOptions options;
  options.count_messages = true;
  const DistResult run = solve_tree_unit_distributed(p, options);
  // comm_rounds = mis_rounds + one propagation round per step.
  EXPECT_EQ(run.stats.comm_rounds, run.stats.mis_rounds + run.stats.steps);
  EXPECT_GE(run.stats.mis_rounds, 2 * run.stats.steps);  // >= 1 Luby iter
  EXPECT_GE(run.stats.raises, run.stats.steps);          // >= 1 raise/step
  EXPECT_EQ(run.stats.message_bytes, run.stats.messages * 48);
}

// Wraps the Luby oracle and records every MIS round count it reports, so
// the engine's aggregate accounting can be checked against ground truth.
class RecordingLuby : public MisOracle {
 public:
  RecordingLuby(const Problem& problem, std::uint64_t seed)
      : inner_(problem, seed) {}
  MisResult run(std::span<const InstanceId> candidates) override {
    MisResult result = inner_.run(candidates);
    total_rounds_ += result.rounds;
    ++calls_;
    return result;
  }
  std::int64_t total_rounds() const { return total_rounds_; }
  int calls() const { return calls_; }

 private:
  LubyMis inner_;
  std::int64_t total_rounds_ = 0;
  int calls_ = 0;
};

TEST(Rounds, CommRoundsEqualSumOfLubyOracleRounds) {
  // The exact accounting identity of the modeled engine: mis_rounds is
  // *precisely* the sum of the per-MIS round counts the Luby oracle
  // reported, and comm_rounds adds exactly one dual-propagation round per
  // step.  A fixed seed makes the Luby randomness reproducible, so the
  // identity is exact, not statistical.
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    const Problem p = profit_range_problem(seed, 32.0);
    const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
    SolverConfig config;
    config.epsilon = 0.1;
    RecordingLuby oracle(p, seed);
    const SolveResult run = solve_with_plan(p, plan, config, &oracle);
    EXPECT_EQ(run.stats.mis_rounds, oracle.total_rounds()) << "seed " << seed;
    EXPECT_EQ(run.stats.steps, oracle.calls()) << "seed " << seed;
    EXPECT_EQ(run.stats.comm_rounds, oracle.total_rounds() + run.stats.steps)
        << "seed " << seed;
    // The modeled run and a fresh DistResult on the same seed agree.
    DistOptions options;
    options.epsilon = 0.1;
    options.seed = seed;
    const DistResult dist = solve_tree_unit_distributed(p, options);
    EXPECT_EQ(dist.stats.comm_rounds, run.stats.comm_rounds);
    EXPECT_EQ(dist.stats.mis_rounds, run.stats.mis_rounds);
  }
}

TEST(Rounds, BetterOfCombinationChargesConvergecast) {
  // The arbitrary-height solvers' per-network better-of combination is
  // charged an honest converge-cast (2 * max depth + 1 rounds): the
  // extended identity is comm_rounds = mis_rounds + steps + converge-
  // cast when both classes ran, and the unit solvers (one class, nothing
  // to combine) keep the original identity.
  TreeScenarioSpec spec;
  spec.num_vertices = 24;
  spec.num_networks = 2;
  spec.demands.num_demands = 12;
  spec.demands.heights = HeightLaw::kBimodal;
  spec.demands.height_min = 0.4;
  spec.demands.profit_max = 50.0;
  spec.seed = 31;
  const Problem p = make_tree_problem(spec);
  bool has_wide = false, has_narrow = false;
  for (InstanceId i = 0; i < p.num_instances(); ++i)
    (is_wide_instance(p.instance(i)) ? has_wide : has_narrow) = true;
  ASSERT_TRUE(has_wide && has_narrow);

  DistOptions options;
  options.epsilon = 0.35;
  const DistResult split = solve_tree_arbitrary_distributed(p, options);
  const std::int64_t cast = better_of_convergecast_rounds(p);
  EXPECT_GT(cast, 0);
  EXPECT_EQ(split.stats.comm_rounds,
            split.stats.mis_rounds + split.stats.steps + cast);

  const Problem unit = profit_range_problem(7, 32.0);
  const DistResult one_class = solve_tree_unit_distributed(unit, options);
  EXPECT_EQ(one_class.stats.comm_rounds,
            one_class.stats.mis_rounds + one_class.stats.steps);
}

TEST(Rounds, MoreStagesForSmallerHmin) {
  // Section 6: the narrow schedule runs O((1/h_min) log(1/eps)) stages.
  TreeScenarioSpec spec;
  spec.num_vertices = 40;
  spec.demands.num_demands = 25;
  spec.demands.heights = HeightLaw::kNarrowOnly;
  spec.seed = 11;

  spec.demands.height_min = 0.4;
  const Problem coarse = make_tree_problem(spec);
  spec.demands.height_min = 0.1;
  const Problem fine = make_tree_problem(spec);

  DistOptions options;
  const DistResult a = solve_tree_arbitrary_distributed(coarse, options);
  const DistResult b = solve_tree_arbitrary_distributed(fine, options);
  EXPECT_GT(b.stats.stages_per_epoch, a.stats.stages_per_epoch);
}

TEST(Rounds, RoundsGrowSlowlyWithN) {
  // Thm 5.3: rounds scale with log n (for fixed eps and profit range).
  // Compare n = 64 against n = 1024: rounds may grow, but far less than
  // the 16x size factor — we allow 4x.
  DistOptions options;
  options.epsilon = 0.2;
  const Problem small = profit_range_problem(13, 8.0, 60, 64);
  const Problem large = profit_range_problem(13, 8.0, 60, 1024);
  const DistResult rs = solve_tree_unit_distributed(small, options);
  const DistResult rl = solve_tree_unit_distributed(large, options);
  require_feasible(large, rl.solution);
  EXPECT_LE(rl.stats.comm_rounds, 4 * std::max<std::int64_t>(
                                          rs.stats.comm_rounds, 1));
}

}  // namespace
}  // namespace treesched
