#include "io/text_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::small_tree_problem;

TEST(TextIo, ProblemRoundTripPreservesEverything) {
  const Problem original = small_tree_problem(5, 20, 2, 8,
                                              HeightLaw::kUniformRange);
  std::stringstream buffer;
  write_problem(buffer, original);
  const Problem loaded = read_problem(buffer);

  ASSERT_EQ(loaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(loaded.num_networks(), original.num_networks());
  ASSERT_EQ(loaded.num_demands(), original.num_demands());
  ASSERT_EQ(loaded.num_instances(), original.num_instances());
  for (NetworkId q = 0; q < original.num_networks(); ++q) {
    for (EdgeId e = 0; e < original.network(q).num_edges(); ++e) {
      EXPECT_EQ(loaded.network(q).edge_u(e), original.network(q).edge_u(e));
      EXPECT_EQ(loaded.network(q).edge_v(e), original.network(q).edge_v(e));
      EXPECT_DOUBLE_EQ(loaded.capacity(loaded.global_edge(q, e)),
                       original.capacity(original.global_edge(q, e)));
    }
  }
  for (DemandId d = 0; d < original.num_demands(); ++d) {
    EXPECT_EQ(loaded.demand(d).u, original.demand(d).u);
    EXPECT_EQ(loaded.demand(d).v, original.demand(d).v);
    EXPECT_DOUBLE_EQ(loaded.demand(d).profit, original.demand(d).profit);
    EXPECT_DOUBLE_EQ(loaded.demand(d).height, original.demand(d).height);
    EXPECT_EQ(loaded.access(d), original.access(d));
  }
  for (InstanceId i = 0; i < original.num_instances(); ++i)
    EXPECT_EQ(loaded.instance(i).edges, original.instance(i).edges);
}

TEST(TextIo, CapacitiesSurviveRoundTrip) {
  TreeScenarioSpec spec;
  spec.num_vertices = 16;
  spec.demands.num_demands = 5;
  spec.capacities = CapacityLaw::kPowerClasses;
  spec.capacity_spread = 8.0;
  spec.seed = 2;
  const Problem original = make_tree_problem(spec);
  std::stringstream buffer;
  write_problem(buffer, original);
  const Problem loaded = read_problem(buffer);
  EXPECT_DOUBLE_EQ(loaded.min_capacity(), original.min_capacity());
  EXPECT_DOUBLE_EQ(loaded.max_capacity(), original.max_capacity());
}

TEST(TextIo, LineProblemRoundTrip) {
  LineProblem line(20, 3);
  line.add_demand(0, 10, 4, 7.5, 0.5);
  const DemandId d1 = line.add_demand(5, 15, 2, 3.25);
  line.set_access(d1, {0, 2});
  std::stringstream buffer;
  write_line_problem(buffer, line);
  const LineProblem loaded = read_line_problem(buffer);
  ASSERT_EQ(loaded.num_demands(), 2);
  EXPECT_EQ(loaded.num_slots(), 20);
  EXPECT_EQ(loaded.num_resources(), 3);
  EXPECT_EQ(loaded.demand(0).proc_time, 4);
  EXPECT_DOUBLE_EQ(loaded.demand(0).height, 0.5);
  EXPECT_EQ(loaded.access(1), (std::vector<NetworkId>{0, 2}));
  // Lowered instance sets agree.
  EXPECT_EQ(loaded.lower().num_instances(), line.lower().num_instances());
}

TEST(TextIo, SolutionRoundTrip) {
  Solution s;
  s.selected = {3, 1, 4, 1 + 10};
  std::stringstream buffer;
  write_solution(buffer, s);
  const Solution loaded = read_solution(buffer);
  EXPECT_EQ(loaded.selected, s.selected);
}

TEST(TextIo, RejectsCorruptInput) {
  std::stringstream bad1("not-a-problem 1");
  EXPECT_THROW(read_problem(bad1), std::invalid_argument);
  std::stringstream bad2("treesched-problem 99");
  EXPECT_THROW(read_problem(bad2), std::invalid_argument);
  std::stringstream bad3("treesched-solution 1\n2\n5\n");  // truncated
  EXPECT_THROW(read_solution(bad3), std::invalid_argument);
}

TEST(TextIo, FileHelpers) {
  const Problem original = small_tree_problem(6, 12, 1, 4);
  const std::string path = ::testing::TempDir() + "/treesched_io_test.txt";
  save_problem(path, original);
  const Problem loaded = load_problem(path);
  EXPECT_EQ(loaded.num_instances(), original.num_instances());
  EXPECT_THROW(load_problem("/nonexistent/dir/file.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace treesched
