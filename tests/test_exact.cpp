#include "exact/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include "exact/line_dp.hpp"
#include "test_util.hpp"
#include "workload/scenario.hpp"

namespace treesched {
namespace {

using testutil::require_feasible;
using testutil::small_line_problem;
using testutil::small_tree_problem;

// Exhaustive reference: enumerate all subsets (instances <= 20).
Profit brute_force_opt(const Problem& p) {
  const int m = p.num_instances();
  TS_REQUIRE(m <= 20);
  Profit best = 0.0;
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    Solution s;
    for (int i = 0; i < m; ++i)
      if (mask & (1u << i)) s.selected.push_back(i);
    if (!check_feasibility(p, s).feasible) continue;
    best = std::max(best, s.profit(p));
  }
  return best;
}

TEST(BranchAndBound, MatchesBruteForceOnTrees) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = small_tree_problem(seed, 16, 2, 7,
                                         HeightLaw::kUniformRange);
    ASSERT_LE(p.num_instances(), 20);
    const ExactResult exact = solve_exact(p);
    ASSERT_TRUE(exact.completed);
    EXPECT_NEAR(exact.profit, brute_force_opt(p), 1e-9) << "seed " << seed;
    EXPECT_NEAR(require_feasible(p, exact.solution), exact.profit, 1e-9);
  }
}

TEST(BranchAndBound, MatchesBruteForceOnLines) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = small_line_problem(seed, 16, 1, 6, HeightLaw::kUnit,
                                         1.6);
    if (p.num_instances() > 20) continue;
    const ExactResult exact = solve_exact(p);
    ASSERT_TRUE(exact.completed);
    EXPECT_NEAR(exact.profit, brute_force_opt(p), 1e-9) << "seed " << seed;
  }
}

TEST(BranchAndBound, RespectsCapacities) {
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(4));
  Problem p(4, std::move(networks));
  p.set_uniform_capacity(2.0);
  p.add_demand(0, 3, 5.0);
  p.add_demand(0, 3, 4.0);
  p.add_demand(0, 3, 3.0);
  p.finalize();
  const ExactResult exact = solve_exact(p);
  EXPECT_NEAR(exact.profit, 9.0, 1e-9);  // two of three fit
}

TEST(BranchAndBound, NodeLimitReportsIncomplete) {
  const Problem p = small_tree_problem(7, 24, 3, 14);
  const ExactResult exact = solve_exact(p, /*node_limit=*/3);
  EXPECT_FALSE(exact.completed);
  // Still returns a feasible (possibly empty) solution.
  require_feasible(p, exact.solution);
}

TEST(LineDp, ApplicabilityChecks) {
  // Multiple resources: not applicable.
  EXPECT_FALSE(line_dp_applicable(small_line_problem(1, 16, 2, 5)));
  // Windows create multiple instances per demand: not applicable.
  EXPECT_FALSE(
      line_dp_applicable(small_line_problem(2, 16, 1, 5, HeightLaw::kUnit,
                                            2.0)));
  // Single resource, fixed placements, unit heights: applicable.
  EXPECT_TRUE(line_dp_applicable(
      small_line_problem(3, 16, 1, 5, HeightLaw::kUnit, 1.0)));
}

TEST(LineDp, MatchesBranchAndBound) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Problem p = small_line_problem(seed, 30, 1, 10, HeightLaw::kUnit,
                                         1.0);
    ASSERT_TRUE(line_dp_applicable(p));
    const ExactResult dp = solve_line_dp(p);
    const ExactResult bb = solve_exact(p);
    ASSERT_TRUE(bb.completed);
    EXPECT_NEAR(dp.profit, bb.profit, 1e-9) << "seed " << seed;
    EXPECT_NEAR(require_feasible(p, dp.solution), dp.profit, 1e-9);
  }
}

TEST(LineDp, HandlesNestedAndTouchingIntervals) {
  LineProblem line(10, 1);
  line.add_demand(0, 9, 10, 1.0);  // whole timeline, p=1
  line.add_demand(0, 4, 5, 2.0);   // first half, p=2
  line.add_demand(5, 9, 5, 2.5);   // second half, p=2.5 (touches at slot 5)
  const Problem p = line.lower();
  ASSERT_TRUE(line_dp_applicable(p));
  const ExactResult dp = solve_line_dp(p);
  EXPECT_NEAR(dp.profit, 4.5, 1e-9);
  EXPECT_EQ(dp.solution.selected.size(), 2u);
}

}  // namespace
}  // namespace treesched
