// The flight recorder's own contract: the runtime gate records nothing
// when off, multi-thread rings merge deterministically, ring overflow
// keeps the newest window, histogram bucket math is exact — and, the one
// that keeps the rest of the repo honest, tracing is INVISIBLE: an
// engine run and a wire-protocol run produce bit-identical results
// (every ==-compared field, mis_failed_steps included) with the recorder
// on and off.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "decomp/layered.hpp"
#include "dist/scheduler.hpp"
#include "framework/two_phase.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::small_tree_problem;

#ifndef TREESCHED_TRACING_DISABLED

// Every recorder test starts from a clean gate and empty rings; tests
// in this binary share the process-global registry.
struct TraceReset {
  TraceReset() { obs::disable_tracing(); }
  ~TraceReset() {
    obs::disable_tracing();
    obs::reset_trace();
    obs::MetricsRegistry::global().reset();
  }
};

TEST(ObsTrace, DisabledGateRecordsNothing) {
  TraceReset guard;
  obs::reset_trace();
  {
    TRACE_SPAN("test", "ignored");
    TRACE_SPAN1("test", "ignored1", "k", 1);
    obs::record_complete_span("test", "ignored2", 0, 10);
  }
  EXPECT_FALSE(obs::tracing_enabled());
  EXPECT_TRUE(obs::collect_spans().empty());

  obs::MetricsRegistry::global().reset();
  TRACE_COUNTER("test.gated_counter", 5);
  TRACE_HIST("test.gated_hist", 5);
  EXPECT_EQ(
      obs::MetricsRegistry::global().counter("test.gated_counter").value(), 0);
  EXPECT_EQ(
      obs::MetricsRegistry::global().histogram("test.gated_hist").count(), 0);
}

TEST(ObsTrace, SpansRecordNestingAndArgs) {
  TraceReset guard;
  obs::enable_tracing();
  {
    TRACE_SPAN1("test", "outer", "group", 3);
    {
      TRACE_SPAN2("test", "inner", "lo", 0, "hi", 7);
    }
  }
  {
    obs::SpanGuard late("test", "late_arg");
    late.arg("found", 42);
  }
  obs::disable_tracing();

  const std::vector<obs::SpanRecord> spans = obs::collect_spans();
  ASSERT_EQ(spans.size(), 3u);
  // Deterministic order: outer starts first; inner nests inside it.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_STREQ(spans[2].name, "late_arg");
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].dur_ns,
            spans[0].start_ns + spans[0].dur_ns);
  EXPECT_STREQ(spans[0].arg_key[0], "group");
  EXPECT_EQ(spans[0].arg_val[0], 3);
  EXPECT_STREQ(spans[1].arg_key[1], "hi");
  EXPECT_EQ(spans[1].arg_val[1], 7);
  EXPECT_STREQ(spans[2].arg_key[0], "found");
  EXPECT_EQ(spans[2].arg_val[0], 42);
}

TEST(ObsTrace, MultiThreadMergeIsDeterministicAndTidsAreStable) {
  TraceReset guard;
  obs::enable_tracing();
  // Two generations of short-lived workers, as the engine's per-epoch
  // pools create: slot pooling must keep the distinct-tid count bounded
  // by the maximum number of concurrent threads, not total threads ever.
  for (int generation = 0; generation < 2; ++generation) {
    std::vector<std::thread> pool;
    for (int w = 0; w < 3; ++w)
      pool.emplace_back([w] {
        for (int i = 0; i < 4; ++i) {
          TRACE_SPAN1("test", "worker_span", "w", w);
        }
      });
    for (std::thread& t : pool) t.join();
  }
  {
    TRACE_SPAN("test", "main_span");
  }
  obs::disable_tracing();

  const std::vector<obs::SpanRecord> first = obs::collect_spans();
  const std::vector<obs::SpanRecord> second = obs::collect_spans();
  ASSERT_EQ(first.size(), 25u);  // 2 generations * 3 workers * 4 + 1 main
  // Same rings, same deterministic sort: collect twice, get the same
  // sequence.
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].start_ns, second[i].start_ns);
    EXPECT_EQ(first[i].tid, second[i].tid);
    EXPECT_EQ(first[i].seq, second[i].seq);
  }
  int max_tid = 0;
  for (const obs::SpanRecord& rec : first) max_tid = std::max(max_tid, rec.tid);
  // At most 4 recorder slots can ever exist here: main's (whenever it
  // first recorded) plus the 3 concurrent workers of a generation; the
  // second generation reuses the first's parked slots instead of minting
  // tids 4..6.
  EXPECT_LE(max_tid, 3);
  // The merged order is exactly the documented comparator:
  // (start_ns, -dur_ns, tid, seq).  Note seq alone is NOT monotone per
  // tid in this order — empty spans can tie on a coarse clock's
  // start_ns, and the longest-first tie-break (parents before children)
  // deliberately wins over push order.
  for (std::size_t i = 1; i < first.size(); ++i) {
    const auto key = [](const obs::SpanRecord& r) {
      return std::tuple(r.start_ns, -r.dur_ns, r.tid, r.seq);
    };
    EXPECT_LE(key(first[i - 1]), key(first[i]));
  }
}

TEST(ObsTrace, RingOverflowKeepsNewestWindow) {
  TraceReset guard;
  obs::TraceOptions options;
  options.ring_capacity = 16;
  obs::enable_tracing(options);
  for (int i = 0; i < 50; ++i)
    obs::record_complete_span("test", "tick", /*start_ns=*/i, /*dur_ns=*/1,
                              "i", i);
  obs::disable_tracing();

  const obs::TraceStats stats = obs::trace_stats();
  EXPECT_EQ(stats.total_recorded, 50);
  EXPECT_EQ(stats.retained, 16);
  EXPECT_EQ(stats.overwritten, 34);
  const std::vector<obs::SpanRecord> spans = obs::collect_spans();
  ASSERT_EQ(spans.size(), 16u);
  // Flight-recorder semantics: the survivors are exactly the newest 16.
  for (std::size_t i = 0; i < spans.size(); ++i)
    EXPECT_EQ(spans[i].arg_val[0], static_cast<std::int64_t>(34 + i));
}

TEST(ObsTrace, ChromeExportIsWellFormed) {
  TraceReset guard;
  obs::enable_tracing();
  {
    TRACE_SPAN1("engine", "epoch", "group", 1);
  }
  TRACE_COUNTER("test.export_counter", 7);
  obs::disable_tracing();

  const std::string json = obs::chrome_trace_string();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread names
  EXPECT_NE(json.find("\"name\":\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"epoch\""), std::string::npos);
  EXPECT_NE(json.find("\"group\":1"), std::string::npos);
  EXPECT_NE(json.find("\"span_count\":1"), std::string::npos);
  // The registry snapshot rides along inside otherData.
  EXPECT_NE(json.find("\"test.export_counter\":7"), std::string::npos);
}

TEST(ObsMetrics, HistogramBucketMathIsExact) {
  using obs::Histogram;
  // bucket k = [2^(k-1), 2^k); bucket 0 = everything <= 0.
  EXPECT_EQ(Histogram::bucket_index(-5), 0);
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(1024), 11);
  EXPECT_EQ(Histogram::bucket_floor(0), 0);
  EXPECT_EQ(Histogram::bucket_floor(1), 1);
  EXPECT_EQ(Histogram::bucket_floor(2), 2);
  EXPECT_EQ(Histogram::bucket_floor(3), 4);
  EXPECT_EQ(Histogram::bucket_floor(11), 1024);
  for (int k = 1; k < Histogram::kBuckets; ++k) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_floor(k)), k);
    if (k >= 2) {
      EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_floor(k) - 1),
                k - 1);
    }
  }

  Histogram h;
  for (const std::int64_t v : {1, 1, 2, 3, 100, 1000})
    h.record(v);
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.sum(), 1107);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
  // Quantiles resolve to bucket floors: p50 is the 3rd of 6 samples
  // (value 2, bucket [2,4) -> floor 2); p95 needs the 6th (1000, bucket
  // [512,1024) -> floor 512).
  EXPECT_EQ(h.quantile(0.5), 2);
  EXPECT_EQ(h.quantile(0.95), 512);
}

TEST(ObsMetrics, CountersAccumulateAndSnapshotSorted) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.reset();
  registry.counter("zz.last").add(2);
  registry.counter("aa.first").add(1);
  registry.histogram("mm.hist").record(8);
  const std::string json = registry.to_json();
  const std::size_t a = json.find("aa.first");
  const std::size_t m = json.find("mm.hist");
  const std::size_t z = json.find("zz.last");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);  // sorted within the counters object
  EXPECT_NE(json.find("\"p50\":8"), std::string::npos);
  registry.reset();
  EXPECT_EQ(registry.counter("zz.last").value(), 0);
  EXPECT_EQ(registry.histogram("mm.hist").count(), 0);
}

// The oracle from test_two_phase.cpp: always empty-handed, as a
// budget-limited randomized MIS legitimately can be.
class FailingMis : public MisOracle {
 public:
  MisResult run(std::span<const InstanceId>) override {
    MisResult result;
    result.rounds = 2;
    return result;
  }
};

TEST(ObsMetrics, MisFailedStepsCounterMatchesStats) {
  TraceReset guard;
  const Problem p = small_tree_problem(21, 20, 2, 10);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  FailingMis oracle;
  SolverConfig config;
  obs::MetricsRegistry::global().reset();
  obs::enable_tracing();
  const SolveResult run = solve_with_plan(p, plan, config, &oracle);
  obs::disable_tracing();
  EXPECT_FALSE(run.stats.mis_ok);
  EXPECT_GT(run.stats.mis_failed_steps, 0);
  // The registry's surfaced degrade count is the same number the stats
  // carry — one counting site per whole-step-empty event, no double
  // counting across the engine paths.
  EXPECT_EQ(obs::MetricsRegistry::global()
                .counter("engine.mis_failed_steps")
                .value(),
            run.stats.mis_failed_steps);
}

#endif  // TREESCHED_TRACING_DISABLED

// The invisibility contract, which must hold in BOTH build modes (in a
// TREESCHED_TRACING_DISABLED build enable_tracing() is a no-op and the
// equalities are trivially between two untraced runs).
TEST(ObsInvisibility, EngineRunIsBitIdenticalTracedAndUntraced) {
  const Problem p = small_tree_problem(7, 40, 2, 24);
  const LayeredPlan plan = build_tree_layered_plan(p, DecompKind::kIdeal);
  for (const bool lockstep : {false, true}) {
    SolverConfig config;
    config.epsilon = 0.15;
    config.lockstep = lockstep;
    config.keep_stack = true;
    config.count_messages = true;
    config.threads = 4;

    obs::disable_tracing();
    const SolveResult plain = solve_with_plan(p, plan, config);
    obs::enable_tracing();
    const SolveResult traced = solve_with_plan(p, plan, config);
    obs::disable_tracing();
    obs::reset_trace();
    obs::MetricsRegistry::global().reset();

    EXPECT_EQ(plain.solution.selected, traced.solution.selected);
    EXPECT_EQ(plain.raise_stack, traced.raise_stack);
    EXPECT_EQ(plain.stats.epochs, traced.stats.epochs);
    EXPECT_EQ(plain.stats.stages, traced.stats.stages);
    EXPECT_EQ(plain.stats.steps, traced.stats.steps);
    EXPECT_EQ(plain.stats.raises, traced.stats.raises);
    EXPECT_EQ(plain.stats.mis_rounds, traced.stats.mis_rounds);
    EXPECT_EQ(plain.stats.comm_rounds, traced.stats.comm_rounds);
    EXPECT_EQ(plain.stats.messages, traced.stats.messages);
    EXPECT_EQ(plain.stats.message_bytes, traced.stats.message_bytes);
    EXPECT_EQ(plain.stats.dual_objective, traced.stats.dual_objective);
    EXPECT_EQ(plain.stats.lambda_observed, traced.stats.lambda_observed);
    EXPECT_EQ(plain.stats.dual_upper_bound, traced.stats.dual_upper_bound);
    EXPECT_EQ(plain.stats.profit, traced.stats.profit);
    EXPECT_EQ(plain.stats.delta, traced.stats.delta);
    EXPECT_EQ(plain.stats.xi, traced.stats.xi);
    EXPECT_EQ(plain.stats.mis_ok, traced.stats.mis_ok);
    EXPECT_EQ(plain.stats.lockstep_ok, traced.stats.lockstep_ok);
    EXPECT_EQ(plain.stats.mis_failed_steps, traced.stats.mis_failed_steps);
  }
}

TEST(ObsInvisibility, ProtocolRunIsBitIdenticalTracedAndUntraced) {
  const Problem p = small_tree_problem(12, 32, 2, 18);
  ProtocolOptions options;
  options.epsilon = 0.25;
  options.seed = 3;

  obs::disable_tracing();
  const ProtocolDistResult plain = run_tree_arbitrary_protocol(p, options);
  obs::enable_tracing();
  const ProtocolDistResult traced = run_tree_arbitrary_protocol(p, options);
  obs::disable_tracing();
  obs::reset_trace();
  obs::MetricsRegistry::global().reset();

  EXPECT_EQ(plain.run.solution.selected, traced.run.solution.selected);
  EXPECT_EQ(plain.run.rounds, traced.run.rounds);
  EXPECT_EQ(plain.run.messages, traced.run.messages);
  EXPECT_EQ(plain.run.bytes, traced.run.bytes);
  EXPECT_EQ(plain.run.discovery_bytes, traced.run.discovery_bytes);
  EXPECT_EQ(plain.run.discovery_reply_bytes,
            traced.run.discovery_reply_bytes);
  EXPECT_EQ(plain.run.mis_ok, traced.run.mis_ok);
  EXPECT_EQ(plain.run.schedule_ok, traced.run.schedule_ok);
  EXPECT_EQ(plain.run.passes.size(), traced.run.passes.size());
}

}  // namespace
}  // namespace treesched
