#include "framework/dual_state.hpp"

#include <gtest/gtest.h>

namespace treesched {
namespace {

Problem small_problem() {
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(5));
  Problem p(5, std::move(networks));
  p.set_capacity(0, 1, 3.0);  // non-uniform edge for objective weighting
  p.add_demand(0, 3, 10.0, 0.5);  // instance 0: edges {0,1,2}
  p.add_demand(2, 4, 4.0);        // instance 1: edges {2,3}
  p.finalize();
  return p;
}

TEST(DualState, StartsAtZero) {
  const Problem p = small_problem();
  DualState dual(p);
  EXPECT_DOUBLE_EQ(dual.alpha(0), 0.0);
  EXPECT_DOUBLE_EQ(dual.beta(2), 0.0);
  EXPECT_DOUBLE_EQ(dual.objective(), 0.0);
  EXPECT_DOUBLE_EQ(dual.lhs(p.instance(0), 1.0), 0.0);
}

TEST(DualState, LhsUsesBetaCoefficient) {
  const Problem p = small_problem();
  DualState dual(p);
  dual.raise_alpha(0, 2.0);
  dual.raise_beta(0, 1.0);
  dual.raise_beta(2, 0.5);
  // Instance 0 (demand 0, edges 0,1,2): beta_sum = 1.5.
  EXPECT_DOUBLE_EQ(dual.beta_sum(p.instance(0)), 1.5);
  EXPECT_DOUBLE_EQ(dual.lhs(p.instance(0), 1.0), 2.0 + 1.5);
  EXPECT_DOUBLE_EQ(dual.lhs(p.instance(0), 0.5), 2.0 + 0.75);
  // Instance 1 (demand 1, edges 2,3): alpha(1) = 0.
  EXPECT_DOUBLE_EQ(dual.lhs(p.instance(1), 1.0), 0.5);
}

TEST(DualState, ObjectiveWeighsCapacities) {
  const Problem p = small_problem();
  DualState dual(p);
  dual.raise_alpha(1, 2.0);
  EXPECT_DOUBLE_EQ(dual.objective(), 2.0);
  dual.raise_beta(1, 1.0);  // capacity 3 edge: adds 3
  EXPECT_DOUBLE_EQ(dual.objective(), 5.0);
  dual.raise_beta(0, 0.25);  // capacity 1 edge
  EXPECT_DOUBLE_EQ(dual.objective(), 5.25);
}

TEST(DualState, RaisesAccumulate) {
  const Problem p = small_problem();
  DualState dual(p);
  dual.raise_alpha(0, 1.0);
  dual.raise_alpha(0, 2.5);
  EXPECT_DOUBLE_EQ(dual.alpha(0), 3.5);
  dual.raise_beta(3, 0.5);
  dual.raise_beta(3, 0.5);
  EXPECT_DOUBLE_EQ(dual.beta(3), 1.0);
}

}  // namespace
}  // namespace treesched
