// Layered decompositions (Lemma 4.2/4.3 and the Section 7 line plan):
// interference property, critical-set sizes and group structure.
#include "decomp/layered.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "seq/sequential.hpp"
#include "test_util.hpp"
#include "workload/scenario.hpp"

namespace treesched {
namespace {

using testutil::small_line_problem;
using testutil::small_tree_problem;

void check_plan_structure(const Problem& problem, const LayeredPlan& plan) {
  ASSERT_EQ(plan.group.size(),
            static_cast<std::size_t>(problem.num_instances()));
  ASSERT_EQ(plan.critical.size(),
            static_cast<std::size_t>(problem.num_instances()));
  std::size_t members = 0;
  for (const auto& g : plan.members) members += g.size();
  EXPECT_EQ(members, static_cast<std::size_t>(problem.num_instances()));
  for (InstanceId i = 0; i < problem.num_instances(); ++i) {
    EXPECT_GE(plan.group[static_cast<std::size_t>(i)], 0);
    EXPECT_LT(plan.group[static_cast<std::size_t>(i)], plan.num_groups);
    const auto& crit = plan.critical[static_cast<std::size_t>(i)];
    EXPECT_FALSE(crit.empty());
    EXPECT_LE(static_cast<int>(crit.size()), plan.delta);
    // Critical edges lie on the instance's path (by definition of pi).
    const auto& path = problem.instance(i).edges;
    for (EdgeId e : crit)
      EXPECT_TRUE(std::binary_search(path.begin(), path.end(), e));
  }
}

class TreePlanProperty
    : public ::testing::TestWithParam<std::tuple<DecompKind, int>> {};

TEST_P(TreePlanProperty, InterferenceHoldsAndDeltaBounded) {
  const auto [kind, seed] = GetParam();
  const Problem problem =
      small_tree_problem(static_cast<std::uint64_t>(seed) * 31 + 5,
                         /*n=*/40, /*r=*/2, /*m=*/25);
  const LayeredPlan plan = build_tree_layered_plan(problem, kind);
  check_plan_structure(problem, plan);
  // Lemma 4.2: Delta <= 2 (theta + 1).
  const int theta = kind == DecompKind::kRootFixing ? 1
                    : kind == DecompKind::kIdeal    ? 2
                                                    : 12;  // log n bound
  EXPECT_LE(plan.delta, 2 * (theta + 1));
  const auto violation = interference_violation(problem, plan);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, TreePlanProperty,
    ::testing::Combine(::testing::Values(DecompKind::kRootFixing,
                                         DecompKind::kBalancing,
                                         DecompKind::kIdeal),
                       ::testing::Values(1, 2, 3, 4, 5)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

TEST(TreePlan, IdealPlanHasDeltaAtMostSix) {
  // Lemma 4.3: the ideal decomposition yields Delta = 6, length O(log n).
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const Problem problem = small_tree_problem(seed, 100, 3, 60);
    const LayeredPlan plan =
        build_tree_layered_plan(problem, DecompKind::kIdeal);
    EXPECT_LE(plan.delta, 6);
    EXPECT_LE(plan.num_groups, 2 * 7 + 1);  // 2 ceil(log 100) + 1
  }
}

TEST(TreePlan, MuWingsOnlyHasDeltaTwo) {
  const Problem problem = small_tree_problem(7, 40, 2, 25);
  const LayeredPlan plan = build_tree_layered_plan(
      problem, DecompKind::kRootFixing, /*mu_wings_only=*/true);
  check_plan_structure(problem, plan);
  EXPECT_LE(plan.delta, 2);
  // Observation A.1: the property still holds with mu wings only.
  const auto violation = interference_violation(problem, plan);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST(LinePlan, LengthClassesAndThreeCriticalSlots) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Problem problem = small_line_problem(seed, 40, 2, 14,
                                               HeightLaw::kUnit, 2.0);
    const LayeredPlan plan = build_line_layered_plan(problem);
    check_plan_structure(problem, plan);
    EXPECT_LE(plan.delta, 3);  // {start, mid, end}
    const auto violation = interference_violation(problem, plan);
    EXPECT_FALSE(violation.has_value()) << *violation;
    // Group = floor(log2(len / lmin)).
    for (InstanceId i = 0; i < problem.num_instances(); ++i) {
      const int len = static_cast<int>(problem.instance(i).edges.size());
      const int g = plan.group[static_cast<std::size_t>(i)];
      EXPECT_GE(len, problem.min_path_length() << g);
      EXPECT_LT(len, problem.min_path_length() << (g + 1));
    }
  }
}

TEST(LinePlan, SingleSlotInstances) {
  LineProblem line(6, 1);
  line.add_demand(0, 5, 1, 1.0);
  line.add_demand(2, 3, 1, 2.0);
  const Problem problem = line.lower();
  const LayeredPlan plan = build_line_layered_plan(problem);
  // Length-1 instances: start == mid == end, so |pi| == 1.
  for (InstanceId i = 0; i < problem.num_instances(); ++i)
    EXPECT_EQ(plan.critical[static_cast<std::size_t>(i)].size(), 1u);
  EXPECT_FALSE(interference_violation(problem, plan).has_value());
}

TEST(EndtimePlan, DeltaOneOrderingIsInterferenceFree) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const Problem problem = small_line_problem(seed, 30, 2, 12,
                                               HeightLaw::kUnit, 1.8);
    const LayeredPlan plan = build_endtime_plan(problem);
    check_plan_structure(problem, plan);
    EXPECT_EQ(plan.delta, 1);
    const auto violation = interference_violation(problem, plan);
    EXPECT_FALSE(violation.has_value()) << *violation;
  }
}

TEST(InterferenceChecker, CatchesBrokenPlan) {
  // Two overlapping same-group instances whose critical edges miss each
  // other: checker must flag it.
  LineProblem line(8, 1);
  line.add_demand(0, 3, 4, 1.0);  // slots 0-3
  line.add_demand(2, 6, 5, 1.0);  // slots 2-6
  const Problem problem = line.lower();
  LayeredPlan plan;
  plan.num_groups = 1;
  plan.delta = 1;
  plan.group = {0, 0};
  plan.critical = {{0}, {6}};  // slot 0 not on path 2-6; slot 6 not on 0-3
  plan.members = {{0, 1}};
  EXPECT_TRUE(interference_violation(problem, plan).has_value());
}

}  // namespace
}  // namespace treesched
