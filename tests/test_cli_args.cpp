// CLI argument parsing: the strict contract of tools/cli_args.hpp.
//
// Regression coverage for three silent-misparse bugs the CLI shipped
// with:
//  * Args::num called std::stod unguarded — `--eps=abc` crashed with an
//    uncaught std::invalid_argument, and `--eps=0.5x` silently dropped
//    the trailing garbage;
//  * a value flag given space-separated (`--threads 4`) recorded
//    threads="1" and treated `4` as the input file;
//  * parse_shape / parse_heights silently fell back to a default on
//    unknown names (`--shape=binray` meant random).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/cli_args.hpp"

namespace treesched {
namespace {

using cli::Args;
using cli::parse;
using cli::UsageError;

Args parse_tokens(std::vector<std::string> tokens) {
  tokens.insert(tokens.begin(), "treesched_cli");
  return parse(tokens);
}

// Matches that fn throws UsageError whose message contains `needle` —
// the diagnostic must name the offending flag or token.
template <typename Fn>
void expect_usage_error(Fn fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected UsageError mentioning '" << needle << "'";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

TEST(CliArgs, HappyPathParsesCommandFileAndFlags) {
  const Args args = parse_tokens(
      {"solve", "input.prob", "--eps=0.25", "--algo=tree", "--ps"});
  EXPECT_EQ(args.command, "solve");
  EXPECT_EQ(args.file, "input.prob");
  EXPECT_DOUBLE_EQ(args.num("eps", 0.1), 0.25);
  EXPECT_EQ(args.get("algo", "auto"), "tree");
  EXPECT_TRUE(args.has("ps"));
  EXPECT_FALSE(args.has("out"));
}

TEST(CliArgs, NumFallsBackWhenFlagAbsent) {
  const Args args = parse_tokens({"solve", "input.prob"});
  EXPECT_DOUBLE_EQ(args.num("eps", 0.1), 0.1);
  EXPECT_EQ(args.get("decomp", "ideal"), "ideal");
}

TEST(CliArgs, NumParsesIntegersAndScientific) {
  const Args args =
      parse_tokens({"solve", "f", "--seed=42", "--nodes=2e7"});
  EXPECT_DOUBLE_EQ(args.num("seed", 1), 42.0);
  EXPECT_DOUBLE_EQ(args.num("nodes", 0), 2e7);
}

// Satellite 1: malformed numbers are diagnosed, not crashed on.
TEST(CliArgs, RejectsNonNumericValue) {
  const Args args = parse_tokens({"solve", "f", "--eps=abc"});
  expect_usage_error([&] { args.num("eps", 0.1); }, "--eps");
  expect_usage_error([&] { args.num("eps", 0.1); }, "abc");
}

TEST(CliArgs, RejectsTrailingGarbageInNumber) {
  const Args args = parse_tokens({"solve", "f", "--eps=0.5x"});
  expect_usage_error([&] { args.num("eps", 0.1); }, "0.5x");
}

TEST(CliArgs, RejectsEmptyNumber) {
  const Args args = parse_tokens({"solve", "f", "--eps="});
  expect_usage_error([&] { args.num("eps", 0.1); }, "--eps");
}

// Satellite 2: space-separated value flags and stray positionals.
TEST(CliArgs, RejectsSpaceSeparatedValueFlag) {
  expect_usage_error(
      [] { parse_tokens({"solve", "f", "--threads", "4"}); },
      "--threads=4");
}

TEST(CliArgs, RejectsBareValueFlagAtEnd) {
  expect_usage_error([] { parse_tokens({"solve", "f", "--threads"}); },
                     "--threads=V");
}

TEST(CliArgs, RejectsUnexpectedPositional) {
  expect_usage_error(
      [] { parse_tokens({"solve", "first.prob", "second.prob"}); },
      "second.prob");
}

TEST(CliArgs, RejectsUnknownFlag) {
  expect_usage_error([] { parse_tokens({"solve", "f", "--bogus=1"}); },
                     "--bogus");
}

TEST(CliArgs, RejectsValueOnBooleanFlag) {
  expect_usage_error([] { parse_tokens({"solve", "f", "--ps=1"}); },
                     "--ps");
}

// Satellite 3: enum-valued flags reject unknown names and list the
// valid ones.
TEST(CliArgs, ParseShapeAcceptsAllValidNames) {
  EXPECT_EQ(cli::parse_shape("random"), TreeShape::kRandomAttachment);
  EXPECT_EQ(cli::parse_shape("binary"), TreeShape::kBinary);
  EXPECT_EQ(cli::parse_shape("path"), TreeShape::kPath);
  EXPECT_EQ(cli::parse_shape("star"), TreeShape::kStar);
  EXPECT_EQ(cli::parse_shape("caterpillar"), TreeShape::kCaterpillar);
  EXPECT_EQ(cli::parse_shape("broom"), TreeShape::kBroom);
}

TEST(CliArgs, ParseShapeRejectsTypo) {
  expect_usage_error([] { cli::parse_shape("binray"); }, "binray");
  expect_usage_error([] { cli::parse_shape("binray"); }, "binary");
}

TEST(CliArgs, ParseHeightsAcceptsAllValidNames) {
  EXPECT_EQ(cli::parse_heights("unit"), HeightLaw::kUnit);
  EXPECT_EQ(cli::parse_heights("uniform"), HeightLaw::kUniformRange);
  EXPECT_EQ(cli::parse_heights("bimodal"), HeightLaw::kBimodal);
  EXPECT_EQ(cli::parse_heights("narrow"), HeightLaw::kNarrowOnly);
}

TEST(CliArgs, ParseHeightsRejectsUnknown) {
  expect_usage_error([] { cli::parse_heights("tall"); }, "--heights");
}

TEST(CliArgs, ParseDecompAcceptsAllValidNamesAndRejectsUnknown) {
  EXPECT_EQ(cli::parse_decomp("ideal"), DecompKind::kIdeal);
  EXPECT_EQ(cli::parse_decomp("balancing"), DecompKind::kBalancing);
  EXPECT_EQ(cli::parse_decomp("rootfix"), DecompKind::kRootFixing);
  expect_usage_error([] { cli::parse_decomp("idael"); }, "idael");
}

TEST(CliArgs, ParseArrivalsAcceptsAllValidNamesAndRejectsUnknown) {
  EXPECT_EQ(cli::parse_arrivals("poisson"), ArrivalLaw::kPoisson);
  EXPECT_EQ(cli::parse_arrivals("bursty"), ArrivalLaw::kBursty);
  EXPECT_EQ(cli::parse_arrivals("diurnal"), ArrivalLaw::kDiurnal);
  expect_usage_error([] { cli::parse_arrivals("poison"); }, "poisson");
}

TEST(CliArgs, BooleanFlagsParseBare) {
  const Args args = parse_tokens({"solve", "f", "--ps", "--by-class"});
  EXPECT_TRUE(args.has("ps"));
  EXPECT_TRUE(args.has("by-class"));
}

TEST(CliArgs, OnlineFlagsRoundTrip) {
  const Args args = parse_tokens({"solve", "f", "--algo=online",
                                  "--arrivals=bursty", "--rate=12.5",
                                  "--batches=8", "--interval=0.5",
                                  "--lifetime=4", "--init-pop=32",
                                  "--threads=4"});
  EXPECT_EQ(args.get("algo", "auto"), "online");
  EXPECT_EQ(cli::parse_arrivals(args.get("arrivals", "poisson")),
            ArrivalLaw::kBursty);
  EXPECT_DOUBLE_EQ(args.num("rate", 8.0), 12.5);
  EXPECT_DOUBLE_EQ(args.num("batches", 16), 8.0);
  EXPECT_DOUBLE_EQ(args.num("interval", 1.0), 0.5);
  EXPECT_DOUBLE_EQ(args.num("lifetime", 8.0), 4.0);
  EXPECT_DOUBLE_EQ(args.num("init-pop", 0), 32.0);
  EXPECT_DOUBLE_EQ(args.num("threads", 1), 4.0);
}

}  // namespace
}  // namespace treesched
