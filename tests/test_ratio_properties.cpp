// The central property sweep: every algorithm, on every scenario family,
// must (a) produce feasible solutions, (b) stay within its proven
// approximation bound against the exact optimum, and (c) produce a dual
// certificate that dominates the exact optimum.  This exercises the whole
// pipeline — decompositions, plans, raising rules, stage schedules, MIS,
// pruning — against ground truth across many seeds.
#include <gtest/gtest.h>

#include <tuple>

#include "dist/scheduler.hpp"
#include "seq/sequential.hpp"
#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::exact_opt;
using testutil::require_feasible;
using testutil::small_line_problem;
using testutil::small_tree_problem;

enum class Family { kTreeUnit, kTreeBimodal, kLineUnit, kLineBimodal };

const char* to_string(Family f) {
  switch (f) {
    case Family::kTreeUnit:
      return "TreeUnit";
    case Family::kTreeBimodal:
      return "TreeBimodal";
    case Family::kLineUnit:
      return "LineUnit";
    case Family::kLineBimodal:
      return "LineBimodal";
  }
  return "?";
}

Problem build(Family family, std::uint64_t seed) {
  switch (family) {
    case Family::kTreeUnit:
      return small_tree_problem(seed, 18, 2, 8, HeightLaw::kUnit);
    case Family::kTreeBimodal:
      return small_tree_problem(seed, 18, 2, 8, HeightLaw::kBimodal);
    case Family::kLineUnit:
      return small_line_problem(seed, 20, 2, 7, HeightLaw::kUnit, 1.6);
    case Family::kLineBimodal:
      return small_line_problem(seed, 20, 2, 7, HeightLaw::kBimodal, 1.6);
  }
  TS_REQUIRE(false);
  return small_tree_problem(seed);
}

class RatioProperty
    : public ::testing::TestWithParam<std::tuple<Family, int>> {};

TEST_P(RatioProperty, AllAlgorithmsWithinBoundsAndCertified) {
  const auto [family, seed_int] = GetParam();
  const auto seed = static_cast<std::uint64_t>(seed_int);
  const Problem p = build(family, seed * 977 + 11);
  const Profit opt = exact_opt(p);
  ASSERT_GT(opt, 0.0);

  DistOptions options;
  options.epsilon = 0.1;
  options.seed = seed;

  const bool tree = family == Family::kTreeUnit ||
                    family == Family::kTreeBimodal;
  const bool unit = p.unit_height();

  // Distributed algorithm per the matching theorem.
  DistResult dist;
  if (tree) {
    dist = unit ? solve_tree_unit_distributed(p, options)
                : solve_tree_arbitrary_distributed(p, options);
  } else {
    dist = unit ? solve_line_unit_distributed(p, options)
                : solve_line_arbitrary_distributed(p, options);
  }
  const Profit dist_profit = require_feasible(p, dist.solution);
  EXPECT_GE(dist_profit * dist.ratio_bound, opt - 1e-6)
      << to_string(family) << " distributed breached its bound";
  EXPECT_GE(dist.stats.dual_upper_bound, opt - 1e-6)
      << to_string(family) << " dual certificate below OPT";

  // Sequential baseline.
  SeqResult seq;
  if (tree) {
    seq = unit ? solve_tree_unit_sequential(p)
               : solve_tree_arbitrary_sequential(p);
  } else {
    seq = unit ? solve_line_unit_sequential(p)
               : solve_line_arbitrary_sequential(p);
  }
  const Profit seq_profit = require_feasible(p, seq.solution);
  EXPECT_GE(seq_profit * seq.ratio_bound, opt - 1e-6)
      << to_string(family) << " sequential breached its bound";

  // PS single-stage baseline (unit-height cases).
  if (unit) {
    DistOptions ps = options;
    ps.stage_mode = StageMode::kSingleStagePS;
    const DistResult psr = tree ? solve_tree_unit_distributed(p, ps)
                                : solve_line_unit_distributed(p, ps);
    const Profit ps_profit = require_feasible(p, psr.solution);
    EXPECT_GE(ps_profit * psr.ratio_bound, opt - 1e-6)
        << to_string(family) << " PS baseline breached its bound";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RatioProperty,
    ::testing::Combine(::testing::Values(Family::kTreeUnit,
                                         Family::kTreeBimodal,
                                         Family::kLineUnit,
                                         Family::kLineBimodal),
                       ::testing::Range(1, 11)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace treesched
