// Crash recovery parity: for every seeded crash point, recovering from
// the journal + newest valid snapshot must reproduce the uninterrupted
// run EXACTLY — the same raise stack, tags, selected sets, lambda and
// per-shard LHS the online parity suite compares, plus the liveness
// mask and the instance numbering (compaction renumbering included).
// And no torn or corrupt journal/snapshot is ever accepted: a damaged
// file loses at most the un-applied tail, never yields a different
// state (the PR 8 corrupt_undetected == 0 standard, at process level).
#include "online/durable_service.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "io/framing.hpp"

#include "online/event_stream.hpp"
#include "online/journal.hpp"
#include "online/online_scheduler.hpp"
#include "online/snapshot.hpp"
#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::small_tree_problem;

// --- plumbing --------------------------------------------------------------

std::string temp_path(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "treesched_recovery";
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(out.good()) << path;
}

void expect_class_equal(const ClassArtifacts& got, const ClassArtifacts& want,
                        const std::string& where) {
  SCOPED_TRACE(where);
  ASSERT_EQ(got.any, want.any);
  EXPECT_EQ(got.raise_stack, want.raise_stack);
  ASSERT_EQ(got.stack_tags.size(), want.stack_tags.size());
  for (std::size_t r = 0; r < got.stack_tags.size(); ++r)
    EXPECT_EQ(got.stack_tags[r], want.stack_tags[r]);
  EXPECT_EQ(got.solution.selected, want.solution.selected);
  EXPECT_EQ(got.lambda, want.lambda);  // exact, no tolerance
  EXPECT_EQ(got.final_lhs, want.final_lhs);
}

// Exact state equality between two live schedulers: the assembled
// artifacts field for field, plus the materialized problem's shape and
// liveness (instance-id stability — the compaction satellite's claim).
void expect_scheduler_equal(const OnlineScheduler& got,
                            const OnlineScheduler& want,
                            const std::string& where) {
  SCOPED_TRACE(where);
  ASSERT_EQ(got.batches_applied(), want.batches_applied());
  ASSERT_EQ(got.problem().num_instances(), want.problem().num_instances());
  ASSERT_EQ(got.problem().num_demands(), want.problem().num_demands());
  EXPECT_EQ(got.live_demands(), want.live_demands());
  EXPECT_EQ(got.live_mask(), want.live_mask());
  const OnlineSolveArtifacts a = got.assemble();
  const OnlineSolveArtifacts b = want.assemble();
  expect_class_equal(a.wide, b.wide, where + " wide");
  expect_class_equal(a.narrow, b.narrow, where + " narrow");
  EXPECT_EQ(a.solution.selected, b.solution.selected);
  EXPECT_EQ(a.profit, b.profit);
  EXPECT_EQ(a.lambda, b.lambda);
}

// The cold-reference parity check from test_online: the recovered
// scheduler must not just equal the uninterrupted one, it must still
// equal a from-scratch solve of its own problem.
void expect_cold_parity(const OnlineScheduler& scheduler,
                        const SolverConfig& solver,
                        const std::string& where) {
  const OnlineSolveArtifacts warm = scheduler.assemble();
  const OnlineSolveArtifacts cold = solve_cold(
      scheduler.problem(), scheduler.plan(), solver, scheduler.live_mask());
  expect_class_equal(warm.wide, cold.wide, where + " vs-cold wide");
  expect_class_equal(warm.narrow, cold.narrow, where + " vs-cold narrow");
  SCOPED_TRACE(where);
  EXPECT_EQ(warm.solution.selected, cold.solution.selected);
  EXPECT_EQ(warm.profit, cold.profit);
  EXPECT_EQ(warm.lambda, cold.lambda);
}

// A fresh scheduler stepped through trace[0..upto) — the uninterrupted
// reference every recovery is held to.
OnlineScheduler reference_at(const Problem& base, const OnlineConfig& config,
                             const std::vector<EventBatch>& trace,
                             std::size_t upto) {
  OnlineScheduler scheduler(base, config);
  for (std::size_t b = 0; b < upto; ++b) scheduler.step(trace[b]);
  return scheduler;
}

struct Scenario {
  Problem base;
  OnlineConfig config;
  std::vector<EventBatch> trace;
};

Scenario make_scenario(ArrivalLaw law, std::uint64_t seed) {
  Scenario s{small_tree_problem(seed, 28, 2, 8, HeightLaw::kBimodal), {}, {}};
  DemandGenConfig demand_cfg;
  demand_cfg.heights = HeightLaw::kBimodal;
  OnlineTrafficSpec traffic;
  traffic.arrivals = law;
  traffic.rate = 5.0;
  traffic.num_batches = 8;
  traffic.seed = seed;
  TenantClass churn;
  churn.mean_lifetime = 4.0;
  traffic.tenants = {churn};
  s.trace = make_event_trace(s.base, demand_cfg, traffic);
  return s;
}

// --- crash plan ------------------------------------------------------------

TEST(CrashPlan, ParsesSpecStrings) {
  const CrashPlan empty = parse_crash_plan("");
  EXPECT_FALSE(empty.armed());

  const CrashPlan plan =
      parse_crash_plan("point=mid-snapshot,batch=5,seed=99");
  EXPECT_EQ(plan.point, CrashPoint::kMidSnapshotWrite);
  EXPECT_EQ(plan.batch, 5u);
  EXPECT_EQ(plan.seed, 99u);

  EXPECT_EQ(parse_crash_plan("point=mid-append").point,
            CrashPoint::kMidJournalAppend);
  EXPECT_EQ(parse_crash_plan("point=after-append").point,
            CrashPoint::kAfterAppend);
  EXPECT_EQ(parse_crash_plan("point=after-apply").point,
            CrashPoint::kAfterApply);
  EXPECT_EQ(parse_crash_plan("point=after-snapshot").point,
            CrashPoint::kAfterSnapshot);

  EXPECT_THROW(parse_crash_plan("point=mid-flight"), std::invalid_argument);
  EXPECT_THROW(parse_crash_plan("batch=x"), std::invalid_argument);
  EXPECT_THROW(parse_crash_plan("frequency=2"), std::invalid_argument);
  EXPECT_THROW(parse_crash_plan("batch"), std::invalid_argument);
}

// --- journal ---------------------------------------------------------------

void expect_batch_equal(const EventBatch& got, const EventBatch& want,
                        const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(got.time, want.time);
  ASSERT_EQ(got.arrivals.size(), want.arrivals.size());
  for (std::size_t a = 0; a < got.arrivals.size(); ++a) {
    EXPECT_EQ(got.arrivals[a].key, want.arrivals[a].key);
    EXPECT_EQ(got.arrivals[a].tenant, want.arrivals[a].tenant);
    EXPECT_EQ(got.arrivals[a].draw.u, want.arrivals[a].draw.u);
    EXPECT_EQ(got.arrivals[a].draw.v, want.arrivals[a].draw.v);
    EXPECT_EQ(got.arrivals[a].draw.profit, want.arrivals[a].draw.profit);
    EXPECT_EQ(got.arrivals[a].draw.height, want.arrivals[a].draw.height);
    EXPECT_EQ(got.arrivals[a].draw.access, want.arrivals[a].draw.access);
  }
  EXPECT_EQ(got.departures, want.departures);
}

TEST(Journal, AppendReplayRoundTrip) {
  const Scenario s = make_scenario(ArrivalLaw::kPoisson, 31);
  const std::string path = temp_path("journal_roundtrip.wal");
  {
    Journal journal = Journal::create(path);
    for (std::uint32_t b = 0; b < s.trace.size(); ++b) {
      EXPECT_EQ(journal.next_seq(), b);
      journal.append(s.trace[b]);
    }
  }
  const JournalReplay replay = replay_journal(path);
  EXPECT_TRUE(replay.file_exists);
  EXPECT_FALSE(replay.torn);
  EXPECT_EQ(replay.next_seq, s.trace.size());
  ASSERT_EQ(replay.batches.size(), s.trace.size());
  for (std::size_t b = 0; b < s.trace.size(); ++b)
    expect_batch_equal(replay.batches[b], s.trace[b],
                       "batch " + std::to_string(b));
}

TEST(Journal, MissingFileIsEmptyReplay) {
  const JournalReplay replay =
      replay_journal(temp_path("never_written.wal"));
  EXPECT_FALSE(replay.file_exists);
  EXPECT_FALSE(replay.torn);
  EXPECT_EQ(replay.next_seq, 0u);
  EXPECT_TRUE(replay.batches.empty());
}

// A torn append (simulated via append_torn, the crash harness's own
// write path) is discarded with a diagnostic; resume truncates it and
// the re-appended record replays cleanly.
TEST(Journal, TornAppendIsDiscardedAndResumed) {
  const Scenario s = make_scenario(ArrivalLaw::kPoisson, 33);
  const std::string path = temp_path("journal_torn.wal");
  {
    Journal journal = Journal::create(path);
    journal.append(s.trace[0]);
    journal.append(s.trace[1]);
    std::vector<std::uint8_t> record;
    const std::size_t len = encode_journal_record(s.trace[2], 2, record);
    journal.append_torn(s.trace[2], len / 2);
  }
  JournalReplay replay = replay_journal(path);
  EXPECT_TRUE(replay.torn);
  EXPECT_FALSE(replay.diagnostic.empty());
  EXPECT_EQ(replay.next_seq, 2u);
  {
    Journal journal = Journal::resume(path, replay);
    EXPECT_EQ(journal.next_seq(), 2u);
    journal.append(s.trace[2]);
  }
  replay = replay_journal(path);
  EXPECT_FALSE(replay.torn);
  ASSERT_EQ(replay.next_seq, 3u);
  for (std::size_t b = 0; b < 3; ++b)
    expect_batch_equal(replay.batches[b], s.trace[b],
                       "resumed batch " + std::to_string(b));
}

// Post-hoc truncation: however many bytes survive, the replay is exactly
// the longest whole-record prefix — never a partial or altered batch.
TEST(Journal, EveryTruncationYieldsExactPrefix) {
  const Scenario s = make_scenario(ArrivalLaw::kBursty, 37);
  std::vector<std::uint8_t> image;
  std::vector<std::size_t> boundaries{0};
  for (std::uint32_t b = 0; b < s.trace.size(); ++b) {
    encode_journal_record(s.trace[b], b, image);
    boundaries.push_back(image.size());
  }
  for (std::size_t len = 0; len <= image.size(); ++len) {
    const JournalReplay replay = replay_journal_bytes(
        {image.data(), len});
    // The number of whole records below `len`.
    std::size_t want = 0;
    while (want + 1 < boundaries.size() && boundaries[want + 1] <= len)
      ++want;
    ASSERT_EQ(replay.batches.size(), want) << "len " << len;
    EXPECT_EQ(replay.valid_bytes, boundaries[want]) << "len " << len;
    EXPECT_EQ(replay.torn, len != boundaries[want]) << "len " << len;
    for (std::size_t b = 0; b < want; ++b)
      expect_batch_equal(replay.batches[b], s.trace[b],
                         "len " + std::to_string(len) + " batch " +
                             std::to_string(b));
  }
}

// --- snapshot capture/restore ----------------------------------------------

TEST(Snapshot, CaptureEncodeDecodeRestoreRoundTrip) {
  const Scenario s = make_scenario(ArrivalLaw::kPoisson, 41);
  OnlineScheduler original(s.base, s.config);
  for (std::size_t b = 0; b < 5; ++b) original.step(s.trace[b]);

  const SchedulerSnapshot snap = original.capture();
  EXPECT_EQ(snap.batches_applied, 5u);
  // Deterministic encoding: equal state, equal bytes.
  const std::vector<std::uint8_t> image = encode_snapshot(snap);
  EXPECT_EQ(image, encode_snapshot(original.capture()));

  SchedulerSnapshot decoded;
  std::string error;
  ASSERT_TRUE(decode_snapshot(image, decoded, &error)) << error;
  EXPECT_TRUE(decoded == snap);

  OnlineScheduler restored(s.base, s.config, decoded);
  expect_scheduler_equal(restored, original, "restored at 5");
  // The restored scheduler is fully live: stepping both onward keeps
  // them identical (forests, caches and params all survived).
  for (std::size_t b = 5; b < s.trace.size(); ++b) {
    restored.step(s.trace[b]);
    original.step(s.trace[b]);
  }
  expect_scheduler_equal(restored, original, "restored stepped to end");
  expect_cold_parity(restored, s.config.solver, "restored stepped to end");
}

TEST(Snapshot, SchemaDriftAndWrongFileFailLoudly) {
  const Scenario s = make_scenario(ArrivalLaw::kPoisson, 43);
  OnlineScheduler scheduler(s.base, s.config);
  scheduler.step(s.trace[0]);
  const std::vector<std::uint8_t> image =
      encode_snapshot(scheduler.capture());

  // Version bump with a *recomputed* header checksum: only the schema
  // check can reject it, and its message must say so.
  std::vector<std::uint8_t> drifted = image;
  const std::uint32_t future = kSnapshotVersion + 1;
  std::memcpy(drifted.data() + 4, &future, 4);
  const std::uint32_t fixed_crc = crc32({drifted.data(), 24});
  std::memcpy(drifted.data() + 24, &fixed_crc, 4);
  SchedulerSnapshot out;
  std::string error;
  EXPECT_FALSE(decode_snapshot(drifted, out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  // Wrong magic: rejected as not-a-snapshot.
  std::vector<std::uint8_t> alien = image;
  alien[0] ^= 0xFF;
  EXPECT_FALSE(decode_snapshot(alien, out, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  // The empty file and a truncated header are rejected, not UB.
  EXPECT_FALSE(decode_snapshot({}, out, &error));
  EXPECT_FALSE(
      decode_snapshot({image.data(), 10}, out, &error));
}

// Restoring against the wrong base topology must throw, not mis-restore.
TEST(Snapshot, RestoreAgainstWrongBaseThrows) {
  const Scenario s = make_scenario(ArrivalLaw::kPoisson, 47);
  OnlineScheduler scheduler(s.base, s.config);
  for (std::size_t b = 0; b < 3; ++b) scheduler.step(s.trace[b]);
  const SchedulerSnapshot snap = scheduler.capture();

  const Problem other = small_tree_problem(48, 10, 2, 4);
  EXPECT_THROW(OnlineScheduler(other, s.config, snap),
               std::invalid_argument);
}

// --- the crash matrix ------------------------------------------------------

struct MatrixCase {
  CrashPoint point;
  std::uint32_t batch;
  // Batches the recovered service must come back with: the crashed
  // batch itself survives iff the journal append completed.
  std::uint32_t expect_applied(std::uint32_t crash_batch) const {
    return point == CrashPoint::kMidJournalAppend ? crash_batch
                                                  : crash_batch + 1;
  }
};

TEST(CrashRecovery, EveryCrashPointRecoversToExactParity) {
  const std::vector<ArrivalLaw> laws{ArrivalLaw::kPoisson,
                                     ArrivalLaw::kBursty};
  const std::vector<CrashPoint> points{
      CrashPoint::kMidJournalAppend, CrashPoint::kAfterAppend,
      CrashPoint::kAfterApply, CrashPoint::kMidSnapshotWrite,
      CrashPoint::kAfterSnapshot};
  // Odd crash batches with snapshot_every=2: the mid-snapshot point
  // fires exactly when the triggering batch completes a snapshot period.
  const std::vector<std::uint32_t> crash_batches{3, 5};

  for (const ArrivalLaw law : laws) {
    const Scenario s = make_scenario(law, law == ArrivalLaw::kPoisson ? 51
                                                                      : 53);
    for (const CrashPoint point : points) {
      for (const std::uint32_t crash_batch : crash_batches) {
        const std::string label = std::string(to_string(law)) + "/" +
                                  to_string(point) + "/b" +
                                  std::to_string(crash_batch);
        DurabilityConfig dur;
        dur.journal_path = temp_path("matrix.wal");
        dur.snapshot_every = 2;
        dur.crash = {point, crash_batch, 7 + crash_batch};

        bool crashed = false;
        try {
          DurableOnlineService service(s.base, s.config, dur);
          for (const EventBatch& batch : s.trace) service.step(batch);
        } catch (const CrashInjected& crash) {
          crashed = true;
          EXPECT_EQ(crash.point, point) << label;
          EXPECT_EQ(crash.batch, crash_batch) << label;
        }
        ASSERT_TRUE(crashed) << label << ": the plan never fired";

        dur.crash = {};  // recover without a plan armed
        RecoveryReport report;
        DurableOnlineService recovered =
            DurableOnlineService::recover(s.base, s.config, dur, &report);
        const std::uint32_t applied =
            MatrixCase{point, crash_batch}.expect_applied(crash_batch);
        ASSERT_EQ(recovered.batches_applied(), applied) << label;
        EXPECT_EQ(report.journal_torn,
                  point == CrashPoint::kMidJournalAppend)
            << label;

        // Exact equality with the uninterrupted run at the recovery
        // point...
        const OnlineScheduler reference =
            reference_at(s.base, s.config, s.trace, applied);
        expect_scheduler_equal(recovered.scheduler(), reference,
                               label + " at recovery");
        // ...and after finishing the trace, at the end — through the
        // resumed journal, so a second replay agrees too.
        for (std::size_t b = applied; b < s.trace.size(); ++b)
          recovered.step(s.trace[b]);
        const OnlineScheduler full =
            reference_at(s.base, s.config, s.trace, s.trace.size());
        expect_scheduler_equal(recovered.scheduler(), full,
                               label + " at end");
        expect_cold_parity(recovered.scheduler(), s.config.solver,
                           label + " at end");
      }
    }
  }
}

// Two crashes back to back: the resumed journal keeps its sequence
// discipline, and the second recovery still lands on exact parity.
TEST(CrashRecovery, RepeatedCrashesRecoverRepeatedly) {
  const Scenario s = make_scenario(ArrivalLaw::kPoisson, 57);
  DurabilityConfig dur;
  dur.journal_path = temp_path("repeated.wal");
  dur.snapshot_every = 3;

  dur.crash = {CrashPoint::kMidJournalAppend, 2, 11};
  bool crashed = false;
  try {
    DurableOnlineService service(s.base, s.config, dur);
    for (const EventBatch& batch : s.trace) service.step(batch);
  } catch (const CrashInjected&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);

  // Recover with a *new* plan armed: crash again further in.
  dur.crash = {CrashPoint::kMidSnapshotWrite, 5, 13};
  crashed = false;
  try {
    DurableOnlineService service =
        DurableOnlineService::recover(s.base, s.config, dur);
    for (std::size_t b = service.batches_applied(); b < s.trace.size(); ++b)
      service.step(s.trace[b]);
  } catch (const CrashInjected&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);

  dur.crash = {};
  RecoveryReport report;
  DurableOnlineService recovered =
      DurableOnlineService::recover(s.base, s.config, dur, &report);
  ASSERT_EQ(recovered.batches_applied(), 6u);
  for (std::size_t b = 6; b < s.trace.size(); ++b)
    recovered.step(s.trace[b]);
  expect_scheduler_equal(
      recovered.scheduler(),
      reference_at(s.base, s.config, s.trace, s.trace.size()),
      "after two crash/recover cycles");
}

// snapshot_every=0: no snapshots at all — recovery is a full journal
// replay and must still be exact.
TEST(CrashRecovery, JournalOnlyRecovery) {
  const Scenario s = make_scenario(ArrivalLaw::kBursty, 59);
  DurabilityConfig dur;
  dur.journal_path = temp_path("journal_only.wal");
  dur.snapshot_every = 0;
  dur.crash = {CrashPoint::kAfterApply, 4, 3};

  bool crashed = false;
  try {
    DurableOnlineService service(s.base, s.config, dur);
    for (const EventBatch& batch : s.trace) service.step(batch);
  } catch (const CrashInjected&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);

  dur.crash = {};
  RecoveryReport report;
  DurableOnlineService recovered =
      DurableOnlineService::recover(s.base, s.config, dur, &report);
  EXPECT_FALSE(report.snapshot_loaded);
  EXPECT_EQ(report.replayed, 5u);
  expect_scheduler_equal(recovered.scheduler(),
                         reference_at(s.base, s.config, s.trace, 5),
                         "journal-only recovery");
}

// Corrupting the newest snapshot slot must fall back to the older slot;
// corrupting both must fall back to a full journal replay.  Either way
// the corrupt bytes are rejected, never absorbed.
TEST(CrashRecovery, CorruptSnapshotSlotsFallBackSafely) {
  const Scenario s = make_scenario(ArrivalLaw::kPoisson, 61);
  DurabilityConfig dur;
  dur.journal_path = temp_path("corrupt_slots.wal");
  dur.snapshot_every = 2;
  {
    DurableOnlineService service(s.base, s.config, dur);
    for (std::size_t b = 0; b < 6; ++b) service.step(s.trace[b]);
  }
  const SnapshotStore store(dur.journal_path + ".snap");
  // Identify the newest slot by decoding both.
  const auto slot_seq = [](const std::string& path) -> std::uint32_t {
    std::ifstream in(path, std::ios::binary);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    SchedulerSnapshot snap;
    EXPECT_TRUE(decode_snapshot(bytes, snap)) << path;
    return snap.batches_applied;
  };
  const std::uint32_t seq_a = slot_seq(store.slot_a());
  const std::uint32_t seq_b = slot_seq(store.slot_b());
  ASSERT_NE(seq_a, seq_b);
  const std::string newest =
      seq_a > seq_b ? store.slot_a() : store.slot_b();
  const std::string older =
      seq_a > seq_b ? store.slot_b() : store.slot_a();
  const std::uint32_t older_seq = std::min(seq_a, seq_b);

  // Flip one payload byte of the newest slot.
  std::vector<std::uint8_t> bytes = read_file(newest);
  bytes[bytes.size() / 2] ^= 0x20;
  write_file(newest, bytes);

  RecoveryReport report;
  DurableOnlineService recovered =
      DurableOnlineService::recover(s.base, s.config, dur, &report);
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(report.snapshot_batches, older_seq);
  EXPECT_NE(report.note.find("rejected"), std::string::npos) << report.note;
  ASSERT_EQ(recovered.batches_applied(), 6u);
  expect_scheduler_equal(recovered.scheduler(),
                         reference_at(s.base, s.config, s.trace, 6),
                         "fallback to older slot");

  // Now corrupt the older slot too: journal-only recovery.
  std::vector<std::uint8_t> bytes2 = read_file(older);
  bytes2[bytes2.size() / 3] ^= 0x01;
  write_file(older, bytes2);
  DurableOnlineService replayed =
      DurableOnlineService::recover(s.base, s.config, dur, &report);
  EXPECT_FALSE(report.snapshot_loaded);
  EXPECT_EQ(report.replayed, 6u);
  expect_scheduler_equal(replayed.scheduler(),
                         reference_at(s.base, s.config, s.trace, 6),
                         "fallback to journal replay");
}

// --- compaction (satellite: instance-id stability across restart) ----------

// A crash after a tombstone compaction but before the next snapshot:
// the replay must re-trigger the same compaction deterministically and
// land on the exact renumbered state (instance ids, masks, caches).
TEST(CrashRecovery, CompactionBetweenSnapshotAndCrashReplaysExactly) {
  const Scenario base_scenario = make_scenario(ArrivalLaw::kPoisson, 17);
  Scenario s = base_scenario;
  // The forced-compaction config from test_online: tombstones purge
  // quickly.
  s.config.compaction_floor = 4;
  s.config.compaction_slack = 0.25;
  DemandGenConfig demand_cfg;
  demand_cfg.heights = HeightLaw::kBimodal;
  OnlineTrafficSpec traffic;
  traffic.rate = 8.0;
  traffic.num_batches = 10;
  traffic.seed = 17;
  TenantClass churn;
  churn.mean_lifetime = 1.0;
  traffic.tenants = {churn};
  s.trace = make_event_trace(s.base, demand_cfg, traffic);

  // Find the compaction batches on a dry run.
  std::vector<std::uint32_t> compactions;
  {
    OnlineScheduler probe(s.base, s.config);
    for (std::size_t b = 0; b < s.trace.size(); ++b)
      if (probe.step(s.trace[b]).compacted)
        compactions.push_back(static_cast<std::uint32_t>(b));
  }
  ASSERT_FALSE(compactions.empty())
      << "trace never compacted; the arm is not exercising the purge";

  const int snapshot_every = 4;
  for (const std::uint32_t compaction_batch : compactions) {
    const std::string label =
        "compaction at batch " + std::to_string(compaction_batch);
    // Crash right after the compaction batch applied, before any later
    // snapshot could capture the renumbered state.
    DurabilityConfig dur;
    dur.journal_path = temp_path("compaction.wal");
    dur.snapshot_every = snapshot_every;
    dur.crash = {CrashPoint::kAfterApply, compaction_batch, 29};

    bool crashed = false;
    try {
      DurableOnlineService service(s.base, s.config, dur);
      for (const EventBatch& batch : s.trace) service.step(batch);
    } catch (const CrashInjected&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << label;

    dur.crash = {};
    RecoveryReport report;
    DurableOnlineService recovered =
        DurableOnlineService::recover(s.base, s.config, dur, &report);
    ASSERT_EQ(recovered.batches_applied(), compaction_batch + 1) << label;
    // If a snapshot preceded the crash, the replay spans the
    // compaction: snapshot state (pre-purge) -> replayed purge.
    if (compaction_batch + 1 > static_cast<std::uint32_t>(snapshot_every)) {
      EXPECT_TRUE(report.snapshot_loaded) << label;
    }
    const OnlineScheduler reference =
        reference_at(s.base, s.config, s.trace, compaction_batch + 1);
    // expect_scheduler_equal compares num_instances/num_demands and the
    // per-instance-id artifacts — renumbering drift cannot hide.
    expect_scheduler_equal(recovered.scheduler(), reference, label);

    for (std::size_t b = compaction_batch + 1; b < s.trace.size(); ++b)
      recovered.step(s.trace[b]);
    expect_scheduler_equal(
        recovered.scheduler(),
        reference_at(s.base, s.config, s.trace, s.trace.size()),
        label + " stepped to end");
    expect_cold_parity(recovered.scheduler(), s.config.solver,
                       label + " stepped to end");
  }

  // A snapshot taken *after* a compaction must itself restore exactly
  // (the snapshot carries the renumbered records verbatim).
  {
    DurabilityConfig dur;
    dur.journal_path = temp_path("compaction_snap.wal");
    dur.snapshot_every = static_cast<int>(compactions.front()) + 1;
    dur.crash = {CrashPoint::kAfterSnapshot, compactions.front(), 31};
    bool crashed = false;
    try {
      DurableOnlineService service(s.base, s.config, dur);
      for (const EventBatch& batch : s.trace) service.step(batch);
    } catch (const CrashInjected&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);
    dur.crash = {};
    RecoveryReport report;
    DurableOnlineService recovered =
        DurableOnlineService::recover(s.base, s.config, dur, &report);
    EXPECT_TRUE(report.snapshot_loaded);
    EXPECT_EQ(report.snapshot_batches, compactions.front() + 1);
    EXPECT_EQ(report.replayed, 0u);
    expect_scheduler_equal(
        recovered.scheduler(),
        reference_at(s.base, s.config, s.trace, compactions.front() + 1),
        "post-compaction snapshot restored");
  }
}

}  // namespace
}  // namespace treesched
