#include "model/problem.hpp"

#include <gtest/gtest.h>

#include "workload/tree_gen.hpp"

namespace treesched {
namespace {

Problem two_network_problem() {
  // Network 0: path 0-1-2-3.  Network 1: star centered at 1.
  std::vector<TreeNetwork> networks;
  networks.emplace_back(4, std::vector<std::pair<VertexId, VertexId>>{
                               {0, 1}, {1, 2}, {2, 3}});
  networks.emplace_back(4, std::vector<std::pair<VertexId, VertexId>>{
                               {1, 0}, {1, 2}, {1, 3}});
  Problem problem(4, std::move(networks));
  problem.add_demand(0, 3, 10.0);        // d0, both networks
  problem.add_demand(0, 2, 5.0);         // d1
  problem.set_access(1, {0});            // d1 restricted to network 0
  problem.add_demand(2, 3, 2.0, 0.5);    // d2, height 1/2
  problem.finalize();
  return problem;
}

TEST(Problem, InstanceExpansionFollowsAccessSets) {
  const Problem p = two_network_problem();
  EXPECT_EQ(p.num_demands(), 3);
  // d0: 2 instances, d1: 1, d2: 2.
  EXPECT_EQ(p.num_instances(), 5);
  EXPECT_EQ(p.instances_of_demand(0).size(), 2u);
  EXPECT_EQ(p.instances_of_demand(1).size(), 1u);
  EXPECT_EQ(p.instances_of_demand(2).size(), 2u);
}

TEST(Problem, GlobalEdgeMappingRoundTrips) {
  const Problem p = two_network_problem();
  EXPECT_EQ(p.num_global_edges(), 6);
  for (NetworkId q = 0; q < p.num_networks(); ++q) {
    for (EdgeId e = 0; e < p.network(q).num_edges(); ++e) {
      const auto [qq, ee] = p.edge_owner(p.global_edge(q, e));
      EXPECT_EQ(qq, q);
      EXPECT_EQ(ee, e);
    }
  }
}

TEST(Problem, InstancePathsAreCorrect) {
  const Problem p = two_network_problem();
  // d0 on network 0: path 0-1-2-3 = local edges {0,1,2} = global {0,1,2}.
  const auto& i0 = p.instance(p.instances_of_demand(0)[0]);
  EXPECT_EQ(i0.network, 0);
  EXPECT_EQ(i0.edges, (std::vector<EdgeId>{0, 1, 2}));
  // d0 on network 1 (star at 1): path 0-1-3 = local edges {0,2} =
  // global {3, 5}.
  const auto& i1 = p.instance(p.instances_of_demand(0)[1]);
  EXPECT_EQ(i1.network, 1);
  EXPECT_EQ(i1.edges, (std::vector<EdgeId>{3, 5}));
}

TEST(Problem, OverlapAndConflict) {
  const Problem p = two_network_problem();
  const InstanceId d0n0 = p.instances_of_demand(0)[0];
  const InstanceId d0n1 = p.instances_of_demand(0)[1];
  const InstanceId d1n0 = p.instances_of_demand(1)[0];
  const InstanceId d2n0 = p.instances_of_demand(2)[0];
  // Same demand, different networks: conflicting but not overlapping.
  EXPECT_FALSE(p.overlap(d0n0, d0n1));
  EXPECT_TRUE(p.conflicting(d0n0, d0n1));
  // d0 and d1 share edges 0,1 on network 0.
  EXPECT_TRUE(p.overlap(d0n0, d1n0));
  EXPECT_TRUE(p.overlap(d1n0, d0n0));  // symmetry
  // d1 [0-2] and d2 [2-3] touch at vertex 2 but share no edge.
  EXPECT_FALSE(p.overlap(d1n0, d2n0));
  EXPECT_FALSE(p.conflicting(d1n0, d2n0));
}

TEST(Problem, InstancesOnEdgeIndex) {
  const Problem p = two_network_problem();
  for (EdgeId e = 0; e < p.num_global_edges(); ++e) {
    for (InstanceId i : p.instances_on_edge(e)) {
      const auto& edges = p.instance(i).edges;
      EXPECT_TRUE(std::binary_search(edges.begin(), edges.end(), e));
    }
  }
  // Every instance-edge incidence appears in the index.
  for (const DemandInstance& inst : p.instances()) {
    for (EdgeId e : inst.edges) {
      const auto& lst = p.instances_on_edge(e);
      EXPECT_NE(std::find(lst.begin(), lst.end(), inst.id), lst.end());
    }
  }
}

TEST(Problem, SummaryStatistics) {
  const Problem p = two_network_problem();
  EXPECT_DOUBLE_EQ(p.max_profit(), 10.0);
  EXPECT_DOUBLE_EQ(p.min_profit(), 2.0);
  EXPECT_DOUBLE_EQ(p.min_height(), 0.5);
  EXPECT_DOUBLE_EQ(p.max_height(), 1.0);
  EXPECT_FALSE(p.unit_height());
  EXPECT_TRUE(p.uniform_capacity());
  EXPECT_EQ(p.max_path_length(), 3);
  EXPECT_EQ(p.min_path_length(), 1);
  EXPECT_DOUBLE_EQ(p.total_profit(), 17.0);
}

TEST(Problem, CanCommunicateViaSharedResource) {
  const Problem p = two_network_problem();
  EXPECT_TRUE(p.can_communicate(0, 1));   // share network 0
  EXPECT_TRUE(p.can_communicate(0, 2));
  EXPECT_TRUE(p.can_communicate(1, 2));   // d1:{0}, d2:{0,1} -> share 0
}

TEST(Problem, ValidationErrors) {
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(4));
  Problem p(4, std::move(networks));
  EXPECT_THROW(p.add_demand(0, 0, 1.0), std::invalid_argument);   // u == v
  EXPECT_THROW(p.add_demand(0, 9, 1.0), std::invalid_argument);   // range
  EXPECT_THROW(p.add_demand(0, 1, -1.0), std::invalid_argument);  // profit
  EXPECT_THROW(p.add_demand(0, 1, 1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(p.add_demand(0, 1, 1.0, 0.0), std::invalid_argument);
  const DemandId d = p.add_demand(0, 1, 1.0);
  EXPECT_THROW(p.set_access(d, {}), std::invalid_argument);
  EXPECT_THROW(p.set_access(d, {7}), std::invalid_argument);
  EXPECT_THROW(p.set_capacity(0, 0, 0.0), std::invalid_argument);
}

TEST(Problem, NetworksMustShareVertexSet) {
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(4));
  networks.push_back(TreeNetwork::line(5));
  EXPECT_THROW(Problem(4, std::move(networks)), std::invalid_argument);
}

TEST(Problem, CapacitiesStored) {
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(4));
  Problem p(4, std::move(networks));
  p.set_uniform_capacity(2.0);
  p.set_capacity(0, 1, 5.0);
  p.add_demand(0, 3, 1.0);
  p.finalize();
  EXPECT_DOUBLE_EQ(p.capacity(0), 2.0);
  EXPECT_DOUBLE_EQ(p.capacity(1), 5.0);
  EXPECT_DOUBLE_EQ(p.min_capacity(), 2.0);
  EXPECT_DOUBLE_EQ(p.max_capacity(), 5.0);
  EXPECT_FALSE(p.uniform_capacity());
}

}  // namespace
}  // namespace treesched
