#include "dist/luby_mis.hpp"

#include <gtest/gtest.h>

#include "dist/conflict_graph.hpp"
#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::small_line_problem;
using testutil::small_tree_problem;

std::vector<InstanceId> all_instances(const Problem& p) {
  std::vector<InstanceId> all(static_cast<std::size_t>(p.num_instances()));
  for (InstanceId i = 0; i < p.num_instances(); ++i)
    all[static_cast<std::size_t>(i)] = i;
  return all;
}

void check_mis(const Problem& p, const std::vector<InstanceId>& candidates,
               const std::vector<InstanceId>& selected) {
  // Map into the explicit conflict graph and use its checker.
  ConflictGraph graph(p, {candidates.data(), candidates.size()});
  std::vector<int> indexes;
  for (InstanceId s : selected) {
    int idx = -1;
    for (int v = 0; v < graph.size(); ++v)
      if (graph.instance(v) == s) idx = v;
    ASSERT_GE(idx, 0);
    indexes.push_back(idx);
  }
  EXPECT_TRUE(graph.is_maximal_independent_set(indexes));
}

TEST(LubyMis, ValidMisOnTreeProblems) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Problem p = small_tree_problem(seed, 32, 2, 20);
    LubyMis mis(p, seed * 3 + 1);
    const auto candidates = all_instances(p);
    const MisResult result = mis.run(candidates);
    ASSERT_FALSE(result.selected.empty());
    EXPECT_GE(result.rounds, 2);
    EXPECT_EQ(result.rounds % 2, 0);  // 2 rounds per Luby iteration
    check_mis(p, candidates, result.selected);
  }
}

TEST(LubyMis, ValidMisOnLineProblems) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Problem p = small_line_problem(seed, 30, 2, 12, HeightLaw::kUnit,
                                         2.0);
    LubyMis mis(p, seed);
    const auto candidates = all_instances(p);
    const MisResult result = mis.run(candidates);
    check_mis(p, candidates, result.selected);
  }
}

TEST(LubyMis, WorksOnCandidateSubsets) {
  const Problem p = small_tree_problem(9, 32, 2, 20);
  LubyMis mis(p, 5);
  std::vector<InstanceId> subset;
  for (InstanceId i = 0; i < p.num_instances(); i += 3) subset.push_back(i);
  const MisResult result = mis.run(subset);
  check_mis(p, subset, result.selected);
  // Selected instances must come from the candidate set.
  for (InstanceId s : result.selected)
    EXPECT_NE(std::find(subset.begin(), subset.end(), s), subset.end());
}

TEST(LubyMis, DeterministicBySeed) {
  const Problem p = small_tree_problem(11, 32, 2, 20);
  const auto candidates = all_instances(p);
  LubyMis a(p, 77), b(p, 77);
  const MisResult ra = a.run(candidates);
  const MisResult rb = b.run(candidates);
  EXPECT_EQ(ra.selected, rb.selected);
  EXPECT_EQ(ra.rounds, rb.rounds);
}

TEST(LubyMis, SingletonCandidate) {
  const Problem p = small_tree_problem(12, 16, 1, 4);
  LubyMis mis(p, 1);
  const MisResult result = mis.run(std::vector<InstanceId>{0});
  EXPECT_EQ(result.selected, std::vector<InstanceId>{0});
  EXPECT_EQ(result.rounds, 2);
}

TEST(LubyMis, IterationCountIsLogarithmicOnAverage) {
  // Luby terminates in O(log N) iterations w.h.p.; with N ~ 300
  // candidates the observed iteration count should be far below N.
  const Problem p = small_tree_problem(13, 64, 4, 80);
  LubyMis mis(p, 3);
  const auto candidates = all_instances(p);
  const MisResult result = mis.run(candidates);
  EXPECT_LE(result.rounds / 2, 30);
}

}  // namespace
}  // namespace treesched
