// Non-uniform bandwidth extension (DESIGN.md Section 6): capacity laws,
// NBA checks, and the capacitated solvers' guarantees.
#include "capacity/nonuniform.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace treesched {
namespace {

using testutil::exact_opt;
using testutil::require_feasible;

Problem capacitated_tree_problem(std::uint64_t seed, CapacityLaw law,
                                 double spread,
                                 HeightLaw heights = HeightLaw::kUnit,
                                 int m = 9) {
  TreeScenarioSpec spec;
  spec.num_vertices = 20;
  spec.num_networks = 2;
  spec.demands.num_demands = m;
  spec.demands.heights = heights;
  spec.demands.height_min = 0.2;
  spec.demands.profit_max = 50.0;
  spec.capacities = law;
  spec.capacity_base = 1.0;
  spec.capacity_spread = spread;
  spec.seed = seed;
  return make_tree_problem(spec);
}

TEST(CapacityProfile, LawsProduceExpectedSpread) {
  for (CapacityLaw law : {CapacityLaw::kTwoClass, CapacityLaw::kPowerClasses,
                          CapacityLaw::kHotspot}) {
    const Problem p = capacitated_tree_problem(3, law, 4.0);
    EXPECT_GE(p.min_capacity(), 1.0 - kEps) << to_string(law);
    EXPECT_LE(p.max_capacity(), 4.0 + kEps) << to_string(law);
    EXPECT_FALSE(p.uniform_capacity()) << to_string(law);
  }
  const Problem u = capacitated_tree_problem(3, CapacityLaw::kUniform, 1.0);
  EXPECT_TRUE(u.uniform_capacity());
}

TEST(CapacityProfile, NbaAndNarrowChecks) {
  const Problem unit = capacitated_tree_problem(1, CapacityLaw::kTwoClass,
                                                2.0);
  EXPECT_TRUE(satisfies_nba(unit));  // h = 1 <= c_min = 1
  EXPECT_FALSE(all_instances_narrow(unit));

  // Narrow heights (<= 1/2) against capacity >= 1: all-narrow holds.
  const Problem narrow = capacitated_tree_problem(
      2, CapacityLaw::kTwoClass, 2.0, HeightLaw::kNarrowOnly);
  EXPECT_TRUE(all_instances_narrow(narrow));
}

TEST(CapacityProfile, BottleneckAndSpread) {
  const Problem p = capacitated_tree_problem(4, CapacityLaw::kPowerClasses,
                                             8.0);
  for (InstanceId i = 0; i < p.num_instances(); ++i) {
    const Capacity b = bottleneck_capacity(p, i);
    EXPECT_GE(b, p.min_capacity() - kEps);
    EXPECT_LE(b, p.max_capacity() + kEps);
    const int cls = bottleneck_class(p, i);
    EXPECT_GE(cls, 0);
    EXPECT_LT(cls, num_bottleneck_classes(p));
    // Class k means bottleneck in [cmin 2^k, cmin 2^(k+1)).
    EXPECT_GE(b + kEps, p.min_capacity() * std::pow(2.0, cls));
    EXPECT_LT(b, p.min_capacity() * std::pow(2.0, cls + 1) + kEps);
  }
  EXPECT_GE(max_path_capacity_spread(p), 1.0);
  EXPECT_LE(max_path_capacity_spread(p),
            p.max_capacity() / p.min_capacity() + kEps);
}

TEST(NonuniformUnit, UniformCapacityReducesToPaper) {
  // With spread 1 the capacitated solver must behave exactly like the
  // paper's algorithm: same bound (Delta+1)/(1-eps), rho = 1.
  const Problem p = capacitated_tree_problem(5, CapacityLaw::kUniform, 1.0);
  NonuniformOptions options;
  options.dist.epsilon = 0.1;
  const NonuniformResult run = solve_nonuniform_unit(p, options);
  require_feasible(p, run.solution);
  EXPECT_DOUBLE_EQ(run.path_spread, 1.0);
  // rho = 1: the derived bound collapses to the paper's (Delta+1)/(1-eps)
  // with Delta <= 6.
  EXPECT_LE(run.ratio_bound, 7.0 / 0.9 + 1e-9);
}

TEST(NonuniformUnit, WithinDerivedBoundAcrossSpreads) {
  for (double spread : {2.0, 4.0, 8.0}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const Problem p = capacitated_tree_problem(
          seed * 10 + static_cast<std::uint64_t>(spread),
          CapacityLaw::kPowerClasses, spread);
      NonuniformOptions options;
      options.dist.seed = seed;
      const NonuniformResult run = solve_nonuniform_unit(p, options);
      const Profit profit = require_feasible(p, run.solution);
      const Profit opt = exact_opt(p);
      EXPECT_GE(profit * run.ratio_bound, opt - 1e-6)
          << "spread " << spread << " seed " << seed;
      EXPECT_GE(run.stats.dual_upper_bound, opt - 1e-6)
          << "dual certificate must dominate OPT";
    }
  }
}

TEST(NonuniformUnit, ByClassSolvesAndStaysFeasible) {
  const Problem p = capacitated_tree_problem(7, CapacityLaw::kPowerClasses,
                                             8.0, HeightLaw::kUnit, 12);
  NonuniformOptions options;
  options.by_class = true;
  const NonuniformResult run = solve_nonuniform_unit(p, options);
  require_feasible(p, run.solution);
  EXPECT_GE(run.classes, 1);
  EXPECT_GT(run.profit, 0.0);
}

TEST(NonuniformNarrow, WithinDerivedBound) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Problem p = capacitated_tree_problem(
        seed + 90, CapacityLaw::kTwoClass, 4.0, HeightLaw::kNarrowOnly);
    ASSERT_TRUE(all_instances_narrow(p));
    NonuniformOptions options;
    options.dist.seed = seed;
    const NonuniformResult run = solve_nonuniform_narrow(p, options);
    const Profit profit = require_feasible(p, run.solution);
    const Profit opt = exact_opt(p);
    EXPECT_GE(profit * run.ratio_bound, opt - 1e-6) << "seed " << seed;
    EXPECT_GE(run.stats.dual_upper_bound, opt - 1e-6);
  }
}

TEST(NonuniformUnit, NaiveRaisesStillFeasibleButWorseCertificate) {
  const Problem p = capacitated_tree_problem(11, CapacityLaw::kTwoClass,
                                             8.0);
  NonuniformOptions aware, naive;
  naive.capacity_aware = false;
  const NonuniformResult ra = solve_nonuniform_unit(p, aware);
  const NonuniformResult rn = solve_nonuniform_unit(p, naive);
  require_feasible(p, ra.solution);
  require_feasible(p, rn.solution);
  // The naive rule over-pays high-capacity edges in the dual objective;
  // its certificate can only be as good or worse.
  EXPECT_GE(rn.stats.dual_upper_bound, ra.stats.dual_upper_bound - 1e-6);
}

TEST(NonuniformUnit, HigherCapacityAdmitsMoreDemands) {
  // Many parallel demands over one shared path: capacity c admits c of
  // them; the solver must find them all.
  std::vector<TreeNetwork> networks;
  networks.push_back(TreeNetwork::line(5));
  Problem p(5, std::move(networks));
  p.set_uniform_capacity(3.0);
  for (int k = 0; k < 5; ++k) p.add_demand(0, 4, 1.0);
  p.finalize();
  NonuniformOptions options;
  const NonuniformResult run = solve_nonuniform_unit(p, options);
  require_feasible(p, run.solution);
  EXPECT_NEAR(run.profit, 3.0, 1e-9);
}

}  // namespace
}  // namespace treesched
