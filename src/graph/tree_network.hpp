// TreeNetwork: an undirected tree over the shared vertex set V (paper,
// Section 2).  Each of the r input networks is one of these.  The class
// provides the path primitives the decompositions and the scheduler need:
//
//  - LCA queries (binary lifting, O(log n));
//  - path extraction between any two vertices (the routing of a demand
//    instance is the unique tree path between its end-points);
//  - the *median* of three vertices: the unique vertex lying on all three
//    pairwise paths.  median(u, a, b) is exactly the "bending point" of the
//    path a~b with respect to u (paper, Section 4.4), and median(u1, u2, z)
//    is the "junction" of BuildIdealTD Case 2(b).
//
// Vertices are 0-based.  Edges are identified by a local EdgeId in
// [0, n-2]; the Problem class maps (network, local edge) pairs to global
// edge ids for the dual variables beta(e).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/prelude.hpp"

namespace treesched {

class TreeNetwork {
 public:
  struct Adj {
    VertexId to;
    EdgeId edge;
  };

  // Builds the tree and all query structures.  Requires exactly n-1 edges
  // forming a connected graph; throws std::invalid_argument otherwise.
  TreeNetwork(VertexId num_vertices,
              std::vector<std::pair<VertexId, VertexId>> edges);

  VertexId num_vertices() const { return n_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edge_u_.size()); }

  VertexId edge_u(EdgeId e) const { return edge_u_[check_edge(e)]; }
  VertexId edge_v(EdgeId e) const { return edge_v_[check_edge(e)]; }

  std::span<const Adj> neighbors(VertexId v) const {
    check_vertex(v);
    return {adj_[static_cast<std::size_t>(v)].data(),
            adj_[static_cast<std::size_t>(v)].size()};
  }
  int degree(VertexId v) const {
    check_vertex(v);
    return static_cast<int>(adj_[static_cast<std::size_t>(v)].size());
  }

  // Rooted-at-0 structure used internally for LCA; exposed because the
  // root-fixing decomposition and several tests reuse it.
  VertexId parent(VertexId v) const { check_vertex(v); return parent_[v]; }
  EdgeId parent_edge(VertexId v) const {
    check_vertex(v);
    return parent_edge_[v];
  }
  int depth(VertexId v) const { check_vertex(v); return depth_[v]; }
  const std::vector<VertexId>& bfs_order() const { return bfs_order_; }

  // Lowest common ancestor w.r.t. the internal root (vertex 0).
  VertexId lca(VertexId u, VertexId v) const;

  // Number of edges on the unique u~v path.
  int dist(VertexId u, VertexId v) const;

  // True iff x lies on the unique u~v path (inclusive of endpoints).
  bool on_path(VertexId x, VertexId u, VertexId v) const;

  // The unique vertex on all three pairwise paths of {a, b, c}.
  VertexId median(VertexId a, VertexId b, VertexId c) const;

  // Edges of the u~v path, ordered from u towards v.  O(path length).
  std::vector<EdgeId> path_edges(VertexId u, VertexId v) const;

  // Vertices of the u~v path, ordered from u towards v (inclusive).
  std::vector<VertexId> path_vertices(VertexId u, VertexId v) const;

  // EdgeId connecting u and v, or kNoEdge if they are not adjacent.
  EdgeId edge_between(VertexId u, VertexId v) const;

  // Convenience factory: the path network 0-1-2-...-(n-1).  Edge i joins
  // vertices i and i+1, so local EdgeId == timeslot index for line
  // networks (paper, Section 1 reformulation).
  static TreeNetwork line(VertexId num_vertices);

 private:
  VertexId check_vertex(VertexId v) const {
    TS_REQUIRE(v >= 0 && v < n_);
    return v;
  }
  EdgeId check_edge(EdgeId e) const {
    TS_REQUIRE(e >= 0 && e < num_edges());
    return e;
  }

  VertexId n_ = 0;
  std::vector<VertexId> edge_u_, edge_v_;
  std::vector<std::vector<Adj>> adj_;
  std::vector<VertexId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<int> depth_;
  std::vector<VertexId> bfs_order_;
  int log_ = 1;
  std::vector<std::vector<VertexId>> up_;  // up_[k][v]: 2^k-th ancestor
  std::unordered_map<std::uint64_t, EdgeId> edge_index_;

  static std::uint64_t edge_key(VertexId u, VertexId v);
};

}  // namespace treesched
