#include "graph/tree_network.hpp"

#include <algorithm>

namespace treesched {

std::uint64_t TreeNetwork::edge_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

TreeNetwork::TreeNetwork(VertexId num_vertices,
                         std::vector<std::pair<VertexId, VertexId>> edges)
    : n_(num_vertices) {
  check_input(n_ >= 1, "tree network needs at least one vertex");
  check_input(static_cast<VertexId>(edges.size()) == n_ - 1,
              "tree network needs exactly n-1 edges");

  adj_.resize(static_cast<std::size_t>(n_));
  edge_u_.reserve(edges.size());
  edge_v_.reserve(edges.size());
  for (EdgeId e = 0; e < static_cast<EdgeId>(edges.size()); ++e) {
    const auto [u, v] = edges[static_cast<std::size_t>(e)];
    check_input(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v,
                "edge endpoints out of range");
    check_input(!edge_index_.contains(edge_key(u, v)), "duplicate edge");
    edge_u_.push_back(u);
    edge_v_.push_back(v);
    adj_[static_cast<std::size_t>(u)].push_back({v, e});
    adj_[static_cast<std::size_t>(v)].push_back({u, e});
    edge_index_.emplace(edge_key(u, v), e);
  }

  // BFS from vertex 0: parents, depths, connectivity check.
  parent_.assign(static_cast<std::size_t>(n_), kNoVertex);
  parent_edge_.assign(static_cast<std::size_t>(n_), kNoEdge);
  depth_.assign(static_cast<std::size_t>(n_), -1);
  bfs_order_.clear();
  bfs_order_.reserve(static_cast<std::size_t>(n_));
  bfs_order_.push_back(0);
  depth_[0] = 0;
  for (std::size_t head = 0; head < bfs_order_.size(); ++head) {
    const VertexId v = bfs_order_[head];
    for (const Adj& a : adj_[static_cast<std::size_t>(v)]) {
      if (depth_[static_cast<std::size_t>(a.to)] < 0) {
        depth_[static_cast<std::size_t>(a.to)] = depth_[v] + 1;
        parent_[static_cast<std::size_t>(a.to)] = v;
        parent_edge_[static_cast<std::size_t>(a.to)] = a.edge;
        bfs_order_.push_back(a.to);
      }
    }
  }
  check_input(static_cast<VertexId>(bfs_order_.size()) == n_,
              "tree network must be connected");

  // Binary lifting table.
  log_ = 1;
  while ((1 << log_) < n_) ++log_;
  up_.assign(static_cast<std::size_t>(log_ + 1),
             std::vector<VertexId>(static_cast<std::size_t>(n_), 0));
  for (VertexId v = 0; v < n_; ++v)
    up_[0][static_cast<std::size_t>(v)] = (parent_[v] == kNoVertex) ? v
                                                                    : parent_[v];
  for (int k = 1; k <= log_; ++k)
    for (VertexId v = 0; v < n_; ++v)
      up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)] =
          up_[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(
              up_[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(
                  v)])];
}

VertexId TreeNetwork::lca(VertexId u, VertexId v) const {
  check_vertex(u);
  check_vertex(v);
  if (depth_[u] < depth_[v]) std::swap(u, v);
  int diff = depth_[u] - depth_[v];
  for (int k = 0; diff; ++k, diff >>= 1)
    if (diff & 1)
      u = up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(u)];
  if (u == v) return u;
  for (int k = log_; k >= 0; --k) {
    const VertexId uu =
        up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(u)];
    const VertexId vv =
        up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)];
    if (uu != vv) {
      u = uu;
      v = vv;
    }
  }
  return parent_[u];
}

int TreeNetwork::dist(VertexId u, VertexId v) const {
  const VertexId w = lca(u, v);
  return depth_[u] + depth_[v] - 2 * depth_[w];
}

bool TreeNetwork::on_path(VertexId x, VertexId u, VertexId v) const {
  return dist(u, x) + dist(x, v) == dist(u, v);
}

VertexId TreeNetwork::median(VertexId a, VertexId b, VertexId c) const {
  const VertexId x = lca(a, b);
  const VertexId y = lca(a, c);
  const VertexId z = lca(b, c);
  // Exactly two of the three LCAs coincide; the remaining (deepest) one is
  // the median.
  if (x == y) return z;
  if (x == z) return y;
  return x;
}

std::vector<EdgeId> TreeNetwork::path_edges(VertexId u, VertexId v) const {
  const VertexId w = lca(u, v);
  std::vector<EdgeId> down;  // edges from u climbing to w
  VertexId x = u;
  while (x != w) {
    down.push_back(parent_edge_[x]);
    x = parent_[x];
  }
  std::vector<EdgeId> up;  // edges from v climbing to w (to be reversed)
  x = v;
  while (x != w) {
    up.push_back(parent_edge_[x]);
    x = parent_[x];
  }
  down.insert(down.end(), up.rbegin(), up.rend());
  return down;
}

std::vector<VertexId> TreeNetwork::path_vertices(VertexId u, VertexId v) const {
  const VertexId w = lca(u, v);
  std::vector<VertexId> front;
  VertexId x = u;
  while (x != w) {
    front.push_back(x);
    x = parent_[x];
  }
  front.push_back(w);
  std::vector<VertexId> back;
  x = v;
  while (x != w) {
    back.push_back(x);
    x = parent_[x];
  }
  front.insert(front.end(), back.rbegin(), back.rend());
  return front;
}

EdgeId TreeNetwork::edge_between(VertexId u, VertexId v) const {
  check_vertex(u);
  check_vertex(v);
  const auto it = edge_index_.find(edge_key(u, v));
  return it == edge_index_.end() ? kNoEdge : it->second;
}

TreeNetwork TreeNetwork::line(VertexId num_vertices) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(static_cast<std::size_t>(num_vertices - 1));
  for (VertexId i = 0; i + 1 < num_vertices; ++i) edges.emplace_back(i, i + 1);
  return TreeNetwork(num_vertices, std::move(edges));
}

}  // namespace treesched
