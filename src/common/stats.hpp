// Running statistics (Welford) and small summary helpers used by the
// benchmark harness to aggregate per-seed measurements into table rows.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace treesched {

// Online mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Merge another accumulator (parallel reduction support).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Exact quantile over a stored sample (used for p50/p95 round counts).
class Sample {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const { return xs_.size(); }
  double quantile(double q) const;
  double mean() const;
  double max() const;
  double min() const;

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

// Least-squares slope of y against x — used to verify scaling laws
// (e.g. rounds vs log n should be near-linear).
double regression_slope(const std::vector<double>& x,
                        const std::vector<double>& y);

// Pearson correlation, for the same scaling-law checks.
double correlation(const std::vector<double>& x, const std::vector<double>& y);

// Format a double with fixed precision (benchmark tables).
std::string fmt(double v, int precision = 3);

}  // namespace treesched
