// ASCII table / CSV writer for benchmark output.  Every bench binary prints
// one or more of these tables; EXPERIMENTS.md records the rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace treesched {

// Column-aligned ASCII table with an optional title.  Cells are strings;
// numeric formatting is the caller's job (common/stats.hpp fmt()).
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  // Set the header row.  Must be called before add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Render with column alignment and a rule under the header.
  void print(std::ostream& os) const;

  // Render as CSV (header + rows), for machine consumption.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Convenience: a stopwatch for wall-clock sections of benches.
class Stopwatch {
 public:
  Stopwatch();
  // Seconds since construction or last reset.
  double elapsed_s() const;
  void reset();

 private:
  long long start_ns_;
};

}  // namespace treesched
