#include "common/stats.hpp"

#include <cstdio>

#include "common/prelude.hpp"

namespace treesched {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ = n_ + other.n_;
}

void Sample::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Sample::quantile(double q) const {
  TS_REQUIRE(!xs_.empty());
  TS_REQUIRE(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

double Sample::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Sample::max() const {
  TS_REQUIRE(!xs_.empty());
  ensure_sorted();
  return xs_.back();
}

double Sample::min() const {
  TS_REQUIRE(!xs_.empty());
  ensure_sorted();
  return xs_.front();
}

double regression_slope(const std::vector<double>& x,
                        const std::vector<double>& y) {
  TS_REQUIRE(x.size() == y.size());
  const auto n = static_cast<double>(x.size());
  if (x.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

double correlation(const std::vector<double>& x,
                   const std::vector<double>& y) {
  TS_REQUIRE(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double num = 0, dx = 0, dy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    dx += (x[i] - mx) * (x[i] - mx);
    dy += (y[i] - my) * (y[i] - my);
  }
  if (dx < 1e-12 || dy < 1e-12) return 0.0;
  return num / std::sqrt(dx * dy);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

}  // namespace treesched
