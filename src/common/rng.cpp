#include "common/rng.hpp"

#include <cmath>

namespace treesched {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // Xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x1ULL;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  TS_REQUIRE(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TS_REQUIRE(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform(double lo, double hi) {
  // 53-bit mantissa: uniform in [0,1).
  double u = static_cast<double>(next() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

bool Rng::chance(double p) { return uniform() < p; }

std::int64_t Rng::zipf(std::int64_t n, double s) {
  TS_REQUIRE(n >= 1);
  if (n == 1) return 1;
  // Rejection sampling from the Zipf(s) distribution truncated to [1, n]
  // (Devroye).  For s == 1 the envelope degenerates; nudge it.
  const double ss = (std::abs(s - 1.0) < 1e-9) ? 1.0 + 1e-9 : s;
  const double t = std::pow(static_cast<double>(n), 1.0 - ss);
  const double c = (1.0 - t) / (ss - 1.0);
  for (;;) {
    const double u = uniform();
    const double x = std::pow(1.0 - u * (ss - 1.0) * c, 1.0 / (1.0 - ss));
    const std::int64_t k = static_cast<std::int64_t>(x);
    if (k < 1 || k > n) continue;
    const double ratio = std::pow(static_cast<double>(k) / x, ss);
    if (uniform() < ratio) return k;
  }
}

Rng Rng::split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

}  // namespace treesched
