// treesched: common type aliases and contract-checking macros.
//
// Every module in the library includes this header first.  It deliberately
// stays tiny: integer id types for the entities of the scheduling problem,
// a handful of numeric constants, and assertion macros that stay active in
// release builds for cheap checks (TS_REQUIRE) while the expensive ones
// compile away (TS_DCHECK).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace treesched {

// Entity ids.  Signed 32-bit throughout: instances are bounded by m*r (or
// m*r*n for line placements) and all benchmark scales fit comfortably.
using VertexId = std::int32_t;
using EdgeId = std::int32_t;      // edge index, local to a network or global
using NetworkId = std::int32_t;
using DemandId = std::int32_t;
using ProcessorId = std::int32_t; // processor i owns demand i (paper, Sec. 2)
using InstanceId = std::int32_t;

using Profit = double;
using Height = double;
using Capacity = double;

inline constexpr VertexId kNoVertex = -1;
inline constexpr EdgeId kNoEdge = -1;
inline constexpr InstanceId kNoInstance = -1;

// Tolerance for floating-point feasibility and tightness checks.  Profits
// and heights are O(1)..O(1e6); 1e-7 absolute slack is far below any real
// raise amount while absorbing accumulated rounding.
inline constexpr double kEps = 1e-7;

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "treesched %s failed: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

// TS_REQUIRE: precondition/invariant check that survives in release builds.
#define TS_REQUIRE(expr)                                                     \
  do {                                                                       \
    if (!(expr))                                                             \
      ::treesched::contract_failure("REQUIRE", #expr, __FILE__, __LINE__);   \
  } while (0)

// TS_DCHECK: expensive consistency check, debug builds only.
#ifdef NDEBUG
#define TS_DCHECK(expr) ((void)0)
#else
#define TS_DCHECK(expr)                                                      \
  do {                                                                       \
    if (!(expr))                                                             \
      ::treesched::contract_failure("DCHECK", #expr, __FILE__, __LINE__);    \
  } while (0)
#endif

// Throwing check for user-facing input validation (parsers, builders).
inline void check_input(bool ok, const std::string& message) {
  if (!ok) throw std::invalid_argument("treesched: " + message);
}

}  // namespace treesched
