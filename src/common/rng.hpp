// Deterministic random number generation for workloads and randomized
// algorithms (Luby MIS).  SplitMix64 seeds Xoshiro256**; both are tiny,
// fast, and reproducible across platforms, which matters because every
// benchmark row in EXPERIMENTS.md is keyed by a seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/prelude.hpp"

namespace treesched {

// SplitMix64: used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256**: the workhorse generator.  Satisfies the C++ named
// requirement UniformRandomBitGenerator so it plugs into <random> if ever
// needed, but we provide the handful of distributions we actually use to
// keep results platform-independent (libstdc++ distributions are not
// portable across versions).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  // Bernoulli trial.
  bool chance(double p);

  // Zipf-distributed integer in [1, n] with exponent s (rejection-free
  // inverse-CDF over precomputed weights would cost memory; we use the
  // standard rejection sampler which is fine for n <= 1e6).
  std::int64_t zipf(std::int64_t n, double s);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Pick a uniformly random element index of a non-empty container.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    TS_REQUIRE(!v.empty());
    return v[static_cast<std::size_t>(next_below(v.size()))];
  }

  // Derive an independent child stream (for per-processor randomness in the
  // distributed simulator).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace treesched
