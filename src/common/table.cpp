#include "common/table.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "common/prelude.hpp"

namespace treesched {

void Table::set_header(std::vector<std::string> header) {
  TS_REQUIRE(rows_.empty());
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  TS_REQUIRE(header_.empty() || row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i ? "  " : "");
      os << row[i];
      for (std::size_t p = row[i].size(); p < width[i]; ++p) os << ' ';
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < width.size(); ++i)
      total += width[i] + (i ? 2 : 0);
    for (std::size_t i = 0; i < total; ++i) os << '-';
    os << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      os << (i ? "," : "") << row[i];
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

Stopwatch::Stopwatch() { reset(); }

void Stopwatch::reset() {
  start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

double Stopwatch::elapsed_s() const {
  const long long now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
  return static_cast<double>(now - start_ns_) * 1e-9;
}

}  // namespace treesched
