#include "io/framing.hpp"

#include <array>
#include <cstring>

namespace treesched {

namespace {

struct Crc32Table {
  std::array<std::uint32_t, 256> entry;
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      entry[i] = c;
    }
  }
};

template <typename T>
void put_raw(std::vector<std::uint8_t>& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

template <typename T>
bool get_raw(std::span<const std::uint8_t> buf, std::size_t& offset, T& v) {
  if (offset > buf.size() || buf.size() - offset < sizeof(T)) return false;
  std::memcpy(&v, buf.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const Crc32Table table;
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data)
    c = table.entry[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_raw(out, v);
}
void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_raw(out, v);
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_raw(out, v);
}
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_raw(out, v);
}
void put_f64(std::vector<std::uint8_t>& out, double v) { put_raw(out, v); }

bool get_u8(std::span<const std::uint8_t> buf, std::size_t& offset,
            std::uint8_t& v) {
  return get_raw(buf, offset, v);
}
bool get_u32(std::span<const std::uint8_t> buf, std::size_t& offset,
             std::uint32_t& v) {
  return get_raw(buf, offset, v);
}
bool get_i32(std::span<const std::uint8_t> buf, std::size_t& offset,
             std::int32_t& v) {
  return get_raw(buf, offset, v);
}
bool get_u64(std::span<const std::uint8_t> buf, std::size_t& offset,
             std::uint64_t& v) {
  return get_raw(buf, offset, v);
}
bool get_i64(std::span<const std::uint8_t> buf, std::size_t& offset,
             std::int64_t& v) {
  return get_raw(buf, offset, v);
}
bool get_f64(std::span<const std::uint8_t> buf, std::size_t& offset,
             double& v) {
  return get_raw(buf, offset, v);
}

std::size_t begin_crc_frame(std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = out.size();
  out.resize(frame_start + kCrcFrameHeaderBytes);  // [crc | seq] placeholder
  return frame_start;
}

std::size_t end_crc_frame(std::vector<std::uint8_t>& out,
                          std::size_t frame_start, std::uint32_t seq) {
  std::memcpy(out.data() + frame_start + 4, &seq, 4);
  // The checksum covers everything after itself: seq + payload.
  const std::uint32_t crc =
      crc32({out.data() + frame_start + 4, out.size() - frame_start - 4});
  std::memcpy(out.data() + frame_start, &crc, 4);
  return out.size() - frame_start;
}

bool verify_crc_frame(std::span<const std::uint8_t> buf, std::size_t offset,
                      std::size_t frame_len, std::uint32_t& seq,
                      std::string* error) {
  if (frame_len < kCrcFrameHeaderBytes || offset > buf.size() ||
      buf.size() - offset < frame_len) {
    if (error != nullptr) *error = "frame header truncated (need 8 bytes)";
    return false;
  }
  const std::uint8_t* p = buf.data() + offset;
  std::uint32_t want;
  std::memcpy(&want, p, 4);
  const std::uint32_t got = crc32({p + 4, frame_len - 4});
  if (got != want) {
    if (error != nullptr) *error = "frame checksum mismatch";
    return false;
  }
  std::memcpy(&seq, p + 4, 4);
  return true;
}

}  // namespace treesched
