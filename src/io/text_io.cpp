#include "io/text_io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace treesched {

namespace {

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  is >> token;
  check_input(token == expected,
              "expected '" + expected + "', got '" + token + "'");
}

}  // namespace

void write_problem(std::ostream& os, const Problem& problem) {
  // Full round-trip precision for profits, heights and capacities.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "treesched-problem 1\n";
  os << "vertices " << problem.num_vertices() << "\n";
  os << "networks " << problem.num_networks() << "\n";
  for (NetworkId q = 0; q < problem.num_networks(); ++q) {
    const TreeNetwork& network = problem.network(q);
    os << "network " << q << "\n";
    for (EdgeId e = 0; e < network.num_edges(); ++e) {
      os << network.edge_u(e) << " " << network.edge_v(e) << " "
         << problem.capacity(problem.global_edge(q, e)) << "\n";
    }
  }
  os << "demands " << problem.num_demands() << "\n";
  for (DemandId d = 0; d < problem.num_demands(); ++d) {
    const Demand& dem = problem.demand(d);
    const auto& acc = problem.access(d);
    os << dem.u << " " << dem.v << " " << dem.profit << " " << dem.height
       << " " << acc.size();
    for (NetworkId q : acc) os << " " << q;
    os << "\n";
  }
  os << "end\n";
}

Problem read_problem(std::istream& is) {
  expect_token(is, "treesched-problem");
  int version = 0;
  is >> version;
  check_input(version == 1, "unsupported problem version");

  expect_token(is, "vertices");
  VertexId n = 0;
  is >> n;
  expect_token(is, "networks");
  int r = 0;
  is >> r;
  check_input(n >= 1 && r >= 1, "bad problem header");

  std::vector<TreeNetwork> networks;
  std::vector<std::vector<Capacity>> capacities;
  networks.reserve(static_cast<std::size_t>(r));
  for (int q = 0; q < r; ++q) {
    expect_token(is, "network");
    int qq = 0;
    is >> qq;
    check_input(qq == q, "networks out of order");
    std::vector<std::pair<VertexId, VertexId>> edges;
    std::vector<Capacity> caps;
    for (VertexId e = 0; e + 1 < n; ++e) {
      VertexId u = 0, v = 0;
      Capacity c = 1.0;
      is >> u >> v >> c;
      edges.emplace_back(u, v);
      caps.push_back(c);
    }
    networks.emplace_back(n, std::move(edges));
    capacities.push_back(std::move(caps));
  }

  Problem problem(n, std::move(networks));
  for (int q = 0; q < r; ++q)
    for (EdgeId e = 0; e < static_cast<EdgeId>(
                               capacities[static_cast<std::size_t>(q)].size());
         ++e)
      problem.set_capacity(
          q, e, capacities[static_cast<std::size_t>(q)]
                          [static_cast<std::size_t>(e)]);

  expect_token(is, "demands");
  int m = 0;
  is >> m;
  check_input(m >= 1, "problem needs demands");
  for (int k = 0; k < m; ++k) {
    VertexId u = 0, v = 0;
    Profit profit = 0.0;
    Height height = 1.0;
    std::size_t acc_count = 0;
    is >> u >> v >> profit >> height >> acc_count;
    const DemandId d = problem.add_demand(u, v, profit, height);
    std::vector<NetworkId> acc(acc_count);
    for (auto& q : acc) is >> q;
    problem.set_access(d, std::move(acc));
  }
  expect_token(is, "end");
  check_input(static_cast<bool>(is), "truncated problem file");
  problem.finalize();
  return problem;
}

void write_line_problem(std::ostream& os, const LineProblem& line) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "treesched-line 1\n";
  os << "slots " << line.num_slots() << " resources " << line.num_resources()
     << "\n";
  os << "demands " << line.num_demands() << "\n";
  for (DemandId d = 0; d < line.num_demands(); ++d) {
    const LineDemand& ld = line.demand(d);
    const auto& acc = line.access(d);
    os << ld.release << " " << ld.deadline << " " << ld.proc_time << " "
       << ld.profit << " " << ld.height << " " << acc.size();
    for (NetworkId q : acc) os << " " << q;
    os << "\n";
  }
  os << "end\n";
}

LineProblem read_line_problem(std::istream& is) {
  expect_token(is, "treesched-line");
  int version = 0;
  is >> version;
  check_input(version == 1, "unsupported line-problem version");
  expect_token(is, "slots");
  int slots = 0;
  is >> slots;
  expect_token(is, "resources");
  int resources = 0;
  is >> resources;
  LineProblem line(slots, resources);

  expect_token(is, "demands");
  int m = 0;
  is >> m;
  for (int k = 0; k < m; ++k) {
    int release = 0, deadline = 0, proc = 0;
    Profit profit = 0.0;
    Height height = 1.0;
    std::size_t acc_count = 0;
    is >> release >> deadline >> proc >> profit >> height >> acc_count;
    const DemandId d = line.add_demand(release, deadline, proc, profit,
                                       height);
    std::vector<NetworkId> acc(acc_count);
    for (auto& q : acc) is >> q;
    line.set_access(d, std::move(acc));
  }
  expect_token(is, "end");
  check_input(static_cast<bool>(is), "truncated line-problem file");
  return line;
}

void write_solution(std::ostream& os, const Solution& solution) {
  os << "treesched-solution 1\n" << solution.selected.size() << "\n";
  for (InstanceId i : solution.selected) os << i << "\n";
}

Solution read_solution(std::istream& is) {
  expect_token(is, "treesched-solution");
  int version = 0;
  is >> version;
  check_input(version == 1, "unsupported solution version");
  std::size_t count = 0;
  is >> count;
  Solution solution;
  solution.selected.resize(count);
  for (auto& i : solution.selected) is >> i;
  check_input(static_cast<bool>(is), "truncated solution file");
  return solution;
}

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("treesched: cannot write " + path);
  return os;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("treesched: cannot read " + path);
  return is;
}

}  // namespace

void save_problem(const std::string& path, const Problem& problem) {
  auto os = open_out(path);
  write_problem(os, problem);
}

Problem load_problem(const std::string& path) {
  auto is = open_in(path);
  return read_problem(is);
}

void save_solution(const std::string& path, const Solution& solution) {
  auto os = open_out(path);
  write_solution(os, solution);
}

Solution load_solution(const std::string& path) {
  auto is = open_in(path);
  return read_solution(is);
}

}  // namespace treesched
