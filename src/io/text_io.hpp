// Plain-text (de)serialization of problems and solutions.  The formats
// are line-oriented and versioned; see README "File formats".  Tree
// problems round-trip through the automatic demand x access instance
// expansion; line problems serialize the window model and are re-lowered
// on load, so instance ids remain stable in both cases.
#pragma once

#include <iosfwd>
#include <string>

#include "model/line_problem.hpp"
#include "model/problem.hpp"
#include "model/solution.hpp"

namespace treesched {

void write_problem(std::ostream& os, const Problem& problem);
Problem read_problem(std::istream& is);

void write_line_problem(std::ostream& os, const LineProblem& line);
LineProblem read_line_problem(std::istream& is);

void write_solution(std::ostream& os, const Solution& solution);
Solution read_solution(std::istream& is);

// File convenience wrappers (throw std::runtime_error on IO failure).
void save_problem(const std::string& path, const Problem& problem);
Problem load_problem(const std::string& path);
void save_solution(const std::string& path, const Solution& solution);
Solution load_solution(const std::string& path);

}  // namespace treesched
