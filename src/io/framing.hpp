// Shared binary framing for every durable or wire byte stream.
//
// PR 8's recovery sublayer framed each wire message as
//   [u32 crc32 | u32 seq | payload]
// with the checksum covering everything after itself, and PR 10's
// write-ahead journal and snapshot files use the identical discipline.
// This header is the single home of that machinery so the wire and the
// disk formats cannot silently diverge: the CRC-32 implementation, the
// host-order scalar put/get helpers the codecs are written in, and the
// frame begin/end/verify triple both dist/transport.cpp and
// online/journal.cpp build their frames with.
//
// Layout contract (pinned by tests/test_framing.cpp against reference
// vectors and against the wire frame codec byte for byte):
//   * crc32 is IEEE 802.3 (reflected 0xEDB88320); crc32("123456789")
//     == 0xCBF43926;
//   * a frame is [u32 crc | u32 seq | payload] where the checksum
//     covers the seq word and the payload;
//   * payloads are self-delimiting (internal counts, every count
//     bounds-checked against the remaining bytes before any
//     allocation), so a reader first parses the payload structurally to
//     learn the frame extent, then verifies the checksum over exactly
//     those bytes — a corrupted length lands either on a structural
//     reject or on a checksum mismatch, never on UB.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace treesched {

// CRC-32 (IEEE 802.3, reflected 0xEDB88320 polynomial).
std::uint32_t crc32(std::span<const std::uint8_t> data);

// --- host-order scalar helpers --------------------------------------------
//
// The appenders grow `out`; the readers are bounds-checked and advance
// `offset` only on success, so a truncated buffer is always detected at
// the exact field that overruns it.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_i32(std::vector<std::uint8_t>& out, std::int32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v);
void put_f64(std::vector<std::uint8_t>& out, double v);

bool get_u8(std::span<const std::uint8_t> buf, std::size_t& offset,
            std::uint8_t& v);
bool get_u32(std::span<const std::uint8_t> buf, std::size_t& offset,
             std::uint32_t& v);
bool get_i32(std::span<const std::uint8_t> buf, std::size_t& offset,
             std::int32_t& v);
bool get_u64(std::span<const std::uint8_t> buf, std::size_t& offset,
             std::uint64_t& v);
bool get_i64(std::span<const std::uint8_t> buf, std::size_t& offset,
             std::int64_t& v);
bool get_f64(std::span<const std::uint8_t> buf, std::size_t& offset,
             double& v);

// --- the CRC frame ---------------------------------------------------------

// Bytes of the [crc | seq] frame header.
inline constexpr std::size_t kCrcFrameHeaderBytes = 8;

// Starts a frame: appends the 8-byte [crc | seq] placeholder and returns
// the frame's start offset in `out`.  The caller appends the payload,
// then calls end_crc_frame.
std::size_t begin_crc_frame(std::vector<std::uint8_t>& out);

// Finishes the frame started at `frame_start`: writes `seq` and patches
// the checksum over everything after it (seq + payload).  Returns the
// total frame length.
std::size_t end_crc_frame(std::vector<std::uint8_t>& out,
                          std::size_t frame_start, std::uint32_t seq);

// Verifies the checksum of the `frame_len`-byte frame at buf[offset...]
// and extracts its sequence word.  Returns false — with a diagnostic in
// *error when non-null — on a frame that does not fit in the buffer, a
// frame shorter than its own header, or a checksum mismatch.
bool verify_crc_frame(std::span<const std::uint8_t> buf, std::size_t offset,
                      std::size_t frame_len, std::uint32_t& seq,
                      std::string* error = nullptr);

}  // namespace treesched
