// Solution: a selected set of demand instances, plus the feasibility
// checker used by every test and benchmark.  Feasibility (paper, Section 2
// and 6): at most one instance per demand, and on every edge the summed
// height of selected instances using that edge must not exceed the edge
// capacity.
#pragma once

#include <string>
#include <vector>

#include "common/prelude.hpp"
#include "model/problem.hpp"

namespace treesched {

struct Solution {
  std::vector<InstanceId> selected;

  Profit profit(const Problem& problem) const;
  bool contains(InstanceId i) const;
  std::size_t size() const { return selected.size(); }
};

// Result of a feasibility audit.  `violation` is a human-readable
// description of the first problem found (empty when feasible).
struct FeasibilityReport {
  bool feasible = true;
  std::string violation;
};

FeasibilityReport check_feasibility(const Problem& problem,
                                    const Solution& solution);

// Incremental feasibility tracker used by phase 2 of the framework and by
// the exact solvers: maintains per-edge load and per-demand usage.
class LoadTracker {
 public:
  explicit LoadTracker(const Problem& problem);

  // True iff adding `i` keeps the solution feasible.
  bool fits(InstanceId i) const;

  // Adds `i`; requires fits(i).
  void add(InstanceId i);

  // Removes a previously added instance.
  void remove(InstanceId i);

  double load(EdgeId global) const {
    return load_[static_cast<std::size_t>(global)];
  }
  bool demand_used(DemandId d) const {
    return demand_used_[static_cast<std::size_t>(d)];
  }
  void clear();

 private:
  const Problem* problem_;
  std::vector<double> load_;
  std::vector<char> demand_used_;
};

}  // namespace treesched
