// Problem: the throughput-maximization instance (paper, Section 2).
//
// A Problem bundles the shared vertex set, the r tree-networks, per-edge
// capacities (1.0 everywhere in the paper's uniform setting; arbitrary for
// the non-uniform 2013 extension), the demands with their profits/heights,
// per-processor access sets, and the expanded set of *demand instances*.
//
// Demand instances are the unit the algorithms operate on: one copy of a
// demand per accessible network (tree case), or one copy per (resource,
// start-slot) placement (line-with-windows case; see LineProblem::lower()).
// Every instance caches the global edge ids of its routing path, so the
// primal-dual engine, the conflict cliques and the feasibility checker all
// work off the same representation regardless of where the instance came
// from.
//
// Global edge ids concatenate the local edge ranges of the networks:
// global = offset(network) + local.  The dual variable vector beta is
// indexed by global edge id.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/prelude.hpp"
#include "graph/tree_network.hpp"

namespace treesched {

// A demand (u, v) with profit and bandwidth requirement (paper: height).
// Processor i owns demand i; the paper's processor set is implicit.
struct Demand {
  DemandId id = -1;
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;
  Profit profit = 0.0;
  Height height = 1.0;
};

// One schedulable copy of a demand on a concrete network, with its routing
// path cached as sorted global edge ids.
struct DemandInstance {
  InstanceId id = kNoInstance;
  DemandId demand = -1;
  NetworkId network = -1;
  VertexId u = kNoVertex;  // path endpoints within the network
  VertexId v = kNoVertex;
  Profit profit = 0.0;
  Height height = 1.0;
  std::vector<EdgeId> edges;  // global edge ids, sorted ascending
};

class Problem {
 public:
  // --- construction ------------------------------------------------------
  Problem(VertexId num_vertices, std::vector<TreeNetwork> networks);
  // Shares an immutable topology already held elsewhere — the online
  // service rebuilds a problem per event batch over a fixed topology,
  // and the networks (with their LCA/ancestor query tables) are by far
  // the heaviest part of a copy.
  Problem(VertexId num_vertices,
          std::shared_ptr<const std::vector<TreeNetwork>> networks);

  // Adds a demand; returns its id.  Access defaults to all networks until
  // set_access() is called.  Must precede finalize().
  DemandId add_demand(VertexId u, VertexId v, Profit profit,
                      Height height = 1.0);

  // Restricts the owning processor's access set (paper: Acc(P)).
  void set_access(DemandId d, std::vector<NetworkId> networks);

  // Non-uniform bandwidths: capacity of one edge / all edges.
  void set_capacity(NetworkId network, EdgeId local_edge, Capacity c);
  void set_uniform_capacity(Capacity c);

  // Adds an explicit instance (used by LineProblem::lower(); the tree case
  // relies on the automatic demand x access expansion in finalize()).
  // Endpoints are vertices of `network`; the path is computed here.
  InstanceId add_instance(DemandId d, NetworkId network, VertexId u,
                          VertexId v);

  // Freezes the problem: expands instances (if none were added manually),
  // builds the per-demand / per-edge indexes and the summary statistics.
  void finalize();
  bool finalized() const { return finalized_; }

  // Reopens a finalized problem for appending more demands (add_demand /
  // set_access / set_capacity), after which finalize() must run again.
  // Existing demand and instance ids, routing paths and access sets are
  // preserved; only the appended demands are expanded, so a
  // reopen-append-finalize cycle costs O(new instances + index rebuild)
  // instead of a full re-materialization.  This is the online scheduler's
  // per-batch path: between compactions its record set is append-only.
  void reopen();

  // --- topology ----------------------------------------------------------
  VertexId num_vertices() const { return n_; }
  int num_networks() const { return static_cast<int>(networks_->size()); }
  // The shared topology itself, for callers that construct sibling
  // problems over the same networks without copying them.
  const std::shared_ptr<const std::vector<TreeNetwork>>& shared_networks()
      const {
    return networks_;
  }
  const TreeNetwork& network(NetworkId q) const;
  EdgeId num_global_edges() const { return total_edges_; }
  EdgeId global_edge(NetworkId q, EdgeId local) const;
  std::pair<NetworkId, EdgeId> edge_owner(EdgeId global) const;
  Capacity capacity(EdgeId global) const;
  Capacity min_capacity() const { return cmin_; }
  Capacity max_capacity() const { return cmax_; }

  // --- demands & instances ------------------------------------------------
  int num_demands() const { return static_cast<int>(demands_.size()); }
  const Demand& demand(DemandId d) const;
  const std::vector<NetworkId>& access(DemandId d) const;
  int num_instances() const { return static_cast<int>(instances_.size()); }
  const DemandInstance& instance(InstanceId i) const;
  std::span<const DemandInstance> instances() const {
    return {instances_.data(), instances_.size()};
  }
  const std::vector<InstanceId>& instances_of_demand(DemandId d) const;
  // Instances whose path contains `global`, ascending by id.  Backed by a
  // CSR inverted index (one offsets array + one flat id array), so the
  // whole index is two contiguous allocations and a bucket lookup is two
  // loads — this is the hot lookup of the incremental engine's raise
  // propagation (every raised edge fans out to exactly this bucket).
  std::span<const InstanceId> instances_on_edge(EdgeId global) const;

  // --- predicates (paper, Section 2 notation) ------------------------------
  // d1 and d2 overlap: same network and paths share at least one edge.
  bool overlap(InstanceId a, InstanceId b) const;
  // d1 and d2 conflict: same demand, or overlapping.
  bool conflicting(InstanceId a, InstanceId b) const;
  // Two processors may communicate iff their access sets intersect.
  bool can_communicate(DemandId a, DemandId b) const;

  // --- summary statistics --------------------------------------------------
  Profit max_profit() const { return pmax_; }
  Profit min_profit() const { return pmin_; }
  Height min_height() const { return hmin_; }
  Height max_height() const { return hmax_; }
  bool unit_height() const { return unit_height_; }
  bool uniform_capacity() const { return cmin_ == cmax_; }
  int max_path_length() const { return lmax_; }
  int min_path_length() const { return lmin_; }
  Profit total_profit() const { return ptotal_; }

 private:
  void require_finalized() const { TS_REQUIRE(finalized_); }
  void require_mutable() const { TS_REQUIRE(!finalized_); }

  VertexId n_;
  std::shared_ptr<const std::vector<TreeNetwork>> networks_;
  std::vector<EdgeId> edge_offset_;  // per network; last element = total
  EdgeId total_edges_ = 0;
  std::vector<Capacity> capacity_;  // per global edge

  std::vector<Demand> demands_;
  std::vector<std::vector<NetworkId>> access_;  // sorted
  std::vector<DemandInstance> instances_;
  bool manual_instances_ = false;
  bool finalized_ = false;
  DemandId expanded_demands_ = 0;  // demands already expanded to instances

  std::vector<std::vector<InstanceId>> by_demand_;
  // CSR edge -> instances index: bucket of edge e is
  // edge_index_[edge_index_offset_[e] .. edge_index_offset_[e + 1]).
  std::vector<std::int64_t> edge_index_offset_;
  std::vector<InstanceId> edge_index_;

  Profit pmax_ = 0.0, pmin_ = 0.0, ptotal_ = 0.0;
  Height hmin_ = 1.0, hmax_ = 1.0;
  Capacity cmin_ = 1.0, cmax_ = 1.0;
  bool unit_height_ = true;
  int lmax_ = 0, lmin_ = 0;
};

}  // namespace treesched
