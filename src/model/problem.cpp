#include "model/problem.hpp"

#include <algorithm>

namespace treesched {

Problem::Problem(VertexId num_vertices, std::vector<TreeNetwork> networks)
    : Problem(num_vertices,
              std::make_shared<const std::vector<TreeNetwork>>(
                  std::move(networks))) {}

Problem::Problem(VertexId num_vertices,
                 std::shared_ptr<const std::vector<TreeNetwork>> networks)
    : n_(num_vertices), networks_(std::move(networks)) {
  check_input(n_ >= 1, "problem needs at least one vertex");
  check_input(networks_ != nullptr && !networks_->empty(),
              "problem needs at least one network");
  edge_offset_.reserve(networks_->size() + 1);
  edge_offset_.push_back(0);
  for (const TreeNetwork& t : *networks_) {
    check_input(t.num_vertices() == n_,
                "all networks must be defined over the shared vertex set");
    edge_offset_.push_back(edge_offset_.back() + t.num_edges());
  }
  total_edges_ = edge_offset_.back();
  capacity_.assign(static_cast<std::size_t>(total_edges_), 1.0);
}

DemandId Problem::add_demand(VertexId u, VertexId v, Profit profit,
                             Height height) {
  require_mutable();
  check_input(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v,
              "demand endpoints out of range");
  check_input(profit > 0.0, "demand profit must be positive");
  check_input(height > 0.0 && height <= 1.0 + kEps,
              "demand height must lie in (0, 1]");
  const DemandId id = static_cast<DemandId>(demands_.size());
  demands_.push_back(Demand{id, u, v, profit, height});
  std::vector<NetworkId> all(networks_->size());
  for (std::size_t q = 0; q < networks_->size(); ++q)
    all[q] = static_cast<NetworkId>(q);
  access_.push_back(std::move(all));
  return id;
}

void Problem::set_access(DemandId d, std::vector<NetworkId> networks) {
  require_mutable();
  TS_REQUIRE(d >= 0 && d < num_demands());
  check_input(!networks.empty(), "access set must be non-empty");
  std::sort(networks.begin(), networks.end());
  networks.erase(std::unique(networks.begin(), networks.end()),
                 networks.end());
  for (NetworkId q : networks)
    check_input(q >= 0 && q < num_networks(), "access network out of range");
  access_[static_cast<std::size_t>(d)] = std::move(networks);
}

void Problem::set_capacity(NetworkId network, EdgeId local_edge, Capacity c) {
  require_mutable();
  check_input(c > 0.0, "edge capacity must be positive");
  capacity_[static_cast<std::size_t>(global_edge(network, local_edge))] = c;
}

void Problem::set_uniform_capacity(Capacity c) {
  require_mutable();
  check_input(c > 0.0, "edge capacity must be positive");
  std::fill(capacity_.begin(), capacity_.end(), c);
}

InstanceId Problem::add_instance(DemandId d, NetworkId network, VertexId u,
                                 VertexId v) {
  require_mutable();
  TS_REQUIRE(d >= 0 && d < num_demands());
  TS_REQUIRE(network >= 0 && network < num_networks());
  manual_instances_ = true;
  const Demand& dem = demands_[static_cast<std::size_t>(d)];
  DemandInstance inst;
  inst.id = static_cast<InstanceId>(instances_.size());
  inst.demand = d;
  inst.network = network;
  inst.u = u;
  inst.v = v;
  inst.profit = dem.profit;
  inst.height = dem.height;
  const EdgeId offset = edge_offset_[static_cast<std::size_t>(network)];
  for (EdgeId local :
       (*networks_)[static_cast<std::size_t>(network)].path_edges(u, v))
    inst.edges.push_back(offset + local);
  std::sort(inst.edges.begin(), inst.edges.end());
  check_input(!inst.edges.empty(), "instance path must contain an edge");
  instances_.push_back(std::move(inst));
  return instances_.back().id;
}

void Problem::finalize() {
  require_mutable();
  check_input(num_demands() > 0, "problem needs at least one demand");

  if (!manual_instances_) {
    // Default expansion: one instance per (demand, accessible network),
    // routed along the unique tree path (paper, Section 2 reformulation).
    // Demands expanded by an earlier finalize() keep their instances;
    // only the ones appended since the last reopen() are walked.
    for (DemandId d = expanded_demands_; d < num_demands(); ++d) {
      const Demand& dem = demands_[static_cast<std::size_t>(d)];
      for (NetworkId q : access_[static_cast<std::size_t>(dem.id)]) {
        DemandInstance inst;
        inst.id = static_cast<InstanceId>(instances_.size());
        inst.demand = dem.id;
        inst.network = q;
        inst.u = dem.u;
        inst.v = dem.v;
        inst.profit = dem.profit;
        inst.height = dem.height;
        const EdgeId offset = edge_offset_[static_cast<std::size_t>(q)];
        for (EdgeId local :
             (*networks_)[static_cast<std::size_t>(q)].path_edges(dem.u, dem.v))
          inst.edges.push_back(offset + local);
        std::sort(inst.edges.begin(), inst.edges.end());
        instances_.push_back(std::move(inst));
      }
    }
  }
  expanded_demands_ = num_demands();
  check_input(!instances_.empty(), "problem has no demand instances");

  by_demand_.assign(static_cast<std::size_t>(num_demands()), {});
  for (const DemandInstance& inst : instances_) {
    by_demand_[static_cast<std::size_t>(inst.demand)].push_back(inst.id);
  }

  // CSR edge -> instances index, built by counting sort: one pass counts
  // bucket sizes, the prefix sum lays out the flat array, one pass fills
  // it.  Instances are visited in ascending id, so every bucket comes out
  // id-sorted.
  edge_index_offset_.assign(static_cast<std::size_t>(total_edges_) + 1, 0);
  for (const DemandInstance& inst : instances_) {
    for (EdgeId e : inst.edges) ++edge_index_offset_[static_cast<std::size_t>(e) + 1];
  }
  for (std::size_t e = 1; e < edge_index_offset_.size(); ++e)
    edge_index_offset_[e] += edge_index_offset_[e - 1];
  edge_index_.resize(static_cast<std::size_t>(edge_index_offset_.back()));
  std::vector<std::int64_t> cursor(edge_index_offset_.begin(),
                                   edge_index_offset_.end() - 1);
  for (const DemandInstance& inst : instances_) {
    for (EdgeId e : inst.edges)
      edge_index_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e)]++)] =
          inst.id;
  }

  pmax_ = pmin_ = demands_.front().profit;
  hmin_ = hmax_ = demands_.front().height;
  ptotal_ = 0.0;
  for (const Demand& dem : demands_) {
    pmax_ = std::max(pmax_, dem.profit);
    pmin_ = std::min(pmin_, dem.profit);
    hmin_ = std::min(hmin_, dem.height);
    hmax_ = std::max(hmax_, dem.height);
    ptotal_ += dem.profit;
  }
  unit_height_ = hmin_ >= 1.0 - kEps;
  cmin_ = cmax_ = capacity_.front();
  for (Capacity c : capacity_) {
    cmin_ = std::min(cmin_, c);
    cmax_ = std::max(cmax_, c);
  }
  lmax_ = lmin_ = static_cast<int>(instances_.front().edges.size());
  for (const DemandInstance& inst : instances_) {
    lmax_ = std::max(lmax_, static_cast<int>(inst.edges.size()));
    lmin_ = std::min(lmin_, static_cast<int>(inst.edges.size()));
  }
  finalized_ = true;
}

void Problem::reopen() {
  require_finalized();
  finalized_ = false;
}

const TreeNetwork& Problem::network(NetworkId q) const {
  TS_REQUIRE(q >= 0 && q < num_networks());
  return (*networks_)[static_cast<std::size_t>(q)];
}

EdgeId Problem::global_edge(NetworkId q, EdgeId local) const {
  TS_REQUIRE(q >= 0 && q < num_networks());
  TS_REQUIRE(local >= 0 &&
             local < (*networks_)[static_cast<std::size_t>(q)].num_edges());
  return edge_offset_[static_cast<std::size_t>(q)] + local;
}

std::pair<NetworkId, EdgeId> Problem::edge_owner(EdgeId global) const {
  TS_REQUIRE(global >= 0 && global < total_edges_);
  const auto it =
      std::upper_bound(edge_offset_.begin(), edge_offset_.end(), global);
  const auto q = static_cast<NetworkId>(it - edge_offset_.begin() - 1);
  return {q, global - edge_offset_[static_cast<std::size_t>(q)]};
}

Capacity Problem::capacity(EdgeId global) const {
  TS_REQUIRE(global >= 0 && global < total_edges_);
  return capacity_[static_cast<std::size_t>(global)];
}

const Demand& Problem::demand(DemandId d) const {
  TS_REQUIRE(d >= 0 && d < num_demands());
  return demands_[static_cast<std::size_t>(d)];
}

const std::vector<NetworkId>& Problem::access(DemandId d) const {
  TS_REQUIRE(d >= 0 && d < num_demands());
  return access_[static_cast<std::size_t>(d)];
}

const DemandInstance& Problem::instance(InstanceId i) const {
  TS_REQUIRE(i >= 0 && i < num_instances());
  return instances_[static_cast<std::size_t>(i)];
}

const std::vector<InstanceId>& Problem::instances_of_demand(DemandId d) const {
  require_finalized();
  TS_REQUIRE(d >= 0 && d < num_demands());
  return by_demand_[static_cast<std::size_t>(d)];
}

std::span<const InstanceId> Problem::instances_on_edge(EdgeId global) const {
  require_finalized();
  TS_REQUIRE(global >= 0 && global < total_edges_);
  const auto lo = static_cast<std::size_t>(
      edge_index_offset_[static_cast<std::size_t>(global)]);
  const auto hi = static_cast<std::size_t>(
      edge_index_offset_[static_cast<std::size_t>(global) + 1]);
  return {edge_index_.data() + lo, hi - lo};
}

bool Problem::overlap(InstanceId a, InstanceId b) const {
  const DemandInstance& x = instance(a);
  const DemandInstance& y = instance(b);
  if (x.network != y.network) return false;
  // Sorted-merge intersection test.
  auto i = x.edges.begin();
  auto j = y.edges.begin();
  while (i != x.edges.end() && j != y.edges.end()) {
    if (*i == *j) return true;
    if (*i < *j)
      ++i;
    else
      ++j;
  }
  return false;
}

bool Problem::conflicting(InstanceId a, InstanceId b) const {
  const DemandInstance& x = instance(a);
  const DemandInstance& y = instance(b);
  if (x.demand == y.demand && a != b) return true;
  return overlap(a, b);
}

bool Problem::can_communicate(DemandId a, DemandId b) const {
  const auto& sa = access(a);
  const auto& sb = access(b);
  auto i = sa.begin();
  auto j = sb.begin();
  while (i != sa.end() && j != sb.end()) {
    if (*i == *j) return true;
    if (*i < *j)
      ++i;
    else
      ++j;
  }
  return false;
}

}  // namespace treesched
