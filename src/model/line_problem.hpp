// LineProblem: the line-networks-with-windows formulation (paper, Sections
// 1 and 7).  The timeline is divided into `num_slots` discrete timeslots
// 0..num_slots-1; each of the r resources offers the whole timeline; a
// demand specifies a window [release, deadline], a processing time rho, a
// profit and a height, and may run on any accessible resource, occupying
// rho *contiguous* slots inside its window.
//
// lower() reduces this to the tree formulation (paper, Section 7: "the
// time-line can be viewed as a tree-network with n+1 vertices"): each
// resource becomes a path network whose local edge i *is* timeslot i, and
// each feasible (resource, start) placement becomes an explicit demand
// instance.
#pragma once

#include <vector>

#include "common/prelude.hpp"
#include "model/problem.hpp"

namespace treesched {

struct LineDemand {
  DemandId id = -1;
  int release = 0;    // first admissible slot
  int deadline = 0;   // last admissible slot (inclusive)
  int proc_time = 1;  // number of contiguous slots required
  Profit profit = 0.0;
  Height height = 1.0;
};

class LineProblem {
 public:
  LineProblem(int num_slots, int num_resources);

  // Adds a demand; access defaults to all resources.
  DemandId add_demand(int release, int deadline, int proc_time, Profit profit,
                      Height height = 1.0);
  void set_access(DemandId d, std::vector<NetworkId> resources);

  int num_slots() const { return num_slots_; }
  int num_resources() const { return num_resources_; }
  int num_demands() const { return static_cast<int>(demands_.size()); }
  const LineDemand& demand(DemandId d) const;
  const std::vector<NetworkId>& access(DemandId d) const;

  // Number of admissible start slots of a demand within its window.
  int num_starts(DemandId d) const;

  // Builds the equivalent tree Problem.  Every feasible placement of every
  // demand becomes one instance whose path covers slots
  // [start, start+rho-1] of the chosen resource.  The result is finalized.
  Problem lower() const;

 private:
  int num_slots_;
  int num_resources_;
  std::vector<LineDemand> demands_;
  std::vector<std::vector<NetworkId>> access_;
};

}  // namespace treesched
