#include "model/solution.hpp"

#include <algorithm>
#include <sstream>

namespace treesched {

Profit Solution::profit(const Problem& problem) const {
  Profit total = 0.0;
  for (InstanceId i : selected) total += problem.instance(i).profit;
  return total;
}

bool Solution::contains(InstanceId i) const {
  return std::find(selected.begin(), selected.end(), i) != selected.end();
}

FeasibilityReport check_feasibility(const Problem& problem,
                                    const Solution& solution) {
  FeasibilityReport report;
  std::vector<char> demand_used(static_cast<std::size_t>(problem.num_demands()),
                                0);
  std::vector<double> load(
      static_cast<std::size_t>(problem.num_global_edges()), 0.0);
  std::vector<char> seen(static_cast<std::size_t>(problem.num_instances()), 0);

  for (InstanceId i : solution.selected) {
    if (i < 0 || i >= problem.num_instances()) {
      report.feasible = false;
      report.violation = "instance id out of range";
      return report;
    }
    if (seen[static_cast<std::size_t>(i)]) {
      report.feasible = false;
      report.violation = "instance selected twice";
      return report;
    }
    seen[static_cast<std::size_t>(i)] = 1;
    const DemandInstance& inst = problem.instance(i);
    if (demand_used[static_cast<std::size_t>(inst.demand)]) {
      std::ostringstream os;
      os << "demand " << inst.demand << " scheduled more than once";
      report.feasible = false;
      report.violation = os.str();
      return report;
    }
    demand_used[static_cast<std::size_t>(inst.demand)] = 1;
    for (EdgeId e : inst.edges) load[static_cast<std::size_t>(e)] += inst.height;
  }
  for (EdgeId e = 0; e < problem.num_global_edges(); ++e) {
    if (load[static_cast<std::size_t>(e)] > problem.capacity(e) + kEps) {
      std::ostringstream os;
      const auto [q, local] = problem.edge_owner(e);
      os << "edge (network " << q << ", edge " << local << ") overloaded: "
         << load[static_cast<std::size_t>(e)] << " > " << problem.capacity(e);
      report.feasible = false;
      report.violation = os.str();
      return report;
    }
  }
  return report;
}

LoadTracker::LoadTracker(const Problem& problem)
    : problem_(&problem),
      load_(static_cast<std::size_t>(problem.num_global_edges()), 0.0),
      demand_used_(static_cast<std::size_t>(problem.num_demands()), 0) {}

bool LoadTracker::fits(InstanceId i) const {
  const DemandInstance& inst = problem_->instance(i);
  if (demand_used_[static_cast<std::size_t>(inst.demand)]) return false;
  for (EdgeId e : inst.edges) {
    if (load_[static_cast<std::size_t>(e)] + inst.height >
        problem_->capacity(e) + kEps)
      return false;
  }
  return true;
}

void LoadTracker::add(InstanceId i) {
  TS_DCHECK(fits(i));
  const DemandInstance& inst = problem_->instance(i);
  demand_used_[static_cast<std::size_t>(inst.demand)] = 1;
  for (EdgeId e : inst.edges) load_[static_cast<std::size_t>(e)] += inst.height;
}

void LoadTracker::remove(InstanceId i) {
  const DemandInstance& inst = problem_->instance(i);
  TS_REQUIRE(demand_used_[static_cast<std::size_t>(inst.demand)]);
  demand_used_[static_cast<std::size_t>(inst.demand)] = 0;
  for (EdgeId e : inst.edges) load_[static_cast<std::size_t>(e)] -= inst.height;
}

void LoadTracker::clear() {
  std::fill(load_.begin(), load_.end(), 0.0);
  std::fill(demand_used_.begin(), demand_used_.end(), 0);
}

}  // namespace treesched
