#include "model/line_problem.hpp"

#include <algorithm>

namespace treesched {

LineProblem::LineProblem(int num_slots, int num_resources)
    : num_slots_(num_slots), num_resources_(num_resources) {
  check_input(num_slots_ >= 1, "line problem needs at least one timeslot");
  check_input(num_resources_ >= 1, "line problem needs at least one resource");
}

DemandId LineProblem::add_demand(int release, int deadline, int proc_time,
                                 Profit profit, Height height) {
  check_input(release >= 0 && deadline < num_slots_ && release <= deadline,
              "window [release, deadline] out of range");
  check_input(proc_time >= 1 && proc_time <= deadline - release + 1,
              "processing time must fit inside the window");
  check_input(profit > 0.0, "profit must be positive");
  check_input(height > 0.0 && height <= 1.0 + kEps,
              "height must lie in (0, 1]");
  const DemandId id = static_cast<DemandId>(demands_.size());
  demands_.push_back(LineDemand{id, release, deadline, proc_time, profit,
                                height});
  std::vector<NetworkId> all(static_cast<std::size_t>(num_resources_));
  for (int q = 0; q < num_resources_; ++q)
    all[static_cast<std::size_t>(q)] = q;
  access_.push_back(std::move(all));
  return id;
}

void LineProblem::set_access(DemandId d, std::vector<NetworkId> resources) {
  TS_REQUIRE(d >= 0 && d < num_demands());
  check_input(!resources.empty(), "access set must be non-empty");
  std::sort(resources.begin(), resources.end());
  resources.erase(std::unique(resources.begin(), resources.end()),
                  resources.end());
  for (NetworkId q : resources)
    check_input(q >= 0 && q < num_resources_, "resource out of range");
  access_[static_cast<std::size_t>(d)] = std::move(resources);
}

const LineDemand& LineProblem::demand(DemandId d) const {
  TS_REQUIRE(d >= 0 && d < num_demands());
  return demands_[static_cast<std::size_t>(d)];
}

const std::vector<NetworkId>& LineProblem::access(DemandId d) const {
  TS_REQUIRE(d >= 0 && d < num_demands());
  return access_[static_cast<std::size_t>(d)];
}

int LineProblem::num_starts(DemandId d) const {
  const LineDemand& ld = demand(d);
  return ld.deadline - ld.proc_time - ld.release + 2;
}

Problem LineProblem::lower() const {
  check_input(num_demands() > 0, "line problem has no demands");
  std::vector<TreeNetwork> networks;
  networks.reserve(static_cast<std::size_t>(num_resources_));
  for (int q = 0; q < num_resources_; ++q)
    networks.push_back(TreeNetwork::line(num_slots_ + 1));
  Problem problem(num_slots_ + 1, std::move(networks));

  for (const LineDemand& ld : demands_) {
    // Endpoints recorded on the Demand are the earliest placement; the
    // instances carry the actual placements.
    const DemandId pd = problem.add_demand(ld.release,
                                           ld.release + ld.proc_time,
                                           ld.profit, ld.height);
    TS_REQUIRE(pd == ld.id);
    problem.set_access(pd, access_[static_cast<std::size_t>(ld.id)]);
    for (NetworkId q : access_[static_cast<std::size_t>(ld.id)]) {
      for (int s = ld.release; s + ld.proc_time - 1 <= ld.deadline; ++s) {
        // Placement occupying slots [s, s+rho-1] == path between vertices
        // s and s+rho of resource q.
        problem.add_instance(pd, q, s, s + ld.proc_time);
      }
    }
  }
  problem.finalize();
  return problem;
}

}  // namespace treesched
