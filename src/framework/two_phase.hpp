// The two-phase primal-dual engine (paper, Sections 3.2, 5 and 6).
//
// Phase 1 processes the layered-decomposition groups in ascending order
// (epochs).  Each epoch runs one or more *stages*; stage j targets the
// satisfaction level (1 - xi^j).  A stage repeats *steps*: compute a
// maximal independent set I of the still-unsatisfied group members in the
// conflict graph, raise every d in I tightly, and push I onto the stack.
// Phase 2 pops the stack in reverse and keeps every instance that still
// fits (true capacity feasibility, so the output is feasible for every
// height/capacity profile by construction).
//
// Two stage schedules are supported:
//  - kMultiStage (this paper): b = ceil(log_xi eps) stages per epoch,
//    final slackness lambda = 1 - eps;
//  - kSingleStagePS (Panconesi-Sozio baseline, Remark after Thm 5.3): one
//    stage per epoch with permanent retirement at threshold 1/(5+eps),
//    i.e. lambda = 1/(5+eps).
//
// The engine is deliberately independent of *how* the MIS is computed: it
// takes a MisOracle.  The default greedy oracle models the sequential
// algorithms; dist/ supplies the round-counting Luby oracle for the
// distributed ones.
//
// Two phase-1 implementations share this interface (EngineImpl):
//
//  - kIncremental (default): per-instance DualShard stores — the same
//    per-processor sharding the message-level protocol uses — with a
//    cached LHS per instance, invalidated through the Problem's CSR
//    edge->instances index for exactly the instances whose paths
//    intersect a raised edge, and a per-stage *unsatisfied frontier*
//    that shrinks monotonically (raises never decrease an LHS within a
//    stage), so a step tests only the previous frontier instead of
//    rescanning the group.  With SolverConfig::threads > 1, each
//    epoch's conflict-disjoint components run on a worker pool and are
//    merged deterministically.
//  - kCentralReference: the pre-incremental engine (central DualState,
//    full member rescan with a from-scratch beta walk every step), kept
//    as the parity oracle.  Both implementations are bit-identical on
//    all outputs (tests/test_engine_parity.cpp).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/prelude.hpp"
#include "decomp/layered.hpp"
#include "framework/component_forest.hpp"
#include "framework/dual_shard.hpp"
#include "framework/dual_state.hpp"
#include "framework/raise_rule.hpp"
#include "model/problem.hpp"
#include "model/solution.hpp"

namespace treesched {

struct MisResult {
  std::vector<InstanceId> selected;
  int rounds = 1;  // communication rounds consumed by this MIS computation
  // Adaptive budget retries this computation needed (0 for oracles
  // without a retry notion).  Extra rounds the retries consumed are
  // already included in `rounds`.
  int retries = 0;
};

// Stream key of one parallel-epoch component: the epoch (group) and the
// component's first member in rank order.  One derivation shared by both
// component decompositions (the persistent ComponentForest and the
// legacy per-epoch recompute), so MisOracle::component_clone sees the
// same key — and randomized oracles the same per-component stream — no
// matter which path produced the partition.
inline std::uint64_t component_stream_key(int group, InstanceId first_member) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(group))
          << 32) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(first_member));
}

// Maximal independent set oracle over the instance conflict graph
// (conflicting = same demand or overlapping paths; paper, Section 2).
class MisOracle {
 public:
  virtual ~MisOracle() = default;
  virtual MisResult run(std::span<const InstanceId> candidates) = 0;

  // Parallel epoch execution (SolverConfig::threads > 1) runs each
  // conflict-disjoint component of a group on its own worker, and each
  // worker needs a private oracle: component_clone returns one dedicated
  // to the component identified by `key` (stable across runs: derived
  // from the epoch and the component's first member — see
  // component_stream_key below).  Deterministic oracles return an
  // equivalent oracle — GreedyMis's clone reproduces the single-oracle
  // run bit for bit.  Randomized oracles derive an independent stream
  // from (seed, key), which keeps the run deterministic for any thread
  // count but deliberately distinct from the serial single-stream run.
  // Oracles that cannot run component-local leave
  // supports_component_clone() false; the engine then falls back to
  // serial single-oracle execution.
  //
  // Concurrency contract: the engine's forest path clones *lazily* from
  // worker threads (a component only receives an oracle once its first
  // frontier scan finds an unsatisfied member — fully satisfied
  // components never pay for one), so component_clone must be safe to
  // call concurrently on one parent oracle and must not mutate the
  // parent (in particular it must not consume the parent's random
  // stream — derive clone streams from (seed, key) instead, as LubyMis
  // does).  All in-repo oracles satisfy this.
  virtual bool supports_component_clone() const { return false; }
  virtual std::unique_ptr<MisOracle> component_clone(std::uint64_t key) {
    (void)key;
    return nullptr;
  }
};

// Deterministic greedy MIS in instance-id order; 1 round (models local
// sequential selection; used by the sequential algorithms and as a fast
// stand-in when round counting is irrelevant).
class GreedyMis : public MisOracle {
 public:
  explicit GreedyMis(const Problem& problem);
  MisResult run(std::span<const InstanceId> candidates) override;
  bool supports_component_clone() const override { return true; }
  std::unique_ptr<MisOracle> component_clone(std::uint64_t key) override {
    (void)key;
    return std::make_unique<GreedyMis>(*problem_);
  }

 private:
  const Problem* problem_;
  std::vector<int> edge_stamp_;
  std::vector<int> demand_stamp_;
  int stamp_ = 0;
};

// kMultiStage: this paper's xi-boosting schedule, lambda = 1-eps.
// kSingleStagePS: Panconesi-Sozio baseline, lambda = 1/(5+eps).
// kExact: raise every instance until its constraint is *tight* (lambda=1);
// this is the sequential regime (Appendix A / Bar-Noy) — steps per group
// are no longer polylog-bounded, matching the paper's remark that the
// sequential round complexity can reach n.
enum class StageMode { kMultiStage, kSingleStagePS, kExact };

// Which phase-1 implementation runs.  kIncremental is the production
// engine: per-instance DualShard stores (every satisfaction test is a
// local O(1) read of a cached LHS), a CSR-driven raise propagation that
// touches only the instances whose paths intersect the raised edges, and
// a per-stage unsatisfied frontier that shrinks monotonically — no full
// member rescans.  kCentralReference preserves the pre-incremental
// engine (central DualState, full member rescan + from-scratch beta walk
// every step) as the parity oracle: both paths are bit-identical on
// every output, which tests/test_engine_parity.cpp enforces with exact
// comparisons.
enum class EngineImpl { kIncremental, kCentralReference };

struct SolverConfig {
  double epsilon = 0.1;  // target slackness 1-eps (multi-stage mode)
  RaiseRuleKind rule = RaiseRuleKind::kUnit;
  StageMode stage_mode = StageMode::kMultiStage;
  // Appendix-A single-network refinement: skip the alpha raise (sound
  // only when every demand has a single instance).
  bool raise_alpha = true;
  // DESIGN.md Sec. 6 capacity-aware increments (true) vs the paper's
  // uniform increments applied verbatim (false; bench_t5 ablation arm).
  bool capacity_aware_raises = true;
  // Lockstep schedule (paper, Section 5 "Distributed Implementation"):
  // processors cannot test global emptiness of U, so every stage runs a
  // *fixed* budget of ceil(1 + log2(pmax/pmin)) + lockstep_slack steps,
  // idle steps costing 3 rounds each (one Luby iteration + propagation).
  // Lemma 5.1 guarantees the budget suffices; stats.lockstep_ok reports
  // whether it did.
  bool lockstep = false;
  int lockstep_slack = 2;
  // Retain the raise stack in SolveResult (for the phase-2 ablations and
  // the online warm-start caches, which also get the per-row
  // (group, stage, step) tags — see SolveResult::stack_tags).
  bool keep_stack = false;
  // Export every active instance's final LHS (the per-shard dual state
  // the online scheduler caches per conflict component) in
  // SolveResult::final_lhs.
  bool keep_lhs = false;
  // xi override for ablations; 0 = derive from the rule, Delta and h_min.
  double xi_override = 0.0;
  // Runtime verification of the interference property (quadratic; tests).
  bool check_interference = false;
  // Count per-raise notification messages (distributed accounting).
  bool count_messages = false;
  // Hard safety cap on steps per stage.
  int max_steps_per_stage = 200000;
  // Phase-1 implementation (see EngineImpl above).
  EngineImpl engine = EngineImpl::kIncremental;
  // Component decomposition of the parallel epoch path: true derives
  // each epoch's conflict-disjoint components from the persistent
  // ComponentForest (built once per run, filtered by the unsatisfied
  // frontier); false re-runs the legacy per-epoch union-find
  // (split_components) over the clique chains.  Both produce identical
  // partitions — tests/test_component_forest.cpp compares the runs
  // with == — the forest is just O(sum path) cheaper per epoch.
  bool use_component_forest = true;
  // Worker threads for the incremental engine's parallel epoch execution:
  // each epoch's group is partitioned into conflict-disjoint components
  // (no raise in one component can touch the LHS of another's members —
  // the per-processor shards are the unit of parallelism), components run
  // on a pool of this many workers, and the results are merged in fixed
  // component order, so any threads >= 2 value yields the same output.
  // The number of threads actually *spawned* is additionally capped at
  // std::thread::hardware_concurrency() — oversubscribing a CPU-bound
  // lock-free pool only adds scheduler overhead, and the output is
  // independent of the worker count by construction, so the cap cannot
  // change any result.  Requires an oracle that supports
  // component_clone(); otherwise, and with threads <= 1, epochs run
  // serially.
  int threads = 1;
};

struct SolveStats {
  int epochs = 0;          // non-empty groups processed
  int stages = 0;          // stages actually run
  int steps = 0;           // framework iterations (MIS + raise)
  int max_steps_in_stage = 0;
  std::int64_t raises = 0;          // total instances raised
  std::int64_t mis_rounds = 0;      // rounds consumed by MIS computations
  std::int64_t comm_rounds = 0;     // mis_rounds + 1 raise-notify per step
  std::int64_t messages = 0;        // raise notifications (if counted)
  std::int64_t message_bytes = 0;   // messages * per-demand record size
  double dual_objective = 0.0;      // sum alpha + sum c(e) beta(e)
  double lambda_observed = 0.0;     // min LHS/p over active instances
  double dual_upper_bound = 0.0;    // dual_objective / min(1, lambda)
  int delta = 0;                    // max |pi(d)| over active instances
  double xi = 0.0;
  int stages_per_epoch = 0;
  double profit = 0.0;
  bool interference_ok = true;
  // True iff no stage ended with unsatisfied instances left behind —
  // Lemma 5.1's prediction in lockstep mode; in adaptive mode a stage
  // can only end short when the MIS oracle fails (see mis_ok).
  bool lockstep_ok = true;
  // True iff every MIS computation returned a non-empty set for a
  // non-empty candidate pool.  A budgeted randomized oracle may fail
  // w.h.p.-rarely; the engine records an idle step instead of aborting.
  bool mis_ok = true;
  // How many whole steps spent their MIS budget without deciding anyone
  // (the silent degrade behind mis_ok = false, surfaced so the CLI and
  // benches can warn).  Counted only when the *entire* step's selection
  // is empty — identically on the central, serial, and parallel-merge
  // paths, so the parity suites compare it with ==.
  std::int64_t mis_failed_steps = 0;
  // Adaptive MIS budget retries (MisResult::retries summed over steps).
  // On the parallel path a step's retry count is the max over its
  // components — a whole-frontier serial run enters attempt a exactly
  // when its worst component does, because the Luby dynamics decompose
  // across conflict-disjoint components — so this, too, compares with
  // == across central/serial/parallel.
  std::int64_t mis_retries = 0;

  // Wall-clock breakdown of the parallel epoch path (all zero on the
  // serial and central paths).  Timing, not semantics: every field the
  // parity suites compare with == is unaffected.
  //   epoch_setup_ns   per-epoch component derivation: what the epoch
  //                    loop pays serially before workers start — forest
  //                    span slicing, or the legacy per-epoch union-find
  //                    + eager oracle clones when use_component_forest
  //                    is off.  NOTE the asymmetry: on the forest path
  //                    the frontier filtering and the (lazy) clones
  //                    happen inside run_component on the workers, so
  //                    they are deliberately NOT in this counter —
  //                    bench_f13 reports what that means for the
  //                    comparison;
  //   forest_build_ns  the one-time ComponentForest build of the run;
  //   merge_ns         the deterministic merge — chronological replay,
  //                    bookkeeping and the (parallel) deferred
  //                    out-of-group propagation.
  std::int64_t epoch_setup_ns = 0;
  std::int64_t forest_build_ns = 0;
  std::int64_t merge_ns = 0;

  // Merge for combined (wide + narrow) runs: counts add, bounds add,
  // lambda takes the min (0.0 = unset on either side), flags AND.
  void merge(const SolveStats& other);
};

// Chronological address of one raise-stack row: the epoch (group), the
// 1-based stage within it and the 0-based step within the stage.  Because
// conflict-disjoint components advance in lockstep through the shared
// step grid, a component's rows keep the same tags no matter which other
// components run alongside it — the invariant the online scheduler's
// warm-start cache splices rows by.
struct StackTag {
  int group = 0;
  int stage = 0;
  int step = 0;
  friend bool operator==(const StackTag&, const StackTag&) = default;
  friend auto operator<=>(const StackTag&, const StackTag&) = default;
};

struct SolveResult {
  Solution solution;
  SolveStats stats;
  // The raise stack (one entry per step, in raise order); populated only
  // when SolverConfig::keep_stack is set.
  std::vector<std::vector<InstanceId>> raise_stack;
  // Per-row (group, stage, step) tags, parallel to raise_stack; populated
  // only when SolverConfig::keep_stack is set.
  std::vector<StackTag> stack_tags;
  // Final LHS of every instance's dual constraint (0.0 for inactive
  // instances), indexed by instance id; populated only when
  // SolverConfig::keep_lhs is set.
  std::vector<double> final_lhs;
};

struct StageParams;

class TwoPhaseEngine {
 public:
  // `plan` must cover every instance of `problem`.  `oracle` may be null
  // (defaults to GreedyMis).  Neither is copied; both must outlive the
  // engine.
  TwoPhaseEngine(const Problem& problem, const LayeredPlan& plan,
                 SolverConfig config, MisOracle* oracle = nullptr);

  // Restrict phase 1 to a subset of instances (wide/narrow split).  Phase
  // 2 still enforces feasibility against the full capacity profile.
  void restrict_to(std::vector<InstanceId> active);

  SolveResult run();

  // Warm-start entry point (the online scheduler's incremental re-solve):
  // runs with the stage schedule pinned to `pinned` instead of deriving it
  // from the restricted active mask.  Restricting a run to the conflict
  // components an event batch touched only reproduces the full solve's
  // per-component dynamics when every run uses the *globally* derived
  // Delta/h_min/xi — the restricted mask alone would derive a different
  // schedule and silently break the exact (==) warm-vs-cold parity.
  SolveResult run_warm(const StageParams& pinned);

 private:
  // The stage schedule shared by both engine implementations, derived
  // once per run from the active instances.
  struct StageSchedule {
    double xi = 0.0;
    int stages_per_epoch = 1;
    double fixed_threshold = 1.0;  // kExact / kSingleStagePS target
    int lockstep_budget = 0;
    bool any_active = false;
  };
  // One conflict-disjoint component of an epoch's group, plus the
  // decision log its worker records for the deterministic merge.  The
  // member lists are spans (into the ComponentForest's flat storage, or
  // into the owned_* vectors the legacy recompute fills), and the log is
  // flat — stage s covers steps [stage_begin[s], stage_begin[s+1]) of
  // step_rounds, step t's raises are entries
  // [step_begin[t], step_begin[t+1]) of (rank_log, delta_log) — so a
  // pooled component is reused across epochs without reallocating.
  struct EpochComponent {
    std::span<const int> ranks;        // member ranks, ascending
    std::span<const InstanceId> ids;   // members[rank], same order
    // The oracle is cloned lazily on the forest path: run_component
    // clones on first need (a frontier scan that found an unsatisfied
    // member), so a fully satisfied component costs no clone.  The
    // legacy recompute path clones eagerly, as PR 3 did.
    std::uint64_t stream_key = 0;
    std::unique_ptr<MisOracle> oracle;
    std::vector<int> stage_begin;      // size stages + 1
    std::vector<int> step_begin;       // size total steps + 1
    std::vector<int> step_rounds;      // per step
    std::vector<int> step_retries;     // per step, parallel to step_rounds
    std::vector<int> rank_log;         // raised ranks, ascending per step
    std::vector<double> delta_log;     // parallel to rank_log
    bool mis_failed = false;    // oracle returned empty on a non-empty pool
    bool ended_short = false;   // stage ended with unsatisfied members left
    // Backing storage of the spans on the legacy (recompute) path.
    std::vector<int> owned_ranks;
    std::vector<InstanceId> owned_ids;
    int steps_in_stage(int stage_index) const {
      return stage_begin[static_cast<std::size_t>(stage_index) + 1] -
             stage_begin[static_cast<std::size_t>(stage_index)];
    }
    void reset_log(int stages) {
      stage_begin.clear();
      stage_begin.reserve(static_cast<std::size_t>(stages) + 1);
      stage_begin.push_back(0);
      step_begin.assign(1, 0);
      step_rounds.clear();
      step_retries.clear();
      rank_log.clear();
      delta_log.clear();
      mis_failed = false;
      ended_short = false;
    }
  };
  // Per-worker scratch of the parallel epoch path, reused across epochs
  // and components so the hot loop stops allocating.
  struct WorkerScratch {
    std::vector<InstanceId> unsat;
    std::vector<double> increments;
    std::vector<std::pair<int, double>> selected;  // (rank, delta)
  };
  enum class PropScope { kAll, kInGroup };

  bool is_active(InstanceId i) const {
    return active_mask_[static_cast<std::size_t>(i)] != 0;
  }
  StageSchedule prepare(SolveStats& stats) const;
  double stage_target(const StageSchedule& sched, int stage) const;
  // Common tail of both paths: the scaled-dual upper bound, phase 2, and
  // the optional stack handoff.
  void finish(SolveResult& result,
              std::vector<std::vector<InstanceId>>& stack);

  // Central-reference path.
  void run_central(const StageSchedule& sched, SolveResult& result);
  void raise(InstanceId i, DualState& dual, const RaiseRule& rule,
             SolveStats& stats, std::vector<InstanceId>& raised_order,
             std::vector<double>& increments);

  // Incremental path.
  void run_incremental(const StageSchedule& sched, SolveResult& result);
  void build_edge_positions();  // problem-static, built at construction
  void build_local_stores();    // per-run dual state reset
  double lhs_local(InstanceId i, double beta_coeff) {
    const auto k = static_cast<std::size_t>(i);
    if (!lhs_fresh_[k]) {
      lhs_cache_[k] = shards_[k].lhs_ordered(beta_coeff);
      lhs_fresh_[k] = 1;
    }
    return lhs_cache_[k];
  }
  bool unsatisfied_local(InstanceId i, const RaiseRule& rule, double target) {
    const DemandInstance& inst = problem_->instance(i);
    return lhs_local(i, rule.beta_coeff(inst)) <
           target * inst.profit - kEps * inst.profit;
  }
  void propagate_raise(InstanceId i, double delta,
                       std::span<const double> increments, PropScope scope,
                       int group);
  void bookkeep_raise(InstanceId i, double delta,
                      std::span<const double> increments, double& objective,
                      SolveStats& stats,
                      std::vector<InstanceId>& raised_order);
  // Component decomposition of one epoch, into comp_pool_[0..count).
  // split_components is the legacy per-epoch union-find;
  // derive_components slices the persistent forest — O(|members|) span
  // setup, no clique-chain walk.  The frontier filtering happens inside
  // run_component: a component whose scan never finds an unsatisfied
  // member runs zero steps and never even clones an oracle.
  int split_components(const std::vector<InstanceId>& members, int group);
  int derive_components(const std::vector<InstanceId>& members, int group);
  // Threads actually spawned for `work_items` units of parallel work:
  // SolverConfig::threads, clamped by the work available and by
  // hardware_concurrency (oversubscribing a CPU-bound lock-free pool
  // only adds scheduler overhead; outputs are worker-count-independent
  // by construction, so the clamp cannot change any result).  One
  // policy shared by the component pool and the deferred-propagation
  // pool.
  int clamp_workers(int work_items) const;
  void run_component(EpochComponent& comp, const RaiseRule& rule,
                     const StageSchedule& sched, int group,
                     WorkerScratch& scratch);
  void merge_components(int comp_count,
                        const std::vector<InstanceId>& members,
                        const RaiseRule& rule, const StageSchedule& sched,
                        int group, double& objective, SolveStats& stats,
                        std::vector<std::vector<InstanceId>>& stack,
                        std::vector<InstanceId>& raised_order);
  // Applies the epoch's deferred out-of-group raises (the merge log) to
  // the shards of instances in [lo, hi).  Each target shard receives its
  // increments in chronological order — the same order the serial replay
  // applies them in — so partitioning [0, n) across workers reproduces
  // the serial floating-point state bit for bit.
  void apply_deferred_raises(int group, InstanceId lo, InstanceId hi);

  void count_notifications(InstanceId i, SolveStats& stats);

  const Problem* problem_;
  const LayeredPlan* plan_;
  SolverConfig config_;
  MisOracle* oracle_;
  std::unique_ptr<GreedyMis> default_oracle_;
  std::vector<char> active_mask_;
  std::vector<int> demand_seen_stamp_;
  int notify_stamp_ = 0;
  // Set for the duration of run_warm(): prepare() uses these instead of
  // deriving the schedule from the restricted active mask.
  const StageParams* pinned_params_ = nullptr;
  // Per-row (group, stage, step) tags, recorded alongside every stack
  // push when keep_stack is set and handed to the result by finish().
  std::vector<StackTag> stack_tags_;

  // Incremental-engine state, rebuilt by every run(): per-instance dual
  // shards, the cached-LHS layer over them, and the per-(edge, instance)
  // path positions aligned with the Problem's CSR buckets.
  std::vector<DualShard> shards_;
  std::vector<double> lhs_cache_;
  std::vector<char> lhs_fresh_;
  std::vector<std::int64_t> edge_pos_offset_;
  std::vector<int> edge_pos_;
  // Component decomposition scratch (stamped, no per-epoch clearing).
  std::vector<int> comp_edge_stamp_, comp_edge_rank_;
  std::vector<int> comp_demand_stamp_, comp_demand_rank_;
  std::vector<int> rank_of_;
  int comp_stamp_ = 0;

  // Persistent conflict-component forest (use_component_forest): built
  // lazily on the first parallel run, invalidated by restrict_to().
  ComponentForest forest_;
  // Epoch arenas, reused across epochs: the component pool (flat logs
  // keep their capacity), per-worker scratch, and the merge's
  // chronological raise log with its per-raise increment slabs.
  std::vector<EpochComponent> comp_pool_;
  std::vector<WorkerScratch> worker_scratch_;
  std::vector<std::pair<int, double>> merge_row_;
  std::vector<InstanceId> merge_log_ids_;
  std::vector<double> merge_log_deltas_;
  std::vector<std::int64_t> merge_inc_begin_;
  std::vector<double> merge_inc_values_;
};

// Wide/narrow classification of the arbitrary-height case (paper,
// Section 6): wide instances (h > 1/2) run under the kUnit rule, the
// rest under kNarrow.  Shared by solve_height_split and the distributed
// solvers' ratio-bound derivation so the two can never disagree.
inline bool is_wide_instance(const DemandInstance& inst) {
  return inst.height > 0.5;
}

// The full Section 6 class partition in both the id-list and mask forms
// the split implementations consume.  One builder shared by the modeled
// solve_height_split, the message-level run_height_split_protocol and
// the parity suite, so the class boundary cannot diverge between the
// entry points the suite holds to exact equality.
struct HeightClasses {
  std::vector<InstanceId> wide_ids, narrow_ids;
  std::vector<char> wide_mask, narrow_mask;  // sized max(n, 1)
  bool has_wide() const { return !wide_ids.empty(); }
  bool has_narrow() const { return !narrow_ids.empty(); }
};
HeightClasses classify_wide_narrow(const Problem& problem);

// The fixed per-stage step budget of Lemma 5.1: profits double along
// kill chains (Claim 5.2), so 1 + slack + ceil(log2(pmax/pmin)) steps
// suffice.  Shared by the engine's lockstep mode and the message-level
// protocol so both verify the *same* budget.
int lockstep_step_budget(const Problem& problem, int slack);

// Final slackness lambda of a stage schedule: 1-eps for the multi-stage
// (and exact) schedules, 1/(5+eps) for the Panconesi-Sozio single-stage
// baseline.  One definition shared by the modeled schedulers, the
// non-uniform solvers and the message-level protocol wrappers, so their
// reported ratio bounds cannot disagree on the lambda they assume.
double target_lambda(StageMode mode, double epsilon);

// The multi-stage schedule parameters of a phase-1 run over `active`
// instances: observed Delta (max critical-set size), h_min, the decay
// base xi = RaiseRule::default_xi(rule, delta, h_min) and the stage
// count b = ceil(log_xi eps).  This is the one place the schedule is
// derived — the engine's prepare() and the message-level protocol's
// fixed schedule both call it, so the two can never run different
// stage targets for the same instance class (which would break the
// exact protocol-vs-engine parity the test suite enforces).
struct StageParams {
  bool any_active = false;
  int delta = 0;
  double h_min = 1.0;
  double xi = 0.0;
  int stages_per_epoch = 1;
};
StageParams derive_stage_params(const Problem& problem,
                                const LayeredPlan& plan,
                                const std::vector<char>& active_mask,
                                RaiseRuleKind rule, double epsilon,
                                double xi_override = 0.0);

// Reverse greedy pruning of the raise stack (phase 2 of the framework).
Solution prune_stack(const Problem& problem,
                     const std::vector<std::vector<InstanceId>>& stack);

// Per-network better-of combination of two sub-solutions (paper,
// Theorem 6.3): every network keeps whichever of the two carries more of
// its profit (ties to s1).  Sound for the wide/narrow split because
// every demand is entirely wide or entirely narrow, so the union cannot
// schedule a demand twice.  One arithmetic shared by the modeled
// solve_height_split and the message-level run_height_split_protocol —
// the protocol parity suite compares their outputs with ==.
Solution combine_better_of_per_network(const Problem& problem,
                                       const Solution& s1,
                                       const Solution& s2);

// Honest round charge of the per-network better-of combination: each
// network converge-casts the two per-network profit totals up its tree
// (max depth rounds), the root compares (1 round) and broadcasts the
// winner back down (max depth rounds); networks run concurrently, so
// the charge is 2 * max depth + 1 over all networks.  Zero when the
// problem has no edges to cast over.  Charged by the distributed
// arbitrary-height solvers (src/dist/scheduler.cpp) and by the
// message-level run_height_split_protocol whenever two passes were
// actually combined — the round-identity tests assert exactly this
// term.
std::int64_t better_of_convergecast_rounds(const Problem& problem);

// Ablation pruners (bench_f11): these do NOT carry the Lemma 3.1
// guarantee; they exist to measure what the reverse-stack order buys.
// Forward-stack pruning pops in *raise* order (earliest first) — the
// analysis breaks because a kept instance no longer dominates its
// predecessors' raise amounts.
Solution prune_stack_forward(const Problem& problem,
                             const std::vector<std::vector<InstanceId>>& stack);
// Profit-greedy over a candidate set, ignoring raise order entirely.
Solution prune_by_profit(const Problem& problem,
                         std::vector<InstanceId> candidates);

// Convenience wrappers -----------------------------------------------------

// Runs the engine on all instances with the given plan/config.
SolveResult solve_with_plan(const Problem& problem, const LayeredPlan& plan,
                            const SolverConfig& config,
                            MisOracle* oracle = nullptr);

// Arbitrary-height driver (paper, Section 6 "Overall Algorithm"): runs the
// unit rule on wide instances (h > 1/2) and the narrow rule on the rest,
// then combines by keeping, per network, the more profitable of the two
// per-network sub-solutions.  Stats are merged; the dual upper bounds add.
SolveResult solve_height_split(const Problem& problem, const LayeredPlan& plan,
                               const SolverConfig& config,
                               MisOracle* oracle = nullptr);

}  // namespace treesched
