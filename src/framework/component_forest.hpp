// Persistent conflict-component forest: the per-group connected
// components of the instance conflict graph, for every group of a
// layered plan at once.
//
// The incremental engine's parallel epoch execution partitions each
// epoch's group into conflict-disjoint components (no raise in one
// component can touch the LHS of another's members).  That partition
// depends only on static data — the Problem's paths/demands, the plan's
// group assignment and the active mask — never on the dual state, so
// recomputing it per epoch (PR 3's split_components: a fresh union-find
// over every per-edge clique chain, O(sum path) per epoch) repays work
// the problem structure already fixed.  This class builds the whole
// forest in ONE pass over the Problem's CSR edge->instances index
// (contiguous bucket walks instead of scattered per-member path walks)
// and stores it flat (two-level CSR: group -> components -> members),
// so an epoch's setup drops to slicing spans + cloning oracles.
//
// Determinism contract (what keeps forest-vs-recompute bit-exact, which
// tests/test_component_forest.cpp enforces with ==):
//  * components of a group are ordered by their smallest member *rank*
//    (rank = position among the group's active members in plan order) —
//    exactly the order split_components's min-root union-find emits;
//  * members within a component are in ascending rank;
//  * hence component_ids(g, c).front() is the same "first member" the
//    engine keys MisOracle::component_clone streams by
//    (component_stream_key in two_phase.hpp), so randomized oracles draw
//    identical per-component streams under either decomposition path.
//
// Lifecycle: build() once per (problem, plan, active_mask) combination;
// TwoPhaseEngine builds lazily on the first parallel run and invalidates
// on restrict_to().  Within a stage the unsatisfied frontier only
// shrinks, so components only ever split — the engine exploits that by
// *filtering* (skipping components with no unsatisfied member at the
// final stage target) rather than re-partitioning; the forest itself
// never needs updating mid-run.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/prelude.hpp"
#include "decomp/layered.hpp"
#include "model/problem.hpp"

namespace treesched {

class ComponentForest {
 public:
  ComponentForest() = default;

  // Builds the forest over the instances with active_mask[i] != 0.
  // active_mask is indexed by instance id and must cover the problem.
  void build(const Problem& problem, const LayeredPlan& plan,
             const std::vector<char>& active_mask);

  // Incrementally revises a built forest after an active-set delta:
  // `added` lists newly active instance ids (possibly beyond the
  // instance count the forest was built with — an online problem grows
  // by append), `removed` newly inactive ones.  Produces the identical
  // (==) forest a fresh build() over the new mask would, but only
  // groups with a delta are re-partitioned: components untouched by the
  // delta (no lost member, no edge/demand shared with an added
  // instance) are re-united by cheap chain unions and their member
  // spans sliced straight across; everything else is re-walked.  Falls
  // back to build() when nothing was ever built or the group count
  // changed.
  void update(const Problem& problem, const LayeredPlan& plan,
              const std::vector<char>& active_mask,
              std::span<const InstanceId> added,
              std::span<const InstanceId> removed);

  bool built() const { return built_; }
  void invalidate() { built_ = false; }

  int num_groups() const { return num_groups_; }
  int total_components() const {
    return static_cast<int>(comp_member_begin_.size()) - 1;
  }
  int components_in_group(int g) const {
    return group_first_comp_[static_cast<std::size_t>(g) + 1] -
           group_first_comp_[static_cast<std::size_t>(g)];
  }
  // Member ranks (positions among the group's active members, ascending)
  // of component c of group g.
  std::span<const int> component_ranks(int g, int c) const {
    const int comp = group_first_comp_[static_cast<std::size_t>(g)] + c;
    return {member_ranks_.data() + comp_member_begin_[comp],
            static_cast<std::size_t>(comp_member_begin_[comp + 1] -
                                     comp_member_begin_[comp])};
  }
  // The same members as instance ids (members[rank], same order).
  std::span<const InstanceId> component_ids(int g, int c) const {
    const int comp = group_first_comp_[static_cast<std::size_t>(g)] + c;
    return {member_ids_.data() + comp_member_begin_[comp],
            static_cast<std::size_t>(comp_member_begin_[comp + 1] -
                                     comp_member_begin_[comp])};
  }
  // Global (cross-group) component id of an active member, -1 for
  // inactive ids.  Stable only until the next build()/update().
  int component_of(InstanceId i) const {
    return comp_of_member_[static_cast<std::size_t>(i)];
  }
  // Members of a component by its global id, ascending rank order.
  std::span<const InstanceId> component_members(int comp) const {
    const auto c = static_cast<std::size_t>(comp);
    return {member_ids_.data() + comp_member_begin_[c],
            static_cast<std::size_t>(comp_member_begin_[c + 1] -
                                     comp_member_begin_[c])};
  }

 private:
  int find(int x);
  void refill_member_index(int n);

  bool built_ = false;
  int num_groups_ = 0;
  // Union-find over instance ids (-1 = inactive), roots canonicalized to
  // the smallest member id; scratch reused across build() calls.
  std::vector<int> parent_;
  // Per-(edge|demand) clique chaining: last active instance seen per
  // group, stamped so no clearing is needed between cliques.
  std::vector<int> group_last_, group_stamp_;
  // Fused lookup for the build's hot walk: group of i, or -1 inactive.
  std::vector<int> group_of_;
  // Restricted-mask build: per-edge / per-demand chain scratch for the
  // active-members path walk (stamped per group).
  std::vector<int> edge_last_, edge_stamp_, demand_last_, demand_stamp_;
  // Root -> dense component id, stamped per group.
  std::vector<int> comp_of_root_, root_stamp_;
  // Member id -> global component id (-1 inactive); what update()'s
  // dirty marking and the online scheduler's row splitting key on.
  std::vector<int> comp_of_member_;
  // Monotone stamp for update()'s walks; strictly above every stamp
  // value build() leaves behind, so no scratch array needs clearing.
  int update_stamp_ = 0;
  // update() scratch: per-group / per-component delta flags and the
  // staging arrays the revised flat forest is assembled into before the
  // final swap (the old arrays must stay readable while updating).
  std::vector<char> touched_group_, dirty_comp_;
  std::vector<int> upd_first_comp_;
  std::vector<std::int64_t> upd_member_begin_, group_cursor_;
  std::vector<int> upd_ranks_;
  std::vector<InstanceId> upd_ids_;
  std::vector<std::int64_t> group_sizes_;

  // The flat forest: group g owns components
  // [group_first_comp_[g], group_first_comp_[g+1]); component c owns
  // members [comp_member_begin_[c], comp_member_begin_[c+1]) of the
  // parallel (member_ranks_, member_ids_) arrays.
  std::vector<int> group_first_comp_;
  std::vector<std::int64_t> comp_member_begin_;
  std::vector<int> member_ranks_;
  std::vector<InstanceId> member_ids_;
};

}  // namespace treesched
