#include "framework/dual_state.hpp"

namespace treesched {

DualState::DualState(const Problem& problem)
    : problem_(&problem),
      alpha_(static_cast<std::size_t>(problem.num_demands()), 0.0),
      beta_(static_cast<std::size_t>(problem.num_global_edges()), 0.0) {}

double DualState::beta_sum(const DemandInstance& inst) const {
  double s = 0.0;
  for (EdgeId e : inst.edges) s += beta_[static_cast<std::size_t>(e)];
  return s;
}

double DualState::lhs(const DemandInstance& inst, double beta_coeff) const {
  return alpha_[static_cast<std::size_t>(inst.demand)] +
         beta_coeff * beta_sum(inst);
}

void DualState::raise_alpha(DemandId a, double amount) {
  TS_DCHECK(amount >= 0.0);
  alpha_[static_cast<std::size_t>(a)] += amount;
  objective_ += amount;
}

void DualState::raise_beta(EdgeId e, double amount) {
  TS_DCHECK(amount >= 0.0);
  beta_[static_cast<std::size_t>(e)] += amount;
  objective_ += problem_->capacity(e) * amount;
}

}  // namespace treesched
