#include "framework/two_phase.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <thread>
#include <utility>

#include "framework/certify.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace treesched {

// ---------------------------------------------------------------------------
// GreedyMis

GreedyMis::GreedyMis(const Problem& problem)
    : problem_(&problem),
      edge_stamp_(static_cast<std::size_t>(problem.num_global_edges()), 0),
      demand_stamp_(static_cast<std::size_t>(problem.num_demands()), 0) {}

MisResult GreedyMis::run(std::span<const InstanceId> candidates) {
  ++stamp_;
  MisResult result;
  result.rounds = 1;
  for (InstanceId i : candidates) {
    const DemandInstance& inst = problem_->instance(i);
    if (demand_stamp_[static_cast<std::size_t>(inst.demand)] == stamp_)
      continue;
    bool blocked = false;
    for (EdgeId e : inst.edges) {
      if (edge_stamp_[static_cast<std::size_t>(e)] == stamp_) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    demand_stamp_[static_cast<std::size_t>(inst.demand)] = stamp_;
    for (EdgeId e : inst.edges)
      edge_stamp_[static_cast<std::size_t>(e)] = stamp_;
    result.selected.push_back(i);
  }
  return result;
}

// ---------------------------------------------------------------------------
// SolveStats

void SolveStats::merge(const SolveStats& other) {
  epochs += other.epochs;
  stages += other.stages;
  steps += other.steps;
  max_steps_in_stage = std::max(max_steps_in_stage, other.max_steps_in_stage);
  raises += other.raises;
  mis_rounds += other.mis_rounds;
  comm_rounds += other.comm_rounds;
  messages += other.messages;
  message_bytes += other.message_bytes;
  dual_objective += other.dual_objective;
  dual_upper_bound += other.dual_upper_bound;
  // 0.0 means "no run contributed a lambda yet" — on either side.  An
  // unset side must not clobber a real value through std::min (a 0.0
  // lambda would then poison every bound derived from the merged stats).
  if (lambda_observed == 0.0) {
    lambda_observed = other.lambda_observed;
  } else if (other.lambda_observed != 0.0) {
    lambda_observed = std::min(lambda_observed, other.lambda_observed);
  }
  delta = std::max(delta, other.delta);
  xi = std::max(xi, other.xi);
  stages_per_epoch = std::max(stages_per_epoch, other.stages_per_epoch);
  interference_ok = interference_ok && other.interference_ok;
  lockstep_ok = lockstep_ok && other.lockstep_ok;
  mis_ok = mis_ok && other.mis_ok;
  mis_failed_steps += other.mis_failed_steps;
  mis_retries += other.mis_retries;
  epoch_setup_ns += other.epoch_setup_ns;
  forest_build_ns += other.forest_build_ns;
  merge_ns += other.merge_ns;
}

namespace {

// Monotone wall-clock reads for the stats' timing breakdown.  Timing
// only — no field the parity suites compare with == depends on these.
inline std::int64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// TwoPhaseEngine — shared setup

TwoPhaseEngine::TwoPhaseEngine(const Problem& problem, const LayeredPlan& plan,
                               SolverConfig config, MisOracle* oracle)
    : problem_(&problem),
      plan_(&plan),
      config_(config),
      oracle_(oracle),
      active_mask_(static_cast<std::size_t>(problem.num_instances()), 1),
      demand_seen_stamp_(static_cast<std::size_t>(problem.num_demands()), 0) {
  TS_REQUIRE(problem.finalized());
  TS_REQUIRE(plan.group.size() ==
             static_cast<std::size_t>(problem.num_instances()));
  TS_REQUIRE(config_.epsilon > 0.0 && config_.epsilon < 1.0);
  if (oracle_ == nullptr) {
    default_oracle_ = std::make_unique<GreedyMis>(problem);
    oracle_ = default_oracle_.get();
  }
  if (config_.engine == EngineImpl::kIncremental) build_edge_positions();
}

void TwoPhaseEngine::restrict_to(std::vector<InstanceId> active) {
  std::fill(active_mask_.begin(), active_mask_.end(), 0);
  for (InstanceId i : active) {
    TS_REQUIRE(i >= 0 && i < problem_->num_instances());
    active_mask_[static_cast<std::size_t>(i)] = 1;
  }
  // The forest partitions the *active* members of every group; a new
  // active set means a new forest.
  forest_.invalidate();
}

void TwoPhaseEngine::count_notifications(InstanceId i, SolveStats& stats) {
  // A raised processor transmits its new dual values to every processor
  // owning an instance that shares an edge with the raised path (they
  // share beta variables).  Message payload is one demand record: end
  // points, network, profit, height and the raise amount (paper: O(M)
  // bits per message); we charge 48 bytes.
  ++notify_stamp_;
  const DemandInstance& inst = problem_->instance(i);
  std::int64_t neighbors = 0;
  for (EdgeId e : inst.edges) {
    for (InstanceId other : problem_->instances_on_edge(e)) {
      const DemandId od = problem_->instance(other).demand;
      if (od == inst.demand) continue;
      if (demand_seen_stamp_[static_cast<std::size_t>(od)] == notify_stamp_)
        continue;
      demand_seen_stamp_[static_cast<std::size_t>(od)] = notify_stamp_;
      ++neighbors;
    }
  }
  stats.messages += neighbors;
  stats.message_bytes += neighbors * 48;
}

TwoPhaseEngine::StageSchedule TwoPhaseEngine::prepare(SolveStats& stats) const {
  StageSchedule sched;
  // Delta, h_min, xi and the multi-stage count come from the shared
  // derivation (over the active instances only: the wide/narrow split
  // runs see different effective parameters).  A warm restart pins the
  // parameters of the *full* problem instead — a restricted re-solve
  // must replay the same stage schedule the cold solve uses, or the
  // per-component duals stop being exchangeable between the two.
  const StageParams params =
      pinned_params_ != nullptr
          ? *pinned_params_
          : derive_stage_params(*problem_, *plan_, active_mask_,
                                config_.rule, config_.epsilon,
                                config_.xi_override);
  stats.delta = params.delta;
  sched.any_active = params.any_active;
  if (!sched.any_active) return sched;

  sched.xi = params.xi;
  stats.xi = sched.xi;

  sched.stages_per_epoch = 1;
  sched.fixed_threshold = 1.0;  // kExact: raise until tight (lambda = 1)
  if (config_.stage_mode == StageMode::kMultiStage) {
    sched.stages_per_epoch = params.stages_per_epoch;
  } else if (config_.stage_mode == StageMode::kSingleStagePS) {
    // Panconesi-Sozio: a single stage per epoch with retirement at
    // 1/(5+eps)-satisfaction.
    sched.fixed_threshold = 1.0 / (5.0 + config_.epsilon);
  }
  stats.stages_per_epoch = sched.stages_per_epoch;
  sched.lockstep_budget =
      lockstep_step_budget(*problem_, config_.lockstep_slack);
  return sched;
}

double TwoPhaseEngine::stage_target(const StageSchedule& sched,
                                    int stage) const {
  return config_.stage_mode == StageMode::kMultiStage
             ? 1.0 - std::pow(sched.xi, stage)
             : sched.fixed_threshold;
}

void TwoPhaseEngine::finish(SolveResult& result,
                            std::vector<std::vector<InstanceId>>& stack) {
  SolveStats& stats = result.stats;
  // lambda == 0 (possible only when an oracle failure left an instance
  // completely unsatisfied) admits no finite scaled-dual certificate.
  stats.dual_upper_bound =
      stats.lambda_observed > 0.0
          ? stats.dual_objective / std::min(1.0, stats.lambda_observed)
          : std::numeric_limits<double>::infinity();
  {
    TRACE_SPAN("engine", "phase2_prune");
    result.solution = prune_stack(*problem_, stack);
  }
  stats.profit = result.solution.profit(*problem_);
  if (config_.keep_stack) {
    result.raise_stack = std::move(stack);
    result.stack_tags = std::move(stack_tags_);
    TS_DCHECK(result.raise_stack.size() == result.stack_tags.size());
  }
}

SolveResult TwoPhaseEngine::run() {
  TRACE_SPAN("engine", "run");
  SolveResult result;
  stack_tags_.clear();
  const StageSchedule sched = prepare(result.stats);
  if (config_.keep_lhs)
    result.final_lhs.assign(
        static_cast<std::size_t>(problem_->num_instances()), 0.0);
  if (!sched.any_active) {
    result.stats.lambda_observed = 1.0;
    return result;
  }
  if (config_.engine == EngineImpl::kCentralReference)
    run_central(sched, result);
  else
    run_incremental(sched, result);
  return result;
}

SolveResult TwoPhaseEngine::run_warm(const StageParams& pinned) {
  pinned_params_ = &pinned;
  SolveResult result = run();
  pinned_params_ = nullptr;
  return result;
}

// ---------------------------------------------------------------------------
// Central-reference engine: the pre-incremental implementation, kept as
// the parity oracle.  Every step rescans the whole member list and
// recomputes each LHS from scratch over the central DualState.

void TwoPhaseEngine::raise(InstanceId i, DualState& dual,
                           const RaiseRule& rule, SolveStats& stats,
                           std::vector<InstanceId>& raised_order,
                           std::vector<double>& increments) {
  const DemandInstance& inst = problem_->instance(i);
  const auto& critical = plan_->critical[static_cast<std::size_t>(i)];
  const double lhs = dual.lhs(inst, rule.beta_coeff(inst));
  const double slack = inst.profit - lhs;
  TS_DCHECK(slack > 0.0);
  const double delta = rule.tight_raise(inst, critical, slack, increments);
  if (config_.raise_alpha) dual.raise_alpha(inst.demand, delta);
  for (std::size_t c = 0; c < critical.size(); ++c)
    dual.raise_beta(critical[c], increments[c]);
  // The raise must satisfy d's constraint tightly (paper, Section 3.2).
  TS_DCHECK(std::abs(dual.lhs(inst, rule.beta_coeff(inst)) - inst.profit) <=
            1e-6 * std::max(1.0, inst.profit));
  ++stats.raises;

  if (config_.check_interference) {
    // Every previously raised overlapping instance must have a critical
    // edge on path(i) (the interference property).
    for (InstanceId prev : raised_order) {
      if (!problem_->overlap(prev, i)) continue;
      const auto& path_i = problem_->instance(i).edges;
      bool hit = false;
      for (EdgeId e : plan_->critical[static_cast<std::size_t>(prev)]) {
        if (std::binary_search(path_i.begin(), path_i.end(), e)) {
          hit = true;
          break;
        }
      }
      if (!hit) stats.interference_ok = false;
    }
  }
  raised_order.push_back(i);

  if (config_.count_messages) count_notifications(i, stats);
}

void TwoPhaseEngine::run_central(const StageSchedule& sched,
                                 SolveResult& result) {
  SolveStats& stats = result.stats;
  DualState dual(*problem_);
  const RaiseRule rule(config_.rule, *problem_, config_.raise_alpha,
                       config_.capacity_aware_raises);

  std::vector<std::vector<InstanceId>> stack;
  std::vector<InstanceId> raised_order;
  std::vector<InstanceId> members, unsatisfied;
  std::vector<double> increments;

  for (int g = 0; g < plan_->num_groups; ++g) {
    members.clear();
    for (InstanceId i : plan_->members[static_cast<std::size_t>(g)])
      if (is_active(i)) members.push_back(i);
    if (members.empty()) continue;
    ++stats.epochs;
    TRACE_SPAN1("engine", "epoch", "group", g);

    for (int j = 1; j <= sched.stages_per_epoch; ++j) {
      const double target = stage_target(sched, j);
      ++stats.stages;
      TRACE_SPAN2("engine", "stage", "group", g, "stage", j);
      int steps_this_stage = 0;
      int rows_this_stage = 0;
      for (;;) {
        unsatisfied.clear();
        for (InstanceId i : members) {
          const DemandInstance& inst = problem_->instance(i);
          const double lhs = dual.lhs(inst, rule.beta_coeff(inst));
          if (lhs < target * inst.profit - kEps * inst.profit)
            unsatisfied.push_back(i);
        }
        if (config_.lockstep) {
          if (steps_this_stage >= sched.lockstep_budget) {
            // The budget is exhausted; Lemma 5.1 predicts U is empty.
            if (!unsatisfied.empty()) stats.lockstep_ok = false;
            break;
          }
          if (unsatisfied.empty()) {
            // Idle step: processors still execute the protocol (they
            // cannot observe global emptiness) — 2 MIS rounds + 1
            // propagation round of silence.
            ++stats.steps;
            ++steps_this_stage;
            stats.mis_rounds += 2;
            stats.comm_rounds += 3;
            continue;
          }
        } else if (unsatisfied.empty()) {
          break;
        }
        const MisResult mis = oracle_->run(
            std::span<const InstanceId>(unsatisfied.data(),
                                        unsatisfied.size()));
        ++stats.steps;
        ++steps_this_stage;
        stats.mis_rounds += mis.rounds;
        stats.comm_rounds += mis.rounds + 1;  // +1: dual propagation
        stats.mis_retries += mis.retries;
        if (mis.selected.empty()) {
          // A budgeted randomized oracle can fail to decide anyone.
          // Mirror the protocol: the step's rounds are spent in silence.
          // In lockstep mode the fixed budget bounds the retries; in
          // adaptive mode no progress is possible, so the stage ends
          // short (flagged through lockstep_ok below).
          stats.mis_ok = false;
          ++stats.mis_failed_steps;
          TRACE_COUNTER("engine.mis_failed_steps", 1);
          if (config_.lockstep) continue;
          stats.lockstep_ok = false;
          break;
        }
        for (InstanceId i : mis.selected)
          raise(i, dual, rule, stats, raised_order, increments);
        if (config_.keep_stack)
          stack_tags_.push_back(StackTag{g, j, rows_this_stage});
        ++rows_this_stage;
        stack.push_back(mis.selected);
        TS_REQUIRE(steps_this_stage <= config_.max_steps_per_stage);
      }
      stats.max_steps_in_stage =
          std::max(stats.max_steps_in_stage, steps_this_stage);
    }
  }

  // Certification: observed slackness over active instances and the
  // resulting feasible-dual upper bound (weak duality after scaling).
  stats.dual_objective = dual.objective();
  stats.lambda_observed =
      observed_lambda(*problem_, dual, rule, active_mask_);
  if (config_.keep_lhs) {
    for (InstanceId i = 0; i < problem_->num_instances(); ++i) {
      if (!is_active(i)) continue;
      const DemandInstance& inst = problem_->instance(i);
      result.final_lhs[static_cast<std::size_t>(i)] =
          dual.lhs(inst, rule.beta_coeff(inst));
    }
  }
  finish(result, stack);
}

// ---------------------------------------------------------------------------
// Incremental engine: per-instance DualShard stores + cached LHS + the
// per-stage unsatisfied frontier.  Raises propagate through the CSR
// edge->instances index to exactly the instances whose constraints read a
// raised variable; everyone else's cached LHS stays valid.  All arithmetic
// (the ordered beta walk, the objective accumulation order) deliberately
// replays the central engine's operation order, so the two paths agree
// bit for bit — tests/test_engine_parity.cpp compares with ==.

void TwoPhaseEngine::build_edge_positions() {
  // Per-(edge, instance) path positions, aligned entry-for-entry with the
  // Problem's CSR buckets: propagation applies an increment with a single
  // indexed store instead of a per-target binary search.  Depends only on
  // the Problem, so it is built once at construction, not per run.
  const InstanceId n = problem_->num_instances();
  const EdgeId num_edges = problem_->num_global_edges();
  edge_pos_offset_.assign(static_cast<std::size_t>(num_edges) + 1, 0);
  for (EdgeId e = 0; e < num_edges; ++e)
    edge_pos_offset_[static_cast<std::size_t>(e) + 1] =
        edge_pos_offset_[static_cast<std::size_t>(e)] +
        static_cast<std::int64_t>(problem_->instances_on_edge(e).size());
  edge_pos_.resize(static_cast<std::size_t>(edge_pos_offset_.back()));
  std::vector<std::int64_t> cursor(edge_pos_offset_.begin(),
                                   edge_pos_offset_.end() - 1);
  for (InstanceId i = 0; i < n; ++i) {
    const auto& edges = problem_->instance(i).edges;
    for (std::size_t idx = 0; idx < edges.size(); ++idx) {
      const auto e = static_cast<std::size_t>(edges[idx]);
      edge_pos_[static_cast<std::size_t>(cursor[e]++)] =
          static_cast<int>(idx);
    }
  }

  // Component-decomposition scratch; comp_stamp_ stays monotone across
  // runs, so the stamp arrays never need re-clearing.
  comp_edge_stamp_.assign(static_cast<std::size_t>(num_edges), 0);
  comp_edge_rank_.assign(static_cast<std::size_t>(num_edges), 0);
  comp_demand_stamp_.assign(static_cast<std::size_t>(problem_->num_demands()),
                            0);
  comp_demand_rank_.assign(static_cast<std::size_t>(problem_->num_demands()),
                           0);
  rank_of_.assign(static_cast<std::size_t>(n), -1);
}

void TwoPhaseEngine::build_local_stores() {
  const InstanceId n = problem_->num_instances();
  shards_.clear();
  shards_.reserve(static_cast<std::size_t>(n));
  for (InstanceId i = 0; i < n; ++i) {
    const DemandInstance& inst = problem_->instance(i);
    shards_.emplace_back(inst.demand,
                         std::span<const EdgeId>{inst.edges.data(),
                                                 inst.edges.size()});
  }
  lhs_cache_.assign(static_cast<std::size_t>(n), 0.0);
  lhs_fresh_.assign(static_cast<std::size_t>(n), 1);  // all-zero duals
}

void TwoPhaseEngine::propagate_raise(InstanceId i, double delta,
                                     std::span<const double> increments,
                                     PropScope scope, int group) {
  const DemandInstance& inst = problem_->instance(i);
  const auto in_scope = [&](InstanceId k) {
    if (!is_active(k)) return false;
    if (scope == PropScope::kAll) return true;
    return plan_->group[static_cast<std::size_t>(k)] == group;
  };
  if (config_.raise_alpha) {
    for (InstanceId k : problem_->instances_of_demand(inst.demand)) {
      if (!in_scope(k)) continue;
      shards_[static_cast<std::size_t>(k)].raise_alpha(delta);
      lhs_fresh_[static_cast<std::size_t>(k)] = 0;
    }
  }
  const auto& critical = plan_->critical[static_cast<std::size_t>(i)];
  for (std::size_t c = 0; c < critical.size(); ++c) {
    const EdgeId e = critical[c];
    const auto bucket = problem_->instances_on_edge(e);
    const int* pos =
        edge_pos_.data() + edge_pos_offset_[static_cast<std::size_t>(e)];
    for (std::size_t b = 0; b < bucket.size(); ++b) {
      const InstanceId k = bucket[b];
      if (!in_scope(k)) continue;
      shards_[static_cast<std::size_t>(k)].raise_beta_at(pos[b],
                                                         increments[c]);
      lhs_fresh_[static_cast<std::size_t>(k)] = 0;
    }
  }
}

void TwoPhaseEngine::bookkeep_raise(InstanceId i, double delta,
                                    std::span<const double> increments,
                                    double& objective, SolveStats& stats,
                                    std::vector<InstanceId>& raised_order) {
  const DemandInstance& inst = problem_->instance(i);
  const auto& critical = plan_->critical[static_cast<std::size_t>(i)];
  // Accumulation order mirrors DualState exactly: the alpha term first,
  // then the critical edges in order, capacity-weighted.
  if (config_.raise_alpha) objective += delta;
  for (std::size_t c = 0; c < critical.size(); ++c)
    objective += problem_->capacity(critical[c]) * increments[c];
  ++stats.raises;

  if (config_.check_interference) {
    for (InstanceId prev : raised_order) {
      if (!problem_->overlap(prev, i)) continue;
      const auto& path_i = inst.edges;
      bool hit = false;
      for (EdgeId e : plan_->critical[static_cast<std::size_t>(prev)]) {
        if (std::binary_search(path_i.begin(), path_i.end(), e)) {
          hit = true;
          break;
        }
      }
      if (!hit) stats.interference_ok = false;
    }
  }
  raised_order.push_back(i);

  if (config_.count_messages) count_notifications(i, stats);
}

void TwoPhaseEngine::run_incremental(const StageSchedule& sched,
                                     SolveResult& result) {
  SolveStats& stats = result.stats;
  const RaiseRule rule(config_.rule, *problem_, config_.raise_alpha,
                       config_.capacity_aware_raises);
  build_local_stores();
  double objective = 0.0;

  // Parallel epoch execution needs a component-local oracle per worker;
  // an oracle without component_clone support pins the run to the serial
  // path (which also serves threads == 1).
  const bool parallel =
      config_.threads > 1 && oracle_->supports_component_clone();
  if (parallel) {
    worker_scratch_.resize(
        static_cast<std::size_t>(std::max(config_.threads, 1)));
    if (config_.use_component_forest && !forest_.built()) {
      const auto t0 = std::chrono::steady_clock::now();
      forest_.build(*problem_, *plan_, active_mask_);
      stats.forest_build_ns += elapsed_ns(t0);
    }
  }

  std::vector<std::vector<InstanceId>> stack;
  std::vector<InstanceId> raised_order;
  std::vector<InstanceId> members, unsat;
  std::vector<double> increments;

  for (int g = 0; g < plan_->num_groups; ++g) {
    members.clear();
    for (InstanceId i : plan_->members[static_cast<std::size_t>(g)])
      if (is_active(i)) members.push_back(i);
    if (members.empty()) continue;
    ++stats.epochs;
    TRACE_SPAN1("engine", "epoch", "group", g);

    if (parallel) {
      const auto setup_start = std::chrono::steady_clock::now();
      const int comp_count = [&] {
        TRACE_SPAN1("engine", "epoch_setup", "group", g);
        return config_.use_component_forest ? derive_components(members, g)
                                            : split_components(members, g);
      }();
      stats.epoch_setup_ns += elapsed_ns(setup_start);
      if (obs::tracing_enabled()) {
        TRACE_HIST("engine.components_per_epoch", comp_count);
        for (int c = 0; c < comp_count; ++c)
          TRACE_HIST("engine.component_size",
                     comp_pool_[static_cast<std::size_t>(c)].ids.size());
      }
      if (comp_count > 1) {
        // Fixed-size pool over an atomic work index: which worker runs
        // which component is scheduling-dependent, but each component's
        // writes are confined to its own members' shards and caches, and
        // the merge below replays everything in fixed component order —
        // so the output is independent of the interleaving.
        std::atomic<int> next{0};
        const int workers = clamp_workers(comp_count);
        // Per-worker busy time (loop entry to exhausted work queue);
        // idle is the pool wall minus that, accumulated into the
        // metrics registry after the join.
        std::vector<std::int64_t> busy_ns(static_cast<std::size_t>(workers),
                                          0);
        const auto work = [&](int w) {
          WorkerScratch& scratch = worker_scratch_[static_cast<std::size_t>(w)];
          const bool traced = obs::tracing_enabled();
          const std::int64_t entered_ns = traced ? obs::trace_now_ns() : 0;
          for (;;) {
            const int c = next.fetch_add(1);
            if (c >= comp_count) break;
            EpochComponent& comp = comp_pool_[static_cast<std::size_t>(c)];
            TRACE_SPAN2("engine", "component", "size", comp.ids.size(),
                        "group", g);
            run_component(comp, rule, sched, g, scratch);
          }
          if (traced)
            busy_ns[static_cast<std::size_t>(w)] =
                obs::trace_now_ns() - entered_ns;
        };
        const std::int64_t pool_start_ns =
            obs::tracing_enabled() ? obs::trace_now_ns() : 0;
        TRACE_SPAN2("engine", "solve", "group", g, "components", comp_count);
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers) - 1);
        for (int w = 1; w < workers; ++w) pool.emplace_back(work, w);
        work(0);
        for (std::thread& t : pool) t.join();
        if (obs::tracing_enabled()) {
          const std::int64_t pool_wall_ns =
              obs::trace_now_ns() - pool_start_ns;
          auto& registry = obs::MetricsRegistry::global();
          for (int w = 0; w < workers; ++w) {
            const std::int64_t busy = busy_ns[static_cast<std::size_t>(w)];
            registry.counter("engine.worker_busy_ns").add(busy);
            registry.counter("engine.worker_idle_ns")
                .add(std::max<std::int64_t>(0, pool_wall_ns - busy));
          }
        }
      } else if (comp_count == 1) {
        TRACE_SPAN2("engine", "component", "size", comp_pool_[0].ids.size(),
                    "group", g);
        run_component(comp_pool_[0], rule, sched, g, worker_scratch_[0]);
      }
      const auto merge_start = std::chrono::steady_clock::now();
      {
        TRACE_SPAN1("engine", "merge", "group", g);
        merge_components(comp_count, members, rule, sched, g, objective,
                         stats, stack, raised_order);
      }
      stats.merge_ns += elapsed_ns(merge_start);
      continue;
    }

    // Serial frontier path.
    for (int j = 1; j <= sched.stages_per_epoch; ++j) {
      const double target = stage_target(sched, j);
      ++stats.stages;
      TRACE_SPAN2("engine", "stage", "group", g, "stage", j);
      int steps_this_stage = 0;
      int rows_this_stage = 0;
      bool scanned = false;
      for (;;) {
        if (!scanned) {
          // The stage's one member scan — O(1) cached reads; from here
          // on the frontier only shrinks (raises are monotone within a
          // stage), so each step filters the previous frontier instead
          // of rescanning the group.
          unsat.clear();
          for (InstanceId i : members)
            if (unsatisfied_local(i, rule, target)) unsat.push_back(i);
          scanned = true;
        } else {
          std::size_t w = 0;
          for (std::size_t r = 0; r < unsat.size(); ++r)
            if (unsatisfied_local(unsat[r], rule, target))
              unsat[w++] = unsat[r];
          unsat.resize(w);
        }
        if (config_.lockstep) {
          if (steps_this_stage >= sched.lockstep_budget) {
            if (!unsat.empty()) stats.lockstep_ok = false;
            break;
          }
          if (unsat.empty()) {
            ++stats.steps;
            ++steps_this_stage;
            stats.mis_rounds += 2;
            stats.comm_rounds += 3;
            continue;
          }
        } else if (unsat.empty()) {
          break;
        }
        const MisResult mis =
            oracle_->run(std::span<const InstanceId>(unsat.data(),
                                                     unsat.size()));
        ++stats.steps;
        ++steps_this_stage;
        stats.mis_rounds += mis.rounds;
        stats.comm_rounds += mis.rounds + 1;  // +1: dual propagation
        stats.mis_retries += mis.retries;
        if (mis.selected.empty()) {
          stats.mis_ok = false;
          ++stats.mis_failed_steps;
          TRACE_COUNTER("engine.mis_failed_steps", 1);
          if (config_.lockstep) continue;
          stats.lockstep_ok = false;
          break;
        }
        for (InstanceId i : mis.selected) {
          const DemandInstance& inst = problem_->instance(i);
          const auto& critical =
              plan_->critical[static_cast<std::size_t>(i)];
          const double slack =
              inst.profit - lhs_local(i, rule.beta_coeff(inst));
          TS_DCHECK(slack > 0.0);
          const double delta =
              rule.tight_raise(inst, critical, slack, increments);
          propagate_raise(i, delta, increments, PropScope::kAll, g);
          bookkeep_raise(i, delta, increments, objective, stats,
                         raised_order);
          TS_DCHECK(std::abs(lhs_local(i, rule.beta_coeff(inst)) -
                             inst.profit) <=
                    1e-6 * std::max(1.0, inst.profit));
        }
        if (config_.keep_stack)
          stack_tags_.push_back(StackTag{g, j, rows_this_stage});
        ++rows_this_stage;
        stack.push_back(mis.selected);
        TS_REQUIRE(steps_this_stage <= config_.max_steps_per_stage);
      }
      stats.max_steps_in_stage =
          std::max(stats.max_steps_in_stage, steps_this_stage);
    }
  }

  // Certification from the local stores alone: every instance reports its
  // own satisfaction level (the same operation sequence as
  // observed_lambda over the central DualState).
  stats.dual_objective = objective;
  double lambda = 1.0;
  bool any = false;
  for (InstanceId i = 0; i < problem_->num_instances(); ++i) {
    if (!is_active(i)) continue;
    const DemandInstance& inst = problem_->instance(i);
    const double lhs = lhs_local(i, rule.beta_coeff(inst));
    const double level = lhs / inst.profit;
    lambda = any ? std::min(lambda, level) : level;
    any = true;
  }
  stats.lambda_observed = any ? lambda : 1.0;
  if (config_.keep_lhs) {
    for (InstanceId i = 0; i < problem_->num_instances(); ++i) {
      if (!is_active(i)) continue;
      const DemandInstance& inst = problem_->instance(i);
      result.final_lhs[static_cast<std::size_t>(i)] =
          lhs_local(i, rule.beta_coeff(inst));
    }
  }
  finish(result, stack);
}

// ---------------------------------------------------------------------------
// Parallel epochs: conflict-disjoint components.
//
// Within one group, a raise of member i touches beta only on critical
// edges of path(i) and alpha of i's demand; any member whose constraint
// reads one of those variables conflicts with i and is therefore in i's
// connected component of the conflict graph restricted to the group.  So
// components never read each other's writes during an epoch and can run
// concurrently; raises reaching *later* groups are deferred and replayed
// by the merge in (step, member-rank) order — exactly the chronological
// order the serial engine applies them in, which is what keeps the
// parallel path bit-identical for decomposable (deterministic) oracles.
//
// Two decompositions produce the identical partition: the persistent
// ComponentForest (default; built once per run and sliced per epoch) and
// the legacy per-epoch union-find below (split_components, kept as the
// recompute oracle behind SolverConfig::use_component_forest = false and
// as bench_f13's baseline arm).

int TwoPhaseEngine::split_components(const std::vector<InstanceId>& members,
                                     int group) {
  const int m = static_cast<int>(members.size());
  ++comp_stamp_;
  std::vector<int> parent(static_cast<std::size_t>(m));
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  const auto unite = [&](int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Min-root union keeps every root the smallest rank of its component,
    // giving the fixed component ordering the determinism relies on.
    if (a < b)
      parent[static_cast<std::size_t>(b)] = a;
    else
      parent[static_cast<std::size_t>(a)] = b;
  };
  // Stamped last-seen entries: one pass over the members' paths links
  // every clique (per-edge, per-demand) into a chain of unions.
  for (int rank = 0; rank < m; ++rank) {
    const InstanceId i = members[static_cast<std::size_t>(rank)];
    rank_of_[static_cast<std::size_t>(i)] = rank;
    const DemandInstance& inst = problem_->instance(i);
    const auto d = static_cast<std::size_t>(inst.demand);
    if (comp_demand_stamp_[d] == comp_stamp_)
      unite(rank, comp_demand_rank_[d]);
    comp_demand_stamp_[d] = comp_stamp_;
    comp_demand_rank_[d] = rank;
    for (EdgeId e : inst.edges) {
      const auto ge = static_cast<std::size_t>(e);
      if (comp_edge_stamp_[ge] == comp_stamp_)
        unite(rank, comp_edge_rank_[ge]);
      comp_edge_stamp_[ge] = comp_stamp_;
      comp_edge_rank_[ge] = rank;
    }
  }

  std::vector<int> comp_of_root(static_cast<std::size_t>(m), -1);
  int count = 0;
  for (int rank = 0; rank < m; ++rank) {
    const int root = find(rank);
    int c = comp_of_root[static_cast<std::size_t>(root)];
    if (c < 0) {
      c = count++;
      comp_of_root[static_cast<std::size_t>(root)] = c;
      if (static_cast<int>(comp_pool_.size()) < count)
        comp_pool_.emplace_back();
      comp_pool_[static_cast<std::size_t>(c)].owned_ranks.clear();
      comp_pool_[static_cast<std::size_t>(c)].owned_ids.clear();
    }
    comp_pool_[static_cast<std::size_t>(c)].owned_ranks.push_back(rank);
    comp_pool_[static_cast<std::size_t>(c)].owned_ids.push_back(
        members[static_cast<std::size_t>(rank)]);
  }
  for (int c = 0; c < count; ++c) {
    EpochComponent& comp = comp_pool_[static_cast<std::size_t>(c)];
    comp.ranks = {comp.owned_ranks.data(), comp.owned_ranks.size()};
    comp.ids = {comp.owned_ids.data(), comp.owned_ids.size()};
    comp.stream_key = component_stream_key(group, comp.ids.front());
    // Eager clone, as PR 3's recompute did (the forest path clones
    // lazily in run_component instead).
    comp.oracle = oracle_->component_clone(comp.stream_key);
    TS_REQUIRE(comp.oracle != nullptr);
  }
  return count;
}

int TwoPhaseEngine::derive_components(const std::vector<InstanceId>& members,
                                      int group) {
  // The forest already holds this epoch's partition; deriving is pure
  // span slicing — O(|members| + #components) instead of the legacy
  // union-find's O(sum path) clique chains.  Oracles are NOT cloned
  // here: run_component clones lazily once a frontier scan finds an
  // unsatisfied member (the monotone-frontier filter), so a fully
  // satisfied component costs neither a clone nor a stream.  Clone
  // streams derive from (seed, key), never from the parent oracle's
  // state, so the laziness cannot shift any component's randomness.
  const int m = static_cast<int>(members.size());
  for (int rank = 0; rank < m; ++rank)
    rank_of_[static_cast<std::size_t>(members[static_cast<std::size_t>(rank)])] =
        rank;
  const int count = forest_.components_in_group(group);
  if (static_cast<int>(comp_pool_.size()) < count)
    comp_pool_.resize(static_cast<std::size_t>(count));
  for (int c = 0; c < count; ++c) {
    EpochComponent& comp = comp_pool_[static_cast<std::size_t>(c)];
    comp.ranks = forest_.component_ranks(group, c);
    comp.ids = forest_.component_ids(group, c);
    comp.stream_key = component_stream_key(group, comp.ids.front());
    comp.oracle.reset();
  }
  return count;
}

int TwoPhaseEngine::clamp_workers(int work_items) const {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(
      1, std::min({config_.threads, work_items,
                   hw > 0 ? static_cast<int>(hw) : config_.threads}));
}

void TwoPhaseEngine::run_component(EpochComponent& comp,
                                   const RaiseRule& rule,
                                   const StageSchedule& sched, int group,
                                   WorkerScratch& scratch) {
  comp.reset_log(sched.stages_per_epoch);
  std::vector<InstanceId>& unsat = scratch.unsat;
  std::vector<double>& increments = scratch.increments;
  std::vector<std::pair<int, double>>& selected = scratch.selected;
  for (int j = 1; j <= sched.stages_per_epoch; ++j) {
    const double target = stage_target(sched, j);
    int steps_this_stage = 0;
    bool scanned = false;
    for (;;) {
      if (!scanned) {
        unsat.clear();
        for (InstanceId i : comp.ids)
          if (unsatisfied_local(i, rule, target)) unsat.push_back(i);
        scanned = true;
      } else {
        std::size_t w = 0;
        for (std::size_t r = 0; r < unsat.size(); ++r)
          if (unsatisfied_local(unsat[r], rule, target))
            unsat[w++] = unsat[r];
        unsat.resize(w);
      }
      if (config_.lockstep && steps_this_stage >= sched.lockstep_budget) {
        if (!unsat.empty()) comp.ended_short = true;
        break;
      }
      // A finished component simply stops recording; the merge pads the
      // lockstep schedule's idle steps when *every* component is done.
      if (unsat.empty()) break;
      // Lazy clone (forest path): the component proved it has frontier
      // work, so it earns its oracle now.  component_clone is
      // concurrency-safe on the parent and derives the stream from
      // (seed, stream_key) alone — see MisOracle's contract.
      if (comp.oracle == nullptr) {
        comp.oracle = oracle_->component_clone(comp.stream_key);
        TS_REQUIRE(comp.oracle != nullptr);
      }
      const MisResult mis = comp.oracle->run(
          std::span<const InstanceId>(unsat.data(), unsat.size()));
      ++steps_this_stage;
      if (mis.selected.empty()) {
        comp.mis_failed = true;
        comp.step_rounds.push_back(mis.rounds);
        comp.step_retries.push_back(mis.retries);
        comp.step_begin.push_back(static_cast<int>(comp.rank_log.size()));
        if (!config_.lockstep) {
          comp.ended_short = true;
          break;
        }
        TS_REQUIRE(steps_this_stage <= config_.max_steps_per_stage);
        continue;
      }
      selected.clear();
      for (InstanceId i : mis.selected) {
        const DemandInstance& inst = problem_->instance(i);
        const auto& critical =
            plan_->critical[static_cast<std::size_t>(i)];
        const double slack =
            inst.profit - lhs_local(i, rule.beta_coeff(inst));
        TS_DCHECK(slack > 0.0);
        const double delta =
            rule.tight_raise(inst, critical, slack, increments);
        // In-component application only; out-of-group propagation is the
        // merge's job (in deterministic order).
        propagate_raise(i, delta, increments, PropScope::kInGroup, group);
        selected.emplace_back(rank_of_[static_cast<std::size_t>(i)], delta);
      }
      // Log in ascending member rank (randomized oracles report winners
      // in decision order; raises within a step commute, so rank order is
      // safe and deterministic).  Ranks are unique, so the pair sort is
      // a rank sort.
      std::sort(selected.begin(), selected.end());
      comp.step_rounds.push_back(mis.rounds);
      comp.step_retries.push_back(mis.retries);
      for (const auto& [rank, delta] : selected) {
        comp.rank_log.push_back(rank);
        comp.delta_log.push_back(delta);
      }
      comp.step_begin.push_back(static_cast<int>(comp.rank_log.size()));
      TS_REQUIRE(steps_this_stage <= config_.max_steps_per_stage);
    }
    comp.stage_begin.push_back(static_cast<int>(comp.step_rounds.size()));
  }
}

void TwoPhaseEngine::merge_components(
    int comp_count, const std::vector<InstanceId>& members,
    const RaiseRule& rule, const StageSchedule& sched, int group,
    double& objective, SolveStats& stats,
    std::vector<std::vector<InstanceId>>& stack,
    std::vector<InstanceId>& raised_order) {
  // Phase A (serial, cheap): k-way merge of the per-component decision
  // logs by (stage, step) into the chronological raise order, with the
  // serial bookkeeping — objective accumulation, stack rows, stats,
  // message counting — exactly as the serial engine interleaves it.
  // The raises themselves are only *logged* (ids, deltas and the
  // per-critical-edge increment slabs); their out-of-group propagation
  // is deferred to Phase B below, which is safe because nothing reads an
  // out-of-group LHS before the next epoch.
  const std::span<EpochComponent> comps{comp_pool_.data(),
                                        static_cast<std::size_t>(comp_count)};
  std::vector<double>& increments = worker_scratch_.front().increments;
  merge_log_ids_.clear();
  merge_log_deltas_.clear();
  merge_inc_begin_.assign(1, 0);
  merge_inc_values_.clear();
  // Estimated Phase-B application count (sum of the logged raises'
  // CSR bucket sizes): decides deterministically whether the deferred
  // propagation is worth a worker pool or should just run inline.
  std::int64_t deferred_fanout = 0;
  for (int j = 1; j <= sched.stages_per_epoch; ++j) {
    ++stats.stages;
    int max_steps = 0;
    for (const EpochComponent& comp : comps)
      max_steps = std::max(max_steps, comp.steps_in_stage(j - 1));
    const int stage_steps =
        config_.lockstep ? sched.lockstep_budget : max_steps;
    int counted = 0;
    int rows_this_stage = 0;
    bool stage_broken = false;
    for (int t = 0; t < stage_steps && !stage_broken; ++t) {
      merge_row_.clear();
      int rounds_t = 0;
      int retries_t = 0;
      bool any_component = false;
      for (const EpochComponent& comp : comps) {
        if (t >= comp.steps_in_stage(j - 1)) continue;
        any_component = true;
        const auto s = static_cast<std::size_t>(
            comp.stage_begin[static_cast<std::size_t>(j - 1)] + t);
        rounds_t = std::max(rounds_t, comp.step_rounds[s]);
        // Like the rounds: concurrent components share the step's retry
        // attempts, and a serial whole-frontier run retries exactly as
        // long as its worst component — max, not sum.
        retries_t = std::max(retries_t, comp.step_retries[s]);
        for (int k = comp.step_begin[s]; k < comp.step_begin[s + 1]; ++k)
          merge_row_.emplace_back(comp.rank_log[static_cast<std::size_t>(k)],
                                  comp.delta_log[static_cast<std::size_t>(k)]);
      }
      ++stats.steps;
      ++counted;
      if (!any_component) {
        // Every component finished before the budget: the union U is
        // empty, and the lockstep schedule idles through the remaining
        // steps exactly as the serial engine does.
        stats.mis_rounds += 2;
        stats.comm_rounds += 3;
        continue;
      }
      // The merged step costs the *maximum* of the concurrent per-
      // component MIS rounds: components run their iterations in the same
      // synchronous rounds.
      stats.mis_rounds += rounds_t;
      stats.comm_rounds += rounds_t + 1;
      stats.mis_retries += retries_t;
      if (merge_row_.empty()) {
        // Every live component's MIS came back empty this step: the
        // union U's step failed exactly as a serial empty step would.
        // (Per-component failures that still yield a non-empty union
        // only flip mis_ok below, not this counter — the counter must
        // stay identical across serial and parallel paths, and the
        // parity suite compares it with ==.)
        stats.mis_ok = false;
        ++stats.mis_failed_steps;
        TRACE_COUNTER("engine.mis_failed_steps", 1);
        if (!config_.lockstep) stage_broken = true;
        continue;
      }
      std::sort(merge_row_.begin(), merge_row_.end());
      std::vector<InstanceId> row;
      row.reserve(merge_row_.size());
      for (const auto& [rank, delta] : merge_row_) {
        const InstanceId i = members[static_cast<std::size_t>(rank)];
        const DemandInstance& inst = problem_->instance(i);
        const auto& critical =
            plan_->critical[static_cast<std::size_t>(i)];
        rule.beta_increments(inst, critical, delta, increments);
        merge_log_ids_.push_back(i);
        merge_log_deltas_.push_back(delta);
        merge_inc_values_.insert(merge_inc_values_.end(), increments.begin(),
                                 increments.end());
        merge_inc_begin_.push_back(
            static_cast<std::int64_t>(merge_inc_values_.size()));
        for (const EdgeId e : critical)
          deferred_fanout += static_cast<std::int64_t>(
              problem_->instances_on_edge(e).size());
        if (config_.raise_alpha)
          deferred_fanout += static_cast<std::int64_t>(
              problem_->instances_of_demand(inst.demand).size());
        bookkeep_raise(i, delta, increments, objective, stats,
                       raised_order);
        row.push_back(i);
      }
      if (config_.keep_stack)
        stack_tags_.push_back(StackTag{group, j, rows_this_stage});
      ++rows_this_stage;
      stack.push_back(std::move(row));
    }
    stats.max_steps_in_stage = std::max(stats.max_steps_in_stage, counted);
  }
  for (const EpochComponent& comp : comps) {
    if (comp.mis_failed) stats.mis_ok = false;
    if (comp.ended_short) stats.lockstep_ok = false;
  }

  // Phase B: the deferred out-of-group propagation, partitioned by
  // target instance id across the worker pool.  Shard k's increments
  // arrive in chronological order within its partition — the order the
  // serial replay would apply them in — so any worker count yields the
  // identical floating-point state.
  if (merge_log_ids_.empty()) return;
  const InstanceId n = problem_->num_instances();
  // A small log is applied inline: below this many estimated bucket
  // applications, thread create/join would cost more than the work.
  // Any deterministic threshold is parity-safe — serial and parallel
  // application produce the identical state.
  constexpr std::int64_t kParallelFanoutFloor = 4096;
  const int workers = deferred_fanout < kParallelFanoutFloor
                          ? 1
                          : clamp_workers(static_cast<int>(n));
  if (workers > 1) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers) - 1);
    const auto range_begin = [&](int w) {
      return static_cast<InstanceId>(
          static_cast<std::int64_t>(n) * w / workers);
    };
    for (int w = 1; w < workers; ++w)
      pool.emplace_back([this, group, &range_begin, w] {
        apply_deferred_raises(group, range_begin(w), range_begin(w + 1));
      });
    apply_deferred_raises(group, range_begin(0), range_begin(1));
    for (std::thread& t : pool) t.join();
  } else {
    apply_deferred_raises(group, 0, n);
  }
}

void TwoPhaseEngine::apply_deferred_raises(int group, InstanceId lo,
                                           InstanceId hi) {
  TRACE_SPAN2("engine", "merge_slab", "lo", lo, "hi", hi);
  const auto in_scope = [&](InstanceId k) {
    return is_active(k) &&
           plan_->group[static_cast<std::size_t>(k)] != group;
  };
  const std::size_t raises = merge_log_ids_.size();
  for (std::size_t r = 0; r < raises; ++r) {
    const InstanceId i = merge_log_ids_[r];
    const DemandInstance& inst = problem_->instance(i);
    const double delta = merge_log_deltas_[r];
    const double* inc =
        merge_inc_values_.data() + merge_inc_begin_[r];
    if (config_.raise_alpha) {
      const auto& sibs = problem_->instances_of_demand(inst.demand);
      for (auto it = std::lower_bound(sibs.begin(), sibs.end(), lo);
           it != sibs.end() && *it < hi; ++it) {
        if (!in_scope(*it)) continue;
        shards_[static_cast<std::size_t>(*it)].raise_alpha(delta);
        lhs_fresh_[static_cast<std::size_t>(*it)] = 0;
      }
    }
    const auto& critical = plan_->critical[static_cast<std::size_t>(i)];
    for (std::size_t c = 0; c < critical.size(); ++c) {
      const EdgeId e = critical[c];
      const auto bucket = problem_->instances_on_edge(e);
      const InstanceId* base = bucket.data();
      const int* pos =
          edge_pos_.data() + edge_pos_offset_[static_cast<std::size_t>(e)];
      const InstanceId* s = std::lower_bound(base, base + bucket.size(), lo);
      const InstanceId* t = std::lower_bound(s, base + bucket.size(), hi);
      for (const InstanceId* p = s; p < t; ++p) {
        const InstanceId k = *p;
        if (!in_scope(k)) continue;
        shards_[static_cast<std::size_t>(k)].raise_beta_at(
            pos[p - base], inc[c]);
        lhs_fresh_[static_cast<std::size_t>(k)] = 0;
      }
    }
  }
}

// ---------------------------------------------------------------------------

int lockstep_step_budget(const Problem& problem, int slack) {
  // Claim 5.2 budget with guards: a zero/denormal min_profit or an
  // overflowing ratio must yield a finite budget, never UB from casting
  // inf/NaN to int.  The log term is capped at 62 (a profit range beyond
  // 2^62 is outside any double's meaningful precision anyway) and the
  // whole budget clamped to >= 1 so degenerate slack cannot disable the
  // schedule.
  const double pmax = problem.max_profit();
  const double pmin = problem.min_profit();
  double log_range = 0.0;
  if (pmin > 0.0 && pmax > pmin) {
    const double ratio = pmax / pmin;
    if (std::isfinite(ratio))
      log_range = std::min(std::ceil(std::log2(ratio)), 62.0);
    else
      log_range = 62.0;
  }
  return std::max(1, 1 + slack + static_cast<int>(log_range));
}

double target_lambda(StageMode mode, double epsilon) {
  return mode == StageMode::kSingleStagePS ? 1.0 / (5.0 + epsilon)
                                           : 1.0 - epsilon;
}

StageParams derive_stage_params(const Problem& problem,
                                const LayeredPlan& plan,
                                const std::vector<char>& active_mask,
                                RaiseRuleKind rule, double epsilon,
                                double xi_override) {
  StageParams params;
  for (InstanceId i = 0; i < problem.num_instances(); ++i) {
    if (!active_mask[static_cast<std::size_t>(i)]) continue;
    params.any_active = true;
    params.h_min = std::min(params.h_min, problem.instance(i).height);
    params.delta = std::max(
        params.delta,
        static_cast<int>(plan.critical[static_cast<std::size_t>(i)].size()));
  }
  if (!params.any_active) return params;

  params.xi = xi_override > 0.0
                  ? xi_override
                  : RaiseRule::default_xi(rule, params.delta, params.h_min);
  // Smallest b with xi^b <= eps.
  params.stages_per_epoch = std::max(
      1, static_cast<int>(std::ceil(std::log(epsilon) / std::log(params.xi))));
  return params;
}

// ---------------------------------------------------------------------------
// Convenience wrappers

SolveResult solve_with_plan(const Problem& problem, const LayeredPlan& plan,
                            const SolverConfig& config, MisOracle* oracle) {
  TwoPhaseEngine engine(problem, plan, config, oracle);
  return engine.run();
}

HeightClasses classify_wide_narrow(const Problem& problem) {
  HeightClasses classes;
  const int n = problem.num_instances();
  classes.wide_mask.assign(static_cast<std::size_t>(std::max(n, 1)), 0);
  classes.narrow_mask.assign(static_cast<std::size_t>(std::max(n, 1)), 0);
  for (InstanceId i = 0; i < n; ++i) {
    if (is_wide_instance(problem.instance(i))) {
      classes.wide_ids.push_back(i);
      classes.wide_mask[static_cast<std::size_t>(i)] = 1;
    } else {
      classes.narrow_ids.push_back(i);
      classes.narrow_mask[static_cast<std::size_t>(i)] = 1;
    }
  }
  return classes;
}

SolveResult solve_height_split(const Problem& problem, const LayeredPlan& plan,
                               const SolverConfig& config, MisOracle* oracle) {
  const HeightClasses classes = classify_wide_narrow(problem);

  SolveResult combined;
  std::vector<SolveResult> parts;
  if (classes.has_wide()) {
    SolverConfig wide_config = config;
    wide_config.rule = RaiseRuleKind::kUnit;
    TwoPhaseEngine engine(problem, plan, wide_config, oracle);
    engine.restrict_to(classes.wide_ids);
    parts.push_back(engine.run());
  }
  if (classes.has_narrow()) {
    SolverConfig narrow_config = config;
    narrow_config.rule = RaiseRuleKind::kNarrow;
    TwoPhaseEngine engine(problem, plan, narrow_config, oracle);
    engine.restrict_to(classes.narrow_ids);
    parts.push_back(engine.run());
  }
  if (parts.size() == 1) return std::move(parts.front());
  TS_REQUIRE(parts.size() == 2);

  combined.solution = combine_better_of_per_network(
      problem, parts[0].solution, parts[1].solution);
  combined.stats = parts[0].stats;
  combined.stats.merge(parts[1].stats);
  combined.stats.profit = combined.solution.profit(problem);
  return combined;
}

std::int64_t better_of_convergecast_rounds(const Problem& problem) {
  // Each network aggregates its two candidate per-network profits up the
  // tree (max depth rounds), the root compares (1 round) and broadcasts
  // the winner down (max depth rounds); all networks cast concurrently.
  int max_depth = 0;
  for (NetworkId q = 0; q < problem.num_networks(); ++q) {
    const TreeNetwork& t = problem.network(q);
    for (VertexId v = 0; v < t.num_vertices(); ++v)
      max_depth = std::max(max_depth, t.depth(v));
  }
  return max_depth > 0 ? 2 * static_cast<std::int64_t>(max_depth) + 1 : 0;
}

Solution combine_better_of_per_network(const Problem& problem,
                                       const Solution& s1,
                                       const Solution& s2) {
  Solution combined;
  std::vector<double> profit1(static_cast<std::size_t>(problem.num_networks()),
                              0.0);
  std::vector<double> profit2 = profit1;
  for (InstanceId i : s1.selected)
    profit1[static_cast<std::size_t>(problem.instance(i).network)] +=
        problem.instance(i).profit;
  for (InstanceId i : s2.selected)
    profit2[static_cast<std::size_t>(problem.instance(i).network)] +=
        problem.instance(i).profit;
  for (InstanceId i : s1.selected) {
    const auto q = static_cast<std::size_t>(problem.instance(i).network);
    if (profit1[q] >= profit2[q]) combined.selected.push_back(i);
  }
  for (InstanceId i : s2.selected) {
    const auto q = static_cast<std::size_t>(problem.instance(i).network);
    if (profit1[q] < profit2[q]) combined.selected.push_back(i);
  }
  return combined;
}

}  // namespace treesched
