#include "framework/two_phase.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "framework/certify.hpp"

namespace treesched {

// ---------------------------------------------------------------------------
// GreedyMis

GreedyMis::GreedyMis(const Problem& problem)
    : problem_(&problem),
      edge_stamp_(static_cast<std::size_t>(problem.num_global_edges()), 0),
      demand_stamp_(static_cast<std::size_t>(problem.num_demands()), 0) {}

MisResult GreedyMis::run(std::span<const InstanceId> candidates) {
  ++stamp_;
  MisResult result;
  result.rounds = 1;
  for (InstanceId i : candidates) {
    const DemandInstance& inst = problem_->instance(i);
    if (demand_stamp_[static_cast<std::size_t>(inst.demand)] == stamp_)
      continue;
    bool blocked = false;
    for (EdgeId e : inst.edges) {
      if (edge_stamp_[static_cast<std::size_t>(e)] == stamp_) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    demand_stamp_[static_cast<std::size_t>(inst.demand)] = stamp_;
    for (EdgeId e : inst.edges)
      edge_stamp_[static_cast<std::size_t>(e)] = stamp_;
    result.selected.push_back(i);
  }
  return result;
}

// ---------------------------------------------------------------------------
// SolveStats

void SolveStats::merge(const SolveStats& other) {
  epochs += other.epochs;
  stages += other.stages;
  steps += other.steps;
  max_steps_in_stage = std::max(max_steps_in_stage, other.max_steps_in_stage);
  raises += other.raises;
  mis_rounds += other.mis_rounds;
  comm_rounds += other.comm_rounds;
  messages += other.messages;
  message_bytes += other.message_bytes;
  dual_objective += other.dual_objective;
  dual_upper_bound += other.dual_upper_bound;
  // 0.0 means "no run contributed a lambda yet" — on either side.  An
  // unset side must not clobber a real value through std::min (a 0.0
  // lambda would then poison every bound derived from the merged stats).
  if (lambda_observed == 0.0) {
    lambda_observed = other.lambda_observed;
  } else if (other.lambda_observed != 0.0) {
    lambda_observed = std::min(lambda_observed, other.lambda_observed);
  }
  delta = std::max(delta, other.delta);
  xi = std::max(xi, other.xi);
  stages_per_epoch = std::max(stages_per_epoch, other.stages_per_epoch);
  interference_ok = interference_ok && other.interference_ok;
  lockstep_ok = lockstep_ok && other.lockstep_ok;
  mis_ok = mis_ok && other.mis_ok;
}

// ---------------------------------------------------------------------------
// TwoPhaseEngine

TwoPhaseEngine::TwoPhaseEngine(const Problem& problem, const LayeredPlan& plan,
                               SolverConfig config, MisOracle* oracle)
    : problem_(&problem),
      plan_(&plan),
      config_(config),
      oracle_(oracle),
      active_mask_(static_cast<std::size_t>(problem.num_instances()), 1),
      demand_seen_stamp_(static_cast<std::size_t>(problem.num_demands()), 0) {
  TS_REQUIRE(problem.finalized());
  TS_REQUIRE(plan.group.size() ==
             static_cast<std::size_t>(problem.num_instances()));
  TS_REQUIRE(config_.epsilon > 0.0 && config_.epsilon < 1.0);
  if (oracle_ == nullptr) {
    default_oracle_ = std::make_unique<GreedyMis>(problem);
    oracle_ = default_oracle_.get();
  }
}

void TwoPhaseEngine::restrict_to(std::vector<InstanceId> active) {
  std::fill(active_mask_.begin(), active_mask_.end(), 0);
  for (InstanceId i : active) {
    TS_REQUIRE(i >= 0 && i < problem_->num_instances());
    active_mask_[static_cast<std::size_t>(i)] = 1;
  }
}

void TwoPhaseEngine::count_notifications(InstanceId i, SolveStats& stats) {
  // A raised processor transmits its new dual values to every processor
  // owning an instance that shares an edge with the raised path (they
  // share beta variables).  Message payload is one demand record: end
  // points, network, profit, height and the raise amount (paper: O(M)
  // bits per message); we charge 48 bytes.
  ++notify_stamp_;
  const DemandInstance& inst = problem_->instance(i);
  std::int64_t neighbors = 0;
  for (EdgeId e : inst.edges) {
    for (InstanceId other : problem_->instances_on_edge(e)) {
      const DemandId od = problem_->instance(other).demand;
      if (od == inst.demand) continue;
      if (demand_seen_stamp_[static_cast<std::size_t>(od)] == notify_stamp_)
        continue;
      demand_seen_stamp_[static_cast<std::size_t>(od)] = notify_stamp_;
      ++neighbors;
    }
  }
  stats.messages += neighbors;
  stats.message_bytes += neighbors * 48;
}

void TwoPhaseEngine::raise(InstanceId i, DualState& dual, SolveStats& stats,
                           std::vector<InstanceId>& raised_order) {
  const DemandInstance& inst = problem_->instance(i);
  const RaiseRule rule(config_.rule, *problem_, config_.raise_alpha,
                       config_.capacity_aware_raises);
  const auto& critical = plan_->critical[static_cast<std::size_t>(i)];
  const double lhs = dual.lhs(inst, rule.beta_coeff(inst));
  const double slack = inst.profit - lhs;
  TS_DCHECK(slack > 0.0);
  const double delta = rule.delta(inst, critical, slack);
  if (config_.raise_alpha) dual.raise_alpha(inst.demand, delta);
  for (EdgeId e : critical)
    dual.raise_beta(e, rule.beta_increment(inst, critical, delta, e));
  // The raise must satisfy d's constraint tightly (paper, Section 3.2).
  TS_DCHECK(std::abs(dual.lhs(inst, rule.beta_coeff(inst)) - inst.profit) <=
            1e-6 * std::max(1.0, inst.profit));
  ++stats.raises;

  if (config_.check_interference) {
    // Every previously raised overlapping instance must have a critical
    // edge on path(i) (the interference property).
    for (InstanceId prev : raised_order) {
      if (!problem_->overlap(prev, i)) continue;
      const auto& path_i = problem_->instance(i).edges;
      bool hit = false;
      for (EdgeId e : plan_->critical[static_cast<std::size_t>(prev)]) {
        if (std::binary_search(path_i.begin(), path_i.end(), e)) {
          hit = true;
          break;
        }
      }
      if (!hit) stats.interference_ok = false;
    }
  }
  raised_order.push_back(i);

  if (config_.count_messages) count_notifications(i, stats);
}

SolveResult TwoPhaseEngine::run() {
  SolveResult result;
  SolveStats& stats = result.stats;
  DualState dual(*problem_);
  const RaiseRule rule(config_.rule, *problem_, config_.raise_alpha,
                       config_.capacity_aware_raises);

  // Delta and h_min over the active instances only: the wide/narrow split
  // runs see different effective parameters.
  double h_min = 1.0;
  stats.delta = 0;
  bool any_active = false;
  for (InstanceId i = 0; i < problem_->num_instances(); ++i) {
    if (!is_active(i)) continue;
    any_active = true;
    h_min = std::min(h_min, problem_->instance(i).height);
    stats.delta =
        std::max(stats.delta,
                 static_cast<int>(plan_->critical[static_cast<std::size_t>(i)]
                                      .size()));
  }
  if (!any_active) {
    stats.lambda_observed = 1.0;
    return result;
  }

  const double xi =
      config_.xi_override > 0.0
          ? config_.xi_override
          : RaiseRule::default_xi(config_.rule, stats.delta, h_min);
  stats.xi = xi;

  int stages_per_epoch = 1;
  double fixed_threshold = 1.0;  // kExact: raise until tight (lambda = 1)
  if (config_.stage_mode == StageMode::kMultiStage) {
    // Smallest b with xi^b <= eps.
    stages_per_epoch = static_cast<int>(
        std::ceil(std::log(config_.epsilon) / std::log(xi)));
    stages_per_epoch = std::max(stages_per_epoch, 1);
  } else if (config_.stage_mode == StageMode::kSingleStagePS) {
    // Panconesi-Sozio: a single stage per epoch with retirement at
    // 1/(5+eps)-satisfaction.
    fixed_threshold = 1.0 / (5.0 + config_.epsilon);
  }
  stats.stages_per_epoch = stages_per_epoch;

  std::vector<std::vector<InstanceId>> stack;
  std::vector<InstanceId> raised_order;
  std::vector<InstanceId> members, unsatisfied;

  for (int g = 0; g < plan_->num_groups; ++g) {
    members.clear();
    for (InstanceId i : plan_->members[static_cast<std::size_t>(g)])
      if (is_active(i)) members.push_back(i);
    if (members.empty()) continue;
    ++stats.epochs;

    // Lockstep mode: the fixed per-stage budget of Lemma 5.1.
    const int lockstep_budget =
        lockstep_step_budget(*problem_, config_.lockstep_slack);

    for (int j = 1; j <= stages_per_epoch; ++j) {
      const double target = config_.stage_mode == StageMode::kMultiStage
                                ? 1.0 - std::pow(xi, j)
                                : fixed_threshold;
      ++stats.stages;
      int steps_this_stage = 0;
      for (;;) {
        unsatisfied.clear();
        for (InstanceId i : members) {
          const DemandInstance& inst = problem_->instance(i);
          const double lhs = dual.lhs(inst, rule.beta_coeff(inst));
          if (lhs < target * inst.profit - kEps * inst.profit)
            unsatisfied.push_back(i);
        }
        if (config_.lockstep) {
          if (steps_this_stage >= lockstep_budget) {
            // The budget is exhausted; Lemma 5.1 predicts U is empty.
            if (!unsatisfied.empty()) stats.lockstep_ok = false;
            break;
          }
          if (unsatisfied.empty()) {
            // Idle step: processors still execute the protocol (they
            // cannot observe global emptiness) — 2 MIS rounds + 1
            // propagation round of silence.
            ++stats.steps;
            ++steps_this_stage;
            stats.mis_rounds += 2;
            stats.comm_rounds += 3;
            continue;
          }
        } else if (unsatisfied.empty()) {
          break;
        }
        const MisResult mis = oracle_->run(
            std::span<const InstanceId>(unsatisfied.data(),
                                        unsatisfied.size()));
        ++stats.steps;
        ++steps_this_stage;
        stats.mis_rounds += mis.rounds;
        stats.comm_rounds += mis.rounds + 1;  // +1: dual propagation
        if (mis.selected.empty()) {
          // A budgeted randomized oracle can fail to decide anyone.
          // Mirror the protocol: the step's rounds are spent in silence.
          // In lockstep mode the fixed budget bounds the retries; in
          // adaptive mode no progress is possible, so the stage ends
          // short (flagged through lockstep_ok below).
          stats.mis_ok = false;
          if (config_.lockstep) continue;
          stats.lockstep_ok = false;
          break;
        }
        for (InstanceId i : mis.selected)
          raise(i, dual, stats, raised_order);
        stack.push_back(mis.selected);
        TS_REQUIRE(steps_this_stage <= config_.max_steps_per_stage);
      }
      stats.max_steps_in_stage =
          std::max(stats.max_steps_in_stage, steps_this_stage);
    }
  }

  // Certification: observed slackness over active instances and the
  // resulting feasible-dual upper bound (weak duality after scaling).
  stats.dual_objective = dual.objective();
  stats.lambda_observed =
      observed_lambda(*problem_, dual, rule, active_mask_);
  // lambda == 0 (possible only when an oracle failure left an instance
  // completely unsatisfied) admits no finite scaled-dual certificate.
  stats.dual_upper_bound =
      stats.lambda_observed > 0.0
          ? stats.dual_objective / std::min(1.0, stats.lambda_observed)
          : std::numeric_limits<double>::infinity();

  result.solution = prune_stack(*problem_, stack);
  stats.profit = result.solution.profit(*problem_);
  if (config_.keep_stack) result.raise_stack = std::move(stack);
  return result;
}

int lockstep_step_budget(const Problem& problem, int slack) {
  // Claim 5.2 budget with guards: a zero/denormal min_profit or an
  // overflowing ratio must yield a finite budget, never UB from casting
  // inf/NaN to int.  The log term is capped at 62 (a profit range beyond
  // 2^62 is outside any double's meaningful precision anyway) and the
  // whole budget clamped to >= 1 so degenerate slack cannot disable the
  // schedule.
  const double pmax = problem.max_profit();
  const double pmin = problem.min_profit();
  double log_range = 0.0;
  if (pmin > 0.0 && pmax > pmin) {
    const double ratio = pmax / pmin;
    if (std::isfinite(ratio))
      log_range = std::min(std::ceil(std::log2(ratio)), 62.0);
    else
      log_range = 62.0;
  }
  return std::max(1, 1 + slack + static_cast<int>(log_range));
}

// ---------------------------------------------------------------------------
// Convenience wrappers

SolveResult solve_with_plan(const Problem& problem, const LayeredPlan& plan,
                            const SolverConfig& config, MisOracle* oracle) {
  TwoPhaseEngine engine(problem, plan, config, oracle);
  return engine.run();
}

SolveResult solve_height_split(const Problem& problem, const LayeredPlan& plan,
                               const SolverConfig& config, MisOracle* oracle) {
  std::vector<InstanceId> wide, narrow;
  for (InstanceId i = 0; i < problem.num_instances(); ++i) {
    if (is_wide_instance(problem.instance(i)))
      wide.push_back(i);
    else
      narrow.push_back(i);
  }

  SolveResult combined;
  std::vector<SolveResult> parts;
  if (!wide.empty()) {
    SolverConfig wide_config = config;
    wide_config.rule = RaiseRuleKind::kUnit;
    TwoPhaseEngine engine(problem, plan, wide_config, oracle);
    engine.restrict_to(wide);
    parts.push_back(engine.run());
  }
  if (!narrow.empty()) {
    SolverConfig narrow_config = config;
    narrow_config.rule = RaiseRuleKind::kNarrow;
    TwoPhaseEngine engine(problem, plan, narrow_config, oracle);
    engine.restrict_to(narrow);
    parts.push_back(engine.run());
  }
  if (parts.size() == 1) return std::move(parts.front());
  TS_REQUIRE(parts.size() == 2);

  // Per-network better-of combination (paper, Theorem 6.3): every demand
  // is entirely wide or entirely narrow, so the union cannot schedule a
  // demand twice, and each network carries one sub-solution only.
  const SolveResult& s1 = parts[0];
  const SolveResult& s2 = parts[1];
  std::vector<double> profit1(static_cast<std::size_t>(problem.num_networks()),
                              0.0);
  std::vector<double> profit2 = profit1;
  for (InstanceId i : s1.solution.selected)
    profit1[static_cast<std::size_t>(problem.instance(i).network)] +=
        problem.instance(i).profit;
  for (InstanceId i : s2.solution.selected)
    profit2[static_cast<std::size_t>(problem.instance(i).network)] +=
        problem.instance(i).profit;
  for (InstanceId i : s1.solution.selected) {
    const auto q = static_cast<std::size_t>(problem.instance(i).network);
    if (profit1[q] >= profit2[q]) combined.solution.selected.push_back(i);
  }
  for (InstanceId i : s2.solution.selected) {
    const auto q = static_cast<std::size_t>(problem.instance(i).network);
    if (profit1[q] < profit2[q]) combined.solution.selected.push_back(i);
  }
  combined.stats = s1.stats;
  combined.stats.merge(s2.stats);
  combined.stats.profit = combined.solution.profit(problem);
  return combined;
}

}  // namespace treesched
