// Per-processor shard of the dual state (the distributed counterpart of
// framework/dual_state.hpp).
//
// In the message-level protocol no processor holds the global alpha/beta
// vectors.  Instance d's processor stores exactly the variables its own
// dual constraint reads: alpha(a_d) and beta(e) for every e on path(d).
// A raise is applied locally and shipped to the conflicting neighbors as
// a kTagRaise message (encode_raise below); a receiving shard applies the
// alpha increment when the demand matches and each beta increment whose
// edge lies on its own path.
//
// Completeness of the propagation: a raise of instance j touches
// alpha(a_j) and beta(e) for e in pi(j) subset path(j).  Any instance i
// whose constraint reads one of those variables either shares j's demand
// or shares an edge with path(j) — i.e. i conflicts with j and is, by
// discovery (dist/discovery.hpp), one of j's neighbors.  Hence every
// shard's local LHS equals the LHS the central DualState would report,
// one propagation round after the raise.  tests/test_discovery.cpp
// asserts this parity against a central replay.
#pragma once

#include <span>
#include <vector>

#include "common/prelude.hpp"
#include "model/problem.hpp"

namespace treesched {

class DualShard {
 public:
  DualShard() = default;
  // `path`: the instance's sorted global edge ids (DemandInstance::edges).
  DualShard(DemandId demand, std::span<const EdgeId> path)
      : demand_(demand),
        edges_(path.begin(), path.end()),
        beta_(path.size(), 0.0) {}

  DemandId demand() const { return demand_; }
  double alpha() const { return alpha_; }
  double beta(EdgeId e) const;  // 0 when e is off the local path
  double beta_sum() const { return beta_sum_; }

  // LHS of the local dual constraint under the rule's beta coefficient.
  double lhs(double beta_coeff) const {
    return alpha_ + beta_coeff * beta_sum_;
  }

  // Ordered beta sum: accumulates beta_ in ascending-edge order, exactly
  // the walk DualState::beta_sum performs over the same path.  The running
  // beta_sum_ adds increments in *arrival* order instead, which is the
  // same real number but not always the same double.  The incremental
  // engine uses this form so its satisfaction tests and raise amounts are
  // bit-identical to the central-DualState reference engine — the parity
  // suite (tests/test_engine_parity.cpp) compares them with ==, not
  // tolerances.
  double beta_sum_ordered() const {
    double s = 0.0;
    for (double b : beta_) s += b;
    return s;
  }
  double lhs_ordered(double beta_coeff) const {
    return alpha_ + beta_coeff * beta_sum_ordered();
  }

  void raise_alpha(double amount);
  // Applies the increment when e is on the local path; returns whether it
  // was.  (Remote raises legitimately carry edges this shard ignores.)
  bool raise_beta(EdgeId e, double amount);
  // Index-addressed raise for callers that precomputed the edge's position
  // on the local path (the incremental engine's CSR-driven propagation
  // stores the position next to each edge->instance entry, making every
  // application O(1) instead of a binary search).
  void raise_beta_at(int index, double amount) {
    TS_DCHECK(index >= 0 &&
              index < static_cast<int>(beta_.size()));
    TS_DCHECK(amount >= 0.0);
    beta_[static_cast<std::size_t>(index)] += amount;
    beta_sum_ += amount;
  }
  int path_length() const { return static_cast<int>(edges_.size()); }

  // Applies a neighbor's raise notification (encode_raise wire format).
  void apply_raise(std::span<const double> payload);

 private:
  int index_of(EdgeId e) const;

  DemandId demand_ = -1;
  std::vector<EdgeId> edges_;  // sorted ascending
  std::vector<double> beta_;   // parallel to edges_
  double alpha_ = 0.0;
  double beta_sum_ = 0.0;
};

// Wire format of a kTagRaise payload:
//   {demand, alpha_increment, e_1, beta_inc_1, ..., e_k, beta_inc_k}
// with one (edge, increment) pair per critical edge of the raise.
std::vector<double> encode_raise(DemandId demand, double alpha_increment,
                                 std::span<const EdgeId> critical,
                                 std::span<const double> increments);

}  // namespace treesched
