// Phase 2 of the framework (paper, Section 3.2): pop the independent sets
// in reverse raise order and keep each instance that preserves
// feasibility.  Feasibility is checked against the true heights and
// capacities, so the output solution is feasible for every problem
// variant (unit, arbitrary-height, non-uniform bandwidth) by
// construction; the approximation analysis is what changes per variant.
#include <algorithm>

#include "framework/two_phase.hpp"

namespace treesched {

Solution prune_stack(const Problem& problem,
                     const std::vector<std::vector<InstanceId>>& stack) {
  Solution solution;
  LoadTracker tracker(problem);
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    for (InstanceId i : *it) {
      if (tracker.fits(i)) {
        tracker.add(i);
        solution.selected.push_back(i);
      }
    }
  }
  return solution;
}

Solution prune_stack_forward(
    const Problem& problem,
    const std::vector<std::vector<InstanceId>>& stack) {
  Solution solution;
  LoadTracker tracker(problem);
  for (const auto& level : stack) {
    for (InstanceId i : level) {
      if (tracker.fits(i)) {
        tracker.add(i);
        solution.selected.push_back(i);
      }
    }
  }
  return solution;
}

Solution prune_by_profit(const Problem& problem,
                         std::vector<InstanceId> candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [&](InstanceId a, InstanceId b) {
              return problem.instance(a).profit > problem.instance(b).profit;
            });
  Solution solution;
  LoadTracker tracker(problem);
  for (InstanceId i : candidates) {
    if (tracker.fits(i)) {
      tracker.add(i);
      solution.selected.push_back(i);
    }
  }
  return solution;
}

}  // namespace treesched
