// Dual variable state for the primal-dual framework (paper, Section 3).
//
// alpha(a): one variable per demand (the "at most one instance per demand"
// constraints); beta(e): one variable per global edge (the bandwidth
// constraints).  The dual objective is sum alpha(a) + sum c(e) beta(e) —
// with uniform capacities c == 1 this is the paper's objective; the
// capacity weights implement the non-uniform LP of DESIGN.md Section 6.
//
// The LHS of the dual constraint of instance d is
//     alpha(a_d) + coeff * sum_{e on path(d)} beta(e),
// where coeff = 1 for the unit-height LP (Section 3.1) and coeff = h(d)
// for the arbitrary-height LP (Section 6.1).  The raising rules supply
// the coefficient.
#pragma once

#include <vector>

#include "common/prelude.hpp"
#include "model/problem.hpp"

namespace treesched {

class DualState {
 public:
  explicit DualState(const Problem& problem);

  double alpha(DemandId a) const {
    return alpha_[static_cast<std::size_t>(a)];
  }
  double beta(EdgeId e) const { return beta_[static_cast<std::size_t>(e)]; }

  // sum of beta over the instance's path edges.
  double beta_sum(const DemandInstance& inst) const;

  // LHS of the dual constraint of `inst` under the given beta coefficient.
  double lhs(const DemandInstance& inst, double beta_coeff) const;

  void raise_alpha(DemandId a, double amount);
  void raise_beta(EdgeId e, double amount);

  // Dual objective sum alpha + sum c(e) beta(e), maintained incrementally.
  double objective() const { return objective_; }

  const Problem& problem() const { return *problem_; }

 private:
  const Problem* problem_;
  std::vector<double> alpha_;
  std::vector<double> beta_;
  double objective_ = 0.0;
};

}  // namespace treesched
