// Raising rules of the two-phase framework.
//
// kUnit (paper, Section 3.2) — used for the unit-height case and for the
// *wide* instances of the arbitrary-height case (two overlapping wide
// instances can never coexist, so the unit LP relaxes the wide problem):
//     delta = slack / (1 + sum_{e in pi(d)} 1/c(e))
//     alpha(a_d) += delta;   beta(e) += delta / c(e)   for e in pi(d).
// With uniform c == 1 this is exactly delta = slack/(|pi|+1), beta += delta.
//
// kNarrow (paper, Section 6.1) — for instances with h(d) <= 1/2:
//     delta = slack / (1 + 2 h(d) |pi(d)| sum_{e in pi(d)} 1/c(e))
//     alpha(a_d) += delta;   beta(e) += 2 |pi(d)| delta / c(e).
// With uniform c == 1: delta = slack/(1 + 2 h |pi|^2), beta += 2|pi|delta.
//
// Both rules satisfy the constraint of d tightly (LHS rises by exactly
// `slack`), and both raise the dual objective by at most price_factor *
// delta: Delta+1 for kUnit, 1+2 Delta^2 for kNarrow — the quantities in
// Lemma 3.1 and Lemma 6.1.  The capacity-aware forms are the DESIGN.md
// Section 6 generalization and reduce to the paper's rules when c == 1.
#pragma once

#include <span>
#include <vector>

#include "common/prelude.hpp"
#include "model/problem.hpp"

namespace treesched {

enum class RaiseRuleKind { kUnit, kNarrow };

const char* to_string(RaiseRuleKind kind);

class RaiseRule {
 public:
  // `raise_alpha = false` implements the Appendix-A single-network
  // refinement (alpha is never raised; the price factor drops by 1,
  // giving the 2-approximation for one tree).  It is only sound when no
  // demand has two instances.  `capacity_aware = false` applies the
  // paper's uniform-capacity increments verbatim even on non-uniform
  // edges — the "naive" arm of the bench_t5 ablation.
  RaiseRule(RaiseRuleKind kind, const Problem& problem,
            bool raise_alpha = true, bool capacity_aware = true)
      : kind_(kind),
        problem_(&problem),
        raise_alpha_(raise_alpha),
        capacity_aware_(capacity_aware) {}

  RaiseRuleKind kind() const { return kind_; }
  bool raises_alpha() const { return raise_alpha_; }

  // Coefficient of the beta-sum in the dual constraint LHS: 1 for the
  // unit LP, h(d) for the height LP.
  double beta_coeff(const DemandInstance& inst) const {
    return kind_ == RaiseRuleKind::kUnit ? 1.0 : inst.height;
  }

  // The tight raise amount for the given slack and critical set.
  double delta(const DemandInstance& inst, std::span<const EdgeId> critical,
               double slack) const;

  // beta increment applied to critical edge e when raising by delta.
  double beta_increment(const DemandInstance& inst,
                        std::span<const EdgeId> critical, double delta,
                        EdgeId e) const;

  // Upper bound on (dual objective increase) / delta for critical sets of
  // size at most `delta_size` — the denominator constant of the
  // approximation guarantee.
  double price_factor(int delta_size) const;

  // Approximation-ratio bound of Lemma 3.1 / Lemma 6.1 for a run with
  // critical-set size `delta_size` and slackness lambda.
  double ratio_bound(int delta_size, double lambda) const {
    return price_factor(delta_size) / lambda;
  }

  // Computes one tight raise in a single call: the raise amount for the
  // given slack and the per-critical-edge beta increments (written to
  // `increments`, resized to critical.size()).  This is the one place the
  // raise arithmetic lives — the modeled engine (central and incremental
  // paths alike) and the message-level protocol all call it, so the three
  // implementations cannot drift apart numerically.
  double tight_raise(const DemandInstance& inst,
                     std::span<const EdgeId> critical, double slack,
                     std::vector<double>& increments) const;

  // The increments-only form, for replaying a raise whose amount is
  // already known (the parallel-epoch merge): identical arithmetic and
  // order as tight_raise, which delegates here.
  void beta_increments(const DemandInstance& inst,
                       std::span<const EdgeId> critical, double delta,
                       std::vector<double>& increments) const;

  // The per-stage decay base xi of the multi-stage schedule (Section 5 /
  // Section 6): 2(Delta+1)/(2(Delta+1)+1) for kUnit (14/15 when Delta=6,
  // 8/9 when Delta=3) and C/(C+h_min) with C = 1+2 Delta^2 for kNarrow.
  // Consumed through derive_stage_params (two_phase.hpp), the one
  // schedule derivation shared by the modeled engine and the
  // message-level protocol — like tight_raise below, a single source so
  // the implementations cannot drift.
  static double default_xi(RaiseRuleKind kind, int delta_size, double h_min);

 private:
  double effective_capacity(EdgeId e) const {
    return capacity_aware_ ? problem_->capacity(e) : 1.0;
  }

  RaiseRuleKind kind_;
  const Problem* problem_;
  bool raise_alpha_;
  bool capacity_aware_;
};

}  // namespace treesched
