// Dual certification helpers (paper, Lemma 3.1 proof): the dual
// assignment produced by phase 1 is generally infeasible, but scaling it
// by 1/lambda — where lambda is the minimum satisfaction level over all
// (active) instances — yields a feasible dual whose objective upper
// bounds OPT by weak duality.  These helpers compute the observed lambda
// and validate satisfaction levels; the benchmarks use the resulting
// certified bound wherever exact optima are out of reach.
#pragma once

#include <span>
#include <vector>

#include "decomp/layered.hpp"
#include "framework/dual_state.hpp"
#include "framework/raise_rule.hpp"
#include "model/problem.hpp"

namespace treesched {

// min over active instances of LHS(d)/p(d); instances with mask 0 are
// ignored.  An empty active set yields 1.0.
double observed_lambda(const Problem& problem, const DualState& dual,
                       const RaiseRule& rule,
                       const std::vector<char>& active_mask);

// True iff every active instance is `level`-satisfied (paper notation:
// LHS >= level * p(d), with relative tolerance).
bool all_satisfied(const Problem& problem, const DualState& dual,
                   const RaiseRule& rule, const std::vector<char>& active_mask,
                   double level);

// Degraded-mode certificate validation (wire protocol over a lossy
// transport).  Under message loss a processor's shard can miss incoming
// raise propagations, so its reported LHS — and hence the pass's
// reported lambda — can only *undercount* the true dual assignment: the
// raises actually applied are exactly (stack, amounts), and every
// increment is non-negative.  This helper replays the logged raise
// amounts into a central DualState (the ground-truth dual vector the
// degraded run really produced) and checks the shard-reported values
// are conservative:
//   reported_lhs[i] <= replay_lhs[i] + tol   for every instance, and
//   reported_lambda <= replay lambda over active + tol.
// When that holds, scaling the true dual by 1/reported_lambda is still
// feasible (reported_lambda <= true lambda), so the degraded run's
// certified bound remains a valid upper bound on OPT by weak duality —
// the degraded-mode contract.
struct ShardCertificate {
  bool valid = false;
  double replay_lambda = 1.0;  // lambda of the central replay
};
ShardCertificate validate_shard_certificate(
    const Problem& problem, const LayeredPlan& plan, const RaiseRule& rule,
    const std::vector<std::vector<InstanceId>>& stack,
    const std::vector<std::vector<double>>& amounts,
    std::span<const double> reported_lhs, double reported_lambda,
    const std::vector<char>& active_mask);

}  // namespace treesched
