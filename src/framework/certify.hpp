// Dual certification helpers (paper, Lemma 3.1 proof): the dual
// assignment produced by phase 1 is generally infeasible, but scaling it
// by 1/lambda — where lambda is the minimum satisfaction level over all
// (active) instances — yields a feasible dual whose objective upper
// bounds OPT by weak duality.  These helpers compute the observed lambda
// and validate satisfaction levels; the benchmarks use the resulting
// certified bound wherever exact optima are out of reach.
#pragma once

#include <vector>

#include "framework/dual_state.hpp"
#include "framework/raise_rule.hpp"
#include "model/problem.hpp"

namespace treesched {

// min over active instances of LHS(d)/p(d); instances with mask 0 are
// ignored.  An empty active set yields 1.0.
double observed_lambda(const Problem& problem, const DualState& dual,
                       const RaiseRule& rule,
                       const std::vector<char>& active_mask);

// True iff every active instance is `level`-satisfied (paper notation:
// LHS >= level * p(d), with relative tolerance).
bool all_satisfied(const Problem& problem, const DualState& dual,
                   const RaiseRule& rule, const std::vector<char>& active_mask,
                   double level);

}  // namespace treesched
