#include "framework/certify.hpp"

#include <algorithm>

namespace treesched {

double observed_lambda(const Problem& problem, const DualState& dual,
                       const RaiseRule& rule,
                       const std::vector<char>& active_mask) {
  double lambda = 1.0;
  bool any = false;
  for (InstanceId i = 0; i < problem.num_instances(); ++i) {
    if (!active_mask[static_cast<std::size_t>(i)]) continue;
    const DemandInstance& inst = problem.instance(i);
    const double lhs = dual.lhs(inst, rule.beta_coeff(inst));
    const double level = lhs / inst.profit;
    lambda = any ? std::min(lambda, level) : level;
    any = true;
  }
  return any ? lambda : 1.0;
}

bool all_satisfied(const Problem& problem, const DualState& dual,
                   const RaiseRule& rule, const std::vector<char>& active_mask,
                   double level) {
  for (InstanceId i = 0; i < problem.num_instances(); ++i) {
    if (!active_mask[static_cast<std::size_t>(i)]) continue;
    const DemandInstance& inst = problem.instance(i);
    const double lhs = dual.lhs(inst, rule.beta_coeff(inst));
    if (lhs < level * inst.profit - kEps * inst.profit) return false;
  }
  return true;
}

}  // namespace treesched
