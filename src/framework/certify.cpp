#include "framework/certify.hpp"

#include <algorithm>
#include <cmath>

#include "common/prelude.hpp"

namespace treesched {

double observed_lambda(const Problem& problem, const DualState& dual,
                       const RaiseRule& rule,
                       const std::vector<char>& active_mask) {
  double lambda = 1.0;
  bool any = false;
  for (InstanceId i = 0; i < problem.num_instances(); ++i) {
    if (!active_mask[static_cast<std::size_t>(i)]) continue;
    const DemandInstance& inst = problem.instance(i);
    const double lhs = dual.lhs(inst, rule.beta_coeff(inst));
    const double level = lhs / inst.profit;
    lambda = any ? std::min(lambda, level) : level;
    any = true;
  }
  return any ? lambda : 1.0;
}

bool all_satisfied(const Problem& problem, const DualState& dual,
                   const RaiseRule& rule, const std::vector<char>& active_mask,
                   double level) {
  for (InstanceId i = 0; i < problem.num_instances(); ++i) {
    if (!active_mask[static_cast<std::size_t>(i)]) continue;
    const DemandInstance& inst = problem.instance(i);
    const double lhs = dual.lhs(inst, rule.beta_coeff(inst));
    if (lhs < level * inst.profit - kEps * inst.profit) return false;
  }
  return true;
}

ShardCertificate validate_shard_certificate(
    const Problem& problem, const LayeredPlan& plan, const RaiseRule& rule,
    const std::vector<std::vector<InstanceId>>& stack,
    const std::vector<std::vector<double>>& amounts,
    std::span<const double> reported_lhs, double reported_lambda,
    const std::vector<char>& active_mask) {
  TS_REQUIRE(stack.size() == amounts.size());
  ShardCertificate cert;
  // Replay the logged raises into a central DualState: the ground-truth
  // aggregate dual of the degraded run.  Amounts are replayed verbatim
  // (beta_increments, not tight_raise) — the slack each winner saw on its
  // possibly-stale shard is exactly what it applied and shipped, so the
  // replay reconstructs the true dual vector regardless of which
  // propagations were lost.
  DualState dual(problem);
  std::vector<double> increments;
  for (std::size_t s = 0; s < stack.size(); ++s) {
    const auto& step = stack[s];
    const auto& amount = amounts[s];
    TS_REQUIRE(step.size() == amount.size());
    for (std::size_t k = 0; k < step.size(); ++k) {
      const InstanceId i = step[k];
      const DemandInstance& inst = problem.instance(i);
      const auto& critical = plan.critical[static_cast<std::size_t>(i)];
      rule.beta_increments(inst,
                           {critical.data(), critical.size()},
                           amount[k], increments);
      dual.raise_alpha(inst.demand, amount[k]);
      for (std::size_t c = 0; c < critical.size(); ++c)
        dual.raise_beta(critical[c], increments[c]);
    }
  }
  cert.replay_lambda = observed_lambda(problem, dual, rule, active_mask);
  // Conservativeness: a shard that missed raise propagations can only
  // report a *smaller* LHS than the replay (every lost increment is
  // non-negative).  The tolerance absorbs subset-sum float rounding.
  bool ok = reported_lambda <= cert.replay_lambda + kEps;
  for (InstanceId i = 0; ok && i < problem.num_instances(); ++i) {
    const DemandInstance& inst = problem.instance(i);
    const double replay = dual.lhs(inst, rule.beta_coeff(inst));
    const double tol = kEps * (1.0 + std::abs(replay));
    if (reported_lhs[static_cast<std::size_t>(i)] > replay + tol) ok = false;
  }
  cert.valid = ok;
  return cert;
}

}  // namespace treesched
