#include "framework/component_forest.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace treesched {

int ComponentForest::find(int x) {
  // Path halving; roots are canonicalized to the smallest id by unite
  // below, so find(i) of any member returns the component's minimum
  // active instance id.
  while (parent_[static_cast<std::size_t>(x)] != x) {
    parent_[static_cast<std::size_t>(x)] =
        parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
    x = parent_[static_cast<std::size_t>(x)];
  }
  return x;
}

void ComponentForest::build(const Problem& problem, const LayeredPlan& plan,
                            const std::vector<char>& active_mask) {
  TRACE_SPAN1("forest", "build", "instances", problem.num_instances());
  TS_REQUIRE(problem.finalized());
  const int n = problem.num_instances();
  TS_REQUIRE(plan.group.size() == static_cast<std::size_t>(n));
  TS_REQUIRE(active_mask.size() == static_cast<std::size_t>(n));
  num_groups_ = plan.num_groups;

  parent_.assign(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i)
    if (active_mask[static_cast<std::size_t>(i)]) parent_[static_cast<std::size_t>(i)] = i;

  const auto unite = [&](int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Smaller id becomes the root: the canonical representative every
    // derived ordering below keys on.
    if (a < b)
      parent_[static_cast<std::size_t>(b)] = a;
    else
      parent_[static_cast<std::size_t>(a)] = b;
  };

  // Fused active/group lookup: one load per clique entry on the hot
  // walk below (-1 = inactive).
  group_of_.assign(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i)
    if (active_mask[static_cast<std::size_t>(i)])
      group_of_[static_cast<std::size_t>(i)] =
          plan.group[static_cast<std::size_t>(i)];

  // Clique chaining, stamped per clique so the per-group scratch never
  // needs clearing.  Conflicts only matter *within* a group (an epoch
  // processes one group), so each per-edge / per-demand clique is
  // chained separately per group.
  group_last_.assign(static_cast<std::size_t>(std::max(num_groups_, 1)), -1);
  group_stamp_.assign(static_cast<std::size_t>(std::max(num_groups_, 1)), 0);
  int stamp = 0;

  const auto chain = [&](std::span<const InstanceId> clique) {
    ++stamp;
    for (InstanceId i : clique) {
      const int group = group_of_[static_cast<std::size_t>(i)];
      if (group < 0) continue;
      const auto g = static_cast<std::size_t>(group);
      if (group_stamp_[g] == stamp) unite(i, group_last_[g]);
      group_stamp_[g] = stamp;
      group_last_[g] = i;
    }
  };

  bool all_active = true;
  for (int i = 0; i < n && all_active; ++i)
    all_active = active_mask[static_cast<std::size_t>(i)] != 0;
  if (all_active) {
    for (DemandId d = 0; d < problem.num_demands(); ++d) {
      const auto& sibs = problem.instances_of_demand(d);
      chain({sibs.data(), sibs.size()});
    }
    // One contiguous walk over the CSR inverted index — the same cliques
    // split_components reaches through per-member path walks, but bucket
    // by bucket in index order.
    for (EdgeId e = 0; e < problem.num_global_edges(); ++e)
      chain(problem.instances_on_edge(e));
  } else {
    // Restricted mask (the wide/narrow split's regime): a CSR walk would
    // touch every instance's entries just to discard the inactive ones,
    // so walk the *active members'* paths instead — the same per-group
    // clique chains split_components runs, but once for all groups.
    edge_last_.assign(static_cast<std::size_t>(problem.num_global_edges()),
                      -1);
    edge_stamp_.assign(edge_last_.size(), 0);
    demand_last_.assign(static_cast<std::size_t>(problem.num_demands()), -1);
    demand_stamp_.assign(demand_last_.size(), 0);
    int walk_stamp = 0;
    for (int g = 0; g < num_groups_; ++g) {
      ++walk_stamp;
      for (InstanceId i : plan.members[static_cast<std::size_t>(g)]) {
        if (group_of_[static_cast<std::size_t>(i)] < 0) continue;
        const DemandInstance& inst = problem.instance(i);
        const auto d = static_cast<std::size_t>(inst.demand);
        if (demand_stamp_[d] == walk_stamp) unite(i, demand_last_[d]);
        demand_stamp_[d] = walk_stamp;
        demand_last_[d] = i;
        for (EdgeId e : inst.edges) {
          const auto ge = static_cast<std::size_t>(e);
          if (edge_stamp_[ge] == walk_stamp) unite(i, edge_last_[ge]);
          edge_stamp_[ge] = walk_stamp;
          edge_last_[ge] = i;
        }
      }
    }
  }

  // Flatten per group: components ordered by first member rank, members
  // in ascending rank.  Two passes over the plan's member lists: count
  // component sizes, then fill with cursors.
  comp_of_root_.assign(static_cast<std::size_t>(n), -1);
  root_stamp_.assign(static_cast<std::size_t>(n), -1);
  group_first_comp_.assign(static_cast<std::size_t>(num_groups_) + 1, 0);
  std::vector<std::int64_t> comp_size;
  for (int g = 0; g < num_groups_; ++g) {
    int comps_here = 0;
    for (InstanceId i : plan.members[static_cast<std::size_t>(g)]) {
      if (!active_mask[static_cast<std::size_t>(i)]) continue;
      const auto root = static_cast<std::size_t>(find(i));
      if (root_stamp_[root] != g) {
        root_stamp_[root] = g;
        comp_of_root_[root] =
            group_first_comp_[static_cast<std::size_t>(g)] + comps_here;
        ++comps_here;
        comp_size.push_back(0);
      }
      ++comp_size[static_cast<std::size_t>(comp_of_root_[root])];
    }
    group_first_comp_[static_cast<std::size_t>(g) + 1] =
        group_first_comp_[static_cast<std::size_t>(g)] + comps_here;
  }

  const int total_comps = group_first_comp_[static_cast<std::size_t>(num_groups_)];
  comp_member_begin_.assign(static_cast<std::size_t>(total_comps) + 1, 0);
  for (int c = 0; c < total_comps; ++c)
    comp_member_begin_[static_cast<std::size_t>(c) + 1] =
        comp_member_begin_[static_cast<std::size_t>(c)] +
        comp_size[static_cast<std::size_t>(c)];
  member_ranks_.resize(static_cast<std::size_t>(comp_member_begin_.back()));
  member_ids_.resize(member_ranks_.size());

  std::vector<std::int64_t> cursor(comp_member_begin_.begin(),
                                   comp_member_begin_.end() - 1);
  for (int g = 0; g < num_groups_; ++g) {
    int rank = 0;
    for (InstanceId i : plan.members[static_cast<std::size_t>(g)]) {
      if (!active_mask[static_cast<std::size_t>(i)]) continue;
      const int c = comp_of_root_[static_cast<std::size_t>(find(i))];
      const auto at = static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++);
      member_ranks_[at] = rank;
      member_ids_[at] = i;
      ++rank;
    }
  }
  built_ = true;
}

}  // namespace treesched
