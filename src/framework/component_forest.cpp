#include "framework/component_forest.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace treesched {

int ComponentForest::find(int x) {
  // Path halving; roots are canonicalized to the smallest id by unite
  // below, so find(i) of any member returns the component's minimum
  // active instance id.
  while (parent_[static_cast<std::size_t>(x)] != x) {
    parent_[static_cast<std::size_t>(x)] =
        parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
    x = parent_[static_cast<std::size_t>(x)];
  }
  return x;
}

void ComponentForest::build(const Problem& problem, const LayeredPlan& plan,
                            const std::vector<char>& active_mask) {
  TRACE_SPAN1("forest", "build", "instances", problem.num_instances());
  TS_REQUIRE(problem.finalized());
  const int n = problem.num_instances();
  TS_REQUIRE(plan.group.size() == static_cast<std::size_t>(n));
  TS_REQUIRE(active_mask.size() == static_cast<std::size_t>(n));
  num_groups_ = plan.num_groups;

  parent_.assign(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i)
    if (active_mask[static_cast<std::size_t>(i)]) parent_[static_cast<std::size_t>(i)] = i;

  const auto unite = [&](int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Smaller id becomes the root: the canonical representative every
    // derived ordering below keys on.
    if (a < b)
      parent_[static_cast<std::size_t>(b)] = a;
    else
      parent_[static_cast<std::size_t>(a)] = b;
  };

  // Fused active/group lookup: one load per clique entry on the hot
  // walk below (-1 = inactive).
  group_of_.assign(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i)
    if (active_mask[static_cast<std::size_t>(i)])
      group_of_[static_cast<std::size_t>(i)] =
          plan.group[static_cast<std::size_t>(i)];

  // Clique chaining, stamped per clique so the per-group scratch never
  // needs clearing.  Conflicts only matter *within* a group (an epoch
  // processes one group), so each per-edge / per-demand clique is
  // chained separately per group.
  group_last_.assign(static_cast<std::size_t>(std::max(num_groups_, 1)), -1);
  group_stamp_.assign(static_cast<std::size_t>(std::max(num_groups_, 1)), 0);
  int stamp = 0;

  const auto chain = [&](std::span<const InstanceId> clique) {
    ++stamp;
    for (InstanceId i : clique) {
      const int group = group_of_[static_cast<std::size_t>(i)];
      if (group < 0) continue;
      const auto g = static_cast<std::size_t>(group);
      if (group_stamp_[g] == stamp) unite(i, group_last_[g]);
      group_stamp_[g] = stamp;
      group_last_[g] = i;
    }
  };

  bool all_active = true;
  for (int i = 0; i < n && all_active; ++i)
    all_active = active_mask[static_cast<std::size_t>(i)] != 0;
  if (all_active) {
    for (DemandId d = 0; d < problem.num_demands(); ++d) {
      const auto& sibs = problem.instances_of_demand(d);
      chain({sibs.data(), sibs.size()});
    }
    // One contiguous walk over the CSR inverted index — the same cliques
    // split_components reaches through per-member path walks, but bucket
    // by bucket in index order.
    for (EdgeId e = 0; e < problem.num_global_edges(); ++e)
      chain(problem.instances_on_edge(e));
  } else {
    // Restricted mask (the wide/narrow split's regime): a CSR walk would
    // touch every instance's entries just to discard the inactive ones,
    // so walk the *active members'* paths instead — the same per-group
    // clique chains split_components runs, but once for all groups.
    edge_last_.assign(static_cast<std::size_t>(problem.num_global_edges()),
                      -1);
    edge_stamp_.assign(edge_last_.size(), 0);
    demand_last_.assign(static_cast<std::size_t>(problem.num_demands()), -1);
    demand_stamp_.assign(demand_last_.size(), 0);
    int walk_stamp = 0;
    for (int g = 0; g < num_groups_; ++g) {
      ++walk_stamp;
      for (InstanceId i : plan.members[static_cast<std::size_t>(g)]) {
        if (group_of_[static_cast<std::size_t>(i)] < 0) continue;
        const DemandInstance& inst = problem.instance(i);
        const auto d = static_cast<std::size_t>(inst.demand);
        if (demand_stamp_[d] == walk_stamp) unite(i, demand_last_[d]);
        demand_stamp_[d] = walk_stamp;
        demand_last_[d] = i;
        for (EdgeId e : inst.edges) {
          const auto ge = static_cast<std::size_t>(e);
          if (edge_stamp_[ge] == walk_stamp) unite(i, edge_last_[ge]);
          edge_stamp_[ge] = walk_stamp;
          edge_last_[ge] = i;
        }
      }
    }
  }

  // Flatten per group: components ordered by first member rank, members
  // in ascending rank.  Two passes over the plan's member lists: count
  // component sizes, then fill with cursors.
  comp_of_root_.assign(static_cast<std::size_t>(n), -1);
  root_stamp_.assign(static_cast<std::size_t>(n), -1);
  group_first_comp_.assign(static_cast<std::size_t>(num_groups_) + 1, 0);
  std::vector<std::int64_t> comp_size;
  for (int g = 0; g < num_groups_; ++g) {
    int comps_here = 0;
    for (InstanceId i : plan.members[static_cast<std::size_t>(g)]) {
      if (!active_mask[static_cast<std::size_t>(i)]) continue;
      const auto root = static_cast<std::size_t>(find(i));
      if (root_stamp_[root] != g) {
        root_stamp_[root] = g;
        comp_of_root_[root] =
            group_first_comp_[static_cast<std::size_t>(g)] + comps_here;
        ++comps_here;
        comp_size.push_back(0);
      }
      ++comp_size[static_cast<std::size_t>(comp_of_root_[root])];
    }
    group_first_comp_[static_cast<std::size_t>(g) + 1] =
        group_first_comp_[static_cast<std::size_t>(g)] + comps_here;
  }

  const int total_comps = group_first_comp_[static_cast<std::size_t>(num_groups_)];
  comp_member_begin_.assign(static_cast<std::size_t>(total_comps) + 1, 0);
  for (int c = 0; c < total_comps; ++c)
    comp_member_begin_[static_cast<std::size_t>(c) + 1] =
        comp_member_begin_[static_cast<std::size_t>(c)] +
        comp_size[static_cast<std::size_t>(c)];
  member_ranks_.resize(static_cast<std::size_t>(comp_member_begin_.back()));
  member_ids_.resize(member_ranks_.size());

  std::vector<std::int64_t> cursor(comp_member_begin_.begin(),
                                   comp_member_begin_.end() - 1);
  for (int g = 0; g < num_groups_; ++g) {
    int rank = 0;
    for (InstanceId i : plan.members[static_cast<std::size_t>(g)]) {
      if (!active_mask[static_cast<std::size_t>(i)]) continue;
      const int c = comp_of_root_[static_cast<std::size_t>(find(i))];
      const auto at = static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++);
      member_ranks_[at] = rank;
      member_ids_[at] = i;
      ++rank;
    }
  }
  refill_member_index(n);
  // Build left stamps in [1, num_groups_] on the edge/demand scratch and
  // group ids in root_stamp_; update()'s monotone counter starts above
  // both so nothing ever needs re-clearing.
  update_stamp_ = num_groups_ + 1;
  built_ = true;
}

void ComponentForest::refill_member_index(int n) {
  comp_of_member_.assign(static_cast<std::size_t>(n), -1);
  const int comps = total_components();
  for (int c = 0; c < comps; ++c)
    for (InstanceId i : component_members(c))
      comp_of_member_[static_cast<std::size_t>(i)] = c;
}

void ComponentForest::update(const Problem& problem, const LayeredPlan& plan,
                             const std::vector<char>& active_mask,
                             std::span<const InstanceId> added,
                             std::span<const InstanceId> removed) {
  if (!built_ || plan.num_groups != num_groups_) {
    build(problem, plan, active_mask);
    return;
  }
  TRACE_SPAN2("forest", "update", "added", added.size(), "removed",
              removed.size());
  TS_REQUIRE(problem.finalized());
  const int n = problem.num_instances();
  TS_REQUIRE(plan.group.size() == static_cast<std::size_t>(n));
  TS_REQUIRE(active_mask.size() == static_cast<std::size_t>(n));

  // The problem grows by append (online arrivals materialize as new
  // instance ids past the old count); id-indexed scratch grows with it.
  parent_.resize(static_cast<std::size_t>(n), -1);
  group_of_.resize(static_cast<std::size_t>(n), -1);
  comp_of_member_.resize(static_cast<std::size_t>(n), -1);
  comp_of_root_.resize(static_cast<std::size_t>(n), -1);
  root_stamp_.resize(static_cast<std::size_t>(n), -1);
  edge_last_.resize(static_cast<std::size_t>(problem.num_global_edges()), -1);
  edge_stamp_.resize(edge_last_.size(), 0);
  demand_last_.resize(static_cast<std::size_t>(problem.num_demands()), -1);
  demand_stamp_.resize(demand_last_.size(), 0);

  // Delta marking.  A removed member dirties its own component (it may
  // split); an added instance dirties every old component it shares an
  // edge or a demand with *in its own group* (they may merge with it).
  // Everything else is provably disjoint from the walked set: a clean
  // member sharing an edge/demand with a dirty member would have been in
  // the same (dirty) component, and one sharing with an added instance
  // would have been marked here.
  touched_group_.assign(static_cast<std::size_t>(std::max(num_groups_, 1)),
                        0);
  dirty_comp_.assign(static_cast<std::size_t>(total_components()), 0);
  for (InstanceId r : removed) {
    TS_DCHECK(!active_mask[static_cast<std::size_t>(r)]);
    group_of_[static_cast<std::size_t>(r)] = -1;
    touched_group_[static_cast<std::size_t>(
        plan.group[static_cast<std::size_t>(r)])] = 1;
    const int c = comp_of_member_[static_cast<std::size_t>(r)];
    if (c >= 0) dirty_comp_[static_cast<std::size_t>(c)] = 1;
    comp_of_member_[static_cast<std::size_t>(r)] = -1;
  }
  for (InstanceId a : added) {
    TS_DCHECK(active_mask[static_cast<std::size_t>(a)]);
    const int g = plan.group[static_cast<std::size_t>(a)];
    group_of_[static_cast<std::size_t>(a)] = g;
    touched_group_[static_cast<std::size_t>(g)] = 1;
    const DemandInstance& inst = problem.instance(a);
    for (InstanceId k : problem.instances_of_demand(inst.demand)) {
      const int c = comp_of_member_[static_cast<std::size_t>(k)];
      if (c >= 0 && plan.group[static_cast<std::size_t>(k)] == g)
        dirty_comp_[static_cast<std::size_t>(c)] = 1;
    }
    for (EdgeId e : inst.edges) {
      for (InstanceId k : problem.instances_on_edge(e)) {
        const int c = comp_of_member_[static_cast<std::size_t>(k)];
        if (c >= 0 && plan.group[static_cast<std::size_t>(k)] == g)
          dirty_comp_[static_cast<std::size_t>(c)] = 1;
      }
    }
  }

  const auto unite = [&](int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a < b)
      parent_[static_cast<std::size_t>(b)] = a;
    else
      parent_[static_cast<std::size_t>(a)] = b;
  };

  // Re-partition the touched groups: reset, chain-unite the clean
  // components straight from their old member slices (no path walks),
  // then path-walk only the dirty/new members against each other.
  for (int g = 0; g < num_groups_; ++g) {
    if (!touched_group_[static_cast<std::size_t>(g)]) continue;
    for (InstanceId i : plan.members[static_cast<std::size_t>(g)])
      parent_[static_cast<std::size_t>(i)] =
          active_mask[static_cast<std::size_t>(i)] ? i : -1;
    for (int c = group_first_comp_[static_cast<std::size_t>(g)];
         c < group_first_comp_[static_cast<std::size_t>(g) + 1]; ++c) {
      if (dirty_comp_[static_cast<std::size_t>(c)]) continue;
      const auto ids = component_members(c);
      for (std::size_t k = 1; k < ids.size(); ++k)
        unite(ids[k], ids.front());
    }
    ++update_stamp_;
    for (InstanceId i : plan.members[static_cast<std::size_t>(g)]) {
      if (!active_mask[static_cast<std::size_t>(i)]) continue;
      const int oc = comp_of_member_[static_cast<std::size_t>(i)];
      if (oc >= 0 && !dirty_comp_[static_cast<std::size_t>(oc)]) continue;
      const DemandInstance& inst = problem.instance(i);
      const auto d = static_cast<std::size_t>(inst.demand);
      if (demand_stamp_[d] == update_stamp_) unite(i, demand_last_[d]);
      demand_stamp_[d] = update_stamp_;
      demand_last_[d] = i;
      for (EdgeId e : inst.edges) {
        const auto ge = static_cast<std::size_t>(e);
        if (edge_stamp_[ge] == update_stamp_) unite(i, edge_last_[ge]);
        edge_stamp_[ge] = update_stamp_;
        edge_last_[ge] = i;
      }
    }
  }

  // Re-flatten into the staging arrays: touched groups from the revised
  // union-find, untouched groups as verbatim slice copies (their active
  // member sets, orders and per-group ranks are unchanged by
  // construction — any change would have touched the group).
  upd_first_comp_.assign(static_cast<std::size_t>(num_groups_) + 1, 0);
  upd_member_begin_.assign(1, 0);
  upd_ranks_.clear();
  upd_ids_.clear();
  for (int g = 0; g < num_groups_; ++g) {
    if (!touched_group_[static_cast<std::size_t>(g)]) {
      const int c0 = group_first_comp_[static_cast<std::size_t>(g)];
      const int c1 = group_first_comp_[static_cast<std::size_t>(g) + 1];
      const auto b = comp_member_begin_[static_cast<std::size_t>(c0)];
      const auto e = comp_member_begin_[static_cast<std::size_t>(c1)];
      const auto base = static_cast<std::int64_t>(upd_ids_.size()) - b;
      upd_ids_.insert(upd_ids_.end(),
                      member_ids_.begin() + static_cast<std::ptrdiff_t>(b),
                      member_ids_.begin() + static_cast<std::ptrdiff_t>(e));
      upd_ranks_.insert(
          upd_ranks_.end(),
          member_ranks_.begin() + static_cast<std::ptrdiff_t>(b),
          member_ranks_.begin() + static_cast<std::ptrdiff_t>(e));
      for (int c = c0; c < c1; ++c)
        upd_member_begin_.push_back(
            base + comp_member_begin_[static_cast<std::size_t>(c) + 1]);
      upd_first_comp_[static_cast<std::size_t>(g) + 1] =
          upd_first_comp_[static_cast<std::size_t>(g)] + (c1 - c0);
      continue;
    }
    ++update_stamp_;
    int comps_here = 0;
    group_sizes_.clear();
    for (InstanceId i : plan.members[static_cast<std::size_t>(g)]) {
      if (!active_mask[static_cast<std::size_t>(i)]) continue;
      const auto root = static_cast<std::size_t>(find(i));
      if (root_stamp_[root] != update_stamp_) {
        root_stamp_[root] = update_stamp_;
        comp_of_root_[root] = comps_here++;
        group_sizes_.push_back(0);
      }
      ++group_sizes_[static_cast<std::size_t>(comp_of_root_[root])];
    }
    group_cursor_.clear();
    std::int64_t acc = static_cast<std::int64_t>(upd_ids_.size());
    for (const std::int64_t size : group_sizes_) {
      group_cursor_.push_back(acc);
      acc += size;
      upd_member_begin_.push_back(acc);
    }
    upd_ids_.resize(static_cast<std::size_t>(acc));
    upd_ranks_.resize(static_cast<std::size_t>(acc));
    int rank = 0;
    for (InstanceId i : plan.members[static_cast<std::size_t>(g)]) {
      if (!active_mask[static_cast<std::size_t>(i)]) continue;
      const int lc = comp_of_root_[static_cast<std::size_t>(find(i))];
      const auto at = static_cast<std::size_t>(
          group_cursor_[static_cast<std::size_t>(lc)]++);
      upd_ids_[at] = i;
      upd_ranks_[at] = rank;
      ++rank;
    }
    upd_first_comp_[static_cast<std::size_t>(g) + 1] =
        upd_first_comp_[static_cast<std::size_t>(g)] + comps_here;
  }
  group_first_comp_.swap(upd_first_comp_);
  comp_member_begin_.swap(upd_member_begin_);
  member_ranks_.swap(upd_ranks_);
  member_ids_.swap(upd_ids_);
  refill_member_index(n);
}

}  // namespace treesched
