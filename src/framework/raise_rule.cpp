#include "framework/raise_rule.hpp"

namespace treesched {

const char* to_string(RaiseRuleKind kind) {
  return kind == RaiseRuleKind::kUnit ? "unit" : "narrow";
}

double RaiseRule::delta(const DemandInstance& inst,
                        std::span<const EdgeId> critical, double slack) const {
  TS_DCHECK(slack > 0.0);
  double inv_cap = 0.0;
  for (EdgeId e : critical) inv_cap += 1.0 / effective_capacity(e);
  const double alpha_term = raise_alpha_ ? 1.0 : 0.0;
  if (kind_ == RaiseRuleKind::kUnit) {
    TS_REQUIRE(raise_alpha_ || inv_cap > 0.0);
    return slack / (alpha_term + inv_cap);
  }
  const auto k = static_cast<double>(critical.size());
  TS_REQUIRE(raise_alpha_ || inv_cap > 0.0);
  return slack / (alpha_term + 2.0 * inst.height * k * inv_cap);
}

double RaiseRule::beta_increment(const DemandInstance& inst,
                                 std::span<const EdgeId> critical,
                                 double delta, EdgeId e) const {
  (void)inst;
  const double c = effective_capacity(e);
  if (kind_ == RaiseRuleKind::kUnit) return delta / c;
  return 2.0 * static_cast<double>(critical.size()) * delta / c;
}

double RaiseRule::tight_raise(const DemandInstance& inst,
                              std::span<const EdgeId> critical, double slack,
                              std::vector<double>& increments) const {
  const double amount = delta(inst, critical, slack);
  beta_increments(inst, critical, amount, increments);
  return amount;
}

void RaiseRule::beta_increments(const DemandInstance& inst,
                                std::span<const EdgeId> critical,
                                double delta,
                                std::vector<double>& increments) const {
  increments.resize(critical.size());
  for (std::size_t c = 0; c < critical.size(); ++c)
    increments[c] = beta_increment(inst, critical, delta, critical[c]);
}

double RaiseRule::price_factor(int delta_size) const {
  const auto d = static_cast<double>(delta_size);
  const double alpha_term = raise_alpha_ ? 1.0 : 0.0;
  if (kind_ == RaiseRuleKind::kUnit) return d + alpha_term;
  return alpha_term + 2.0 * d * d;
}

double RaiseRule::default_xi(RaiseRuleKind kind, int delta_size,
                             double h_min) {
  const auto d = static_cast<double>(delta_size);
  if (kind == RaiseRuleKind::kUnit) {
    // xi = 2 Delta' / (2 Delta' + 1), Delta' = Delta + 1 (paper, Sec. 5).
    const double dp = d + 1.0;
    return (2.0 * dp) / (2.0 * dp + 1.0);
  }
  // xi = C / (C + h_min), C = 1 + 2 Delta^2 (paper, Sec. 6: "xi =
  // c/(c+h_min) for a suitable constant c"); the kill-chain condition
  // xi/(1-xi) >= (1+2 Delta^2)/h_min then guarantees profit doubling.
  TS_REQUIRE(h_min > 0.0);
  const double c = 1.0 + 2.0 * d * d;
  return c / (c + h_min);
}

}  // namespace treesched
