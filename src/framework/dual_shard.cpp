#include "framework/dual_shard.hpp"

#include <algorithm>

namespace treesched {

int DualShard::index_of(EdgeId e) const {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
  if (it == edges_.end() || *it != e) return -1;
  return static_cast<int>(it - edges_.begin());
}

double DualShard::beta(EdgeId e) const {
  const int idx = index_of(e);
  return idx < 0 ? 0.0 : beta_[static_cast<std::size_t>(idx)];
}

void DualShard::raise_alpha(double amount) {
  TS_DCHECK(amount >= 0.0);
  alpha_ += amount;
}

bool DualShard::raise_beta(EdgeId e, double amount) {
  const int idx = index_of(e);
  if (idx < 0) return false;
  TS_DCHECK(amount >= 0.0);
  beta_[static_cast<std::size_t>(idx)] += amount;
  beta_sum_ += amount;
  return true;
}

void DualShard::apply_raise(std::span<const double> payload) {
  TS_REQUIRE(payload.size() >= 2 && payload.size() % 2 == 0);
  if (static_cast<DemandId>(payload[0]) == demand_) raise_alpha(payload[1]);
  for (std::size_t f = 2; f + 1 < payload.size(); f += 2)
    raise_beta(static_cast<EdgeId>(payload[f]), payload[f + 1]);
}

std::vector<double> encode_raise(DemandId demand, double alpha_increment,
                                 std::span<const EdgeId> critical,
                                 std::span<const double> increments) {
  TS_REQUIRE(critical.size() == increments.size());
  std::vector<double> payload;
  payload.reserve(2 + 2 * critical.size());
  payload.push_back(static_cast<double>(demand));
  payload.push_back(alpha_increment);
  for (std::size_t c = 0; c < critical.size(); ++c) {
    payload.push_back(static_cast<double>(critical[c]));
    payload.push_back(increments[c]);
  }
  return payload;
}

}  // namespace treesched
