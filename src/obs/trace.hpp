// Flight-recorder tracing: a zero-cost-when-disabled span recorder for
// the whole stack (engine epochs/components/merges, protocol passes and
// stages, wire rounds).
//
// Design:
//  * Recording is RAII — TRACE_SPAN("engine", "epoch") opens a span that
//    closes at scope exit.  Category/name/arg-key strings must be string
//    literals (the recorder stores the pointers, never copies).
//  * Each recording thread owns a preallocated ring buffer of spans; the
//    hot path is one relaxed atomic load (the enable gate), one steady-
//    clock read per span end, and a lock-free ring store.  When a ring
//    fills, the oldest spans are overwritten — flight-recorder
//    semantics: the most recent window always survives, and the dump
//    reports how much history was lost.
//  * Worker threads are short-lived here (the engine recreates its pool
//    every epoch), so ring slots are pooled: a thread parks its slot on
//    exit and the next worker reuses it.  Distinct tids therefore stay
//    bounded by the maximum number of concurrent threads, which is also
//    what makes per-worker timelines meaningful in the dump.
//  * Dumps merge all rings deterministically (sorted by start time, then
//    duration, then tid, then per-thread sequence) into Chrome-trace
//    JSON (chrome://tracing, ui.perfetto.dev) or a flat JSON form that
//    also embeds the MetricsRegistry snapshot.
//
// Two gates:
//  * compile time — building with -DTREESCHED_ENABLE_TRACING=OFF defines
//    TREESCHED_TRACING_DISABLED and compiles every span and metric
//    macro to nothing;
//  * run time — even when compiled in, nothing records until
//    enable_tracing() flips the atomic gate (default off), so the
//    default cost is one relaxed load per would-be span.
//
// Tracing must never perturb results: no field any parity suite compares
// with == may depend on the recorder (tests/test_obs.cpp runs the engine
// and the wire protocol traced and untraced and compares with ==, and
// TREESCHED_TRACE=1 reruns the full parity suites with tracing on).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace treesched::obs {

// One closed span.  arg_key[k] == nullptr marks an unused arg slot.
struct SpanRecord {
  const char* category = nullptr;
  const char* name = nullptr;
  std::int64_t start_ns = 0;  // relative to the enable_tracing() epoch
  std::int64_t dur_ns = 0;
  int tid = 0;                // recorder slot id (0 = first recorder)
  std::uint64_t seq = 0;      // per-thread record sequence number
  const char* arg_key[2] = {nullptr, nullptr};
  std::int64_t arg_val[2] = {0, 0};
};

struct TraceOptions {
  // Spans retained per thread slot before the oldest are overwritten.
  std::size_t ring_capacity = 1 << 16;
};

// Dump-side accounting: how much history the rings kept.
struct TraceStats {
  std::int64_t total_recorded = 0;
  std::int64_t retained = 0;
  std::int64_t overwritten = 0;  // total_recorded - retained
};

#ifndef TREESCHED_TRACING_DISABLED

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

inline bool tracing_enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// Flips the gate on.  Resets the recorded history and the time epoch,
// and applies ring_capacity to every slot (existing and future).  Call
// from a quiescent point (no spans in flight on other threads).
void enable_tracing(const TraceOptions& options = {});
// Flips the gate off.  Recorded spans stay dumpable.
void disable_tracing();
// Drops all recorded spans (the gate is untouched).
void reset_trace();

// Monotone nanoseconds since the enable_tracing() epoch.
std::int64_t trace_now_ns();

// Records an already-timed span (for call sites that only know the
// start/duration after the fact, e.g. the runtime's per-round deltas).
void record_complete_span(const char* category, const char* name,
                          std::int64_t start_ns, std::int64_t dur_ns,
                          const char* key0 = nullptr, std::int64_t val0 = 0,
                          const char* key1 = nullptr, std::int64_t val1 = 0);

// Deterministic merged dump of every thread's ring, sorted by
// (start_ns, -dur_ns, tid, seq) — parents before their children, and
// the same input always yields the same ordering.
std::vector<SpanRecord> collect_spans();
TraceStats trace_stats();

// Exporters.  Chrome trace: {"traceEvents": [...]} with ph:"X" events in
// microseconds plus thread-name metadata; the MetricsRegistry snapshot
// rides along under "otherData".  Flat JSON: spans + metrics as one
// plain object (no trace-viewer conventions).  Both return false when
// the file cannot be written.
bool write_chrome_trace(const std::string& path);
bool write_flat_json(const std::string& path);
std::string chrome_trace_string();

// RAII span.  The constructor is one relaxed load when tracing is off;
// category/name/keys must be string literals.
class SpanGuard {
 public:
  SpanGuard(const char* category, const char* name) {
    if (tracing_enabled()) begin(category, name);
  }
  SpanGuard(const char* category, const char* name, const char* key0,
            std::int64_t val0) {
    if (tracing_enabled()) {
      begin(category, name);
      key_[0] = key0;
      val_[0] = val0;
    }
  }
  SpanGuard(const char* category, const char* name, const char* key0,
            std::int64_t val0, const char* key1, std::int64_t val1) {
    if (tracing_enabled()) {
      begin(category, name);
      key_[0] = key0;
      val_[0] = val0;
      key_[1] = key1;
      val_[1] = val1;
    }
  }
  ~SpanGuard() {
    if (active_) end();
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  // Attaches an arg discovered after construction (first free slot of
  // the two).  No-op when inactive or both slots are taken.
  void arg(const char* key, std::int64_t value) {
    if (!active_) return;
    if (key_[0] == nullptr) {
      key_[0] = key;
      val_[0] = value;
    } else if (key_[1] == nullptr) {
      key_[1] = key;
      val_[1] = value;
    }
  }

 private:
  void begin(const char* category, const char* name);
  void end();

  const char* category_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  bool active_ = false;
  const char* key_[2] = {nullptr, nullptr};
  std::int64_t val_[2] = {0, 0};
};

#else  // TREESCHED_TRACING_DISABLED

inline constexpr bool tracing_enabled() { return false; }
inline void enable_tracing(const TraceOptions& = {}) {}
inline void disable_tracing() {}
inline void reset_trace() {}
inline std::int64_t trace_now_ns() { return 0; }
inline void record_complete_span(const char*, const char*, std::int64_t,
                                 std::int64_t, const char* = nullptr,
                                 std::int64_t = 0, const char* = nullptr,
                                 std::int64_t = 0) {}
inline std::vector<SpanRecord> collect_spans() { return {}; }
inline TraceStats trace_stats() { return {}; }
inline bool write_chrome_trace(const std::string&) { return false; }
inline bool write_flat_json(const std::string&) { return false; }
inline std::string chrome_trace_string() { return "{}"; }

class SpanGuard {
 public:
  SpanGuard(const char*, const char*) {}
  SpanGuard(const char*, const char*, const char*, std::int64_t) {}
  SpanGuard(const char*, const char*, const char*, std::int64_t, const char*,
            std::int64_t) {}
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  void arg(const char*, std::int64_t) {}
};

#endif  // TREESCHED_TRACING_DISABLED

}  // namespace treesched::obs

#define TS_OBS_CONCAT_INNER(a, b) a##b
#define TS_OBS_CONCAT(a, b) TS_OBS_CONCAT_INNER(a, b)

// The instrumentation macros.  Under TREESCHED_TRACING_DISABLED the
// guard class above is empty, so these compile to nothing.
#define TRACE_SPAN(category, name)                               \
  ::treesched::obs::SpanGuard TS_OBS_CONCAT(ts_obs_span_,        \
                                            __LINE__)((category), (name))
#define TRACE_SPAN1(category, name, key0, val0)                  \
  ::treesched::obs::SpanGuard TS_OBS_CONCAT(ts_obs_span_,        \
                                            __LINE__)(           \
      (category), (name), (key0), static_cast<std::int64_t>(val0))
#define TRACE_SPAN2(category, name, key0, val0, key1, val1)      \
  ::treesched::obs::SpanGuard TS_OBS_CONCAT(ts_obs_span_,        \
                                            __LINE__)(           \
      (category), (name), (key0), static_cast<std::int64_t>(val0), (key1), \
      static_cast<std::int64_t>(val1))
