// MetricsRegistry: named monotonic counters and log-scale histograms,
// process-global, thread-safe, dumped alongside (or inside) a trace.
//
// Counters and histograms are looked up by string name once (handles
// are stable for the registry's lifetime — typically cached in a
// function-local static by the TRACE_COUNTER / TRACE_HIST macros) and
// then updated with relaxed atomics, so the hot path never locks.
// Updates are further gated on obs::tracing_enabled(): with tracing off
// the macros cost one relaxed load, and a TREESCHED_TRACING_DISABLED
// build compiles them out entirely.
//
// Histograms use 64 power-of-two buckets (bucket k holds values in
// [2^(k-1), 2^k), bucket 0 holds <= 0) plus exact count/sum/min/max —
// enough to answer "what's the component-size / message-size shape"
// without per-sample storage.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/trace.hpp"

namespace treesched::obs {

class Counter {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::int64_t value);
  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t min() const;  // 0 when empty
  std::int64_t max() const;  // 0 when empty
  // Bucket-resolution quantile (q in [0,1]): the lower bound of the
  // first bucket whose cumulative count reaches q * count.
  std::int64_t quantile(double q) const;
  void reset();

  static int bucket_index(std::int64_t value);
  // Smallest value that lands in the given bucket.
  static std::int64_t bucket_floor(int index);

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};
  std::atomic<std::int64_t> max_{0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  // Returns the counter/histogram with this name, creating it on first
  // use.  References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Zeroes every registered counter and histogram (names persist).
  void reset();

  // {"counters": {name: value, ...},
  //  "histograms": {name: {count,sum,min,max,p50,p95}, ...}}
  // with names in sorted order — deterministic for a given state.
  std::string to_json() const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry();
  ~MetricsRegistry();
  struct Impl;
  Impl* impl_;
};

}  // namespace treesched::obs

// Metric macros: one-time name lookup via a function-local static
// handle, then a relaxed atomic update — nothing when tracing is off
// or compiled out.
#ifndef TREESCHED_TRACING_DISABLED
#define TRACE_COUNTER(name, delta)                                       \
  do {                                                                   \
    if (::treesched::obs::tracing_enabled()) {                           \
      static ::treesched::obs::Counter& ts_obs_counter =                 \
          ::treesched::obs::MetricsRegistry::global().counter(name);     \
      ts_obs_counter.add(static_cast<std::int64_t>(delta));              \
    }                                                                    \
  } while (0)
#define TRACE_HIST(name, value)                                          \
  do {                                                                   \
    if (::treesched::obs::tracing_enabled()) {                           \
      static ::treesched::obs::Histogram& ts_obs_hist =                  \
          ::treesched::obs::MetricsRegistry::global().histogram(name);   \
      ts_obs_hist.record(static_cast<std::int64_t>(value));              \
    }                                                                    \
  } while (0)
#else
#define TRACE_COUNTER(name, delta) \
  do {                             \
  } while (0)
#define TRACE_HIST(name, value) \
  do {                          \
  } while (0)
#endif
