#include "obs/metrics.hpp"

#include <bit>
#include <map>
#include <mutex>

namespace treesched::obs {

namespace {

// min/max via CAS so concurrent recorders never lose an extremum.
void atomic_min(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_index(std::int64_t value) {
  if (value <= 0) return 0;
  const int width = std::bit_width(static_cast<std::uint64_t>(value));
  return width < kBuckets ? width : kBuckets - 1;
}

std::int64_t Histogram::bucket_floor(int index) {
  if (index <= 0) return 0;
  return std::int64_t{1} << (index - 1);
}

void Histogram::record(std::int64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  const std::int64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  if (n == 0) {
    // First sample seeds both extrema; racing recorders still converge
    // through the CAS loops below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  atomic_min(min_, value);
  atomic_max(max_, value);
}

std::int64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::quantile(double q) const {
  const std::int64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(n);
  std::int64_t cumulative = 0;
  for (int k = 0; k < kBuckets; ++k) {
    cumulative += buckets_[k].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative) >= target && cumulative > 0)
      return bucket_floor(k);
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// std::map keeps node addresses stable across inserts, so handed-out
// references survive later registrations; the mutex only guards
// creation and snapshotting, never the atomic updates themselves.
struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, Counter> counters;
  std::map<std::string, Histogram> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->counters[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->histograms[name];
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, counter] : impl_->counters) counter.reset();
  for (auto& [name, histogram] : impl_->histograms) histogram.reset();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : impl_->counters) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + name + "\":" + std::to_string(counter.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : impl_->histograms) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(hist.count()) +
           ",\"sum\":" + std::to_string(hist.sum()) +
           ",\"min\":" + std::to_string(hist.min()) +
           ",\"max\":" + std::to_string(hist.max()) +
           ",\"p50\":" + std::to_string(hist.quantile(0.5)) +
           ",\"p95\":" + std::to_string(hist.quantile(0.95)) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace treesched::obs
