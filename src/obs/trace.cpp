#include "obs/trace.hpp"

#ifndef TREESCHED_TRACING_DISABLED

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"

namespace treesched::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

// Absolute steady-clock value of the enable_tracing() epoch; all span
// timestamps are relative to it so dumps start near zero.
std::atomic<std::int64_t> g_epoch_ns{0};

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One per recording thread, pooled: the engine recreates its worker
// pool every epoch, so exiting threads park their slot for the next
// worker instead of growing the slot list without bound.
struct ThreadSlot {
  std::vector<SpanRecord> ring;
  // Monotone count of records ever pushed by this slot; the owner
  // thread writes it relaxed, the (quiescent) dump thread reads it.
  std::atomic<std::uint64_t> head{0};
  int tid = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadSlot>> slots;  // every slot ever made
  std::vector<ThreadSlot*> parked;                 // free-listed by tid desc
  std::size_t ring_capacity = TraceOptions{}.ring_capacity;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Parks this thread's slot on exit.  The handle is a thread_local in
// the same TU as the registry's function-local static, so the registry
// (constructed first, on any path that creates a handle) outlives it.
struct SlotHandle {
  ThreadSlot* slot = nullptr;
  ~SlotHandle() {
    if (slot == nullptr) return;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.parked.push_back(slot);
    // Hand lower tids out first so short-lived worker generations map
    // onto a stable, small set of timeline rows.
    std::sort(r.parked.begin(), r.parked.end(),
              [](const ThreadSlot* a, const ThreadSlot* b) {
                return a->tid > b->tid;
              });
  }
};

thread_local SlotHandle t_slot_handle;

ThreadSlot* acquire_slot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ThreadSlot* slot = nullptr;
  if (!r.parked.empty()) {
    slot = r.parked.back();
    r.parked.pop_back();
  } else {
    r.slots.push_back(std::make_unique<ThreadSlot>());
    slot = r.slots.back().get();
    slot->tid = static_cast<int>(r.slots.size()) - 1;
    slot->ring.resize(r.ring_capacity);
  }
  t_slot_handle.slot = slot;
  return slot;
}

ThreadSlot* this_thread_slot() {
  ThreadSlot* slot = t_slot_handle.slot;
  return slot != nullptr ? slot : acquire_slot();
}

void push_record(SpanRecord rec) {
  ThreadSlot* slot = this_thread_slot();
  const std::uint64_t head = slot->head.load(std::memory_order_relaxed);
  rec.tid = slot->tid;
  rec.seq = head;
  slot->ring[static_cast<std::size_t>(head % slot->ring.size())] = rec;
  slot->head.store(head + 1, std::memory_order_relaxed);
}

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void append_span_args(std::string& out, const SpanRecord& rec) {
  out += ",\"args\":{";
  bool first = true;
  for (int k = 0; k < 2; ++k) {
    if (rec.arg_key[k] == nullptr) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_escaped(out, rec.arg_key[k]);
    out += "\":" + std::to_string(rec.arg_val[k]);
  }
  out.push_back('}');
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = (written == body.size()) && (std::fclose(f) == 0);
  if (written != body.size()) std::fclose(f);
  return ok;
}

}  // namespace

void enable_tracing(const TraceOptions& options) {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    r.ring_capacity = std::max<std::size_t>(options.ring_capacity, 16);
    // enable_tracing is documented quiescent, so existing slots can be
    // resized to the requested capacity too — a re-enable with a smaller
    // ring really gets a smaller flight-recorder window.
    for (auto& slot : r.slots) {
      if (slot->ring.size() != r.ring_capacity)
        slot->ring.resize(r.ring_capacity);
      slot->head.store(0, std::memory_order_relaxed);
    }
  }
  g_epoch_ns.store(steady_ns(), std::memory_order_relaxed);
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void disable_tracing() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void reset_trace() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& slot : r.slots) slot->head.store(0, std::memory_order_relaxed);
}

std::int64_t trace_now_ns() {
  return steady_ns() - g_epoch_ns.load(std::memory_order_relaxed);
}

void record_complete_span(const char* category, const char* name,
                          std::int64_t start_ns, std::int64_t dur_ns,
                          const char* key0, std::int64_t val0,
                          const char* key1, std::int64_t val1) {
  if (!tracing_enabled()) return;
  SpanRecord rec;
  rec.category = category;
  rec.name = name;
  rec.start_ns = start_ns;
  rec.dur_ns = dur_ns;
  rec.arg_key[0] = key0;
  rec.arg_val[0] = val0;
  rec.arg_key[1] = key1;
  rec.arg_val[1] = val1;
  push_record(rec);
}

void SpanGuard::begin(const char* category, const char* name) {
  category_ = category;
  name_ = name;
  active_ = true;
  start_ns_ = trace_now_ns();
}

void SpanGuard::end() {
  SpanRecord rec;
  rec.category = category_;
  rec.name = name_;
  rec.start_ns = start_ns_;
  rec.dur_ns = trace_now_ns() - start_ns_;
  rec.arg_key[0] = key_[0];
  rec.arg_val[0] = val_[0];
  rec.arg_key[1] = key_[1];
  rec.arg_val[1] = val_[1];
  push_record(rec);
}

std::vector<SpanRecord> collect_spans() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<SpanRecord> out;
  for (const auto& slot : r.slots) {
    const std::uint64_t head = slot->head.load(std::memory_order_relaxed);
    const std::uint64_t size = slot->ring.size();
    const std::uint64_t kept = std::min(head, size);
    for (std::uint64_t i = head - kept; i < head; ++i)
      out.push_back(slot->ring[static_cast<std::size_t>(i % size)]);
  }
  // Deterministic merged order: by start time, longest (outermost) span
  // first on ties, then recorder id, then per-thread sequence.
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  return out;
}

TraceStats trace_stats() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  TraceStats stats;
  for (const auto& slot : r.slots) {
    const std::uint64_t head = slot->head.load(std::memory_order_relaxed);
    stats.total_recorded += static_cast<std::int64_t>(head);
    stats.retained += static_cast<std::int64_t>(
        std::min<std::uint64_t>(head, slot->ring.size()));
  }
  stats.overwritten = stats.total_recorded - stats.retained;
  return stats;
}

std::string chrome_trace_string() {
  const std::vector<SpanRecord> spans = collect_spans();
  const TraceStats stats = trace_stats();
  int max_tid = -1;
  for (const SpanRecord& rec : spans) max_tid = std::max(max_tid, rec.tid);

  std::string out;
  out.reserve(128 + spans.size() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (int tid = 0; tid <= max_tid; ++tid) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           (tid == 0 ? std::string("main") :
                       "worker-" + std::to_string(tid)) +
           "\"}}";
  }
  for (const SpanRecord& rec : spans) {
    if (!first) out.push_back(',');
    first = false;
    // Chrome-trace timestamps are microseconds; keep nanosecond
    // precision with three decimal places.
    out += "{\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(rec.tid) +
           ",\"ts\":" + std::to_string(rec.start_ns / 1000) + "." +
           [&] {
             char frac[8];
             std::snprintf(frac, sizeof(frac), "%03lld",
                           static_cast<long long>(
                               ((rec.start_ns % 1000) + 1000) % 1000));
             return std::string(frac);
           }() +
           ",\"dur\":" + std::to_string(rec.dur_ns / 1000) + "." +
           [&] {
             char frac[8];
             std::snprintf(frac, sizeof(frac), "%03lld",
                           static_cast<long long>(
                               ((rec.dur_ns % 1000) + 1000) % 1000));
             return std::string(frac);
           }() +
           ",\"cat\":\"";
    append_escaped(out, rec.category);
    out += "\",\"name\":\"";
    append_escaped(out, rec.name);
    out.push_back('"');
    append_span_args(out, rec);
    out.push_back('}');
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"span_count\":" +
         std::to_string(spans.size()) +
         ",\"overwritten_spans\":" + std::to_string(stats.overwritten) +
         ",\"metrics\":" + MetricsRegistry::global().to_json() + "}}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  return write_file(path, chrome_trace_string());
}

bool write_flat_json(const std::string& path) {
  const std::vector<SpanRecord> spans = collect_spans();
  const TraceStats stats = trace_stats();
  std::string out;
  out.reserve(128 + spans.size() * 96);
  out += "{\"spans\":[";
  bool first = true;
  for (const SpanRecord& rec : spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"cat\":\"";
    append_escaped(out, rec.category);
    out += "\",\"name\":\"";
    append_escaped(out, rec.name);
    out += "\",\"start_ns\":" + std::to_string(rec.start_ns) +
           ",\"dur_ns\":" + std::to_string(rec.dur_ns) +
           ",\"tid\":" + std::to_string(rec.tid);
    append_span_args(out, rec);
    out.push_back('}');
  }
  out += "],\"overwritten_spans\":" + std::to_string(stats.overwritten) +
         ",\"metrics\":" + MetricsRegistry::global().to_json() + "}";
  return write_file(path, out);
}

}  // namespace treesched::obs

#endif  // TREESCHED_TRACING_DISABLED
