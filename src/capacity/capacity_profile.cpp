#include "capacity/capacity_profile.hpp"

#include <algorithm>
#include <cmath>

namespace treesched {

const char* to_string(CapacityLaw law) {
  switch (law) {
    case CapacityLaw::kUniform:
      return "uniform";
    case CapacityLaw::kTwoClass:
      return "two-class";
    case CapacityLaw::kPowerClasses:
      return "power-classes";
    case CapacityLaw::kHotspot:
      return "hotspot";
  }
  return "?";
}

void apply_capacity_law(Problem& problem, CapacityLaw law, Capacity base,
                        double spread, Rng& rng) {
  check_input(base > 0.0, "capacity base must be positive");
  check_input(spread >= 1.0, "capacity spread must be >= 1");
  const int max_class =
      std::max(0, static_cast<int>(std::floor(std::log2(spread) + 1e-9)));
  for (NetworkId q = 0; q < problem.num_networks(); ++q) {
    const EdgeId edges = problem.network(q).num_edges();
    for (EdgeId e = 0; e < edges; ++e) {
      Capacity c = base;
      switch (law) {
        case CapacityLaw::kUniform:
          break;
        case CapacityLaw::kTwoClass:
          c = rng.chance(0.5) ? base : base * spread;
          break;
        case CapacityLaw::kPowerClasses:
          c = base * std::pow(2.0, static_cast<double>(
                                       rng.uniform_int(0, max_class)));
          break;
        case CapacityLaw::kHotspot:
          c = rng.chance(0.1) ? base : base * spread;
          break;
      }
      problem.set_capacity(q, e, c);
    }
  }
}

bool satisfies_nba(const Problem& problem) {
  return problem.max_height() <= problem.min_capacity() + kEps;
}

bool all_instances_narrow(const Problem& problem) {
  for (const DemandInstance& inst : problem.instances()) {
    for (EdgeId e : inst.edges)
      if (inst.height > problem.capacity(e) / 2.0 + kEps) return false;
  }
  return true;
}

Capacity bottleneck_capacity(const Problem& problem, InstanceId i) {
  const DemandInstance& inst = problem.instance(i);
  Capacity c = problem.capacity(inst.edges.front());
  for (EdgeId e : inst.edges) c = std::min(c, problem.capacity(e));
  return c;
}

int bottleneck_class(const Problem& problem, InstanceId i) {
  const double ratio =
      bottleneck_capacity(problem, i) / problem.min_capacity();
  return std::max(0, static_cast<int>(std::floor(std::log2(ratio) + 1e-9)));
}

int num_bottleneck_classes(const Problem& problem) {
  int classes = 1;
  for (InstanceId i = 0; i < problem.num_instances(); ++i)
    classes = std::max(classes, bottleneck_class(problem, i) + 1);
  return classes;
}

double max_path_capacity_spread(const Problem& problem) {
  double rho = 1.0;
  const auto instances = problem.instances();
#ifdef TREESCHED_HAS_OPENMP
#pragma omp parallel for reduction(max : rho) schedule(static)
#endif
  for (std::size_t k = 0; k < instances.size(); ++k) {
    const DemandInstance& inst = instances[k];
    Capacity lo = problem.capacity(inst.edges.front());
    Capacity hi = lo;
    for (EdgeId e : inst.edges) {
      lo = std::min(lo, problem.capacity(e));
      hi = std::max(hi, problem.capacity(e));
    }
    rho = std::max(rho, hi / lo);
  }
  return rho;
}

}  // namespace treesched
