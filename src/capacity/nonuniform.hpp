// Distributed scheduling with non-uniform bandwidths — the IPDPS 2013
// extension, reconstructed per DESIGN.md Section 6.
//
// Supported regimes (each with a valid LP relaxation, hence a sound dual
// certificate):
//  * unit heights, arbitrary capacities >= 1 ("multi-channel" edges):
//    primal constraint sum x(d) <= c(e); kUnit rule with capacity-aware
//    increments; derived bound (Delta+1) * rho / lambda, rho = max path
//    capacity spread (rho = 1 reproduces the paper's 7+eps / 4+eps).
//  * all-narrow heights (h(d) <= c(e)/2 on every edge of every instance,
//    implied by h_max <= c_min/2): kNarrow rule; derived bound
//    (1+2 Delta^2) * rho / lambda.
//
// Options:
//  * by_class: solve each bottleneck-capacity class separately and merge
//    greedily — the class-grouping arm of the T5 ablation;
//  * capacity_aware = false: apply the paper's uniform increments
//    verbatim (the "naive" ablation arm; its dual certificate degrades
//    with the spread, demonstrating why the capacity-aware rule exists).
#pragma once

#include "capacity/capacity_profile.hpp"
#include "decomp/layered.hpp"
#include "dist/scheduler.hpp"
#include "model/problem.hpp"

namespace treesched {

struct NonuniformOptions {
  DistOptions dist;
  bool line = false;            // use the line layered plan (Delta = 3)
  bool by_class = false;        // per-bottleneck-class solve + greedy merge
  bool capacity_aware = true;   // false: naive uniform increments
};

struct NonuniformResult {
  Solution solution;
  SolveStats stats;
  double profit = 0.0;
  double ratio_bound = 0.0;   // derived bound (see header comment)
  double path_spread = 1.0;   // rho
  int classes = 1;            // bottleneck classes present
};

// Unit-height demands over non-uniform capacities.
NonuniformResult solve_nonuniform_unit(const Problem& problem,
                                       const NonuniformOptions& options = {});

// All-narrow demands (checked) over non-uniform capacities.
NonuniformResult solve_nonuniform_narrow(
    const Problem& problem, const NonuniformOptions& options = {});

}  // namespace treesched
