// Capacity profiles for the non-uniform bandwidth extension (DESIGN.md,
// Section 6; the IPDPS 2013 setting).  Capacities are assigned per edge
// *before* Problem::finalize(); the helpers below also compute the
// quantities the reconstruction's guarantee depends on: the no-bottleneck
// assumption (NBA) and the per-path capacity spread rho.
#pragma once

#include "common/rng.hpp"
#include "model/problem.hpp"

namespace treesched {

enum class CapacityLaw {
  kUniform,       // every edge = base
  kTwoClass,      // base or base*spread, fair coin per edge
  kPowerClasses,  // base * 2^k, k uniform in [0, log2(spread)]
  kHotspot,       // base*spread everywhere, ~10% backbone edges at base
};

const char* to_string(CapacityLaw law);

// Assigns capacities to every edge of every network.  Must be called
// before finalize().  `spread` >= 1 is the max/min capacity ratio.
void apply_capacity_law(Problem& problem, CapacityLaw law, Capacity base,
                        double spread, Rng& rng);

// No-bottleneck assumption: max demand height <= min edge capacity.
bool satisfies_nba(const Problem& problem);

// Strong NBA of the all-narrow regime: h(d) <= c(e)/2 for every instance
// d and every edge e on its path (DESIGN.md Sec. 6: under this condition
// the narrow-rule analysis applies to every instance).
bool all_instances_narrow(const Problem& problem);

// Smallest capacity along the instance's path (its bottleneck).
Capacity bottleneck_capacity(const Problem& problem, InstanceId i);

// Bottleneck class: floor(log2(bottleneck / c_min)); classes partition
// instances so capacities at the bottleneck differ by < 2 within a class.
int bottleneck_class(const Problem& problem, InstanceId i);
int num_bottleneck_classes(const Problem& problem);

// rho: max over instances of (max capacity on path) / (min capacity on
// path) — the spread factor in the reconstruction's ratio bound.
double max_path_capacity_spread(const Problem& problem);

}  // namespace treesched
