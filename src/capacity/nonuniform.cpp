#include "capacity/nonuniform.hpp"

#include <algorithm>
#include <vector>

#include "dist/luby_mis.hpp"

namespace treesched {

namespace {

LayeredPlan make_plan(const Problem& problem, const NonuniformOptions& opt) {
  return opt.line ? build_line_layered_plan(problem)
                  : build_tree_layered_plan(problem, opt.dist.decomp);
}

SolverConfig make_config(const NonuniformOptions& opt, RaiseRuleKind rule) {
  SolverConfig config;
  config.epsilon = opt.dist.epsilon;
  config.rule = rule;
  config.stage_mode = opt.dist.stage_mode;
  config.capacity_aware_raises = opt.capacity_aware;
  config.count_messages = opt.dist.count_messages;
  config.check_interference = opt.dist.check_interference;
  return config;
}

NonuniformResult solve_impl(const Problem& problem,
                            const NonuniformOptions& opt,
                            RaiseRuleKind rule) {
  const LayeredPlan plan = make_plan(problem, opt);
  const SolverConfig config = make_config(opt, rule);
  LubyMis oracle(problem, opt.dist.seed);

  NonuniformResult result;
  result.path_spread = max_path_capacity_spread(problem);
  result.classes = num_bottleneck_classes(problem);

  if (!opt.by_class) {
    TwoPhaseEngine engine(problem, plan, config, &oracle);
    SolveResult run = engine.run();
    result.solution = std::move(run.solution);
    result.stats = run.stats;
  } else {
    // One restricted run per bottleneck class (finest capacity locality),
    // then a greedy merge in descending per-class profit order.  Any
    // refinement of the group order keeps the interference property, so
    // each class run is itself a valid two-phase execution.
    std::vector<std::vector<InstanceId>> classes(
        static_cast<std::size_t>(result.classes));
    for (InstanceId i = 0; i < problem.num_instances(); ++i)
      classes[static_cast<std::size_t>(bottleneck_class(problem, i))]
          .push_back(i);

    std::vector<SolveResult> runs;
    for (auto& members : classes) {
      if (members.empty()) continue;
      TwoPhaseEngine engine(problem, plan, config, &oracle);
      engine.restrict_to(members);
      runs.push_back(engine.run());
    }
    std::sort(runs.begin(), runs.end(),
              [](const SolveResult& a, const SolveResult& b) {
                return a.stats.profit > b.stats.profit;
              });
    LoadTracker tracker(problem);
    for (const SolveResult& run : runs) {
      for (InstanceId i : run.solution.selected) {
        if (tracker.fits(i)) {
          tracker.add(i);
          result.solution.selected.push_back(i);
        }
      }
      if (result.stats.lambda_observed == 0.0)
        result.stats = run.stats;
      else
        result.stats.merge(run.stats);
    }
  }

  result.profit = result.solution.profit(problem);
  result.stats.profit = result.profit;

  const double lambda = target_lambda(opt.dist.stage_mode, opt.dist.epsilon);
  result.ratio_bound =
      proven_ratio_bound(rule, result.stats.delta, lambda) *
      result.path_spread;
  return result;
}

}  // namespace

NonuniformResult solve_nonuniform_unit(const Problem& problem,
                                       const NonuniformOptions& options) {
  TS_REQUIRE(problem.unit_height());
  TS_REQUIRE(problem.min_capacity() >= 1.0 - kEps);
  return solve_impl(problem, options, RaiseRuleKind::kUnit);
}

NonuniformResult solve_nonuniform_narrow(const Problem& problem,
                                         const NonuniformOptions& options) {
  TS_REQUIRE(all_instances_narrow(problem));
  return solve_impl(problem, options, RaiseRuleKind::kNarrow);
}

}  // namespace treesched
