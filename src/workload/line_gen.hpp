// Random line-with-windows workloads (paper, Sections 1 and 7): jobs with
// release times, deadlines, processing times, profits and heights over r
// identical timeline resources.
#pragma once

#include "common/rng.hpp"
#include "model/line_problem.hpp"
#include "workload/demand_gen.hpp"

namespace treesched {

struct LineGenConfig {
  int num_slots = 64;
  int num_resources = 2;
  int num_demands = 40;
  int min_proc_time = 1;
  int max_proc_time = 12;
  // Window length = proc_time * window_slack (rounded), clamped to the
  // timeline; slack 1.0 means fixed placements (no windows).
  double window_slack = 2.0;
  ProfitLaw profits = ProfitLaw::kUniform;
  double profit_max = 100.0;
  HeightLaw heights = HeightLaw::kUnit;
  double height_min = 0.1;
  int access_size = 0;  // 0 = all resources
};

LineProblem make_random_line_problem(const LineGenConfig& cfg, Rng& rng);

}  // namespace treesched
