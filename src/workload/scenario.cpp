#include "workload/scenario.hpp"

#include <sstream>

namespace treesched {

Problem make_tree_problem(const TreeScenarioSpec& spec) {
  Rng rng(spec.seed);
  Problem problem(spec.num_vertices,
                  make_networks(spec.shape, spec.num_vertices,
                                spec.num_networks, rng,
                                spec.identical_networks));
  apply_capacity_law(problem, spec.capacities, spec.capacity_base,
                     spec.capacity_spread, rng);
  add_random_demands(problem, spec.demands, rng);
  problem.finalize();
  return problem;
}

Problem make_line_problem(const LineScenarioSpec& spec) {
  Rng rng(spec.seed);
  return make_random_line_problem(spec.line, rng).lower();
}

std::string describe(const TreeScenarioSpec& spec) {
  std::ostringstream os;
  os << to_string(spec.shape) << " n=" << spec.num_vertices << " r="
     << spec.num_networks << " m=" << spec.demands.num_demands << " h="
     << to_string(spec.demands.heights) << " p="
     << to_string(spec.demands.profits);
  if (spec.capacity_spread > 1.0)
    os << " cap=" << to_string(spec.capacities) << "x" << spec.capacity_spread;
  return os.str();
}

std::string describe(const LineScenarioSpec& spec) {
  std::ostringstream os;
  os << "line slots=" << spec.line.num_slots << " r="
     << spec.line.num_resources << " m=" << spec.line.num_demands
     << " slack=" << spec.line.window_slack << " h="
     << to_string(spec.line.heights);
  return os.str();
}

}  // namespace treesched
