// Seeded tree-topology generators for the benchmark workloads.  The
// shapes stress different aspects of the decompositions: paths maximize
// root-fixing depth, stars maximize degree, caterpillars/brooms mix both,
// random-attachment trees model scale-free-ish communication networks,
// and complete binary trees are the balanced reference.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/tree_network.hpp"

namespace treesched {

enum class TreeShape {
  kRandomAttachment,  // vertex i attaches to a uniform random j < i
  kBinary,            // complete binary tree
  kPath,              // 0-1-2-...-(n-1)
  kStar,              // all vertices attached to vertex 0
  kCaterpillar,       // spine of n/2 vertices, legs attached round-robin
  kBroom,             // path of n/2 vertices, star at the far end
};

const char* to_string(TreeShape shape);

TreeNetwork make_tree(TreeShape shape, VertexId n, Rng& rng);

// r networks over the same vertex set.  identical = true replicates one
// topology (the multi-resource line/tree setting); false draws fresh
// topologies per network (heterogeneous fabrics).
std::vector<TreeNetwork> make_networks(TreeShape shape, VertexId n, int r,
                                       Rng& rng, bool identical = false);

// All shapes, for property-test sweeps.
inline constexpr TreeShape kAllTreeShapes[] = {
    TreeShape::kRandomAttachment, TreeShape::kBinary,   TreeShape::kPath,
    TreeShape::kStar,             TreeShape::kCaterpillar,
    TreeShape::kBroom,
};

}  // namespace treesched
