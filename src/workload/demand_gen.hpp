// Random demand generation for tree problems: endpoint placement, profit
// and height laws, and access-set sampling.  All draws come from the
// caller's Rng, so benchmark rows are reproducible by seed.
#pragma once

#include "common/rng.hpp"
#include "model/problem.hpp"

namespace treesched {

enum class EndpointLaw {
  kUniformPair,  // two distinct uniform vertices
  kLocalPair,    // second endpoint within hop distance <= locality of first
  kLeafToLeaf,   // two distinct leaves of network 0
};

enum class ProfitLaw {
  kUniform,             // uniform in [1, profit_max]
  kZipf,                // Zipf(1.1)-distributed in [1, profit_max]
  kProportionalLength,  // path length in network 0 times uniform [1, 4]
};

enum class HeightLaw {
  kUnit,          // h = 1 (the unit-height case)
  kUniformRange,  // uniform in [height_min, 1]
  kBimodal,       // half narrow (<= 1/2), half wide (> 1/2)
  kNarrowOnly,    // uniform in [height_min, 1/2]
};

const char* to_string(EndpointLaw law);
const char* to_string(ProfitLaw law);
const char* to_string(HeightLaw law);

struct DemandGenConfig {
  int num_demands = 50;
  EndpointLaw endpoints = EndpointLaw::kUniformPair;
  ProfitLaw profits = ProfitLaw::kUniform;
  double profit_max = 100.0;
  HeightLaw heights = HeightLaw::kUnit;
  double height_min = 0.1;
  int locality = 4;     // for kLocalPair
  int access_size = 0;  // 0 = all networks, else random subset of this size
};

// Adds cfg.num_demands random demands (with access sets) to `problem`.
// Must be called before finalize().
void add_random_demands(Problem& problem, const DemandGenConfig& cfg,
                        Rng& rng);

}  // namespace treesched
