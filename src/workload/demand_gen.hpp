// Random demand generation for tree problems: endpoint placement, profit
// and height laws, and access-set sampling.  All draws come from the
// caller's Rng, so benchmark rows are reproducible by seed.
#pragma once

#include "common/rng.hpp"
#include "model/problem.hpp"

namespace treesched {

enum class EndpointLaw {
  kUniformPair,  // two distinct uniform vertices
  kLocalPair,    // second endpoint within hop distance <= locality of first
  kLeafToLeaf,   // two distinct leaves of network 0
};

enum class ProfitLaw {
  kUniform,             // uniform in [1, profit_max]
  kZipf,                // Zipf(1.1)-distributed in [1, profit_max]
  kProportionalLength,  // path length in network 0 times uniform [1, 4]
};

enum class HeightLaw {
  kUnit,          // h = 1 (the unit-height case)
  kUniformRange,  // uniform in [height_min, 1]
  kBimodal,       // half narrow (<= 1/2), half wide (> 1/2)
  kNarrowOnly,    // uniform in [height_min, 1/2]
};

const char* to_string(EndpointLaw law);
const char* to_string(ProfitLaw law);
const char* to_string(HeightLaw law);

struct DemandGenConfig {
  int num_demands = 50;
  EndpointLaw endpoints = EndpointLaw::kUniformPair;
  ProfitLaw profits = ProfitLaw::kUniform;
  double profit_max = 100.0;
  HeightLaw heights = HeightLaw::kUnit;
  double height_min = 0.1;
  int locality = 4;     // for kLocalPair
  int access_size = 0;  // 0 = all networks, else random subset of this size
};

// One sampled demand, not yet materialized into a Problem.  The online
// event stream draws these against a *finalized* base problem (arrivals
// are materialized into per-batch rebuilds), while add_random_demands
// below feeds them straight into an unfinalized one.
struct DemandDraw {
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;
  Profit profit = 1.0;
  Height height = 1.0;
  // Empty = all networks (Problem's set_access default).
  std::vector<NetworkId> access;
};

// Draws demands under the config's laws.  The draw sequence per demand
// (endpoints, profit, height, access shuffle — in that order) is part of
// the seeded-reproducibility contract: add_random_demands(problem, cfg,
// rng) materializes exactly the draws next() yields from an equal Rng.
class DemandSampler {
 public:
  // The problem provides the topology the laws sample against (vertex
  // count, network 0 adjacency, network count); it may be finalized.
  DemandSampler(const Problem& problem, const DemandGenConfig& cfg);

  DemandDraw next(Rng& rng) const;

 private:
  const Problem* problem_;
  DemandGenConfig cfg_;
  std::vector<VertexId> leaves_;  // of network 0, for kLeafToLeaf
};

// Adds cfg.num_demands random demands (with access sets) to `problem`.
// Must be called before finalize().
void add_random_demands(Problem& problem, const DemandGenConfig& cfg,
                        Rng& rng);

}  // namespace treesched
