// Named end-to-end scenario builders shared by tests, benches and
// examples: one call produces a finalized Problem from a compact spec.
#pragma once

#include <string>

#include "capacity/capacity_profile.hpp"
#include "model/problem.hpp"
#include "workload/demand_gen.hpp"
#include "workload/line_gen.hpp"
#include "workload/tree_gen.hpp"

namespace treesched {

struct TreeScenarioSpec {
  TreeShape shape = TreeShape::kRandomAttachment;
  VertexId num_vertices = 64;
  int num_networks = 2;
  bool identical_networks = false;
  DemandGenConfig demands;
  CapacityLaw capacities = CapacityLaw::kUniform;
  Capacity capacity_base = 1.0;
  double capacity_spread = 1.0;
  std::uint64_t seed = 1;
};

// Finalized tree problem.
Problem make_tree_problem(const TreeScenarioSpec& spec);

struct LineScenarioSpec {
  LineGenConfig line;
  std::uint64_t seed = 1;
};

// Finalized, lowered line problem (instances = all window placements).
Problem make_line_problem(const LineScenarioSpec& spec);

// Human-readable one-line description for benchmark tables.
std::string describe(const TreeScenarioSpec& spec);
std::string describe(const LineScenarioSpec& spec);

}  // namespace treesched
