#include "workload/line_gen.hpp"

#include <algorithm>
#include <cmath>

namespace treesched {

LineProblem make_random_line_problem(const LineGenConfig& cfg, Rng& rng) {
  TS_REQUIRE(cfg.num_slots >= 2);
  TS_REQUIRE(cfg.max_proc_time >= cfg.min_proc_time);
  TS_REQUIRE(cfg.max_proc_time <= cfg.num_slots);
  TS_REQUIRE(cfg.window_slack >= 1.0);
  LineProblem line(cfg.num_slots, cfg.num_resources);

  for (int k = 0; k < cfg.num_demands; ++k) {
    const int rho = static_cast<int>(
        rng.uniform_int(cfg.min_proc_time, cfg.max_proc_time));
    const int window = std::min(
        cfg.num_slots,
        std::max(rho, static_cast<int>(std::lround(rho * cfg.window_slack))));
    const int release = static_cast<int>(
        rng.uniform_int(0, cfg.num_slots - window));
    const int deadline = release + window - 1;

    Profit profit = 1.0;
    switch (cfg.profits) {
      case ProfitLaw::kUniform:
        profit = rng.uniform(1.0, cfg.profit_max);
        break;
      case ProfitLaw::kZipf:
        profit = static_cast<Profit>(
            rng.zipf(static_cast<std::int64_t>(cfg.profit_max), 1.1));
        break;
      case ProfitLaw::kProportionalLength:
        profit = static_cast<Profit>(rho) * rng.uniform(1.0, 4.0);
        break;
    }

    Height height = 1.0;
    switch (cfg.heights) {
      case HeightLaw::kUnit:
        height = 1.0;
        break;
      case HeightLaw::kUniformRange:
        height = rng.uniform(cfg.height_min, 1.0);
        break;
      case HeightLaw::kBimodal:
        height = rng.chance(0.5) ? rng.uniform(cfg.height_min, 0.5)
                                 : rng.uniform(0.5 + 1e-6, 1.0);
        break;
      case HeightLaw::kNarrowOnly:
        height = rng.uniform(cfg.height_min, 0.5);
        break;
    }

    const DemandId d = line.add_demand(release, deadline, rho, profit, height);

    if (cfg.access_size > 0 && cfg.access_size < cfg.num_resources) {
      std::vector<NetworkId> all(
          static_cast<std::size_t>(cfg.num_resources));
      for (int q = 0; q < cfg.num_resources; ++q)
        all[static_cast<std::size_t>(q)] = q;
      rng.shuffle(all);
      all.resize(static_cast<std::size_t>(cfg.access_size));
      line.set_access(d, std::move(all));
    }
  }
  return line;
}

}  // namespace treesched
