#include "workload/tree_gen.hpp"

namespace treesched {

const char* to_string(TreeShape shape) {
  switch (shape) {
    case TreeShape::kRandomAttachment:
      return "random";
    case TreeShape::kBinary:
      return "binary";
    case TreeShape::kPath:
      return "path";
    case TreeShape::kStar:
      return "star";
    case TreeShape::kCaterpillar:
      return "caterpillar";
    case TreeShape::kBroom:
      return "broom";
  }
  return "?";
}

TreeNetwork make_tree(TreeShape shape, VertexId n, Rng& rng) {
  TS_REQUIRE(n >= 2);
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(static_cast<std::size_t>(n - 1));
  switch (shape) {
    case TreeShape::kRandomAttachment:
      for (VertexId i = 1; i < n; ++i)
        edges.emplace_back(
            static_cast<VertexId>(rng.next_below(
                static_cast<std::uint64_t>(i))),
            i);
      break;
    case TreeShape::kBinary:
      for (VertexId i = 1; i < n; ++i) edges.emplace_back((i - 1) / 2, i);
      break;
    case TreeShape::kPath:
      for (VertexId i = 1; i < n; ++i) edges.emplace_back(i - 1, i);
      break;
    case TreeShape::kStar:
      for (VertexId i = 1; i < n; ++i) edges.emplace_back(0, i);
      break;
    case TreeShape::kCaterpillar: {
      const VertexId spine = std::max<VertexId>(2, n / 2);
      for (VertexId i = 1; i < spine; ++i) edges.emplace_back(i - 1, i);
      for (VertexId i = spine; i < n; ++i)
        edges.emplace_back((i - spine) % spine, i);
      break;
    }
    case TreeShape::kBroom: {
      const VertexId handle = std::max<VertexId>(2, n / 2);
      for (VertexId i = 1; i < handle; ++i) edges.emplace_back(i - 1, i);
      for (VertexId i = handle; i < n; ++i) edges.emplace_back(handle - 1, i);
      break;
    }
  }
  return TreeNetwork(n, std::move(edges));
}

std::vector<TreeNetwork> make_networks(TreeShape shape, VertexId n, int r,
                                       Rng& rng, bool identical) {
  TS_REQUIRE(r >= 1);
  std::vector<TreeNetwork> networks;
  networks.reserve(static_cast<std::size_t>(r));
  if (identical) {
    const TreeNetwork one = make_tree(shape, n, rng);
    for (int q = 0; q < r; ++q) networks.push_back(one);
  } else {
    for (int q = 0; q < r; ++q) networks.push_back(make_tree(shape, n, rng));
  }
  return networks;
}

}  // namespace treesched
