#include "workload/demand_gen.hpp"

#include <algorithm>

namespace treesched {

const char* to_string(EndpointLaw law) {
  switch (law) {
    case EndpointLaw::kUniformPair:
      return "uniform-pair";
    case EndpointLaw::kLocalPair:
      return "local-pair";
    case EndpointLaw::kLeafToLeaf:
      return "leaf-to-leaf";
  }
  return "?";
}

const char* to_string(ProfitLaw law) {
  switch (law) {
    case ProfitLaw::kUniform:
      return "uniform";
    case ProfitLaw::kZipf:
      return "zipf";
    case ProfitLaw::kProportionalLength:
      return "prop-length";
  }
  return "?";
}

const char* to_string(HeightLaw law) {
  switch (law) {
    case HeightLaw::kUnit:
      return "unit";
    case HeightLaw::kUniformRange:
      return "uniform";
    case HeightLaw::kBimodal:
      return "bimodal";
    case HeightLaw::kNarrowOnly:
      return "narrow";
  }
  return "?";
}

namespace {

VertexId random_vertex(const Problem& problem, Rng& rng) {
  return static_cast<VertexId>(rng.next_below(
      static_cast<std::uint64_t>(problem.num_vertices())));
}

// A vertex within `locality` hops of `from` in network 0 (BFS sample).
VertexId nearby_vertex(const Problem& problem, VertexId from, int locality,
                       Rng& rng) {
  const TreeNetwork& network = problem.network(0);
  std::vector<VertexId> frontier{from}, pool;
  std::vector<char> seen(static_cast<std::size_t>(problem.num_vertices()), 0);
  seen[static_cast<std::size_t>(from)] = 1;
  for (int hop = 0; hop < locality && !frontier.empty(); ++hop) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      for (const auto& adj : network.neighbors(v)) {
        if (!seen[static_cast<std::size_t>(adj.to)]) {
          seen[static_cast<std::size_t>(adj.to)] = 1;
          next.push_back(adj.to);
          pool.push_back(adj.to);
        }
      }
    }
    frontier.swap(next);
  }
  if (pool.empty()) return kNoVertex;
  return rng.pick(pool);
}

std::vector<VertexId> leaves_of(const TreeNetwork& network) {
  std::vector<VertexId> leaves;
  for (VertexId v = 0; v < network.num_vertices(); ++v)
    if (network.degree(v) == 1) leaves.push_back(v);
  return leaves;
}

Height draw_height(const DemandGenConfig& cfg, Rng& rng) {
  switch (cfg.heights) {
    case HeightLaw::kUnit:
      return 1.0;
    case HeightLaw::kUniformRange:
      return rng.uniform(cfg.height_min, 1.0);
    case HeightLaw::kBimodal:
      return rng.chance(0.5) ? rng.uniform(cfg.height_min, 0.5)
                             : rng.uniform(0.5 + 1e-6, 1.0);
    case HeightLaw::kNarrowOnly:
      return rng.uniform(cfg.height_min, 0.5);
  }
  return 1.0;
}

}  // namespace

DemandSampler::DemandSampler(const Problem& problem,
                             const DemandGenConfig& cfg)
    : problem_(&problem),
      cfg_(cfg),
      leaves_(leaves_of(problem.network(0))) {}

DemandDraw DemandSampler::next(Rng& rng) const {
  const Problem& problem = *problem_;
  DemandDraw draw;
  switch (cfg_.endpoints) {
    case EndpointLaw::kUniformPair:
      draw.u = random_vertex(problem, rng);
      do {
        draw.v = random_vertex(problem, rng);
      } while (draw.v == draw.u);
      break;
    case EndpointLaw::kLocalPair:
      draw.u = random_vertex(problem, rng);
      draw.v = nearby_vertex(problem, draw.u, cfg_.locality, rng);
      if (draw.v == kNoVertex) {
        do {
          draw.v = random_vertex(problem, rng);
        } while (draw.v == draw.u);
      }
      break;
    case EndpointLaw::kLeafToLeaf:
      TS_REQUIRE(leaves_.size() >= 2);
      draw.u = rng.pick(leaves_);
      do {
        draw.v = rng.pick(leaves_);
      } while (draw.v == draw.u);
      break;
  }

  switch (cfg_.profits) {
    case ProfitLaw::kUniform:
      draw.profit = rng.uniform(1.0, cfg_.profit_max);
      break;
    case ProfitLaw::kZipf:
      draw.profit = static_cast<Profit>(
          rng.zipf(static_cast<std::int64_t>(cfg_.profit_max), 1.1));
      break;
    case ProfitLaw::kProportionalLength:
      draw.profit =
          static_cast<Profit>(problem.network(0).dist(draw.u, draw.v)) *
          rng.uniform(1.0, 4.0);
      break;
  }

  draw.height = draw_height(cfg_, rng);

  if (cfg_.access_size > 0 && cfg_.access_size < problem.num_networks()) {
    std::vector<NetworkId> all(
        static_cast<std::size_t>(problem.num_networks()));
    for (int q = 0; q < problem.num_networks(); ++q)
      all[static_cast<std::size_t>(q)] = q;
    rng.shuffle(all);
    all.resize(static_cast<std::size_t>(cfg_.access_size));
    draw.access = std::move(all);
  }
  return draw;
}

void add_random_demands(Problem& problem, const DemandGenConfig& cfg,
                        Rng& rng) {
  TS_REQUIRE(!problem.finalized());
  TS_REQUIRE(cfg.num_demands >= 1);
  const DemandSampler sampler(problem, cfg);
  for (int k = 0; k < cfg.num_demands; ++k) {
    DemandDraw draw = sampler.next(rng);
    const DemandId d =
        problem.add_demand(draw.u, draw.v, draw.profit, draw.height);
    if (!draw.access.empty()) problem.set_access(d, std::move(draw.access));
  }
}

}  // namespace treesched
