#include "workload/demand_gen.hpp"

#include <algorithm>

namespace treesched {

const char* to_string(EndpointLaw law) {
  switch (law) {
    case EndpointLaw::kUniformPair:
      return "uniform-pair";
    case EndpointLaw::kLocalPair:
      return "local-pair";
    case EndpointLaw::kLeafToLeaf:
      return "leaf-to-leaf";
  }
  return "?";
}

const char* to_string(ProfitLaw law) {
  switch (law) {
    case ProfitLaw::kUniform:
      return "uniform";
    case ProfitLaw::kZipf:
      return "zipf";
    case ProfitLaw::kProportionalLength:
      return "prop-length";
  }
  return "?";
}

const char* to_string(HeightLaw law) {
  switch (law) {
    case HeightLaw::kUnit:
      return "unit";
    case HeightLaw::kUniformRange:
      return "uniform";
    case HeightLaw::kBimodal:
      return "bimodal";
    case HeightLaw::kNarrowOnly:
      return "narrow";
  }
  return "?";
}

namespace {

VertexId random_vertex(const Problem& problem, Rng& rng) {
  return static_cast<VertexId>(rng.next_below(
      static_cast<std::uint64_t>(problem.num_vertices())));
}

// A vertex within `locality` hops of `from` in network 0 (BFS sample).
VertexId nearby_vertex(const Problem& problem, VertexId from, int locality,
                       Rng& rng) {
  const TreeNetwork& network = problem.network(0);
  std::vector<VertexId> frontier{from}, pool;
  std::vector<char> seen(static_cast<std::size_t>(problem.num_vertices()), 0);
  seen[static_cast<std::size_t>(from)] = 1;
  for (int hop = 0; hop < locality && !frontier.empty(); ++hop) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      for (const auto& adj : network.neighbors(v)) {
        if (!seen[static_cast<std::size_t>(adj.to)]) {
          seen[static_cast<std::size_t>(adj.to)] = 1;
          next.push_back(adj.to);
          pool.push_back(adj.to);
        }
      }
    }
    frontier.swap(next);
  }
  if (pool.empty()) return kNoVertex;
  return rng.pick(pool);
}

std::vector<VertexId> leaves_of(const TreeNetwork& network) {
  std::vector<VertexId> leaves;
  for (VertexId v = 0; v < network.num_vertices(); ++v)
    if (network.degree(v) == 1) leaves.push_back(v);
  return leaves;
}

Height draw_height(const DemandGenConfig& cfg, Rng& rng) {
  switch (cfg.heights) {
    case HeightLaw::kUnit:
      return 1.0;
    case HeightLaw::kUniformRange:
      return rng.uniform(cfg.height_min, 1.0);
    case HeightLaw::kBimodal:
      return rng.chance(0.5) ? rng.uniform(cfg.height_min, 0.5)
                             : rng.uniform(0.5 + 1e-6, 1.0);
    case HeightLaw::kNarrowOnly:
      return rng.uniform(cfg.height_min, 0.5);
  }
  return 1.0;
}

}  // namespace

void add_random_demands(Problem& problem, const DemandGenConfig& cfg,
                        Rng& rng) {
  TS_REQUIRE(!problem.finalized());
  TS_REQUIRE(cfg.num_demands >= 1);
  const std::vector<VertexId> leaves = leaves_of(problem.network(0));

  for (int k = 0; k < cfg.num_demands; ++k) {
    VertexId u = kNoVertex, v = kNoVertex;
    switch (cfg.endpoints) {
      case EndpointLaw::kUniformPair:
        u = random_vertex(problem, rng);
        do {
          v = random_vertex(problem, rng);
        } while (v == u);
        break;
      case EndpointLaw::kLocalPair:
        u = random_vertex(problem, rng);
        v = nearby_vertex(problem, u, cfg.locality, rng);
        if (v == kNoVertex) {
          do {
            v = random_vertex(problem, rng);
          } while (v == u);
        }
        break;
      case EndpointLaw::kLeafToLeaf:
        TS_REQUIRE(leaves.size() >= 2);
        u = rng.pick(leaves);
        do {
          v = rng.pick(leaves);
        } while (v == u);
        break;
    }

    Profit profit = 1.0;
    switch (cfg.profits) {
      case ProfitLaw::kUniform:
        profit = rng.uniform(1.0, cfg.profit_max);
        break;
      case ProfitLaw::kZipf:
        profit = static_cast<Profit>(
            rng.zipf(static_cast<std::int64_t>(cfg.profit_max), 1.1));
        break;
      case ProfitLaw::kProportionalLength:
        profit = static_cast<Profit>(problem.network(0).dist(u, v)) *
                 rng.uniform(1.0, 4.0);
        break;
    }

    const DemandId d =
        problem.add_demand(u, v, profit, draw_height(cfg, rng));

    if (cfg.access_size > 0 && cfg.access_size < problem.num_networks()) {
      std::vector<NetworkId> all(
          static_cast<std::size_t>(problem.num_networks()));
      for (int q = 0; q < problem.num_networks(); ++q)
        all[static_cast<std::size_t>(q)] = q;
      rng.shuffle(all);
      all.resize(static_cast<std::size_t>(cfg.access_size));
      problem.set_access(d, std::move(all));
    }
  }
}

}  // namespace treesched
