#include "decomp/tree_decomposition.hpp"

#include <algorithm>

namespace treesched {

const char* to_string(DecompKind kind) {
  switch (kind) {
    case DecompKind::kRootFixing:
      return "root-fixing";
    case DecompKind::kBalancing:
      return "balancing";
    case DecompKind::kIdeal:
      return "ideal";
  }
  return "?";
}

TreeDecomposition::TreeDecomposition(const TreeNetwork& network, VertexId root,
                                     std::vector<VertexId> parent)
    : network_(&network), root_(root), parent_(std::move(parent)) {
  const auto n = static_cast<std::size_t>(network_->num_vertices());
  TS_REQUIRE(parent_.size() == n);
  TS_REQUIRE(root_ >= 0 && root_ < network_->num_vertices());
  TS_REQUIRE(parent_[static_cast<std::size_t>(root_)] == kNoVertex);

  children_.assign(n, {});
  for (VertexId v = 0; v < network_->num_vertices(); ++v) {
    if (v == root_) continue;
    const VertexId p = parent_[static_cast<std::size_t>(v)];
    TS_REQUIRE(p >= 0 && p < network_->num_vertices());
    children_[static_cast<std::size_t>(p)].push_back(v);
  }

  // Iterative DFS: depths (root = 1) and Euler intervals.
  depth_.assign(n, 0);
  tin_.assign(n, -1);
  tout_.assign(n, -1);
  int clock = 0;
  std::vector<std::pair<VertexId, std::size_t>> stack;
  stack.emplace_back(root_, 0);
  depth_[static_cast<std::size_t>(root_)] = 1;
  tin_[static_cast<std::size_t>(root_)] = clock++;
  max_depth_ = 1;
  while (!stack.empty()) {
    auto& [v, next_child] = stack.back();
    const auto& kids = children_[static_cast<std::size_t>(v)];
    if (next_child < kids.size()) {
      const VertexId c = kids[next_child++];
      depth_[static_cast<std::size_t>(c)] =
          depth_[static_cast<std::size_t>(v)] + 1;
      max_depth_ = std::max(max_depth_, depth_[static_cast<std::size_t>(c)]);
      tin_[static_cast<std::size_t>(c)] = clock++;
      stack.emplace_back(c, 0);
    } else {
      tout_[static_cast<std::size_t>(v)] = clock++;
      stack.pop_back();
    }
  }
  // Every vertex must have been visited (H spans V and is acyclic).
  for (std::size_t v = 0; v < n; ++v) TS_REQUIRE(tin_[v] >= 0);
}

bool TreeDecomposition::is_ancestor(VertexId anc, VertexId v) const {
  return tin_[check(anc)] <= tin_[check(v)] && tout_[check(v)] <= tout_[check(anc)];
}

VertexId TreeDecomposition::lca(VertexId u, VertexId v) const {
  check(u);
  check(v);
  while (u != v) {
    if (depth_[static_cast<std::size_t>(u)] >=
        depth_[static_cast<std::size_t>(v)])
      u = parent_[static_cast<std::size_t>(u)];
    else
      v = parent_[static_cast<std::size_t>(v)];
  }
  return u;
}

VertexId TreeDecomposition::capture(VertexId u, VertexId v) const {
  VertexId best = kNoVertex;
  for (VertexId x : network_->path_vertices(u, v)) {
    if (best == kNoVertex ||
        depth_[static_cast<std::size_t>(x)] <
            depth_[static_cast<std::size_t>(best)])
      best = x;
  }
  // Property (i) implies the minimum is unique: it must be the H-LCA of
  // the endpoints, which lies on the path.
  TS_DCHECK(best == lca(u, v));
  return best;
}

void TreeDecomposition::build_pivots() const {
  if (pivots_built_) return;
  const auto n = static_cast<std::size_t>(network_->num_vertices());
  pivots_.assign(n, {});
  // For a T-edge (x, y) with y an H-ancestor of x: y is a pivot of C(z)
  // for every z on the H-path from x (inclusive) up to y (exclusive).
  for (EdgeId e = 0; e < network_->num_edges(); ++e) {
    VertexId x = network_->edge_u(e);
    VertexId y = network_->edge_v(e);
    if (is_ancestor(x, y)) std::swap(x, y);
    TS_REQUIRE(is_ancestor(y, x));  // decomposition property
    for (VertexId z = x; z != y; z = parent_[static_cast<std::size_t>(z)])
      pivots_[static_cast<std::size_t>(z)].push_back(y);
  }
  pivot_size_ = 0;
  for (auto& ps : pivots_) {
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
    pivot_size_ = std::max(pivot_size_, static_cast<int>(ps.size()));
  }
  pivots_built_ = true;
}

const std::vector<VertexId>& TreeDecomposition::pivots(VertexId z) const {
  build_pivots();
  return pivots_[check(z)];
}

int TreeDecomposition::pivot_size() const {
  build_pivots();
  return pivot_size_;
}

TreeDecomposition::Validation TreeDecomposition::validate() const {
  Validation result;
  const VertexId n = network_->num_vertices();

  // (a) Every T-edge joins H-comparable vertices.
  for (EdgeId e = 0; e < network_->num_edges(); ++e) {
    const VertexId x = network_->edge_u(e);
    const VertexId y = network_->edge_v(e);
    if (!is_ancestor(x, y) && !is_ancestor(y, x)) {
      result.ok = false;
      result.why = "T-edge (" + std::to_string(x) + "," + std::to_string(y) +
                   ") joins H-incomparable vertices";
      return result;
    }
  }

  // (b) Every C(z) is T-connected: BFS within the component.
  std::vector<int> stamp(static_cast<std::size_t>(n), -1);
  std::vector<VertexId> comp, queue;
  for (VertexId z = 0; z < n; ++z) {
    comp.clear();
    // Collect C(z) = z + H-descendants via children lists.
    comp.push_back(z);
    for (std::size_t head = 0; head < comp.size(); ++head)
      for (VertexId c : children_[static_cast<std::size_t>(comp[head])])
        comp.push_back(c);
    for (VertexId v : comp) stamp[static_cast<std::size_t>(v)] = z;
    // BFS in T restricted to the component.
    queue.clear();
    queue.push_back(z);
    stamp[static_cast<std::size_t>(z)] = z + n;  // visited marker
    std::size_t reached = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const auto& adj : network_->neighbors(queue[head])) {
        if (stamp[static_cast<std::size_t>(adj.to)] == z) {
          stamp[static_cast<std::size_t>(adj.to)] = z + n;
          queue.push_back(adj.to);
          ++reached;
        }
      }
    }
    if (reached != comp.size()) {
      result.ok = false;
      result.why = "component C(" + std::to_string(z) + ") is not T-connected";
      return result;
    }
  }
  return result;
}

VertexId find_balancer(const TreeNetwork& network,
                       const std::vector<VertexId>& verts,
                       const std::vector<int>& in_comp, int stamp) {
  TS_REQUIRE(!verts.empty());
  const auto size = static_cast<int>(verts.size());
  if (size == 1) return verts.front();

  // Iterative DFS from verts[0] inside the component computing subtree
  // sizes, then pick the vertex minimizing the largest split piece (the
  // classic centroid, which satisfies the <= floor(|C|/2) bound).
  struct Frame {
    VertexId v;
    VertexId from;
    std::size_t next = 0;
  };
  // Use local maps keyed by vertex id; the component can be a sparse
  // subset of V, so a hash-free approach uses two scratch arrays indexed
  // by vertex (allocated by the caller via in_comp; sizes are local).
  std::vector<std::pair<VertexId, VertexId>> order;  // (vertex, dfs parent)
  order.reserve(verts.size());
  std::vector<Frame> stack;
  stack.push_back({verts.front(), kNoVertex, 0});
  order.emplace_back(verts.front(), kNoVertex);
  // Track visited via a local set: mark by recording position.
  std::vector<int> pos(in_comp.size(), -1);
  pos[static_cast<std::size_t>(verts.front())] = 0;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto nbrs = network.neighbors(f.v);
    if (f.next < nbrs.size()) {
      const VertexId to = nbrs[f.next++].to;
      if (to == f.from) continue;
      if (in_comp[static_cast<std::size_t>(to)] != stamp) continue;
      if (pos[static_cast<std::size_t>(to)] >= 0) continue;
      pos[static_cast<std::size_t>(to)] = static_cast<int>(order.size());
      order.emplace_back(to, f.v);
      stack.push_back({to, f.v, 0});
    } else {
      stack.pop_back();
    }
  }
  TS_REQUIRE(order.size() == verts.size());

  // Subtree sizes in reverse DFS order.
  std::vector<int> sub(order.size(), 1);
  for (std::size_t i = order.size(); i-- > 1;) {
    const auto [v, from] = order[i];
    sub[static_cast<std::size_t>(pos[static_cast<std::size_t>(from)])] +=
        sub[i];
  }

  VertexId best = verts.front();
  int best_piece = size;  // max piece when removing `best`
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto [v, from] = order[i];
    int largest = size - sub[i];  // the piece containing the DFS parent
    for (const auto& adj : network.neighbors(v)) {
      if (adj.to == from) continue;
      if (in_comp[static_cast<std::size_t>(adj.to)] != stamp) continue;
      largest = std::max(
          largest, sub[static_cast<std::size_t>(
                       pos[static_cast<std::size_t>(adj.to)])]);
    }
    if (largest < best_piece) {
      best_piece = largest;
      best = v;
    }
  }
  TS_REQUIRE(best_piece <= size / 2);  // centroid guarantee (paper Sec. 4.2)
  return best;
}

}  // namespace treesched
