// Root-fixing decomposition (paper, Section 4.2): H is simply T rooted at
// an arbitrary vertex.  Every component C(z) has the single neighbor
// parent(z), so the pivot size is 1, but the depth can be as large as n.
// The sequential Appendix-A algorithm is built on this decomposition.
#include "decomp/tree_decomposition.hpp"

namespace treesched {

TreeDecomposition build_root_fixing(const TreeNetwork& network, VertexId root) {
  const auto n = static_cast<std::size_t>(network.num_vertices());
  TS_REQUIRE(root >= 0 && root < network.num_vertices());
  std::vector<VertexId> parent(n, kNoVertex);
  std::vector<char> seen(n, 0);
  std::vector<VertexId> queue;
  queue.reserve(n);
  queue.push_back(root);
  seen[static_cast<std::size_t>(root)] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    for (const auto& adj : network.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(adj.to)]) {
        seen[static_cast<std::size_t>(adj.to)] = 1;
        parent[static_cast<std::size_t>(adj.to)] = v;
        queue.push_back(adj.to);
      }
    }
  }
  return TreeDecomposition(network, root, std::move(parent));
}

TreeDecomposition build_decomposition(const TreeNetwork& network,
                                      DecompKind kind) {
  switch (kind) {
    case DecompKind::kRootFixing:
      return build_root_fixing(network);
    case DecompKind::kBalancing:
      return build_balancing(network);
    case DecompKind::kIdeal:
      return build_ideal(network);
  }
  TS_REQUIRE(false);
  return build_root_fixing(network);
}

}  // namespace treesched
