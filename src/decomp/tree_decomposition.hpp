// Tree decompositions (paper, Section 4).
//
// A tree decomposition of a tree-network T is a rooted tree H over the same
// vertex set such that
//   (i)  any demand path through vertices x and y also passes through
//        LCA_H(x, y), and
//   (ii) for every node z, C(z) — z together with its H-descendants —
//        induces a connected subtree (a "component") of T.
//
// These two properties are equivalent to H being an *elimination tree*
// (treedepth decomposition) of T: every T-edge joins H-comparable vertices
// and every C(z) is T-connected.  validate() checks exactly that pair of
// conditions, which is what the property tests exercise.
//
// The pivot set chi(z) is the T-neighborhood of C(z); its maximum size
// theta and the H-depth are the two efficacy measures: theta drives the
// critical-set size Delta = 2(theta+1) of the derived layered
// decomposition (Lemma 4.2) and the depth drives the number of epochs of
// the distributed algorithm (Section 5).
//
// Three constructions are provided (Sections 4.2-4.3):
//   - build_root_fixing:  theta = 1, depth up to n;
//   - build_balancing:    depth <= ceil(log n)+1, theta <= depth;
//   - build_ideal:        depth <= 2 ceil(log n)+1, theta <= 2
//                         (the paper's BuildIdealTD, Lemma 4.1).
#pragma once

#include <string>
#include <vector>

#include "common/prelude.hpp"
#include "graph/tree_network.hpp"

namespace treesched {

enum class DecompKind { kRootFixing, kBalancing, kIdeal };

const char* to_string(DecompKind kind);

class TreeDecomposition {
 public:
  // `parent[v]` is v's parent in H (kNoVertex for the root).  The
  // constructor derives depths (root depth = 1, the paper's convention),
  // children lists and Euler intervals; it requires the parent array to
  // describe a tree spanning all vertices of T.
  TreeDecomposition(const TreeNetwork& network, VertexId root,
                    std::vector<VertexId> parent);

  const TreeNetwork& network() const { return *network_; }
  VertexId root() const { return root_; }
  VertexId parent(VertexId v) const { return parent_[check(v)]; }
  int depth(VertexId v) const { return depth_[check(v)]; }
  int max_depth() const { return max_depth_; }
  const std::vector<VertexId>& children(VertexId v) const {
    return children_[check(v)];
  }

  // Ancestor-or-self test in H (O(1), Euler intervals).
  bool is_ancestor(VertexId anc, VertexId v) const;

  // LCA in H.  O(depth) walk; used only in validation and pivot building.
  VertexId lca(VertexId u, VertexId v) const;

  // The capture node mu(d) of the path u~v: the unique least-depth vertex
  // of H among the path's vertices (paper, Section 4.4).  O(path length).
  VertexId capture(VertexId u, VertexId v) const;

  // Pivot sets chi(z) = Gamma[C(z)] for all z, computed lazily once.
  const std::vector<VertexId>& pivots(VertexId z) const;
  // Maximum |chi(z)| over all z.
  int pivot_size() const;

  struct Validation {
    bool ok = true;
    std::string why;
  };
  // Full check of the elimination-tree characterization of properties
  // (i) + (ii).  O(n * depth); intended for tests.
  Validation validate() const;

 private:
  std::size_t check(VertexId v) const {
    TS_REQUIRE(v >= 0 && v < network_->num_vertices());
    return static_cast<std::size_t>(v);
  }
  void build_pivots() const;

  const TreeNetwork* network_;
  VertexId root_;
  std::vector<VertexId> parent_;
  std::vector<int> depth_;
  std::vector<std::vector<VertexId>> children_;
  std::vector<int> tin_, tout_;
  int max_depth_ = 0;

  mutable bool pivots_built_ = false;
  mutable std::vector<std::vector<VertexId>> pivots_;
  mutable int pivot_size_ = 0;
};

// Section 4.2: root T at `root` (default 0); theta = 1, depth up to n.
TreeDecomposition build_root_fixing(const TreeNetwork& network,
                                    VertexId root = 0);

// Section 4.2: recursive balancer (centroid) splitting; depth <=
// ceil(log n)+1, pivot size <= depth.
TreeDecomposition build_balancing(const TreeNetwork& network);

// Section 4.3: the ideal decomposition; depth <= 2 ceil(log n)+1,
// pivot size <= 2 (Lemma 4.1).
TreeDecomposition build_ideal(const TreeNetwork& network);

TreeDecomposition build_decomposition(const TreeNetwork& network,
                                      DecompKind kind);

// Shared helper (used by the balancing and ideal builders and by tests):
// a *balancer* of the component `verts` (paper, Section 4.2) — a vertex
// whose removal splits the component into pieces of size at most
// floor(|C|/2).  `in_comp` must be a membership mask over all vertices.
VertexId find_balancer(const TreeNetwork& network,
                       const std::vector<VertexId>& verts,
                       const std::vector<int>& in_comp, int stamp);

namespace detail {
// Splits a component (all vertices marked with `stamp` in `mark`) around
// `center`: returns the connected pieces of the component minus the
// center, consuming the marks (including the center's).  Shared by the
// balancing and ideal builders.
std::vector<std::vector<VertexId>> split_component(const TreeNetwork& network,
                                                   VertexId center,
                                                   std::vector<int>& mark,
                                                   int stamp);
}  // namespace detail

}  // namespace treesched
