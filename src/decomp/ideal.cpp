// Ideal tree decomposition (paper, Section 4.3, BuildIdealTD): depth at
// most 2*ceil(log n)+1 with pivot size theta <= 2 (Lemma 4.1).
//
// Each recursive call receives a component C with at most two outside
// T-neighbors, picks a balancer z, and splits C by z.  If the two outside
// neighbors attach (via their unique edges into C) to two *different*
// pieces — or at z itself — every piece already has at most two
// neighbors and z becomes the local root (Cases 1 / 2(a)).  Otherwise
// both attachment points u1', u2' land in the same piece C1; then the
// *junction* j = median_T(u1', u2', z) is made the local root with z as
// its child, C1 is re-split by j, the piece of C1 facing z hangs under z,
// and the remaining pieces of C1 hang under j (Case 2(b)).  Every child
// component halves in size while the H-depth grows by at most 2, giving
// the 2 log n depth bound; the case analysis keeps every component's
// neighborhood at size <= 2, giving theta <= 2.
#include "decomp/tree_decomposition.hpp"

#include <algorithm>
#include <utility>

namespace treesched {

namespace {

struct Task {
  std::vector<VertexId> verts;
  VertexId hparent;             // H-parent of this component's local root
  std::vector<VertexId> nbrs;   // outside T-neighbors of the component, <= 2
};

// The unique vertex of the (marked) component adjacent to outside vertex
// `u`.  Uniqueness: two edges from u into a connected component would
// close a cycle in T.
VertexId attachment(const TreeNetwork& network, VertexId u,
                    const std::vector<int>& mark, int stamp) {
  VertexId found = kNoVertex;
  for (const auto& adj : network.neighbors(u)) {
    if (mark[static_cast<std::size_t>(adj.to)] == stamp) {
      TS_REQUIRE(found == kNoVertex);
      found = adj.to;
    }
  }
  TS_REQUIRE(found != kNoVertex);
  return found;
}

int piece_containing(const std::vector<std::vector<VertexId>>& pieces,
                     VertexId v) {
  for (std::size_t i = 0; i < pieces.size(); ++i)
    if (std::find(pieces[i].begin(), pieces[i].end(), v) != pieces[i].end())
      return static_cast<int>(i);
  return -1;
}

}  // namespace

TreeDecomposition build_ideal(const TreeNetwork& network) {
  const auto n = static_cast<std::size_t>(network.num_vertices());
  std::vector<VertexId> parent(n, kNoVertex);
  std::vector<int> mark(n, 0);
  int next_stamp = 1;

  // Top level (proof of Lemma 4.1): root H at a balancer g of V; every
  // split piece has the single neighbor {g}.
  std::vector<VertexId> all(n);
  for (std::size_t v = 0; v < n; ++v) all[v] = static_cast<VertexId>(v);
  const int top_stamp = next_stamp++;
  for (VertexId v : all) mark[static_cast<std::size_t>(v)] = top_stamp;
  const VertexId root = find_balancer(network, all, mark, top_stamp);

  std::vector<Task> todo;
  for (auto& piece : detail::split_component(network, root, mark, top_stamp))
    todo.push_back({std::move(piece), root, {root}});

  while (!todo.empty()) {
    Task task = std::move(todo.back());
    todo.pop_back();
    TS_REQUIRE(task.nbrs.size() <= 2);  // BuildIdealTD precondition

    if (task.verts.size() == 1) {
      parent[static_cast<std::size_t>(task.verts.front())] = task.hparent;
      continue;
    }

    const int stamp = next_stamp++;
    for (VertexId v : task.verts) mark[static_cast<std::size_t>(v)] = stamp;

    // Attachment vertices of the outside neighbors (computed before the
    // split consumes the marks).
    std::vector<VertexId> attach;
    for (VertexId u : task.nbrs)
      attach.push_back(attachment(network, u, mark, stamp));

    const VertexId z = find_balancer(network, task.verts, mark, stamp);
    auto pieces = detail::split_component(network, z, mark, stamp);

    // Piece index of each attachment vertex (-1 when it is z itself).
    std::vector<int> attach_piece;
    for (VertexId a : attach)
      attach_piece.push_back(a == z ? -1 : piece_containing(pieces, a));

    const bool junction_case = task.nbrs.size() == 2 &&
                               attach_piece[0] >= 0 &&
                               attach_piece[0] == attach_piece[1];

    if (!junction_case) {
      // Cases 1 / 2(a): z is the local root; pieces hang under z.
      parent[static_cast<std::size_t>(z)] = task.hparent;
      for (std::size_t i = 0; i < pieces.size(); ++i) {
        std::vector<VertexId> nbrs{z};
        for (std::size_t k = 0; k < task.nbrs.size(); ++k)
          if (attach_piece[k] == static_cast<int>(i))
            nbrs.push_back(task.nbrs[k]);
        TS_REQUIRE(nbrs.size() <= 2);
        todo.push_back({std::move(pieces[i]), z, std::move(nbrs)});
      }
      continue;
    }

    // Case 2(b): both outside neighbors attach inside the same piece C1.
    const auto c1_index = static_cast<std::size_t>(attach_piece[0]);
    const VertexId u1p = attach[0];
    const VertexId u2p = attach[1];
    const VertexId j = network.median(u1p, u2p, z);

    parent[static_cast<std::size_t>(j)] = task.hparent;
    parent[static_cast<std::size_t>(z)] = j;

    // Pieces of C other than C1 hang under z with neighborhood {z}.
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      if (i == c1_index) continue;
      todo.push_back({std::move(pieces[i]), z, {z}});
    }

    // Re-split C1 around the junction j.
    std::vector<VertexId> c1 = std::move(pieces[c1_index]);
    TS_REQUIRE(std::find(c1.begin(), c1.end(), j) != c1.end());
    const int stamp1 = next_stamp++;
    for (VertexId v : c1) mark[static_cast<std::size_t>(v)] = stamp1;
    // w: the unique vertex of C1 adjacent to z (z has exactly one edge
    // into C1).  It lies on the j~z side by the median property.
    const VertexId w = attachment(network, z, mark, stamp1);
    auto sub = detail::split_component(network, j, mark, stamp1);
    for (auto& q : sub) {
      std::vector<VertexId> nbrs{j};
      VertexId hp = j;
      if (w != j && piece_containing({q}, w) == 0) {
        // The z-facing piece hangs under z with neighborhood {j, z}.
        nbrs.push_back(z);
        hp = z;
      }
      if (u1p != j &&
          std::find(q.begin(), q.end(), u1p) != q.end())
        nbrs.push_back(task.nbrs[0]);
      if (u2p != j && u2p != u1p &&
          std::find(q.begin(), q.end(), u2p) != q.end())
        nbrs.push_back(task.nbrs[1]);
      TS_REQUIRE(nbrs.size() <= 2);
      todo.push_back({std::move(q), hp, std::move(nbrs)});
    }
  }

  return TreeDecomposition(network, root, std::move(parent));
}

}  // namespace treesched
