#include "decomp/layered.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

namespace treesched {

namespace {

// Appends the global ids of the path edges adjacent to vertex y ("wings of
// y on path(d)", paper Section 4.4).  `pathv` are the path vertices in
// order; `offset` maps local edge ids of the network to global ids.
void add_wings(const TreeNetwork& network,
               const std::vector<VertexId>& pathv, VertexId y, EdgeId offset,
               std::vector<EdgeId>& out) {
  for (std::size_t k = 0; k < pathv.size(); ++k) {
    if (pathv[k] != y) continue;
    if (k > 0) {
      const EdgeId e = network.edge_between(pathv[k - 1], pathv[k]);
      TS_REQUIRE(e != kNoEdge);
      out.push_back(offset + e);
    }
    if (k + 1 < pathv.size()) {
      const EdgeId e = network.edge_between(pathv[k], pathv[k + 1]);
      TS_REQUIRE(e != kNoEdge);
      out.push_back(offset + e);
    }
    return;
  }
  TS_REQUIRE(false);  // y must lie on the path
}

void finalize_plan(const Problem& problem, LayeredPlan& plan,
                   InstanceId first = 0) {
  if (first == 0) {
    plan.delta = 0;
    plan.members.assign(static_cast<std::size_t>(plan.num_groups), {});
  }
  for (InstanceId i = first; i < problem.num_instances(); ++i) {
    auto& crit = plan.critical[static_cast<std::size_t>(i)];
    std::sort(crit.begin(), crit.end());
    crit.erase(std::unique(crit.begin(), crit.end()), crit.end());
    plan.delta = std::max(plan.delta, static_cast<int>(crit.size()));
    const int g = plan.group[static_cast<std::size_t>(i)];
    TS_REQUIRE(g >= 0 && g < plan.num_groups);
    plan.members[static_cast<std::size_t>(g)].push_back(i);
  }
}

// Fills plan.group[i] / plan.critical[i] for one instance against the
// per-network decompositions (the Lemma 4.2/4.3 assignment).
void plan_tree_instance(const Problem& problem,
                        const std::vector<TreeDecomposition>& decomps,
                        bool mu_wings_only, InstanceId i,
                        LayeredPlan& plan) {
  const DemandInstance& inst = problem.instance(i);
  const TreeDecomposition& decomp =
      decomps[static_cast<std::size_t>(inst.network)];
  const TreeNetwork& network = problem.network(inst.network);
  const EdgeId offset = problem.global_edge(inst.network, 0);

  const auto pathv = network.path_vertices(inst.u, inst.v);
  const VertexId mu = decomp.capture(inst.u, inst.v);
  plan.group[static_cast<std::size_t>(i)] =
      decomp.max_depth() - decomp.depth(mu);

  auto& crit = plan.critical[static_cast<std::size_t>(i)];
  add_wings(network, pathv, mu, offset, crit);
  if (!mu_wings_only) {
    for (VertexId u : decomp.pivots(mu)) {
      const VertexId bend = network.median(u, inst.u, inst.v);
      add_wings(network, pathv, bend, offset, crit);
    }
  }
}

}  // namespace

LayeredPlan build_tree_layered_plan(const Problem& problem, DecompKind kind,
                                    bool mu_wings_only) {
  // One decomposition per network; groups are indexed by capture depth
  // from the bottom (deepest captured = group 0 = raised first), so
  // G_k = union over networks of the k-th group (paper, Section 5).
  std::vector<TreeDecomposition> decomps;
  decomps.reserve(static_cast<std::size_t>(problem.num_networks()));
  for (NetworkId q = 0; q < problem.num_networks(); ++q)
    decomps.push_back(build_decomposition(problem.network(q), kind));
  return build_tree_layered_plan(problem, decomps, mu_wings_only);
}

LayeredPlan build_tree_layered_plan(
    const Problem& problem, const std::vector<TreeDecomposition>& decomps,
    bool mu_wings_only) {
  TS_REQUIRE(problem.finalized());
  TS_REQUIRE(static_cast<int>(decomps.size()) == problem.num_networks());
  LayeredPlan plan;
  plan.group.assign(static_cast<std::size_t>(problem.num_instances()), 0);
  plan.critical.assign(static_cast<std::size_t>(problem.num_instances()), {});

  plan.num_groups = 1;
  for (const auto& d : decomps)
    plan.num_groups = std::max(plan.num_groups, d.max_depth());

  for (InstanceId i = 0; i < problem.num_instances(); ++i)
    plan_tree_instance(problem, decomps, mu_wings_only, i, plan);
  finalize_plan(problem, plan);
  return plan;
}

void extend_tree_layered_plan(const Problem& problem,
                              const std::vector<TreeDecomposition>& decomps,
                              LayeredPlan& plan, bool mu_wings_only) {
  TS_REQUIRE(problem.finalized());
  TS_REQUIRE(static_cast<int>(decomps.size()) == problem.num_networks());
  const auto first = static_cast<InstanceId>(plan.group.size());
  TS_REQUIRE(first <= problem.num_instances());
  TS_REQUIRE(plan.critical.size() == plan.group.size());
  // num_groups depends only on the decompositions, so appending
  // instances never changes it (and existing group ids stay valid).
  plan.group.resize(static_cast<std::size_t>(problem.num_instances()), 0);
  plan.critical.resize(static_cast<std::size_t>(problem.num_instances()));
  for (InstanceId i = first; i < problem.num_instances(); ++i)
    plan_tree_instance(problem, decomps, mu_wings_only, i, plan);
  // New ids exceed every existing id, so push_back keeps each group's
  // member list ascending — identical to a from-scratch build.
  finalize_plan(problem, plan, first);
}

LayeredPlan build_line_layered_plan(const Problem& problem) {
  TS_REQUIRE(problem.finalized());
  LayeredPlan plan;
  plan.group.assign(static_cast<std::size_t>(problem.num_instances()), 0);
  plan.critical.assign(static_cast<std::size_t>(problem.num_instances()), {});

  const int lmin = problem.min_path_length();
  TS_REQUIRE(lmin >= 1);
  plan.num_groups = 1;
  for (InstanceId i = 0; i < problem.num_instances(); ++i) {
    const DemandInstance& inst = problem.instance(i);
    // Length class: group g holds lengths in [2^g * lmin, 2^(g+1) * lmin),
    // so lengths within a group differ by a factor < 2.
    const int len = static_cast<int>(inst.edges.size());
    int g = 0;
    while ((lmin << (g + 1)) <= len) ++g;
    plan.group[static_cast<std::size_t>(i)] = g;
    plan.num_groups = std::max(plan.num_groups, g + 1);

    // Instances of a line network have contiguous global edge ids; the
    // critical slots are the first, middle and last slot of the interval
    // (paper, Section 7: pi(d) = {s(d), mid(d), e(d)}).
    const EdgeId s = inst.edges.front();
    const EdgeId e = inst.edges.back();
    const EdgeId mid = (s + e) / 2;
    TS_REQUIRE(e - s + 1 == static_cast<EdgeId>(inst.edges.size()));
    auto& crit = plan.critical[static_cast<std::size_t>(i)];
    crit = {s, mid, e};
  }
  finalize_plan(problem, plan);
  return plan;
}

std::optional<std::string> interference_violation(const Problem& problem,
                                                  const LayeredPlan& plan) {
  // The pair scan is quadratic; rows are independent, so it parallelizes
  // trivially (the first violation found wins — which one is reported is
  // unspecified, as documented).
  std::optional<std::string> violation;
  std::atomic<bool> found{false};
#ifdef TREESCHED_HAS_OPENMP
#pragma omp parallel for schedule(dynamic, 8)
#endif
  for (InstanceId a = 0; a < problem.num_instances(); ++a) {
    if (found.load(std::memory_order_relaxed)) continue;
    for (InstanceId b = 0; b < problem.num_instances(); ++b) {
      if (a == b) continue;
      // d1 = a raised no later than d2 = b (group(a) <= group(b)).
      if (plan.group[static_cast<std::size_t>(a)] >
          plan.group[static_cast<std::size_t>(b)])
        continue;
      if (!problem.overlap(a, b)) continue;
      const auto& path_b = problem.instance(b).edges;
      bool hit = false;
      for (EdgeId e : plan.critical[static_cast<std::size_t>(a)]) {
        if (std::binary_search(path_b.begin(), path_b.end(), e)) {
          hit = true;
          break;
        }
      }
      if (!hit) {
        std::ostringstream os;
        os << "instances " << a << " (group "
           << plan.group[static_cast<std::size_t>(a)] << ") and " << b
           << " (group " << plan.group[static_cast<std::size_t>(b)]
           << ") overlap but path(" << b << ") misses pi(" << a << ")";
#ifdef TREESCHED_HAS_OPENMP
#pragma omp critical(treesched_interference)
#endif
        {
          if (!found.exchange(true)) violation = os.str();
        }
        break;
      }
    }
  }
  return violation;
}

}  // namespace treesched
