// Balancing decomposition (paper, Section 4.2, BuildBalTD): recursively
// pick a balancer (centroid) of the current component, make it the root,
// and recurse into the split pieces.  Depth <= ceil(log n)+1; the pivot
// set of C(z) is contained in z's H-ancestors, so theta <= depth.
#include "decomp/tree_decomposition.hpp"

#include <utility>

namespace treesched {

namespace detail {

std::vector<std::vector<VertexId>> split_component(
    const TreeNetwork& network, VertexId center, std::vector<int>& mark,
    int stamp) {
  std::vector<std::vector<VertexId>> pieces;
  mark[static_cast<std::size_t>(center)] = 0;
  for (const auto& root_adj : network.neighbors(center)) {
    if (mark[static_cast<std::size_t>(root_adj.to)] != stamp) continue;
    std::vector<VertexId> piece;
    piece.push_back(root_adj.to);
    mark[static_cast<std::size_t>(root_adj.to)] = 0;
    for (std::size_t head = 0; head < piece.size(); ++head) {
      for (const auto& adj : network.neighbors(piece[head])) {
        if (mark[static_cast<std::size_t>(adj.to)] == stamp) {
          mark[static_cast<std::size_t>(adj.to)] = 0;
          piece.push_back(adj.to);
        }
      }
    }
    pieces.push_back(std::move(piece));
  }
  return pieces;
}

}  // namespace detail

TreeDecomposition build_balancing(const TreeNetwork& network) {
  const auto n = static_cast<std::size_t>(network.num_vertices());
  std::vector<VertexId> parent(n, kNoVertex);
  std::vector<int> mark(n, 0);
  int next_stamp = 1;

  struct Task {
    std::vector<VertexId> verts;
    VertexId hparent;
  };
  std::vector<Task> todo;
  {
    std::vector<VertexId> all(n);
    for (std::size_t v = 0; v < n; ++v) all[v] = static_cast<VertexId>(v);
    todo.push_back({std::move(all), kNoVertex});
  }
  VertexId root = kNoVertex;

  while (!todo.empty()) {
    Task task = std::move(todo.back());
    todo.pop_back();
    const int stamp = next_stamp++;
    for (VertexId v : task.verts) mark[static_cast<std::size_t>(v)] = stamp;
    const VertexId z = find_balancer(network, task.verts, mark, stamp);
    parent[static_cast<std::size_t>(z)] = task.hparent;
    if (task.hparent == kNoVertex) root = z;
    for (auto& piece : detail::split_component(network, z, mark, stamp))
      todo.push_back({std::move(piece), z});
  }
  TS_REQUIRE(root != kNoVertex);
  return TreeDecomposition(network, root, std::move(parent));
}

}  // namespace treesched
