// Layered decompositions (paper, Section 4.4 and Section 7).
//
// A layered decomposition assigns every demand instance a group index and
// a set of *critical edges* pi(d) on its path such that for any two
// overlapping instances d1 in G_i and d2 in G_j with i <= j, path(d2)
// contains at least one edge of pi(d1).  The two-phase framework raises
// groups in ascending order; the property above is exactly the
// "interference property" that powers Lemma 3.1.
//
// Tree networks (Lemma 4.2): from a tree decomposition with pivot size
// theta and depth l we derive groups by *capture depth* (deepest captured
// first) and pi(d) = wings of the capture node mu(d) plus wings of the
// bending points of path(d) w.r.t. each pivot of C(mu(d)).  The critical
// set size is Delta <= 2(theta+1): Delta = 6 with the ideal decomposition
// (Lemma 4.3), 4 with root-fixing, 2(log n + 1) with balancing.
//
// Line networks (Section 7): groups by length class (factor-2 buckets
// above the minimum length) and pi(d) = {start, mid, end} timeslots,
// Delta = 3.  This is the decomposition implicit in Panconesi-Sozio.
//
// The Appendix-A sequential ordering is the root-fixing plan with
// mu-wings only (Delta = 2, Observation A.1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/prelude.hpp"
#include "decomp/tree_decomposition.hpp"
#include "model/problem.hpp"

namespace treesched {

struct LayeredPlan {
  int num_groups = 0;  // l_max: number of epochs of the distributed run
  int delta = 0;       // max |pi(d)| over all instances
  std::vector<int> group;                     // per instance, 0-based
  std::vector<std::vector<EdgeId>> critical;  // per instance, global edges

  // Instances listed per group (built by finalize_plan).
  std::vector<std::vector<InstanceId>> members;
};

// Lemma 4.2/4.3 plan: one tree decomposition per network, groups aligned
// by capture depth from the bottom.  `mu_wings_only` restricts pi(d) to
// the wings of the capture node (valid for root-fixing by Observation
// A.1; used by the sequential Appendix-A algorithm, Delta = 2).
LayeredPlan build_tree_layered_plan(const Problem& problem, DecompKind kind,
                                    bool mu_wings_only = false);

// Same plan, but against caller-held decompositions (one per network, in
// network order).  The decompositions depend only on the topology, never
// on the demand set, so a caller whose demands churn against a fixed
// topology (the online scheduler) computes them once and rebuilds the
// per-instance plan cheaply per batch.  build_tree_layered_plan(problem,
// kind) is exactly this with freshly built decompositions.
LayeredPlan build_tree_layered_plan(
    const Problem& problem, const std::vector<TreeDecomposition>& decomps,
    bool mu_wings_only = false);

// Extends `plan` in place to cover instances appended to `problem` since
// the plan was built (plan.group.size() marks the first new instance).
// Groups, criticals, members and delta come out identical to rebuilding
// from scratch: the group count is a property of the decompositions
// alone, and appended ids are larger than every existing id, so the
// per-group member lists stay ascending.  This turns the online
// scheduler's per-batch plan rebuild into O(new instances).
void extend_tree_layered_plan(const Problem& problem,
                              const std::vector<TreeDecomposition>& decomps,
                              LayeredPlan& plan, bool mu_wings_only = false);

// Section 7 plan for line networks: length classes + {start, mid, end}.
LayeredPlan build_line_layered_plan(const Problem& problem);

// Exhaustive check of the layered-decomposition property; returns a
// description of the first violation, or nullopt when the plan is valid.
// O(#overlapping pairs * Delta); intended for tests.
std::optional<std::string> interference_violation(const Problem& problem,
                                                  const LayeredPlan& plan);

}  // namespace treesched
