#include "seq/sequential.hpp"

namespace treesched {

LayeredPlan build_endtime_plan(const Problem& problem) {
  TS_REQUIRE(problem.finalized());
  LayeredPlan plan;
  plan.group.assign(static_cast<std::size_t>(problem.num_instances()), 0);
  plan.critical.assign(static_cast<std::size_t>(problem.num_instances()), {});

  plan.num_groups = 1;
  for (InstanceId i = 0; i < problem.num_instances(); ++i) {
    const DemandInstance& inst = problem.instance(i);
    // Instances of a path network have contiguous global edge ids; the
    // *local* end slot orders the processing (ascending), so overlapping
    // d1 before d2 implies end(d1) is on path(d2).
    const auto [network, local_end] = problem.edge_owner(inst.edges.back());
    (void)network;
    TS_REQUIRE(inst.edges.back() - inst.edges.front() + 1 ==
               static_cast<EdgeId>(inst.edges.size()));
    plan.group[static_cast<std::size_t>(i)] = local_end;
    plan.num_groups = std::max(plan.num_groups, local_end + 1);
    plan.critical[static_cast<std::size_t>(i)] = {inst.edges.back()};
  }
  plan.delta = 1;
  plan.members.assign(static_cast<std::size_t>(plan.num_groups), {});
  for (InstanceId i = 0; i < problem.num_instances(); ++i)
    plan.members[static_cast<std::size_t>(
                     plan.group[static_cast<std::size_t>(i)])]
        .push_back(i);
  return plan;
}

namespace detail {

SolverConfig line_sequential_config(RaiseRuleKind rule) {
  SolverConfig config;
  config.rule = rule;
  config.stage_mode = StageMode::kExact;  // lambda = 1
  return config;
}

}  // namespace detail

SeqResult solve_line_unit_sequential(const Problem& problem) {
  TS_REQUIRE(problem.unit_height());
  const LayeredPlan plan = build_endtime_plan(problem);
  const SolverConfig config =
      detail::line_sequential_config(RaiseRuleKind::kUnit);
  const SolveResult run = solve_with_plan(problem, plan, config);

  SeqResult result;
  result.solution = run.solution;
  result.stats = run.stats;
  result.profit = run.stats.profit;
  // Delta = 1, lambda = 1: the classical 2-approximation.
  result.ratio_bound =
      RaiseRule(RaiseRuleKind::kUnit, problem).ratio_bound(plan.delta, 1.0);
  return result;
}

SeqResult solve_line_arbitrary_sequential(const Problem& problem) {
  const LayeredPlan plan = build_endtime_plan(problem);
  const SolverConfig config =
      detail::line_sequential_config(RaiseRuleKind::kNarrow);
  const SolveResult run = solve_height_split(problem, plan, config);

  SeqResult result;
  result.solution = run.solution;
  result.stats = run.stats;
  result.profit = run.stats.profit;
  // Wide 2 + narrow (1+2*1) = 5: the classical Bar-Noy 5-approximation.
  result.ratio_bound =
      RaiseRule(RaiseRuleKind::kUnit, problem).ratio_bound(plan.delta, 1.0) +
      RaiseRule(RaiseRuleKind::kNarrow, problem).ratio_bound(plan.delta, 1.0);
  return result;
}

}  // namespace treesched
