// Sequential baselines expressed in the two-phase framework.
//
// Trees (paper, Appendix A): root-fixing decomposition, groups by capture
// depth (deepest first), pi(d) = wings of the capture node only
// (Observation A.1), Delta = 2, lambda = 1 (kExact stage mode) — a
// 3-approximation; when the input has a single network the alpha raise is
// skipped and the bound improves to 2 (the Lewin-Eytan / Tarjan regime).
//
// Lines (Bar-Noy et al. / Berman-Dasgupta): instances ordered by end
// slot, pi(d) = {end slot}, Delta = 1, lambda = 1 — the classical
// 2-approximation for unit heights; the narrow rule with Delta = 1 gives
// 3, and the wide/narrow combination gives the classical 5-approximation
// for arbitrary heights.
//
// These run in the same engine as the distributed algorithms, so every
// property test (feasibility, interference, dual certification) covers
// them too.
#pragma once

#include "decomp/layered.hpp"
#include "framework/two_phase.hpp"
#include "model/problem.hpp"

namespace treesched {

struct SeqResult {
  Solution solution;
  SolveStats stats;
  double ratio_bound = 0.0;
  double profit = 0.0;
};

// End-time ordering plan for line problems: group = last slot of the
// placement, pi(d) = {last slot}.  Two overlapping placements with
// end(d1) <= end(d2) share slot end(d1), which is why Delta = 1 works.
LayeredPlan build_endtime_plan(const Problem& problem);

// Appendix-A sequential algorithm for trees, unit heights.
SeqResult solve_tree_unit_sequential(const Problem& problem);

// Height-split sequential algorithm for trees (bound 3 + 9 = 12 from our
// framework constants; measured ratios are far smaller).
SeqResult solve_tree_arbitrary_sequential(const Problem& problem);

// Bar-Noy-style sequential algorithms for line problems (with windows).
SeqResult solve_line_unit_sequential(const Problem& problem);
SeqResult solve_line_arbitrary_sequential(const Problem& problem);

}  // namespace treesched
