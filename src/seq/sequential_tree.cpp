#include "seq/sequential.hpp"

namespace treesched {

namespace {

SolverConfig sequential_config(const Problem& problem, RaiseRuleKind rule) {
  SolverConfig config;
  config.rule = rule;
  config.stage_mode = StageMode::kExact;  // lambda = 1
  // Single-network refinement (Appendix A): with one tree every demand
  // has at most one instance, so the per-demand dual alpha is never
  // needed and the price factor drops by one.
  bool single_instance_demands = true;
  for (DemandId d = 0; d < problem.num_demands(); ++d) {
    if (problem.instances_of_demand(d).size() > 1) {
      single_instance_demands = false;
      break;
    }
  }
  config.raise_alpha = !single_instance_demands;
  return config;
}

}  // namespace

SeqResult solve_tree_unit_sequential(const Problem& problem) {
  TS_REQUIRE(problem.unit_height());
  const LayeredPlan plan = build_tree_layered_plan(
      problem, DecompKind::kRootFixing, /*mu_wings_only=*/true);
  TS_REQUIRE(plan.delta <= 2);  // wings of the capture node
  const SolverConfig config = sequential_config(problem, RaiseRuleKind::kUnit);
  const SolveResult run = solve_with_plan(problem, plan, config);

  SeqResult result;
  result.solution = run.solution;
  result.stats = run.stats;
  result.profit = run.stats.profit;
  const RaiseRule rule(RaiseRuleKind::kUnit, problem, config.raise_alpha);
  result.ratio_bound = rule.ratio_bound(plan.delta, /*lambda=*/1.0);
  return result;
}

SeqResult solve_tree_arbitrary_sequential(const Problem& problem) {
  const LayeredPlan plan = build_tree_layered_plan(
      problem, DecompKind::kRootFixing, /*mu_wings_only=*/true);
  TS_REQUIRE(plan.delta <= 2);
  const SolverConfig config =
      sequential_config(problem, RaiseRuleKind::kNarrow);
  const SolveResult run = solve_height_split(problem, plan, config);

  SeqResult result;
  result.solution = run.solution;
  result.stats = run.stats;
  result.profit = run.stats.profit;
  const RaiseRule unit_rule(RaiseRuleKind::kUnit, problem, config.raise_alpha);
  const RaiseRule narrow_rule(RaiseRuleKind::kNarrow, problem,
                              config.raise_alpha);
  result.ratio_bound = unit_rule.ratio_bound(plan.delta, 1.0) +
                       narrow_rule.ratio_bound(plan.delta, 1.0);
  return result;
}

}  // namespace treesched
