#include "exact/line_dp.hpp"

#include <algorithm>
#include <vector>

namespace treesched {

bool line_dp_applicable(const Problem& problem) {
  if (!problem.finalized()) return false;
  if (problem.num_networks() != 1) return false;
  if (!problem.unit_height()) return false;
  if (problem.min_capacity() < 1.0 - kEps ||
      problem.max_capacity() > 1.0 + kEps)
    return false;
  for (DemandId d = 0; d < problem.num_demands(); ++d)
    if (problem.instances_of_demand(d).size() != 1) return false;
  // All instances must be contiguous slot ranges of a path network.
  for (const DemandInstance& inst : problem.instances()) {
    if (inst.edges.back() - inst.edges.front() + 1 !=
        static_cast<EdgeId>(inst.edges.size()))
      return false;
  }
  return true;
}

ExactResult solve_line_dp(const Problem& problem) {
  TS_REQUIRE(line_dp_applicable(problem));
  // Intervals [start, end] in slot coordinates.
  struct Interval {
    EdgeId start;
    EdgeId end;
    Profit profit;
    InstanceId id;
  };
  std::vector<Interval> intervals;
  intervals.reserve(static_cast<std::size_t>(problem.num_instances()));
  for (const DemandInstance& inst : problem.instances())
    intervals.push_back(
        {inst.edges.front(), inst.edges.back(), inst.profit, inst.id});
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.end < b.end;
            });

  const auto m = intervals.size();
  // pred[i]: last interval (by sorted index) ending strictly before
  // intervals[i] starts; -1 when none.
  std::vector<int> pred(m, -1);
  for (std::size_t i = 0; i < m; ++i) {
    // Binary search over ends < start_i.
    int lo = 0, hi = static_cast<int>(i) - 1, best = -1;
    while (lo <= hi) {
      const int mid = (lo + hi) / 2;
      if (intervals[static_cast<std::size_t>(mid)].end <
          intervals[i].start) {
        best = mid;
        lo = mid + 1;
      } else {
        hi = mid - 1;
      }
    }
    pred[i] = best;
  }

  std::vector<Profit> dp(m + 1, 0.0);
  std::vector<char> take(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const Profit with = intervals[i].profit +
                        dp[static_cast<std::size_t>(pred[i] + 1)];
    if (with > dp[i]) {
      dp[i + 1] = with;
      take[i] = 1;
    } else {
      dp[i + 1] = dp[i];
    }
  }

  ExactResult result;
  result.profit = dp[m];
  // Reconstruct.
  for (int i = static_cast<int>(m) - 1; i >= 0;) {
    if (take[static_cast<std::size_t>(i)]) {
      result.solution.selected.push_back(
          intervals[static_cast<std::size_t>(i)].id);
      i = pred[static_cast<std::size_t>(i)];
    } else {
      --i;
    }
  }
  result.nodes = static_cast<std::int64_t>(m);
  result.completed = true;
  return result;
}

}  // namespace treesched
