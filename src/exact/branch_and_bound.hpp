// Exact optimum by branch and bound, used as the ground truth for the
// approximation-ratio experiments on small instances.
//
// Branching is per *demand* (choose one of its instances or skip it),
// demands ordered by descending profit; the bound adds the full profits
// of all undecided demands, which is admissible because a demand
// contributes at most its profit.  Feasibility is tracked incrementally
// with LoadTracker, so heights and non-uniform capacities are handled
// uniformly.
#pragma once

#include <cstdint>

#include "model/problem.hpp"
#include "model/solution.hpp"

namespace treesched {

struct ExactResult {
  Solution solution;
  Profit profit = 0.0;
  std::int64_t nodes = 0;  // search nodes explored
  bool completed = true;   // false when the node limit was hit
};

// Exact maximum-profit feasible solution.  `node_limit` bounds the search;
// when exceeded the best solution found so far is returned with
// completed == false (callers in tests assert completion).
ExactResult solve_exact(const Problem& problem,
                        std::int64_t node_limit = 20'000'000);

}  // namespace treesched
