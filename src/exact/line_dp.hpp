// Exact weighted-interval-scheduling dynamic program: the polynomial
// special case of the line problem with a single resource, unit heights,
// uniform capacity 1 and fixed placements (one instance per demand).
// Used to cross-validate the branch-and-bound solver and as a fast exact
// reference in the line benchmarks.
#pragma once

#include "exact/branch_and_bound.hpp"
#include "model/problem.hpp"

namespace treesched {

// True iff the DP's preconditions hold for `problem`.
bool line_dp_applicable(const Problem& problem);

// Exact optimum; requires line_dp_applicable(problem).
ExactResult solve_line_dp(const Problem& problem);

}  // namespace treesched
