#include "exact/branch_and_bound.hpp"

#include <algorithm>
#include <vector>

namespace treesched {

namespace {

class Searcher {
 public:
  Searcher(const Problem& problem, std::int64_t node_limit)
      : problem_(&problem), tracker_(problem), node_limit_(node_limit) {
    // Demands in descending profit order tighten the additive bound fast.
    order_.resize(static_cast<std::size_t>(problem.num_demands()));
    for (DemandId d = 0; d < problem.num_demands(); ++d)
      order_[static_cast<std::size_t>(d)] = d;
    std::sort(order_.begin(), order_.end(), [&](DemandId a, DemandId b) {
      return problem.demand(a).profit > problem.demand(b).profit;
    });
    // suffix_[k] = total profit of demands order_[k..end].
    suffix_.assign(order_.size() + 1, 0.0);
    for (std::size_t k = order_.size(); k-- > 0;)
      suffix_[k] = suffix_[k + 1] +
                   problem.demand(order_[k]).profit;
  }

  ExactResult run() {
    dfs(0, 0.0);
    ExactResult result;
    result.solution.selected = best_set_;
    result.profit = best_;
    result.nodes = nodes_;
    result.completed = nodes_ <= node_limit_;
    return result;
  }

 private:
  void dfs(std::size_t k, Profit current) {
    if (nodes_ > node_limit_) return;
    ++nodes_;
    if (current > best_) {
      best_ = current;
      best_set_ = chosen_;
    }
    if (k == order_.size()) return;
    if (current + suffix_[k] <= best_ + kEps) return;  // bound

    const DemandId d = order_[k];
    // Branch: each feasible instance of demand d, then "skip d".
    for (InstanceId i : problem_->instances_of_demand(d)) {
      if (!tracker_.fits(i)) continue;
      tracker_.add(i);
      chosen_.push_back(i);
      dfs(k + 1, current + problem_->instance(i).profit);
      chosen_.pop_back();
      tracker_.remove(i);
    }
    dfs(k + 1, current);
  }

  const Problem* problem_;
  LoadTracker tracker_;
  std::int64_t node_limit_;
  std::vector<DemandId> order_;
  std::vector<Profit> suffix_;
  std::vector<InstanceId> chosen_, best_set_;
  Profit best_ = 0.0;
  std::int64_t nodes_ = 0;
};

}  // namespace

ExactResult solve_exact(const Problem& problem, std::int64_t node_limit) {
  TS_REQUIRE(problem.finalized());
  Searcher searcher(problem, node_limit);
  return searcher.run();
}

}  // namespace treesched
