#include "lp/simplex.hpp"

#include <cmath>

namespace treesched {

LpResult solve_lp_max(const std::vector<std::vector<double>>& a,
                      const std::vector<double>& b,
                      const std::vector<double>& c) {
  const std::size_t m = a.size();
  const std::size_t n = c.size();
  TS_REQUIRE(b.size() == m);
  for (const auto& row : a) TS_REQUIRE(row.size() == n);
  for (double bi : b) check_input(bi >= 0.0, "simplex requires b >= 0");

  constexpr double kTol = 1e-9;

  // Tableau: m rows x (n + m + 1) columns; columns n..n+m-1 are slacks,
  // last column is the RHS.  basis[i] = variable index basic in row i.
  std::vector<std::vector<double>> t(m, std::vector<double>(n + m + 1, 0.0));
  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t[i][j] = a[i][j];
    t[i][n + i] = 1.0;
    t[i][n + m] = b[i];
    basis[i] = n + i;
  }
  // Objective row (reduced costs of the maximization, negated so that a
  // positive entry means "improving").
  std::vector<double> z(n + m + 1, 0.0);
  for (std::size_t j = 0; j < n; ++j) z[j] = c[j];

  LpResult result;
  for (;;) {
    // Bland's rule: entering variable = smallest index with z > 0.
    std::size_t enter = n + m;
    for (std::size_t j = 0; j < n + m; ++j) {
      if (z[j] > kTol) {
        enter = j;
        break;
      }
    }
    if (enter == n + m) break;  // optimal

    // Ratio test; Bland tie-break on the basic variable index.
    std::size_t leave = m;
    double best_ratio = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (t[i][enter] <= kTol) continue;
      const double ratio = t[i][n + m] / t[i][enter];
      if (leave == m || ratio < best_ratio - kTol ||
          (std::abs(ratio - best_ratio) <= kTol &&
           basis[i] < basis[leave])) {
        leave = i;
        best_ratio = ratio;
      }
    }
    if (leave == m) {
      result.status = LpResult::Status::kUnbounded;
      return result;
    }

    // Pivot on (leave, enter).
    const double pivot = t[leave][enter];
    for (double& v : t[leave]) v /= pivot;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == leave) continue;
      const double factor = t[i][enter];
      if (std::abs(factor) <= kTol) continue;
      for (std::size_t j = 0; j <= n + m; ++j)
        t[i][j] -= factor * t[leave][j];
    }
    const double zf = z[enter];
    for (std::size_t j = 0; j <= n + m; ++j) z[j] -= zf * t[leave][j];
    basis[leave] = enter;
  }

  result.status = LpResult::Status::kOptimal;
  result.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    if (basis[i] < n) result.x[basis[i]] = t[i][n + m];
  double value = 0.0;
  for (std::size_t j = 0; j < n; ++j) value += c[j] * result.x[j];
  result.value = value;
  return result;
}

}  // namespace treesched
