// Dense primal simplex for the paper's LP relaxation (Section 3.1 / 6.1).
//
// Solves   max c^T x   s.t.  A x <= b,  x >= 0   with b >= 0 (our
// relaxations always have non-negative right-hand sides: edge capacities
// and the per-demand 1s), so no phase-1 is needed.  Bland's rule
// guarantees termination on degenerate instances.  Problem sizes here are
// tiny (#instances variables, #edges + #demands constraints), so a dense
// tableau is the right tool.
//
// The LP optimum is the third leg of the verification triangle used by
// the tests and bench_f10:  exact OPT  <=  LP optimum  <=  certified dual
// bound (the engine's scaled dual is feasible for the same LP).
#pragma once

#include <vector>

#include "common/prelude.hpp"

namespace treesched {

struct LpResult {
  enum class Status { kOptimal, kUnbounded };
  Status status = Status::kOptimal;
  double value = 0.0;
  std::vector<double> x;  // primal solution (empty when unbounded)
};

// A is row-major (one row per constraint).  Requires b[i] >= 0.
LpResult solve_lp_max(const std::vector<std::vector<double>>& a,
                      const std::vector<double>& b,
                      const std::vector<double>& c);

}  // namespace treesched
