#include "lp/relaxation.hpp"

namespace treesched {

LpRelaxationResult lp_optimum(const Problem& problem) {
  TS_REQUIRE(problem.finalized());
  const auto n = static_cast<std::size_t>(problem.num_instances());

  std::vector<std::vector<double>> a;
  std::vector<double> b;

  // Edge constraints — only edges actually used by an instance matter.
  for (EdgeId e = 0; e < problem.num_global_edges(); ++e) {
    const auto& on_edge = problem.instances_on_edge(e);
    if (on_edge.empty()) continue;
    std::vector<double> row(n, 0.0);
    for (InstanceId i : on_edge)
      row[static_cast<std::size_t>(i)] = problem.instance(i).height;
    a.push_back(std::move(row));
    b.push_back(problem.capacity(e));
  }
  // Demand constraints.
  for (DemandId d = 0; d < problem.num_demands(); ++d) {
    std::vector<double> row(n, 0.0);
    for (InstanceId i : problem.instances_of_demand(d))
      row[static_cast<std::size_t>(i)] = 1.0;
    a.push_back(std::move(row));
    b.push_back(1.0);
  }

  std::vector<double> c(n);
  for (InstanceId i = 0; i < problem.num_instances(); ++i)
    c[static_cast<std::size_t>(i)] = problem.instance(i).profit;

  const LpResult lp = solve_lp_max(a, b, c);
  TS_REQUIRE(lp.status == LpResult::Status::kOptimal);  // always bounded
  LpRelaxationResult result;
  result.value = lp.value;
  result.x = lp.x;
  result.num_constraints = static_cast<int>(a.size());
  return result;
}

}  // namespace treesched
