// The paper's LP relaxation of a Problem (Section 3.1 for unit heights,
// Section 6.1 with heights, DESIGN.md Sec. 6 with capacities):
//
//   max  sum_d x(d) p(d)
//   s.t. sum_{d ~ e} x(d) h(d) <= c(e)          for every used edge e
//        sum_{d in Inst(a)} x(d) <= 1            for every demand a
//        x >= 0                                  (x <= 1 implied)
//
// lp_optimum() solves it exactly with the dense simplex; it upper-bounds
// the integral optimum and lower-bounds every feasible dual value, which
// makes it the reference point for integrality gaps and for validating
// the engine's dual certificates.
#pragma once

#include "lp/simplex.hpp"
#include "model/problem.hpp"

namespace treesched {

struct LpRelaxationResult {
  double value = 0.0;
  std::vector<double> x;  // per instance
  int num_constraints = 0;
};

LpRelaxationResult lp_optimum(const Problem& problem);

}  // namespace treesched
