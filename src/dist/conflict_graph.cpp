#include "dist/conflict_graph.hpp"

#include <algorithm>

namespace treesched {

ConflictGraph::ConflictGraph(const Problem& problem,
                             std::span<const InstanceId> members)
    : vertices_(members.begin(), members.end()),
      adjacency_(members.size()) {
  // Instance -> vertex index (kNoInstance for non-members).
  std::vector<int> vertex_of(static_cast<std::size_t>(problem.num_instances()),
                             -1);
  for (int v = 0; v < size(); ++v) {
    const InstanceId i = vertices_[static_cast<std::size_t>(v)];
    TS_REQUIRE(i >= 0 && i < problem.num_instances());
    TS_REQUIRE(vertex_of[static_cast<std::size_t>(i)] == -1);  // distinct
    vertex_of[static_cast<std::size_t>(i)] = v;
  }

  // Neighbors of v = members sharing an edge with v's path, or members
  // that are sibling instances of v's demand.  The per-edge and
  // per-demand indexes of Problem make this a bucket scan rather than an
  // all-pairs conflict test.
  std::vector<int> seen(vertices_.size(), -1);
  for (int v = 0; v < size(); ++v) {
    const DemandInstance& inst =
        problem.instance(vertices_[static_cast<std::size_t>(v)]);
    auto add_neighbor = [&](InstanceId other) {
      const int u = vertex_of[static_cast<std::size_t>(other)];
      if (u < 0 || u == v) return;
      if (seen[static_cast<std::size_t>(u)] == v) return;
      seen[static_cast<std::size_t>(u)] = v;
      adjacency_[static_cast<std::size_t>(v)].push_back(u);
    };
    for (EdgeId e : inst.edges)
      for (InstanceId other : problem.instances_on_edge(e)) add_neighbor(other);
    for (InstanceId other : problem.instances_of_demand(inst.demand))
      add_neighbor(other);
  }

  for (auto& list : adjacency_) {
    std::sort(list.begin(), list.end());
    num_edges_ += static_cast<std::int64_t>(list.size());
    max_degree_ = std::max(max_degree_, static_cast<int>(list.size()));
  }
  num_edges_ /= 2;  // every edge counted from both ends
}

bool ConflictGraph::is_maximal_independent_set(
    const std::vector<int>& selected) const {
  std::vector<char> in_set(vertices_.size(), 0);
  for (int v : selected) {
    if (v < 0 || v >= size()) return false;
    if (in_set[static_cast<std::size_t>(v)]) return false;  // duplicate
    in_set[static_cast<std::size_t>(v)] = 1;
  }
  for (int v : selected)
    for (int u : neighbors(v))
      if (in_set[static_cast<std::size_t>(u)]) return false;  // not independent
  for (int v = 0; v < size(); ++v) {
    if (in_set[static_cast<std::size_t>(v)]) continue;
    bool dominated = false;
    for (int u : neighbors(v)) {
      if (in_set[static_cast<std::size_t>(u)]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;  // not maximal
  }
  return true;
}

}  // namespace treesched
