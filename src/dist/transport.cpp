#include "dist/transport.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace treesched {

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kDefault:
      return "default";
    case TransportKind::kInProc:
      return "inproc";
    case TransportKind::kSerialized:
      return "serialized";
    case TransportKind::kThreadedSerialized:
      return "threaded";
    case TransportKind::kFaulty:
      return "faulty";
  }
  return "?";
}

TransportKind parse_transport_kind(const std::string& name) {
  if (name == "inproc") return TransportKind::kInProc;
  if (name == "serialized") return TransportKind::kSerialized;
  if (name == "threaded" || name == "threaded-serialized")
    return TransportKind::kThreadedSerialized;
  if (name == "faulty") return TransportKind::kFaulty;
  check_input(false, "unknown transport '" + name +
                         "' (expected inproc|serialized|threaded|faulty)");
  return TransportKind::kInProc;  // unreachable
}

TransportKind resolve_transport_kind(TransportKind kind) {
  if (kind != TransportKind::kDefault) return kind;
  // Read once: the env hook selects the process-wide default, which is
  // how CI runs the whole tier-1 suite over the serialized wire without
  // any test knowing (TREESCHED_TRANSPORT=serialized, see ci.yml).
  static const TransportKind from_env = [] {
    const char* env = std::getenv("TREESCHED_TRANSPORT");
    if (env == nullptr || *env == '\0') return TransportKind::kInProc;
    return parse_transport_kind(env);
  }();
  return from_env;
}

// --- codec -----------------------------------------------------------------

namespace {

std::int32_t get_i32(const std::uint8_t* p) {
  std::int32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void fail(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
}

}  // namespace

std::size_t encode_message(const Message& m, std::vector<std::uint8_t>& out) {
  const std::size_t before = out.size();
  put_i32(out, m.from);
  put_i32(out, m.to);
  put_i32(out, m.tag);
  put_i32(out, static_cast<std::int32_t>(m.data.size()));
  const std::size_t at = out.size();
  out.resize(at + 8 * m.data.size());
  if (!m.data.empty())
    std::memcpy(out.data() + at, m.data.data(), 8 * m.data.size());
  return out.size() - before;
}

bool decode_message(std::span<const std::uint8_t> buf, std::size_t& offset,
                    Message& out, std::string* error) {
  if (offset > buf.size() || buf.size() - offset < 16) {
    fail(error, "message header truncated (need 16 bytes)");
    return false;
  }
  const std::uint8_t* p = buf.data() + offset;
  const std::int32_t from = get_i32(p);
  const std::int32_t to = get_i32(p + 4);
  const std::int32_t tag = get_i32(p + 8);
  const std::int32_t count = get_i32(p + 12);
  if (from < 0 || to < 0) {
    fail(error, "corrupt message header (negative endpoint)");
    return false;
  }
  if (count < 0) {
    fail(error, "corrupt message header (negative payload length)");
    return false;
  }
  const std::size_t payload = 8 * static_cast<std::size_t>(count);
  if (buf.size() - offset - 16 < payload) {
    fail(error, "message payload truncated");
    return false;
  }
  out.from = from;
  out.to = to;
  out.tag = tag;
  out.data.resize(static_cast<std::size_t>(count));  // reuses capacity
  if (count > 0) std::memcpy(out.data.data(), p + 16, payload);
  offset += 16 + payload;
  return true;
}

// --- frame codec -----------------------------------------------------------
//
// Built on the shared io/framing.hpp helpers (also used by the online
// journal and snapshot files): begin/end for the zero-copy placeholder-
// then-patch encode, verify for the checksum check over exactly the
// bytes the self-delimiting inner message occupies.

std::size_t encode_frame(const Message& m, std::uint32_t seq,
                         std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = begin_crc_frame(out);
  encode_message(m, out);
  return end_crc_frame(out, frame_start, seq);
}

bool decode_frame(std::span<const std::uint8_t> buf, std::size_t& offset,
                  std::uint32_t& seq, Message& out, std::string* error) {
  if (offset > buf.size() || buf.size() - offset < kCrcFrameHeaderBytes) {
    fail(error, "frame header truncated (need 8 bytes)");
    return false;
  }
  // Decode the inner message first to learn the frame length, then
  // checksum exactly that many bytes.  A length corrupted into garbage
  // fails the decode; a length corrupted into a *valid* smaller/larger
  // frame still fails the CRC below, because the checksum covers the
  // length field itself.
  std::size_t inner = offset + kCrcFrameHeaderBytes;
  if (!decode_message(buf, inner, out, error)) return false;
  if (!verify_crc_frame(buf, offset, inner - offset, seq, error)) return false;
  offset = inner;
  return true;
}

// --- fault plan ------------------------------------------------------------

namespace {

double parse_rate(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double rate = 0.0;
  try {
    rate = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  check_input(used == value.size() && rate >= 0.0 && rate <= 1.0,
              "fault plan: bad value for '" + key + "': '" + value +
                  "' (expected a rate in [0,1])");
  return rate;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  check_input(used == value.size(), "fault plan: bad value for '" + key +
                                        "': '" + value + "'");
  return v;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t end = spec.find(',', at);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(at, end - at);
    at = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    check_input(eq != std::string::npos,
                "fault plan: expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "drop") {
      plan.drop = parse_rate(key, value);
    } else if (key == "dup" || key == "duplicate") {
      plan.duplicate = parse_rate(key, value);
    } else if (key == "corrupt") {
      plan.corrupt = parse_rate(key, value);
    } else if (key == "reorder") {
      plan.reorder = parse_rate(key, value);
    } else if (key == "delay") {
      plan.delay = parse_rate(key, value);
    } else if (key == "maxdelay") {
      plan.max_delay_rounds =
          static_cast<int>(std::min<std::uint64_t>(parse_u64(key, value), 64));
      check_input(plan.max_delay_rounds >= 1,
                  "fault plan: maxdelay must be >= 1");
    } else if (key == "budget" || key == "retransmit") {
      plan.retransmit_budget =
          static_cast<int>(std::min<std::uint64_t>(parse_u64(key, value), 64));
    } else if (key == "seed") {
      plan.seed = parse_u64(key, value);
    } else if (key == "inner") {
      plan.inner = parse_transport_kind(value);
    } else {
      check_input(false, "fault plan: unknown key '" + key +
                             "' (expected drop|dup|corrupt|reorder|delay|"
                             "maxdelay|budget|seed|inner)");
    }
  }
  check_input(plan.drop + plan.duplicate + plan.corrupt + plan.delay <= 1.0,
              "fault plan: drop+dup+corrupt+delay rates must sum to <= 1");
  return plan;
}

// --- backends --------------------------------------------------------------

namespace {

// The original single-process path: posted Messages are moved, never
// encoded.  One in-flight list, one delivered vector per node.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(int num_nodes)
      : inbox_(static_cast<std::size_t>(num_nodes)) {}

  void post(Message m) override { in_flight_.push_back(std::move(m)); }

  void flush() override {
    for (Message& m : in_flight_)
      inbox_[static_cast<std::size_t>(m.to)].push_back(std::move(m));
    in_flight_.clear();
  }

  void drain(int node, std::vector<Message>& out) override {
    // Swap, don't copy: the recycled `out` donates its capacity as the
    // node's next inbox storage.
    out.clear();
    out.swap(inbox_[static_cast<std::size_t>(node)]);
  }

  TransportKind kind() const override { return TransportKind::kInProc; }
  const char* round_span_name() const override { return "round"; }

 private:
  std::vector<Message> in_flight_;
  std::vector<std::vector<Message>> inbox_;
};

// Per-destination byte buffers shared by the two serialized backends.
struct ByteBox {
  std::vector<std::uint8_t> staging;   // posted since the last flush
  std::int64_t staged_count = 0;
  std::vector<std::uint8_t> delivery;  // flushed, not yet drained
  std::int64_t count = 0;
};

// Moves a box's staged bytes across the round boundary, retaining both
// buffers' capacity.
void flush_box(ByteBox& box) {
  if (box.staged_count == 0) return;
  box.delivery.insert(box.delivery.end(), box.staging.begin(),
                      box.staging.end());
  box.staging.clear();
  box.count += box.staged_count;
  box.staged_count = 0;
}

// Decodes a box's delivered bytes into `out`, overwriting recycled
// Message slots in place (payload capacity included) so a steady-state
// round needs no allocation at all.
void drain_box(ByteBox& box, std::vector<Message>& out,
               std::int64_t& decoded) {
  const auto n = static_cast<std::size_t>(box.count);
  if (out.size() > n) out.resize(n);
  std::size_t offset = 0;
  std::size_t i = 0;
  while (offset < box.delivery.size()) {
    if (i == out.size()) out.emplace_back();
    const bool ok = decode_message(
        {box.delivery.data(), box.delivery.size()}, offset, out[i]);
    TS_REQUIRE(ok);  // internal buffers are always well-formed
    ++i;
    ++decoded;
  }
  TS_REQUIRE(i == n);
  box.delivery.clear();
  box.count = 0;
}

// Every message crosses the codec: encoded into its destination's byte
// buffer at post, decoded back out at drain.  Single-driver, like the
// in-proc path.
class SerializedTransport final : public Transport {
 public:
  explicit SerializedTransport(int num_nodes)
      : box_(static_cast<std::size_t>(num_nodes)) {}

  void post(Message m) override {
    ByteBox& box = box_[static_cast<std::size_t>(m.to)];
    const std::size_t bytes = encode_message(m, box.staging);
    TS_DCHECK(bytes ==
              static_cast<std::size_t>(message_wire_bytes(m)));
    (void)bytes;
    ++box.staged_count;
    ++encoded_;
  }

  void flush() override {
    for (ByteBox& box : box_) flush_box(box);
  }

  void drain(int node, std::vector<Message>& out) override {
    drain_box(box_[static_cast<std::size_t>(node)], out, decoded_);
  }

  TransportKind kind() const override { return TransportKind::kSerialized; }
  const char* round_span_name() const override { return "round.serialized"; }
  std::int64_t codec_encoded() const override { return encoded_; }
  std::int64_t codec_decoded() const override { return decoded_; }

 private:
  std::vector<ByteBox> box_;
  std::int64_t encoded_ = 0;
  std::int64_t decoded_ = 0;
};

// The serialized wire with each destination's staging queue behind its
// own mutex: concurrent threads may post between round boundaries, and
// distinct nodes' inboxes may be drained concurrently (each drain only
// touches its own box).  flush() stays the single driver-side barrier —
// the caller must guarantee no post is in flight across it, exactly the
// synchronous-model discipline Runtime::step already imposes.
class ThreadedSerializedTransport final : public Transport {
 public:
  explicit ThreadedSerializedTransport(int num_nodes)
      : box_(static_cast<std::size_t>(num_nodes)),
        mutex_(std::make_unique<std::mutex[]>(
            static_cast<std::size_t>(num_nodes))) {}

  void post(Message m) override {
    const auto to = static_cast<std::size_t>(m.to);
    std::lock_guard<std::mutex> lock(mutex_[to]);
    encode_message(m, box_[to].staging);
    ++box_[to].staged_count;
    encoded_.fetch_add(1, std::memory_order_relaxed);
  }

  void flush() override {
    for (std::size_t v = 0; v < box_.size(); ++v) {
      std::lock_guard<std::mutex> lock(mutex_[v]);
      flush_box(box_[v]);
    }
  }

  void drain(int node, std::vector<Message>& out) override {
    const auto v = static_cast<std::size_t>(node);
    std::lock_guard<std::mutex> lock(mutex_[v]);
    std::int64_t decoded = 0;
    drain_box(box_[v], out, decoded);
    decoded_.fetch_add(decoded, std::memory_order_relaxed);
  }

  TransportKind kind() const override {
    return TransportKind::kThreadedSerialized;
  }
  const char* round_span_name() const override { return "round.threaded"; }
  std::int64_t codec_encoded() const override {
    return encoded_.load(std::memory_order_relaxed);
  }
  std::int64_t codec_decoded() const override {
    return decoded_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<ByteBox> box_;
  std::unique_ptr<std::mutex[]> mutex_;  // one per destination box
  std::atomic<std::int64_t> encoded_{0};
  std::atomic<std::int64_t> decoded_{0};
};

std::unique_ptr<Transport> make_concrete(TransportKind kind, int num_nodes) {
  switch (kind) {
    case TransportKind::kSerialized:
      return std::make_unique<SerializedTransport>(num_nodes);
    case TransportKind::kThreadedSerialized:
      return std::make_unique<ThreadedSerializedTransport>(num_nodes);
    default:
      return std::make_unique<InProcTransport>(num_nodes);
  }
}

// The unreliable channel plus the recovery layer that masks it.  Every
// post is framed (CRC32 + per-(src,dst) sequence number) into its
// destination's pristine byte store; at the round barrier each frame's
// channel outcome is drawn deterministically from the plan seed, the
// receiver dedups / CRC-rejects / re-requests until every sequence
// number is accounted for (delivered or, past the retransmit budget,
// declared lost), and the surviving frames are decoded in posting order
// into the inner backend — so whenever recovery wins, the inner backend
// observes a byte stream identical to a fault-free run.  Single-driver,
// like every non-threaded backend.
class FaultyTransport final : public Transport {
 public:
  FaultyTransport(const FaultPlan& plan, int num_nodes)
      : plan_(plan), box_(static_cast<std::size_t>(num_nodes)) {
    TransportKind inner = plan_.inner;
    if (inner == TransportKind::kDefault || inner == TransportKind::kFaulty)
      inner = TransportKind::kSerialized;
    plan_.inner = inner;
    inner_ = make_concrete(inner, num_nodes);
    if (plan_.max_delay_rounds < 1) plan_.max_delay_rounds = 1;
    if (plan_.retransmit_budget < 0) plan_.retransmit_budget = 0;
    for (DstBox& box : box_)
      box.next_seq.assign(static_cast<std::size_t>(num_nodes), 0);
    // Cumulative thresholds for the single per-frame uniform draw: the
    // outcomes are mutually exclusive, which is what gives the counters
    // their closed forms.
    p_drop_ = plan_.drop;
    p_dup_ = p_drop_ + plan_.duplicate;
    p_corrupt_ = p_dup_ + plan_.corrupt;
    p_delay_ = p_corrupt_ + plan_.delay;
  }

  void post(Message m) override {
    DstBox& box = box_[static_cast<std::size_t>(m.to)];
    FrameRef ref;
    ref.src = m.from;
    ref.seq = box.next_seq[static_cast<std::size_t>(m.from)]++;
    ref.offset = box.bytes.size();
    ref.len = encode_frame(m, ref.seq, box.bytes);
    box.manifest.push_back(ref);
    ++encoded_;
    ++stats_.frames_posted;
  }

  void flush() override {
    const FaultStats before = stats_;
    for (std::size_t dst = 0; dst < box_.size(); ++dst)
      deliver_box(static_cast<int>(dst));
    inner_->flush();
    TRACE_COUNTER("wire.fault.retransmits",
                  stats_.retransmits - before.retransmits);
    TRACE_COUNTER("wire.fault.dup_dropped",
                  stats_.dup_dropped - before.dup_dropped);
    TRACE_COUNTER("wire.fault.corrupt_dropped",
                  stats_.corrupt_dropped - before.corrupt_dropped);
    TRACE_COUNTER("wire.fault.frames_lost",
                  stats_.frames_lost - before.frames_lost);
  }

  void drain(int node, std::vector<Message>& out) override {
    inner_->drain(node, out);
  }

  TransportKind kind() const override { return TransportKind::kFaulty; }
  const char* round_span_name() const override { return "round.faulty"; }
  std::int64_t codec_encoded() const override { return encoded_; }
  std::int64_t codec_decoded() const override { return decoded_; }
  const FaultStats* fault_stats() const override { return &stats_; }
  bool degraded() const override { return degraded_; }

 private:
  struct FrameRef {
    int src = -1;
    std::uint32_t seq = 0;
    std::size_t offset = 0;
    std::size_t len = 0;
    bool received = false;
  };
  struct DstBox {
    std::vector<std::uint8_t> bytes;    // pristine frames, posting order
    std::vector<FrameRef> manifest;     // this round's frames
    std::vector<std::uint32_t> next_seq;  // per-source stream position
    std::vector<int> inflight;          // delayed originals: rounds left
  };

  // Every fault draw hashes (seed, src, dst, seq, attempt) — replayable
  // from the seed alone and independent of call order.  Attempt 0 is
  // the original transmission, 1..budget the retransmissions, and a
  // disjoint constant the reorder draw.
  static constexpr int kReorderAttempt = 1 << 20;
  std::uint64_t fault_hash(int src, int dst, std::uint32_t seq,
                           int attempt) const {
    SplitMix64 a(plan_.seed ^
                 (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                  << 32) ^
                 static_cast<std::uint32_t>(dst));
    SplitMix64 b(a.next() ^
                 (static_cast<std::uint64_t>(seq) * 0x9e3779b97f4a7c15ULL) ^
                 (static_cast<std::uint64_t>(attempt) * 0xbf58476d1ce4e5b9ULL));
    return b.next();
  }
  static double u01(std::uint64_t h) {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  // Copies the frame, flips 1-3 distinct bits, and runs the real
  // decoder: the corrupted arrival must fail the checksum.  CRC-32 has
  // Hamming distance 4 out to ~91k bits, far beyond any frame here, so
  // corrupt_undetected stays 0 — asserted by the fuzz suite.  Either
  // way the frame is not delivered (on the never-taken undetected path
  // we still know the ground truth).
  void corrupt_and_check(const DstBox& box, const FrameRef& ref,
                         std::uint64_t h) {
    corrupt_scratch_.assign(box.bytes.begin() + ref.offset,
                            box.bytes.begin() + ref.offset + ref.len);
    const std::size_t nbits = 8 * ref.len;
    const int flips = 1 + static_cast<int>((h >> 5) % 3);
    const std::size_t first = (h >> 7) % nbits;
    for (int k = 0; k < flips; ++k) {
      const std::size_t bit = (first + static_cast<std::size_t>(k)) % nbits;
      corrupt_scratch_[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    std::size_t off = 0;
    std::uint32_t seq = 0;
    if (decode_frame({corrupt_scratch_.data(), corrupt_scratch_.size()}, off,
                     seq, corrupt_msg_) &&
        seq == ref.seq) {
      ++stats_.corrupt_undetected;
    } else {
      ++stats_.corrupt_dropped;
    }
  }

  void deliver_box(int dst) {
    DstBox& box = box_[static_cast<std::size_t>(dst)];
    // Delayed originals from earlier rounds arrive now; their sequence
    // numbers were already settled (retransmitted or declared lost) in
    // their own round, so they are stale and deduped on sight.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < box.inflight.size(); ++i) {
      if (--box.inflight[i] > 0)
        box.inflight[keep++] = box.inflight[i];
      else
        ++stats_.dup_dropped;
    }
    box.inflight.resize(keep);
    if (box.manifest.empty()) return;

    // Channel outcomes: one draw per frame against the cumulative rates.
    std::int64_t arrivals = 0;
    for (FrameRef& ref : box.manifest) {
      const std::uint64_t h = fault_hash(ref.src, dst, ref.seq, 0);
      const double u = u01(h);
      if (u < p_drop_) {
        ++stats_.frames_dropped;
      } else if (u < p_dup_) {
        // Both copies arrive; the second is deduped by sequence number.
        ref.received = true;
        ++arrivals;
        ++stats_.frames_duplicated;
        ++stats_.dup_dropped;
      } else if (u < p_corrupt_) {
        ++stats_.frames_corrupted;
        corrupt_and_check(box, ref, h);
      } else if (u < p_delay_) {
        ++stats_.frames_delayed;
        box.inflight.push_back(
            1 + static_cast<int>((h & 0xFFFF) %
                                 static_cast<std::uint64_t>(
                                     plan_.max_delay_rounds)));
      } else {
        ref.received = true;
        ++arrivals;
      }
    }

    // Within-round reorder shuffles arrival order on the channel, but
    // the receiver reassembles in sequence order (the manifest *is* the
    // per-source sequence order), so it is masked by construction —
    // only counted.
    if (plan_.reorder > 0.0 && arrivals > 1) {
      for (const FrameRef& ref : box.manifest) {
        if (!ref.received) continue;
        if (u01(fault_hash(ref.src, dst, ref.seq, kReorderAttempt)) <
            plan_.reorder)
          ++stats_.frames_reordered;
      }
    }

    // Ack/retransmit inside the barrier: the receiver knows each
    // source's expected next sequence number, so every missing frame is
    // identified by its gap and re-requested.  A retransmission can
    // itself be dropped or corrupted; past the budget the frame is lost
    // and the run is permanently degraded.
    for (FrameRef& ref : box.manifest) {
      if (ref.received) continue;
      for (int a = 1; a <= plan_.retransmit_budget && !ref.received; ++a) {
        ++stats_.retransmits;
        const std::uint64_t h = fault_hash(ref.src, dst, ref.seq, a);
        const double u = u01(h);
        if (u < plan_.drop) continue;
        if (u < plan_.drop + plan_.corrupt) {
          corrupt_and_check(box, ref, h);
          continue;
        }
        ref.received = true;
      }
      if (!ref.received) {
        ++stats_.frames_lost;
        degraded_ = true;
      }
    }

    // Deliver in posting order: decode each accepted pristine frame —
    // the real checksum check — and hand the message to the inner
    // backend, which then behaves exactly as in a fault-free run.
    for (const FrameRef& ref : box.manifest) {
      if (!ref.received) continue;
      std::size_t off = ref.offset;
      std::uint32_t seq = 0;
      const bool ok = decode_frame({box.bytes.data(), ref.offset + ref.len},
                                   off, seq, scratch_);
      TS_REQUIRE(ok && seq == ref.seq);  // pristine store, by construction
      ++decoded_;
      ++stats_.frames_delivered;
      inner_->post(std::move(scratch_));
    }
    box.bytes.clear();
    box.manifest.clear();
  }

  FaultPlan plan_;
  std::unique_ptr<Transport> inner_;
  std::vector<DstBox> box_;
  FaultStats stats_;
  bool degraded_ = false;
  double p_drop_ = 0.0, p_dup_ = 0.0, p_corrupt_ = 0.0, p_delay_ = 0.0;
  std::int64_t encoded_ = 0;
  std::int64_t decoded_ = 0;
  Message scratch_;
  Message corrupt_msg_;
  std::vector<std::uint8_t> corrupt_scratch_;
};

// TREESCHED_FAULTS, read once per process (same hook pattern as
// TREESCHED_TRANSPORT).  Returns nullptr when unset/empty.
const FaultPlan* env_fault_plan() {
  static const FaultPlan* plan = []() -> const FaultPlan* {
    const char* env = std::getenv("TREESCHED_FAULTS");
    if (env == nullptr || *env == '\0') return nullptr;
    static const FaultPlan parsed = parse_fault_plan(env);
    return &parsed;
  }();
  return plan;
}

}  // namespace

std::unique_ptr<Transport> make_transport(TransportKind kind, int num_nodes,
                                          const FaultPlan* faults) {
  TS_REQUIRE(num_nodes > 0);
  // Only a default-kind request (or an explicit kFaulty) may be wrapped
  // by the environment: explicitly requested concrete backends keep
  // their exact semantics even under TREESCHED_FAULTS, so the env-driven
  // fault CI job doesn't disturb explicit-kind tests.
  const bool env_eligible =
      kind == TransportKind::kDefault || kind == TransportKind::kFaulty;
  const TransportKind resolved = resolve_transport_kind(kind);
  FaultPlan plan;
  bool faulty = resolved == TransportKind::kFaulty;
  if (faults != nullptr && faults->any()) {
    plan = *faults;
    if (resolved != TransportKind::kFaulty) plan.inner = resolved;
    faulty = true;
  } else if (env_eligible) {
    if (const FaultPlan* env = env_fault_plan()) {
      plan = *env;
      if (resolved != TransportKind::kFaulty) plan.inner = resolved;
      faulty = true;
    }
  }
  if (faulty) return std::make_unique<FaultyTransport>(plan, num_nodes);
  return make_concrete(resolved, num_nodes);
}

}  // namespace treesched
