#include "dist/transport.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace treesched {

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kDefault:
      return "default";
    case TransportKind::kInProc:
      return "inproc";
    case TransportKind::kSerialized:
      return "serialized";
    case TransportKind::kThreadedSerialized:
      return "threaded";
  }
  return "?";
}

TransportKind parse_transport_kind(const std::string& name) {
  if (name == "inproc") return TransportKind::kInProc;
  if (name == "serialized") return TransportKind::kSerialized;
  if (name == "threaded" || name == "threaded-serialized")
    return TransportKind::kThreadedSerialized;
  check_input(false, "unknown transport '" + name +
                         "' (expected inproc|serialized|threaded)");
  return TransportKind::kInProc;  // unreachable
}

TransportKind resolve_transport_kind(TransportKind kind) {
  if (kind != TransportKind::kDefault) return kind;
  // Read once: the env hook selects the process-wide default, which is
  // how CI runs the whole tier-1 suite over the serialized wire without
  // any test knowing (TREESCHED_TRANSPORT=serialized, see ci.yml).
  static const TransportKind from_env = [] {
    const char* env = std::getenv("TREESCHED_TRANSPORT");
    if (env == nullptr || *env == '\0') return TransportKind::kInProc;
    return parse_transport_kind(env);
  }();
  return from_env;
}

// --- codec -----------------------------------------------------------------

namespace {

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  std::uint32_t u;
  std::memcpy(&u, &v, 4);
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &u, 4);
}

std::int32_t get_i32(const std::uint8_t* p) {
  std::int32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void fail(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
}

}  // namespace

std::size_t encode_message(const Message& m, std::vector<std::uint8_t>& out) {
  const std::size_t before = out.size();
  put_i32(out, m.from);
  put_i32(out, m.to);
  put_i32(out, m.tag);
  put_i32(out, static_cast<std::int32_t>(m.data.size()));
  const std::size_t at = out.size();
  out.resize(at + 8 * m.data.size());
  if (!m.data.empty())
    std::memcpy(out.data() + at, m.data.data(), 8 * m.data.size());
  return out.size() - before;
}

bool decode_message(std::span<const std::uint8_t> buf, std::size_t& offset,
                    Message& out, std::string* error) {
  if (offset > buf.size() || buf.size() - offset < 16) {
    fail(error, "message header truncated (need 16 bytes)");
    return false;
  }
  const std::uint8_t* p = buf.data() + offset;
  const std::int32_t from = get_i32(p);
  const std::int32_t to = get_i32(p + 4);
  const std::int32_t tag = get_i32(p + 8);
  const std::int32_t count = get_i32(p + 12);
  if (from < 0 || to < 0) {
    fail(error, "corrupt message header (negative endpoint)");
    return false;
  }
  if (count < 0) {
    fail(error, "corrupt message header (negative payload length)");
    return false;
  }
  const std::size_t payload = 8 * static_cast<std::size_t>(count);
  if (buf.size() - offset - 16 < payload) {
    fail(error, "message payload truncated");
    return false;
  }
  out.from = from;
  out.to = to;
  out.tag = tag;
  out.data.resize(static_cast<std::size_t>(count));  // reuses capacity
  if (count > 0) std::memcpy(out.data.data(), p + 16, payload);
  offset += 16 + payload;
  return true;
}

// --- backends --------------------------------------------------------------

namespace {

// The original single-process path: posted Messages are moved, never
// encoded.  One in-flight list, one delivered vector per node.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(int num_nodes)
      : inbox_(static_cast<std::size_t>(num_nodes)) {}

  void post(Message m) override { in_flight_.push_back(std::move(m)); }

  void flush() override {
    for (Message& m : in_flight_)
      inbox_[static_cast<std::size_t>(m.to)].push_back(std::move(m));
    in_flight_.clear();
  }

  void drain(int node, std::vector<Message>& out) override {
    // Swap, don't copy: the recycled `out` donates its capacity as the
    // node's next inbox storage.
    out.clear();
    out.swap(inbox_[static_cast<std::size_t>(node)]);
  }

  TransportKind kind() const override { return TransportKind::kInProc; }
  const char* round_span_name() const override { return "round"; }

 private:
  std::vector<Message> in_flight_;
  std::vector<std::vector<Message>> inbox_;
};

// Per-destination byte buffers shared by the two serialized backends.
struct ByteBox {
  std::vector<std::uint8_t> staging;   // posted since the last flush
  std::int64_t staged_count = 0;
  std::vector<std::uint8_t> delivery;  // flushed, not yet drained
  std::int64_t count = 0;
};

// Moves a box's staged bytes across the round boundary, retaining both
// buffers' capacity.
void flush_box(ByteBox& box) {
  if (box.staged_count == 0) return;
  box.delivery.insert(box.delivery.end(), box.staging.begin(),
                      box.staging.end());
  box.staging.clear();
  box.count += box.staged_count;
  box.staged_count = 0;
}

// Decodes a box's delivered bytes into `out`, overwriting recycled
// Message slots in place (payload capacity included) so a steady-state
// round needs no allocation at all.
void drain_box(ByteBox& box, std::vector<Message>& out,
               std::int64_t& decoded) {
  const auto n = static_cast<std::size_t>(box.count);
  if (out.size() > n) out.resize(n);
  std::size_t offset = 0;
  std::size_t i = 0;
  while (offset < box.delivery.size()) {
    if (i == out.size()) out.emplace_back();
    const bool ok = decode_message(
        {box.delivery.data(), box.delivery.size()}, offset, out[i]);
    TS_REQUIRE(ok);  // internal buffers are always well-formed
    ++i;
    ++decoded;
  }
  TS_REQUIRE(i == n);
  box.delivery.clear();
  box.count = 0;
}

// Every message crosses the codec: encoded into its destination's byte
// buffer at post, decoded back out at drain.  Single-driver, like the
// in-proc path.
class SerializedTransport final : public Transport {
 public:
  explicit SerializedTransport(int num_nodes)
      : box_(static_cast<std::size_t>(num_nodes)) {}

  void post(Message m) override {
    ByteBox& box = box_[static_cast<std::size_t>(m.to)];
    const std::size_t bytes = encode_message(m, box.staging);
    TS_DCHECK(bytes ==
              static_cast<std::size_t>(message_wire_bytes(m)));
    (void)bytes;
    ++box.staged_count;
    ++encoded_;
  }

  void flush() override {
    for (ByteBox& box : box_) flush_box(box);
  }

  void drain(int node, std::vector<Message>& out) override {
    drain_box(box_[static_cast<std::size_t>(node)], out, decoded_);
  }

  TransportKind kind() const override { return TransportKind::kSerialized; }
  const char* round_span_name() const override { return "round.serialized"; }
  std::int64_t codec_encoded() const override { return encoded_; }
  std::int64_t codec_decoded() const override { return decoded_; }

 private:
  std::vector<ByteBox> box_;
  std::int64_t encoded_ = 0;
  std::int64_t decoded_ = 0;
};

// The serialized wire with each destination's staging queue behind its
// own mutex: concurrent threads may post between round boundaries, and
// distinct nodes' inboxes may be drained concurrently (each drain only
// touches its own box).  flush() stays the single driver-side barrier —
// the caller must guarantee no post is in flight across it, exactly the
// synchronous-model discipline Runtime::step already imposes.
class ThreadedSerializedTransport final : public Transport {
 public:
  explicit ThreadedSerializedTransport(int num_nodes)
      : box_(static_cast<std::size_t>(num_nodes)),
        mutex_(std::make_unique<std::mutex[]>(
            static_cast<std::size_t>(num_nodes))) {}

  void post(Message m) override {
    const auto to = static_cast<std::size_t>(m.to);
    std::lock_guard<std::mutex> lock(mutex_[to]);
    encode_message(m, box_[to].staging);
    ++box_[to].staged_count;
    encoded_.fetch_add(1, std::memory_order_relaxed);
  }

  void flush() override {
    for (std::size_t v = 0; v < box_.size(); ++v) {
      std::lock_guard<std::mutex> lock(mutex_[v]);
      flush_box(box_[v]);
    }
  }

  void drain(int node, std::vector<Message>& out) override {
    const auto v = static_cast<std::size_t>(node);
    std::lock_guard<std::mutex> lock(mutex_[v]);
    std::int64_t decoded = 0;
    drain_box(box_[v], out, decoded);
    decoded_.fetch_add(decoded, std::memory_order_relaxed);
  }

  TransportKind kind() const override {
    return TransportKind::kThreadedSerialized;
  }
  const char* round_span_name() const override { return "round.threaded"; }
  std::int64_t codec_encoded() const override {
    return encoded_.load(std::memory_order_relaxed);
  }
  std::int64_t codec_decoded() const override {
    return decoded_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<ByteBox> box_;
  std::unique_ptr<std::mutex[]> mutex_;  // one per destination box
  std::atomic<std::int64_t> encoded_{0};
  std::atomic<std::int64_t> decoded_{0};
};

}  // namespace

std::unique_ptr<Transport> make_transport(TransportKind kind, int num_nodes) {
  TS_REQUIRE(num_nodes > 0);
  switch (resolve_transport_kind(kind)) {
    case TransportKind::kSerialized:
      return std::make_unique<SerializedTransport>(num_nodes);
    case TransportKind::kThreadedSerialized:
      return std::make_unique<ThreadedSerializedTransport>(num_nodes);
    case TransportKind::kInProc:
    case TransportKind::kDefault:
      break;
  }
  return std::make_unique<InProcTransport>(num_nodes);
}

}  // namespace treesched
