// Luby's randomized maximal-independent-set algorithm (paper, Section 5:
// the T_MIS = O(log n) factor of Theorem 5.3), in two forms.
//
// run_luby_protocol() is the *message-level* implementation: one Runtime
// node per member instance.  It first learns the conflict neighborhoods
// through the 2-round edge-owner rendezvous of dist/discovery.hpp — no
// global conflict graph is ever built — then runs the Luby loop on the
// discovered adjacency.  Each iteration costs exactly 2 synchronous
// rounds — round 1 exchanges the random draws, round 2 notifies
// neighbors of the winners — and a node joins the MIS when its
// (draw, id) key beats every live neighbor's.  Losers adjacent to a
// winner retire; the loop ends when every node has decided.  Isolated
// nodes win in the first iteration without sending anything, so a
// conflict-free member set finishes in 2 discovery rounds + 2 Luby
// rounds with only the registration messages on the wire.
//
// LubyMis is the production oracle the two-phase engine consumes
// (framework/two_phase.hpp).  It runs the same iteration structure but on
// the *implicit* conflict cliques (per-edge and per-demand minima) instead
// of an explicit graph — O(sum path length) per iteration, no graph
// construction — and reports the same round accounting: MisResult.rounds
// = 2 rounds per iteration.  Both forms are deterministic by seed.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/prelude.hpp"
#include "common/rng.hpp"
#include "dist/runtime.hpp"
#include "framework/two_phase.hpp"
#include "model/problem.hpp"

namespace treesched {

// Message tags of the Luby protocol rounds.
inline constexpr int kLubyTagDraw = 0;    // payload: {draw value}
inline constexpr int kLubyTagWinner = 1;  // payload: {}

// Per-processor private random streams: SplitMix64 expands one seed into
// `count` independent Rng streams, one per node, so a node's draws do not
// depend on the order anyone iterates the nodes in.  The message-level
// protocol and its modeled twin (ProtocolLubyMis below) both build their
// streams through this one helper, which is what makes their Luby
// decisions — and hence the protocol-vs-engine parity suite's exact
// comparisons — reproducible from the seed alone.
std::vector<Rng> make_node_streams(std::uint64_t seed, int count);

// The protocol scheduler's default Luby iteration budget: 2*ceil(log2 n)
// + 2 iterations decide every node w.h.p. (Luby's analysis).  Exposed so
// the modeled mirror oracle and the tests derive the same number.
int default_luby_budget(int n);

// Adaptive budget retry: when a fixed-budget MIS stage ends with
// undecided nodes, the stage re-runs with the budget doubled (2x, then
// 4x, ...) up to this many attempts before accepting the leftover as
// undecided — the starved stage recovers instead of silently degrading
// into mis_ok=false.  Shared default of the modeled oracle
// (ProtocolLubyMis) and the wire protocol (ProtocolOptions) so their
// lockstep parity is preserved.
inline constexpr int kDefaultMisMaxRetries = 2;

// Outcome of a message-level Luby run: selected member indexes plus the
// Runtime's accounting, with the discovery share broken out (totals
// include it) and the transport backend's codec hits (zero in-proc; ==
// messages on the serialized wires, every message really encoded and
// decoded).
struct ProtocolResult {
  std::vector<int> selected;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::int64_t discovery_rounds = 0;
  std::int64_t discovery_messages = 0;
  std::int64_t discovery_bytes = 0;
  TransportKind transport = TransportKind::kInProc;
  std::int64_t codec_encoded = 0;
  std::int64_t codec_decoded = 0;
  // Recovery-layer observability (kFaulty backend only; zero/false
  // elsewhere).  degraded means at least one frame exhausted its
  // retransmit budget — the selection is then a partial result.
  FaultStats fault;
  bool degraded = false;
};

// One message-level Luby iteration (exactly 2 synchronous rounds) over
// the live subset of `nodes`: every live node draws via its private rng,
// exchanges the draw with its live neighbors, the strict minima of
// (draw, id) over their live neighborhoods win and notify, and every
// decided node — winner or notified loser — leaves `live`.  Returns the
// iteration's winners.  `neighbors`, `live`, `draw` and `node_rng` are
// indexed by member index; `neighbors` is typically
// DiscoveredNeighborhoods::neighbors.  Shared by run_luby_protocol
// (adaptive loop) and the fixed-budget protocol scheduler so the two
// message-level paths cannot drift apart.
std::vector<int> luby_iteration(std::span<const std::vector<int>> neighbors,
                                Runtime& rt, std::span<const int> nodes,
                                std::vector<char>& live,
                                std::vector<double>& draw,
                                std::vector<Rng>& node_rng);

// Luby's MIS as a real protocol on the synchronous runtime: rendezvous
// discovery first, then 2 rounds per iteration on the discovered
// neighborhoods.  `members` are distinct instances of `problem`;
// selected entries are member indexes.  Deterministic by seed, and
// bit-identical (selection and counters) on every transport backend.
ProtocolResult run_luby_protocol(
    const Problem& problem, std::span<const InstanceId> members,
    std::uint64_t seed, TransportKind transport = TransportKind::kDefault,
    const FaultPlan* faults = nullptr);

// Round-counting Luby oracle over the implicit conflict cliques.  One
// instance is stateful: successive run() calls consume the same random
// stream, so a whole engine run is reproducible from the seed.
class LubyMis : public MisOracle {
 public:
  LubyMis(const Problem& problem, std::uint64_t seed);

  MisResult run(std::span<const InstanceId> candidates) override;

  // Component-local oracle for parallel epoch execution: derives an
  // independent stream from (seed, key), so the run is deterministic for
  // any thread count.  Note this is a *different* randomness schedule
  // than the serial single-stream run — threads >= 2 with LubyMis is
  // reproducible but not bit-identical to threads == 1 (GreedyMis is;
  // see MisOracle::component_clone).  The engine keys clones by
  // component_stream_key(group, first member) under BOTH component
  // decompositions — the persistent ComponentForest and the legacy
  // per-epoch recompute — and the clone never consumes this oracle's own
  // stream, so forest reuse (including skipping fully-satisfied
  // components without cloning) cannot shift any component's draws.
  bool supports_component_clone() const override { return true; }
  std::unique_ptr<MisOracle> component_clone(std::uint64_t key) override;

 private:
  struct Key {
    double value = 0.0;
    InstanceId id = kNoInstance;
    bool operator<(const Key& o) const {
      return value < o.value || (value == o.value && id < o.id);
    }
    bool operator==(const Key& o) const {
      return value == o.value && id == o.id;
    }
  };

  const Problem* problem_;
  std::uint64_t seed_ = 0;  // retained for component_clone derivation
  Rng rng_;
  // Per-edge / per-demand minimum key over the live candidates, with
  // iteration stamps so no clearing is needed between iterations.
  std::vector<Key> edge_min_, demand_min_;
  std::vector<int> edge_stamp_, demand_stamp_;
  std::vector<int> edge_kill_, demand_kill_;  // stamped when a winner uses it
  int stamp_ = 0;
};

// The modeled twin of the protocol scheduler's budgeted Luby loop: a
// MisOracle whose decisions are bit-identical to what the message-level
// protocol computes on the wire.  Three properties make that exact:
//
//  * draws come from *per-instance* streams (make_node_streams), exactly
//    the streams the protocol's runtime nodes hold — so a draw depends
//    only on (seed, instance, how often that instance has drawn), never
//    on iteration order;
//  * each run() spends exactly `luby_budget` iterations (stopping early
//    only once every candidate has decided, which consumes no further
//    draws — undecided leftovers are simply not selected, mirroring the
//    protocol's fixed schedule);
//  * the winner rule is the per-clique strict minimum of (draw, id),
//    which equals "my key beats every live conflicting neighbor's" on
//    the discovered neighborhoods.
//
// Feeding this oracle to the two-phase engine in lockstep mode replays
// the protocol's entire raise sequence, which is what the protocol
// parity suite (tests/test_protocol_parity.cpp) compares with ==.
//
// Because the randomness is per instance, component_clone can hand each
// parallel-epoch worker a view onto the *same* shared streams (disjoint
// components touch disjoint instances): unlike LubyMis, the parallel
// engine run is bit-identical to the serial one, for any thread count.
class ProtocolLubyMis : public MisOracle {
 public:
  // `luby_budget` <= 0 derives default_luby_budget(num_instances).
  // `max_retries` bounds the adaptive budget retry: a run() whose fixed
  // budget ends with undecided candidates re-runs with the budget
  // doubled per attempt (2x, 4x, ...), up to max_retries attempts,
  // reporting the attempts in MisResult::retries and the extra
  // iterations in MisResult::rounds.  0 restores the old silent-degrade
  // behavior.
  ProtocolLubyMis(const Problem& problem, std::uint64_t seed,
                  int luby_budget = 0, int max_retries = kDefaultMisMaxRetries);

  MisResult run(std::span<const InstanceId> candidates) override;

  bool supports_component_clone() const override { return true; }
  std::unique_ptr<MisOracle> component_clone(std::uint64_t key) override;

  int luby_budget() const { return budget_; }
  int max_retries() const { return max_retries_; }

 private:
  struct Key {
    double value = 0.0;
    InstanceId id = kNoInstance;
    bool operator<(const Key& o) const {
      return value < o.value || (value == o.value && id < o.id);
    }
    bool operator==(const Key& o) const {
      return value == o.value && id == o.id;
    }
  };

  ProtocolLubyMis(const Problem& problem,
                  std::shared_ptr<std::vector<Rng>> streams, int luby_budget,
                  int max_retries);

  // One budgeted Luby iteration over `live` (draw, clique minima,
  // winners into result.selected, survivor compaction) — the body both
  // the main loop and the retry loop execute, so they cannot drift.
  void run_iteration(std::vector<InstanceId>& live, std::vector<double>& draw,
                     std::vector<InstanceId>& next, MisResult& result);

  const Problem* problem_;
  int budget_ = 1;
  int max_retries_ = kDefaultMisMaxRetries;
  // Shared with component clones: components of one epoch are disjoint
  // instance sets, so concurrent clones touch disjoint streams.
  std::shared_ptr<std::vector<Rng>> streams_;
  // Per-oracle scratch (clique minima over the live set, stamped).
  std::vector<Key> edge_min_, demand_min_;
  std::vector<int> edge_stamp_, demand_stamp_;
  std::vector<int> edge_kill_, demand_kill_;
  int stamp_ = 0;
};

}  // namespace treesched
