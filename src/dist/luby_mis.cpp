#include "dist/luby_mis.hpp"

#include <algorithm>
#include <cmath>

#include "dist/discovery.hpp"
#include "dist/runtime.hpp"
#include "obs/metrics.hpp"

namespace treesched {

std::vector<Rng> make_node_streams(std::uint64_t seed, int count) {
  SplitMix64 expand(seed);
  std::vector<Rng> streams;
  streams.reserve(static_cast<std::size_t>(std::max(count, 0)));
  for (int v = 0; v < count; ++v) streams.emplace_back(expand.next());
  return streams;
}

int default_luby_budget(int n) {
  return 2 * static_cast<int>(std::ceil(std::log2(
             static_cast<double>(std::max(n, 2))))) +
         2;
}

// ---------------------------------------------------------------------------
// Message-level protocol on the synchronous runtime.

std::vector<int> luby_iteration(std::span<const std::vector<int>> neighbors,
                                Runtime& rt, std::span<const int> nodes,
                                std::vector<char>& live,
                                std::vector<double>& draw,
                                std::vector<Rng>& node_rng) {
  // Round 1: every live node draws and tells its live neighbors.  A
  // decided node is silent, so absence from the inbox encodes death.
  for (int v : nodes) {
    if (!live[static_cast<std::size_t>(v)]) continue;
    draw[static_cast<std::size_t>(v)] =
        node_rng[static_cast<std::size_t>(v)].uniform();
    for (int u : neighbors[static_cast<std::size_t>(v)])
      if (live[static_cast<std::size_t>(u)])
        rt.post(Message{v, u, kLubyTagDraw,
                        {draw[static_cast<std::size_t>(v)]}});
  }
  rt.step();

  // Local decision + round 2: the strict minima of (draw, id) over their
  // live neighborhoods win and notify.  Drained inboxes are recycled
  // through the runtime's free list — the Luby loop is the protocol's
  // hottest drain site, and the recycled slots make the serialized
  // backends' decode loop allocation-free at steady state.
  std::vector<int> winners;
  for (int v : nodes) {
    if (!live[static_cast<std::size_t>(v)]) continue;
    bool best = true;
    std::vector<Message> inbox = rt.drain(v);
    for (const Message& m : inbox) {
      TS_REQUIRE(m.tag == kLubyTagDraw);
      const double other = m.data[0];
      const double mine = draw[static_cast<std::size_t>(v)];
      if (other < mine || (other == mine && m.from < v)) {
        best = false;
        break;
      }
    }
    rt.recycle(std::move(inbox));
    if (!best) continue;
    winners.push_back(v);
    for (int u : neighbors[static_cast<std::size_t>(v)])
      if (live[static_cast<std::size_t>(u)])
        rt.post(Message{v, u, kLubyTagWinner, {}});
  }
  rt.step();

  // Winners and their notified neighbors leave the live set.  (A winner's
  // inbox is necessarily empty here: two adjacent live nodes can never
  // both be strict minima.)
  for (int v : nodes) {
    if (!live[static_cast<std::size_t>(v)]) continue;
    std::vector<Message> inbox = rt.drain(v);
    for (const Message& m : inbox)
      if (m.tag == kLubyTagWinner) live[static_cast<std::size_t>(v)] = 0;
    rt.recycle(std::move(inbox));
  }
  for (int v : winners) live[static_cast<std::size_t>(v)] = 0;
  return winners;
}

ProtocolResult run_luby_protocol(const Problem& problem,
                                 std::span<const InstanceId> members,
                                 std::uint64_t seed,
                                 TransportKind transport,
                                 const FaultPlan* faults) {
  ProtocolResult result;
  const int n = static_cast<int>(members.size());
  if (n == 0) return result;

  // Neighborhoods come from the edge-owner rendezvous, charged to the
  // same runtime the Luby rounds run on — no global conflict graph.
  const RendezvousLayout layout = RendezvousLayout::for_problem(problem, n);
  Runtime rt(layout.total, transport, faults);
  const DiscoveredNeighborhoods hood = discover_conflicts(problem, members, rt);
  result.discovery_rounds = hood.rounds;
  result.discovery_messages = hood.messages;
  result.discovery_bytes = hood.bytes;

  // Per-node private random stream: SplitMix64 expands the seed so node
  // draws are independent of the iteration order, mirroring processors
  // drawing locally.
  std::vector<Rng> node_rng = make_node_streams(seed, n);

  std::vector<int> nodes(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) nodes[static_cast<std::size_t>(v)] = v;
  std::vector<char> live(static_cast<std::size_t>(n), 1);
  std::vector<double> draw(static_cast<std::size_t>(n), 0.0);

  // Adaptive loop: every iteration at least the globally minimal key
  // wins, so the live set strictly shrinks.
  while (std::find(live.begin(), live.end(), char{1}) != live.end()) {
    const std::vector<int> winners = luby_iteration(
        {hood.neighbors.data(), hood.neighbors.size()}, rt, nodes, live,
        draw, node_rng);
    result.selected.insert(result.selected.end(), winners.begin(),
                           winners.end());
  }

  std::sort(result.selected.begin(), result.selected.end());
  result.rounds = rt.round();
  result.messages = rt.messages_sent();
  result.bytes = rt.bytes_sent();
  result.transport = rt.transport_kind();
  result.codec_encoded = rt.codec_encoded();
  result.codec_decoded = rt.codec_decoded();
  if (const FaultStats* fs = rt.fault_stats()) result.fault = *fs;
  result.degraded = rt.degraded();
  return result;
}

// ---------------------------------------------------------------------------
// LubyMis oracle (implicit cliques).

LubyMis::LubyMis(const Problem& problem, std::uint64_t seed)
    : problem_(&problem),
      seed_(seed),
      rng_(SplitMix64(seed).next()),
      edge_min_(static_cast<std::size_t>(problem.num_global_edges())),
      demand_min_(static_cast<std::size_t>(problem.num_demands())),
      edge_stamp_(static_cast<std::size_t>(problem.num_global_edges()), 0),
      demand_stamp_(static_cast<std::size_t>(problem.num_demands()), 0),
      edge_kill_(static_cast<std::size_t>(problem.num_global_edges()), 0),
      demand_kill_(static_cast<std::size_t>(problem.num_demands()), 0) {}

std::unique_ptr<MisOracle> LubyMis::component_clone(std::uint64_t key) {
  // SplitMix64 over (seed, key) gives each component an independent
  // stream; the same (seed, epoch, component) always yields the same
  // stream, so parallel runs are reproducible for any thread count.
  SplitMix64 mix(seed_);
  const std::uint64_t derived = mix.next() ^ SplitMix64(key).next();
  return std::make_unique<LubyMis>(*problem_, derived);
}

MisResult LubyMis::run(std::span<const InstanceId> candidates) {
  MisResult result;
  std::vector<InstanceId> live(candidates.begin(), candidates.end());
  std::vector<double> draw(live.size(), 0.0);
  std::vector<InstanceId> next;
  int iterations = 0;

  while (!live.empty()) {
    ++iterations;
    ++stamp_;

    // Clique minima of (draw, id) over the live set.  An instance wins the
    // iteration iff it is the minimum of *every* clique it belongs to —
    // exactly "my key beats all conflicting neighbors' keys", since the
    // neighborhood is the union of the instance's cliques.
    for (std::size_t k = 0; k < live.size(); ++k)
      draw[k] = rng_.uniform();
    for (std::size_t k = 0; k < live.size(); ++k) {
      const Key key{draw[k], live[k]};
      const DemandInstance& inst = problem_->instance(live[k]);
      const auto d = static_cast<std::size_t>(inst.demand);
      if (demand_stamp_[d] != stamp_ || key < demand_min_[d]) {
        demand_stamp_[d] = stamp_;
        demand_min_[d] = key;
      }
      for (EdgeId e : inst.edges) {
        const auto ge = static_cast<std::size_t>(e);
        if (edge_stamp_[ge] != stamp_ || key < edge_min_[ge]) {
          edge_stamp_[ge] = stamp_;
          edge_min_[ge] = key;
        }
      }
    }

    // Winners join the MIS and stamp their cliques as killing.
    for (std::size_t k = 0; k < live.size(); ++k) {
      const Key key{draw[k], live[k]};
      const DemandInstance& inst = problem_->instance(live[k]);
      if (!(demand_min_[static_cast<std::size_t>(inst.demand)] == key))
        continue;
      bool wins = true;
      for (EdgeId e : inst.edges) {
        if (!(edge_min_[static_cast<std::size_t>(e)] == key)) {
          wins = false;
          break;
        }
      }
      if (!wins) continue;
      result.selected.push_back(live[k]);
      demand_kill_[static_cast<std::size_t>(inst.demand)] = stamp_;
      for (EdgeId e : inst.edges)
        edge_kill_[static_cast<std::size_t>(e)] = stamp_;
    }

    // Survivors: live instances not conflicting with any winner.
    next.clear();
    for (InstanceId i : live) {
      const DemandInstance& inst = problem_->instance(i);
      bool dead = demand_kill_[static_cast<std::size_t>(inst.demand)] == stamp_;
      for (EdgeId e : inst.edges) {
        if (dead) break;
        dead = edge_kill_[static_cast<std::size_t>(e)] == stamp_;
      }
      if (!dead) next.push_back(i);
    }
    live.swap(next);
    draw.resize(live.size());
  }

  // The paper's accounting: 2 synchronous rounds per Luby iteration
  // (draw exchange + winner notification).
  result.rounds = 2 * std::max(iterations, 1);
  TRACE_HIST("mis.luby_iterations", iterations);
  return result;
}

// ---------------------------------------------------------------------------
// ProtocolLubyMis: the protocol scheduler's budgeted per-node Luby loop
// as a modeled oracle (see header).

ProtocolLubyMis::ProtocolLubyMis(const Problem& problem, std::uint64_t seed,
                                 int luby_budget, int max_retries)
    : ProtocolLubyMis(problem,
                      std::make_shared<std::vector<Rng>>(make_node_streams(
                          seed, problem.num_instances())),
                      luby_budget > 0
                          ? luby_budget
                          : default_luby_budget(problem.num_instances()),
                      max_retries) {}

ProtocolLubyMis::ProtocolLubyMis(const Problem& problem,
                                 std::shared_ptr<std::vector<Rng>> streams,
                                 int luby_budget, int max_retries)
    : problem_(&problem),
      budget_(luby_budget),
      max_retries_(std::max(max_retries, 0)),
      streams_(std::move(streams)),
      edge_min_(static_cast<std::size_t>(problem.num_global_edges())),
      demand_min_(static_cast<std::size_t>(problem.num_demands())),
      edge_stamp_(static_cast<std::size_t>(problem.num_global_edges()), 0),
      demand_stamp_(static_cast<std::size_t>(problem.num_demands()), 0),
      edge_kill_(static_cast<std::size_t>(problem.num_global_edges()), 0),
      demand_kill_(static_cast<std::size_t>(problem.num_demands()), 0) {
  TS_REQUIRE(budget_ >= 1);
  TS_REQUIRE(streams_ != nullptr &&
             streams_->size() ==
                 static_cast<std::size_t>(problem.num_instances()));
}

std::unique_ptr<MisOracle> ProtocolLubyMis::component_clone(
    std::uint64_t key) {
  // The clone *shares* the per-instance streams: randomness is addressed
  // by instance, not by oracle, so running a conflict-disjoint component
  // on a worker consumes exactly the draws the serial run would — the
  // parallel engine stays bit-identical to the serial one.  `key` is
  // deliberately unused for stream derivation.
  (void)key;
  return std::unique_ptr<MisOracle>(
      new ProtocolLubyMis(*problem_, streams_, budget_, max_retries_));
}

void ProtocolLubyMis::run_iteration(std::vector<InstanceId>& live,
                                    std::vector<double>& draw,
                                    std::vector<InstanceId>& next,
                                    MisResult& result) {
  ++stamp_;

  // Each live node draws from its own stream (the protocol's round 1),
  // then the clique minima of (draw, id) are computed over the live
  // set — an instance wins iff it is the strict minimum of every
  // clique it belongs to, i.e. beats every live conflicting neighbor.
  for (std::size_t k = 0; k < live.size(); ++k)
    draw[k] = (*streams_)[static_cast<std::size_t>(live[k])].uniform();
  for (std::size_t k = 0; k < live.size(); ++k) {
    const Key key{draw[k], live[k]};
    const DemandInstance& inst = problem_->instance(live[k]);
    const auto d = static_cast<std::size_t>(inst.demand);
    if (demand_stamp_[d] != stamp_ || key < demand_min_[d]) {
      demand_stamp_[d] = stamp_;
      demand_min_[d] = key;
    }
    for (EdgeId e : inst.edges) {
      const auto ge = static_cast<std::size_t>(e);
      if (edge_stamp_[ge] != stamp_ || key < edge_min_[ge]) {
        edge_stamp_[ge] = stamp_;
        edge_min_[ge] = key;
      }
    }
  }

  for (std::size_t k = 0; k < live.size(); ++k) {
    const Key key{draw[k], live[k]};
    const DemandInstance& inst = problem_->instance(live[k]);
    if (!(demand_min_[static_cast<std::size_t>(inst.demand)] == key))
      continue;
    bool wins = true;
    for (EdgeId e : inst.edges) {
      if (!(edge_min_[static_cast<std::size_t>(e)] == key)) {
        wins = false;
        break;
      }
    }
    if (!wins) continue;
    result.selected.push_back(live[k]);
    demand_kill_[static_cast<std::size_t>(inst.demand)] = stamp_;
    for (EdgeId e : inst.edges)
      edge_kill_[static_cast<std::size_t>(e)] = stamp_;
  }

  next.clear();
  for (InstanceId i : live) {
    const DemandInstance& inst = problem_->instance(i);
    bool dead = demand_kill_[static_cast<std::size_t>(inst.demand)] == stamp_;
    for (EdgeId e : inst.edges) {
      if (dead) break;
      dead = edge_kill_[static_cast<std::size_t>(e)] == stamp_;
    }
    if (!dead) next.push_back(i);
  }
  live.swap(next);
  draw.resize(live.size());
}

MisResult ProtocolLubyMis::run(std::span<const InstanceId> candidates) {
  MisResult result;
  // The fixed protocol schedule: every MIS computation spends exactly
  // budget_ iterations of 2 rounds each, decided nodes sitting the
  // remainder out in silence.
  result.rounds = 2 * budget_;

  std::vector<InstanceId> live(candidates.begin(), candidates.end());
  std::vector<double> draw(live.size(), 0.0);
  std::vector<InstanceId> next;

  int iterations_used = 0;
  for (int iter = 0; iter < budget_ && !live.empty(); ++iter) {
    ++iterations_used;
    run_iteration(live, draw, next, result);
  }

  // Adaptive budget retry: a starved stage re-runs with the budget
  // doubled per attempt instead of silently leaving nodes undecided.
  // Unlike the fixed main schedule, retry rounds are adaptive: only
  // iterations actually executed are charged (2 rounds each).  Because
  // the iteration dynamics decompose across conflict-disjoint
  // components and draws are per-instance, a serial whole-frontier run
  // enters attempt a exactly when some component would — so the retry
  // count merges across parallel components as a per-step max, just
  // like the round count.
  int attempt = 0;
  while (!live.empty() && attempt < max_retries_) {
    ++attempt;
    ++result.retries;
    const int extra = budget_ << attempt;
    for (int iter = 0; iter < extra && !live.empty(); ++iter) {
      ++iterations_used;
      run_iteration(live, draw, next, result);
      result.rounds += 2;
    }
  }
  if (attempt > 0) TRACE_COUNTER("mis.budget_retries", attempt);

  // The protocol sorts a step's accumulated winners before raising;
  // undecided leftovers (budget and retries exhausted) are simply not
  // selected.
  std::sort(result.selected.begin(), result.selected.end());
  TRACE_HIST("mis.budget_iterations_used", iterations_used);
  if (!live.empty()) {
    TRACE_COUNTER("mis.budget_exhausted_steps", 1);
    TRACE_COUNTER("mis.budget_undecided_nodes",
                  static_cast<std::int64_t>(live.size()));
  }
  return result;
}

}  // namespace treesched
