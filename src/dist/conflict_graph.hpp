// Explicit conflict graph over a set of demand instances (paper, Section
// 2): vertices are the given instances; an edge joins two instances that
// *conflict* — same demand, or overlapping paths on the same network.
//
// The two-phase engine never materializes this graph (its Luby oracle
// works on the implicit edge/demand cliques, see dist/luby_mis.hpp); the
// explicit form exists for the message-level protocols, whose channel
// topology is exactly this graph, and for the MIS validity checkers the
// tests use.  Vertices are dense 0-based indexes into the candidate set,
// so they double as Runtime node ids.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/prelude.hpp"
#include "model/problem.hpp"

namespace treesched {

class ConflictGraph {
 public:
  // Builds the conflict graph induced by `members` (distinct instances of
  // `problem`, e.g. one layered-decomposition group).  The problem is
  // only read during construction.
  ConflictGraph(const Problem& problem, std::span<const InstanceId> members);

  int size() const { return static_cast<int>(vertices_.size()); }
  InstanceId instance(int v) const {
    return vertices_[static_cast<std::size_t>(v)];
  }
  const std::vector<int>& neighbors(int v) const {
    return adjacency_[static_cast<std::size_t>(v)];
  }
  std::int64_t num_edges() const { return num_edges_; }
  int max_degree() const { return max_degree_; }

  // True iff `selected` (vertex indexes) is independent — no two selected
  // vertices adjacent — and maximal — every unselected vertex has a
  // selected neighbor.
  bool is_maximal_independent_set(const std::vector<int>& selected) const;

 private:
  std::vector<InstanceId> vertices_;
  std::vector<std::vector<int>> adjacency_;  // sorted
  std::int64_t num_edges_ = 0;
  int max_degree_ = 0;
};

// Outcome of a message-level Luby run on the graph: selected vertex
// indexes plus the Runtime's round/message/byte accounting.
struct ProtocolResult {
  std::vector<int> selected;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
};

// Luby's MIS as a real protocol on the synchronous runtime: one node per
// graph vertex, one channel per conflict edge, 2 rounds per iteration
// (draw exchange + winner notification).  Deterministic by seed; see
// dist/luby_mis.hpp for the accounting model.
ProtocolResult run_luby_protocol(const ConflictGraph& graph,
                                 std::uint64_t seed);

}  // namespace treesched
