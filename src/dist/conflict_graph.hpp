// Explicit conflict graph over a set of demand instances (paper, Section
// 2): vertices are the given instances; an edge joins two instances that
// *conflict* — same demand, or overlapping paths on the same network.
//
// This is a TEST ORACLE.  No production path materializes the global
// graph anymore: the two-phase engine's Luby oracle works on the
// implicit edge/demand cliques (dist/luby_mis.hpp), and the
// message-level protocols learn their neighborhoods through the
// edge-owner rendezvous rounds of dist/discovery.hpp.  The explicit form
// survives for the MIS validity checkers and the parity tests that pin
// the rendezvous-discovered adjacency to the ground truth
// (tests/test_discovery.cpp).  Vertices are dense 0-based indexes into
// the candidate set, so they align with discovery's member indexes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/prelude.hpp"
#include "model/problem.hpp"

namespace treesched {

class ConflictGraph {
 public:
  // Builds the conflict graph induced by `members` (distinct instances of
  // `problem`, e.g. one layered-decomposition group).  The problem is
  // only read during construction.
  ConflictGraph(const Problem& problem, std::span<const InstanceId> members);

  int size() const { return static_cast<int>(vertices_.size()); }
  InstanceId instance(int v) const {
    return vertices_[static_cast<std::size_t>(v)];
  }
  const std::vector<int>& neighbors(int v) const {
    return adjacency_[static_cast<std::size_t>(v)];
  }
  // The full adjacency (sorted per vertex) — comparable 1:1 with
  // DiscoveredNeighborhoods::neighbors.
  const std::vector<std::vector<int>>& adjacency() const {
    return adjacency_;
  }
  std::int64_t num_edges() const { return num_edges_; }
  int max_degree() const { return max_degree_; }

  // True iff `selected` (vertex indexes) is independent — no two selected
  // vertices adjacent — and maximal — every unselected vertex has a
  // selected neighbor.
  bool is_maximal_independent_set(const std::vector<int>& selected) const;

 private:
  std::vector<InstanceId> vertices_;
  std::vector<std::vector<int>> adjacency_;  // sorted
  std::int64_t num_edges_ = 0;
  int max_degree_ = 0;
};

}  // namespace treesched
