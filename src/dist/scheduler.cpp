#include "dist/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "capacity/capacity_profile.hpp"
#include "dist/luby_mis.hpp"

namespace treesched {

namespace {

SolverConfig make_config(const DistOptions& options, RaiseRuleKind rule) {
  SolverConfig config;
  config.epsilon = options.epsilon;
  config.rule = rule;
  config.stage_mode = options.stage_mode;
  config.lockstep = options.lockstep;
  config.count_messages = options.count_messages;
  config.check_interference = options.check_interference;
  return config;
}

// Final slackness lambda of the configured stage schedule.
double target_lambda(const DistOptions& options) {
  return treesched::target_lambda(options.stage_mode, options.epsilon);
}

// Unit-height solvers (Theorems 5.3 and 7.1): one engine run with the
// kUnit rule; bound (Delta+1)/lambda over the observed Delta.
DistResult solve_unit(const Problem& problem, const LayeredPlan& plan,
                      const DistOptions& options) {
  LubyMis oracle(problem, options.seed);
  SolveResult run =
      solve_with_plan(problem, plan, make_config(options, RaiseRuleKind::kUnit),
                      &oracle);
  DistResult result;
  result.solution = std::move(run.solution);
  result.stats = run.stats;
  result.profit = result.stats.profit;
  result.ratio_bound = proven_ratio_bound(RaiseRuleKind::kUnit,
                                          result.stats.delta,
                                          target_lambda(options));
  return result;
}

// Arbitrary-height solvers (Theorems 6.3 and 7.2): wide/narrow split.
// OPT <= OPT_wide + OPT_narrow, each part is Lemma 3.1/6.1-certified, and
// the per-network better-of combination dominates both parts — so the
// price factors of the classes that actually occurred *add*:
//   bound = ((Delta+1) [if wide] + (1+2 Delta^2) [if narrow]) / lambda.
// With Delta = 6 (trees, ideal) that is the 80+eps of Theorem 6.3; with
// Delta = 3 (lines) the 23+eps of Theorem 7.2.
DistResult solve_arbitrary(const Problem& problem, const LayeredPlan& plan,
                           const DistOptions& options) {
  LubyMis oracle(problem, options.seed);
  SolveResult run = solve_height_split(
      problem, plan, make_config(options, RaiseRuleKind::kUnit), &oracle);
  bool has_wide = false, has_narrow = false;
  for (InstanceId i = 0; i < problem.num_instances(); ++i) {
    if (is_wide_instance(problem.instance(i)))
      has_wide = true;
    else
      has_narrow = true;
    if (has_wide && has_narrow) break;
  }
  DistResult result;
  result.solution = std::move(run.solution);
  result.stats = run.stats;
  // Honest accounting of the per-network better-of combination: picking
  // the winner per network is not free in the distributed model — the
  // per-network profit totals of the two sub-solutions converge-cast up
  // each tree and the verdict broadcasts back, O(depth) rounds.  Charged
  // only when two classes actually ran (a single class has nothing to
  // combine), so the round identity becomes
  //   comm_rounds = mis_rounds + steps [+ better_of_convergecast_rounds].
  if (has_wide && has_narrow)
    result.stats.comm_rounds += better_of_convergecast_rounds(problem);
  result.profit = result.stats.profit;
  const double lambda = target_lambda(options);
  double bound = 0.0;
  if (has_wide)
    bound += proven_ratio_bound(RaiseRuleKind::kUnit, result.stats.delta,
                                lambda);
  if (has_narrow)
    bound += proven_ratio_bound(RaiseRuleKind::kNarrow, result.stats.delta,
                                lambda);
  result.ratio_bound = std::max(bound, 1.0);
  return result;
}

}  // namespace

double proven_ratio_bound(RaiseRuleKind rule, int delta, double lambda) {
  TS_REQUIRE(lambda > 0.0);
  const auto d = static_cast<double>(delta);
  const double price =
      rule == RaiseRuleKind::kUnit ? d + 1.0 : 1.0 + 2.0 * d * d;
  return std::max(price / lambda, 1.0);
}

DistResult solve_tree_unit_distributed(const Problem& problem,
                                       const DistOptions& options) {
  TS_REQUIRE(problem.unit_height());
  const LayeredPlan plan = build_tree_layered_plan(problem, options.decomp);
  return solve_unit(problem, plan, options);
}

DistResult solve_tree_arbitrary_distributed(const Problem& problem,
                                            const DistOptions& options) {
  const LayeredPlan plan = build_tree_layered_plan(problem, options.decomp);
  return solve_arbitrary(problem, plan, options);
}

DistResult solve_line_unit_distributed(const Problem& problem,
                                       const DistOptions& options) {
  TS_REQUIRE(problem.unit_height());
  const LayeredPlan plan = build_line_layered_plan(problem);
  return solve_unit(problem, plan, options);
}

DistResult solve_line_arbitrary_distributed(const Problem& problem,
                                            const DistOptions& options) {
  const LayeredPlan plan = build_line_layered_plan(problem);
  return solve_arbitrary(problem, plan, options);
}

// ---------------------------------------------------------------------------
// Message-level theorem wrappers.

namespace {

// The lambda a protocol run certifies: the target when the budgets met
// it, the observed slackness otherwise (sound either way; 0 -> no finite
// certificate).
double certified_lambda(const ProtocolRunResult& run, double epsilon) {
  return std::min(treesched::target_lambda(StageMode::kMultiStage, epsilon),
                  run.lambda_observed);
}

// Lemma 3.1/6.1 bound of an executed protocol run: the price factors of
// the rule classes that actually ran *add* (wide/narrow split — OPT <=
// OPT_wide + OPT_narrow), each taken at the run's overall Delta, like
// the modeled solve_arbitrary.
double protocol_ratio_bound(const ProtocolRunResult& run, double epsilon) {
  // Degraded-mode contract (dist/transport.hpp): a run that exhausted
  // the retransmit budget still yields a primal-feasible solution, but
  // its shard-reported lambda is only usable as a certificate when the
  // central replay validated it.  A failed validation never produces a
  // finite (unsound) bound.
  if (run.degraded && !run.certificate_ok)
    return std::numeric_limits<double>::infinity();
  const double lambda = certified_lambda(run, epsilon);
  if (!(lambda > 0.0)) return std::numeric_limits<double>::infinity();
  int delta = 0;
  bool has_unit = false, has_narrow = false;
  for (const ProtocolPass& pass : run.passes) {
    delta = std::max(delta, pass.delta);
    if (pass.rule == RaiseRuleKind::kUnit)
      has_unit = true;
    else
      has_narrow = true;
  }
  double bound = 0.0;
  if (has_unit)
    bound += proven_ratio_bound(RaiseRuleKind::kUnit, delta, lambda);
  if (has_narrow)
    bound += proven_ratio_bound(RaiseRuleKind::kNarrow, delta, lambda);
  return std::max(bound, 1.0);
}

ProtocolDistResult finish_protocol(const Problem& problem,
                                   ProtocolRunResult run, double epsilon,
                                   double spread = 1.0) {
  ProtocolDistResult result;
  result.profit = run.solution.profit(problem);
  result.ratio_bound = protocol_ratio_bound(run, epsilon) * spread;
  result.run = std::move(run);
  return result;
}

}  // namespace

ProtocolDistResult run_tree_unit_protocol(const Problem& problem,
                                          const ProtocolOptions& options,
                                          DecompKind decomp) {
  TS_REQUIRE(problem.unit_height());
  const LayeredPlan plan = build_tree_layered_plan(problem, decomp);
  ProtocolOptions opt = options;
  opt.rule = RaiseRuleKind::kUnit;
  return finish_protocol(problem, run_distributed_protocol(problem, plan, opt),
                         opt.epsilon);
}

ProtocolDistResult run_tree_arbitrary_protocol(const Problem& problem,
                                               const ProtocolOptions& options,
                                               DecompKind decomp) {
  const LayeredPlan plan = build_tree_layered_plan(problem, decomp);
  return finish_protocol(problem,
                         run_height_split_protocol(problem, plan, options),
                         options.epsilon);
}

ProtocolDistResult run_line_unit_protocol(const Problem& problem,
                                          const ProtocolOptions& options) {
  TS_REQUIRE(problem.unit_height());
  const LayeredPlan plan = build_line_layered_plan(problem);
  ProtocolOptions opt = options;
  opt.rule = RaiseRuleKind::kUnit;
  return finish_protocol(problem, run_distributed_protocol(problem, plan, opt),
                         opt.epsilon);
}

ProtocolDistResult run_line_arbitrary_protocol(const Problem& problem,
                                               const ProtocolOptions& options) {
  const LayeredPlan plan = build_line_layered_plan(problem);
  return finish_protocol(problem,
                         run_height_split_protocol(problem, plan, options),
                         options.epsilon);
}

ProtocolDistResult run_nonuniform_protocol(const Problem& problem,
                                           const ProtocolOptions& options,
                                           bool line, DecompKind decomp) {
  ProtocolOptions opt = options;
  if (problem.unit_height()) {
    TS_REQUIRE(problem.min_capacity() >= 1.0 - kEps);
    opt.rule = RaiseRuleKind::kUnit;
  } else {
    TS_REQUIRE(all_instances_narrow(problem));
    opt.rule = RaiseRuleKind::kNarrow;
  }
  const LayeredPlan plan = line ? build_line_layered_plan(problem)
                                : build_tree_layered_plan(problem, decomp);
  return finish_protocol(problem, run_distributed_protocol(problem, plan, opt),
                         opt.epsilon, max_path_capacity_spread(problem));
}

}  // namespace treesched
