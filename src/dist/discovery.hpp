// Distributed conflict discovery via edge-owner rendezvous (paper,
// Section 2 conflict model; the rendezvous pattern is the standard
// neighborhood-learning primitive of distributed scheduling — cf.
// Halldorsson-Mitra's SINR scheduling and Pei-Kumar's maximum link
// scheduling, where processors learn exactly the neighbors they share a
// resource with, never the global graph).
//
// The model: every resource has an owner processor — one per global edge
// and one per demand.  Discovery is two synchronous rounds on the
// Runtime:
//
//   round 1  every member instance posts a registration to the owner of
//            each edge on its path and to its demand's owner;
//   round 2  every owner replies to each registrant with an *interval
//            digest* of its whole bucket (a bucket of one needs no reply
//            — silence encodes an empty neighborhood on that resource).
//
// The digest is the bucket's sorted member indexes compressed to maximal
// [lo, hi] runs of consecutive ids — lossless, so the discovered
// adjacency stays exact.  It includes the registrant itself (dropped on
// expansion), which makes the payload identical for every registrant of
// a bucket.  Replies cost sum_B |B| * 2 * runs(B) doubles instead of the
// old sum_B |B| * (|B| - 1): on line-with-windows problems the
// instances of one demand on an edge occupy a consecutive id range, so
// runs(B) ~ #demands while |B| ~ #demands * window — the quadratic
// per-bucket reply fan-out collapses to near-linear.  On id-scattered
// buckets (random tree demands) the digest degrades gracefully to a
// constant factor over the raw list: 2|B| doubles per reply against the
// old |B|-1, i.e. at most 2|B|/(|B|-1) = 4x at |B|=2 and approaching 2x
// for large buckets.
//
// The union of the replies a member receives is exactly its ConflictGraph
// neighborhood (conflicting = same demand, or overlapping paths), but no
// processor — and no step of the computation — ever holds the global
// graph.  All traffic is charged to the Runtime's round/message/byte
// counters, so protocols built on discovered neighborhoods account for
// what learning the topology actually costs.
//
// Under the kFaulty transport (dist/transport.hpp) the rendezvous runs
// unchanged: registrations and bucket digests ride the checksummed,
// sequence-numbered recovery frames, so any fault plan the retransmit
// budget masks yields bit-identical neighborhoods and counters.  If a
// discovery frame exhausts the budget, the runtime flags the whole run
// degraded — a lost registration/digest silently *shrinks* a discovered
// neighborhood, which downstream can miss conflicts, which is exactly
// why a degraded run's certificate must be re-validated centrally
// (framework/certify.hpp) and its solution re-checked for feasibility by
// the phase-2 prune before being reported.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/prelude.hpp"
#include "dist/runtime.hpp"
#include "model/problem.hpp"

namespace treesched {

// Message tags of the rendezvous rounds (disjoint from the Luby and
// protocol-scheduler tags).
inline constexpr int kTagRegister = 10;  // payload: {}
inline constexpr int kTagBucket = 11;    // payload: {lo1, hi1, lo2, hi2, ...}

// The interval digest of a sorted, duplicate-free member-index bucket:
// maximal runs of consecutive ids as flat {lo, hi} pairs.  Exposed so
// the accounting test can state the reply-byte closed form exactly.
std::vector<double> interval_digest(std::span<const int> sorted_members);

// Node layout of a discovery-capable runtime: the k member processors
// occupy [0, k); the rendezvous owners follow — one node per global
// edge, then one per demand.
struct RendezvousLayout {
  int members = 0;
  int edge_base = 0;    // owner of global edge e = edge_base + e
  int demand_base = 0;  // owner of demand a = demand_base + a
  int total = 0;

  static RendezvousLayout for_problem(const Problem& problem, int members);

  int edge_owner(EdgeId e) const { return edge_base + e; }
  int demand_owner(DemandId a) const { return demand_base + a; }
};

// Conflict neighborhoods discovered by the rendezvous rounds, plus the
// exact communication the discovery charged to the runtime.  The totals
// split exactly into the two legs of the rendezvous: the round-1
// registrations (one header-only message per (member, resource)) and the
// round-2 digest replies — surfacing the split lets the benches and the
// perf-trajectory gate watch the two legs independently (the digest
// optimization only moves reply bytes; a registration regression is a
// different bug).
struct DiscoveredNeighborhoods {
  // neighbors[v]: sorted member indexes conflicting with members[v].
  std::vector<std::vector<int>> neighbors;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  // Breakdown: messages == registration_messages + reply_messages and
  // bytes == registration_bytes + reply_bytes, exactly.
  std::int64_t registration_messages = 0;
  std::int64_t registration_bytes = 0;
  std::int64_t reply_messages = 0;
  std::int64_t reply_bytes = 0;

  std::int64_t num_edges() const;
  int max_degree() const;
};

// Runs the 2-round rendezvous on `rt`, which must have been sized with at
// least RendezvousLayout::for_problem(problem, members.size()).total
// nodes so the owner nodes exist.  `members` are distinct instances of
// `problem`; member v is runtime node v.  On return the member-member
// channels implied by the discovered adjacency are open on `rt` (knowing
// a neighbor's id is knowing its address), so a conflict protocol can run
// on the neighborhoods immediately.
DiscoveredNeighborhoods discover_conflicts(const Problem& problem,
                                           std::span<const InstanceId> members,
                                           Runtime& rt);

}  // namespace treesched
