#include "dist/runtime.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace treesched {

Runtime::Runtime(int num_nodes, TransportKind transport,
                 const FaultPlan* faults)
    : num_nodes_(num_nodes),
      adjacency_(static_cast<std::size_t>(num_nodes)),
      transport_(make_transport(transport, num_nodes, faults)) {
  TS_REQUIRE(num_nodes > 0);
  if (obs::tracing_enabled()) round_mark_ns_ = obs::trace_now_ns();
}

void Runtime::connect(int a, int b) {
  TS_REQUIRE(valid(a) && valid(b) && a != b);
  auto& na = adjacency_[static_cast<std::size_t>(a)];
  const auto it = std::lower_bound(na.begin(), na.end(), b);
  if (it != na.end() && *it == b) return;  // idempotent
  na.insert(it, b);
  auto& nb = adjacency_[static_cast<std::size_t>(b)];
  nb.insert(std::lower_bound(nb.begin(), nb.end(), a), a);
}

bool Runtime::connected(int a, int b) const {
  if (!valid(a) || !valid(b)) return false;
  const auto& na = adjacency_[static_cast<std::size_t>(a)];
  return std::binary_search(na.begin(), na.end(), b);
}

const std::vector<int>& Runtime::channels(int node) const {
  TS_REQUIRE(valid(node));
  return adjacency_[static_cast<std::size_t>(node)];
}

void Runtime::post(Message m) {
  TS_REQUIRE(valid(m.from) && valid(m.to));
  TS_REQUIRE(connected(m.from, m.to));
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  // 16-byte header (from, to, tag, length) + 8 bytes per payload double —
  // the exact size the serialized codec produces.
  const std::int64_t bytes = message_wire_bytes(m);
  bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  if (obs::tracing_enabled()) note_post(m.tag, bytes);
  transport_->post(std::move(m));
}

void Runtime::step() {
  if (obs::tracing_enabled()) note_round();
  ++round_;
  transport_->flush();
}

void Runtime::note_post(int tag, [[maybe_unused]] std::int64_t bytes) {
  TRACE_HIST("wire.message_bytes", bytes);
  // Per-tag counters via the macros' cached handles: the registry map
  // is consulted once per (site, tag), not once per message.  Tag
  // values: see protocol_scheduler.cpp / luby_mis.cpp / discovery.cpp.
  switch (tag) {
    case 0:
      TRACE_COUNTER("wire.messages.luby_draw", 1);
      TRACE_COUNTER("wire.bytes.luby_draw", bytes);
      break;
    case 1:
      TRACE_COUNTER("wire.messages.luby_winner", 1);
      TRACE_COUNTER("wire.bytes.luby_winner", bytes);
      break;
    case 2:
      TRACE_COUNTER("wire.messages.raise", 1);
      TRACE_COUNTER("wire.bytes.raise", bytes);
      break;
    case 3:
      TRACE_COUNTER("wire.messages.keep", 1);
      TRACE_COUNTER("wire.bytes.keep", bytes);
      break;
    case 10:
      TRACE_COUNTER("wire.messages.register", 1);
      TRACE_COUNTER("wire.bytes.register", bytes);
      break;
    case 11:
      TRACE_COUNTER("wire.messages.bucket", 1);
      TRACE_COUNTER("wire.bytes.bucket", bytes);
      break;
    default:
      TRACE_COUNTER("wire.messages.other", 1);
      TRACE_COUNTER("wire.bytes.other", bytes);
      break;
  }
}

void Runtime::note_round() {
  // Close the span of the round that just elapsed (mark -> now) with the
  // message/byte deltas it produced, then re-arm for the next one.  A
  // mark of -1 means tracing was enabled mid-run: just arm.  The span
  // name carries the backend ("round", "round.serialized", ...), so a
  // trace shows which wire the rounds ran on.
  const std::int64_t now = obs::trace_now_ns();
  if (round_mark_ns_ >= 0) {
    obs::record_complete_span("wire", transport_->round_span_name(),
                              round_mark_ns_, now - round_mark_ns_,
                              "messages", messages_sent() - mark_messages_,
                              "bytes", bytes_sent() - mark_bytes_);
  }
  round_mark_ns_ = now;
  mark_messages_ = messages_sent();
  mark_bytes_ = bytes_sent();
}

std::vector<Message> Runtime::drain(int node) {
  TS_REQUIRE(valid(node));
  std::vector<Message> out;
  if (!free_list_.empty()) {
    out = std::move(free_list_.back());
    free_list_.pop_back();
  }
  transport_->drain(node, out);
  return out;
}

void Runtime::recycle(std::vector<Message> inbox) {
  // Keep the vector as-is (stale messages included): the backends
  // overwrite recycled slots in place, so clearing here would throw the
  // payload capacity away.
  free_list_.push_back(std::move(inbox));
}

}  // namespace treesched
