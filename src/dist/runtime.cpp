#include "dist/runtime.hpp"

#include <algorithm>

namespace treesched {

Runtime::Runtime(int num_nodes)
    : adjacency_(static_cast<std::size_t>(num_nodes)),
      inbox_(static_cast<std::size_t>(num_nodes)) {
  TS_REQUIRE(num_nodes > 0);
}

void Runtime::connect(int a, int b) {
  TS_REQUIRE(valid(a) && valid(b) && a != b);
  auto& na = adjacency_[static_cast<std::size_t>(a)];
  const auto it = std::lower_bound(na.begin(), na.end(), b);
  if (it != na.end() && *it == b) return;  // idempotent
  na.insert(it, b);
  auto& nb = adjacency_[static_cast<std::size_t>(b)];
  nb.insert(std::lower_bound(nb.begin(), nb.end(), a), a);
}

bool Runtime::connected(int a, int b) const {
  if (!valid(a) || !valid(b)) return false;
  const auto& na = adjacency_[static_cast<std::size_t>(a)];
  return std::binary_search(na.begin(), na.end(), b);
}

const std::vector<int>& Runtime::channels(int node) const {
  TS_REQUIRE(valid(node));
  return adjacency_[static_cast<std::size_t>(node)];
}

void Runtime::post(Message m) {
  TS_REQUIRE(valid(m.from) && valid(m.to));
  TS_REQUIRE(connected(m.from, m.to));
  ++messages_sent_;
  // 16-byte header (from, to, tag, length) + 8 bytes per payload double.
  bytes_sent_ += 16 + 8 * static_cast<std::int64_t>(m.data.size());
  in_flight_.push_back(std::move(m));
}

void Runtime::step() {
  ++round_;
  for (Message& m : in_flight_)
    inbox_[static_cast<std::size_t>(m.to)].push_back(std::move(m));
  in_flight_.clear();
}

std::vector<Message> Runtime::drain(int node) {
  TS_REQUIRE(valid(node));
  std::vector<Message> out;
  out.swap(inbox_[static_cast<std::size_t>(node)]);
  return out;
}

}  // namespace treesched
