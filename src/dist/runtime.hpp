// Deterministic synchronous message-passing runtime (paper, Section 1:
// the standard synchronous model — computation proceeds in rounds, and a
// message sent in round t is readable at round t+1, never earlier).
//
// The runtime hosts n nodes connected by symmetric, idempotent channels
// (connect(a,b) == connect(b,a); reconnecting is a no-op).  Protocols
// post() messages during a round; step() advances the round boundary and
// delivers everything posted since the previous boundary into the
// receivers' inboxes, which drain() empties.  Nothing is ever delivered
// mid-round, so a protocol on this runtime cannot accidentally exploit
// information it would not have in the real synchronous model.
//
// The runtime is also the accounting surface for the paper's complexity
// claims: round(), messages_sent() and bytes_sent() are the quantities
// Theorems 5.3/6.3/7.1/7.2 bound.  A message is charged a 16-byte header
// (from, to, tag, length) plus 8 bytes per double of payload — the O(M)
// bits per message the paper assumes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/prelude.hpp"

namespace treesched {

// One protocol message.  `data` is the payload; the paper's messages
// carry O(1) demand records, so a handful of doubles suffices.
struct Message {
  int from = -1;
  int to = -1;
  int tag = 0;
  std::vector<double> data;
};

class Runtime {
 public:
  explicit Runtime(int num_nodes);

  // Opens the symmetric channel {a, b}.  Idempotent; a != b.
  void connect(int a, int b);
  bool connected(int a, int b) const;

  // Sorted neighbor list of `node` (one entry per channel).
  const std::vector<int>& channels(int node) const;

  // Queues `m` for delivery at the next round boundary.  Requires an open
  // channel between m.from and m.to.
  void post(Message m);

  // Advances the round boundary: every message posted since the previous
  // step() becomes visible in its receiver's inbox.
  void step();

  // Removes and returns the inbox of `node` (messages delivered by past
  // step() calls, in posting order).
  std::vector<Message> drain(int node);

  int num_nodes() const { return static_cast<int>(inbox_.size()); }
  int round() const { return round_; }
  std::int64_t messages_sent() const { return messages_sent_; }
  std::int64_t bytes_sent() const { return bytes_sent_; }

 private:
  bool valid(int node) const { return node >= 0 && node < num_nodes(); }
  // Flight-recorder hooks (obs): per-tag message/byte counters and a
  // per-round span carrying the round's message/byte deltas.  Called
  // only while tracing is enabled; pure observation — no field of the
  // complexity accounting depends on them.
  void note_post(int tag, std::int64_t bytes);
  void note_round();

  std::vector<std::vector<int>> adjacency_;   // sorted neighbor lists
  std::vector<Message> in_flight_;            // posted, not yet delivered
  std::vector<std::vector<Message>> inbox_;   // delivered, not yet drained
  int round_ = 0;
  std::int64_t messages_sent_ = 0;
  std::int64_t bytes_sent_ = 0;
  // Marks for the per-round trace spans: where the current round began
  // and the counter values at that point (-1 = tracing was off at the
  // last boundary, so the next boundary only re-arms).
  std::int64_t round_mark_ns_ = -1;
  std::int64_t mark_messages_ = 0;
  std::int64_t mark_bytes_ = 0;
};

}  // namespace treesched
