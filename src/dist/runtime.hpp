// Deterministic synchronous message-passing runtime (paper, Section 1:
// the standard synchronous model — computation proceeds in rounds, and a
// message sent in round t is readable at round t+1, never earlier).
//
// The runtime hosts n nodes connected by symmetric, idempotent channels
// (connect(a,b) == connect(b,a); reconnecting is a no-op).  Protocols
// post() messages during a round; step() advances the round boundary and
// delivers everything posted since the previous boundary into the
// receivers' inboxes, which drain() empties.  Nothing is ever delivered
// mid-round, so a protocol on this runtime cannot accidentally exploit
// information it would not have in the real synchronous model.
//
// The runtime is also the accounting surface for the paper's complexity
// claims: round(), messages_sent() and bytes_sent() are the quantities
// Theorems 5.3/6.3/7.1/7.2 bound.  A message is charged a 16-byte header
// (from, to, tag, length) plus 8 bytes per double of payload — the O(M)
// bits per message the paper assumes.
//
// How messages actually move is the pluggable part: the Runtime is a
// thin round-discipline shell (channels, round barrier, accounting,
// trace hooks) over a Transport backend (dist/transport.hpp).  The
// default in-proc backend shuffles vectors; the serialized backends
// put real bytes through the message codec, making the byte counters
// serialization facts instead of a model.  Every backend is held to
// bit-for-bit identical counters and results by the transport-axis
// parity tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/prelude.hpp"
#include "dist/transport.hpp"

namespace treesched {

class Runtime {
 public:
  // `transport` picks the backend; kDefault resolves through the
  // TREESCHED_TRANSPORT environment hook (unset -> in-proc).  A
  // non-null `faults` with a non-empty plan wraps the backend in the
  // kFaulty recovery layer (see make_transport for the env interplay).
  explicit Runtime(int num_nodes,
                   TransportKind transport = TransportKind::kDefault,
                   const FaultPlan* faults = nullptr);

  // Opens the symmetric channel {a, b}.  Idempotent; a != b.
  void connect(int a, int b);
  bool connected(int a, int b) const;

  // Sorted neighbor list of `node` (one entry per channel).
  const std::vector<int>& channels(int node) const;

  // Queues `m` for delivery at the next round boundary.  Requires an open
  // channel between m.from and m.to.  Safe to call from concurrent
  // threads on the kThreadedSerialized backend (between boundaries, with
  // no concurrent connect); single-threaded otherwise.
  void post(Message m);

  // Advances the round boundary: every message posted since the previous
  // step() becomes visible in its receiver's inbox.  Driver-side only.
  void step();

  // Removes and returns the inbox of `node` (messages delivered by past
  // step() calls, in posting order).  The returned vector comes from the
  // free list fed by recycle(), so a drain/recycle loop is steady-state
  // allocation-free on the serialized backends.
  std::vector<Message> drain(int node);

  // Returns a drained inbox to the free list for reuse by a later
  // drain().  Optional — dropping the vector is always correct — but the
  // hot loops (Luby rounds, raise propagation) recycle so their per-round
  // allocation churn is zero once buffers have grown to size.
  void recycle(std::vector<Message> inbox);

  int num_nodes() const { return num_nodes_; }
  int round() const { return round_; }
  std::int64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  std::int64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

  // The resolved backend, and its codec-hit counters (zero on the
  // in-proc path; == messages_sent on the serialized paths once every
  // inbox is drained).
  TransportKind transport_kind() const { return transport_->kind(); }
  std::int64_t codec_encoded() const { return transport_->codec_encoded(); }
  std::int64_t codec_decoded() const { return transport_->codec_decoded(); }

  // Fault-injection observability (kFaulty backend only; nullptr /
  // false elsewhere).  Note the logical counters above are charged at
  // post(), *before* the transport touches the message — so
  // messages_sent/bytes_sent are fault-independent by construction,
  // which is half of the bit-identical-under-masking invariant.
  const FaultStats* fault_stats() const { return transport_->fault_stats(); }
  bool degraded() const { return transport_->degraded(); }

 private:
  bool valid(int node) const { return node >= 0 && node < num_nodes(); }
  // Flight-recorder hooks (obs): per-tag message/byte counters and a
  // per-round span carrying the round's message/byte deltas.  Called
  // only while tracing is enabled; pure observation — no field of the
  // complexity accounting depends on them.
  void note_post(int tag, std::int64_t bytes);
  void note_round();

  int num_nodes_ = 0;
  std::vector<std::vector<int>> adjacency_;   // sorted neighbor lists
  std::unique_ptr<Transport> transport_;      // the message movement
  std::vector<std::vector<Message>> free_list_;  // recycled inboxes
  int round_ = 0;
  // Relaxed atomics so concurrent posts on the threaded backend count
  // correctly; the totals are deterministic on every backend.
  std::atomic<std::int64_t> messages_sent_{0};
  std::atomic<std::int64_t> bytes_sent_{0};
  // Marks for the per-round trace spans: where the current round began
  // and the counter values at that point (-1 = tracing was off at the
  // last boundary, so the next boundary only re-arms).
  std::int64_t round_mark_ns_ = -1;
  std::int64_t mark_messages_ = 0;
  std::int64_t mark_bytes_ = 0;
};

}  // namespace treesched
