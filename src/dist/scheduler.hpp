// The four distributed schedulers of the paper, as modeled runs of the
// two-phase engine with the round-counting Luby oracle:
//
//   solve_tree_unit_distributed       Theorem 5.3  trees, unit heights,
//                                     bound (Delta+1)/lambda  <= 7+eps
//   solve_tree_arbitrary_distributed  Theorem 6.3  trees, arbitrary
//                                     heights, wide/narrow split, bound
//                                     ((Delta+1) + (1+2 Delta^2))/lambda
//                                     <= 80+eps
//   solve_line_unit_distributed       Theorem 7.1  lines, unit, <= 4+eps
//   solve_line_arbitrary_distributed  Theorem 7.2  lines, arbitrary,
//                                     <= 23+eps
//
// "Modeled" means the dual state is kept centrally while every
// communication-relevant event is accounted exactly as the protocol would
// spend it: each MIS costs the Luby oracle's 2 rounds per iteration, each
// step one extra dual-propagation round, and (optionally) each raise one
// notification message per conflicting neighbor.  The message-level
// counterpart that actually puts these bits on the wire lives in
// dist/protocol_scheduler.hpp; the modeled form is what benchmarks and
// large-scale runs use.
//
// The reported ratio_bound uses the *observed* Delta of the run, which
// can be smaller than the theorem's worst case (ideal decomposition:
// Delta <= 6; lines: Delta <= 3) — the bound is then better, never worse.
#pragma once

#include <cstdint>

#include "decomp/layered.hpp"
#include "decomp/tree_decomposition.hpp"
#include "framework/two_phase.hpp"
#include "model/problem.hpp"
#include "model/solution.hpp"

namespace treesched {

struct DistOptions {
  double epsilon = 0.1;  // target slackness 1-eps (multi-stage mode)
  std::uint64_t seed = 1;
  // Tree decomposition backing the layered plan (tree solvers only).
  DecompKind decomp = DecompKind::kIdeal;
  // kMultiStage = this paper; kSingleStagePS = Panconesi-Sozio baseline
  // with lambda = 1/(5+eps).
  StageMode stage_mode = StageMode::kMultiStage;
  // Lockstep stage schedule (Section 5 "Distributed Implementation").
  bool lockstep = false;
  // Count per-raise notification messages in the stats.
  bool count_messages = false;
  // Runtime verification of the interference property (quadratic; tests).
  bool check_interference = false;
};

struct DistResult {
  Solution solution;
  SolveStats stats;
  double profit = 0.0;
  double ratio_bound = 0.0;  // proven approximation factor of this run
};

// Lemma 3.1 / Lemma 6.1 approximation bound for a run with critical-set
// size `delta` and slackness `lambda`: price_factor(rule, delta) / lambda.
double proven_ratio_bound(RaiseRuleKind rule, int delta, double lambda);

// Theorem 5.3 (requires unit heights).
DistResult solve_tree_unit_distributed(const Problem& problem,
                                       const DistOptions& options = {});

// Theorem 6.3 (any heights; wide/narrow split internally).
DistResult solve_tree_arbitrary_distributed(const Problem& problem,
                                            const DistOptions& options = {});

// Theorem 7.1 (requires unit heights; line layered plan, Delta <= 3).
DistResult solve_line_unit_distributed(const Problem& problem,
                                       const DistOptions& options = {});

// Theorem 7.2 (any heights; line layered plan).
DistResult solve_line_arbitrary_distributed(const Problem& problem,
                                            const DistOptions& options = {});

}  // namespace treesched
