// The four distributed schedulers of the paper, as modeled runs of the
// two-phase engine with the round-counting Luby oracle:
//
//   solve_tree_unit_distributed       Theorem 5.3  trees, unit heights,
//                                     bound (Delta+1)/lambda  <= 7+eps
//   solve_tree_arbitrary_distributed  Theorem 6.3  trees, arbitrary
//                                     heights, wide/narrow split, bound
//                                     ((Delta+1) + (1+2 Delta^2))/lambda
//                                     <= 80+eps
//   solve_line_unit_distributed       Theorem 7.1  lines, unit, <= 4+eps
//   solve_line_arbitrary_distributed  Theorem 7.2  lines, arbitrary,
//                                     <= 23+eps
//
// "Modeled" means the dual state is kept centrally while every
// communication-relevant event is accounted exactly as the protocol would
// spend it: each MIS costs the Luby oracle's 2 rounds per iteration, each
// step one extra dual-propagation round, and (optionally) each raise one
// notification message per conflicting neighbor.  The message-level
// counterpart that actually puts these bits on the wire lives in
// dist/protocol_scheduler.hpp; the modeled form is what benchmarks and
// large-scale runs use.
//
// The reported ratio_bound uses the *observed* Delta of the run, which
// can be smaller than the theorem's worst case (ideal decomposition:
// Delta <= 6; lines: Delta <= 3) — the bound is then better, never worse.
// The *message-level* counterparts (run_*_protocol below) execute the
// same theorems as real messages on the synchronous runtime via
// dist/protocol_scheduler.hpp — rendezvous discovery, sharded duals,
// fixed schedules — and report the same proven_ratio_bound.  The
// protocol parity suite holds each wrapper to exact (==) agreement with
// its modeled twin driven by the ProtocolLubyMis mirror oracle.
#pragma once

#include <cstdint>

#include "decomp/layered.hpp"
#include "decomp/tree_decomposition.hpp"
#include "dist/protocol_scheduler.hpp"
#include "framework/two_phase.hpp"
#include "model/problem.hpp"
#include "model/solution.hpp"

namespace treesched {

struct DistOptions {
  double epsilon = 0.1;  // target slackness 1-eps (multi-stage mode)
  std::uint64_t seed = 1;
  // Tree decomposition backing the layered plan (tree solvers only).
  DecompKind decomp = DecompKind::kIdeal;
  // kMultiStage = this paper; kSingleStagePS = Panconesi-Sozio baseline
  // with lambda = 1/(5+eps).
  StageMode stage_mode = StageMode::kMultiStage;
  // Lockstep stage schedule (Section 5 "Distributed Implementation").
  bool lockstep = false;
  // Count per-raise notification messages in the stats.
  bool count_messages = false;
  // Runtime verification of the interference property (quadratic; tests).
  bool check_interference = false;
};

struct DistResult {
  Solution solution;
  SolveStats stats;
  double profit = 0.0;
  double ratio_bound = 0.0;  // proven approximation factor of this run
};

// Lemma 3.1 / Lemma 6.1 approximation bound for a run with critical-set
// size `delta` and slackness `lambda`: price_factor(rule, delta) / lambda.
double proven_ratio_bound(RaiseRuleKind rule, int delta, double lambda);

// Theorem 5.3 (requires unit heights).
DistResult solve_tree_unit_distributed(const Problem& problem,
                                       const DistOptions& options = {});

// Theorem 6.3 (any heights; wide/narrow split internally).
DistResult solve_tree_arbitrary_distributed(const Problem& problem,
                                            const DistOptions& options = {});

// Theorem 7.1 (requires unit heights; line layered plan, Delta <= 3).
DistResult solve_line_unit_distributed(const Problem& problem,
                                       const DistOptions& options = {});

// Theorem 7.2 (any heights; line layered plan).
DistResult solve_line_arbitrary_distributed(const Problem& problem,
                                            const DistOptions& options = {});

// Message-level theorem wrappers ---------------------------------------------
//
// Each runs the corresponding theorem as a real protocol (bits on the
// wire) and reports the ratio bound the run certifies.  The bound uses
// lambda = min(1 - eps, observed lambda): when the fixed budgets achieve
// the target slackness (schedule_ok, the w.h.p. case) this is exactly
// the modeled wrappers' bound; when they fall short, the observed
// slackness still certifies a (weaker, but sound) bound — and an
// observed lambda of 0 yields +infinity, never a false certificate.

struct ProtocolDistResult {
  ProtocolRunResult run;
  double profit = 0.0;
  double ratio_bound = 0.0;  // proven approximation factor of this run
};

// Theorem 5.3, message-level (requires unit heights).
ProtocolDistResult run_tree_unit_protocol(const Problem& problem,
                                          const ProtocolOptions& options = {},
                                          DecompKind decomp = DecompKind::kIdeal);

// Theorem 6.3, message-level (any heights; two-pass wide/narrow split).
ProtocolDistResult run_tree_arbitrary_protocol(
    const Problem& problem, const ProtocolOptions& options = {},
    DecompKind decomp = DecompKind::kIdeal);

// Theorem 7.1, message-level (requires unit heights; line plan).
ProtocolDistResult run_line_unit_protocol(const Problem& problem,
                                          const ProtocolOptions& options = {});

// Theorem 7.2, message-level (any heights; line plan, two-pass split).
ProtocolDistResult run_line_arbitrary_protocol(
    const Problem& problem, const ProtocolOptions& options = {});

// Non-uniform bandwidths, message-level (DESIGN.md Sec. 6 / the IPDPS
// 2013 extension): kUnit for unit-height problems, kNarrow when every
// instance is narrow (checked); bound scaled by the path capacity
// spread rho, mirroring solve_nonuniform_{unit,narrow}.
ProtocolDistResult run_nonuniform_protocol(
    const Problem& problem, const ProtocolOptions& options = {},
    bool line = false, DecompKind decomp = DecompKind::kIdeal);

}  // namespace treesched
