#include "dist/discovery.hpp"

#include <algorithm>

namespace treesched {

RendezvousLayout RendezvousLayout::for_problem(const Problem& problem,
                                               int members) {
  TS_REQUIRE(problem.finalized());
  TS_REQUIRE(members >= 0);
  RendezvousLayout layout;
  layout.members = members;
  layout.edge_base = members;
  layout.demand_base = members + problem.num_global_edges();
  layout.total = layout.demand_base + problem.num_demands();
  return layout;
}

std::int64_t DiscoveredNeighborhoods::num_edges() const {
  std::int64_t endpoints = 0;
  for (const auto& adj : neighbors)
    endpoints += static_cast<std::int64_t>(adj.size());
  return endpoints / 2;  // every conflict counted from both ends
}

int DiscoveredNeighborhoods::max_degree() const {
  std::size_t degree = 0;
  for (const auto& adj : neighbors) degree = std::max(degree, adj.size());
  return static_cast<int>(degree);
}

DiscoveredNeighborhoods discover_conflicts(const Problem& problem,
                                           std::span<const InstanceId> members,
                                           Runtime& rt) {
  const int k = static_cast<int>(members.size());
  const RendezvousLayout layout = RendezvousLayout::for_problem(problem, k);
  TS_REQUIRE(rt.num_nodes() >= layout.total);

  DiscoveredNeighborhoods result;
  result.neighbors.resize(members.size());
  if (k == 0) return result;

  const int rounds_before = rt.round();
  const std::int64_t messages_before = rt.messages_sent();
  const std::int64_t bytes_before = rt.bytes_sent();

  // Round 1: every member registers with the owner of each edge on its
  // path and with its demand's owner.  Opening the member-owner channel
  // is part of the model (a processor knows the owners of its own
  // resources); the registration message is what gets charged.
  std::vector<int> owners;
  for (int v = 0; v < k; ++v) {
    const DemandInstance& inst =
        problem.instance(members[static_cast<std::size_t>(v)]);
    const int demand_owner = layout.demand_owner(inst.demand);
    rt.connect(v, demand_owner);
    owners.push_back(demand_owner);
    rt.post(Message{v, demand_owner, kTagRegister, {}});
    for (EdgeId e : inst.edges) {
      const int edge_owner = layout.edge_owner(e);
      rt.connect(v, edge_owner);
      owners.push_back(edge_owner);
      rt.post(Message{v, edge_owner, kTagRegister, {}});
    }
  }
  rt.step();

  // Round 2: every owner replies to each registrant with the rest of its
  // bucket.  A singleton bucket needs no reply: in the fixed 2-round
  // schedule, silence encodes "no conflicts on this resource".
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  for (int owner : owners) {
    const std::vector<Message> inbox = rt.drain(owner);
    if (inbox.size() < 2) continue;
    for (const Message& registrant : inbox) {
      std::vector<double> payload;
      payload.reserve(inbox.size() - 1);
      for (const Message& other : inbox)
        if (other.from != registrant.from)
          payload.push_back(static_cast<double>(other.from));
      rt.post(Message{owner, registrant.from, kTagBucket,
                      std::move(payload)});
    }
  }
  rt.step();

  // Members union the replies into their conflict neighborhoods and open
  // the member-member channels the adjacency implies.
  for (int v = 0; v < k; ++v) {
    std::vector<int>& adj = result.neighbors[static_cast<std::size_t>(v)];
    for (const Message& m : rt.drain(v)) {
      TS_REQUIRE(m.tag == kTagBucket);
      for (double id : m.data) adj.push_back(static_cast<int>(id));
    }
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    for (int u : adj)
      if (u > v) rt.connect(v, u);
  }

  result.rounds = rt.round() - rounds_before;
  result.messages = rt.messages_sent() - messages_before;
  result.bytes = rt.bytes_sent() - bytes_before;
  return result;
}

}  // namespace treesched
