#include "dist/discovery.hpp"

#include <algorithm>

namespace treesched {

std::vector<double> interval_digest(std::span<const int> sorted_members) {
  std::vector<double> digest;
  std::size_t k = 0;
  while (k < sorted_members.size()) {
    const int lo = sorted_members[k];
    int hi = lo;
    while (k + 1 < sorted_members.size() &&
           sorted_members[k + 1] == hi + 1) {
      ++k;
      ++hi;
    }
    digest.push_back(static_cast<double>(lo));
    digest.push_back(static_cast<double>(hi));
    ++k;
  }
  return digest;
}

RendezvousLayout RendezvousLayout::for_problem(const Problem& problem,
                                               int members) {
  TS_REQUIRE(problem.finalized());
  TS_REQUIRE(members >= 0);
  RendezvousLayout layout;
  layout.members = members;
  layout.edge_base = members;
  layout.demand_base = members + problem.num_global_edges();
  layout.total = layout.demand_base + problem.num_demands();
  return layout;
}

std::int64_t DiscoveredNeighborhoods::num_edges() const {
  std::int64_t endpoints = 0;
  for (const auto& adj : neighbors)
    endpoints += static_cast<std::int64_t>(adj.size());
  return endpoints / 2;  // every conflict counted from both ends
}

int DiscoveredNeighborhoods::max_degree() const {
  std::size_t degree = 0;
  for (const auto& adj : neighbors) degree = std::max(degree, adj.size());
  return static_cast<int>(degree);
}

DiscoveredNeighborhoods discover_conflicts(const Problem& problem,
                                           std::span<const InstanceId> members,
                                           Runtime& rt) {
  const int k = static_cast<int>(members.size());
  const RendezvousLayout layout = RendezvousLayout::for_problem(problem, k);
  TS_REQUIRE(rt.num_nodes() >= layout.total);

  DiscoveredNeighborhoods result;
  result.neighbors.resize(members.size());
  if (k == 0) return result;

  const int rounds_before = rt.round();
  const std::int64_t messages_before = rt.messages_sent();
  const std::int64_t bytes_before = rt.bytes_sent();

  // Round 1: every member registers with the owner of each edge on its
  // path and with its demand's owner.  Opening the member-owner channel
  // is part of the model (a processor knows the owners of its own
  // resources); the registration message is what gets charged.
  std::vector<int> owners;
  for (int v = 0; v < k; ++v) {
    const DemandInstance& inst =
        problem.instance(members[static_cast<std::size_t>(v)]);
    const int demand_owner = layout.demand_owner(inst.demand);
    rt.connect(v, demand_owner);
    owners.push_back(demand_owner);
    rt.post(Message{v, demand_owner, kTagRegister, {}});
    for (EdgeId e : inst.edges) {
      const int edge_owner = layout.edge_owner(e);
      rt.connect(v, edge_owner);
      owners.push_back(edge_owner);
      rt.post(Message{v, edge_owner, kTagRegister, {}});
    }
  }
  result.registration_messages = rt.messages_sent() - messages_before;
  result.registration_bytes = rt.bytes_sent() - bytes_before;
  rt.step();

  // Round 2: every owner replies to each registrant with the interval
  // digest of its whole bucket — sorted member indexes compressed to
  // maximal [lo, hi] runs, the registrant included (it drops itself on
  // expansion).  One digest per bucket, identical for every registrant,
  // sum |B| * 2 * runs(B) doubles on the wire instead of the quadratic
  // sum |B| * (|B| - 1) raw lists.  A singleton bucket needs no reply:
  // in the fixed 2-round schedule, silence encodes "no conflicts on this
  // resource".
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  std::vector<int> bucket;
  for (int owner : owners) {
    std::vector<Message> inbox = rt.drain(owner);
    if (inbox.size() >= 2) {
      bucket.clear();
      for (const Message& registrant : inbox)
        bucket.push_back(registrant.from);
      std::sort(bucket.begin(), bucket.end());
      const std::vector<double> digest =
          interval_digest({bucket.data(), bucket.size()});
      for (const Message& registrant : inbox)
        rt.post(Message{owner, registrant.from, kTagBucket, digest});
    }
    rt.recycle(std::move(inbox));
  }
  rt.step();

  // Members expand the digests, drop themselves, and union the replies
  // into their conflict neighborhoods, opening the member-member channels
  // the adjacency implies.
  for (int v = 0; v < k; ++v) {
    std::vector<int>& adj = result.neighbors[static_cast<std::size_t>(v)];
    std::vector<Message> inbox = rt.drain(v);
    for (const Message& m : inbox) {
      TS_REQUIRE(m.tag == kTagBucket);
      TS_REQUIRE(m.data.size() % 2 == 0);
      for (std::size_t r = 0; r + 1 < m.data.size(); r += 2) {
        const int lo = static_cast<int>(m.data[r]);
        const int hi = static_cast<int>(m.data[r + 1]);
        for (int u = lo; u <= hi; ++u)
          if (u != v) adj.push_back(u);
      }
    }
    rt.recycle(std::move(inbox));
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    // Every member opens every channel its *own* neighborhood implies
    // (connect is symmetric and idempotent, so fault-free this equals
    // the old lower-id-opens rule).  Under a lossy transport the two
    // sides can discover asymmetrically — a lost digest leaves one side
    // blind — and each side must still be able to message the neighbors
    // it *did* learn.
    for (int u : adj) rt.connect(v, u);
  }

  result.rounds = rt.round() - rounds_before;
  result.messages = rt.messages_sent() - messages_before;
  result.bytes = rt.bytes_sent() - bytes_before;
  result.reply_messages = result.messages - result.registration_messages;
  result.reply_bytes = result.bytes - result.registration_bytes;
  return result;
}

}  // namespace treesched
