#include "dist/protocol_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "dist/discovery.hpp"
#include "dist/luby_mis.hpp"
#include "dist/runtime.hpp"
#include "framework/dual_shard.hpp"
#include "framework/raise_rule.hpp"
#include "framework/two_phase.hpp"

namespace treesched {

namespace {

// Message tags beyond the Luby rounds (kLubyTagDraw/kLubyTagWinner) and
// the rendezvous rounds (kTagRegister/kTagBucket).
constexpr int kTagRaise = 2;  // payload: encode_raise() wire format
constexpr int kTagKeep = 3;   // phase 2: {}

}  // namespace

ProtocolRunResult run_distributed_protocol(const Problem& problem,
                                           const LayeredPlan& plan,
                                           const ProtocolOptions& options) {
  TS_REQUIRE(problem.finalized());
  TS_REQUIRE(plan.group.size() ==
             static_cast<std::size_t>(problem.num_instances()));
  TS_REQUIRE(options.epsilon > 0.0 && options.epsilon < 1.0);

  const int n = problem.num_instances();
  ProtocolRunResult result;

  // One runtime node per instance plus the rendezvous owner nodes.  The
  // conflict neighborhoods are *discovered*, not built: the 2-round
  // edge-owner rendezvous replaces the global ConflictGraph and is
  // charged to the same counters as every other protocol round.
  std::vector<InstanceId> all(static_cast<std::size_t>(n));
  for (InstanceId i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
  const RendezvousLayout layout = RendezvousLayout::for_problem(problem, n);
  Runtime rt(std::max(layout.total, 1));
  const DiscoveredNeighborhoods hood =
      discover_conflicts(problem, {all.data(), all.size()}, rt);
  result.discovery_rounds = hood.rounds;
  result.discovery_messages = hood.messages;
  result.discovery_bytes = hood.bytes;
  const std::span<const std::vector<int>> neighbors{hood.neighbors.data(),
                                                    hood.neighbors.size()};

  // The fixed schedule, derived from globally known quantities only.
  result.epochs = plan.num_groups;
  const double xi =
      RaiseRule::default_xi(RaiseRuleKind::kUnit, plan.delta, 1.0);
  result.stages_per_epoch = std::max(
      1, static_cast<int>(std::ceil(std::log(options.epsilon) / std::log(xi))));
  result.steps_per_stage = lockstep_step_budget(problem, options.lockstep_slack);
  result.luby_budget =
      options.luby_budget > 0
          ? options.luby_budget
          : 2 * static_cast<int>(std::ceil(std::log2(
                    static_cast<double>(std::max(n, 2))))) +
                2;

  // Per-processor private random streams.
  SplitMix64 expand(options.seed);
  std::vector<Rng> node_rng;
  node_rng.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) node_rng.emplace_back(expand.next());

  // Per-processor dual shards: processor i stores alpha of its demand and
  // beta of its own path edges, nothing else.
  const RaiseRule rule(RaiseRuleKind::kUnit, problem);
  std::vector<DualShard> shard;
  shard.reserve(static_cast<std::size_t>(n));
  for (InstanceId i = 0; i < n; ++i) {
    const DemandInstance& inst = problem.instance(i);
    shard.emplace_back(inst.demand,
                       std::span<const EdgeId>{inst.edges.data(),
                                               inst.edges.size()});
  }

  const auto unsatisfied = [&](InstanceId i, double target) {
    // A purely local test: the shard holds every variable of i's
    // constraint, kept current by the applied raise propagations.
    const DemandInstance& inst = problem.instance(i);
    return shard[static_cast<std::size_t>(i)].lhs(rule.beta_coeff(inst)) <
           target * inst.profit - kEps * inst.profit;
  };
  // Drains every member inbox, applying raise propagations to the local
  // shards (the one message type that may be in flight at step ends).
  const auto drain_and_apply = [&] {
    for (int v = 0; v < n; ++v) {
      for (const Message& m : rt.drain(v)) {
        TS_REQUIRE(m.tag == kTagRaise);
        shard[static_cast<std::size_t>(v)].apply_raise(
            {m.data.data(), m.data.size()});
      }
    }
  };

  // ---- Phase 1: raise, one fixed-length tuple at a time -------------------
  std::vector<std::vector<InstanceId>> stack;
  std::vector<char> live(static_cast<std::size_t>(std::max(n, 1)), 0);
  std::vector<double> draw(static_cast<std::size_t>(std::max(n, 1)), 0.0);
  std::vector<double> increments;

  for (int g = 0; g < plan.num_groups; ++g) {
    const auto& members = plan.members[static_cast<std::size_t>(g)];
    for (int j = 1; j <= result.stages_per_epoch; ++j) {
      const double target = 1.0 - std::pow(xi, j);
      for (int s = 0; s < result.steps_per_stage; ++s) {
        // Participants: group members still below the stage target (a
        // local test against the processor's own shard).
        std::vector<int> participants;
        for (InstanceId i : members)
          if (unsatisfied(i, target)) participants.push_back(i);
        for (int v : participants) live[static_cast<std::size_t>(v)] = 1;

        // Luby MIS, exactly luby_budget iterations of 2 rounds each.
        // Decided processors sit out the remaining iterations in silence.
        std::vector<InstanceId> winners;
        for (int iter = 0; iter < result.luby_budget; ++iter) {
          const std::vector<int> won = luby_iteration(
              neighbors, rt, participants, live, draw, node_rng);
          winners.insert(winners.end(), won.begin(), won.end());
        }
        for (int v : participants) {
          if (live[static_cast<std::size_t>(v)]) {
            result.mis_ok = false;  // budget exhausted with undecided nodes
            live[static_cast<std::size_t>(v)] = 0;
          }
        }

        // Dual-propagation round: every MIS member raises its own shard
        // tightly and ships the increments to all conflicting neighbors,
        // which apply them on arrival.
        std::sort(winners.begin(), winners.end());
        for (InstanceId i : winners) {
          const DemandInstance& inst = problem.instance(i);
          const auto& critical = plan.critical[static_cast<std::size_t>(i)];
          DualShard& mine = shard[static_cast<std::size_t>(i)];
          const double slack =
              inst.profit - mine.lhs(rule.beta_coeff(inst));
          // tight_raise is the same call the modeled engine makes — one
          // raise arithmetic for every implementation.
          const double amount =
              rule.tight_raise(inst, critical, slack, increments);
          mine.raise_alpha(amount);
          for (std::size_t c = 0; c < critical.size(); ++c)
            mine.raise_beta(critical[c], increments[c]);
          const std::vector<double> payload = encode_raise(
              inst.demand, amount, critical,
              {increments.data(), increments.size()});
          for (int u : neighbors[static_cast<std::size_t>(i)])
            rt.post(Message{i, u, kTagRaise, payload});
        }
        rt.step();
        drain_and_apply();
        stack.push_back(std::move(winners));
      }
      // Lemma 5.1: the fixed step budget must have satisfied the stage.
      for (InstanceId i : members)
        if (unsatisfied(i, target)) result.schedule_ok = false;
    }
  }

  // ---- Phase 2: reverse replay, 1 keep/drop round per tuple ---------------
  result.solution = prune_stack(problem, stack);
  std::vector<char> kept(static_cast<std::size_t>(std::max(n, 1)), 0);
  for (InstanceId i : result.solution.selected)
    kept[static_cast<std::size_t>(i)] = 1;
  std::vector<char> announced(static_cast<std::size_t>(std::max(n, 1)), 0);
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    for (InstanceId i : *it) {
      if (!kept[static_cast<std::size_t>(i)]) continue;
      if (announced[static_cast<std::size_t>(i)]) continue;
      announced[static_cast<std::size_t>(i)] = 1;
      for (int u : neighbors[static_cast<std::size_t>(i)])
        rt.post(Message{i, u, kTagKeep, {}});
    }
    rt.step();
    for (int v = 0; v < n; ++v) rt.drain(v);
  }

  result.rounds = rt.round();
  result.messages = rt.messages_sent();
  result.bytes = rt.bytes_sent();

  // Certification from the shards alone: every processor reports its own
  // satisfaction level; lambda is the minimum.
  result.final_lhs.resize(static_cast<std::size_t>(n));
  double lambda = 1.0;
  for (InstanceId i = 0; i < n; ++i) {
    const DemandInstance& inst = problem.instance(i);
    const double lhs =
        shard[static_cast<std::size_t>(i)].lhs(rule.beta_coeff(inst));
    result.final_lhs[static_cast<std::size_t>(i)] = lhs;
    const double level = lhs / inst.profit;
    lambda = i == 0 ? level : std::min(lambda, level);
  }
  result.lambda_observed = n > 0 ? lambda : 1.0;
  if (options.keep_stack) result.raise_stack = std::move(stack);
  return result;
}

}  // namespace treesched
