#include "dist/protocol_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/rng.hpp"
#include "dist/discovery.hpp"
#include "dist/luby_mis.hpp"
#include "dist/runtime.hpp"
#include "framework/certify.hpp"
#include "framework/dual_shard.hpp"
#include "framework/two_phase.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace treesched {

namespace {

// Message tags beyond the Luby rounds (kLubyTagDraw/kLubyTagWinner) and
// the rendezvous rounds (kTagRegister/kTagBucket).
constexpr int kTagRaise = 2;  // payload: encode_raise() wire format
constexpr int kTagKeep = 3;   // phase 2: {}

// The wire's adaptive MIS retry bound must track the mirror oracle's
// default, or the lockstep engine parity (compared with ==) breaks.
static_assert(ProtocolOptions{}.mis_max_retries == kDefaultMisMaxRetries,
              "ProtocolOptions::mis_max_retries must equal "
              "kDefaultMisMaxRetries (dist/luby_mis.hpp)");

// State shared by the passes of one protocol run: the runtime, the
// discovered neighborhoods, and the per-processor random streams.  The
// streams persist across passes (a processor owns one stream for the
// whole computation); the dual shards do not — each pass raises a fresh
// dual system, exactly as each restricted run of the modeled height
// split does.
struct ProtocolState {
  int n = 0;
  Runtime rt;
  DiscoveredNeighborhoods hood;
  std::vector<Rng> node_rng;
  std::vector<char> live;
  std::vector<double> draw;

  ProtocolState(const Problem& problem, const ProtocolOptions& options)
      : n(problem.num_instances()),
        rt(std::max(RendezvousLayout::for_problem(problem, n).total, 1),
           options.transport, &options.faults) {
    // One runtime node per instance plus the rendezvous owner nodes.  The
    // conflict neighborhoods are *discovered*, not built: the 2-round
    // edge-owner rendezvous replaces the global ConflictGraph and is
    // charged to the same counters as every other protocol round.
    TRACE_SPAN1("protocol", "discovery", "instances", n);
    std::vector<InstanceId> all(static_cast<std::size_t>(n));
    for (InstanceId i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
    hood = discover_conflicts(problem, {all.data(), all.size()}, rt);
    node_rng = make_node_streams(options.seed, n);
    live.assign(static_cast<std::size_t>(std::max(n, 1)), 0);
    draw.assign(static_cast<std::size_t>(std::max(n, 1)), 0.0);
  }
};

// One pass: `kind` over the instances with active[i] != 0, on fresh
// shards, under the pass's own fixed schedule.  Precondition: at least
// one active instance (the caller skips empty classes).
ProtocolPass run_pass(const Problem& problem, const LayeredPlan& plan,
                      RaiseRuleKind kind, const std::vector<char>& active,
                      const ProtocolOptions& options, int luby_budget,
                      ProtocolState& st) {
  const int n = st.n;
  const std::span<const std::vector<int>> neighbors{st.hood.neighbors.data(),
                                                    st.hood.neighbors.size()};
  const std::int64_t rounds_before = st.rt.round();
  const std::int64_t messages_before = st.rt.messages_sent();
  const std::int64_t bytes_before = st.rt.bytes_sent();

  obs::SpanGuard pass_span("protocol", "pass", "rule",
                           static_cast<std::int64_t>(kind));
  ProtocolPass pass;
  pass.rule = kind;
  for (InstanceId i = 0; i < n; ++i)
    if (active[static_cast<std::size_t>(i)]) ++pass.instances;
  pass_span.arg("instances", pass.instances);

  // The fixed schedule, shared derivation with the modeled engine:
  // derive_stage_params is the same call TwoPhaseEngine::prepare makes
  // for this rule and instance class.
  const StageParams params = derive_stage_params(problem, plan, active, kind,
                                                 options.epsilon);
  TS_REQUIRE(params.any_active);
  pass.epochs = plan.num_groups;
  pass.delta = params.delta;
  pass.h_min = params.h_min;
  pass.xi = params.xi;
  pass.stages_per_epoch = params.stages_per_epoch;
  pass.steps_per_stage = lockstep_step_budget(problem, options.lockstep_slack);

  // Per-processor dual shards, fresh for this pass: processor i stores
  // alpha of its demand and beta of its own path edges, nothing else.
  const RaiseRule rule(kind, problem, /*raise_alpha=*/true,
                       options.capacity_aware_raises);
  std::vector<DualShard> shard;
  shard.reserve(static_cast<std::size_t>(n));
  for (InstanceId i = 0; i < n; ++i) {
    const DemandInstance& inst = problem.instance(i);
    shard.emplace_back(inst.demand,
                       std::span<const EdgeId>{inst.edges.data(),
                                               inst.edges.size()});
  }

  const auto unsatisfied = [&](InstanceId i, double target) {
    // A purely local test: the shard holds every variable of i's
    // constraint, kept current by the applied raise propagations.  The
    // ordered (ascending-edge) beta walk replays the central DualState's
    // float operation order — the engine-parity suite compares with ==.
    const DemandInstance& inst = problem.instance(i);
    return shard[static_cast<std::size_t>(i)].lhs_ordered(
               rule.beta_coeff(inst)) <
           target * inst.profit - kEps * inst.profit;
  };
  // Drains every member inbox, applying raise propagations to the local
  // shards (the one message type that may be in flight at step ends).
  // Inboxes are recycled: this runs once per step, n drains each, and
  // the recycled slots keep the serialized backends' decode loop free of
  // steady-state allocation.
  const auto drain_and_apply = [&] {
    for (int v = 0; v < n; ++v) {
      std::vector<Message> inbox = st.rt.drain(v);
      for (const Message& m : inbox) {
        // Only raise propagations matter here.  On a *lossy* run a lost
        // winner notification can leave a dead node holding stale Luby
        // traffic it never drained — skip it; on any masked (or
        // fault-free) run nothing but kTagRaise can be in flight.
        if (m.tag != kTagRaise) continue;
        shard[static_cast<std::size_t>(v)].apply_raise(
            {m.data.data(), m.data.size()});
      }
      st.rt.recycle(std::move(inbox));
    }
  };

  // ---- Phase 1: raise, one fixed-length tuple at a time -------------------
  // The internal stack keeps one entry per tuple (idle tuples included)
  // so phase 2 can replay the full fixed schedule; the *reported* stack
  // strips the empty entries, matching the modeled engine's.
  std::vector<std::vector<InstanceId>> stack;
  // Raise amounts, parallel to `stack` (one entry per winner, in raise
  // order): the degraded-mode certificate replays them centrally.
  std::vector<std::vector<double>> amount_log;
  std::vector<double> increments;

  for (int g = 0; g < plan.num_groups; ++g) {
    const auto& members = plan.members[static_cast<std::size_t>(g)];
    for (int j = 1; j <= pass.stages_per_epoch; ++j) {
      const double target = 1.0 - std::pow(pass.xi, j);
      TRACE_SPAN2("protocol", "stage", "epoch", g, "stage", j);
      for (int s = 0; s < pass.steps_per_stage; ++s) {
        // Participants: the pass's group members still below the stage
        // target (a local test against the processor's own shard).
        std::vector<int> participants;
        for (InstanceId i : members)
          if (active[static_cast<std::size_t>(i)] && unsatisfied(i, target))
            participants.push_back(i);
        for (int v : participants) st.live[static_cast<std::size_t>(v)] = 1;

        // Luby MIS, exactly luby_budget iterations of 2 rounds each.
        // Decided processors sit out the remaining iterations in silence.
        std::vector<InstanceId> winners;
        for (int iter = 0; iter < luby_budget; ++iter) {
          const std::vector<int> won = luby_iteration(
              neighbors, st.rt, participants, st.live, st.draw, st.node_rng);
          winners.insert(winners.end(), won.begin(), won.end());
        }
        // Adaptive budget retry: a starved step re-runs with the budget
        // doubled per attempt, up to options.mis_max_retries attempts —
        // the same loop (condition order, early exit, stream
        // consumption) as the mirror oracle ProtocolLubyMis::run, so the
        // engine parity stays exact.  The extra rounds are the adaptive
        // part of the otherwise-fixed schedule, broken out into
        // mis_retry_rounds to keep the round identity checkable.
        const auto any_live = [&] {
          for (int v : participants)
            if (st.live[static_cast<std::size_t>(v)]) return true;
          return false;
        };
        int attempt = 0;
        while (attempt < options.mis_max_retries && any_live()) {
          ++attempt;
          ++pass.mis_retries;
          TRACE_COUNTER("protocol.mis_retries", 1);
          const int extra = luby_budget << attempt;
          for (int iter = 0; iter < extra && any_live(); ++iter) {
            const std::int64_t r0 = st.rt.round();
            const std::vector<int> won = luby_iteration(
                neighbors, st.rt, participants, st.live, st.draw,
                st.node_rng);
            winners.insert(winners.end(), won.begin(), won.end());
            pass.mis_retry_rounds += st.rt.round() - r0;
          }
        }
        for (int v : participants) {
          if (st.live[static_cast<std::size_t>(v)]) {
            pass.mis_ok = false;  // budget exhausted with undecided nodes
            TRACE_COUNTER("protocol.luby_undecided_nodes", 1);
            st.live[static_cast<std::size_t>(v)] = 0;
          }
        }

        // Dual-propagation round: every MIS member raises its own shard
        // tightly and ships the increments to all conflicting neighbors,
        // which apply them on arrival.  The increments are whatever
        // tight_raise computed — capacity-normalized per edge when the
        // rule is capacity-aware — so the wire format carries the
        // non-uniform rules unchanged.
        std::sort(winners.begin(), winners.end());
        std::vector<double>& amounts = amount_log.emplace_back();
        amounts.reserve(winners.size());
        for (InstanceId i : winners) {
          const DemandInstance& inst = problem.instance(i);
          const auto& critical = plan.critical[static_cast<std::size_t>(i)];
          DualShard& mine = shard[static_cast<std::size_t>(i)];
          const double slack =
              inst.profit - mine.lhs_ordered(rule.beta_coeff(inst));
          // tight_raise is the same call the modeled engine makes — one
          // raise arithmetic for every implementation.
          const double amount =
              rule.tight_raise(inst, critical, slack, increments);
          amounts.push_back(amount);
          mine.raise_alpha(amount);
          for (std::size_t c = 0; c < critical.size(); ++c)
            mine.raise_beta(critical[c], increments[c]);
          const std::vector<double> payload = encode_raise(
              inst.demand, amount, critical,
              {increments.data(), increments.size()});
          for (int u : neighbors[static_cast<std::size_t>(i)])
            st.rt.post(Message{i, u, kTagRaise, payload});
        }
        st.rt.step();
        drain_and_apply();
        stack.push_back(std::move(winners));
      }
      // Lemma 5.1: the fixed step budget must have satisfied the stage.
      for (InstanceId i : members)
        if (active[static_cast<std::size_t>(i)] && unsatisfied(i, target))
          pass.schedule_ok = false;
    }
  }

  // ---- Phase 2: reverse replay, 1 keep/drop round per tuple ---------------
  TRACE_SPAN("protocol", "phase2_replay");
  pass.solution = prune_stack(problem, stack);
  std::vector<char> kept(static_cast<std::size_t>(std::max(n, 1)), 0);
  for (InstanceId i : pass.solution.selected)
    kept[static_cast<std::size_t>(i)] = 1;
  std::vector<char> announced(static_cast<std::size_t>(std::max(n, 1)), 0);
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    for (InstanceId i : *it) {
      if (!kept[static_cast<std::size_t>(i)]) continue;
      if (announced[static_cast<std::size_t>(i)]) continue;
      announced[static_cast<std::size_t>(i)] = 1;
      for (int u : neighbors[static_cast<std::size_t>(i)])
        st.rt.post(Message{i, u, kTagKeep, {}});
    }
    st.rt.step();
    for (int v = 0; v < n; ++v) st.rt.recycle(st.rt.drain(v));
  }

  // Certification from the shards alone: every processor reports its own
  // satisfaction level; lambda is the minimum over the pass members.
  // final_lhs covers *all* instances — bystander shards applied the
  // incoming raises too, so the whole vector equals a central DualState
  // replay of the pass's stack.
  pass.final_lhs.resize(static_cast<std::size_t>(n));
  double lambda = 1.0;
  bool any = false;
  for (InstanceId i = 0; i < n; ++i) {
    const DemandInstance& inst = problem.instance(i);
    const double lhs =
        shard[static_cast<std::size_t>(i)].lhs_ordered(rule.beta_coeff(inst));
    pass.final_lhs[static_cast<std::size_t>(i)] = lhs;
    if (!active[static_cast<std::size_t>(i)]) continue;
    const double level = lhs / inst.profit;
    lambda = any ? std::min(lambda, level) : level;
    any = true;
  }
  pass.lambda_observed = any ? lambda : 1.0;

  pass.tuples = static_cast<std::int64_t>(pass.epochs) *
                pass.stages_per_epoch * pass.steps_per_stage;
  pass.rounds = st.rt.round() - rounds_before;
  pass.messages = st.rt.messages_sent() - messages_before;
  pass.bytes = st.rt.bytes_sent() - bytes_before;

  // Degraded-mode contract: if the recovery layer lost a frame, the
  // shard-reported certificate may undercount — re-validate it against a
  // central replay of the raises actually applied (framework/certify.hpp)
  // before the stack is handed off below.
  pass.degraded = st.rt.degraded();
  if (pass.degraded) {
    const ShardCertificate cert = validate_shard_certificate(
        problem, plan, rule, stack, amount_log,
        {pass.final_lhs.data(), pass.final_lhs.size()}, pass.lambda_observed,
        active);
    pass.certificate_ok = cert.valid;
  }

  if (options.keep_stack) {
    pass.raise_stack.reserve(stack.size());
    for (auto& step : stack)
      if (!step.empty()) pass.raise_stack.push_back(std::move(step));
  }
  return pass;
}

void begin_run(const Problem& problem, const LayeredPlan& plan,
               const ProtocolOptions& options) {
  TS_REQUIRE(problem.finalized());
  TS_REQUIRE(plan.group.size() ==
             static_cast<std::size_t>(problem.num_instances()));
  TS_REQUIRE(options.epsilon > 0.0 && options.epsilon < 1.0);
}

// The shared preamble of both entry points: the fixed schedule scalars
// every pass shares, plus the discovery share of the accounting.
ProtocolRunResult init_result(const Problem& problem, const LayeredPlan& plan,
                              const ProtocolOptions& options,
                              const ProtocolState& st) {
  ProtocolRunResult result;
  result.discovery_rounds = st.hood.rounds;
  result.discovery_messages = st.hood.messages;
  result.discovery_bytes = st.hood.bytes;
  result.discovery_registration_bytes = st.hood.registration_bytes;
  result.discovery_reply_bytes = st.hood.reply_bytes;
  result.luby_budget = options.luby_budget > 0
                           ? options.luby_budget
                           : default_luby_budget(problem.num_instances());
  result.epochs = plan.num_groups;
  result.steps_per_stage =
      lockstep_step_budget(problem, options.lockstep_slack);
  return result;
}

// Mirrors a lone pass into the top-level convenience fields.
void mirror_single_pass(ProtocolRunResult& result, bool keep_stack) {
  const ProtocolPass& pass = result.passes.front();
  result.stages_per_epoch = pass.stages_per_epoch;
  result.solution = pass.solution;
  result.final_lhs = pass.final_lhs;
  if (keep_stack) result.raise_stack = pass.raise_stack;
}

void finish_run(ProtocolRunResult& result, const ProtocolState& st) {
  // combine_rounds is a modeled charge (the converge-cast is not
  // executed on the runtime), added on top of the rounds the runtime
  // actually stepped through.
  result.rounds = st.rt.round() + result.combine_rounds;
  result.messages = st.rt.messages_sent();
  result.bytes = st.rt.bytes_sent();
  result.transport = st.rt.transport_kind();
  result.codec_encoded = st.rt.codec_encoded();
  result.codec_decoded = st.rt.codec_decoded();
  result.degraded = st.rt.degraded();
  if (const FaultStats* fs = st.rt.fault_stats()) result.fault = *fs;
  // A pass's lambda_observed is always a real observed minimum (passes
  // run on non-empty classes only), so — unlike SolveStats::merge, whose
  // 0.0 means "no run contributed yet" — a 0.0 here is a genuine
  // finding (some member never got raised) and must survive the merge:
  // the theorem wrappers turn it into an infinite bound, never a false
  // certificate.
  bool any = false;
  for (const ProtocolPass& pass : result.passes) {
    result.mis_ok = result.mis_ok && pass.mis_ok;
    result.schedule_ok = result.schedule_ok && pass.schedule_ok;
    result.mis_retries += pass.mis_retries;
    result.certificate_ok = result.certificate_ok && pass.certificate_ok;
    result.lambda_observed =
        any ? std::min(result.lambda_observed, pass.lambda_observed)
            : pass.lambda_observed;
    any = true;
  }
  if (!any) result.lambda_observed = 1.0;
}

}  // namespace

ProtocolRunResult run_distributed_protocol(const Problem& problem,
                                           const LayeredPlan& plan,
                                           const ProtocolOptions& options) {
  begin_run(problem, plan, options);
  const int n = problem.num_instances();

  ProtocolState st(problem, options);
  ProtocolRunResult result = init_result(problem, plan, options, st);
  std::vector<char> all(static_cast<std::size_t>(std::max(n, 1)), 1);
  if (n > 0) {
    result.passes.push_back(run_pass(problem, plan, options.rule, all,
                                     options, result.luby_budget, st));
    mirror_single_pass(result, options.keep_stack);
  }
  finish_run(result, st);
  return result;
}

ProtocolRunResult run_height_split_protocol(const Problem& problem,
                                            const LayeredPlan& plan,
                                            const ProtocolOptions& options) {
  begin_run(problem, plan, options);
  ProtocolState st(problem, options);
  ProtocolRunResult result = init_result(problem, plan, options, st);

  // The Section 6 classes, from the same builder the modeled
  // solve_height_split uses.  A class with no members is skipped
  // entirely (it would be an all-idle schedule), matching the modeled
  // path, which runs one engine per non-empty class only.
  const HeightClasses classes = classify_wide_narrow(problem);
  if (classes.has_wide())
    result.passes.push_back(run_pass(problem, plan, RaiseRuleKind::kUnit,
                                     classes.wide_mask, options,
                                     result.luby_budget, st));
  if (classes.has_narrow())
    result.passes.push_back(run_pass(problem, plan, RaiseRuleKind::kNarrow,
                                     classes.narrow_mask, options,
                                     result.luby_budget, st));

  if (result.passes.size() == 1) {
    mirror_single_pass(result, options.keep_stack);
  } else if (result.passes.size() == 2) {
    // Per-network better-of combination (paper, Theorem 6.3): the same
    // helper the modeled solve_height_split uses — the two entry points
    // share one combination arithmetic, and the parity suite compares
    // the selected sets with ==.  The combination is not free on the
    // wire: charge the per-network converge-cast that elects the winner
    // (the same term the modeled solve_arbitrary charges).
    result.solution = combine_better_of_per_network(
        problem, result.passes[0].solution, result.passes[1].solution);
    result.combine_rounds = better_of_convergecast_rounds(problem);
  }
  finish_run(result, st);
  return result;
}

}  // namespace treesched
