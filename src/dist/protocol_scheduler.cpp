#include "dist/protocol_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "dist/conflict_graph.hpp"
#include "dist/luby_mis.hpp"
#include "dist/runtime.hpp"
#include "framework/certify.hpp"
#include "framework/dual_state.hpp"
#include "framework/raise_rule.hpp"
#include "framework/two_phase.hpp"

namespace treesched {

namespace {

// Message tags beyond the Luby rounds (kLubyTagDraw/kLubyTagWinner).
constexpr int kTagRaise = 2;  // dual propagation: {raise amount}
constexpr int kTagKeep = 3;   // phase 2: {}

}  // namespace

ProtocolRunResult run_distributed_protocol(const Problem& problem,
                                           const LayeredPlan& plan,
                                           const ProtocolOptions& options) {
  TS_REQUIRE(problem.finalized());
  TS_REQUIRE(plan.group.size() ==
             static_cast<std::size_t>(problem.num_instances()));
  TS_REQUIRE(options.epsilon > 0.0 && options.epsilon < 1.0);

  const int n = problem.num_instances();
  ProtocolRunResult result;

  // Channel topology: one node per instance, one channel per conflict.
  // Vertex v of the graph is instance v (the graph is built over the full
  // instance range, so indexes coincide).
  std::vector<InstanceId> all(static_cast<std::size_t>(n));
  for (InstanceId i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
  const ConflictGraph graph(problem, {all.data(), all.size()});
  Runtime rt(std::max(n, 1));
  for (int v = 0; v < n; ++v)
    for (int u : graph.neighbors(v))
      if (u > v) rt.connect(v, u);

  // The fixed schedule, derived from globally known quantities only.
  result.epochs = plan.num_groups;
  const double xi =
      RaiseRule::default_xi(RaiseRuleKind::kUnit, plan.delta, 1.0);
  result.stages_per_epoch = std::max(
      1, static_cast<int>(std::ceil(std::log(options.epsilon) / std::log(xi))));
  result.steps_per_stage = lockstep_step_budget(problem, options.lockstep_slack);
  result.luby_budget =
      options.luby_budget > 0
          ? options.luby_budget
          : 2 * static_cast<int>(std::ceil(std::log2(
                    static_cast<double>(std::max(n, 2))))) +
                2;

  // Per-processor private random streams.
  SplitMix64 expand(options.seed);
  std::vector<Rng> node_rng;
  node_rng.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) node_rng.emplace_back(expand.next());

  DualState dual(problem);
  const RaiseRule rule(RaiseRuleKind::kUnit, problem);

  const auto unsatisfied = [&](InstanceId i, double target) {
    const DemandInstance& inst = problem.instance(i);
    return dual.lhs(inst, rule.beta_coeff(inst)) <
           target * inst.profit - kEps * inst.profit;
  };
  const auto drain_all = [&] {
    for (int v = 0; v < n; ++v) rt.drain(v);
  };

  // ---- Phase 1: raise, one fixed-length tuple at a time -------------------
  std::vector<std::vector<InstanceId>> stack;
  std::vector<char> live(static_cast<std::size_t>(std::max(n, 1)), 0);
  std::vector<double> draw(static_cast<std::size_t>(std::max(n, 1)), 0.0);

  for (int g = 0; g < plan.num_groups; ++g) {
    const auto& members = plan.members[static_cast<std::size_t>(g)];
    for (int j = 1; j <= result.stages_per_epoch; ++j) {
      const double target = 1.0 - std::pow(xi, j);
      for (int s = 0; s < result.steps_per_stage; ++s) {
        // Participants: group members still below the stage target (a
        // local test — every processor knows its own dual LHS).
        std::vector<int> participants;
        for (InstanceId i : members)
          if (unsatisfied(i, target)) participants.push_back(i);
        for (int v : participants) live[static_cast<std::size_t>(v)] = 1;

        // Luby MIS, exactly luby_budget iterations of 2 rounds each.
        // Decided processors sit out the remaining iterations in silence.
        std::vector<InstanceId> winners;
        for (int iter = 0; iter < result.luby_budget; ++iter) {
          const std::vector<int> won =
              luby_iteration(graph, rt, participants, live, draw, node_rng);
          winners.insert(winners.end(), won.begin(), won.end());
        }
        for (int v : participants) {
          if (live[static_cast<std::size_t>(v)]) {
            result.mis_ok = false;  // budget exhausted with undecided nodes
            live[static_cast<std::size_t>(v)] = 0;
          }
        }

        // Dual-propagation round: every MIS member raises tightly and
        // ships the raise to all conflicting neighbors.
        std::sort(winners.begin(), winners.end());
        for (InstanceId i : winners) {
          const DemandInstance& inst = problem.instance(i);
          const auto& critical = plan.critical[static_cast<std::size_t>(i)];
          const double slack =
              inst.profit - dual.lhs(inst, rule.beta_coeff(inst));
          const double amount = rule.delta(inst, critical, slack);
          dual.raise_alpha(inst.demand, amount);
          for (EdgeId e : critical)
            dual.raise_beta(e, rule.beta_increment(inst, critical, amount, e));
          for (int u : graph.neighbors(i))
            rt.post(Message{i, u, kTagRaise, {amount}});
        }
        rt.step();
        drain_all();
        stack.push_back(std::move(winners));
      }
      // Lemma 5.1: the fixed step budget must have satisfied the stage.
      for (InstanceId i : members)
        if (unsatisfied(i, target)) result.schedule_ok = false;
    }
  }

  // ---- Phase 2: reverse replay, 1 keep/drop round per tuple ---------------
  result.solution = prune_stack(problem, stack);
  std::vector<char> kept(static_cast<std::size_t>(std::max(n, 1)), 0);
  for (InstanceId i : result.solution.selected)
    kept[static_cast<std::size_t>(i)] = 1;
  std::vector<char> announced(static_cast<std::size_t>(std::max(n, 1)), 0);
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    for (InstanceId i : *it) {
      if (!kept[static_cast<std::size_t>(i)]) continue;
      if (announced[static_cast<std::size_t>(i)]) continue;
      announced[static_cast<std::size_t>(i)] = 1;
      for (int u : graph.neighbors(i)) rt.post(Message{i, u, kTagKeep, {}});
    }
    rt.step();
    drain_all();
  }

  result.rounds = rt.round();
  result.messages = rt.messages_sent();
  result.bytes = rt.bytes_sent();
  const std::vector<char> active(static_cast<std::size_t>(n), 1);
  result.lambda_observed = observed_lambda(problem, dual, rule, active);
  return result;
}

}  // namespace treesched
