// The full two-phase algorithm as a message-level protocol (paper,
// Section 5 "Distributed Implementation").
//
// In the real distributed setting no processor can test a global
// condition ("is some instance still unsatisfied?"), so *every* schedule
// length is fixed up front from globally known quantities:
//   epochs           = l_max (groups of the layered plan),
//   stages_per_epoch = ceil(log_xi eps)            (Section 5),
//   steps_per_stage  = O(log(pmax/pmin))           (Lemma 5.1/Claim 5.2),
//   luby_budget      = O(log n) Luby iterations    (w.h.p. termination).
//
// Nothing in the run is global anymore:
//  - neighborhoods are learned by the 2-round edge-owner rendezvous of
//    dist/discovery.hpp (no ConflictGraph is materialized);
//  - the dual state is sharded per processor (framework/dual_shard.hpp):
//    a raise is applied to the winner's own shard and propagated to its
//    conflicting neighbors via kTagRaise messages, which the receivers
//    *apply* — every satisfaction test reads only the local shard.
//
// Every (epoch, stage, step) tuple spends exactly 2*luby_budget rounds of
// Luby protocol plus 1 dual-propagation round, whether or not any work
// remains — idle processors execute the rounds in silence.  Phase 2
// replays the tuples in reverse, 1 round each (keep/drop notification).
// Hence the exact accounting identity the tests assert:
//   rounds = discovery_rounds + tuples * (2*luby_budget + 1) + tuples.
//
// mis_ok reports whether every Luby computation decided all of its
// participants within the fixed budget; schedule_ok whether every stage's
// step budget left no unsatisfied instance behind (Lemma 5.1's
// prediction).  Both hold w.h.p.; the run remains feasible regardless.
#pragma once

#include <cstdint>
#include <vector>

#include "decomp/layered.hpp"
#include "model/problem.hpp"
#include "model/solution.hpp"

namespace treesched {

struct ProtocolOptions {
  double epsilon = 0.1;  // target slackness 1-eps
  std::uint64_t seed = 1;
  // Extra steps on top of the Lemma 5.1 stage budget (matches
  // SolverConfig::lockstep_slack of the modeled engine).
  int lockstep_slack = 2;
  // Luby iterations per MIS computation; 0 derives 2*ceil(log2 n) + 2.
  int luby_budget = 0;
  // Retain the raise stack in ProtocolRunResult (test oracle for the
  // central-replay parity check).
  bool keep_stack = false;
};

struct ProtocolRunResult {
  Solution solution;
  // The fixed schedule the run executed.
  int epochs = 0;
  int stages_per_epoch = 0;
  int steps_per_stage = 0;
  int luby_budget = 0;
  // Runtime accounting (totals include the discovery share, which is
  // also broken out).
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::int64_t discovery_rounds = 0;
  std::int64_t discovery_messages = 0;
  std::int64_t discovery_bytes = 0;
  // Budget sufficiency (w.h.p. guarantees, observed).
  bool mis_ok = true;
  bool schedule_ok = true;
  double lambda_observed = 0.0;
  // Per-instance final dual LHS as the shards see it (test oracle: must
  // match a central DualState replay of the raise stack).
  std::vector<double> final_lhs;
  // One entry per phase-1 step, in raise order; only when keep_stack.
  std::vector<std::vector<InstanceId>> raise_stack;
};

// Runs the message-level protocol on `problem` under `plan` (tree or line
// layered plan).  Uses the kUnit raising rule — the Section 5 protocol;
// the quality guarantee (profit * (Delta+1)/lambda >= OPT) needs unit
// heights, while feasibility holds for any heights by phase-2
// construction.
ProtocolRunResult run_distributed_protocol(const Problem& problem,
                                           const LayeredPlan& plan,
                                           const ProtocolOptions& options = {});

}  // namespace treesched
